#!/bin/sh
# Runs the benchmark suite and emits a machine-readable JSON summary so
# successive PRs can track the speedup trajectory.
#
# Usage: ./bench.sh [output.json] [extra go-test args...]
# Default output: BENCH_<N+1>.json where N is the highest existing
# BENCH_<n>.json snapshot (BENCH_1.json if none exist). Extra args are
# passed to `go test` (e.g. ./bench.sh out.json -bench 'SNR' -benchtime 2x).
set -eu

if [ $# -gt 0 ]; then
    out="$1"
    shift
else
    max=0
    for f in BENCH_*.json; do
        [ -e "$f" ] || continue
        n="${f#BENCH_}"
        n="${n%.json}"
        case "$n" in '' | *[!0-9]*) continue ;; esac
        [ "$n" -gt "$max" ] && max="$n"
    done
    out="BENCH_$((max + 1)).json"
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Provenance stamps: snapshots are only comparable when the code and
# toolchain are known, so record the commit, go version, and the
# parallelism the benchmarks actually ran with.
sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
git diff --quiet HEAD 2>/dev/null || sha="$sha-dirty"
gover="$(go env GOVERSION)"
# Go defaults GOMAXPROCS to the online CPU count when the env is unset.
maxprocs="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}"

# -run '^$' skips tests; remaining args may override -bench/-benchtime.
go test -run '^$' -bench . -benchmem "$@" . | tee "$raw"

awk -v out="$out" -v sha="$sha" -v gover="$gover" -v maxprocs="$maxprocs" '
BEGIN { n = 0 }
/^goos:/    { goos = $2 }
/^goarch:/  { goarch = $2 }
/^cpu:/     { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    fields = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_.-]/, "_", unit)
        fields = fields sprintf(",\n      \"%s\": %s", unit, $i)
    }
    recs[n++] = sprintf("    {\n      \"name\": \"%s\",\n      \"iterations\": %s%s\n    }", name, iters, fields)
}
END {
    printf "{\n" > out
    printf "  \"commit\": \"%s\",\n", sha >> out
    printf "  \"go\": \"%s\",\n", gover >> out
    printf "  \"gomaxprocs\": %d,\n", maxprocs >> out
    printf "  \"goos\": \"%s\",\n", goos >> out
    printf "  \"goarch\": \"%s\",\n", goarch >> out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"benchmarks\": [\n" >> out
    for (i = 0; i < n; i++) {
        printf "%s%s\n", recs[i], (i < n - 1 ? "," : "") >> out
    }
    printf "  ]\n}\n" >> out
}
' "$raw"

# Headline number for the simulation engine: compiled event-driven vs
# reference full-cone evaluator on the AES capture workload.
awk '
/^BenchmarkTick\/engine=compiled/  { comp = $3 }
/^BenchmarkTick\/engine=reference/ { ref = $3 }
END {
    if (comp > 0 && ref > 0)
        printf "compiled engine speedup over reference (BenchmarkTick): %.2fx (%d ns vs %d ns per cycle)\n", ref / comp, comp, ref
}
' "$raw"

# Compact per-benchmark speedup table against the previous snapshot,
# when the output slots into the BENCH_<n>.json sequence.
case "$out" in
BENCH_*.json)
    n="${out#BENCH_}"
    n="${n%.json}"
    prev=""
    case "$n" in '' | *[!0-9]*) ;; *) [ "$n" -gt 1 ] && prev="BENCH_$((n - 1)).json" ;; esac
    if [ -n "$prev" ] && [ -e "$prev" ]; then
        echo ""
        echo "== speedup vs $prev =="
        awk -v prevfile="$prev" -v curfile="$out" '
        function grab(file, map, order,   name, line, val, cnt) {
            cnt = 0
            while ((getline line < file) > 0) {
                if (line ~ /"name":/) {
                    name = line
                    sub(/^.*"name": "/, "", name)
                    sub(/".*$/, "", name)
                    order[cnt++] = name
                } else if (line ~ /"ns_per_op":/ && name != "") {
                    val = line
                    sub(/^.*"ns_per_op": /, "", val)
                    sub(/,.*$/, "", val)
                    map[name] = val + 0
                    name = ""
                }
            }
            close(file)
            return cnt
        }
        BEGIN {
            grab(prevfile, prevns, dummy)
            n = grab(curfile, curns, order)
            printf "%-52s %14s %14s %9s\n", "benchmark", "prev-ns/op", "ns/op", "speedup"
            for (i = 0; i < n; i++) {
                b = order[i]
                if (!(b in prevns) || prevns[b] == 0 || curns[b] == 0) continue
                printf "%-52s %14.0f %14.0f %8.2fx\n", b, prevns[b], curns[b], prevns[b] / curns[b]
            }
        }'
    fi
    ;;
esac

echo "wrote $out"
