// Benchmarks regenerating every table and figure of the paper (one
// benchmark per artifact, reporting the headline numbers as custom
// metrics) plus ablation benchmarks for the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package emtrust_test

import (
	"context"
	"fmt"
	"math"
	mathbits "math/bits"
	"math/rand"
	"testing"

	"emtrust/internal/aes"
	"emtrust/internal/campaign"
	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/degrade"
	"emtrust/internal/dsp"
	"emtrust/internal/emfield"
	"emtrust/internal/experiments"
	"emtrust/internal/fleet"
	"emtrust/internal/layout"
	"emtrust/internal/logic"
	"emtrust/internal/netlist"
	"emtrust/internal/sensorarray"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

// benchConfig keeps each experiment iteration around a second.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.GoldenTraces = 30
	cfg.TestTraces = 30
	return cfg
}

// BenchmarkTable1GateCounts regenerates Table I.
func BenchmarkTable1GateCounts(b *testing.B) {
	var aesGates int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		aesGates = res.AESGateCount
	}
	b.ReportMetric(float64(aesGates), "AES-gates")
}

// BenchmarkSNRSimulation regenerates the Section IV-B SNR comparison.
func BenchmarkSNRSimulation(b *testing.B) {
	var sensor, probe float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.SNRSimulation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		sensor, probe = res.SensorSNRdB, res.ProbeSNRdB
	}
	b.ReportMetric(sensor, "sensor-dB")
	b.ReportMetric(probe, "probe-dB")
}

// BenchmarkSNRMeasured regenerates the Section V-A SNR comparison.
func BenchmarkSNRMeasured(b *testing.B) {
	var sensor, probe float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.SNRMeasured(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		sensor, probe = res.SensorSNRdB, res.ProbeSNRdB
	}
	b.ReportMetric(sensor, "sensor-dB")
	b.ReportMetric(probe, "probe-dB")
}

// BenchmarkEuclideanSimulation regenerates the Section IV-C distances.
func BenchmarkEuclideanSimulation(b *testing.B) {
	rel := make(map[trojan.Kind]float64)
	for i := 0; i < b.N; i++ {
		res, err := experiments.EuclideanSimulation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			rel[row.Trojan] = row.Relative
		}
	}
	for _, k := range trojan.Kinds() {
		b.ReportMetric(rel[k], k.String()+"-rel")
	}
}

// BenchmarkA2Spectrum regenerates Figure 4.
func BenchmarkA2Spectrum(b *testing.B) {
	var increase float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.A2Spectrum(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		increase = res.PeakIncrease
	}
	b.ReportMetric(increase, "peak-increase-x")
}

func benchHistograms(b *testing.B, useSensor bool) {
	overlap := make(map[trojan.Kind]float64)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6Histograms(benchConfig(), useSensor)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Panels {
			overlap[p.Trojan] = p.Overlap
		}
	}
	for _, k := range trojan.Kinds() {
		b.ReportMetric(overlap[k], k.String()+"-overlap")
	}
}

// BenchmarkFig6ProbeHistograms regenerates Figure 6(a)-(d).
func BenchmarkFig6ProbeHistograms(b *testing.B) { benchHistograms(b, false) }

// BenchmarkFig6SensorHistograms regenerates Figure 6(e)-(h).
func BenchmarkFig6SensorHistograms(b *testing.B) { benchHistograms(b, true) }

// BenchmarkFig6SensorSpectra regenerates Figure 6(i)-(l).
func BenchmarkFig6SensorSpectra(b *testing.B) {
	detected := 0
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6Spectra(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		detected = 0
		for _, p := range res.Panels {
			if p.Detected {
				detected++
			}
		}
	}
	b.ReportMetric(float64(detected), "trojans-detected")
}

// BenchmarkLayoutReport regenerates the Figure 3 floorplan view.
func BenchmarkLayoutReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LayoutReport(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoverageVsRON regenerates the extension experiment comparing
// the EM framework against the ring-oscillator-network baseline.
func BenchmarkCoverageVsRON(b *testing.B) {
	emWins := 0
	for i := 0; i < b.N; i++ {
		res, err := experiments.Coverage(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		emWins = 0
		for _, row := range res.Rows {
			if row.EMRate > row.RONRate {
				emWins++
			}
		}
	}
	b.ReportMetric(float64(emWins), "threats-only-EM-catches")
}

// --- Ablation benchmarks (DESIGN.md section 5) ---------------------------

// BenchmarkAblationTileGrid sweeps the current-aggregation resolution:
// accuracy (SNR stability) versus coupling precompute and capture cost.
func BenchmarkAblationTileGrid(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Chip.Layout.TilesX, cfg.Chip.Layout.TilesY = n, n
			var snr float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.SNRSimulation(cfg)
				if err != nil {
					b.Fatal(err)
				}
				snr = res.SensorSNRdB
			}
			b.ReportMetric(snr, "sensor-dB")
		})
	}
}

// BenchmarkAblationPCAComponents sweeps the kept components: detection
// margin (T2's relative distance) versus dimensionality.
func BenchmarkAblationPCAComponents(b *testing.B) {
	for _, k := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Fingerprint.Components = k
			var rel float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.EuclideanSimulation(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, row := range res.Rows {
					if row.Trojan == trojan.T2LeakageCurrent {
						rel = row.Relative
					}
				}
			}
			b.ReportMetric(rel, "T2-rel")
		})
	}
}

// BenchmarkAblationSpiralTurns sweeps the on-chip coil turn count: total
// coupling (sensitivity) versus wiring.
func BenchmarkAblationSpiralTurns(b *testing.B) {
	nl := buildBenchNetlist(b)
	fp, err := layout.Place(nl, layout.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, turns := range []int{4, 10, 20} {
		b.Run(fmt.Sprintf("turns=%d", turns), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				coil := emfield.OnChipSpiral(fp.Die, turns, 5e-6)
				cp, err := emfield.NewCoupling(coil, fp.Grid, 25e-12, 64)
				if err != nil {
					b.Fatal(err)
				}
				total = 0
				for _, m := range cp.M {
					total += math.Abs(m)
				}
			}
			b.ReportMetric(total*1e12, "coupling-pH")
		})
	}
}

// BenchmarkAblationProbeHeight sweeps the external probe height: why the
// on-chip sensor wins as distance grows.
func BenchmarkAblationProbeHeight(b *testing.B) {
	nl := buildBenchNetlist(b)
	fp, err := layout.Place(nl, layout.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, z := range []float64{50e-6, 100e-6, 200e-6, 400e-6} {
		b.Run(fmt.Sprintf("z=%.0fum", z*1e6), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				coil := emfield.ExternalProbe(fp.Die, 0.5e-3, 8, z, 20e-6)
				cp, err := emfield.NewCoupling(coil, fp.Grid, 25e-12, 64)
				if err != nil {
					b.Fatal(err)
				}
				total = 0
				for _, m := range cp.M {
					total += math.Abs(m)
				}
			}
			b.ReportMetric(total*1e12, "coupling-pH")
		})
	}
}

// BenchmarkAblationWindow sweeps the spectral window choice for the
// Section III-E detector.
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []dsp.Window{dsp.Rectangular, dsp.Hann, dsp.Blackman} {
		b.Run(w.String(), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Spectral.Window = w
			var increase float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.A2Spectrum(cfg)
				if err != nil {
					b.Fatal(err)
				}
				increase = res.PeakIncrease
			}
			b.ReportMetric(increase, "peak-increase-x")
		})
	}
}

// BenchmarkAblationGoldenSetSize sweeps the golden set size: Eq. (1)
// threshold stability versus fitting cost.
func BenchmarkAblationGoldenSetSize(b *testing.B) {
	c, err := chip.New(chip.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := c.DeactivateAll(); err != nil {
		b.Fatal(err)
	}
	key := make([]byte, 16)
	pt := make([]byte, 16)
	ch := chip.SimulationChannels()
	for _, n := range []int{10, 30, 90} {
		b.Run(fmt.Sprintf("golden=%d", n), func(b *testing.B) {
			var threshold float64
			for i := 0; i < b.N; i++ {
				golden := make([]*trace.Trace, 0, n)
				for j := 0; j < n; j++ {
					cap, err := c.CapturePT(pt, key, 32)
					if err != nil {
						b.Fatal(err)
					}
					s, _ := c.Acquire(cap, ch)
					golden = append(golden, s)
				}
				fp, err := core.BuildFingerprint(golden, core.DefaultFingerprintConfig())
				if err != nil {
					b.Fatal(err)
				}
				threshold = fp.Threshold
			}
			b.ReportMetric(threshold*1e9, "threshold-nV")
		})
	}
}

func buildBenchNetlist(b *testing.B) *netlist.Netlist {
	b.Helper()
	cfg := chip.DefaultConfig()
	c, err := chip.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return c.Netlist()
}

// BenchmarkLocalize regenerates the quadrant-localization extension.
func BenchmarkLocalize(b *testing.B) {
	correct := 0
	for i := 0; i < b.N; i++ {
		res, err := experiments.Localize(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		correct = 0
		for _, row := range res.Rows {
			if row.Correct {
				correct++
			}
		}
	}
	b.ReportMetric(float64(correct), "trojans-localized")
}

// BenchmarkVariation regenerates the process-variation extension.
func BenchmarkVariation(b *testing.B) {
	var goldenFA, selfFA float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Variation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		goldenFA = res.Rows[0].FalseAlarmRate
		selfFA = res.Rows[1].FalseAlarmRate
	}
	b.ReportMetric(goldenFA, "goldenchip-false-alarms")
	b.ReportMetric(selfFA, "selfref-false-alarms")
}

// BenchmarkFFT measures the cached-twiddle transform on a
// spectral-window-sized input.
func BenchmarkFFT(b *testing.B) {
	x := make([]float64, 4096)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.1)
	}
	var buf []complex128
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = dsp.RealFFTInto(buf, x)
	}
}

// BenchmarkSpectralPlan measures one planned one-sided amplitude
// spectrum into a reused buffer — the monitor verdict path's per-trace
// transform cost. Zero allocations at steady state.
func BenchmarkSpectralPlan(b *testing.B) {
	x := make([]float64, 4096)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.1)
	}
	p := dsp.PlanForLength(len(x))
	var amp []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		amp = p.SpectrumInto(amp, x, dsp.Hann)
	}
}

// BenchmarkSTFT measures a full spectrogram into reused row buffers —
// the streaming demodulator view of a long capture.
func BenchmarkSTFT(b *testing.B) {
	x := make([]float64, 16384)
	for i := range x {
		x[i] = math.Sin(float64(i)*0.1) + 0.3*math.Sin(float64(i)*0.37)
	}
	var rows [][]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ = dsp.STFTInto(rows, x, 1e-9, dsp.Hann, 1024, 256)
	}
}

// BenchmarkCachedCoupling measures a warm coupling-cache hit at the
// default geometry (the cost every chip build after the first pays).
func BenchmarkCachedCoupling(b *testing.B) {
	cfg := chip.DefaultConfig()
	c, err := chip.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	fp := c.Floorplan()
	coil := emfield.OnChipSpiral(fp.Die, cfg.SpiralTurns, cfg.SpiralZ)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emfield.CachedCoupling(coil, fp.Grid, cfg.TileLoopArea, cfg.Quad); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDegradedMonitor measures the hardened runtime monitor on a
// degraded Trojan-free stream: health pre-check, PCA projection,
// baseline shift, debounce and the guarded EWMA update per trace. The
// false-alarm metric tracks what the hardening buys at the moderate
// fault severity.
func BenchmarkDegradedMonitor(b *testing.B) {
	cfg := benchConfig()
	c, err := chip.New(cfg.Chip)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.DeactivateAll(); err != nil {
		b.Fatal(err)
	}
	ch := chip.SimulationChannels()
	capture := func() *trace.Trace {
		cap, err := c.CapturePT(cfg.Plaintext, cfg.Key, cfg.CaptureCycles)
		if err != nil {
			b.Fatal(err)
		}
		s, _ := c.Acquire(cap, ch)
		return s
	}
	golden := make([]*trace.Trace, cfg.GoldenTraces)
	for i := range golden {
		golden[i] = capture()
	}
	fp, err := core.BuildFingerprint(golden, cfg.Fingerprint)
	if err != nil {
		b.Fatal(err)
	}
	health, err := core.BuildChannelHealth(golden, core.DefaultHealthConfig())
	if err != nil {
		b.Fatal(err)
	}
	prof := degrade.Profile{
		Severity: 2,
		RefRMS:   health.GoldenRMS,
		RefPeak:  health.GoldenPeak,
		Span:     4 * cfg.TestTraces,
	}
	dch := degrade.Wrap(degrade.Identity{}, prof.Stages()...)
	stream := c.NextStream()
	degraded := make([]*trace.Trace, cfg.TestTraces)
	for i := range degraded {
		clean := capture()
		degraded[i] = dch.AcquireAt(i, clean.Samples, clean.Dt, c.SplitRand(stream, uint64(i)))
	}
	var falseAlarms float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.NewMonitorWith(fp, nil, core.HardenedOptions(health))
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			for _, t := range degraded {
				m.Submit(t)
			}
			m.Close()
		}()
		confirmed := 0
		for v := range m.Verdicts() {
			if v.Confirmed() {
				confirmed++
			}
		}
		falseAlarms = float64(confirmed) / float64(len(degraded))
	}
	b.ReportMetric(float64(len(degraded))*float64(b.N)/b.Elapsed().Seconds(), "traces_per_s")
	b.ReportMetric(100*falseAlarms, "false-alarm-%")
}

// BenchmarkArrayCapture measures one full sensor-array frame on a
// prebuilt chip: one chip capture per mux window, fanned out over the
// 16 per-coil emf syntheses and acquisitions through the worker pool.
func BenchmarkArrayCapture(b *testing.B) {
	cfg := benchConfig()
	c, err := chip.New(cfg.Chip)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.DeactivateAll(); err != nil {
		b.Fatal(err)
	}
	c.EnableA2(false)
	arr, err := sensorarray.New(c.Floorplan(), sensorarray.ConfigFor(cfg.Chip, 4))
	if err != nil {
		b.Fatal(err)
	}
	ch := sensorarray.DefaultChannel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arr.ScanEncryption(c, ch, cfg.Plaintext, cfg.Key, cfg.CaptureCycles); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(arr.NumCoils()*b.N)/b.Elapsed().Seconds(), "coils_per_s")
}

// BenchmarkCleanCapture measures one 32-cycle fixed-stimulus capture on
// a prebuilt chip — the unit of work the capture engine shards.
func BenchmarkCleanCapture(b *testing.B) {
	cfg := benchConfig()
	c, err := chip.New(cfg.Chip)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CapturePT(cfg.Plaintext, cfg.Key, cfg.CaptureCycles); err != nil {
			b.Fatal(err)
		}
	}
}

// engineVariants enumerates the two gate-simulation engines for the
// compiled-vs-reference microbenchmarks. bench.sh parses the sub-bench
// names to emit the speedup line.
func engineVariants() []struct {
	name string
	opts []logic.Option
} {
	return []struct {
		name string
		opts []logic.Option
	}{
		{"engine=compiled", nil},
		{"engine=reference", []logic.Option{logic.WithReferenceEngine()}},
	}
}

// aesBenchSim builds a bare AES-core simulator (no coupling precompute)
// for the engine microbenchmarks.
func aesBenchSim(b *testing.B, opts ...logic.Option) *logic.Simulator {
	b.Helper()
	bl := netlist.NewBuilder("aes_bench")
	aes.Generate(bl)
	sim, err := logic.New(bl.Build(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

// BenchmarkTick measures one clock cycle of the paper's AES netlist
// under the capture workload the experiments actually run: one
// encryption per 32-cycle capture window (idle lead-in at cycle 0, the
// load edge at cycle 1, then the 11 round cycles and an idle tail),
// with batched toggle accounting drained per cycle — the exact shape of
// chip.CapturePT with the default CaptureCycles. The compiled
// event-driven engine must beat the reference full-cone evaluator by
// >= 3x here.
func BenchmarkTick(b *testing.B) {
	const window = 32 // experiments.DefaultConfig().CaptureCycles
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	for _, eng := range engineVariants() {
		b.Run(eng.name, func(b *testing.B) {
			sim := aesBenchSim(b, eng.opts...)
			sim.BatchToggles(true)
			rng := rand.New(rand.NewSource(1))
			pt := make([]byte, 16)
			var toggles, cycles int
			phase := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				switch phase {
				case 1:
					rng.Read(pt)
					sim.SetPortBits(aes.PortPT, aes.BytesToBits(pt))
					sim.SetPortBits(aes.PortKey, aes.BytesToBits(key))
					sim.SetPortUint(aes.PortStart, 1)
					sim.Settle()
				case 2:
					sim.SetPortUint(aes.PortStart, 0)
					sim.Settle()
				}
				sim.Tick()
				toggles += len(sim.TakeToggles())
				cycles++
				if phase++; phase == window {
					phase = 0
				}
			}
			b.StopTimer()
			if cycles > 0 {
				b.ReportMetric(float64(toggles)/float64(cycles), "toggles/cycle")
			}
		})
	}
}

// BenchmarkTickWide measures the bit-parallel engine on the same
// 32-cycle capture-window workload as BenchmarkTick, sweeping how many
// stimulus lanes one uint64 word carries. The lane-cycles/s metric is
// the figure to compare against BenchmarkTick's inverse ns/op: a full
// 64-lane word amortizes one word-parallel evaluation over 64
// encryptions, so per-lane cost falls roughly with the lane count until
// toggle extraction dominates.
func BenchmarkTickWide(b *testing.B) {
	const window = 32 // experiments.DefaultConfig().CaptureCycles
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	for _, lanes := range []int{1, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			sim := aesBenchSim(b)
			w, err := sim.Wide()
			if err != nil {
				b.Fatal(err)
			}
			sts := make([]*logic.State, lanes)
			for l := range sts {
				sts[l] = sim.State()
			}
			if err := w.LoadStates(sts); err != nil {
				b.Fatal(err)
			}
			var toggles int
			w.OnWideToggle = func(cell int32, diff, nv uint64) {
				toggles += mathbits.OnesCount64(diff)
			}
			rng := rand.New(rand.NewSource(1))
			laneBits := make([][]uint8, lanes)
			for l := range laneBits {
				laneBits[l] = make([]uint8, 128)
			}
			phase := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				switch phase {
				case 1:
					for l := range laneBits {
						for j := range laneBits[l] {
							laneBits[l][j] = uint8(rng.Intn(2))
						}
					}
					w.SetPortLanesBits(aes.PortPT, laneBits)
					w.SetPortBitsAll(aes.PortKey, aes.BytesToBits(key))
					w.SetPortUintAll(aes.PortStart, 1)
					w.Settle()
				case 2:
					w.SetPortUintAll(aes.PortStart, 0)
					w.Settle()
				}
				w.Tick()
				if phase++; phase == window {
					phase = 0
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(b.N*lanes)*1e9/float64(b.Elapsed().Nanoseconds()), "lane-cycles/s")
				b.ReportMetric(float64(toggles)/float64(b.N*lanes), "toggles/lane-cycle")
			}
		})
	}
}

// BenchmarkFleetThroughput measures the fleet service's monitored
// verdict throughput at 1000 dies: enrollment (the per-die fingerprint
// fitting that fleet.New runs) stays outside the timer, so the metric
// is the steady-state rate of the sharded tick/queue/aggregate loop.
// Each iteration also verifies the graceful-shutdown contract: the
// queue drains and no service goroutine outlives Wait.
func BenchmarkFleetThroughput(b *testing.B) {
	cfg := benchConfig()
	fc := fleet.DefaultConfig()
	fc.Chip = cfg.Chip
	fc.Key = cfg.Key
	fc.Plaintext = cfg.Plaintext
	fc.Seed = 1
	fc.Dies = 1000
	fc.Shards = 8
	fc.Prevalence = 0.01
	fc.Severity = 2
	fc.Rounds = 4
	fc.TickAverages = 2
	fc.GoldenTraces = 8
	fc.NullTraces = 12
	fc.QueueSize = 1 << 12
	fc.MinSamples = 2
	var verdicts uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := fleet.New(fc)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		st := s.Wait()
		b.StopTimer()
		if st.QueueLen != 0 {
			b.Fatalf("queue not drained: %d verdicts left", st.QueueLen)
		}
		if g := s.Goroutines(); g != 0 {
			b.Fatalf("goroutine leak: %d still live after Wait", g)
		}
		verdicts += st.Verdicts
		b.StartTimer()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(verdicts)/sec, "verdicts_per_s")
	}
}

// BenchmarkFleetThroughput10k is the 10000-die size point of the fleet
// benchmark: same per-die settings as BenchmarkFleetThroughput, ten
// times the fleet, fewer rounds so one iteration stays tractable. Its
// job is to prove the tick path's allocation discipline holds at
// scale — B/op must grow with the verdict payloads, not with a
// per-tick garbage rate multiplied by fleet size.
func BenchmarkFleetThroughput10k(b *testing.B) {
	cfg := benchConfig()
	fc := fleet.DefaultConfig()
	fc.Chip = cfg.Chip
	fc.Key = cfg.Key
	fc.Plaintext = cfg.Plaintext
	fc.Seed = 1
	fc.Dies = 10000
	fc.Shards = 8
	fc.Prevalence = 0.01
	fc.Severity = 2
	fc.Rounds = 2
	fc.TickAverages = 2
	fc.GoldenTraces = 8
	fc.NullTraces = 12
	fc.QueueSize = 1 << 12
	fc.MinSamples = 2
	var verdicts uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := fleet.New(fc)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		st := s.Wait()
		b.StopTimer()
		if st.QueueLen != 0 {
			b.Fatalf("queue not drained: %d verdicts left", st.QueueLen)
		}
		if g := s.Goroutines(); g != 0 {
			b.Fatalf("goroutine leak: %d still live after Wait", g)
		}
		verdicts += st.Verdicts
		b.StartTimer()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(verdicts)/sec, "verdicts_per_s")
	}
}

// BenchmarkDieTick measures one monitored round of a single die — the
// pooled acquisition (trimmed-mean averaging through the degradation
// stack), health check, feature extraction, PCA scoring, and the
// tracker/integrator update — with the shard, watchdog, and queue
// machinery out of the way. allocs/op is the headline: the steady-state
// tick must stay within the two fixed verdict-payload copies.
func BenchmarkDieTick(b *testing.B) {
	cfg := benchConfig()
	fc := fleet.DefaultConfig()
	fc.Chip = cfg.Chip
	fc.Key = cfg.Key
	fc.Plaintext = cfg.Plaintext
	fc.Seed = 1
	fc.Dies = 4
	fc.Shards = 1
	fc.Severity = 2
	fc.TickAverages = 2
	fc.GoldenTraces = 8
	fc.NullTraces = 12
	s, err := fleet.New(fc)
	if err != nil {
		b.Fatal(err)
	}
	s.TickOnce(0, 0) // warm the die's reusable buffers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TickOnce(0, i+1)
	}
}

// BenchmarkEMFWeightedInto measures the per-die waveform synthesis the
// fleet runs at enrollment: per-tile gain-weighted flux accumulation
// over the chip grid plus one backward differentiation, into a reused
// buffer. The fused four-tile sweep is what this tracks.
func BenchmarkEMFWeightedInto(b *testing.B) {
	cfg := chip.DefaultConfig()
	c, err := chip.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	fp := c.Floorplan()
	coil := emfield.OnChipSpiral(fp.Die, cfg.SpiralTurns, cfg.SpiralZ)
	cp, err := emfield.CachedCoupling(coil, fp.Grid, cfg.TileLoopArea, cfg.Quad)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	const samples = 512
	currents := make([][]float64, len(cp.M))
	gains := make([]float64, len(cp.M))
	for i := range currents {
		gains[i] = 0.9 + 0.2*rng.Float64()
		w := make([]float64, samples)
		for j := range w {
			w[j] = rng.NormFloat64() * 1e-3
		}
		currents[i] = w
	}
	dst := make([]float64, samples)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = cp.EMFWeightedInto(dst, currents, 1e-9, gains)
	}
}

// BenchmarkSettle measures a sparse re-settle: one plaintext bit flips
// per iteration, the common shape of port-driven stimulus between
// ticks. Event-driven evaluation only touches the flipped bit's cone.
func BenchmarkSettle(b *testing.B) {
	for _, eng := range engineVariants() {
		b.Run(eng.name, func(b *testing.B) {
			sim := aesBenchSim(b, eng.opts...)
			bits := make([]uint8, 128)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bits[i%128] ^= 1
				sim.SetPortBits(aes.PortPT, bits)
				sim.Settle()
			}
		})
	}
}

// BenchmarkCampaignSearch measures one full coverage-guided stimulus
// search (GA, 32 individuals x 6 generations through the wide engine)
// against a generated rare-trigger Trojan on the AES core, reporting
// the achieved partial-trigger coverage as a custom metric.
func BenchmarkCampaignSearch(b *testing.B) {
	chipCfg := chip.DefaultConfig()
	chipCfg.WithTrojans = false
	chipCfg.WithA2 = false
	golden, err := chip.New(chipCfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := campaign.DefaultConfig()
	gen.Members = 4
	stim := campaign.AESStimulus()
	camp, err := campaign.Generate(golden.Netlist(), stim, nil, gen)
	if err != nil {
		b.Fatal(err)
	}
	m := camp.Members[3] // k=5, the middle of the sweep
	chipCfg.Insert = m
	infected, err := chip.New(chipCfg)
	if err != nil {
		b.Fatal(err)
	}
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := campaign.NewEvaluator(infected.Netlist(), stim, m, 0)
		if err != nil {
			b.Fatal(err)
		}
		res, err := campaign.Search(e, campaign.GA{}, 32, 6, campaign.SearchSeed(gen.Seed, m.ID))
		if err != nil {
			b.Fatal(err)
		}
		frac = res.BestFrac
	}
	b.ReportMetric(100*frac, "coverage_%")
}
