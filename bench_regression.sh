#!/bin/sh
# Report-only benchmark regression smoke: runs a short pass of the two
# headline benchmarks (fleet verdict throughput and the simulation
# engine tick) and compares ns/op against the newest committed
# BENCH_<n>.json snapshot. A slowdown past the threshold prints a
# warning — GitHub-annotated when running in Actions — but never fails
# the build: CI machines are noisy and snapshots come from other
# hardware, so this is a tripwire for gross regressions, not a gate.
#
# Usage: ./bench_regression.sh [threshold-percent]   (default 30)
set -eu

threshold="${1:-30}"

prev=""
max=0
for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    n="${f#BENCH_}"
    n="${n%.json}"
    case "$n" in '' | *[!0-9]*) continue ;; esac
    if [ "$n" -gt "$max" ]; then
        max="$n"
        prev="$f"
    fi
done
if [ -z "$prev" ]; then
    echo "bench_regression: no BENCH_<n>.json snapshot found; nothing to compare"
    exit 0
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Short pass: one iteration each. BenchmarkTick covers the compiled and
# reference engines; BenchmarkFleetThroughput covers the monitoring
# hot path end to end.
go test -run '^$' -bench 'BenchmarkFleetThroughput$|BenchmarkTick' \
    -benchtime=1x . | tee "$raw"

echo ""
echo "== regression check vs $prev (warn above ${threshold}%) =="
awk -v prevfile="$prev" -v threshold="$threshold" -v ci="${GITHUB_ACTIONS:-}" '
BEGIN {
    name = ""
    while ((getline line < prevfile) > 0) {
        if (line ~ /"name":/) {
            name = line
            sub(/^.*"name": "/, "", name)
            sub(/".*$/, "", name)
        } else if (line ~ /"ns_per_op":/ && name != "") {
            val = line
            sub(/^.*"ns_per_op": /, "", val)
            sub(/,.*$/, "", val)
            prevns[name] = val + 0
            name = ""
        }
    }
    close(prevfile)
    warned = 0
    checked = 0
}
/^Benchmark/ {
    b = $1
    sub(/-[0-9]+$/, "", b)
    if (!(b in prevns) || prevns[b] == 0) next
    cur = $3 + 0
    if (cur == 0) next
    checked++
    pct = (cur - prevns[b]) / prevns[b] * 100
    status = "ok"
    if (pct > threshold) {
        status = "SLOWER"
        warned++
        if (ci != "")
            printf "::warning title=bench regression::%s is %.0f%% slower than %s (%.0f ns/op vs %.0f ns/op)\n", b, pct, prevfile, cur, prevns[b]
    }
    printf "%-52s %14.0f %14.0f %+8.1f%%  %s\n", b, prevns[b], cur, pct, status
}
END {
    if (checked == 0)
        print "no overlapping benchmarks between this run and " prevfile
    else if (warned > 0)
        printf "WARNING: %d benchmark(s) regressed more than %d%% (report-only, not failing the build)\n", warned, threshold
    else
        print "no regressions above threshold"
}
' "$raw"
