#!/bin/sh
# Benchmark regression check, two tiers:
#
# 1. GATE (fails the build): a curated allowlist of stable benchmarks —
#    single-threaded, deterministic, sub-millisecond DSP and engine
#    kernels whose timings are reproducible across runs — is compared
#    against the newest committed BENCH_<n>.json snapshot. A regression
#    past the ns/op threshold (default 30%) or a >50% B/op growth (with
#    a 64 B/op absolute floor so 4->8 byte pool noise can't trip it)
#    exits nonzero.
#
# 2. TRIPWIRE (report-only): one short iteration of the heavyweight
#    end-to-end benchmarks (fleet verdict throughput). A slowdown past
#    the threshold prints a warning — GitHub-annotated when running in
#    Actions — but never fails the build: one-iteration timings of
#    second-long workloads are too noisy to gate on.
#
# Usage: ./bench_regression.sh [threshold-percent]   (default 30)
set -eu

threshold="${1:-30}"
bop_threshold=50
bop_floor=64

# Stable allowlist: keep this to kernels whose per-op time does not
# depend on parallelism, cache warm-up across iterations, or RNG-driven
# workload shape. Adding a benchmark here makes it a build gate.
stable='^(BenchmarkFFT|BenchmarkSpectralPlan|BenchmarkSTFT|BenchmarkDieTick|BenchmarkEMFWeightedInto|BenchmarkTick/engine=compiled|BenchmarkTick/engine=reference)$'

prev=""
max=0
for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    n="${f#BENCH_}"
    n="${n%.json}"
    case "$n" in '' | *[!0-9]*) continue ;; esac
    if [ "$n" -gt "$max" ]; then
        max="$n"
        prev="$f"
    fi
done
if [ -z "$prev" ]; then
    echo "bench_regression: no BENCH_<n>.json snapshot found; nothing to compare"
    exit 0
fi

raw="$(mktemp)"
gate_raw="$(mktemp)"
trap 'rm -f "$raw" "$gate_raw"' EXIT

echo "== gate: stable benchmarks vs $prev (fail above +${threshold}% ns/op or +${bop_threshold}% B/op) =="
go test -run '^$' -bench 'BenchmarkFFT$|BenchmarkSpectralPlan$|BenchmarkSTFT$|BenchmarkDieTick$|BenchmarkEMFWeightedInto$|BenchmarkTick$' \
    -benchmem -benchtime=0.3s . | tee "$gate_raw"

echo ""
awk -v prevfile="$prev" -v stable="$stable" \
    -v threshold="$threshold" -v bop_threshold="$bop_threshold" -v bop_floor="$bop_floor" \
    -v ci="${GITHUB_ACTIONS:-}" '
BEGIN {
    name = ""
    while ((getline line < prevfile) > 0) {
        if (line ~ /"name":/) {
            name = line
            sub(/^.*"name": "/, "", name)
            sub(/".*$/, "", name)
        } else if (line ~ /"ns_per_op":/ && name != "") {
            val = line
            sub(/^.*"ns_per_op": /, "", val)
            sub(/,.*$/, "", val)
            prevns[name] = val + 0
        } else if (line ~ /"B_per_op":/ && name != "") {
            val = line
            sub(/^.*"B_per_op": /, "", val)
            sub(/,.*$/, "", val)
            prevbop[name] = val + 0
            name = ""
        }
    }
    close(prevfile)
    failed = 0
    checked = 0
    printf "%-44s %12s %12s %8s  %s\n", "benchmark", "prev-ns/op", "ns/op", "delta", "status"
}
/^Benchmark/ {
    b = $1
    sub(/-[0-9]+$/, "", b)
    if (b !~ stable) next
    if (!(b in prevns) || prevns[b] == 0) {
        printf "%-44s %12s %12.0f %8s  new (no baseline)\n", b, "-", $3 + 0, "-"
        next
    }
    cur = $3 + 0
    if (cur == 0) next
    checked++
    status = "ok"
    pct = (cur - prevns[b]) / prevns[b] * 100
    if (pct > threshold) {
        status = sprintf("FAIL: ns/op +%.0f%%", pct)
        failed++
    }
    # B/op column, when -benchmem printed one.
    curbop = -1
    for (i = 4; i + 1 <= NF; i += 2) {
        if ($(i + 1) == "B/op") curbop = $i + 0
    }
    if (curbop >= 0 && (b in prevbop)) {
        dbop = curbop - prevbop[b]
        if (dbop > bop_floor && prevbop[b] > 0 && dbop / prevbop[b] * 100 > bop_threshold) {
            sep = (status == "ok") ? "" : status "; "
            status = sprintf("%sFAIL: B/op %.0f -> %.0f", sep, prevbop[b], curbop)
            failed++
        }
    }
    if (status != "ok" && ci != "")
        printf "::error title=bench regression::%s regressed vs %s (%s)\n", b, prevfile, status
    printf "%-44s %12.0f %12.0f %+7.1f%%  %s\n", b, prevns[b], cur, pct, status
}
END {
    if (checked == 0) {
        print "no overlapping stable benchmarks between this run and " prevfile
    } else if (failed > 0) {
        printf "FAIL: %d stable benchmark(s) regressed past the gate\n", failed
        exit 1
    } else {
        print "gate clean"
    }
}
' "$gate_raw"

echo ""
echo "== tripwire: heavyweight benchmarks (report-only) =="
# One iteration only: BenchmarkFleetThroughput covers the monitoring hot
# path end to end but takes seconds per op, far too long to run at
# gate-quality iteration counts.
go test -run '^$' -bench 'BenchmarkFleetThroughput$' \
    -benchtime=1x . | tee "$raw"

echo ""
awk -v prevfile="$prev" -v threshold="$threshold" -v ci="${GITHUB_ACTIONS:-}" '
BEGIN {
    name = ""
    while ((getline line < prevfile) > 0) {
        if (line ~ /"name":/) {
            name = line
            sub(/^.*"name": "/, "", name)
            sub(/".*$/, "", name)
        } else if (line ~ /"ns_per_op":/ && name != "") {
            val = line
            sub(/^.*"ns_per_op": /, "", val)
            sub(/,.*$/, "", val)
            prevns[name] = val + 0
            name = ""
        }
    }
    close(prevfile)
    warned = 0
    checked = 0
}
/^Benchmark/ {
    b = $1
    sub(/-[0-9]+$/, "", b)
    if (!(b in prevns) || prevns[b] == 0) next
    cur = $3 + 0
    if (cur == 0) next
    checked++
    pct = (cur - prevns[b]) / prevns[b] * 100
    status = "ok"
    if (pct > threshold) {
        status = "SLOWER"
        warned++
        if (ci != "")
            printf "::warning title=bench tripwire::%s is %.0f%% slower than %s (%.0f ns/op vs %.0f ns/op)\n", b, pct, prevfile, cur, prevns[b]
    }
    printf "%-52s %14.0f %14.0f %+8.1f%%  %s\n", b, prevns[b], cur, pct, status
}
END {
    if (checked == 0)
        print "no overlapping benchmarks between this run and " prevfile
    else if (warned > 0)
        printf "WARNING: %d benchmark(s) regressed more than %d%% (report-only, not failing the build)\n", warned, threshold
    else
        print "no regressions above threshold"
}
' "$raw"
