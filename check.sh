#!/bin/sh
# Tier-1 gate: build, vet, formatting, and the race-enabled test suite.
# Run before every commit; CI runs the same sequence.
set -eu

cd "$(dirname "$0")"

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== engine differential (wide vs compiled vs reference) =="
go test -run 'Differential|CompiledVsReference|Wide' -count=1 ./internal/logic/...

echo "== go test -race -shuffle=on =="
go test -race -shuffle=on ./...

echo "all checks passed"
