#!/bin/sh
# Tier-1 gate: build, vet, formatting, and the race-enabled test suite.
# Run before every commit; CI runs the same sequence.
set -eu

cd "$(dirname "$0")"

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== engine differential (wide vs compiled vs reference) =="
go test -run 'Differential|CompiledVsReference|Wide' -count=1 ./internal/logic/...

echo "== go test -race -shuffle=on =="
go test -race -shuffle=on ./...

echo "== campaign smoke (generate, search, export) =="
# Tiny 8-Trojan campaign with a 2-generation search; cmd/netlist exits
# nonzero if the search finds no partial-trigger coverage at all.
go run ./cmd/netlist -campaign 8 -member 1 -search 2 -stats=false -verilog /dev/null >/dev/null

echo "all checks passed"
