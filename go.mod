module emtrust

go 1.22
