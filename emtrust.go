// Package emtrust is a runtime hardware-Trojan detection framework built
// around an on-chip electromagnetic sensor, reproducing "Runtime Trust
// Evaluation and Hardware Trojan Detection Using On-Chip EM Sensors"
// (He, Guo, Ma, Liu, Zhao, Jin — DAC 2020).
//
// The package is a facade over the implementation packages:
//
//   - a virtual chip: a gate-level AES-128 (~21 k cells) with the paper's
//     four digital Trojans and an A2-style analog Trojan, floorplanned
//     under a spiral EM sensor on the top metal layer, with an external
//     probe for comparison (internal/chip and below);
//   - the trust evaluation framework: golden fingerprinting (segment
//     energies, PCA, Euclidean distance with the Eq. (1) threshold), the
//     Section III-E spectral detector, and a streaming runtime monitor
//     (internal/core);
//   - the experiment harness regenerating every table and figure of the
//     paper (internal/experiments, cmd/experiments).
//
// # Quick start
//
//	dev, _ := emtrust.NewDevice(emtrust.DeviceOptions{})
//	golden, _ := dev.CollectGolden(50)
//	det, _ := emtrust.Fit(golden)
//	tr, _ := dev.CaptureTrace()
//	verdict := det.Evaluate(tr)
//
// See examples/ for complete programs.
package emtrust

import (
	"fmt"

	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

// Re-exported core types. Aliases keep the implementation in internal
// packages while giving users public names for everything the API
// returns.
type (
	// Trace is one sampled EM measurement.
	Trace = trace.Trace
	// Fingerprint is the fitted golden time-domain model.
	Fingerprint = core.Fingerprint
	// SpectralDetector is the fitted golden frequency-domain model.
	SpectralDetector = core.SpectralDetector
	// Monitor streams traces through both detectors at runtime.
	Monitor = core.Monitor
	// Verdict is one monitored trace's outcome.
	Verdict = core.Verdict
	// TrojanKind identifies one of the paper's four digital Trojans.
	TrojanKind = trojan.Kind
	// ChipConfig exposes every knob of the virtual chip.
	ChipConfig = chip.Config
)

// The four digital Trojans of the paper's Table I.
const (
	T1AMLeaker       = trojan.T1AMLeaker
	T2LeakageCurrent = trojan.T2LeakageCurrent
	T3CDMALeaker     = trojan.T3CDMALeaker
	T4PowerHog       = trojan.T4PowerHog
)

// Trojans lists the four digital Trojans in Table I order.
func Trojans() []TrojanKind { return trojan.Kinds() }

// DeviceOptions configures a virtual device.
type DeviceOptions struct {
	// Golden builds the Trojan-free reference chip instead of the
	// infected one.
	Golden bool
	// Seed drives all randomness (plaintexts and measurement noise);
	// zero means seed 1.
	Seed int64
	// Cycles is the capture window per trace; zero means 32.
	Cycles int
	// Measurement selects the Section V acquisition (oscilloscope ADC
	// plus lab interference) instead of the Section IV simulation
	// channels.
	Measurement bool
	// Key and Plaintext fix the workload; nil selects the FIPS-197
	// vectors. Fingerprinting assumes a repeatable stimulus.
	Key, Plaintext []byte
	// Chip overrides the full chip configuration; nil uses defaults.
	Chip *ChipConfig
}

// Device is a virtual chip with its measurement channels: the object a
// deployment would replace with a real sensor front-end.
type Device struct {
	chip     *chip.Chip
	channels chip.Channels
	cycles   int
	key, pt  []byte
}

// NewDevice builds and floorplans a virtual chip.
func NewDevice(opts DeviceOptions) (*Device, error) {
	cfg := chip.DefaultConfig()
	if opts.Chip != nil {
		cfg = *opts.Chip
	}
	if opts.Golden {
		cfg.WithTrojans = false
		cfg.WithA2 = false
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	c, err := chip.New(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.WithTrojans {
		if err := c.DeactivateAll(); err != nil {
			return nil, err
		}
	}
	c.EnableA2(false)
	d := &Device{
		chip:     c,
		channels: chip.SimulationChannels(),
		cycles:   opts.Cycles,
		key:      opts.Key,
		pt:       opts.Plaintext,
	}
	if opts.Measurement {
		d.channels = chip.MeasurementChannels()
	}
	if d.cycles == 0 {
		d.cycles = 32
	}
	if d.key == nil {
		d.key = []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	}
	if d.pt == nil {
		d.pt = []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	}
	return d, nil
}

// Chip exposes the underlying virtual chip for advanced use (layout,
// netlist statistics, raw captures).
func (d *Device) Chip() *chip.Chip { return d.chip }

// SetTrojan activates or deactivates one of the digital Trojans.
func (d *Device) SetTrojan(k TrojanKind, on bool) error { return d.chip.SetTrojan(k, on) }

// EnableA2 arms (or disarms) the analog Trojan's charge pump.
func (d *Device) EnableA2(on bool) { d.chip.EnableA2(on) }

// CaptureTrace measures one on-chip sensor trace of the fixed workload.
func (d *Device) CaptureTrace() (*Trace, error) {
	cap, err := d.chip.CapturePT(d.pt, d.key, d.cycles)
	if err != nil {
		return nil, err
	}
	s, _ := d.chip.Acquire(cap, d.channels)
	return s, nil
}

// CaptureBoth measures one trace on both channels (sensor, probe).
func (d *Device) CaptureBoth() (sensor, probe *Trace, err error) {
	cap, err := d.chip.CapturePT(d.pt, d.key, d.cycles)
	if err != nil {
		return nil, nil, err
	}
	sensor, probe = d.chip.Acquire(cap, d.channels)
	return sensor, probe, nil
}

// CaptureIdle measures a trace with the AES idle (only the clock tree
// and any active Trojans radiate), over the given number of cycles.
func (d *Device) CaptureIdle(cycles int) (*Trace, error) {
	cap, err := d.chip.CaptureIdle(cycles)
	if err != nil {
		return nil, err
	}
	s, _ := d.chip.Acquire(cap, d.channels)
	return s, nil
}

// Listen captures an idle window from the on-chip coil through a
// receiver front-end with the given noise floor (volts RMS). A
// narrowband radio receiver tuned to one carrier tolerates far less
// noise than the broadband monitoring channel, which is how an attacker
// (or an auditor, as in examples/keyleak) demodulates the AM Trojan's
// covert transmission.
func (d *Device) Listen(cycles int, noiseRMS float64) (*Trace, error) {
	cap, err := d.chip.CaptureIdle(cycles)
	if err != nil {
		return nil, err
	}
	rx := chip.Channels{
		Sensor: trace.SimulationChannel(noiseRMS),
		Probe:  trace.SimulationChannel(noiseRMS),
	}
	s, _ := d.chip.Acquire(cap, rx)
	return s, nil
}

// CaptureIdleBoth measures an idle-chip trace on both channels.
func (d *Device) CaptureIdleBoth(cycles int) (sensor, probe *Trace, err error) {
	cap, err := d.chip.CaptureIdle(cycles)
	if err != nil {
		return nil, nil, err
	}
	sensor, probe = d.chip.Acquire(cap, d.channels)
	return sensor, probe, nil
}

// CollectGolden captures n golden traces for fitting. The caller is
// responsible for the chip actually being Trojan-free or dormant.
func (d *Device) CollectGolden(n int) ([]*Trace, error) {
	out := make([]*Trace, n)
	for i := range out {
		t, err := d.CaptureTrace()
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// Detector bundles the fitted time-domain and frequency-domain models.
type Detector struct {
	Fingerprint *Fingerprint
	Spectral    *SpectralDetector
}

// Fit fits both detectors from golden traces with default
// configurations.
func Fit(golden []*Trace) (*Detector, error) {
	fp, err := core.BuildFingerprint(golden, core.DefaultFingerprintConfig())
	if err != nil {
		return nil, err
	}
	sd, err := core.BuildSpectralDetector(golden, core.DefaultSpectralConfig())
	if err != nil {
		return nil, err
	}
	return &Detector{Fingerprint: fp, Spectral: sd}, nil
}

// Evaluate runs both detectors on one trace.
func (det *Detector) Evaluate(t *Trace) Verdict {
	return Verdict{
		Time:     det.Fingerprint.Evaluate(t),
		Spectral: det.Spectral.Evaluate(t),
	}
}

// NewMonitor starts a runtime monitor over the fitted detectors.
func (det *Detector) NewMonitor(buffer int) (*Monitor, error) {
	return core.NewMonitor(det.Fingerprint, det.Spectral, buffer)
}

// Describe returns a short human-readable summary of a Trojan.
func Describe(k TrojanKind) string {
	return fmt.Sprintf("%v: %s", k, k.Description())
}
