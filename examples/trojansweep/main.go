// Trojansweep activates each of the paper's four digital Trojans in
// sequence (the Section V-B measurement procedure) and reports the mean
// Euclidean distance, the detection rate, and how the on-chip sensor
// compares to the external probe.
package main

import (
	"fmt"
	"log"

	"emtrust"
	"emtrust/internal/core"
	"emtrust/internal/dsp"
)

const (
	goldenN = 50
	testN   = 25
)

func main() {
	dev, err := emtrust.NewDevice(emtrust.DeviceOptions{Measurement: true})
	if err != nil {
		log.Fatal(err)
	}

	// Fit one fingerprint per channel from the same golden captures.
	var goldenSensor, goldenProbe []*emtrust.Trace
	for i := 0; i < goldenN; i++ {
		s, p, err := dev.CaptureBoth()
		if err != nil {
			log.Fatal(err)
		}
		goldenSensor = append(goldenSensor, s)
		goldenProbe = append(goldenProbe, p)
	}
	fpSensor, err := core.BuildFingerprint(goldenSensor, core.DefaultFingerprintConfig())
	if err != nil {
		log.Fatal(err)
	}
	fpProbe, err := core.BuildFingerprint(goldenProbe, core.DefaultFingerprintConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-14s %-14s %-10s %-10s\n",
		"trojan", "sensor dist", "probe dist", "sensor hit", "probe hit")
	for _, k := range emtrust.Trojans() {
		if err := dev.SetTrojan(k, true); err != nil {
			log.Fatal(err)
		}
		var ds, dp []float64
		hitS, hitP := 0, 0
		for i := 0; i < testN; i++ {
			s, p, err := dev.CaptureBoth()
			if err != nil {
				log.Fatal(err)
			}
			ds = append(ds, fpSensor.CentroidDistance(s))
			dp = append(dp, fpProbe.CentroidDistance(p))
			if fpSensor.Evaluate(s).Alarm {
				hitS++
			}
			if fpProbe.Evaluate(p).Alarm {
				hitP++
			}
		}
		if err := dev.SetTrojan(k, false); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6v %-14.4g %-14.4g %3d/%-6d %3d/%-6d\n",
			k, dsp.Mean(ds), dsp.Mean(dp), hitS, testN, hitP, testN)
	}
	fmt.Println("\nThe on-chip sensor separates every Trojan; the probe's distances")
	fmt.Println("barely move — the paper's Figure 6 in two columns.")
}
