// Sensorvsprobe reproduces the paper's headline SNR claim interactively:
// the on-chip spiral sensor achieves a much higher SNR than an external
// probe, in both the simulation and the fabricated-chip measurement
// setups (Sections IV-B and V-A).
package main

import (
	"fmt"
	"log"

	"emtrust"
	"emtrust/internal/dsp"
)

func measure(measurement bool) (sensorDB, probeDB float64, err error) {
	dev, err := emtrust.NewDevice(emtrust.DeviceOptions{
		Golden:      true,
		Measurement: measurement,
		Cycles:      16,
	})
	if err != nil {
		return 0, 0, err
	}
	var sigS, sigP, noiS, noiP []float64
	for i := 0; i < 10; i++ {
		// Noise record: chip powered, no encryption (Section V-A).
		s, p, err := dev.CaptureIdleBoth(16)
		if err != nil {
			return 0, 0, err
		}
		noiS = append(noiS, s.Samples...)
		noiP = append(noiP, p.Samples...)
		// Signal record: back-to-back encryptions.
		sTr, pTr, err := dev.CaptureBoth()
		if err != nil {
			return 0, 0, err
		}
		sigS = append(sigS, sTr.Samples...)
		sigP = append(sigP, pTr.Samples...)
	}
	return dsp.SNRdB(sigS, noiS), dsp.SNRdB(sigP, noiP), nil
}

func main() {
	fmt.Printf("%-22s %14s %14s %12s\n", "setup", "sensor (dB)", "probe (dB)", "gap (dB)")
	for _, m := range []struct {
		name        string
		measurement bool
		paperS      float64
		paperP      float64
	}{
		{"simulation (IV-B)", false, 29.976, 17.483},
		{"fabricated (V-A)", true, 30.5489, 13.8684},
	} {
		s, p, err := measure(m.measurement)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %14.2f %14.2f %12.2f\n", m.name, s, p, s-p)
		fmt.Printf("%-22s %14.2f %14.2f %12.2f\n", "  (paper)", m.paperS, m.paperP, m.paperS-m.paperP)
	}
	fmt.Println("\nThe spiral on the top metal layer keeps its advantage on silicon,")
	fmt.Println("while the external probe loses ~4 dB to lab interference.")
}
