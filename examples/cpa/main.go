// Cpa mounts a profiled correlation attack on the AES key through the
// on-chip EM sensor — the "rich in information" property of the EM side
// channel, demonstrated on the same coil the trust framework uses for
// Trojan detection. The leakage template comes straight from the S-box
// netlist generator.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"emtrust"
	"emtrust/internal/attack"
)

func main() {
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	dev, err := emtrust.NewDevice(emtrust.DeviceOptions{Golden: true, Key: key})
	if err != nil {
		log.Fatal(err)
	}

	cfg := attack.DefaultCPAConfig()
	fmt.Printf("collecting %d random-plaintext captures and correlating...\n", cfg.Traces)
	start := time.Now()
	res, err := attack.Run(dev.Chip(), key, cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}
	res.Evaluate(key)
	fmt.Print(res)
	fmt.Printf("true key:  %x\n", key)
	fmt.Printf("elapsed:   %.1fs\n", time.Since(start).Seconds())
}
