// Quickstart: build the virtual chip, fit the golden fingerprint, then
// catch a Trojan the moment it activates.
package main

import (
	"fmt"
	"log"

	"emtrust"
)

func main() {
	// A device with every Trojan present but dormant, measured through
	// the on-chip EM sensor.
	dev, err := emtrust.NewDevice(emtrust.DeviceOptions{Measurement: true})
	if err != nil {
		log.Fatal(err)
	}

	// Fit the golden reference while the chip behaves.
	golden, err := dev.CollectGolden(50)
	if err != nil {
		log.Fatal(err)
	}
	det, err := emtrust.Fit(golden)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden fingerprint: threshold %.3g V (Eq. 1)\n", det.Fingerprint.Threshold)

	// A clean trace passes.
	clean, err := dev.CaptureTrace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dormant chip:  %v\n", det.Evaluate(clean))

	// The adversary activates the AM-radio key leaker.
	if err := dev.SetTrojan(emtrust.T1AMLeaker, true); err != nil {
		log.Fatal(err)
	}
	fmt.Println(emtrust.Describe(emtrust.T1AMLeaker))
	alarms := 0
	for i := 0; i < 5; i++ {
		tr, err := dev.CaptureTrace()
		if err != nil {
			log.Fatal(err)
		}
		v := det.Evaluate(tr)
		fmt.Printf("infected trace %d: %v\n", i, v)
		if v.Alarm() {
			alarms++
		}
	}
	fmt.Printf("%d/5 infected traces raised alarms\n", alarms)
}
