// A2spectral demonstrates Section III-E: the A2-style analog Trojan is
// invisible to time-domain fingerprinting but its fast-flipping trigger
// shows up as raised amplitude at the clock harmonic in the EM spectrum
// (the paper's Figure 4).
package main

import (
	"fmt"
	"log"

	"emtrust"
	"emtrust/internal/dsp"
)

const idleCycles = 512

func main() {
	dev, err := emtrust.NewDevice(emtrust.DeviceOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Golden model from idle captures (the A2 victim is the free-running
	// clock-division wire, so no encryption is needed to exercise it).
	var golden []*emtrust.Trace
	for i := 0; i < 10; i++ {
		t, err := dev.CaptureIdle(idleCycles)
		if err != nil {
			log.Fatal(err)
		}
		golden = append(golden, t)
	}
	det, err := emtrust.Fit(golden)
	if err != nil {
		log.Fatal(err)
	}

	clock := dev.Chip().Config().Power.ClockHz
	show := func(label string, t *emtrust.Trace) {
		spec := dsp.NewSpectrum(t.Samples, t.Dt, dsp.Hann)
		v := det.Evaluate(t)
		fmt.Printf("%-10s clock %.3g V  harmonic %.3g V  time-alarm=%v  spectral-alarm=%v (%d spots)\n",
			label,
			spec.AmplitudeAt(clock), spec.AmplitudeAt(2*clock),
			v.Time.Alarm, v.Spectral.Alarm, len(v.Spectral.Spots))
		if v.Spectral.Alarm {
			s := v.Spectral.StrongestSpot()
			fmt.Printf("%-10s strongest offending spot: %.3g Hz, %.3g V (golden %.3g V)\n",
				"", s.Frequency, s.Amplitude, s.Golden)
		}
	}

	dormant, err := dev.CaptureIdle(idleCycles)
	if err != nil {
		log.Fatal(err)
	}
	show("dormant:", dormant)

	// Arm the charge pump; the clock-division wire toggles every cycle,
	// so a warm-up window charges it past threshold.
	dev.EnableA2(true)
	if _, err := dev.CaptureIdle(600); err != nil {
		log.Fatal(err)
	}
	a2 := dev.Chip().A2()
	fmt.Printf("charge pump: V=%.2f, firing=%v after warm-up\n", a2.Voltage(), a2.Firing())

	firing, err := dev.CaptureIdle(idleCycles)
	if err != nil {
		log.Fatal(err)
	}
	show("triggering:", firing)
}
