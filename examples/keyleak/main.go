// Keyleak proves Trojan 1's payload end to end: the AM leaker is
// activated, one encryption loads its shift register, and a demodulator
// listening to the on-chip EM sensor recovers the AES key from the air —
// the paper's "the leaked information can be demodulated with a wireless
// radio receiver", using the trust framework's own coil as the antenna.
package main

import (
	"fmt"
	"log"

	"emtrust"
	"emtrust/internal/aes"
	"emtrust/internal/demod"
)

func main() {
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	dev, err := emtrust.NewDevice(emtrust.DeviceOptions{Key: key})
	if err != nil {
		log.Fatal(err)
	}

	// The adversary switches the AM leaker on; the victim performs one
	// encryption, which loads the key into the Trojan's shift register.
	if err := dev.SetTrojan(emtrust.T1AMLeaker, true); err != nil {
		log.Fatal(err)
	}
	if _, err := dev.CaptureTrace(); err != nil {
		log.Fatal(err)
	}

	// While the chip idles, the Trojan radiates the key at 750 kHz,
	// over and over. One long listen through a narrowband receiver:
	listen, err := dev.Listen(3400, 2e-9)
	if err != nil {
		log.Fatal(err)
	}

	cfg := demod.ChannelConfig(dev.Chip().Config().Power.ClockHz, listen.Dt)
	res, err := demod.DemodulateOOK(listen.Samples, listen.Dt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("demodulated %d bits (sync offset %d, contrast %.0f)\n",
		len(res.Bits), res.Offset, res.Contrast)

	keyBits := aes.BytesToBits(key)
	rot, errs, ok := demod.MatchRotation(res.Bits, keyBits, len(res.Bits)/10)
	if !ok {
		log.Fatalf("key not recovered (best alignment: %d bit errors)", errs)
	}
	fmt.Printf("key recovered: rotation %d, %d bit errors over %d bits (%.1f%%)\n",
		rot, errs, len(res.Bits), 100*float64(errs)/float64(len(res.Bits)))

	// The same trace trips the trust monitor, of course.
	golden, err := emtrust.NewDevice(emtrust.DeviceOptions{Key: key, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	ref, err := golden.CollectGolden(30)
	if err != nil {
		log.Fatal(err)
	}
	det, err := emtrust.Fit(ref)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := dev.CaptureTrace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("and the monitor sees it: %v\n", det.Evaluate(tr))
}
