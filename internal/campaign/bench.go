package campaign

import (
	"fmt"

	"emtrust/internal/netlist"
)

// BenchConfig sizes a generated benchmark design: a random acyclic gate
// cloud over an input bus plus a register file feeding back into it.
// The campaign tests use families of these (hundreds of seeds) to
// exercise the generator and the engine-differential harness on designs
// other than the AES core.
type BenchConfig struct {
	Seed   int64
	Inputs int
	Gates  int
	FFs    int
	// Window is the stimulus window length in cycles.
	Window int
}

// DefaultBench is a small design that still offers plenty of rare nets.
func DefaultBench(seed int64) BenchConfig {
	return BenchConfig{Seed: seed, Inputs: 16, Gates: 120, FFs: 12, Window: 6}
}

// BuildBench emits the benchmark circuit into b and returns the
// stimulus that drives it. Gates draw operands only from already-built
// nets, so the combinational cloud is acyclic by construction; register
// D inputs are patched afterwards and may close sequential loops
// through the whole pool. The same config always builds the same
// netlist.
func BuildBench(b *netlist.Builder, cfg BenchConfig) (Stimulus, error) {
	if cfg.Inputs < 1 || cfg.Gates < 1 || cfg.Window < 1 {
		return Stimulus{}, fmt.Errorf("campaign: bench config needs inputs, gates, window >= 1")
	}
	rng := splitRand(cfg.Seed, streamMember, 0xbe9c)
	b.PushRegion("bench")
	defer b.PopRegion()

	pool := b.Input("in", cfg.Inputs)
	// Registers first, on a placeholder D, so the gate cloud can read
	// machine state and rare nets can depend on it.
	regCells := make([]int, cfg.FFs)
	for i := range regCells {
		pool = append(pool, b.Reg(b.Low()))
		regCells[i] = b.NumCells() - 1
	}
	pick := func() netlist.Net { return pool[rng.Intn(len(pool))] }
	for g := 0; g < cfg.Gates; g++ {
		var n netlist.Net
		switch rng.Intn(7) {
		case 0:
			n = b.And(pick(), pick())
		case 1:
			n = b.Or(pick(), pick())
		case 2:
			n = b.Xor(pick(), pick())
		case 3:
			n = b.Nand(pick(), pick())
		case 4:
			n = b.Nor(pick(), pick())
		case 5:
			n = b.Not(pick())
		default:
			n = b.Mux(pick(), pick(), pick())
		}
		pool = append(pool, n)
	}
	// Close the sequential loops: every register samples a random net.
	for _, ci := range regCells {
		b.PatchCellInput(ci, 0, pick())
	}
	outs := make([]netlist.Net, 8)
	for i := range outs {
		outs[i] = pool[len(pool)-1-i%len(pool)]
	}
	b.Output("out", outs)
	return Stimulus{Ports: []string{"in"}, Window: cfg.Window}, nil
}
