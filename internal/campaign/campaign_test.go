package campaign

import (
	"testing"

	"emtrust/internal/logic"
	"emtrust/internal/netlist"
)

// benchCampaignConfig is a small campaign tuned for the generated
// benchmark designs: lenient rarity (bench gate clouds have few truly
// rare nets), a short payload bank, and no footprint padding.
func benchCampaignConfig(seed int64, members int) Config {
	return Config{
		Seed:           seed,
		Members:        members,
		MinK:           2,
		MaxK:           4,
		Rarity:         []float64{0.45},
		MinRarity:      0.01,
		PayloadStages:  4,
		TargetRegion:   "bench",
		ProfileWindows: 2,
	}
}

// buildBenchCampaign builds a bench design, generates a campaign on it,
// and returns the base netlist, stimulus, and campaign.
func buildBenchCampaign(t *testing.T, bcfg BenchConfig, ccfg Config) (*netlist.Netlist, Stimulus, *Campaign) {
	t.Helper()
	b := netlist.NewBuilder("bench")
	stim, err := BuildBench(b, bcfg)
	if err != nil {
		t.Fatalf("BuildBench: %v", err)
	}
	base := b.Build()
	camp, err := Generate(base, stim, nil, ccfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return base, stim, camp
}

// infect rebuilds the bench design and inserts the member into it.
func infect(t *testing.T, bcfg BenchConfig, m *Member) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("bench_" + m.InsertName())
	if _, err := BuildBench(b, bcfg); err != nil {
		t.Fatalf("BuildBench: %v", err)
	}
	if err := m.Insert(b); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	return b.Build()
}

func TestGenerateProperties(t *testing.T) {
	bcfg := DefaultBench(7)
	ccfg := benchCampaignConfig(11, 12)
	base, _, camp := buildBenchCampaign(t, bcfg, ccfg)

	if len(camp.Members) != ccfg.Members {
		t.Fatalf("got %d members, want %d", len(camp.Members), ccfg.Members)
	}
	for _, m := range camp.Members {
		if m.K < ccfg.MinK || m.K > ccfg.MaxK {
			t.Errorf("member %d: k=%d outside %d..%d", m.ID, m.K, ccfg.MinK, ccfg.MaxK)
		}
		if len(m.Trigger) != m.K {
			t.Errorf("member %d: %d terms, want %d", m.ID, len(m.Trigger), m.K)
		}
		want := 1.0
		seen := map[netlist.Net]bool{}
		for _, term := range m.Trigger {
			if seen[term.Net] {
				t.Errorf("member %d: duplicate trigger net %d", m.ID, term.Net)
			}
			seen[term.Net] = true
			if term.Net == m.Victim {
				t.Errorf("member %d: victim %d is a trigger term", m.ID, m.Victim)
			}
			if r := camp.Profile.Rarity(term.Net); r > m.RarityMax || r < ccfg.MinRarity {
				t.Errorf("member %d: term rarity %.4f outside [%.4f, %.4f]", m.ID, r, ccfg.MinRarity, m.RarityMax)
			}
			want *= term.P
		}
		if m.TriggerProb != want {
			t.Errorf("member %d: TriggerProb %.6g, want %.6g", m.ID, m.TriggerProb, want)
		}
	}

	// Every member must insert into a fresh base build and validate.
	for _, m := range camp.Members[:4] {
		inf := infect(t, bcfg, m)
		if err := inf.Check(); err != nil {
			t.Fatalf("member %d: infected netlist invalid: %v", m.ID, err)
		}
		if inf.NumNets() <= base.NumNets() {
			t.Fatalf("member %d: no nets added", m.ID)
		}
	}
}

func TestFootprintPadding(t *testing.T) {
	bcfg := DefaultBench(3)
	ccfg := benchCampaignConfig(5, 6)
	ccfg.FootprintGE = 120
	_, _, camp := buildBenchCampaign(t, bcfg, ccfg)
	for _, m := range camp.Members {
		b := netlist.NewBuilder("bench_pad")
		if _, err := BuildBench(b, bcfg); err != nil {
			t.Fatal(err)
		}
		limit := b.NumCells()
		if err := m.Insert(b); err != nil {
			t.Fatalf("member %d: %v", m.ID, err)
		}
		if ge := b.GateEquivalentsSince(limit); ge != ccfg.FootprintGE {
			t.Errorf("member %d: padded to %.2f GE, want %.2f", m.ID, ge, ccfg.FootprintGE)
		}
	}
}

// TestGenerateDeterministicAcrossLanes pins the byte-reproducibility
// claim: the same campaign seed yields identical member specs and
// infected netlists no matter how many physical wide lanes evaluate the
// profiling stimulus.
func TestGenerateDeterministicAcrossLanes(t *testing.T) {
	bcfg := DefaultBench(19)
	var hashes []uint64
	var netHashes []uint64
	for _, lanes := range []int{64, 7, 1} {
		ccfg := benchCampaignConfig(23, 6)
		ccfg.Lanes = lanes
		_, _, camp := buildBenchCampaign(t, bcfg, ccfg)
		hashes = append(hashes, camp.Hash())
		netHashes = append(netHashes, NetlistHash(infect(t, bcfg, camp.Members[0])))
	}
	for i := 1; i < len(hashes); i++ {
		if hashes[i] != hashes[0] {
			t.Errorf("campaign hash differs across lane counts: %x vs %x", hashes[i], hashes[0])
		}
		if netHashes[i] != netHashes[0] {
			t.Errorf("netlist hash differs across lane counts: %x vs %x", netHashes[i], netHashes[0])
		}
	}
}

// scalarWindow drives one stimulus window on a scalar simulator using
// the same sequencing as driveWindow and returns every net value after
// each cycle.
func scalarWindow(t *testing.T, sim *logic.Simulator, stim Stimulus, bits map[string][]uint8) [][]uint8 {
	t.Helper()
	n := sim.Netlist()
	snap := func() []uint8 {
		vals := make([]uint8, n.NumNets())
		for i := range vals {
			vals[i] = sim.Net(netlist.Net(i))
		}
		return vals
	}
	sim.Reset()
	for _, p := range stim.Ports {
		if err := sim.SetPortBits(p, bits[p]); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range stim.Pulse {
		if err := sim.SetPortUint(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	sim.Settle()
	sim.Tick()
	out := [][]uint8{snap()}
	for _, p := range stim.Pulse {
		if err := sim.SetPortUint(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	sim.Settle()
	for c := 1; c < stim.Window; c++ {
		sim.Tick()
		out = append(out, snap())
	}
	return out
}

// TestEngineDifferential simulates hundreds of generated bench+Trojan
// netlists on the reference, compiled, and wide engines under identical
// stimulus and demands bit-identical net values on every cycle.
func TestEngineDifferential(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 30
	}
	for seed := 0; seed < seeds; seed++ {
		bcfg := BenchConfig{Seed: int64(seed), Inputs: 12, Gates: 80, FFs: 8, Window: 5}
		ccfg := benchCampaignConfig(int64(seed)+1000, 1)
		_, stim, camp := buildBenchCampaign(t, bcfg, ccfg)
		inf := infect(t, bcfg, camp.Members[0])

		ref, err := logic.New(inf, logic.WithReferenceEngine())
		if err != nil {
			t.Fatal(err)
		}
		comp, err := logic.New(inf)
		if err != nil {
			t.Fatal(err)
		}
		wsim, err := logic.New(inf)
		if err != nil {
			t.Fatal(err)
		}
		w, err := wsim.Wide()
		if err != nil {
			t.Fatal(err)
		}
		w.OnWideToggle = func(int32, uint64, uint64) {}

		rng := splitRand(int64(seed), 0xd1f, 0)
		bits := map[string][]uint8{}
		portBits := [][][]uint8{}
		for _, p := range stim.Ports {
			port, _ := inf.InputPort(p)
			bs := make([]uint8, len(port.Nets))
			for i := range bs {
				bs[i] = uint8(rng.Int63() & 1)
			}
			bits[p] = bs
			portBits = append(portBits, [][]uint8{bs})
		}

		refVals := scalarWindow(t, ref, stim, bits)
		compVals := scalarWindow(t, comp, stim, bits)

		cycle := 0
		err = driveWindow(w, []*logic.State{wsim.State()}, stim, portBits, func(c int) {
			for ni := 0; ni < inf.NumNets(); ni++ {
				wv := w.NetLane(netlist.Net(ni), 0)
				if wv != refVals[cycle][ni] || compVals[cycle][ni] != refVals[cycle][ni] {
					t.Fatalf("seed %d cycle %d net %d: ref=%d compiled=%d wide=%d",
						seed, cycle, ni, refVals[cycle][ni], compVals[cycle][ni], wv)
				}
			}
			cycle++
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSearchDeterministicAcrossLanes pins search-trajectory determinism
// against the physical lane count of the evaluator.
func TestSearchDeterministicAcrossLanes(t *testing.T) {
	bcfg := DefaultBench(31)
	ccfg := benchCampaignConfig(37, 1)
	_, stim, camp := buildBenchCampaign(t, bcfg, ccfg)
	m := camp.Members[0]
	inf := infect(t, bcfg, m)

	var first *SearchResult
	for _, lanes := range []int{64, 5} {
		e, err := NewEvaluator(inf, stim, m, lanes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Search(e, GA{}, 32, 4, SearchSeed(ccfg.Seed, m.ID))
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		for g := range first.Best {
			if res.Best[g] != first.Best[g] {
				t.Fatalf("lane count %d: generation %d best %d, want %d", lanes, g, res.Best[g], first.Best[g])
			}
		}
		if string(res.BestGenome) != string(first.BestGenome) {
			t.Fatalf("lane count %d: best genome differs", lanes)
		}
	}
}

// TestSearchersAtEqualBudget checks the budget accounting and that the
// guided searchers never lose to pure random stimulus on aggregate over
// a handful of members (the experiments pin the strict inequality on
// the full campaign).
func TestSearchersAtEqualBudget(t *testing.T) {
	bcfg := BenchConfig{Seed: 41, Inputs: 20, Gates: 200, FFs: 16, Window: 6}
	ccfg := benchCampaignConfig(43, 6)
	ccfg.MinK = 5
	ccfg.MaxK = 6
	ccfg.Rarity = []float64{0.25}
	_, stim, camp := buildBenchCampaign(t, bcfg, ccfg)

	sumGA, sumRand := 0, 0
	for _, m := range camp.Members {
		inf := infect(t, bcfg, m)
		for _, s := range []Searcher{GA{}, Random{}} {
			e, err := NewEvaluator(inf, stim, m, 0)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Search(e, s, 32, 6, SearchSeed(ccfg.Seed, m.ID))
			if err != nil {
				t.Fatal(err)
			}
			if res.Evals != 32*6 {
				t.Fatalf("searcher %s spent %d evals, budget is %d", res.Searcher, res.Evals, 32*6)
			}
			if res.BestScore < 1 || res.BestScore > m.K {
				t.Fatalf("searcher %s: best score %d outside 1..%d", res.Searcher, res.BestScore, m.K)
			}
			switch s.(type) {
			case GA:
				sumGA += res.BestScore
			case Random:
				sumRand += res.BestScore
			}
		}
	}
	if sumGA < sumRand {
		t.Errorf("GA aggregate coverage %d below random baseline %d at equal budget", sumGA, sumRand)
	}
}

func TestProfileActivitySmallCircuit(t *testing.T) {
	b := netlist.NewBuilder("tiny")
	in := b.Input("in", 2)
	and := b.And(in[0], in[1])
	nor := b.Nor(in[0], in[1])
	b.Output("out", []netlist.Net{and, nor})
	n := b.Build()
	stim := Stimulus{Ports: []string{"in"}, Window: 2}

	prof, err := ProfileActivity(n, stim, 8, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Samples != 8*64*2 {
		t.Fatalf("samples=%d, want %d", prof.Samples, 8*64*2)
	}
	check := func(net netlist.Net, want, tol float64) {
		if p := prof.P[net]; p < want-tol || p > want+tol {
			t.Errorf("net %d: P=%.3f, want %.3f±%.3f", net, p, want, tol)
		}
	}
	check(in[0], 0.5, 0.1)
	check(and, 0.25, 0.1)
	check(nor, 0.25, 0.1)
	if prof.RareValue(and) != 1 {
		t.Errorf("AND output rare value should be 1")
	}
	if r := prof.Rarity(nor); r > 0.5 {
		t.Errorf("rarity %f > 0.5", r)
	}
}
