// Package campaign generates unbounded families of rare-trigger hardware
// Trojans and searches for stimuli that activate them, turning the
// paper's five hand-built threats into a swept scenario space.
//
// The package has three layers. The generator profiles per-net signal
// probabilities of a base design under random stimulus (one 64-lane
// wide simulation per window), selects k rare nets whose AND forms a
// stealthy trigger, and attaches an XOR payload onto a victim net — the
// classic rare-node insertion recipe. The stimulus-search layer evolves
// 64-lane stimulus populations toward partial-trigger activation behind
// one Searcher interface (GA, plain random, MERO-style bit-flip
// sensitization) at an equal simulation budget. The sweep harness in
// internal/experiments runs detector ROC over hundreds of generated
// members. Everything derives from one splitmix64-expanded campaign
// seed, so a whole campaign — member specs, infected netlists, search
// trajectories — is byte-reproducible at any worker or lane count.
package campaign

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"emtrust/internal/aes"
	"emtrust/internal/logic"
	"emtrust/internal/netlist"
)

// Stimulus describes how to drive a base design's inputs during
// profiling and trigger search: which ports carry fresh random (or
// genome) bits, which one-bit ports pulse high on the first cycle of a
// window (the AES start port), and how many cycles one stimulus window
// runs.
type Stimulus struct {
	// Ports lists the input buses driven with stimulus bits, in a fixed
	// order (the genome layout follows it).
	Ports []string
	// Pulse lists one-bit ports held high for the first cycle of each
	// window and low afterwards.
	Pulse []string
	// Window is the number of clock cycles per stimulus window.
	Window int
}

// AESStimulus drives the repository's AES core: random plaintext and
// key, a start pulse, and a window long enough to cover the 11-round
// encryption.
func AESStimulus() Stimulus {
	return Stimulus{
		Ports:  []string{aes.PortPT, aes.PortKey},
		Pulse:  []string{aes.PortStart},
		Window: aes.Latency + 3,
	}
}

// width returns the total stimulus bit width (the genome length).
func (s Stimulus) width(n *netlist.Netlist) (int, error) {
	total := 0
	for _, name := range s.Ports {
		p, ok := n.InputPort(name)
		if !ok {
			return 0, fmt.Errorf("campaign: no input port %q on %s", name, n.Name)
		}
		total += len(p.Nets)
	}
	return total, nil
}

// splitmix64 is the SplitMix64 finalizer used to derive independent
// sub-seeds from the campaign seed (the same permutation the chip
// model uses for trace seeding).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Seed streams: every independent consumer of campaign randomness draws
// from its own stream so no result depends on evaluation order.
const (
	streamProfile = 1 // profiling stimulus, indexed by logical lane
	streamMember  = 2 // member spec sampling, indexed by member id
	streamSearch  = 3 // search trajectories, indexed by (member, searcher)
)

// subSeed derives a deterministic non-negative seed from
// (seed, stream, index).
func subSeed(seed int64, stream, index uint64) int64 {
	h := splitmix64(uint64(seed) ^ 0x63616d7061696768) // "campaigh"
	h = splitmix64(h ^ stream)
	h = splitmix64(h ^ index)
	return int64(h >> 1)
}

// splitRand returns a private generator for (seed, stream, index).
func splitRand(seed int64, stream, index uint64) *rand.Rand {
	return rand.New(rand.NewSource(subSeed(seed, stream, index)))
}

// driveWindow loads one base state per lane, applies per-lane stimulus
// bits to every stimulus port, pulses the pulse ports for the first
// cycle, and clocks the window, invoking onCycle after every edge. It
// mirrors the chip's capture sequence (inputs settle inside the first
// cycle) so profiled probabilities match what captures exercise.
func driveWindow(w *logic.WideState, states []*logic.State, stim Stimulus, portBits [][][]uint8, onCycle func(cycle int)) error {
	if stim.Window < 1 {
		return fmt.Errorf("campaign: stimulus window %d", stim.Window)
	}
	if err := w.LoadStates(states); err != nil {
		return err
	}
	for pi, name := range stim.Ports {
		if err := w.SetPortLanesBits(name, portBits[pi]); err != nil {
			return err
		}
	}
	for _, p := range stim.Pulse {
		if err := w.SetPortUintAll(p, 1); err != nil {
			return err
		}
	}
	w.Settle()
	w.Tick()
	onCycle(0)
	for _, p := range stim.Pulse {
		if err := w.SetPortUintAll(p, 0); err != nil {
			return err
		}
	}
	w.Settle()
	for c := 1; c < stim.Window; c++ {
		w.Tick()
		onCycle(c)
	}
	return nil
}

// NetlistHash digests a netlist's full structure (cells, regions, loads,
// ports) into one 64-bit value. The determinism tests compare campaign
// netlists across worker and lane counts by hash, and the experiments
// report uses it as the byte-reproducibility witness.
func NetlistHash(n *netlist.Netlist) uint64 {
	h := fnv.New64a()
	put := func(vs ...int64) {
		var buf [8]byte
		for _, v := range vs {
			u := uint64(v)
			for i := range buf {
				buf[i] = byte(u >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	h.Write([]byte(n.Name))
	for _, c := range n.Cells {
		put(int64(c.Type), int64(c.Output), int64(len(c.Inputs)))
		for _, in := range c.Inputs {
			put(int64(in))
		}
		h.Write([]byte(c.Region))
		put(int64(c.Load * 1e18)) // attofarad resolution
	}
	for _, ports := range [][]netlist.Port{n.Inputs, n.Outputs} {
		for _, p := range ports {
			h.Write([]byte(p.Name))
			for _, net := range p.Nets {
				put(int64(net))
			}
		}
	}
	return h.Sum64()
}
