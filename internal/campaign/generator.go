package campaign

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"emtrust/internal/netlist"
	"emtrust/internal/trojan"
)

// ForcePort is the external activation input every campaign member
// declares — the "manageable activation" path the paper adds to its
// Trojans, OR'd with the member's stealthy rare-net condition through
// the shared trigger plumbing. (Not "force": that is a Verilog keyword
// and would break the exported netlists.)
const ForcePort = "hwt_force"

// Region is the netlist region tag of every campaign member's cells.
const Region = "hwt"

// Term is one input of a rare-net AND trigger: the net, the value it
// rarely takes, and the profiled probability of that rare value.
type Term struct {
	Net       netlist.Net
	RareValue uint8
	// P estimates P(net == RareValue) under random stimulus.
	P float64
}

// Member is one generated Trojan: an AND of k rare nets triggering an
// XOR payload spliced into a victim net's fanout, plus a toggling
// payload bank that makes an activated member radiate (the observable
// the EM detectors hunt). A Member implements the chip package's
// Inserter interface, so a campaign chip is built by setting it as
// chip.Config.Insert on a golden configuration.
type Member struct {
	// ID indexes the member within its campaign.
	ID int
	// K is the trigger size (number of AND terms).
	K int
	// RarityMax is the rarity bucket the trigger terms were drawn from:
	// every term satisfies P(rare) <= RarityMax.
	RarityMax float64
	// Trigger lists the k rare-net terms.
	Trigger []Term
	// TriggerProb is the estimated probability that all terms co-assert
	// on a random cycle (independence approximation — the product of
	// term rarities).
	TriggerProb float64
	// Victim is the net whose fanout the XOR payload corrupts.
	Victim netlist.Net
	// VictimTile is the floorplan tile of the victim's driver on the
	// base design (-1 when no floorplan was supplied).
	VictimTile int
	// PayloadStages sizes the rotating register bank that toggles while
	// the payload is active (a scaled-down T4): the member's dynamic EM
	// signature scales with it. Zero disables the bank, leaving only the
	// silent functional corruption.
	PayloadStages int
	// FootprintGE, when positive, pads the member's cells to exactly
	// this many gate equivalents so every member of a campaign produces
	// the same die geometry and the per-geometry EM coupling solve is
	// computed once for the whole campaign.
	FootprintGE float64
}

// InsertName names the member for netlist and build-cache tagging.
func (m *Member) InsertName() string { return fmt.Sprintf("hwt%03d", m.ID) }

// Insert builds the member into b. The base design (whose net ids the
// member references) must already be built; Insert splices the payload
// into the victim's pre-existing fanout and never rewires its own
// cells, and the registered activation flag breaks any combinational
// cycle through the trigger.
func (m *Member) Insert(b *netlist.Builder) error {
	if len(m.Trigger) == 0 {
		return fmt.Errorf("campaign: member %d has no trigger terms", m.ID)
	}
	limit := b.NumCells()
	b.PushRegion(Region)
	defer b.PopRegion()

	// Trigger condition: AND of the k terms, inverting rare-zero nets.
	terms := make([]netlist.Net, len(m.Trigger))
	for i, t := range m.Trigger {
		if t.RareValue == 1 {
			terms[i] = t.Net
		} else {
			terms[i] = b.Not(t.Net)
		}
	}
	cond := b.ReduceAnd(terms)
	tr := trojan.NewTrigger(b, ForcePort, cond)

	// XOR payload: invert the victim for every reader that existed
	// before the insertion. The trigger terms (and the XOR itself) keep
	// reading the original signal.
	payload := b.Xor(m.Victim, tr.Active)
	if b.ReplaceFanout(m.Victim, payload, limit) == 0 {
		return fmt.Errorf("campaign: member %d victim net %d has no fanout", m.ID, m.Victim)
	}

	// Payload bank: an alternating pattern loaded on the activation edge
	// rotates while active, so a triggered member draws extra dynamic
	// power proportional to PayloadStages — and a dormant one is silent.
	if m.PayloadStages > 0 {
		loadPulse := b.And(tr.Cond, b.Not(tr.Active))
		en := b.Or(loadPulse, tr.Active)
		q := make([]netlist.Net, m.PayloadStages)
		cells := make([]int, m.PayloadStages)
		for i := range q {
			q[i] = b.RegE(b.Low(), en)
			cells[i] = b.NumCells() - 1
		}
		for i := range q {
			seed := b.Const(i%2 == 0)
			d := b.Mux(q[(i+1)%len(q)], seed, loadPulse)
			b.PatchCellInput(cells[i], 0, d)
		}
	}

	// Footprint padding: top the region up to FootprintGE with inert
	// inverters (constant inputs, no switching) so the die area — and
	// with it the EM coupling geometry — is identical across members.
	if m.FootprintGE > 0 {
		feed := b.Low() // shared tie; created here only if the base lacked one
		quarters := int(math.Round(4 * (m.FootprintGE - b.GateEquivalentsSince(limit))))
		if quarters < 0 || quarters == 1 {
			return fmt.Errorf("campaign: member %d needs %.2f GE, footprint budget %.2f not reachable",
				m.ID, b.GateEquivalentsSince(limit), m.FootprintGE)
		}
		if quarters%2 == 1 { // odd quarter: one 0.75 GE buffer aligns it
			feed = b.Buf(feed)
			quarters -= 3
		}
		for ; quarters > 0; quarters -= 2 {
			feed = b.Not(feed) // 0.5 GE per inverter
		}
	}
	return nil
}

// Config shapes a campaign.
type Config struct {
	// Seed drives every random choice; one seed reproduces the whole
	// campaign byte for byte.
	Seed int64
	// Members is the campaign size.
	Members int
	// MinK..MaxK sweeps the trigger size across members (round-robin).
	MinK, MaxK int
	// Rarity lists the rarity buckets swept across members: a member of
	// bucket q draws trigger terms with P(rare) <= q.
	Rarity []float64
	// MinRarity excludes effectively constant nets (tie cells, stuck
	// counters) whose trigger could never fire under any stimulus.
	MinRarity float64
	// PayloadStages sizes every member's toggling payload bank.
	PayloadStages int
	// FootprintGE pads every member to a fixed gate-equivalent area
	// (0 disables padding; see Member.FootprintGE).
	FootprintGE float64
	// TargetRegion, when non-empty, restricts trigger and victim nets to
	// cells whose region starts with this prefix (e.g. "aes" keeps the
	// campaign out of the clock divider).
	TargetRegion string
	// ProfileWindows is the number of 64-lane random-stimulus windows
	// profiled for signal probabilities.
	ProfileWindows int
	// Lanes caps the physical wide lanes used for profiling and search
	// (1..64; results are lane-count invariant). 0 means 64.
	Lanes int
}

// DefaultConfig returns the sweep used by the experiments: 105 members
// covering k=2..8 × three rarity buckets, five members per combination.
// The buckets bracket the MERO rare-node threshold (signal probability
// 0.2); the AES core's rarest excitable nets sit near 1/14 (the round
// comparators), so per-term rarity below that is structurally
// unreachable and overall trigger rarity comes from the k-term
// conjunction.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Members:        105,
		MinK:           2,
		MaxK:           8,
		Rarity:         []float64{0.08, 0.15, 0.25},
		MinRarity:      1e-4,
		PayloadStages:  24,
		FootprintGE:    240,
		TargetRegion:   "aes",
		ProfileWindows: 6,
	}
}

func (cfg Config) lanes() int {
	if cfg.Lanes <= 0 {
		return profileLanes
	}
	return cfg.Lanes
}

func (cfg Config) validate() error {
	if cfg.Members < 1 {
		return fmt.Errorf("campaign: need at least 1 member")
	}
	if cfg.MinK < 1 || cfg.MaxK < cfg.MinK {
		return fmt.Errorf("campaign: bad trigger size range %d..%d", cfg.MinK, cfg.MaxK)
	}
	if len(cfg.Rarity) == 0 {
		return fmt.Errorf("campaign: need at least one rarity bucket")
	}
	if cfg.Lanes < 0 || cfg.Lanes > profileLanes {
		return fmt.Errorf("campaign: lanes %d out of range", cfg.Lanes)
	}
	return nil
}

// Campaign is a generated family of Trojan members plus the activity
// profile they were drawn from.
type Campaign struct {
	Cfg     Config
	Profile *Profile
	Members []*Member
}

// Generate profiles the base design and samples cfg.Members Trojan
// specs from it. tileOf, when non-nil, maps a victim net to its
// floorplan tile for the placement sweep. The member sequence is a
// deterministic function of cfg alone.
func Generate(n *netlist.Netlist, stim Stimulus, tileOf func(netlist.Net) int, cfg Config) (*Campaign, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	windows := cfg.ProfileWindows
	if windows < 1 {
		windows = 1
	}
	prof, err := ProfileActivity(n, stim, windows, cfg.lanes(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	return generateFrom(n, prof, tileOf, cfg)
}

// generateFrom samples the member specs from an existing profile.
func generateFrom(n *netlist.Netlist, prof *Profile, tileOf func(netlist.Net) int, cfg Config) (*Campaign, error) {
	// Candidate nets: outputs of cells in the target region. Victims
	// additionally need at least one cell reader to splice into.
	readers := make([]int, n.NumNets())
	for _, c := range n.Cells {
		for _, in := range c.Inputs {
			readers[in]++
		}
	}
	var triggerable, victims []netlist.Net
	for _, c := range n.Cells {
		if cfg.TargetRegion != "" && !strings.HasPrefix(c.Region, cfg.TargetRegion) {
			continue
		}
		r := prof.Rarity(c.Output)
		if r >= cfg.MinRarity {
			triggerable = append(triggerable, c.Output)
		}
		if readers[c.Output] > 0 && r >= cfg.MinRarity {
			victims = append(victims, c.Output)
		}
	}
	if len(victims) == 0 {
		return nil, fmt.Errorf("campaign: no victim candidates in region %q", cfg.TargetRegion)
	}
	// Pre-bucket the trigger candidates per rarity threshold so each
	// member samples from a stable, sorted pool.
	sort.Slice(triggerable, func(i, j int) bool { return triggerable[i] < triggerable[j] })
	pools := make([][]netlist.Net, len(cfg.Rarity))
	for bi, q := range cfg.Rarity {
		for _, net := range triggerable {
			if prof.Rarity(net) <= q {
				pools[bi] = append(pools[bi], net)
			}
		}
	}

	kSpan := cfg.MaxK - cfg.MinK + 1
	camp := &Campaign{Cfg: cfg, Profile: prof, Members: make([]*Member, 0, cfg.Members)}
	for id := 0; id < cfg.Members; id++ {
		k := cfg.MinK + id%kSpan
		bucket := (id / kSpan) % len(cfg.Rarity)
		pool := pools[bucket]
		if len(pool) < k {
			return nil, fmt.Errorf("campaign: rarity bucket %.3g has %d candidates, member %d needs %d",
				cfg.Rarity[bucket], len(pool), id, k)
		}
		rng := splitRand(cfg.Seed, streamMember, uint64(id))
		// Sample k distinct trigger nets (partial Fisher-Yates on a copy).
		picks := append([]netlist.Net(nil), pool...)
		m := &Member{
			ID: id, K: k, RarityMax: cfg.Rarity[bucket],
			PayloadStages: cfg.PayloadStages, FootprintGE: cfg.FootprintGE,
			TriggerProb: 1, VictimTile: -1,
		}
		inTrigger := make(map[netlist.Net]bool, k)
		for i := 0; i < k; i++ {
			j := i + rng.Intn(len(picks)-i)
			picks[i], picks[j] = picks[j], picks[i]
			net := picks[i]
			t := Term{Net: net, RareValue: prof.RareValue(net), P: prof.Rarity(net)}
			m.Trigger = append(m.Trigger, t)
			m.TriggerProb *= t.P
			inTrigger[net] = true
		}
		// Victim: any candidate outside the trigger set.
		for {
			v := victims[rng.Intn(len(victims))]
			if !inTrigger[v] {
				m.Victim = v
				break
			}
		}
		if tileOf != nil {
			m.VictimTile = tileOf(m.Victim)
		}
		camp.Members = append(camp.Members, m)
	}
	return camp, nil
}

// Hash digests every member's full specification; two campaigns with
// equal hashes generated the same Trojan family.
func (c *Campaign) Hash() uint64 {
	h := splitmix64(uint64(len(c.Members)))
	mix := func(v int64) { h = splitmix64(h ^ uint64(v)) }
	for _, m := range c.Members {
		mix(int64(m.ID))
		mix(int64(m.K))
		mix(int64(math.Float64bits(m.RarityMax)))
		for _, t := range m.Trigger {
			mix(int64(t.Net))
			mix(int64(t.RareValue))
			mix(int64(math.Float64bits(t.P)))
		}
		mix(int64(m.Victim))
		mix(int64(m.VictimTile))
		mix(int64(m.PayloadStages))
		mix(int64(math.Float64bits(m.FootprintGE)))
	}
	return h
}
