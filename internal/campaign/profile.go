package campaign

import (
	"fmt"

	"emtrust/internal/logic"
	"emtrust/internal/netlist"
)

// profileLanes is the logical lane count of a profiling run. The
// stimulus of logical lane l is always the same regardless of how many
// physical wide lanes evaluate it, so signal probabilities are
// bit-identical at any lane count.
const profileLanes = logic.MaxLanes

// Profile holds per-net signal-probability estimates of a base design
// under random stimulus: P[net] is the fraction of observed cycles the
// net held 1. Rare-net trigger selection reads it.
type Profile struct {
	// P is indexed by net id (entry 0, the invalid net, is 0).
	P []float64
	// Samples is the number of (lane, cycle) observations per net.
	Samples int
}

// Rarity returns how rarely the net sits at its rare value:
// min(P, 1-P). A hard-to-excite trigger term has small rarity.
func (p *Profile) Rarity(n netlist.Net) float64 {
	pr := p.P[n]
	if pr > 0.5 {
		return 1 - pr
	}
	return pr
}

// RareValue returns the net's rare value: the value it holds less than
// half the time (1 on an exact tie, matching the AND-of-ones recipe).
func (p *Profile) RareValue(n netlist.Net) uint8 {
	if p.P[n] > 0.5 {
		return 0
	}
	return 1
}

// ProfileActivity estimates per-net signal probabilities by simulating
// `windows` windows of 64 random stimulus lanes each through the wide
// engine, accumulating per-net ones-counts every cycle. Lane stimulus
// is derived per (window, logical lane) from the seed, and windows are
// evaluated in chunks of `lanes` physical lanes, so the estimate is
// bit-identical for any lane count from 1 to 64.
func ProfileActivity(n *netlist.Netlist, stim Stimulus, windows, lanes int, seed int64) (*Profile, error) {
	if windows < 1 {
		return nil, fmt.Errorf("campaign: need at least 1 profile window")
	}
	if lanes < 1 || lanes > profileLanes {
		return nil, fmt.Errorf("campaign: profile lanes %d out of range", lanes)
	}
	sim, err := logic.New(n)
	if err != nil {
		return nil, err
	}
	w, err := sim.Wide()
	if err != nil {
		return nil, err
	}
	w.OnWideToggle = func(int32, uint64, uint64) {} // drop per-lane toggle buffering
	base := sim.State()

	widths := make([]int, len(stim.Ports))
	for pi, name := range stim.Ports {
		p, ok := n.InputPort(name)
		if !ok {
			return nil, fmt.Errorf("campaign: no input port %q on %s", name, n.Name)
		}
		widths[pi] = len(p.Nets)
	}

	counts := make([]uint64, n.NumNets())
	samples := 0
	states := make([]*logic.State, 0, lanes)
	portBits := make([][][]uint8, len(stim.Ports))
	for win := 0; win < windows; win++ {
		for lo := 0; lo < profileLanes; lo += lanes {
			chunk := lanes
			if lo+chunk > profileLanes {
				chunk = profileLanes - lo
			}
			states = states[:0]
			for l := 0; l < chunk; l++ {
				states = append(states, base)
			}
			for pi := range portBits {
				portBits[pi] = portBits[pi][:0]
			}
			for l := 0; l < chunk; l++ {
				rng := splitRand(seed, streamProfile, uint64(win*profileLanes+lo+l))
				for pi, width := range widths {
					bits := make([]uint8, width)
					for i := range bits {
						bits[i] = uint8(rng.Int63() & 1)
					}
					portBits[pi] = append(portBits[pi], bits)
				}
			}
			err := driveWindow(w, states, stim, portBits, func(int) {
				w.AddNetOnes(counts)
				samples += chunk
			})
			if err != nil {
				return nil, err
			}
		}
	}

	prof := &Profile{P: make([]float64, n.NumNets()), Samples: samples}
	for i, c := range counts {
		prof.P[i] = float64(c) / float64(samples)
	}
	prof.P[netlist.InvalidNet] = 0
	return prof, nil
}
