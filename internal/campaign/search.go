package campaign

import (
	"fmt"
	"math/rand"

	"emtrust/internal/logic"
	"emtrust/internal/netlist"
)

// Eval scores one stimulus individual against one member's trigger:
// Score is the largest number of trigger terms simultaneously at their
// rare value on any cycle of the window, Full reports whether all of
// them co-asserted (the Trojan fired).
type Eval struct {
	Score int
	Full  bool
}

// Evaluator scores stimulus genomes against a member's trigger terms on
// the infected (or golden — trigger nets exist either way) netlist. One
// genome is the concatenated bits of the stimulus ports, one individual
// per wide lane.
type Evaluator struct {
	sim   *logic.Simulator
	w     *logic.WideState
	base  *logic.State
	stim  Stimulus
	terms []Term
	// widths caches the per-port bit widths; their sum is GenomeLen.
	widths []int
	glen   int
	lanes  int
}

// NewEvaluator prepares a wide-engine evaluator for the member's
// trigger on netlist n. lanes caps the physical lanes per simulation
// batch (0 means 64); results are bit-identical at any lane count
// because each individual's window is independent.
func NewEvaluator(n *netlist.Netlist, stim Stimulus, m *Member, lanes int) (*Evaluator, error) {
	if lanes == 0 {
		lanes = logic.MaxLanes
	}
	if lanes < 1 || lanes > logic.MaxLanes {
		return nil, fmt.Errorf("campaign: evaluator lanes %d out of range", lanes)
	}
	if len(m.Trigger) == 0 {
		return nil, fmt.Errorf("campaign: member %d has no trigger terms", m.ID)
	}
	sim, err := logic.New(n)
	if err != nil {
		return nil, err
	}
	w, err := sim.Wide()
	if err != nil {
		return nil, err
	}
	w.OnWideToggle = func(int32, uint64, uint64) {}
	e := &Evaluator{
		sim: sim, w: w, base: sim.State(), stim: stim,
		terms: m.Trigger, lanes: lanes,
	}
	e.widths = make([]int, len(stim.Ports))
	for pi, name := range stim.Ports {
		p, ok := n.InputPort(name)
		if !ok {
			return nil, fmt.Errorf("campaign: no input port %q on %s", name, n.Name)
		}
		e.widths[pi] = len(p.Nets)
		e.glen += len(p.Nets)
	}
	return e, nil
}

// GenomeLen is the stimulus bit width one individual carries.
func (e *Evaluator) GenomeLen() int { return e.glen }

// Terms returns the number of trigger terms (the maximum Score).
func (e *Evaluator) Terms() int { return len(e.terms) }

// Evaluate runs every genome through one stimulus window and scores its
// partial-trigger coverage. Individuals are packed into wide lanes in
// chunks of the configured lane count.
func (e *Evaluator) Evaluate(pop [][]uint8) ([]Eval, error) {
	evals := make([]Eval, len(pop))
	states := make([]*logic.State, 0, e.lanes)
	portBits := make([][][]uint8, len(e.stim.Ports))
	for lo := 0; lo < len(pop); lo += e.lanes {
		chunk := e.lanes
		if lo+chunk > len(pop) {
			chunk = len(pop) - lo
		}
		states = states[:0]
		for pi := range portBits {
			portBits[pi] = portBits[pi][:0]
		}
		for l := 0; l < chunk; l++ {
			g := pop[lo+l]
			if len(g) != e.glen {
				return nil, fmt.Errorf("campaign: genome length %d, want %d", len(g), e.glen)
			}
			states = append(states, e.base)
			off := 0
			for pi, width := range e.widths {
				portBits[pi] = append(portBits[pi], g[off:off+width])
				off += width
			}
		}
		err := driveWindow(e.w, states, e.stim, portBits, func(int) {
			// sat accumulates, per lane, how many terms sit at their rare
			// value this cycle.
			var sat [logic.MaxLanes]uint8
			for _, t := range e.terms {
				word := e.w.NetWord(t.Net)
				if t.RareValue == 0 {
					word = ^word
				}
				for l := 0; l < chunk; l++ {
					sat[l] += uint8(word >> l & 1)
				}
			}
			for l := 0; l < chunk; l++ {
				s := int(sat[l])
				if s > evals[lo+l].Score {
					evals[lo+l].Score = s
				}
				if s == len(e.terms) {
					evals[lo+l].Full = true
				}
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return evals, nil
}

// Searcher produces the next stimulus population from the previous one
// and its scores. prev and evals are nil on the first generation. All
// strategies receive the same population size and per-generation
// evaluation budget, so comparisons across searchers are budget-fair by
// construction.
type Searcher interface {
	Name() string
	Next(glen, size int, prev [][]uint8, evals []Eval, rng *rand.Rand) [][]uint8
}

func randomGenome(glen int, rng *rand.Rand) []uint8 {
	g := make([]uint8, glen)
	for i := range g {
		g[i] = uint8(rng.Int63() & 1)
	}
	return g
}

func randomPop(glen, size int, rng *rand.Rand) [][]uint8 {
	pop := make([][]uint8, size)
	for i := range pop {
		pop[i] = randomGenome(glen, rng)
	}
	return pop
}

// Random is the baseline: a fresh uniform population every generation
// (pure random stimulus at the same simulation budget).
type Random struct{}

func (Random) Name() string { return "random" }

func (Random) Next(glen, size int, _ [][]uint8, _ []Eval, rng *rand.Rand) [][]uint8 {
	return randomPop(glen, size, rng)
}

// GA is the coverage-guided searcher: elitism, tournament selection on
// partial-trigger score, uniform crossover, and low-rate bit mutation.
type GA struct {
	// Elites kept verbatim per generation (default size/8, min 1).
	Elites int
	// Tournament size for parent selection (default 3).
	Tournament int
	// MutBits is the expected number of bit flips per child (default 2).
	MutBits float64
}

func (GA) Name() string { return "ga" }

func (s GA) Next(glen, size int, prev [][]uint8, evals []Eval, rng *rand.Rand) [][]uint8 {
	if prev == nil {
		return randomPop(glen, size, rng)
	}
	elites := s.Elites
	if elites <= 0 {
		elites = size / 8
	}
	if elites < 1 {
		elites = 1
	}
	if elites > len(prev) {
		elites = len(prev)
	}
	tour := s.Tournament
	if tour <= 0 {
		tour = 3
	}
	mut := s.MutBits
	if mut <= 0 {
		mut = 2
	}
	mutP := mut / float64(glen)

	// Rank indices by score, stable on index for determinism.
	order := make([]int, len(prev))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort: tiny populations
		for j := i; j > 0 && evals[order[j]].Score > evals[order[j-1]].Score; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	pick := func() []uint8 {
		best := rng.Intn(len(prev))
		for t := 1; t < tour; t++ {
			c := rng.Intn(len(prev))
			if evals[c].Score > evals[best].Score {
				best = c
			}
		}
		return prev[best]
	}

	next := make([][]uint8, 0, size)
	for _, i := range order[:elites] {
		next = append(next, append([]uint8(nil), prev[i]...))
	}
	for len(next) < size {
		a, b := pick(), pick()
		child := make([]uint8, glen)
		for i := range child {
			if rng.Int63()&1 == 0 {
				child[i] = a[i]
			} else {
				child[i] = b[i]
			}
			if rng.Float64() < mutP {
				child[i] ^= 1
			}
		}
		next = append(next, child)
	}
	return next
}

// MERO is a rare-node-sensitization style hill climber modeled on the
// N-detect heuristic: it keeps the best individuals seen and mutates a
// few bits at a time, accepting the population wholesale (selection
// happens through the elite pool).
type MERO struct {
	// Flips is the number of bits flipped per mutant (default 4).
	Flips int
}

func (MERO) Name() string { return "mero" }

func (s MERO) Next(glen, size int, prev [][]uint8, evals []Eval, rng *rand.Rand) [][]uint8 {
	if prev == nil {
		return randomPop(glen, size, rng)
	}
	flips := s.Flips
	if flips <= 0 {
		flips = 4
	}
	// Elite pool: top quarter by score.
	elites := len(prev) / 4
	if elites < 1 {
		elites = 1
	}
	order := make([]int, len(prev))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && evals[order[j]].Score > evals[order[j-1]].Score; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	next := make([][]uint8, 0, size)
	for _, i := range order[:elites] {
		next = append(next, append([]uint8(nil), prev[i]...))
	}
	for len(next) < size {
		base := prev[order[rng.Intn(elites)]]
		mutant := append([]uint8(nil), base...)
		for f := 0; f < flips; f++ {
			mutant[rng.Intn(glen)] ^= 1
		}
		next = append(next, mutant)
	}
	return next
}

// SearchResult summarizes one stimulus-search run.
type SearchResult struct {
	Searcher    string
	Population  int
	Generations int
	// Evals is the total simulated individuals (the budget actually
	// spent: Population × Generations).
	Evals int
	// Best traces the best-so-far score after each generation.
	Best []int
	// BestScore is the final best partial-trigger coverage, BestFrac the
	// same as a fraction of the trigger size.
	BestScore int
	BestFrac  float64
	// FullLanes counts evaluated individuals that fully fired the
	// trigger.
	FullLanes int
	// BestGenome is the stimulus achieving BestScore.
	BestGenome []uint8
}

// SearchSeed derives the per-member search seed from the campaign seed,
// so search trajectories are reproducible and independent across
// members.
func SearchSeed(seed int64, memberID int) int64 {
	return subSeed(seed, streamSearch, uint64(memberID))
}

// Search runs gens generations of size individuals with the given
// strategy. Equal (size, gens) means equal simulation budget across
// strategies; the searcher name is folded into the RNG stream so
// different strategies explore independently at the same seed.
func Search(e *Evaluator, s Searcher, size, gens int, seed int64) (*SearchResult, error) {
	if size < 1 || gens < 1 {
		return nil, fmt.Errorf("campaign: search needs size and gens >= 1, got %d, %d", size, gens)
	}
	var nameIx uint64
	for _, c := range []byte(s.Name()) {
		nameIx = nameIx*131 + uint64(c)
	}
	rng := splitRand(seed, streamSearch, nameIx)
	res := &SearchResult{Searcher: s.Name(), Population: size, Generations: gens}
	var pop [][]uint8
	var evals []Eval
	for g := 0; g < gens; g++ {
		pop = s.Next(e.glen, size, pop, evals, rng)
		var err error
		evals, err = e.Evaluate(pop)
		if err != nil {
			return nil, err
		}
		for i, ev := range evals {
			res.Evals++
			if ev.Full {
				res.FullLanes++
			}
			if res.BestGenome == nil || ev.Score > res.BestScore {
				res.BestScore = ev.Score
				res.BestGenome = append(res.BestGenome[:0], pop[i]...)
			}
		}
		res.Best = append(res.Best, res.BestScore)
	}
	res.BestFrac = float64(res.BestScore) / float64(len(e.terms))
	return res, nil
}
