package experiments

import (
	"strings"
	"testing"

	"emtrust/internal/trojan"
)

// TestDegradationAcceptance pins the three claims of the fault-injection
// study on the reduced trace budget: (a) the hardened monitor's false
// alarms stay strictly below the naive monitor's wherever the channel is
// degraded but still usable, (b) every Trojan is still detected through
// the moderately degraded channel, and (c) the guarded re-baseliner
// never absorbs a Trojan activation.
func TestDegradationAcceptance(t *testing.T) {
	res, err := Degradation(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("sweep too small: %d points", len(res.Points))
	}
	var moderate *DegradationPoint
	for i := range res.Points {
		p := &res.Points[i]
		if p.Severity == res.ModerateSeverity {
			moderate = p
		}
		// (a) On a degraded-but-usable channel the hardening must pay for
		// itself: strictly fewer false alarms than the paper's monitor.
		if p.Severity > 0 && p.Rejected < 0.5 && p.FalseAlarmNaive > 0 {
			if p.FalseAlarmHardened >= p.FalseAlarmNaive {
				t.Errorf("severity %.1f: hardened FA %.0f%% not below naive %.0f%%",
					p.Severity, 100*p.FalseAlarmHardened, 100*p.FalseAlarmNaive)
			}
		}
		// A dead channel must be reported as dead, not as a Trojan.
		if p.Rejected > 0.9 && p.FalseAlarmHardened > 0.05 {
			t.Errorf("severity %.1f: %.0f%% rejected but hardened still false-alarms %.0f%%",
				p.Severity, 100*p.Rejected, 100*p.FalseAlarmHardened)
		}
	}
	if moderate == nil {
		t.Fatalf("no sweep point at the moderate severity %.1f", res.ModerateSeverity)
	}
	// (b) Through the moderately degraded channel, every digital Trojan
	// and the analog A2 must still be caught on most of their stream.
	for _, k := range trojan.Kinds() {
		if got := moderate.DetectionHardened[k]; got < 0.5 {
			t.Errorf("moderate severity: hardened %v detection %.0f%% below 50%%", k, 100*got)
		}
	}
	if moderate.A2Hardened < 0.5 {
		t.Errorf("moderate severity: hardened A2 detection %.0f%% below 50%%", 100*moderate.A2Hardened)
	}
	if moderate.FalseAlarmHardened >= moderate.FalseAlarmNaive {
		t.Errorf("moderate severity: hardened FA %.0f%% not below naive %.0f%%",
			100*moderate.FalseAlarmHardened, 100*moderate.FalseAlarmNaive)
	}
	// (c) After a long quiet prefix of adaptation, a Trojan that switches
	// on must stay alarmed — re-baselining must not absorb the step.
	if res.FreezePersistence < 0.75 {
		t.Errorf("freeze study: persistence %.0f%% — the re-baseliner absorbed the activation",
			100*res.FreezePersistence)
	}
	out := res.String()
	for _, want := range []string{"severity", "false+", "freeze study"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
