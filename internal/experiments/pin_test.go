package experiments

import (
	"math"
	"testing"

	"emtrust/internal/trojan"
)

// The fixed-seed pins below are the decision-identity gate for the
// planned spectral engine and the idle-chain replay path: detector
// booleans, spot counts, and flagged frequencies are exact, continuous
// metrics are pinned to a relative tolerance that absorbs last-ULP
// drift from the half-size real transform (Sqrt vs Hypot, fused
// magnitude) while still catching any real numerical change.

const pinRelTol = 1e-9

func pinClose(t *testing.T, name string, got, want float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %g, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want) > pinRelTol*math.Abs(want) {
		t.Errorf("%s = %.17g, want %.17g (rel Δ %.3g)", name, got, want,
			math.Abs(got-want)/math.Abs(want))
	}
}

func TestA2SpectrumPinned(t *testing.T) {
	res, err := A2Spectrum(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("A2 detection flipped")
	}
	if res.Spots != 5 {
		t.Fatalf("spot count = %d, want 5", res.Spots)
	}
	if res.PeakIncreaseHz != 24000000 {
		t.Fatalf("strongest spot at %g Hz, want 24 MHz", res.PeakIncreaseHz)
	}
	pinClose(t, "PeakIncrease", res.PeakIncrease, 3.923653457819487)
	pinClose(t, "ClockAmpOff", res.ClockAmpOff, 9.9145014932599708e-10)
	pinClose(t, "ClockAmpOn", res.ClockAmpOn, 8.4235448495267484e-10)
	pinClose(t, "HarmonicAmpOff", res.HarmonicAmpOff, 9.8273414888015467e-10)
	pinClose(t, "HarmonicAmpOn", res.HarmonicAmpOn, 4.8300592005960704e-09)
}

func TestFig6SpectraPinned(t *testing.T) {
	res, err := Fig6Spectra(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := map[trojan.Kind]struct {
		detected    bool
		spots       int
		strongestHz float64
	}{
		trojan.T1AMLeaker:       {true, 40, 19500000},
		trojan.T2LeakageCurrent: {true, 49, 24000000},
		trojan.T3CDMALeaker:     {false, 0, 0},
		trojan.T4PowerHog:       {true, 20, 24000000},
	}
	if len(res.Panels) != len(want) {
		t.Fatalf("%d panels, want %d", len(res.Panels), len(want))
	}
	for _, p := range res.Panels {
		w, ok := want[p.Trojan]
		if !ok {
			t.Errorf("unexpected panel for %v", p.Trojan)
			continue
		}
		if p.Detected != w.detected {
			t.Errorf("%v detection = %v, want %v", p.Trojan, p.Detected, w.detected)
		}
		if p.Spots != w.spots {
			t.Errorf("%v spot count = %d, want %d", p.Trojan, p.Spots, w.spots)
		}
		if p.StrongestHz != w.strongestHz {
			t.Errorf("%v strongest spot at %g Hz, want %g", p.Trojan, p.StrongestHz, w.strongestHz)
		}
	}
}
