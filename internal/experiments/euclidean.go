package experiments

import (
	"fmt"
	"strings"

	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/dsp"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

// EuclideanRow is one Trojan's detection outcome in Section IV-C.
type EuclideanRow struct {
	Trojan trojan.Kind
	// MeanDistance is the mean Euclidean distance of the Trojan-active
	// traces to the golden centroid in PCA space.
	MeanDistance float64
	// Relative is MeanDistance normalized by the golden population's
	// mean centroid distance (1.0 = indistinguishable from golden),
	// the scale-free quantity to compare against the paper's numbers.
	Relative float64
	// DetectionRate is the fraction of traces whose Eq. (1) verdict
	// fired.
	DetectionRate float64
	// PaperDistance is the published Euclidean distance.
	PaperDistance float64
}

// EuclideanResult reproduces Section IV-C: the Euclidean distances
// between the reference circuit and each Trojan-activated circuit, all
// measured by the on-chip sensor in simulation mode.
type EuclideanResult struct {
	GoldenMeanDistance float64
	Threshold          float64
	Rows               []EuclideanRow
}

// paperEuclidean holds the published distances for Trojans 1-4.
var paperEuclidean = map[trojan.Kind]float64{
	trojan.T1AMLeaker:       0.27,
	trojan.T2LeakageCurrent: 0.25,
	trojan.T3CDMALeaker:     0.05,
	trojan.T4PowerHog:       0.28,
}

// EuclideanSimulation runs the Section IV-C experiment.
func EuclideanSimulation(cfg Config) (*EuclideanResult, error) {
	c, err := infectedChip(cfg)
	if err != nil {
		return nil, err
	}
	ch := chip.SimulationChannels()

	goldenSet, err := captureSet(c, cfg, ch, cfg.GoldenTraces, cfg.CaptureCycles)
	if err != nil {
		return nil, err
	}
	fp, err := core.BuildFingerprint(goldenSet.Sensor.Traces, cfg.Fingerprint)
	if err != nil {
		return nil, err
	}
	heldOut, err := captureSet(c, cfg, ch, cfg.TestTraces, cfg.CaptureCycles)
	if err != nil {
		return nil, err
	}
	goldenMean := meanCentroidDistance(fp, heldOut.Sensor.Traces)

	res := &EuclideanResult{GoldenMeanDistance: goldenMean, Threshold: fp.Threshold}
	for _, k := range trojan.Kinds() {
		set, err := withTrojan(c, cfg, ch, k, cfg.TestTraces, cfg.CaptureCycles)
		if err != nil {
			return nil, err
		}
		mean := meanCentroidDistance(fp, set.Sensor.Traces)
		alarms := 0
		for _, t := range set.Sensor.Traces {
			if fp.Evaluate(t).Alarm {
				alarms++
			}
		}
		res.Rows = append(res.Rows, EuclideanRow{
			Trojan:        k,
			MeanDistance:  mean,
			Relative:      mean / goldenMean,
			DetectionRate: float64(alarms) / float64(len(set.Sensor.Traces)),
			PaperDistance: paperEuclidean[k],
		})
	}
	return res, nil
}

func meanCentroidDistance(fp *core.Fingerprint, traces []*trace.Trace) float64 {
	ds := make([]float64, len(traces))
	for i, t := range traces {
		ds[i] = fp.CentroidDistance(t)
	}
	return dsp.Mean(ds)
}

// String renders the Section IV-C comparison.
func (r *EuclideanResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Euclidean distances, on-chip sensor, simulation (Section IV-C)\n")
	fmt.Fprintf(&sb, "golden mean centroid distance: %.4g, Eq.(1) threshold: %.4g\n",
		r.GoldenMeanDistance, r.Threshold)
	fmt.Fprintf(&sb, "%-6s %14s %10s %10s %10s\n", "trojan", "mean dist (V)", "relative", "detect%", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-6s %14.4g %10.2f %9.0f%% %10.2f\n",
			row.Trojan, row.MeanDistance, row.Relative, 100*row.DetectionRate, row.PaperDistance)
	}
	return sb.String()
}
