package experiments

import (
	"testing"

	"emtrust/internal/campaign"
)

// smallCampaignConfig shrinks the sweep for the quick tests: fewer
// members, fewer traces, smaller search budget.
func smallCampaignConfig() Config {
	cfg := DefaultConfig()
	cfg.GoldenTraces = 20
	cfg.TestTraces = 16
	cfg.CampaignMembers = 8
	cfg.CampaignSearchMembers = 3
	cfg.CampaignSearchPop = 16
	cfg.CampaignSearchGens = 3
	return cfg
}

func TestCampaignSmall(t *testing.T) {
	cfg := smallCampaignConfig()
	res, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Members != cfg.CampaignMembers {
		t.Fatalf("got %d members, want %d", res.Members, cfg.CampaignMembers)
	}
	if !res.Reproducible {
		t.Errorf("campaign regeneration did not match (hash %016x)", res.Hash)
	}
	if len(res.ROC) == 0 || len(res.ByK) == 0 || len(res.ByRarity) == 0 || len(res.ByTile) == 0 {
		t.Fatalf("missing sweep sections: roc=%d byK=%d byRarity=%d byTile=%d",
			len(res.ROC), len(res.ByK), len(res.ByRarity), len(res.ByTile))
	}
	// The ROC must be monotone: raising the margin can only trade true
	// positives away.
	for i := 1; i < len(res.ROC); i++ {
		if res.ROC[i].TPR > res.ROC[i-1].TPR+1e-12 || res.ROC[i].FPR > res.ROC[i-1].FPR+1e-12 {
			t.Errorf("ROC not monotone at margin %.2f", res.ROC[i].Margin)
		}
	}
	for _, m := range res.PerMember {
		if len(m.ActiveRel) != cfg.TestTraces || len(m.DormantRel) != cfg.TestTraces {
			t.Fatalf("member %d: %d/%d distances, want %d each", m.ID, len(m.ActiveRel), len(m.DormantRel), cfg.TestTraces)
		}
	}
	if s := res.String(); len(s) == 0 {
		t.Error("empty rendering")
	}
}

// TestCampaignAcceptance pins the issue's acceptance criteria on the
// full campaign: at least 100 generated Trojans at a fixed seed, a
// detector ROC over trigger rarity/size/placement, the GA strictly
// beating the random baseline at an equal simulation budget, and every
// artifact byte-reproducible from the campaign seed.
func TestCampaignAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign; run without -short")
	}
	cfg := DefaultConfig()
	cfg.GoldenTraces = 20
	cfg.TestTraces = 16
	res, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Members < 100 {
		t.Fatalf("campaign has %d members, acceptance floor is 100", res.Members)
	}
	if !res.Reproducible {
		t.Errorf("campaign is not byte-reproducible from its seed")
	}
	if res.SampleNetlistHash == 0 {
		t.Errorf("missing netlist reproducibility witness")
	}
	// An independent end-to-end regeneration must reproduce both the
	// member specs and the infected netlist bytes.
	res2, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Hash != res.Hash || res2.SampleNetlistHash != res.SampleNetlistHash {
		t.Errorf("regenerated campaign differs: %016x/%016x vs %016x/%016x",
			res2.Hash, res2.SampleNetlistHash, res.Hash, res.SampleNetlistHash)
	}

	// The sweep must actually cover the k and rarity axes.
	if len(res.ByK) < 7 {
		t.Errorf("trigger-size sweep has %d groups, want 7 (k=2..8)", len(res.ByK))
	}
	if len(res.ByRarity) < 3 {
		t.Errorf("rarity sweep has %d groups, want 3", len(res.ByRarity))
	}

	// An activated rare-trigger Trojan with its payload bank running
	// must be overwhelmingly visible to the fingerprint at the paper's
	// threshold, while the dormant chip stays quiet.
	var p1 *CampaignROCPoint
	for i := range res.ROC {
		if res.ROC[i].Margin == 1.0 {
			p1 = &res.ROC[i]
		}
	}
	if p1 == nil {
		t.Fatal("no margin-1.0 operating point")
	}
	if p1.TPR < 0.9 {
		t.Errorf("TPR at margin 1.0 is %.1f%%, want >= 90%%", 100*p1.TPR)
	}
	if p1.FPR > 0.1 {
		t.Errorf("FPR at margin 1.0 is %.1f%%, want <= 10%%", 100*p1.FPR)
	}

	// Search: GA strictly above the random baseline at equal budget.
	ga, rnd := res.SearchStat(campaign.GA{}.Name()), res.SearchStat(campaign.Random{}.Name())
	if ga == nil || rnd == nil {
		t.Fatal("missing searcher stats")
	}
	if ga.MeanFrac <= rnd.MeanFrac {
		t.Errorf("GA mean coverage %.3f not strictly above random %.3f at budget %d",
			ga.MeanFrac, rnd.MeanFrac, res.SearchBudget)
	}
}
