package experiments

import (
	"fmt"
	"strings"

	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

// VariationRow compares one fingerprinting strategy under process
// variation.
type VariationRow struct {
	Strategy string
	// FalseAlarmRate on the (Trojan-free) deployed chip.
	FalseAlarmRate float64
	// DetectionRate for an activated T2 on the deployed chip.
	DetectionRate float64
}

// VariationResult is the extension experiment motivating the paper's
// post-deployment approach: with per-cell process variation between
// chips, a fingerprint fitted on a *golden reference chip* false-alarms
// on a different (healthy) die, while the runtime framework's
// self-referenced fingerprint — fitted on the same deployed chip it
// monitors — stays clean and keeps catching Trojans.
type VariationResult struct {
	Sigma float64
	Rows  []VariationRow
}

// Variation runs the golden-chip-vs-self-reference comparison at the
// given per-cell charge sigma (defaulting to 5% when the config leaves
// variation unset).
func Variation(cfg Config) (*VariationResult, error) {
	sigma := cfg.Chip.Power.VariationSigma
	if sigma == 0 {
		sigma = 0.05
	}

	build := func(cornerSeed int64) (*chip.Chip, error) {
		chipCfg := cfg.Chip
		chipCfg.Power.VariationSigma = sigma
		chipCfg.Power.CornerSigma = sigma
		chipCfg.Power.VariationSeed = cornerSeed
		chipCfg.Seed = cornerSeed + 100
		c, err := chip.New(chipCfg)
		if err != nil {
			return nil, err
		}
		if err := c.DeactivateAll(); err != nil {
			return nil, err
		}
		c.EnableA2(false)
		return c, nil
	}
	refChip, err := build(1) // the foundry's golden reference die
	if err != nil {
		return nil, err
	}
	fieldChip, err := build(2) // the deployed die being monitored
	if err != nil {
		return nil, err
	}
	ch := chip.SimulationChannels()

	collect := func(c *chip.Chip, n int) ([]*trace.Trace, error) {
		set, err := captureSet(c, cfg, ch, n, cfg.CaptureCycles)
		if err != nil {
			return nil, err
		}
		return set.Sensor.Traces, nil
	}

	refGolden, err := collect(refChip, cfg.GoldenTraces)
	if err != nil {
		return nil, err
	}
	fieldGolden, err := collect(fieldChip, cfg.GoldenTraces)
	if err != nil {
		return nil, err
	}
	refFP, err := core.BuildFingerprint(refGolden, cfg.Fingerprint)
	if err != nil {
		return nil, err
	}
	selfFP, err := core.BuildFingerprint(fieldGolden, cfg.Fingerprint)
	if err != nil {
		return nil, err
	}

	evaluate := func(fp *core.Fingerprint) (VariationRow, error) {
		clean, err := collect(fieldChip, cfg.TestTraces)
		if err != nil {
			return VariationRow{}, err
		}
		falseAlarms := 0
		for _, t := range clean {
			if fp.Evaluate(t).Alarm {
				falseAlarms++
			}
		}
		if err := fieldChip.SetTrojan(trojan.T2LeakageCurrent, true); err != nil {
			return VariationRow{}, err
		}
		infected, err := collect(fieldChip, cfg.TestTraces)
		if derr := fieldChip.SetTrojan(trojan.T2LeakageCurrent, false); derr != nil && err == nil {
			err = derr
		}
		if err != nil {
			return VariationRow{}, err
		}
		hits := 0
		for _, t := range infected {
			if fp.Evaluate(t).Alarm {
				hits++
			}
		}
		return VariationRow{
			FalseAlarmRate: float64(falseAlarms) / float64(len(clean)),
			DetectionRate:  float64(hits) / float64(len(infected)),
		}, nil
	}

	golden, err := evaluate(refFP)
	if err != nil {
		return nil, err
	}
	golden.Strategy = "golden-chip reference"
	self, err := evaluate(selfFP)
	if err != nil {
		return nil, err
	}
	self.Strategy = "self-referenced (paper)"
	return &VariationResult{Sigma: sigma, Rows: []VariationRow{golden, self}}, nil
}

// String renders the comparison.
func (r *VariationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fingerprinting under %.0f%% process variation (per-cell + corner, extension)\n", 100*r.Sigma)
	fmt.Fprintf(&sb, "%-26s %14s %14s\n", "strategy", "false alarms", "T2 detection")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-26s %13.0f%% %13.0f%%\n", row.Strategy, 100*row.FalseAlarmRate, 100*row.DetectionRate)
	}
	fmt.Fprintf(&sb, "(post-deployment self-reference avoids the golden-chip problem)\n")
	return sb.String()
}
