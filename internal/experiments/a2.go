package experiments

import (
	"fmt"
	"strings"

	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/dsp"
)

// A2SpectrumResult reproduces Figure 4: the EM spectrum with the A2-style
// Trojan dormant (blue) versus triggering (red). The Trojan's trigger is
// fed by the on-chip clock-division signal, so its fast flipping lands on
// the clock spot and its harmonic ("T = g": compare magnitudes at the
// existing frequency spots).
type A2SpectrumResult struct {
	ClockHz float64
	// Amplitudes at the clock fundamental and second harmonic, dormant
	// vs triggered.
	ClockAmpOff, ClockAmpOn       float64
	HarmonicAmpOff, HarmonicAmpOn float64
	// PeakIncrease is the largest relative amplitude increase across
	// spectral spots (the "Trojan activation peak" annotation).
	PeakIncrease   float64
	PeakIncreaseHz float64
	// Detected reports the Section III-E spectral detector verdict.
	Detected bool
	// Spots is the number of offending bins flagged by the detector.
	Spots int
}

// A2Spectrum runs the Figure 4 experiment: long idle captures (the A2
// victim is the free-running clock-division wire) with the analog Trojan
// disabled, then enabled, compared in the frequency domain on the
// on-chip sensor.
func A2Spectrum(cfg Config) (*A2SpectrumResult, error) {
	chipCfg := cfg.Chip
	chipCfg.WithTrojans = false
	chipCfg.WithA2 = true
	c, err := chip.New(chipCfg)
	if err != nil {
		return nil, err
	}
	ch := chip.SimulationChannels()
	cycles := cfg.SpectralCycles

	// Golden envelope: several dormant captures.
	c.EnableA2(false)
	gSet, err := idleTraces(c, ch, cfg.GoldenTraces/8+4, cycles)
	if err != nil {
		return nil, err
	}
	gTraces := gSet.Sensor.Traces
	sd, err := core.BuildSpectralDetector(gTraces, cfg.Spectral)
	if err != nil {
		return nil, err
	}
	offSpec := dsp.NewSpectrum(gTraces[0].Samples, gTraces[0].Dt, cfg.Spectral.Window)

	// Trigger the Trojan: the clkdiv wire toggles every cycle, so a
	// warm-up capture charges the pump past threshold. Run as a one-step
	// idle chain so a repeated run replays the pump's charging orbit
	// from the capture cache instead of re-simulating it.
	c.EnableA2(true)
	if _, err := c.CaptureIdleChain(cycles, 1); err != nil { // warm-up, discarded
		return nil, err
	}
	if !c.A2().Firing() {
		return nil, fmt.Errorf("experiments: A2 failed to trigger after %d cycles", 2*cycles)
	}
	onSet, err := idleTraces(c, ch, 1, cycles)
	if err != nil {
		return nil, err
	}
	onTrace := onSet.Sensor.Traces[0]
	onSpec := dsp.NewSpectrum(onTrace.Samples, onTrace.Dt, cfg.Spectral.Window)

	clock := cfg.Chip.Power.ClockHz
	res := &A2SpectrumResult{
		ClockHz:        clock,
		ClockAmpOff:    offSpec.AmplitudeAt(clock),
		ClockAmpOn:     onSpec.AmplitudeAt(clock),
		HarmonicAmpOff: offSpec.AmplitudeAt(2 * clock),
		HarmonicAmpOn:  onSpec.AmplitudeAt(2 * clock),
	}
	v := sd.Evaluate(onTrace)
	res.Detected = v.Alarm
	res.Spots = len(v.Spots)
	if v.Alarm {
		s := v.StrongestSpot()
		res.PeakIncreaseHz = s.Frequency
		if s.Golden > 0 {
			res.PeakIncrease = s.Amplitude / s.Golden
		} else {
			res.PeakIncrease = s.Amplitude / sd.Floor
		}
	}
	return res, nil
}

// String renders the Figure 4 summary.
func (r *A2SpectrumResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "A2 Trojan detection in the frequency domain (Figure 4)\n")
	fmt.Fprintf(&sb, "%-22s %12s %12s %8s\n", "spot", "dormant", "triggering", "ratio")
	fmt.Fprintf(&sb, "%-22s %12.4g %12.4g %8.2f\n", "clock fundamental", r.ClockAmpOff, r.ClockAmpOn, ratio(r.ClockAmpOn, r.ClockAmpOff))
	fmt.Fprintf(&sb, "%-22s %12.4g %12.4g %8.2f\n", "2nd harmonic", r.HarmonicAmpOff, r.HarmonicAmpOn, ratio(r.HarmonicAmpOn, r.HarmonicAmpOff))
	fmt.Fprintf(&sb, "spectral detector: alarm=%v spots=%d strongest increase %.2fx at %.3g Hz\n",
		r.Detected, r.Spots, r.PeakIncrease, r.PeakIncreaseHz)
	fmt.Fprintf(&sb, "(paper: the triggering A2 raises the amplitude at the clock spot and its harmonic)\n")
	return sb.String()
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
