package experiments

import (
	"fmt"
	"strings"

	"emtrust/internal/chip"
	"emtrust/internal/dsp"
)

// SNRResult compares the two channels' signal-to-noise ratios against
// the paper's published values.
type SNRResult struct {
	Mode string // "simulation" (IV-B) or "measurement" (V-A)

	SensorSNRdB float64
	ProbeSNRdB  float64

	PaperSensorSNRdB float64
	PaperProbeSNRdB  float64
}

// GapdB returns the measured sensor-over-probe advantage.
func (r *SNRResult) GapdB() float64 { return r.SensorSNRdB - r.ProbeSNRdB }

// String renders the comparison.
func (r *SNRResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SNR (%s mode), Eq. (2)/(3)\n", r.Mode)
	fmt.Fprintf(&sb, "%-16s %12s %12s\n", "channel", "ours (dB)", "paper (dB)")
	fmt.Fprintf(&sb, "%-16s %12.3f %12.3f\n", "on-chip sensor", r.SensorSNRdB, r.PaperSensorSNRdB)
	fmt.Fprintf(&sb, "%-16s %12.3f %12.3f\n", "external probe", r.ProbeSNRdB, r.PaperProbeSNRdB)
	fmt.Fprintf(&sb, "sensor advantage: %.2f dB (paper: %.2f dB)\n",
		r.GapdB(), r.PaperSensorSNRdB-r.PaperProbeSNRdB)
	return sb.String()
}

// snr runs the two-step protocol of Section V-A on the given channels:
// first the chip idles (noise records), then it encrypts back-to-back
// (signal records); the SNR is the RMS ratio per Eqs. (2) and (3).
func snr(cfg Config, ch chip.Channels, mode string) (*SNRResult, error) {
	chipCfg := cfg.Chip
	chipCfg.WithTrojans = false
	chipCfg.WithA2 = false
	c, err := chip.New(chipCfg)
	if err != nil {
		return nil, err
	}
	records := cfg.TestTraces / 4
	if records < 4 {
		records = 4
	}
	idle, err := idleTraces(c, ch, records, 16)
	if err != nil {
		return nil, err
	}
	signal, err := captureRandomSet(c, cfg.Key, ch, records, 16)
	if err != nil {
		return nil, err
	}
	var signalS, signalP, noiseS, noiseP []float64
	for i := 0; i < records; i++ {
		noiseS = append(noiseS, idle.Sensor.Traces[i].Samples...)
		noiseP = append(noiseP, idle.Probe.Traces[i].Samples...)
		signalS = append(signalS, signal.Sensor.Traces[i].Samples...)
		signalP = append(signalP, signal.Probe.Traces[i].Samples...)
	}
	return &SNRResult{
		Mode:        mode,
		SensorSNRdB: dsp.SNRdB(signalS, noiseS),
		ProbeSNRdB:  dsp.SNRdB(signalP, noiseP),
	}, nil
}

// SNRSimulation reproduces Section IV-B: simulated radiation with white
// environment noise. Paper: on-chip 29.976 dB, external 17.483 dB.
func SNRSimulation(cfg Config) (*SNRResult, error) {
	r, err := snr(cfg, chip.SimulationChannels(), "simulation")
	if err != nil {
		return nil, err
	}
	r.PaperSensorSNRdB = 29.976
	r.PaperProbeSNRdB = 17.483
	return r, nil
}

// SNRMeasured reproduces Section V-A: the fabricated chip measured
// through the oscilloscope, with lab interference degrading the external
// probe. Paper: on-chip 30.5489 dB, external 13.8684 dB.
func SNRMeasured(cfg Config) (*SNRResult, error) {
	r, err := snr(cfg, chip.MeasurementChannels(), "measurement")
	if err != nil {
		return nil, err
	}
	r.PaperSensorSNRdB = 30.5489
	r.PaperProbeSNRdB = 13.8684
	return r, nil
}
