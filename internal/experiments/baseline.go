package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"emtrust/internal/baseline"
	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

// CoverageRow compares one threat's detectability across monitors.
type CoverageRow struct {
	Threat string
	// EMRate is the on-chip EM framework's detection rate (time-domain
	// Eq. (1) or spectral alarm, whichever the framework uses for the
	// threat).
	EMRate float64
	// RONRate is the ring-oscillator network's detection rate.
	RONRate float64
}

// CoverageResult reproduces the paper's Section I claim about prior
// on-chip structures: "these on-chip structures share a common problem
// of low coverage rates". It pits the EM framework against a RON
// baseline on identical captures.
type CoverageResult struct {
	Oscillators int
	Rows        []CoverageRow
}

// Coverage runs the comparison. Each monitor is operated at its natural
// working point on the same chip: the EM framework fingerprints the
// fixed encryption workload trace by trace, while the RON counts edges
// over long integration windows (how the original RON was used).
func Coverage(cfg Config) (*CoverageResult, error) {
	c, err := infectedChip(cfg)
	if err != nil {
		return nil, err
	}
	ron, err := baseline.NewRON(c.Floorplan(), baseline.DefaultRONConfig())
	if err != nil {
		return nil, err
	}
	ch := chip.SimulationChannels()
	ronWindow := cfg.SpectralCycles
	ronTrials := cfg.TestTraces / 6
	if ronTrials < 4 {
		ronTrials = 4
	}

	// Golden views: EM per encryption trace, RON per long window.
	goldenSet, err := captureSet(c, cfg, ch, cfg.GoldenTraces, cfg.CaptureCycles)
	if err != nil {
		return nil, err
	}
	goldenEM := goldenSet.Sensor.Traces
	nIdle := ronTrials + 4
	goldenRON := make([][]float64, nIdle)
	goldenIdleEM := make([]*trace.Trace, nIdle)
	err = replicate(c, nIdle,
		func(w *chip.Chip) (*chip.Capture, error) { return w.CaptureIdle(ronWindow) },
		func(i int, cap *chip.Capture, rng *rand.Rand) error {
			// Draw order per trace: RON jitter first, then EM noise.
			goldenRON[i] = ron.Measure(cap.Tiles, cap.Dt, rng)
			goldenIdleEM[i], _ = ch.Acquire(cap, rng)
			return nil
		})
	if err != nil {
		return nil, err
	}
	fp, err := core.BuildFingerprint(goldenEM, cfg.Fingerprint)
	if err != nil {
		return nil, err
	}
	// The spectral detector watches long windows (Section III-E), the
	// same integration the RON gets.
	sd, err := core.BuildSpectralDetector(goldenIdleEM, cfg.Spectral)
	if err != nil {
		return nil, err
	}
	ronDet, err := baseline.FitDetector(goldenRON)
	if err != nil {
		return nil, err
	}

	res := &CoverageResult{Oscillators: ron.Oscillators()}
	for _, k := range trojan.Kinds() {
		if err := c.SetTrojan(k, true); err != nil {
			return nil, err
		}
		activeSet, err := captureSet(c, cfg, ch, cfg.TestTraces, cfg.CaptureCycles)
		if err != nil {
			return nil, err
		}
		emHits, ronHits := 0, 0
		for _, s := range activeSet.Sensor.Traces {
			if fp.Evaluate(s).Alarm {
				emHits++
			}
		}
		emSpectralHits := 0
		ronAlarm := make([]bool, ronTrials)
		spectralAlarm := make([]bool, ronTrials)
		err = replicate(c, ronTrials,
			func(w *chip.Chip) (*chip.Capture, error) { return w.CaptureIdle(ronWindow) },
			func(i int, cap *chip.Capture, rng *rand.Rand) error {
				_, ronAlarm[i] = ronDet.Evaluate(ron.Measure(cap.Tiles, cap.Dt, rng))
				s, _ := ch.Acquire(cap, rng)
				spectralAlarm[i] = sd.Evaluate(s).Alarm
				return nil
			})
		if err != nil {
			return nil, err
		}
		for i := 0; i < ronTrials; i++ {
			if ronAlarm[i] {
				ronHits++
			}
			if spectralAlarm[i] {
				emSpectralHits++
			}
		}
		if err := c.SetTrojan(k, false); err != nil {
			return nil, err
		}
		// The framework runs both detectors in parallel (Figure 1);
		// report its better stream.
		emRate := float64(emHits) / float64(cfg.TestTraces)
		if r := float64(emSpectralHits) / float64(ronTrials); r > emRate {
			emRate = r
		}
		res.Rows = append(res.Rows, CoverageRow{
			Threat:  k.String(),
			EMRate:  emRate,
			RONRate: float64(ronHits) / float64(ronTrials),
		})
	}

	// The analog Trojan: the EM framework inspects the spectrum of long
	// idle captures (Section III-E); the RON measures the same windows.
	a2Row, err := coverageA2(cfg)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, a2Row)
	return res, nil
}

// coverageA2 evaluates both monitors against the firing analog Trojan on
// a dedicated chip (so the charge pump's state is controlled), each with
// its own golden fit for the idle workload.
func coverageA2(cfg Config) (CoverageRow, error) {
	chipCfg := cfg.Chip
	chipCfg.WithTrojans = false
	chipCfg.WithA2 = true
	c, err := chip.New(chipCfg)
	if err != nil {
		return CoverageRow{}, err
	}
	ch := chip.SimulationChannels()
	cycles := cfg.SpectralCycles
	c.EnableA2(false)
	n := cfg.GoldenTraces/8 + 4
	goldenEM := make([]*trace.Trace, n)
	goldenRON := make([][]float64, n)
	// A fresh RON on this chip's floorplan (same geometry class).
	ron2, err := baseline.NewRON(c.Floorplan(), baseline.DefaultRONConfig())
	if err != nil {
		return CoverageRow{}, err
	}
	err = replicate(c, n,
		func(w *chip.Chip) (*chip.Capture, error) { return w.CaptureIdle(cycles) },
		func(i int, cap *chip.Capture, rng *rand.Rand) error {
			goldenRON[i] = ron2.Measure(cap.Tiles, cap.Dt, rng)
			goldenEM[i], _ = ch.Acquire(cap, rng)
			return nil
		})
	if err != nil {
		return CoverageRow{}, err
	}
	sd, err := core.BuildSpectralDetector(goldenEM, cfg.Spectral)
	if err != nil {
		return CoverageRow{}, err
	}
	ronDet2, err := baseline.FitDetector(goldenRON)
	if err != nil {
		return CoverageRow{}, err
	}

	c.EnableA2(true)
	if _, err := c.CaptureIdle(cycles); err != nil { // charge the pump
		return CoverageRow{}, err
	}
	trials := cfg.TestTraces / 8
	if trials < 3 {
		trials = 3
	}
	ronAlarm := make([]bool, trials)
	emAlarm := make([]bool, trials)
	err = replicate(c, trials,
		func(w *chip.Chip) (*chip.Capture, error) { return w.CaptureIdle(cycles) },
		func(i int, cap *chip.Capture, rng *rand.Rand) error {
			_, ronAlarm[i] = ronDet2.Evaluate(ron2.Measure(cap.Tiles, cap.Dt, rng))
			s, _ := ch.Acquire(cap, rng)
			emAlarm[i] = sd.Evaluate(s).Alarm
			return nil
		})
	if err != nil {
		return CoverageRow{}, err
	}
	emHits, ronHits := 0, 0
	for i := 0; i < trials; i++ {
		if ronAlarm[i] {
			ronHits++
		}
		if emAlarm[i] {
			emHits++
		}
	}
	return CoverageRow{
		Threat:  "A2",
		EMRate:  float64(emHits) / float64(trials),
		RONRate: float64(ronHits) / float64(trials),
	}, nil
}

// String renders the coverage comparison.
func (r *CoverageResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Coverage: on-chip EM framework vs %d-oscillator RON baseline\n", r.Oscillators)
	fmt.Fprintf(&sb, "%-8s %12s %12s\n", "threat", "EM detect", "RON detect")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-8s %11.0f%% %11.0f%%\n", row.Threat, 100*row.EMRate, 100*row.RONRate)
	}
	fmt.Fprintf(&sb, "(the paper's critique of RO/TDC structures: low coverage rates)\n")
	return sb.String()
}
