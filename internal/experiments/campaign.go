package experiments

import (
	"fmt"
	"sort"
	"strings"

	"emtrust/internal/campaign"
	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/netlist"
	"emtrust/internal/parallel"
	"emtrust/internal/sensorarray"
)

// This experiment replaces the paper's four hand-built Trojans with an
// automatically generated campaign of rare-trigger Trojans and sweeps
// the detectors across it: detection-rate/false-alarm curves versus
// trigger rarity, trigger size, and payload placement, for the paper's
// fingerprint monitor, the hardened monitor, and the self-referencing
// sensor array. A coverage-guided stimulus search (GA) is compared
// against plain-random and MERO-style baselines at an equal simulation
// budget, and the whole study is byte-reproducible from one campaign
// seed (the result carries the regeneration witness).
//
// Detection protocol per member: the deployed chip carries the member
// dormant. Enrollment fits the fingerprint and calibrates the sensor
// array on that dormant chip (the runtime-trust framing: the golden
// model is taken while the chip is still trusted); then the trigger is
// forced and the same workloads are re-measured. Detection is the rate
// at which active-phase measurements alarm, false alarm the rate on a
// second dormant set through the same models.

// Frame counts for the per-member sensor-array pass; one frame costs
// one capture window on the unconstrained 4×4 array.
const (
	campArrayN         = 4
	campArrayCalFrames = 5
	campArrayEval      = 4
)

// campaignROCMargins are the Eq. (1) threshold multipliers the ROC is
// sampled at (1.0 is the paper's exact rule).
var campaignROCMargins = []float64{0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2, 3}

// CampaignMemberResult is one generated Trojan's outcome.
type CampaignMemberResult struct {
	ID          int
	K           int
	RarityMax   float64
	TriggerProb float64
	Tile        int
	// DormantRel and ActiveRel are fingerprint distances normalized by
	// the member's Eq. (1) threshold (so 1.0 is the alarm line),
	// pooled across members for the ROC sweep.
	DormantRel, ActiveRel []float64
	// Detection and FalseAlarm are the alarm rates at margin 1.0.
	Detection, FalseAlarm float64
	// HardenedDetection is the hardened monitor's confirmed-alarm rate
	// on the active stream.
	HardenedDetection float64
	// ArrayDetection is the fraction of active array frames that
	// alarmed; ArrayZ the winning coil's mean anomaly score.
	ArrayDetection float64
	ArrayZ         float64
}

// CampaignGroup aggregates members sharing one swept property.
type CampaignGroup struct {
	Label   string
	Members int
	// Mean alarm rates across the group's members.
	Detection, FalseAlarm, Hardened, Array float64
}

// CampaignROCPoint is one operating point of the pooled ROC.
type CampaignROCPoint struct {
	Margin   float64
	TPR, FPR float64
}

// CampaignSearchStat summarizes one searcher across the search subset.
type CampaignSearchStat struct {
	Searcher string
	// MeanFrac is the mean best partial-trigger coverage (fraction of
	// trigger terms co-asserted) across members at equal budget.
	MeanFrac float64
	// FullTriggers counts members whose trigger fully fired at least
	// once during the search.
	FullTriggers int
}

// CampaignResult is the full sweep.
type CampaignResult struct {
	Members int
	// Hash digests every member spec; Reproducible reports that an
	// independent regeneration from the same seed matched it.
	Hash         uint64
	Reproducible bool
	// SampleNetlistHash digests one infected netlist build, witnessing
	// that the netlist layer (not just the specs) reproduces.
	SampleNetlistHash uint64

	ROC      []CampaignROCPoint
	ByK      []CampaignGroup
	ByRarity []CampaignGroup
	ByTile   []CampaignGroup

	// Search comparison at equal simulation budget.
	SearchMembers int
	SearchBudget  int
	Search        []CampaignSearchStat

	PerMember []CampaignMemberResult
}

// campaignGenConfig maps the experiment configuration onto the
// generator's.
func campaignGenConfig(cfg Config) campaign.Config {
	gen := campaign.DefaultConfig()
	gen.Seed = cfg.Chip.Seed
	if cfg.CampaignMembers > 0 {
		gen.Members = cfg.CampaignMembers
	}
	return gen
}

// Campaign generates the Trojan family and runs every detector over it.
func Campaign(cfg Config) (*CampaignResult, error) {
	// Golden build: the profile, the floorplan tiles, and the victim
	// pool all come from the uninfected design.
	goldenCfg := cfg.Chip
	goldenCfg.WithTrojans = false
	goldenCfg.WithA2 = false
	golden, err := chip.New(goldenCfg)
	if err != nil {
		return nil, err
	}
	gn := golden.Netlist()
	gfp := golden.Floorplan()
	tileOf := func(v netlist.Net) int { return gfp.Grid.CellTile[gn.Driver(v)] }

	gen := campaignGenConfig(cfg)
	stim := campaign.AESStimulus()
	camp, err := campaign.Generate(gn, stim, tileOf, gen)
	if err != nil {
		return nil, err
	}
	res := &CampaignResult{Members: len(camp.Members), Hash: camp.Hash()}

	// Regeneration witness: the same seed must reproduce the same specs.
	again, err := campaign.Generate(gn, stim, tileOf, gen)
	if err != nil {
		return nil, err
	}
	res.Reproducible = again.Hash() == res.Hash

	// Measure every member. Members are independent, so they shard
	// across workers; results are index-addressed.
	res.PerMember = make([]CampaignMemberResult, len(camp.Members))
	err = parallel.For(len(camp.Members), func(i int) error {
		mr, err := campaignMember(cfg, goldenCfg, camp.Members[i])
		if err != nil {
			return fmt.Errorf("member %d: %w", camp.Members[i].ID, err)
		}
		res.PerMember[i] = mr
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.SampleNetlistHash, err = campaignNetlistHash(goldenCfg, camp.Members[0])
	if err != nil {
		return nil, err
	}

	res.ROC = campaignROC(res.PerMember)
	res.ByK = groupBy(res.PerMember, func(m CampaignMemberResult) string { return fmt.Sprintf("k=%d", m.K) })
	res.ByRarity = groupBy(res.PerMember, func(m CampaignMemberResult) string { return fmt.Sprintf("q<=%.2g", m.RarityMax) })
	res.ByTile = groupBy(res.PerMember, func(m CampaignMemberResult) string {
		return tileQuadrant(m.Tile, gfp.Grid.NX, gfp.Grid.NY)
	})

	if err := campaignSearch(cfg, goldenCfg, camp, stim, res); err != nil {
		return nil, err
	}
	return res, nil
}

// campaignMember measures one member: enrollment on the dormant chip,
// then fingerprint, hardened-monitor, and sensor-array verdicts on the
// forced-active chip.
func campaignMember(cfg Config, goldenCfg chip.Config, m *campaign.Member) (CampaignMemberResult, error) {
	out := CampaignMemberResult{
		ID: m.ID, K: m.K, RarityMax: m.RarityMax,
		TriggerProb: m.TriggerProb, Tile: m.VictimTile,
	}
	chipCfg := goldenCfg
	chipCfg.Insert = m
	c, err := chip.New(chipCfg)
	if err != nil {
		return out, err
	}
	c.EnableA2(false)
	ch := chip.SimulationChannels()

	// Enrollment (trusted phase, trigger dormant).
	enroll, err := captureSet(c, cfg, ch, cfg.GoldenTraces, cfg.CaptureCycles)
	if err != nil {
		return out, err
	}
	fp, err := core.BuildFingerprint(enroll.Sensor.Traces, cfg.Fingerprint)
	if err != nil {
		return out, err
	}
	health, err := core.BuildChannelHealth(enroll.Sensor.Traces, core.DefaultHealthConfig())
	if err != nil {
		return out, err
	}
	dormant, err := captureSet(c, cfg, ch, cfg.TestTraces, cfg.CaptureCycles)
	if err != nil {
		return out, err
	}

	arr, err := sensorarray.New(c.Floorplan(), sensorarray.ConfigFor(chipCfg, campArrayN))
	if err != nil {
		return out, err
	}
	ach := sensorarray.DefaultChannel()
	scan := func() (*sensorarray.Frame, error) {
		return arr.ScanEncryption(c, ach, cfg.Plaintext, cfg.Key, cfg.CaptureCycles)
	}
	if _, err := scan(); err != nil { // warm-up
		return out, err
	}
	frames := make([]*sensorarray.Frame, campArrayCalFrames)
	for i := range frames {
		if frames[i], err = scan(); err != nil {
			return out, err
		}
	}
	mon, err := sensorarray.Calibrate(arr, frames, nil, core.DefaultSelfReferenceConfig())
	if err != nil {
		return out, err
	}

	// Force the trigger; the registered active flag latches on the next
	// edge, and every capture from here on radiates the payload.
	if err := c.SetPort(campaign.ForcePort, true); err != nil {
		return out, err
	}
	active, err := captureSet(c, cfg, ch, cfg.TestTraces, cfg.CaptureCycles)
	if err != nil {
		return out, err
	}

	rel := func(set *dualSet) []float64 {
		ds := make([]float64, len(set.Sensor.Traces))
		for i, t := range set.Sensor.Traces {
			ds[i] = fp.Distance(t) / fp.Threshold
		}
		return ds
	}
	out.DormantRel = rel(dormant)
	out.ActiveRel = rel(active)
	out.Detection = rateAbove(out.ActiveRel, 1)
	out.FalseAlarm = rateAbove(out.DormantRel, 1)

	hardened, err := core.NewMonitorWith(fp, nil, core.HardenedOptions(health))
	if err != nil {
		return out, err
	}
	out.HardenedDetection = confirmedRate(runStream(hardened, active.Sensor.Traces))

	if _, err := scan(); err != nil { // warm-up with the payload running
		return out, err
	}
	alarms := 0
	for i := 0; i < campArrayEval; i++ {
		f, err := scan()
		if err != nil {
			return out, err
		}
		v, err := mon.Evaluate(f)
		if err != nil {
			return out, err
		}
		if v.Alarm {
			alarms++
		}
		hot := 0
		for k := range v.Z {
			if v.Z[k] > v.Z[hot] {
				hot = k
			}
		}
		out.ArrayZ += v.Z[hot] / campArrayEval
	}
	out.ArrayDetection = float64(alarms) / campArrayEval
	return out, nil
}

// campaignNetlistHash builds one member's infected netlist and digests
// it (the structural half of the reproducibility witness).
func campaignNetlistHash(goldenCfg chip.Config, m *campaign.Member) (uint64, error) {
	chipCfg := goldenCfg
	chipCfg.Insert = m
	c, err := chip.New(chipCfg)
	if err != nil {
		return 0, err
	}
	return campaign.NetlistHash(c.Netlist()), nil
}

// campaignSearch compares the stimulus searchers on an even subset of
// members at an identical simulation budget.
func campaignSearch(cfg Config, goldenCfg chip.Config, camp *campaign.Campaign, stim campaign.Stimulus, res *CampaignResult) error {
	n := cfg.CampaignSearchMembers
	if n <= 0 {
		n = 1
	}
	if n > len(camp.Members) {
		n = len(camp.Members)
	}
	step := len(camp.Members) / n
	if step < 1 {
		step = 1
	}
	var subset []*campaign.Member
	for i := 0; i < len(camp.Members) && len(subset) < n; i += step {
		subset = append(subset, camp.Members[i])
	}
	pop, gens := cfg.CampaignSearchPop, cfg.CampaignSearchGens
	res.SearchMembers = len(subset)
	res.SearchBudget = pop * gens

	searchers := []campaign.Searcher{campaign.GA{}, campaign.Random{}, campaign.MERO{}}
	// results[s][m] is searcher s on subset member m.
	results := make([][]*campaign.SearchResult, len(searchers))
	for si := range results {
		results[si] = make([]*campaign.SearchResult, len(subset))
	}
	err := parallel.For(len(searchers)*len(subset), func(i int) error {
		si, mi := i/len(subset), i%len(subset)
		m := subset[mi]
		chipCfg := goldenCfg
		chipCfg.Insert = m
		c, err := chip.New(chipCfg) // build-cached: shares the measurement pass's netlist
		if err != nil {
			return err
		}
		e, err := campaign.NewEvaluator(c.Netlist(), stim, m, 0)
		if err != nil {
			return err
		}
		sr, err := campaign.Search(e, searchers[si], pop, gens, campaign.SearchSeed(camp.Cfg.Seed, m.ID))
		if err != nil {
			return err
		}
		results[si][mi] = sr
		return nil
	})
	if err != nil {
		return err
	}
	for si, s := range searchers {
		st := CampaignSearchStat{Searcher: s.Name()}
		for _, sr := range results[si] {
			st.MeanFrac += sr.BestFrac / float64(len(subset))
			if sr.FullLanes > 0 {
				st.FullTriggers++
			}
		}
		res.Search = append(res.Search, st)
	}
	return nil
}

// SearchStat returns the named searcher's stats, or nil.
func (r *CampaignResult) SearchStat(name string) *CampaignSearchStat {
	for i := range r.Search {
		if r.Search[i].Searcher == name {
			return &r.Search[i]
		}
	}
	return nil
}

// campaignROC pools the threshold-normalized distances of every member
// and sweeps the alarm margin.
func campaignROC(members []CampaignMemberResult) []CampaignROCPoint {
	var pos, neg []float64
	for _, m := range members {
		pos = append(pos, m.ActiveRel...)
		neg = append(neg, m.DormantRel...)
	}
	roc := make([]CampaignROCPoint, 0, len(campaignROCMargins))
	for _, margin := range campaignROCMargins {
		roc = append(roc, CampaignROCPoint{
			Margin: margin,
			TPR:    rateAbove(pos, margin),
			FPR:    rateAbove(neg, margin),
		})
	}
	return roc
}

func rateAbove(vs []float64, threshold float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	n := 0
	for _, v := range vs {
		if v > threshold {
			n++
		}
	}
	return float64(n) / float64(len(vs))
}

// groupBy averages member outcomes under a label function, ordered by
// label.
func groupBy(members []CampaignMemberResult, label func(CampaignMemberResult) string) []CampaignGroup {
	idx := map[string]int{}
	var groups []CampaignGroup
	for _, m := range members {
		l := label(m)
		gi, ok := idx[l]
		if !ok {
			gi = len(groups)
			idx[l] = gi
			groups = append(groups, CampaignGroup{Label: l})
		}
		g := &groups[gi]
		g.Members++
		g.Detection += m.Detection
		g.FalseAlarm += m.FalseAlarm
		g.Hardened += m.HardenedDetection
		g.Array += m.ArrayDetection
	}
	for i := range groups {
		n := float64(groups[i].Members)
		groups[i].Detection /= n
		groups[i].FalseAlarm /= n
		groups[i].Hardened /= n
		groups[i].Array /= n
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Label < groups[j].Label })
	return groups
}

// tileQuadrant names the die quadrant a tile falls into.
func tileQuadrant(tile, nx, ny int) string {
	if tile < 0 {
		return "unplaced"
	}
	tx, ty := tile%nx, tile/nx
	ns, ew := "S", "W"
	if ty >= (ny+1)/2 {
		ns = "N"
	}
	if tx >= (nx+1)/2 {
		ew = "E"
	}
	return ns + ew
}

// String renders the sweep.
func (r *CampaignResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Generated Trojan campaign: %d members (extension)\n", r.Members)
	fmt.Fprintf(&sb, "campaign hash %016x, regeneration match: %v; sample netlist hash %016x\n",
		r.Hash, r.Reproducible, r.SampleNetlistHash)

	fmt.Fprintf(&sb, "\npooled ROC over the Eq. (1) threshold margin\n")
	fmt.Fprintf(&sb, "%-8s %8s %8s\n", "margin", "TPR", "FPR")
	for _, p := range r.ROC {
		fmt.Fprintf(&sb, "%-8.2f %7.1f%% %7.1f%%\n", p.Margin, 100*p.TPR, 100*p.FPR)
	}

	section := func(title string, groups []CampaignGroup) {
		fmt.Fprintf(&sb, "\ndetection by %s (margin 1.0)\n", title)
		fmt.Fprintf(&sb, "%-13s %7s %9s %8s %9s %7s\n", title, "members", "detect", "false+", "hardened", "array")
		for _, g := range groups {
			fmt.Fprintf(&sb, "%-13s %7d %8.0f%% %7.0f%% %8.0f%% %6.0f%%\n",
				g.Label, g.Members, 100*g.Detection, 100*g.FalseAlarm, 100*g.Hardened, 100*g.Array)
		}
	}
	section("trigger size", r.ByK)
	section("rarity", r.ByRarity)
	section("tile quadrant", r.ByTile)

	fmt.Fprintf(&sb, "\nstimulus search, %d members, budget %d evaluations each\n", r.SearchMembers, r.SearchBudget)
	fmt.Fprintf(&sb, "%-8s %14s %14s\n", "searcher", "mean coverage", "full triggers")
	for _, s := range r.Search {
		fmt.Fprintf(&sb, "%-8s %13.1f%% %11d/%d\n", s.Searcher, 100*s.MeanFrac, s.FullTriggers, r.SearchMembers)
	}
	return sb.String()
}
