// Package experiments regenerates every table and figure of the paper's
// evaluation: Table I (Trojan sizes), the Section IV-B and V-A SNR
// comparisons, the Section IV-C Euclidean distances, the Figure 4 A2
// spectrum, the Figure 6 histogram and spectrum panels, and a Figure 3
// layout report. Each entry point returns a structured result with a
// textual rendering, and records the paper's published values next to
// the measured ones so EXPERIMENTS.md can be generated mechanically.
package experiments

import (
	"emtrust/internal/chip"
	"emtrust/internal/core"
)

// Config scales the experiments. Tests use the (fast) defaults; the
// benchmark harness and the CLI can raise the trace counts for smoother
// histograms.
type Config struct {
	Chip chip.Config
	// Key is the fixed AES key under which all traces are captured.
	Key []byte
	// Plaintext fixes the encryption stimulus. Side-channel
	// fingerprinting assumes a known, repeatable workload ("we assume
	// the users know how the circuit will operate"): with the stimulus
	// fixed, golden traces differ only by noise and the Eq. (1)
	// threshold is tight.
	Plaintext []byte
	// GoldenTraces fit the fingerprint/envelope; TestTraces form each
	// evaluated population.
	GoldenTraces int
	TestTraces   int
	// CaptureCycles is the trace window for time-domain experiments;
	// SpectralCycles for frequency-domain ones (longer, for resolution).
	CaptureCycles  int
	SpectralCycles int
	// HistBins bins the Figure 6 histograms.
	HistBins int

	// CampaignMembers sizes the generated-Trojan campaign (0 keeps the
	// generator's 105-member k × rarity sweep). CampaignSearchMembers is
	// the subset the stimulus-search comparison runs on, and
	// CampaignSearchPop/Gens set its per-member budget (population ×
	// generations, identical for every searcher).
	CampaignMembers       int
	CampaignSearchMembers int
	CampaignSearchPop     int
	CampaignSearchGens    int

	Fingerprint core.FingerprintConfig
	Spectral    core.SpectralConfig
}

// DefaultConfig returns a configuration that runs the full suite in
// seconds while preserving every qualitative result.
func DefaultConfig() Config {
	return Config{
		Chip: chip.DefaultConfig(),
		Key: []byte{
			0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
			0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
		},
		Plaintext: []byte{
			0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
			0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34,
		},
		GoldenTraces:   60,
		TestTraces:     60,
		CaptureCycles:  32,
		SpectralCycles: 512,
		HistBins:       40,

		CampaignSearchMembers: 21,
		CampaignSearchPop:     32,
		CampaignSearchGens:    6,
		Fingerprint:           core.DefaultFingerprintConfig(),
		Spectral:              core.DefaultSpectralConfig(),
	}
}

// Scaled returns a copy of the configuration with trace counts multiplied
// by f (at least 2 traces); used by the benchmark harness to approach the
// paper's 2x10^4-count histograms.
func (c Config) Scaled(f float64) Config {
	scale := func(n int) int {
		v := int(float64(n) * f)
		if v < 2 {
			v = 2
		}
		return v
	}
	c.GoldenTraces = scale(c.GoldenTraces)
	c.TestTraces = scale(c.TestTraces)
	return c
}
