package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"emtrust/internal/fleet"
)

// FleetResult summarizes one fleet-monitoring run: a population of
// process-variation siblings aging through per-die degradation, a
// fraction fabricated with the Trojan, monitored by the sharded
// internal/fleet service and ranked under Benjamini-Hochberg
// false-discovery control.
type FleetResult struct {
	Dies        int
	Infected    int
	Rounds      int
	Verdicts    uint64
	Dropped     uint64
	Rejected    uint64
	Quarantined int
	// Hits and Falses split the FDR alarm list against the simulated
	// fab's ground truth (which the detectors never see).
	Hits   int
	Falses int
	Alarms []fleet.Alarm
	// VerdictsPerSec is the monitoring throughput (enrollment excluded).
	VerdictsPerSec float64
}

// fleetExperimentConfig maps the experiment knobs onto a fleet sized to
// run in a few seconds: enough dies for the cross-die reference and the
// BH family to be meaningful, a prevalence that yields a handful of
// infected dies, and a roomy queue so no verdicts are shed and the
// alarm split is deterministic.
func fleetExperimentConfig(cfg Config) fleet.Config {
	fc := fleet.DefaultConfig()
	fc.Chip = cfg.Chip
	fc.Key = cfg.Key
	fc.Plaintext = cfg.Plaintext
	fc.Seed = cfg.Chip.Seed
	fc.Dies = 96
	fc.Shards = 4
	fc.Prevalence = 0.05
	fc.Severity = 1.5
	fc.Rounds = 16
	fc.TickAverages = 4
	fc.GoldenTraces = 8
	fc.NullTraces = 12
	fc.QueueSize = 1 << 14
	fc.MinSamples = 6
	return fc
}

// Fleet runs the population-scale monitoring experiment: enroll the
// fleet, stream the monitored rounds through the sharded service, and
// score the FDR-controlled alarm list against ground truth.
func Fleet(cfg Config) (*FleetResult, error) {
	fc := fleetExperimentConfig(cfg)
	s, err := fleet.New(fc)
	if err != nil {
		return nil, err
	}
	infected := make(map[int]bool)
	for _, id := range s.InfectedDies() {
		infected[id] = true
	}
	start := time.Now()
	if err := s.Start(context.Background()); err != nil {
		return nil, err
	}
	st := s.Wait()
	elapsed := time.Since(start).Seconds()

	res := &FleetResult{
		Dies:        st.Dies,
		Infected:    st.Infected,
		Rounds:      int(st.Rounds),
		Verdicts:    st.Verdicts,
		Dropped:     st.Dropped,
		Rejected:    st.Rejected,
		Quarantined: st.Quarantined,
		Alarms:      s.Alarms(),
	}
	for _, a := range res.Alarms {
		if infected[a.Die] {
			res.Hits++
		} else {
			res.Falses++
		}
	}
	if elapsed > 0 {
		res.VerdictsPerSec = float64(st.Verdicts) / elapsed
	}
	return res, nil
}

// String renders the fleet summary and alarm list.
func (r *FleetResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet monitoring — %d dies, %d infected by the fab (extension)\n", r.Dies, r.Infected)
	fmt.Fprintf(&sb, "%d verdicts over %d rounds (%.0f verdicts/s), %d shed, %d rejected, %d quarantined\n",
		r.Verdicts, r.Rounds, r.VerdictsPerSec, r.Dropped, r.Rejected, r.Quarantined)
	fmt.Fprintf(&sb, "FDR alarm list: %d dies flagged — %d infected (hits), %d clean (false discoveries)\n",
		len(r.Alarms), r.Hits, r.Falses)
	for _, a := range r.Alarms {
		fmt.Fprintf(&sb, "  die %3d  score %7.1f  p %.3g  %d/%d rounds confirmed\n",
			a.Die, a.Score, a.P, a.Confirmed, a.Verdicts)
	}
	fmt.Fprintf(&sb, "(per-die guarded Holt tracking discounts aging drift; the cross-die\n reference cancels the fleet common mode before Benjamini-Hochberg ranking)\n")
	return sb.String()
}
