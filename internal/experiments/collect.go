package experiments

import (
	"fmt"
	"math/rand"

	"emtrust/internal/chip"
	"emtrust/internal/parallel"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

// This file is the deterministic trace-capture engine. Three primitives
// replace the old one-at-a-time loops:
//
//   - replicate: for steady-state identical-stimulus sets (idle
//     windows). The chip's idle state is a fixed point, so the simulator
//     runs twice (warm-up + measure) instead of once per trace and only
//     the per-trace acquisition noise differs: a 60-trace set collapses
//     from 60 gate-level simulations to 2.
//   - captureSet: for fixed-stimulus encryption sets. Active Trojans
//     with internal counters evolve across captures, so a handful of
//     serial captures sample that state diversity and the n acquisitions
//     round-robin over them.
//   - captureEach: for distinct-stimulus sets (random plaintexts). Each
//     worker owns a chip clone; traces are dealt out dynamically and
//     every trace restores the shared base snapshot before capturing.
//
// All derive per-trace randomness from (cfg.Seed, stream, index) via
// chip.SplitRand, with one stream id reserved per set, so results are
// bit-identical for any worker count and schedule, and the chip is left
// in the same post-set state regardless of schedule.

// dualSet holds matched sensor/probe trace sets from the same captures.
type dualSet struct {
	Sensor trace.Set
	Probe  trace.Set
}

// replicate runs capture against c and invokes each(i, cap, rng) for
// every trace index with a per-index generator. The simulator runs twice
// — a warm-up absorbing whatever transient the chip's current state
// carries (cold start, a just-toggled Trojan trigger), then the measured
// capture from the resulting steady state — instead of once per trace;
// only acquisition noise varies across the replicas. Because the steady
// state is a fixed point of the fixed-stimulus capture, every replicated
// set on the same chip measures the same waveform the old serial loop
// converged to after its first iteration, so sets fitted and tested
// against each other carry no capture-order offset. The chip advances by
// exactly two captures regardless of n or worker count.
func replicate(c *chip.Chip, n int, capture func(*chip.Chip) (*chip.Capture, error), each func(i int, cap *chip.Capture, rng *rand.Rand) error) error {
	if n <= 0 {
		return nil
	}
	stream := c.NextStream()
	if _, err := capture(c); err != nil { // warm-up, discarded
		return err
	}
	cap, err := capture(c)
	if err != nil {
		return err
	}
	return parallel.For(n, func(i int) error {
		return each(i, cap, c.SplitRand(stream, uint64(i)))
	})
}

// captureEach runs n independent captures, each from the same base
// snapshot, sharded across chip clones. fn receives the worker's chip
// (already rewound to the base state), the trace index, and a private
// per-trace generator; it must be index-addressed and must not touch
// shared mutable state. The primary chip c ends at the base state plus
// one capture-equivalent only if worker 0 ran last — so to keep the
// post-set state schedule-independent, c is restored to the base
// snapshot after the set.
func captureEach(c *chip.Chip, n int, fn func(w *chip.Chip, i int, rng *rand.Rand) error) error {
	if n <= 0 {
		return nil
	}
	stream := c.NextStream()
	base := c.Snapshot()
	defer c.Restore(base)
	return parallel.Run(n,
		func(w int) (*chip.Chip, error) {
			if w == 0 {
				return c, nil
			}
			return c.Clone()
		},
		func(w *chip.Chip, i int) error {
			w.Restore(base)
			return fn(w, i, c.SplitRand(stream, uint64(i)))
		})
}

// stateSamples is how many distinct chip states a fixed-stimulus set
// samples. A dormant chip's state converges after one capture, so its
// states are identical and only the first matters; an active Trojan with
// internal counters (T3's CDMA code register) keeps evolving across
// captures, and its population statistics depend on averaging over those
// states — one state replicated n times would overstate (or understate)
// its distance. Sixteen states recover the old serial loop's diversity
// at a fraction of its simulation count.
const stateSamples = 16

// captureSet records n traces of the standard fixed-stimulus encryption
// workload: a discarded warm-up capture, stateSamples serial captures of
// the evolving chip state, and n acquisitions round-robined over the
// captured states with per-trace derived generators.
func captureSet(c *chip.Chip, cfg Config, ch chip.Channels, n, cycles int) (*dualSet, error) {
	if n <= 0 {
		return &dualSet{}, nil
	}
	stream := c.NextStream()
	k := stateSamples
	if k > n {
		k = n
	}
	// Warm-up plus k serial captures of the evolving chip state, run as
	// one chain: the state trajectory and waveforms are bit-identical to
	// the old serial CapturePT loop, but steps the process-wide capture
	// cache has seen replay without simulating — a dormant chip's fixed
	// point collapses the whole chain to at most one simulation, and an
	// active Trojan's orbit replays after its first traversal.
	chain, err := c.CaptureChain(cfg.Plaintext, cfg.Key, cycles, k+1)
	if err != nil {
		return nil, err
	}
	caps := chain[1:] // chain[0] is the warm-up, discarded
	sensors := make([]*trace.Trace, n)
	probes := make([]*trace.Trace, n)
	err = parallel.For(n, func(i int) error {
		sensors[i], probes[i] = ch.Acquire(caps[i%k], c.SplitRand(stream, uint64(i)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out dualSet
	for i := range sensors {
		out.Sensor.Add(sensors[i])
		out.Probe.Add(probes[i])
	}
	return &out, nil
}

// captureRandomSet records n traces of encryptions of random plaintexts
// (each drawn from the trace's private generator, so the plaintext
// sequence is reproducible and order-independent). All n encryptions
// start from the same base snapshot, so they batch through the wide
// engine: workers × lanes, each worker clone fanning up to BatchLanes
// plaintexts through one bit-parallel simulation. Plaintexts are drawn
// from each trace's generator before its acquisition noise, exactly as
// the old one-capture-per-trace loop did, so the output is byte-
// identical at any worker or lane count.
func captureRandomSet(c *chip.Chip, key []byte, ch chip.Channels, n, cycles int) (*dualSet, error) {
	if n <= 0 {
		return &dualSet{}, nil
	}
	stream := c.NextStream()
	base := c.Snapshot()
	defer c.Restore(base)
	rngs := make([]*rand.Rand, n)
	pts := make([][]byte, n)
	snaps := make([]*chip.Snapshot, n)
	for i := range rngs {
		rngs[i] = c.SplitRand(stream, uint64(i))
		pt := make([]byte, 16)
		rngs[i].Read(pt)
		pts[i] = pt
		snaps[i] = base
	}
	lanes := chip.BatchLanes()
	chunks := (n + lanes - 1) / lanes
	caps := make([]*chip.Capture, n)
	err := parallel.Run(chunks,
		func(w int) (*chip.Chip, error) {
			if w == 0 {
				return c, nil
			}
			return c.Clone()
		},
		func(w *chip.Chip, chunk int) error {
			lo := chunk * lanes
			hi := lo + lanes
			if hi > n {
				hi = n
			}
			got, err := w.CaptureBatchFrom(snaps[lo:hi], pts[lo:hi], key, cycles)
			if err != nil {
				return err
			}
			copy(caps[lo:hi], got)
			return nil
		})
	if err != nil {
		return nil, err
	}
	sensors := make([]*trace.Trace, n)
	probes := make([]*trace.Trace, n)
	err = parallel.For(n, func(i int) error {
		sensors[i], probes[i] = ch.Acquire(caps[i], rngs[i])
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out dualSet
	for i := range sensors {
		out.Sensor.Add(sensors[i])
		out.Probe.Add(probes[i])
	}
	return &out, nil
}

// idleTraces records n dual-channel traces with no encryption running
// (only the clock tree and any active Trojans radiate). The warm-up +
// measure pair runs as a two-step idle chain through the process-wide
// capture cache: stream allocation, state trajectory, and acquisition
// draws are exactly those of the old replicate form, but a chip
// configuration the cache has already seen replays both steps without
// simulating at all.
func idleTraces(c *chip.Chip, ch chip.Channels, n, cycles int) (*dualSet, error) {
	if n <= 0 {
		return &dualSet{}, nil
	}
	stream := c.NextStream()
	chain, err := c.CaptureIdleChain(cycles, 2)
	if err != nil {
		return nil, err
	}
	cap := chain[1] // chain[0] is the warm-up, discarded
	sensors := make([]*trace.Trace, n)
	probes := make([]*trace.Trace, n)
	err = parallel.For(n, func(i int) error {
		sensors[i], probes[i] = ch.Acquire(cap, c.SplitRand(stream, uint64(i)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out dualSet
	for i := range sensors {
		out.Sensor.Add(sensors[i])
		out.Probe.Add(probes[i])
	}
	return &out, nil
}

// infectedChip builds the chip carrying all Trojans, with everything
// dormant.
func infectedChip(cfg Config) (*chip.Chip, error) {
	chipCfg := cfg.Chip
	chipCfg.WithTrojans = true
	c, err := chip.New(chipCfg)
	if err != nil {
		return nil, err
	}
	if err := c.DeactivateAll(); err != nil {
		return nil, err
	}
	c.EnableA2(false)
	return c, nil
}

// withTrojan captures a population with exactly one Trojan active.
func withTrojan(c *chip.Chip, cfg Config, ch chip.Channels, k trojan.Kind, n, cycles int) (*dualSet, error) {
	if err := c.SetTrojan(k, true); err != nil {
		return nil, err
	}
	set, err := captureSet(c, cfg, ch, n, cycles)
	if derr := c.SetTrojan(k, false); derr != nil && err == nil {
		err = derr
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %v population: %w", k, err)
	}
	return set, nil
}
