package experiments

import (
	"fmt"

	"emtrust/internal/chip"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

// dualSet holds matched sensor/probe trace sets from the same captures.
type dualSet struct {
	Sensor trace.Set
	Probe  trace.Set
}

// captureSet records n traces of the standard fixed-stimulus encryption
// workload.
func captureSet(c *chip.Chip, cfg Config, ch chip.Channels, n, cycles int) (*dualSet, error) {
	var out dualSet
	for i := 0; i < n; i++ {
		cap, err := c.CapturePT(cfg.Plaintext, cfg.Key, cycles)
		if err != nil {
			return nil, err
		}
		s, p := c.Acquire(cap, ch)
		out.Sensor.Add(s)
		out.Probe.Add(p)
	}
	return &out, nil
}

// idleTraces records n sensor traces with no encryption running (only the
// clock tree and any active Trojans radiate).
func idleTraces(c *chip.Chip, ch chip.Channels, n, cycles int) ([]*trace.Trace, error) {
	out := make([]*trace.Trace, 0, n)
	for i := 0; i < n; i++ {
		cap, err := c.CaptureIdle(cycles)
		if err != nil {
			return nil, err
		}
		s, _ := c.Acquire(cap, ch)
		out = append(out, s)
	}
	return out, nil
}

// infectedChip builds the chip carrying all Trojans, with everything
// dormant.
func infectedChip(cfg Config) (*chip.Chip, error) {
	chipCfg := cfg.Chip
	chipCfg.WithTrojans = true
	c, err := chip.New(chipCfg)
	if err != nil {
		return nil, err
	}
	if err := c.DeactivateAll(); err != nil {
		return nil, err
	}
	c.EnableA2(false)
	return c, nil
}

// withTrojan captures a population with exactly one Trojan active.
func withTrojan(c *chip.Chip, cfg Config, ch chip.Channels, k trojan.Kind, n, cycles int) (*dualSet, error) {
	if err := c.SetTrojan(k, true); err != nil {
		return nil, err
	}
	set, err := captureSet(c, cfg, ch, n, cycles)
	if derr := c.SetTrojan(k, false); derr != nil && err == nil {
		err = derr
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %v population: %w", k, err)
	}
	return set, nil
}
