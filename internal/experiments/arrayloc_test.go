package experiments

import (
	"strings"
	"testing"
)

// TestLocalizationAcceptance pins the sensor-array claims: the 4×4 array
// detects all four digital Trojans plus A2 with no golden model, and
// localizes at least three threats to the correct or an adjacent tile;
// the paper's single whole-die coil localizes none of them.
func TestLocalizationAcceptance(t *testing.T) {
	res, err := Localization(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	four := res.Grid(4)
	if four == nil {
		t.Fatal("no 4x4 entry in the sweep")
	}
	if len(four.Threats) != 5 {
		t.Fatalf("4x4 scored %d threats, want 5 (T1..T4 + A2)", len(four.Threats))
	}
	for _, thr := range four.Threats {
		if thr.Detected < 0.5 {
			t.Errorf("4x4: %s detected on only %.0f%% of frames", thr.Name, 100*thr.Detected)
		}
	}
	if four.Localized < 3 {
		t.Errorf("4x4 localized %d/5 threats, want >= 3:", four.Localized)
		for _, thr := range four.Threats {
			t.Errorf("  %s: detected %.0f%% pred cell %d true cell %d tile dist %d",
				thr.Name, 100*thr.Detected, thr.PredCell, thr.TrueCell, thr.TileDist)
		}
	}

	single := res.Grid(1)
	if single == nil {
		t.Fatal("no whole-die entry in the sweep")
	}
	if single.Localized != 0 {
		t.Errorf("whole-die coil localized %d threats; it has no spatial resolution", single.Localized)
	}

	// Resolution should not degrade detection: the 8×8 array still
	// catches every threat.
	if eight := res.Grid(8); eight != nil && eight.Detected < 5 {
		t.Errorf("8x8 detected only %d/5 threats", eight.Detected)
	}

	// The channel-budget sweep models the mux latency honestly: fewer
	// channels cost proportionally more capture windows per frame.
	if len(res.Budget) < 2 {
		t.Fatalf("budget sweep has %d points", len(res.Budget))
	}
	for _, g := range res.Budget {
		want := (16 + g.Channels - 1) / g.Channels
		if g.Windows != want {
			t.Errorf("%d channels: %d windows per frame, want %d", g.Channels, g.Windows, want)
		}
		if g.Detected < 4 {
			t.Errorf("%d channels: detected %d/5 threats", g.Channels, g.Detected)
		}
	}

	out := res.String()
	for _, want := range []string{"Golden-model-free", "whole-die", "4x4 per-threat", "channel budget"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
