package experiments

import (
	"fmt"
	"strings"

	"emtrust/internal/aes"
	"emtrust/internal/netlist"
	"emtrust/internal/trojan"
)

// Table1Row is one column of the paper's Table I.
type Table1Row struct {
	Name       string
	GateCount  int
	Percentage float64 // of the AES gate count (area-based for A2)
	PaperPct   float64 // the published percentage
}

// Table1Result reproduces Table I: Trojan sizes compared to the whole
// AES design.
type Table1Result struct {
	AESGateCount int
	PaperAESGate int
	Rows         []Table1Row
}

// paperTable1 holds the published percentages.
var paperTable1 = map[string]float64{
	"T1": 5.01, "T2": 8.44, "T3": 0.76, "T4": 8.44, "A2": 0.087,
}

// Table1 generates the design and reports the size of every Trojan
// relative to the AES core.
func Table1(cfg Config) (*Table1Result, error) {
	b := netlist.NewBuilder("table1")
	core := aes.Generate(b)
	for _, k := range trojan.Kinds() {
		trojan.Generate(b, core, k, cfg.Chip.Trojan)
	}
	n := b.Build()

	aesStats := n.Stats("aes")
	res := &Table1Result{
		AESGateCount: aesStats.Cells,
		PaperAESGate: 33083,
	}
	for _, k := range trojan.Kinds() {
		s := n.Stats(k.Region())
		res.Rows = append(res.Rows, Table1Row{
			Name:       k.String(),
			GateCount:  s.Cells,
			Percentage: 100 * float64(s.Cells) / float64(aesStats.Cells),
			PaperPct:   paperTable1[k.String()],
		})
	}
	// A2: six transistors; percentage computed on circuit area, like
	// the paper's footnote.
	res.Rows = append(res.Rows, Table1Row{
		Name:       "A2",
		GateCount:  -1, // "N/A" in the paper: gate count not applicable
		Percentage: 100 * cfg.Chip.A2.AreaGE / aesStats.GateEquivalent,
		PaperPct:   paperTable1["A2"],
	})
	return res, nil
}

// String renders the table in the paper's layout.
func (r *Table1Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I: Trojan sizes compared to the whole AES design\n")
	fmt.Fprintf(&sb, "%-8s %10s %12s %12s\n", "Circuit", "GateCount", "Pct(ours)", "Pct(paper)")
	fmt.Fprintf(&sb, "%-8s %10d %12s %12s\n", "AES", r.AESGateCount, "100%", "100%")
	for _, row := range r.Rows {
		gates := fmt.Sprintf("%d", row.GateCount)
		if row.GateCount < 0 {
			gates = "N/A"
		}
		fmt.Fprintf(&sb, "%-8s %10s %11.3f%% %11.3f%%\n", row.Name, gates, row.Percentage, row.PaperPct)
	}
	fmt.Fprintf(&sb, "(paper AES gate count: %d)\n", r.PaperAESGate)
	return sb.String()
}
