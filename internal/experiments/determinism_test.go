package experiments

import (
	"testing"

	"emtrust/internal/chip"
	"emtrust/internal/parallel"
	"emtrust/internal/trace"
)

// The capture engine's core guarantee: per-trace seeds are derived from
// (cfg.Seed, stream, index), never consumed from a shared stream, so a
// set captured with 1, 2 or 8 workers is bit-identical sample for
// sample. Each worker count gets a freshly built chip so stream ids and
// simulator state line up exactly.

func captureAllSets(t *testing.T, cfg Config) (*dualSet, *dualSet, *dualSet) {
	t.Helper()
	c, err := infectedChip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch := chip.SimulationChannels()
	fixed, err := captureSet(c, cfg, ch, 12, cfg.CaptureCycles)
	if err != nil {
		t.Fatal(err)
	}
	random, err := captureRandomSet(c, cfg.Key, ch, 12, cfg.CaptureCycles)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := idleTraces(c, ch, 12, cfg.CaptureCycles)
	if err != nil {
		t.Fatal(err)
	}
	return fixed, random, idle
}

func assertSetsEqual(t *testing.T, label string, workers int, want, got *dualSet) {
	t.Helper()
	assertTracesEqual(t, label+"/sensor", workers, want.Sensor.Traces, got.Sensor.Traces)
	assertTracesEqual(t, label+"/probe", workers, want.Probe.Traces, got.Probe.Traces)
}

func assertTracesEqual(t *testing.T, label string, workers int, want, got []*trace.Trace) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s workers=%d: %d traces vs %d", label, workers, len(got), len(want))
	}
	for i := range want {
		a, b := want[i].Samples, got[i].Samples
		if len(a) != len(b) {
			t.Fatalf("%s workers=%d trace %d: %d samples vs %d", label, workers, i, len(b), len(a))
		}
		for s := range a {
			if a[s] != b[s] {
				t.Fatalf("%s workers=%d trace %d sample %d: %v != %v (parallel output must be bit-identical to serial)",
					label, workers, i, s, b[s], a[s])
			}
		}
	}
}

func TestCaptureSetsDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := testConfig()

	restore := parallel.SetMaxWorkers(1)
	serialFixed, serialRandom, serialIdle := captureAllSets(t, cfg)
	restore()

	for _, workers := range []int{2, 8} {
		restore := parallel.SetMaxWorkers(workers)
		fixed, random, idle := captureAllSets(t, cfg)
		restore()
		assertSetsEqual(t, "fixed", workers, serialFixed, fixed)
		assertSetsEqual(t, "random", workers, serialRandom, random)
		assertSetsEqual(t, "idle", workers, serialIdle, idle)
	}
}

// The wide engine adds a second schedule axis: how many lanes one
// batched simulation packs into a word. Sets must be bit-identical
// whether lanes run one at a time or 64 per word — including a partial
// final word — at any worker count. The process-wide capture cache is
// dropped before each run so every configuration actually simulates.
func TestCaptureSetsDeterministicAcrossLaneCounts(t *testing.T) {
	cfg := testConfig()

	capture := func(workers, lanes int) (*dualSet, *dualSet, *dualSet) {
		chip.ResetCaptureCache()
		restoreW := parallel.SetMaxWorkers(workers)
		defer restoreW()
		restoreL := chip.SetBatchLanes(lanes)
		defer restoreL()
		return captureAllSets(t, cfg)
	}

	oneFixed, oneRandom, oneIdle := capture(1, 1)
	for _, lanes := range []int{5, 64} {
		for _, workers := range []int{1, 4} {
			fixed, random, idle := capture(workers, lanes)
			assertSetsEqual(t, "fixed", workers*1000+lanes, oneFixed, fixed)
			assertSetsEqual(t, "random", workers*1000+lanes, oneRandom, random)
			assertSetsEqual(t, "idle", workers*1000+lanes, oneIdle, idle)
		}
	}
}

// A full experiment driver must be worker-count independent too — this
// catches any leftover shared-stream consumption in the rewired paths.
func TestExperimentDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := testConfig()

	run := func(workers int) *EuclideanResult {
		restore := parallel.SetMaxWorkers(workers)
		defer restore()
		res, err := EuclideanSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		res := run(workers)
		if res.GoldenMeanDistance != serial.GoldenMeanDistance {
			t.Errorf("workers=%d: golden mean %v != serial %v", workers, res.GoldenMeanDistance, serial.GoldenMeanDistance)
		}
		for i, row := range res.Rows {
			want := serial.Rows[i]
			if row.MeanDistance != want.MeanDistance || row.DetectionRate != want.DetectionRate {
				t.Errorf("workers=%d %v: (%v, %v) != serial (%v, %v)",
					workers, row.Trojan, row.MeanDistance, row.DetectionRate, want.MeanDistance, want.DetectionRate)
			}
		}
	}
}
