package experiments

import (
	"fmt"
	"sort"
	"strings"

	"emtrust/internal/emfield"
)

// LayoutResult is the Figure 3 counterpart: the floorplan of the AES
// with the four Trojans and the on-chip sensor spiral above them.
type LayoutResult struct {
	DieWidth, DieHeight float64
	Regions             map[string]int // cells per top-level region
	SpiralTurns         int
	SpiralArea          float64
	Map                 string // ASCII floorplan
}

// LayoutReport builds the infected chip and summarizes its physical
// view.
func LayoutReport(cfg Config) (*LayoutResult, error) {
	c, err := infectedChip(cfg)
	if err != nil {
		return nil, err
	}
	fp := c.Floorplan()
	n := c.Netlist()
	res := &LayoutResult{
		DieWidth:    fp.Die.X,
		DieHeight:   fp.Die.Y,
		Regions:     make(map[string]int),
		SpiralTurns: cfg.Chip.SpiralTurns,
		Map:         fp.Render(64, 20),
	}
	for _, region := range n.Regions() {
		res.Regions[region] = n.Stats(region).Cells
	}
	spiral := emfield.OnChipSpiral(fp.Die, cfg.Chip.SpiralTurns, cfg.Chip.SpiralZ)
	res.SpiralArea = spiral.TotalArea()
	return res, nil
}

// String renders the layout report.
func (r *LayoutResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Layout (Figure 3 counterpart): %.3g x %.3g mm die\n",
		r.DieWidth*1e3, r.DieHeight*1e3)
	names := make([]string, 0, len(r.Regions))
	for name := range r.Regions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "  %-10s %6d cells\n", name, r.Regions[name])
	}
	fmt.Fprintf(&sb, "on-chip sensor: %d-turn spiral, accumulated area %.3g mm^2\n",
		r.SpiralTurns, r.SpiralArea*1e6)
	sb.WriteString(r.Map)
	return sb.String()
}
