package experiments

import (
	"bytes"
	"strings"
	"testing"

	"emtrust/internal/trojan"
)

// The experiment tests assert the paper's qualitative findings — who
// wins, by roughly what factor, and where the hard cases are — on a
// reduced trace budget so the whole file runs in well under a minute.

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.GoldenTraces = 40
	cfg.TestTraces = 40
	return cfg
}

func TestTable1MatchesPaperShape(t *testing.T) {
	res, err := Table1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Same regime as the paper's 33083-gate AES.
	if res.AESGateCount < 15000 || res.AESGateCount > 60000 {
		t.Fatalf("AES gates = %d", res.AESGateCount)
	}
	byName := make(map[string]Table1Row)
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	// Every percentage within a third of the published one.
	for name, row := range byName {
		lo, hi := row.PaperPct*0.66, row.PaperPct*1.5
		if row.Percentage < lo || row.Percentage > hi {
			t.Errorf("%s share %.3f%% outside [%.3f, %.3f]", name, row.Percentage, lo, hi)
		}
	}
	// Ordering: T3 smallest, T2 ~ T4 largest.
	if !(byName["T3"].Percentage < byName["T1"].Percentage &&
		byName["T1"].Percentage < byName["T2"].Percentage) {
		t.Fatalf("Table I ordering broken: %+v", res.Rows)
	}
	if byName["A2"].GateCount != -1 {
		t.Fatal("A2 gate count must be N/A")
	}
	out := res.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "N/A") {
		t.Fatalf("rendering broken:\n%s", out)
	}
}

func TestSNRSimulationMatchesPaper(t *testing.T) {
	res, err := SNRSimulation(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.SensorSNRdB < res.PaperSensorSNRdB-4 || res.SensorSNRdB > res.PaperSensorSNRdB+4 {
		t.Errorf("sensor SNR %.2f dB, paper %.2f", res.SensorSNRdB, res.PaperSensorSNRdB)
	}
	if res.ProbeSNRdB < res.PaperProbeSNRdB-4 || res.ProbeSNRdB > res.PaperProbeSNRdB+4 {
		t.Errorf("probe SNR %.2f dB, paper %.2f", res.ProbeSNRdB, res.PaperProbeSNRdB)
	}
	if res.GapdB() < 8 {
		t.Errorf("sensor advantage %.2f dB too small", res.GapdB())
	}
	if !strings.Contains(res.String(), "simulation") {
		t.Error("rendering broken")
	}
}

func TestSNRMeasuredMatchesPaper(t *testing.T) {
	res, err := SNRMeasured(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.SensorSNRdB < 26 || res.SensorSNRdB > 35 {
		t.Errorf("measured sensor SNR %.2f dB outside paper regime (30.55)", res.SensorSNRdB)
	}
	if res.ProbeSNRdB < 10 || res.ProbeSNRdB > 18 {
		t.Errorf("measured probe SNR %.2f dB outside paper regime (13.87)", res.ProbeSNRdB)
	}
	// The fabricated probe must read worse than its simulation, the
	// sensor about the same (the paper's two key observations).
	sim, err := SNRSimulation(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbeSNRdB >= sim.ProbeSNRdB {
		t.Errorf("measured probe SNR %.2f should be below simulated %.2f", res.ProbeSNRdB, sim.ProbeSNRdB)
	}
	if diff := res.SensorSNRdB - sim.SensorSNRdB; diff > 3 || diff < -3 {
		t.Errorf("sensor SNR moved %.2f dB between modes; paper keeps it stable", diff)
	}
}

func TestEuclideanSimulationShape(t *testing.T) {
	res, err := EuclideanSimulation(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[trojan.Kind]EuclideanRow)
	for _, row := range res.Rows {
		rows[row.Trojan] = row
	}
	// T3 is by far the smallest distance; the other three are
	// distinguishable from golden (relative well above 1).
	for _, k := range []trojan.Kind{trojan.T1AMLeaker, trojan.T2LeakageCurrent, trojan.T4PowerHog} {
		if rows[k].Relative < 2.5 {
			t.Errorf("%v relative %.2f too close to golden", k, rows[k].Relative)
		}
		if rows[k].Relative < 1.8*rows[trojan.T3CDMALeaker].Relative {
			t.Errorf("%v (%.2f) not well above T3 (%.2f)", k, rows[k].Relative, rows[trojan.T3CDMALeaker].Relative)
		}
	}
	// Even T3 shifts the mean distance visibly in simulation.
	if rows[trojan.T3CDMALeaker].Relative < 1.2 {
		t.Errorf("T3 relative %.2f should still be distinguishable in simulation", rows[trojan.T3CDMALeaker].Relative)
	}
	// At least the loud Trojans must cross the Eq. (1) threshold.
	if rows[trojan.T1AMLeaker].DetectionRate < 0.9 || rows[trojan.T2LeakageCurrent].DetectionRate < 0.9 {
		t.Errorf("T1/T2 detection rates too low: %+v", rows)
	}
	if !strings.Contains(res.String(), "Euclidean") {
		t.Error("rendering broken")
	}
}

func TestA2SpectrumShape(t *testing.T) {
	res, err := A2Spectrum(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("A2 triggering must raise a spectral alarm")
	}
	// The activation raises amplitude at the harmonic of the clock (the
	// trigger flips twice per cycle).
	if res.HarmonicAmpOn < 1.4*res.HarmonicAmpOff {
		t.Errorf("harmonic amplitude %.3g not raised over dormant %.3g", res.HarmonicAmpOn, res.HarmonicAmpOff)
	}
	if res.PeakIncrease < 1.4 {
		t.Errorf("strongest spot increase %.2fx too small", res.PeakIncrease)
	}
	if !strings.Contains(res.String(), "Figure 4") {
		t.Error("rendering broken")
	}
}

func TestFig6HistogramsSensorBeatsProbe(t *testing.T) {
	cfg := testConfig()
	probe, err := Fig6Histograms(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	sensor, err := Fig6Histograms(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Channel == sensor.Channel {
		t.Fatal("channel labels broken")
	}
	pPanels := make(map[trojan.Kind]HistPanel)
	for _, p := range probe.Panels {
		pPanels[p.Trojan] = p
	}
	for _, s := range sensor.Panels {
		p := pPanels[s.Trojan]
		// The sensor separates populations better than the probe for
		// every Trojan (lower overlap).
		if s.Overlap >= p.Overlap {
			t.Errorf("%v: sensor overlap %.2f not below probe %.2f", s.Trojan, s.Overlap, p.Overlap)
		}
		// Probe populations stay heavily overlapped (Fig 6(a)-(d)).
		if p.Overlap < 0.3 {
			t.Errorf("%v: probe separated the populations (overlap %.2f); the paper's probe cannot", s.Trojan, p.Overlap)
		}
		// Sensor separates the three loud Trojans almost completely.
		if s.Trojan != trojan.T3CDMALeaker && s.Overlap > 0.15 {
			t.Errorf("%v: sensor overlap %.2f too high", s.Trojan, s.Overlap)
		}
		// T3 stays the hardest: overlapping but with a shifted peak.
		if s.Trojan == trojan.T3CDMALeaker && s.Overlap > 0.75 {
			t.Errorf("T3 sensor overlap %.2f: not even the peak shift survived", s.Overlap)
		}
	}
	if !strings.Contains(probe.String(), "external probe") {
		t.Error("rendering broken")
	}
}

func TestFig6SpectraShape(t *testing.T) {
	res, err := Fig6Spectra(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	panels := make(map[trojan.Kind]SpectrumPanel)
	for _, p := range res.Panels {
		panels[p.Trojan] = p
	}
	// T1, T2, T4 detected; T3 not (Fig 6(k): "the frequency spots are
	// not distinguished clearly because of the extreme low overhead").
	for _, k := range []trojan.Kind{trojan.T1AMLeaker, trojan.T2LeakageCurrent, trojan.T4PowerHog} {
		if !panels[k].Detected {
			t.Errorf("%v not detected spectrally", k)
		}
	}
	if panels[trojan.T3CDMALeaker].Detected {
		t.Error("T3 should evade the spectral detector (raw-data analysis)")
	}
	// T1 adds energy below the clock (the 750 kHz AM carrier region).
	if panels[trojan.T1AMLeaker].LowBandExcess <= 0 {
		t.Errorf("T1 low-band excess %.3g not positive", panels[trojan.T1AMLeaker].LowBandExcess)
	}
	// T2 and T4 amplify the clock-band spots.
	for _, k := range []trojan.Kind{trojan.T2LeakageCurrent, trojan.T4PowerHog} {
		if panels[k].ClockBandExcess <= 0 {
			t.Errorf("%v clock-band excess %.3g not positive", k, panels[k].ClockBandExcess)
		}
	}
	if !strings.Contains(res.String(), "spectra") {
		t.Error("rendering broken")
	}
}

func TestLayoutReport(t *testing.T) {
	res, err := LayoutReport(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.DieWidth <= 0 || res.SpiralArea <= 0 {
		t.Fatal("degenerate layout report")
	}
	for _, region := range []string{"aes", "trojan1", "trojan2", "trojan3", "trojan4"} {
		if res.Regions[region] == 0 {
			t.Errorf("region %s missing from report", region)
		}
	}
	out := res.String()
	if !strings.Contains(out, "spiral") || !strings.Contains(out, "aes") {
		t.Error("rendering broken")
	}
}

func TestConfigScaled(t *testing.T) {
	cfg := DefaultConfig()
	big := cfg.Scaled(2)
	if big.GoldenTraces != 2*cfg.GoldenTraces || big.TestTraces != 2*cfg.TestTraces {
		t.Fatal("Scaled broken")
	}
	tiny := cfg.Scaled(0)
	if tiny.GoldenTraces < 2 {
		t.Fatal("Scaled must clamp to 2")
	}
}

func TestCoverageEMBeatsRON(t *testing.T) {
	res, err := Coverage(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Oscillators == 0 {
		t.Fatal("no oscillators placed")
	}
	rows := make(map[string]CoverageRow)
	for _, row := range res.Rows {
		rows[row.Threat] = row
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 threats, got %v", rows)
	}
	// The EM framework catches the loud Trojans and the analog one.
	for _, name := range []string{"T1", "T2", "T4", "A2"} {
		if rows[name].EMRate < 0.8 {
			t.Errorf("EM framework missed %s (rate %.2f)", name, rows[name].EMRate)
		}
	}
	// The RON's coverage is low: it must miss at least three of the five
	// threats that the EM framework handles, and it must never catch a
	// threat the EM framework misses.
	missed := 0
	for name, row := range rows {
		if row.RONRate < 0.5 {
			missed++
		}
		if row.RONRate > row.EMRate+0.25 {
			t.Errorf("RON out-detected EM on %s: %.2f vs %.2f", name, row.RONRate, row.EMRate)
		}
	}
	if missed < 3 {
		t.Fatalf("RON missed only %d threats; the low-coverage critique did not reproduce", missed)
	}
	if !strings.Contains(res.String(), "RON") {
		t.Error("rendering broken")
	}
}

func TestLocalizeFindsEveryTrojan(t *testing.T) {
	res, err := Localize(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	correct := 0
	for _, row := range res.Rows {
		if row.Correct {
			correct++
		}
		if row.Increase < 0 {
			t.Errorf("%v: negative winning increase %.2f", row.Trojan, row.Increase)
		}
	}
	// The loud Trojans must localize; T3 is allowed to miss.
	if correct < 3 {
		t.Fatalf("only %d/4 Trojans localized", correct)
	}
	for _, row := range res.Rows {
		if row.Trojan != trojan.T3CDMALeaker && !row.Correct {
			t.Errorf("%v mislocalized: expected %s, predicted %s", row.Trojan, row.Expected, row.Predicted)
		}
	}
	if !strings.Contains(res.String(), "localization") {
		t.Error("rendering broken")
	}
}

func TestVariationSelfReferenceWins(t *testing.T) {
	res, err := Variation(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	goldenRef, selfRef := res.Rows[0], res.Rows[1]
	// A golden-chip fingerprint false-alarms on a different healthy die.
	if goldenRef.FalseAlarmRate < 0.5 {
		t.Errorf("golden-chip reference false-alarm rate %.2f too low; process variation should break it", goldenRef.FalseAlarmRate)
	}
	// The paper's self-referenced fingerprint stays clean and effective.
	if selfRef.FalseAlarmRate > 0.1 {
		t.Errorf("self-referenced false-alarm rate %.2f too high", selfRef.FalseAlarmRate)
	}
	if selfRef.DetectionRate < 0.9 {
		t.Errorf("self-referenced detection rate %.2f too low", selfRef.DetectionRate)
	}
	if !strings.Contains(res.String(), "variation") {
		t.Error("rendering broken")
	}
}

func TestRobustnessDegradesGracefully(t *testing.T) {
	cfg := testConfig()
	cfg.TestTraces = 25
	res, err := Robustness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		// Eq. (1) keeps false alarms controlled at every noise level.
		if p.FalseAlarmRate > 0.15 {
			t.Errorf("noise %gx: false-alarm rate %.2f", p.NoiseScale, p.FalseAlarmRate)
		}
	}
	// At calibrated noise (index 1) the loud Trojans are caught...
	first := res.Points[1]
	if first.Detection[trojan.T1AMLeaker] < 0.9 || first.Detection[trojan.T2LeakageCurrent] < 0.9 {
		t.Errorf("baseline detection too low: %+v", first.Detection)
	}
	// ...and detection must not improve as noise grows 16x.
	last := res.Points[len(res.Points)-1]
	for _, k := range trojan.Kinds() {
		if last.Detection[k] > first.Detection[k]+0.1 {
			t.Errorf("%v: detection grew with noise (%.2f -> %.2f)", k, first.Detection[k], last.Detection[k])
		}
	}
}

func TestFaultsStudyShape(t *testing.T) {
	cfg := testConfig()
	cfg.TestTraces = 30
	res, err := Faults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults < 8 {
		t.Fatalf("faults = %d", res.Faults)
	}
	// Single stuck-at faults in AES logic almost always corrupt the
	// ciphertext for a fixed vector.
	if res.FunctionallyVisible < res.Faults*3/4 {
		t.Errorf("only %d/%d faults functionally visible", res.FunctionallyVisible, res.Faults)
	}
	// The EM fingerprint catches at most a minority of logic defects
	// (the honest negative), and never fewer than zero by construction.
	if res.EMVisible > res.FunctionallyVisible {
		t.Errorf("EM (%d) should not beat functional test (%d) on logic defects", res.EMVisible, res.FunctionallyVisible)
	}
	if res.EitherVisible < res.FunctionallyVisible {
		t.Error("either-count lost faults")
	}
	if !strings.Contains(res.String(), "Stuck-at") {
		t.Error("rendering broken")
	}
}

func TestWriteHTMLReport(t *testing.T) {
	cfg := testConfig()
	cfg.GoldenTraces = 20
	cfg.TestTraces = 20
	var buf bytes.Buffer
	if err := WriteHTMLReport(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "Table I", "on-chip sensor", "Figure 6", "Figure 4",
		"Sensor array", "whole-die coil", "<svg", "</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The localization section contributes one heatmap per threat on top
	// of the figure charts.
	if got := strings.Count(out, "<svg"); got < 14 {
		t.Fatalf("only %d charts rendered", got)
	}
}
