package experiments

import (
	"fmt"
	"strings"

	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/dsp"
	"emtrust/internal/stats"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

// HistPanel is one panel of Figure 6(a)-(h): golden (red) and
// Trojan-activated (blue) Euclidean-distance histograms on one channel.
type HistPanel struct {
	Trojan trojan.Kind
	Golden *stats.Histogram
	Active *stats.Histogram
	// Overlap in [0,1]: 1 = indistinguishable populations.
	Overlap float64
	// PeakSeparation in bin widths: >= 1 means the distribution peaks
	// land in different bins, the paper's "shifting of the
	// distributions' peaks" criterion.
	PeakSeparation float64
	// DetectionRate is the Eq. (1) alarm rate over the active traces.
	DetectionRate float64
	// TStat is Welch's t between the golden and active distance
	// populations (the TVLA statistic); |t| > 4.5 is the conventional
	// leakage-detection criterion.
	TStat float64
}

// HistogramsResult is one row of Figure 6: four panels on one channel.
type HistogramsResult struct {
	Channel string // "external probe" (a-d) or "on-chip sensor" (e-h)
	Panels  []HistPanel
}

// Fig6Histograms reproduces Figure 6(a)-(d) (useSensor=false: external
// probe) or 6(e)-(h) (useSensor=true: on-chip sensor): measurement-mode
// Euclidean-distance histograms for the golden circuit and each
// activated Trojan.
func Fig6Histograms(cfg Config, useSensor bool) (*HistogramsResult, error) {
	c, err := infectedChip(cfg)
	if err != nil {
		return nil, err
	}
	ch := chip.MeasurementChannels()
	pick := func(d *dualSet) []*trace.Trace {
		if useSensor {
			return d.Sensor.Traces
		}
		return d.Probe.Traces
	}

	goldenFit, err := captureSet(c, cfg, ch, cfg.GoldenTraces, cfg.CaptureCycles)
	if err != nil {
		return nil, err
	}
	fp, err := core.BuildFingerprint(pick(goldenFit), cfg.Fingerprint)
	if err != nil {
		return nil, err
	}
	goldenHeld, err := captureSet(c, cfg, ch, cfg.TestTraces, cfg.CaptureCycles)
	if err != nil {
		return nil, err
	}
	goldenDists := centroidDistances(fp, pick(goldenHeld))

	// One histogram range shared by every panel, like the paper's
	// common x-axis.
	type pop struct {
		kind  trojan.Kind
		dists []float64
		rate  float64
		tstat float64
	}
	var pops []pop
	maxDist := maxOf(goldenDists)
	for _, k := range trojan.Kinds() {
		set, err := withTrojan(c, cfg, ch, k, cfg.TestTraces, cfg.CaptureCycles)
		if err != nil {
			return nil, err
		}
		traces := pick(set)
		dists := centroidDistances(fp, traces)
		alarms := 0
		for _, t := range traces {
			if fp.Evaluate(t).Alarm {
				alarms++
			}
		}
		tstat, _ := stats.WelchT(dists, goldenDists)
		pops = append(pops, pop{kind: k, dists: dists, rate: float64(alarms) / float64(len(traces)), tstat: tstat})
		if m := maxOf(dists); m > maxDist {
			maxDist = m
		}
	}

	name := "external probe"
	if useSensor {
		name = "on-chip sensor"
	}
	res := &HistogramsResult{Channel: name}
	for _, p := range pops {
		g := stats.NewHistogram(0, maxDist*1.05, cfg.HistBins)
		g.AddAll(goldenDists)
		a := stats.NewHistogram(0, maxDist*1.05, cfg.HistBins)
		a.AddAll(p.dists)
		res.Panels = append(res.Panels, HistPanel{
			Trojan:         p.kind,
			Golden:         g,
			Active:         a,
			Overlap:        g.Overlap(a),
			PeakSeparation: g.PeakSeparation(a),
			DetectionRate:  p.rate,
			TStat:          p.tstat,
		})
	}
	return res, nil
}

func centroidDistances(fp *core.Fingerprint, traces []*trace.Trace) []float64 {
	out := make([]float64, len(traces))
	for i, t := range traces {
		out[i] = fp.CentroidDistance(t)
	}
	return out
}

func maxOf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	return m
}

// String renders the four panels with overlap metrics and ASCII
// histograms.
func (r *HistogramsResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6 histograms, %s (measurement mode)\n", r.Channel)
	fmt.Fprintf(&sb, "%-6s %10s %10s %10s %10s\n", "trojan", "overlap", "peak-sep", "detect%", "TVLA-t")
	for _, p := range r.Panels {
		fmt.Fprintf(&sb, "%-6s %10.3f %10.2f %9.0f%% %10.1f\n", p.Trojan, p.Overlap, p.PeakSeparation, 100*p.DetectionRate, p.TStat)
	}
	return sb.String()
}

// SpectrumPanel is one panel of Figure 6(i)-(l): the sensor spectrum of
// one activated Trojan against the golden envelope.
type SpectrumPanel struct {
	Trojan trojan.Kind
	// Spots flagged by the Section III-E detector.
	Spots int
	// Detected is the spectral alarm.
	Detected bool
	// LowBandExcess is the added spectral energy below half the clock
	// (T1's 750 kHz AM carrier lives here).
	LowBandExcess float64
	// ClockBandExcess is the added energy at the clock fundamental and
	// harmonic spots (T2/T4's extra registers raise these).
	ClockBandExcess float64
	// StrongestHz is the frequency of the strongest offending spot.
	StrongestHz float64
}

// SpectraResult is the bottom row of Figure 6.
type SpectraResult struct {
	Panels []SpectrumPanel
}

// Fig6Spectra reproduces Figure 6(i)-(l): FFT of the on-chip sensor data
// with each Trojan activated, compared against the golden circuit's
// spectrum.
func Fig6Spectra(cfg Config) (*SpectraResult, error) {
	c, err := infectedChip(cfg)
	if err != nil {
		return nil, err
	}
	ch := chip.SimulationChannels()
	cycles := cfg.SpectralCycles
	nGolden := cfg.GoldenTraces/8 + 4

	goldenSet, err := captureRandomSet(c, cfg.Key, ch, nGolden, cycles)
	if err != nil {
		return nil, err
	}
	golden := goldenSet.Sensor.Traces
	sd, err := core.BuildSpectralDetector(golden, cfg.Spectral)
	if err != nil {
		return nil, err
	}
	goldenSpec := averageSpectrum(golden, cfg.Spectral.Window)
	clock := cfg.Chip.Power.ClockHz

	res := &SpectraResult{}
	// One reused amplitude buffer serves every per-Trojan spectrum; the
	// Spectrum header is rebuilt around it each iteration and fully
	// consumed before the next overwrites it.
	var amp []float64
	for _, k := range trojan.Kinds() {
		if err := c.SetTrojan(k, true); err != nil {
			return nil, err
		}
		onSet, err := captureRandomSet(c, cfg.Key, ch, 1, cycles)
		if err != nil {
			return nil, err
		}
		s := onSet.Sensor.Traces[0]
		if err := c.SetTrojan(k, false); err != nil {
			return nil, err
		}
		p := dsp.PlanForLength(len(s.Samples))
		amp = p.SpectrumInto(amp, s.Samples, cfg.Spectral.Window)
		spec := &dsp.Spectrum{Amplitude: amp, DF: 1 / (float64(p.Size()) * s.Dt), N: p.Size()}
		v := sd.Evaluate(s)
		panel := SpectrumPanel{
			Trojan:          k,
			Spots:           len(v.Spots),
			Detected:        v.Alarm,
			LowBandExcess:   spec.BandEnergy(clock/32, clock/2) - goldenSpec.BandEnergy(clock/32, clock/2),
			ClockBandExcess: bandAround(spec, clock) + bandAround(spec, 2*clock) - bandAround(goldenSpec, clock) - bandAround(goldenSpec, 2*clock),
		}
		if v.Alarm {
			panel.StrongestHz = v.StrongestSpot().Frequency
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}

func bandAround(s *dsp.Spectrum, f float64) float64 {
	return s.BandEnergy(f-4*s.DF, f+4*s.DF)
}

// averageSpectrum is the linear per-bin amplitude mean over the traces
// (an amplitude average, not a power average — the paper's Figure 6
// envelope convention). One planned scratch buffer serves every trace.
func averageSpectrum(traces []*trace.Trace, w dsp.Window) *dsp.Spectrum {
	var avg *dsp.Spectrum
	var amp []float64
	for _, t := range traces {
		p := dsp.PlanForLength(len(t.Samples))
		amp = p.SpectrumInto(amp, t.Samples, w)
		if avg == nil {
			avg = &dsp.Spectrum{
				Amplitude: append([]float64(nil), amp...),
				DF:        1 / (float64(p.Size()) * t.Dt),
				N:         p.Size(),
			}
			continue
		}
		dsp.Add(avg.Amplitude, amp)
	}
	for i := range avg.Amplitude {
		avg.Amplitude[i] /= float64(len(traces))
	}
	return avg
}

// String renders the spectrum panels.
func (r *SpectraResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6 sensor spectra (i)-(l)\n")
	fmt.Fprintf(&sb, "%-6s %8s %8s %14s %14s %12s\n", "trojan", "alarm", "spots", "low-band dE", "clock-band dE", "strongest Hz")
	for _, p := range r.Panels {
		fmt.Fprintf(&sb, "%-6s %8v %8d %14.4g %14.4g %12.4g\n",
			p.Trojan, p.Detected, p.Spots, p.LowBandExcess, p.ClockBandExcess, p.StrongestHz)
	}
	return sb.String()
}
