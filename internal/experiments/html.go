package experiments

import (
	"fmt"
	"io"

	"emtrust/internal/chip"
	"emtrust/internal/dsp"
	"emtrust/internal/report"
	"emtrust/internal/trojan"
)

// WriteHTMLReport runs the core experiments and renders them as one
// self-contained HTML page with the paper's figures as inline SVG.
func WriteHTMLReport(cfg Config, w io.Writer) error {
	r := report.New("emtrust — Runtime EM Trojan Detection, paper reproduction")

	// Table I.
	t1, err := Table1(cfg)
	if err != nil {
		return err
	}
	r.AddHeading("Table I — Trojan sizes", "Gate counts of the generated design versus the published shares.")
	rows := [][]string{{"AES", fmt.Sprint(t1.AESGateCount), "100%", "100%"}}
	for _, row := range t1.Rows {
		gates := fmt.Sprint(row.GateCount)
		if row.GateCount < 0 {
			gates = "N/A"
		}
		rows = append(rows, []string{row.Name, gates,
			fmt.Sprintf("%.3f%%", row.Percentage), fmt.Sprintf("%.3f%%", row.PaperPct)})
	}
	r.AddTable([]string{"circuit", "gates", "share (ours)", "share (paper)"}, rows)

	// SNR.
	for _, f := range []func(Config) (*SNRResult, error){SNRSimulation, SNRMeasured} {
		res, err := f(cfg)
		if err != nil {
			return err
		}
		r.AddHeading(fmt.Sprintf("SNR — %s mode", res.Mode), "")
		r.AddTable([]string{"channel", "ours (dB)", "paper (dB)"}, [][]string{
			{"on-chip sensor", fmt.Sprintf("%.2f", res.SensorSNRdB), fmt.Sprintf("%.2f", res.PaperSensorSNRdB)},
			{"external probe", fmt.Sprintf("%.2f", res.ProbeSNRdB), fmt.Sprintf("%.2f", res.PaperProbeSNRdB)},
		})
	}

	// Figure 6 histograms, both channels.
	for _, useSensor := range []bool{false, true} {
		res, err := Fig6Histograms(cfg, useSensor)
		if err != nil {
			return err
		}
		which := "Figure 6(a)-(d) — external probe"
		if useSensor {
			which = "Figure 6(e)-(h) — on-chip sensor"
		}
		r.AddHeading(which, "Red: golden circuit. Blue: Trojan activated. Euclidean distance histograms.")
		for _, p := range res.Panels {
			r.AddBars(
				fmt.Sprintf("%v — overlap %.2f, TVLA |t| %.1f", p.Trojan, p.Overlap, abs(p.TStat)),
				"Euclidean distance (V)", p.Golden.Min, p.Golden.Max,
				report.Series{Name: "golden", Values: counts(p.Golden.Counts)},
				report.Series{Name: p.Trojan.String() + " active", Values: counts(p.Active.Counts)},
			)
		}
	}

	// Figure 4: A2 spectra.
	if err := addA2Spectra(cfg, r); err != nil {
		return err
	}

	// Extension: acquisition-chain degradation, naive vs hardened.
	if err := addDegradation(cfg, r); err != nil {
		return err
	}

	// Extension: sensor-array localization heatmaps.
	if err := addLocalization(cfg, r); err != nil {
		return err
	}

	// Extension: population-scale fleet monitoring.
	if err := addFleet(cfg, r); err != nil {
		return err
	}

	// Extension: generated Trojan campaign ROC sweeps.
	if err := addCampaign(cfg, r); err != nil {
		return err
	}

	return r.WriteHTML(w)
}

// addCampaign renders the generated-Trojan campaign: the pooled ROC
// curve over the Eq. (1) threshold margin, the detection tables along
// each swept axis, and the searcher comparison.
func addCampaign(cfg Config, r *report.Report) error {
	res, err := Campaign(cfg)
	if err != nil {
		return err
	}
	r.AddHeading(fmt.Sprintf("Generated Trojan campaign — %d members (extension)", res.Members),
		fmt.Sprintf("Automatically synthesized rare-trigger Trojans (AND of k rare nets, XOR payload plus a toggling "+
			"payload bank) swept over trigger size, trigger rarity, and placement. Campaign hash %016x; "+
			"regeneration from the same seed matched: %v.", res.Hash, res.Reproducible))

	tpr := report.Series{Name: "TPR"}
	fpr := report.Series{Name: "FPR"}
	for _, p := range res.ROC {
		tpr.Values = append(tpr.Values, 100*p.TPR)
		fpr.Values = append(fpr.Values, 100*p.FPR)
	}
	r.AddLines("Pooled detection/false-alarm rates vs Eq. (1) threshold margin (%)",
		"threshold margin", res.ROC[0].Margin, res.ROC[len(res.ROC)-1].Margin, false, tpr, fpr)

	groupTable := func(title string, groups []CampaignGroup) {
		rows := make([][]string, 0, len(groups))
		for _, g := range groups {
			rows = append(rows, []string{g.Label, fmt.Sprint(g.Members),
				fmt.Sprintf("%.0f%%", 100*g.Detection), fmt.Sprintf("%.0f%%", 100*g.FalseAlarm),
				fmt.Sprintf("%.0f%%", 100*g.Hardened), fmt.Sprintf("%.0f%%", 100*g.Array)})
		}
		r.AddTable([]string{title, "members", "detect", "false+", "hardened", "array"}, rows)
	}
	groupTable("trigger size", res.ByK)
	groupTable("rarity bucket", res.ByRarity)
	groupTable("tile quadrant", res.ByTile)

	rows := make([][]string, 0, len(res.Search))
	for _, s := range res.Search {
		rows = append(rows, []string{s.Searcher,
			fmt.Sprintf("%.1f%%", 100*s.MeanFrac),
			fmt.Sprintf("%d/%d", s.FullTriggers, res.SearchMembers)})
	}
	r.AddTable([]string{
		fmt.Sprintf("searcher (%d members, %d evals each)", res.SearchMembers, res.SearchBudget),
		"mean coverage", "full triggers"}, rows)
	return nil
}

// addLocalization renders the sensor-array sweep: the size/budget
// summary tables and one die heatmap per threat on the 4×4 array, with
// the true Trojan cell named next to the predicted one.
func addLocalization(cfg Config, r *report.Report) error {
	res, err := Localization(cfg)
	if err != nil {
		return err
	}
	r.AddHeading("Sensor array — golden-model-free localization (extension)",
		"An N×N array of small coils replaces the whole-die spiral. Each coil is scored against its "+
			"spatial neighbors and its own history — no golden chip — and the per-coil anomaly scores "+
			"form a die heatmap that names the Trojan's tile.")
	rows := make([][]string, 0, len(res.Grids))
	for _, g := range res.Grids {
		name := fmt.Sprintf("%dx%d", g.NX, g.NY)
		if g.NX == 1 {
			name += " (whole-die coil)"
		}
		rows = append(rows, []string{name, fmt.Sprint(g.Windows),
			fmt.Sprintf("%d/%d", g.Detected, len(g.Threats)),
			fmt.Sprintf("%d/%d", g.Localized, len(g.Threats))})
	}
	r.AddTable([]string{"array", "windows/frame", "detected", "localized"}, rows)
	if four := res.Grid(4); four != nil {
		for _, thr := range four.Threats {
			tx, ty := thr.TrueCell%four.NX, thr.TrueCell/four.NX
			r.AddHeatmap(
				fmt.Sprintf("%s — mean anomaly z per cell (true cell (%d,%d), tile dist %d)",
					thr.Name, tx, ty, thr.TileDist),
				four.NX, four.NY, thr.Heat)
		}
	}
	rows = rows[:0]
	for _, g := range res.Budget {
		rows = append(rows, []string{fmt.Sprint(g.Channels), fmt.Sprint(g.Windows),
			fmt.Sprintf("%d/%d", g.Detected, len(g.Threats)),
			fmt.Sprintf("%d/%d", g.Localized, len(g.Threats))})
	}
	r.AddTable([]string{"ADC channels (4x4)", "windows/frame", "detected", "localized"}, rows)
	return nil
}

// addDegradation renders the fault-injection sweep: the false-alarm
// curves of both monitors against severity, and the per-severity
// detection table.
func addDegradation(cfg Config, r *report.Report) error {
	res, err := Degradation(cfg)
	if err != nil {
		return err
	}
	r.AddHeading("Degradation — acquisition-chain faults (extension)",
		"Drift, bursts, glitches, jitter and clipping injected between coil and analysis. "+
			"Naive is the paper's monitor; hardened adds the health gate, debouncing and guarded re-baselining.")
	var sevs []float64
	naive := report.Series{Name: "naive false alarms", Color: "#c0392b"}
	hard := report.Series{Name: "hardened false alarms", Color: "#2455a4"}
	rej := report.Series{Name: "rejected traces", Color: "#1e8449"}
	rows := make([][]string, 0, len(res.Points))
	for _, p := range res.Points {
		sevs = append(sevs, p.Severity)
		naive.Values = append(naive.Values, 100*p.FalseAlarmNaive)
		hard.Values = append(hard.Values, 100*p.FalseAlarmHardened)
		rej.Values = append(rej.Values, 100*p.Rejected)
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.Severity),
			fmt.Sprintf("%.0f%%", 100*p.Rejected),
			fmt.Sprintf("%.0f%% / %.0f%%", 100*p.FalseAlarmNaive, 100*p.FalseAlarmHardened),
			fmt.Sprintf("%.0f%% / %.0f%%", 100*p.DetectionNaive[trojan.T1AMLeaker], 100*p.DetectionHardened[trojan.T1AMLeaker]),
			fmt.Sprintf("%.0f%% / %.0f%%", 100*p.DetectionNaive[trojan.T2LeakageCurrent], 100*p.DetectionHardened[trojan.T2LeakageCurrent]),
			fmt.Sprintf("%.0f%% / %.0f%%", 100*p.DetectionNaive[trojan.T3CDMALeaker], 100*p.DetectionHardened[trojan.T3CDMALeaker]),
			fmt.Sprintf("%.0f%% / %.0f%%", 100*p.DetectionNaive[trojan.T4PowerHog], 100*p.DetectionHardened[trojan.T4PowerHog]),
			fmt.Sprintf("%.0f%% / %.0f%%", 100*p.A2Naive, 100*p.A2Hardened),
		})
	}
	if len(sevs) > 1 {
		r.AddLines("false-alarm rate vs severity (%)", "severity",
			sevs[0], sevs[len(sevs)-1], false, naive, hard, rej)
	}
	r.AddTable([]string{"severity", "rejected", "false+ n/h", "T1 n/h", "T2 n/h", "T3 n/h", "T4 n/h", "A2 n/h"}, rows)
	r.AddPre(fmt.Sprintf("freeze study: Trojan activates at trace %d under continuing drift;\nconfirmed-alarm persistence over the late activation: %.0f%%",
		res.FreezeActivation, 100*res.FreezePersistence))
	return nil
}

// addA2Spectra captures dormant and firing idle windows and plots their
// spectra (the Figure 4 panel).
func addA2Spectra(cfg Config, r *report.Report) error {
	chipCfg := cfg.Chip
	chipCfg.WithTrojans = false
	chipCfg.WithA2 = true
	c, err := chip.New(chipCfg)
	if err != nil {
		return err
	}
	ch := chip.SimulationChannels()
	cycles := cfg.SpectralCycles
	c.EnableA2(false)
	dormant, err := idleTraces(c, ch, 1, cycles)
	if err != nil {
		return err
	}
	c.EnableA2(true)
	if _, err := c.CaptureIdle(cycles); err != nil {
		return err
	}
	firing, err := idleTraces(c, ch, 1, cycles)
	if err != nil {
		return err
	}
	offTrace := dormant.Sensor.Traces[0]
	onTrace := firing.Sensor.Traces[0]
	specOff := dsp.NewSpectrum(offTrace.Samples, offTrace.Dt, cfg.Spectral.Window)
	specOn := dsp.NewSpectrum(onTrace.Samples, onTrace.Dt, cfg.Spectral.Window)
	limit := specOff.Bin(3 * cfg.Chip.Power.ClockHz) // up to the 3rd clock multiple
	r.AddHeading("Figure 4 — A2 Trojan in the frequency domain",
		"Blue: dormant. Red: triggering (fast-flipping trigger raises the clock harmonic).")
	r.AddLines("sensor spectrum", "frequency (Hz)", 0, specOff.Frequency(limit), true,
		report.Series{Name: "triggering", Color: "#c0392b", Values: specOn.Amplitude[:limit]},
		report.Series{Name: "dormant", Color: "#2455a4", Values: specOff.Amplitude[:limit]},
	)
	return nil
}

// addFleet renders the population-scale monitoring run: the service
// counters and the FDR alarm list scored against ground truth.
func addFleet(cfg Config, r *report.Report) error {
	res, err := Fleet(cfg)
	if err != nil {
		return err
	}
	r.AddHeading("Fleet monitoring — population-scale trust evaluation (extension)",
		"A sharded service monitors a fleet of process-variation siblings, each aging through its own "+
			"degradation profile. Per-die guarded Holt tracking discounts drift, the cross-die reference "+
			"cancels the fleet common mode, and Benjamini-Hochberg ranking bounds the false-discovery "+
			"fraction of the alarm list.")
	r.AddTable([]string{"dies", "infected", "rounds", "verdicts", "verdicts/s", "shed", "quarantined", "alarms", "hits", "false"},
		[][]string{{
			fmt.Sprint(res.Dies), fmt.Sprint(res.Infected), fmt.Sprint(res.Rounds),
			fmt.Sprint(res.Verdicts), fmt.Sprintf("%.0f", res.VerdictsPerSec),
			fmt.Sprint(res.Dropped), fmt.Sprint(res.Quarantined),
			fmt.Sprint(len(res.Alarms)), fmt.Sprint(res.Hits), fmt.Sprint(res.Falses),
		}})
	rows := make([][]string, 0, len(res.Alarms))
	for _, a := range res.Alarms {
		rows = append(rows, []string{
			fmt.Sprint(a.Die), fmt.Sprintf("%.1f", a.Score), fmt.Sprintf("%.3g", a.P),
			fmt.Sprintf("%d/%d", a.Confirmed, a.Verdicts),
		})
	}
	if len(rows) > 0 {
		r.AddTable([]string{"die", "score", "p", "confirmed"}, rows)
	}
	return nil
}

func counts(c []int) []float64 {
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = float64(v)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
