package experiments

import (
	"fmt"
	"strings"

	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/degrade"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

// This experiment closes the loop on the acquisition-chain fault study:
// it re-measures the paper's trace populations through a progressively
// degraded readout chain (drift, bursts, glitches, jitter, clipping —
// see internal/degrade) and grades two monitors side by side on every
// stream:
//
//   - naive: the paper's monitor verbatim (every raw alarm counts),
//   - hardened: health gate + 2-of-4 debounce + guarded re-baselining
//     (core.HardenedOptions).
//
// The claims under test: the hardened monitor holds a lower false-alarm
// rate on Trojan-free degraded streams, still catches T1–T4 and A2
// through a moderately degraded channel, and its re-baseliner never
// absorbs a Trojan activation (the alarm persists after drift
// adaptation).

// DegradationPoint is one severity level of the sweep.
type DegradationPoint struct {
	// Severity scales the degrade.Profile fault mix; 0 is a pristine
	// channel.
	Severity float64
	// Rejected is the fraction of Trojan-free traces the health gate
	// refused to judge.
	Rejected float64
	// FalseAlarmNaive and FalseAlarmHardened are confirmed-alarm rates
	// on the Trojan-free stream.
	FalseAlarmNaive    float64
	FalseAlarmHardened float64
	// DetectionNaive and DetectionHardened are per-Trojan confirmed-alarm
	// rates on single-Trojan-active streams.
	DetectionNaive    map[trojan.Kind]float64
	DetectionHardened map[trojan.Kind]float64
	// A2Naive and A2Hardened are the spectral detector's rates on the
	// triggering analog Trojan, measured on idle windows.
	A2Naive    float64
	A2Hardened float64
}

// DegradationResult is the full sweep plus the freeze study.
type DegradationResult struct {
	// ModerateSeverity is the level the detection acceptance is judged
	// at (a plausibly aged deployed sensor, not a destroyed one).
	ModerateSeverity float64
	// Span is the trace count over which the profile's drift accrues.
	Span   int
	Points []DegradationPoint

	// Freeze study, run at ModerateSeverity: a quiet drifting prefix
	// (the re-baseliner adapts), then a Trojan activates and stays on.
	// FreezeActivation is the trace index of the activation;
	// FreezePersistence is the confirmed-alarm rate over the second half
	// of the activation. If the guarded EWMA ever absorbed the step,
	// persistence collapses toward zero.
	FreezeActivation  int
	FreezePersistence float64
}

// degradeReplay re-measures a trace set through a degrade.Channel built
// from the profile stages, with per-index generators derived from the
// chip's seed. The source traces are never mutated.
func degradeReplay(c *chip.Chip, src []*trace.Trace, stages []degrade.Stage, first int) []*trace.Trace {
	dch := degrade.Wrap(degrade.Identity{}, stages...)
	stream := c.NextStream()
	out := make([]*trace.Trace, len(src))
	for i, t := range src {
		out[i] = dch.AcquireAt(first+i, t.Samples, t.Dt, c.SplitRand(stream, uint64(first+i)))
	}
	return out
}

// runStream feeds traces through a monitor in order and returns the
// verdicts.
func runStream(m *core.Monitor, traces []*trace.Trace) []core.Verdict {
	go func() {
		for _, t := range traces {
			m.Submit(t)
		}
		m.Close()
	}()
	var vs []core.Verdict
	for v := range m.Verdicts() {
		vs = append(vs, v)
	}
	return vs
}

func confirmedRate(vs []core.Verdict) float64 {
	if len(vs) == 0 {
		return 0
	}
	n := 0
	for _, v := range vs {
		if v.Confirmed() {
			n++
		}
	}
	return float64(n) / float64(len(vs))
}

func rejectedRate(vs []core.Verdict) float64 {
	if len(vs) == 0 {
		return 0
	}
	n := 0
	for _, v := range vs {
		if v.Health.Rejected {
			n++
		}
	}
	return float64(n) / float64(len(vs))
}

// degradationSeverities is the sweep grid; the moderate level sits in
// the middle.
var degradationSeverities = []float64{0, 1, 2, 3}

const moderateSeverity = 2

// Degradation runs the sweep. All randomness derives from the chip
// seed, so the whole study is bit-identical across runs.
func Degradation(cfg Config) (*DegradationResult, error) {
	c, err := infectedChip(cfg)
	if err != nil {
		return nil, err
	}
	ch := chip.SimulationChannels()

	golden, err := captureSet(c, cfg, ch, cfg.GoldenTraces, cfg.CaptureCycles)
	if err != nil {
		return nil, err
	}
	fp, err := core.BuildFingerprint(golden.Sensor.Traces, cfg.Fingerprint)
	if err != nil {
		return nil, err
	}
	health, err := core.BuildChannelHealth(golden.Sensor.Traces, core.DefaultHealthConfig())
	if err != nil {
		return nil, err
	}

	// Capture every population once through the healthy channel; the
	// severity sweep replays them through fault profiles, so adding a
	// severity level costs acquisitions, not gate-level simulation.
	clean, err := captureSet(c, cfg, ch, cfg.TestTraces, cfg.CaptureCycles)
	if err != nil {
		return nil, err
	}
	trojanSets := make(map[trojan.Kind]*dualSet, len(trojan.Kinds()))
	for _, k := range trojan.Kinds() {
		set, err := withTrojan(c, cfg, ch, k, cfg.TestTraces, cfg.CaptureCycles)
		if err != nil {
			return nil, err
		}
		trojanSets[k] = set
	}

	// The analog Trojan lives on a separate chip and is judged on idle
	// spectral windows (Figure 4's setting).
	a2Golden, a2On, a2Chip, err := a2IdleSets(cfg)
	if err != nil {
		return nil, err
	}
	sd, err := core.BuildSpectralDetector(a2Golden, cfg.Spectral)
	if err != nil {
		return nil, err
	}
	a2Health, err := core.BuildChannelHealth(a2Golden, core.DefaultHealthConfig())
	if err != nil {
		return nil, err
	}

	res := &DegradationResult{
		ModerateSeverity: moderateSeverity,
		Span:             degradationSpan(cfg),
	}
	for _, sev := range degradationSeverities {
		stages := degrade.Profile{Severity: sev, RefRMS: health.GoldenRMS, RefPeak: health.GoldenPeak, Span: res.Span}.Stages()
		p := DegradationPoint{
			Severity:          sev,
			DetectionNaive:    make(map[trojan.Kind]float64, len(trojanSets)),
			DetectionHardened: make(map[trojan.Kind]float64, len(trojanSets)),
		}

		degClean := degradeReplay(c, clean.Sensor.Traces, stages, 0)
		naive, err := core.NewMonitor(fp, nil, 8)
		if err != nil {
			return nil, err
		}
		p.FalseAlarmNaive = confirmedRate(runStream(naive, degClean))
		hardened, err := core.NewMonitorWith(fp, nil, core.HardenedOptions(health))
		if err != nil {
			return nil, err
		}
		hv := runStream(hardened, degClean)
		p.FalseAlarmHardened = confirmedRate(hv)
		p.Rejected = rejectedRate(hv)

		for _, k := range trojan.Kinds() {
			deg := degradeReplay(c, trojanSets[k].Sensor.Traces, stages, 0)
			naive, err := core.NewMonitor(fp, nil, 8)
			if err != nil {
				return nil, err
			}
			p.DetectionNaive[k] = confirmedRate(runStream(naive, deg))
			hardened, err := core.NewMonitorWith(fp, nil, core.HardenedOptions(health))
			if err != nil {
				return nil, err
			}
			p.DetectionHardened[k] = confirmedRate(runStream(hardened, deg))
		}

		// A2: idle-window spectra, scaled to the idle channel's RMS.
		a2Stages := degrade.Profile{Severity: sev, RefRMS: a2Health.GoldenRMS, RefPeak: a2Health.GoldenPeak, Span: res.Span}.Stages()
		degA2 := degradeReplay(a2Chip, a2On, a2Stages, 0)
		a2Naive, err := core.NewMonitor(nil, sd, 8)
		if err != nil {
			return nil, err
		}
		p.A2Naive = confirmedRate(runStream(a2Naive, degA2))
		a2Opts := core.HardenedOptions(a2Health)
		a2Opts.Rebaseline = core.RebaselineConfig{} // no time-domain fingerprint here
		a2Hardened, err := core.NewMonitorWith(nil, sd, a2Opts)
		if err != nil {
			return nil, err
		}
		p.A2Hardened = confirmedRate(runStream(a2Hardened, degA2))

		res.Points = append(res.Points, p)
	}

	// Freeze study: quiet drifting prefix, then T4 (the strongest
	// radiator) activates and never turns off. The indices run on across
	// the boundary so the drift keeps accruing through the activation.
	stages := degrade.Profile{Severity: moderateSeverity, RefRMS: health.GoldenRMS, RefPeak: health.GoldenPeak, Span: res.Span}.Stages()
	prefix := degradeReplay(c, clean.Sensor.Traces, stages, 0)
	active := degradeReplay(c, trojanSets[trojan.T4PowerHog].Sensor.Traces, stages, len(prefix))
	m, err := core.NewMonitorWith(fp, nil, core.HardenedOptions(health))
	if err != nil {
		return nil, err
	}
	vs := runStream(m, append(append([]*trace.Trace{}, prefix...), active...))
	res.FreezeActivation = len(prefix)
	tail := vs[len(prefix)+len(active)/2:]
	res.FreezePersistence = confirmedRate(tail)
	return res, nil
}

// degradationSpan stretches the drift over four stream lengths, so by
// the end of one monitored stream the chain has seen a quarter of the
// profile's full drift — slow against the EWMA, as deployment aging is.
func degradationSpan(cfg Config) int {
	span := 4 * cfg.TestTraces
	if span < 40 {
		span = 40
	}
	return span
}

// a2IdleSets captures the idle-window golden and triggering trace sets
// on the A2-carrying chip (mirrors the Figure 4 experiment).
func a2IdleSets(cfg Config) (golden, on []*trace.Trace, c *chip.Chip, err error) {
	chipCfg := cfg.Chip
	chipCfg.WithTrojans = false
	chipCfg.WithA2 = true
	c, err = chip.New(chipCfg)
	if err != nil {
		return nil, nil, nil, err
	}
	ch := chip.SimulationChannels()
	cycles := cfg.SpectralCycles
	c.EnableA2(false)
	gSet, err := idleTraces(c, ch, cfg.GoldenTraces/8+4, cycles)
	if err != nil {
		return nil, nil, nil, err
	}
	c.EnableA2(true)
	if _, err := c.CaptureIdle(cycles); err != nil { // warm-up: charge the pump
		return nil, nil, nil, err
	}
	if !c.A2().Firing() {
		return nil, nil, nil, fmt.Errorf("experiments: A2 failed to trigger")
	}
	onSet, err := idleTraces(c, ch, cfg.TestTraces/4+4, cycles)
	if err != nil {
		return nil, nil, nil, err
	}
	return gSet.Sensor.Traces, onSet.Sensor.Traces, c, nil
}

// String renders the sweep.
func (r *DegradationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Acquisition-chain degradation: naive vs hardened monitor (extension)\n")
	fmt.Fprintf(&sb, "%-9s %7s %15s %15s %15s %15s %15s %15s %9s\n",
		"severity", "reject", "false+ n/h", "T1 n/h", "T2 n/h", "T3 n/h", "T4 n/h", "A2 n/h", "")
	pair := func(n, h float64) string { return fmt.Sprintf("%3.0f%% /%4.0f%%", 100*n, 100*h) }
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%8.1fx %6.0f%% %15s %15s %15s %15s %15s %15s\n",
			p.Severity, 100*p.Rejected,
			pair(p.FalseAlarmNaive, p.FalseAlarmHardened),
			pair(p.DetectionNaive[trojan.T1AMLeaker], p.DetectionHardened[trojan.T1AMLeaker]),
			pair(p.DetectionNaive[trojan.T2LeakageCurrent], p.DetectionHardened[trojan.T2LeakageCurrent]),
			pair(p.DetectionNaive[trojan.T3CDMALeaker], p.DetectionHardened[trojan.T3CDMALeaker]),
			pair(p.DetectionNaive[trojan.T4PowerHog], p.DetectionHardened[trojan.T4PowerHog]),
			pair(p.A2Naive, p.A2Hardened))
	}
	fmt.Fprintf(&sb, "freeze study: Trojan activates at trace %d under continuing drift;\n", r.FreezeActivation)
	fmt.Fprintf(&sb, " confirmed-alarm persistence over the late activation: %.0f%%\n", 100*r.FreezePersistence)
	fmt.Fprintf(&sb, "(health gate + 2-of-4 debounce + guarded re-baselining: false alarms\n fall while Trojan activations stay latched — adaptation freezes on\n any alarm evidence, so a step change is never absorbed)\n")
	return sb.String()
}
