package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"

	"emtrust/internal/aes"
	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/netlist"
	"emtrust/internal/parallel"
)

// FaultsResult evaluates the framework against plain defects: random
// stuck-at faults injected into the AES logic. The paper positions the
// monitor as identifying "malicious actions or vulnerabilities in the
// circuit"; stuck-at faults are the vulnerability end of that claim.
type FaultsResult struct {
	Faults int
	// FunctionallyVisible is how many faults corrupted the ciphertext
	// for the fixed test stimulus (what production functional test
	// would catch with this one vector).
	FunctionallyVisible int
	// EMVisible is how many faults the EM fingerprint flagged.
	EMVisible int
	// EitherVisible counts faults caught by at least one method.
	EitherVisible int
	// EMOnly counts faults the EM monitor caught although the
	// ciphertext stayed correct (activity changed, function did not —
	// invisible to this functional vector).
	EMOnly int
}

// Faults injects one stuck-at fault at a time into random AES cells and
// reports detectability. The fingerprint comes from the healthy chip.
func Faults(cfg Config) (*FaultsResult, error) {
	chipCfg := cfg.Chip
	chipCfg.WithTrojans = false
	chipCfg.WithA2 = false
	healthy, err := chip.New(chipCfg)
	if err != nil {
		return nil, err
	}
	ch := chip.SimulationChannels()
	golden, err := captureSet(healthy, cfg, ch, cfg.GoldenTraces, cfg.CaptureCycles)
	if err != nil {
		return nil, err
	}
	fp, err := core.BuildFingerprint(golden.Sensor.Traces, cfg.Fingerprint)
	if err != nil {
		return nil, err
	}
	wantCT := make([]byte, 16)
	aes.NewCipher(cfg.Key).Encrypt(wantCT, cfg.Plaintext)

	// Candidate fault sites: outputs of AES-region cells.
	n := healthy.Netlist()
	var sites []netlist.Net
	for _, c := range n.Cells {
		if strings.HasPrefix(c.Region, "aes") && !c.Type.IsSequential() {
			sites = append(sites, c.Output)
		}
	}
	rng := rand.New(rand.NewSource(chipCfg.Seed + 7))
	faults := cfg.TestTraces / 3
	if faults < 8 {
		faults = 8
	}
	trials := 5

	// Draw the fault sites serially so the site sequence matches the old
	// shared-stream behavior, then evaluate the faults in parallel: each
	// fault builds its own stuck-at chip, captures the fixed stimulus
	// once, and replays the acquisition per trial with a derived stream.
	type faultCase struct {
		net   netlist.Net
		value bool
	}
	cases := make([]faultCase, faults)
	for f := range cases {
		cases[f] = faultCase{net: sites[rng.Intn(len(sites))], value: rng.Intn(2) == 1}
	}
	stream := healthy.NextStream()
	emVisible := make([]bool, faults)
	funcVisible := make([]bool, faults)
	err = parallel.For(faults, func(f int) error {
		faulty, err := healthy.WithStuckAt(cases[f].net, cases[f].value)
		if err != nil {
			return err
		}
		cap, err := faulty.CapturePT(cfg.Plaintext, cfg.Key, cfg.CaptureCycles)
		if err != nil {
			return err
		}
		ct, err := faulty.Ciphertext()
		if err != nil {
			return err
		}
		funcVisible[f] = !bytes.Equal(ct, wantCT)
		trng := healthy.SplitRand(stream, uint64(f))
		emHits := 0
		for i := 0; i < trials; i++ {
			s, _ := ch.Acquire(cap, trng)
			if fp.Evaluate(s).Alarm {
				emHits++
			}
		}
		emVisible[f] = emHits > trials/2
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &FaultsResult{Faults: faults}
	for f := 0; f < faults; f++ {
		em, functional := emVisible[f], funcVisible[f]
		if functional {
			res.FunctionallyVisible++
		}
		if em {
			res.EMVisible++
		}
		if em || functional {
			res.EitherVisible++
		}
		if em && !functional {
			res.EMOnly++
		}
	}
	return res, nil
}

// String renders the fault study.
func (r *FaultsResult) String() string {
	var sb strings.Builder
	pct := func(n int) float64 {
		if r.Faults == 0 {
			return 0
		}
		return 100 * float64(n) / float64(r.Faults)
	}
	fmt.Fprintf(&sb, "Stuck-at fault detectability, %d random AES faults (extension)\n", r.Faults)
	fmt.Fprintf(&sb, "%-34s %6d (%.0f%%)\n", "ciphertext corrupted (functional)", r.FunctionallyVisible, pct(r.FunctionallyVisible))
	fmt.Fprintf(&sb, "%-34s %6d (%.0f%%)\n", "EM fingerprint alarm", r.EMVisible, pct(r.EMVisible))
	fmt.Fprintf(&sb, "%-34s %6d (%.0f%%)\n", "caught by either", r.EitherVisible, pct(r.EitherVisible))
	fmt.Fprintf(&sb, "%-34s %6d (%.0f%%)\n", "EM-only (function intact)", r.EMOnly, pct(r.EMOnly))
	fmt.Fprintf(&sb, "(an honest negative: single stuck-at defects corrupt function long\n before they move the EM fingerprint — the side channel is a Trojan\n detector, not a replacement for functional test)\n")
	return sb.String()
}
