package experiments

import (
	"fmt"
	"strings"

	"emtrust/internal/dsp"
	"emtrust/internal/emfield"
	"emtrust/internal/trojan"
)

// LocalizeRow is one Trojan's localization outcome.
type LocalizeRow struct {
	Trojan trojan.Kind
	// Expected is the quadrant of the Trojan's placement block.
	Expected string
	// Predicted is the quadrant whose sensor saw the largest relative
	// energy increase when the Trojan activated.
	Predicted string
	// Increase is the winning quadrant's relative RMS increase over
	// golden.
	Increase float64
	Correct  bool
}

// LocalizeResult is the extension experiment for the sensor-enhancement
// direction of the paper's future work: four quadrant spirals on the top
// metal layer not only detect an activated Trojan but point at where it
// sits — the "location awareness" the paper credits the EM side channel
// with.
type LocalizeResult struct {
	Rows []LocalizeRow
}

// Localize runs the quadrant-localization experiment.
func Localize(cfg Config) (*LocalizeResult, error) {
	c, err := infectedChip(cfg)
	if err != nil {
		return nil, err
	}
	fp := c.Floorplan()
	coils := emfield.QuadrantSpirals(fp.Die, cfg.Chip.SpiralTurns/2+1, cfg.Chip.SpiralZ)
	couplings := make([]*emfield.Coupling, 4)
	for q, coil := range coils {
		cp, err := emfield.CachedCoupling(coil, fp.Grid, cfg.Chip.TileLoopArea, cfg.Chip.Quad)
		if err != nil {
			return nil, err
		}
		couplings[q] = cp
	}

	// Per-quadrant RMS of a capture's emf. Captures here are noise-free
	// and the stimulus is fixed, so repeated captures from a steady state
	// are identical; one warm-up capture absorbs the state transient left
	// by SetTrojan, and a single measured capture replaces the old
	// average-of-repetitions.
	var emfBuf []float64
	measure := func() ([4]float64, error) {
		if _, err := c.CapturePT(cfg.Plaintext, cfg.Key, cfg.CaptureCycles); err != nil {
			return [4]float64{}, err
		}
		cap, err := c.CapturePT(cfg.Plaintext, cfg.Key, cfg.CaptureCycles)
		if err != nil {
			return [4]float64{}, err
		}
		var out [4]float64
		for q, cp := range couplings {
			emfBuf = cp.EMFInto(emfBuf, cap.Tiles, cap.Dt)
			out[q] = dsp.RMS(emfBuf)
		}
		return out, nil
	}

	golden, err := measure()
	if err != nil {
		return nil, err
	}

	res := &LocalizeResult{}
	for _, k := range trojan.Kinds() {
		if err := c.SetTrojan(k, true); err != nil {
			return nil, err
		}
		active, err := measure()
		if err != nil {
			return nil, err
		}
		if err := c.SetTrojan(k, false); err != nil {
			return nil, err
		}
		best, bestInc := 0, -1.0
		for q := range active {
			inc := active[q]/golden[q] - 1
			if inc > bestInc {
				best, bestInc = q, inc
			}
		}
		blk, ok := fp.RegionOf(k.Region())
		if !ok {
			return nil, fmt.Errorf("experiments: no block for %v", k)
		}
		expected := emfield.QuadrantOf(fp.Die, emfield.Vec3{X: blk.X + blk.W/2, Y: blk.Y + blk.H/2})
		res.Rows = append(res.Rows, LocalizeRow{
			Trojan:    k,
			Expected:  emfield.QuadrantNames[expected],
			Predicted: emfield.QuadrantNames[best],
			Increase:  bestInc,
			Correct:   best == expected,
		})
	}
	return res, nil
}

// String renders the localization table.
func (r *LocalizeResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Trojan localization with quadrant spirals (extension)\n")
	fmt.Fprintf(&sb, "%-6s %10s %10s %10s %8s\n", "trojan", "expected", "predicted", "increase", "correct")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-6v %10s %10s %9.1f%% %8v\n",
			row.Trojan, row.Expected, row.Predicted, 100*row.Increase, row.Correct)
	}
	return sb.String()
}
