package experiments

import (
	"fmt"
	"math"
	"strings"

	"emtrust/internal/core"
	"emtrust/internal/layout"
	"emtrust/internal/sensorarray"
	"emtrust/internal/trojan"
)

// Localization is the sensor-array extension experiment: replace the
// paper's single whole-die spiral with a programmable N×N array of small
// coils and ask three questions the single coil cannot answer —
// (a) can Trojans be detected *without a golden model*, from cross-sensor
// self-referencing alone, (b) can the firing Trojan be *located* on the
// die, scored against the true placement block, and (c) how does a
// bounded ADC-channel budget (the mux sequencer of the real hardware)
// trade frame latency against coverage.

// Frame counts for the sweep. Calibration frames fit the self-reference
// baseline; eval frames score each threat. The budget sweep re-runs the
// 4×4 grid with fewer frames since each frame costs Windows captures.
const (
	locCalFrames   = 8
	locEvalFrames  = 6
	locBudgetCal   = 6
	locBudgetEval  = 4
	locDetectFrac  = 0.5
	locAdjacentMax = 1 // tiles: correct or adjacent counts as localized
)

// LocalizationThreat is one threat's outcome on one array.
type LocalizationThreat struct {
	Name string
	// Detected is the fraction of eval frames that alarmed.
	Detected float64
	// PredCell is the array cell with the highest mean anomaly score;
	// TrueCell is the cell covering the threat's placement block center.
	PredCell, TrueCell int
	// TileDist is the Chebyshev distance, in floorplan tiles, from the
	// true block's center tile to the nearest tile of the predicted
	// cell's footprint (0 when the cell covers the truth).
	TileDist int
	// DistUM is the Euclidean distance from the predicted cell center to
	// the true block center, in micrometers — the precision measure that
	// keeps shrinking as the array gets finer.
	DistUM float64
	// Localized: detected on most frames AND the predicted cell covers
	// the true tile or an adjacent one. A 1×1 array never localizes: its
	// only possible answer is the entire die, which narrows nothing.
	Localized bool
	// MeanZ is the winning cell's mean anomaly score.
	MeanZ float64
	// Heat holds the per-cell mean anomaly scores (the die heatmap).
	Heat []float64
}

// LocalizationGrid is one array size (or one channel budget) of the sweep.
type LocalizationGrid struct {
	NX, NY int
	// Channels is the effective ADC-channel budget; Windows the capture
	// windows one frame costs under it (the frame latency).
	Channels, Windows int
	Threats           []LocalizationThreat
	// Detected and Localized count threats (out of len(Threats)).
	Detected, Localized int
}

// LocalizationResult is the full sweep.
type LocalizationResult struct {
	// Grids sweeps array sizes at an unconstrained channel budget;
	// Budget re-runs the 4×4 grid under shrinking ADC budgets.
	Grids     []LocalizationGrid
	Budget    []LocalizationGrid
	Threshold float64
}

// Localization runs the sweep on the infected chip: array sizes
// 1×1 (the paper's whole-die coil) through 8×8, then the channel-budget
// tradeoff at 4×4.
func Localization(cfg Config) (*LocalizationResult, error) {
	res := &LocalizationResult{Threshold: core.DefaultSelfReferenceConfig().Threshold}
	for _, n := range []int{1, 2, 4, 8} {
		g, err := localizeGrid(cfg, n, 0, locCalFrames, locEvalFrames)
		if err != nil {
			return nil, fmt.Errorf("experiments: %dx%d array: %w", n, n, err)
		}
		res.Grids = append(res.Grids, g)
	}
	for _, chn := range []int{4, 1} {
		g, err := localizeGrid(cfg, 4, chn, locBudgetCal, locBudgetEval)
		if err != nil {
			return nil, fmt.Errorf("experiments: 4x4 array, %d channels: %w", chn, err)
		}
		res.Budget = append(res.Budget, g)
	}
	return res, nil
}

// localizeGrid runs one array configuration against every threat on a
// fresh infected chip. Nothing golden is consulted: the detector
// calibrates on the deployed (infected, dormant) chip itself.
func localizeGrid(cfg Config, n, channels, calFrames, evalFrames int) (LocalizationGrid, error) {
	g := LocalizationGrid{NX: n, NY: n}
	c, err := infectedChip(cfg)
	if err != nil {
		return g, err
	}
	fp := c.Floorplan()
	acfg := sensorarray.ConfigFor(cfg.Chip, n)
	acfg.Channels = channels
	arr, err := sensorarray.New(fp, acfg)
	if err != nil {
		return g, err
	}
	g.Windows = arr.Windows()
	g.Channels = channels
	if channels <= 0 || channels > arr.NumCoils() {
		g.Channels = arr.NumCoils()
	}

	ch := sensorarray.DefaultChannel()
	scan := func() (*sensorarray.Frame, error) {
		return arr.ScanEncryption(c, ch, cfg.Plaintext, cfg.Key, cfg.CaptureCycles)
	}

	// Self-calibration on the deployed chip running its known workload,
	// everything dormant; one warm-up frame absorbs the cold-start
	// transient.
	if _, err := scan(); err != nil {
		return g, err
	}
	frames := make([]*sensorarray.Frame, calFrames)
	for i := range frames {
		if frames[i], err = scan(); err != nil {
			return g, err
		}
	}
	mon, err := sensorarray.Calibrate(arr, frames, nil, core.DefaultSelfReferenceConfig())
	if err != nil {
		return g, err
	}

	evalThreat := func(name, region string, activate, deactivate func() error) error {
		if err := activate(); err != nil {
			return err
		}
		if _, err := scan(); err != nil { // warm-up, absorbs the trigger transient
			return err
		}
		heat := make([]float64, arr.NumCoils())
		alarms := 0
		for i := 0; i < evalFrames; i++ {
			f, err := scan()
			if err != nil {
				return err
			}
			v, err := mon.Evaluate(f)
			if err != nil {
				return err
			}
			if v.Alarm {
				alarms++
			}
			for k := range heat {
				heat[k] += v.Z[k] / float64(evalFrames)
			}
		}
		if err := deactivate(); err != nil {
			return err
		}
		if _, err := scan(); err != nil { // settle back before the next threat
			return err
		}
		pred := 0
		for k := range heat {
			if heat[k] > heat[pred] {
				pred = k
			}
		}
		blk, ok := fp.RegionOf(region)
		if !ok {
			return fmt.Errorf("no placement block for region %q", region)
		}
		center := layout.Point{X: blk.X + blk.W/2, Y: blk.Y + blk.H/2}
		dist := tileToRect(fp.Grid, fp.Grid.TileOf(center), arr, pred)
		pc := arr.CellCenter(pred)
		detected := float64(alarms) / float64(evalFrames)
		t := LocalizationThreat{
			Name:      name,
			Detected:  detected,
			PredCell:  pred,
			TrueCell:  arr.CellOf(center),
			TileDist:  dist,
			DistUM:    1e6 * math.Hypot(pc.X-center.X, pc.Y-center.Y),
			Localized: detected >= locDetectFrac && dist <= locAdjacentMax && arr.NumCoils() > 1,
			MeanZ:     heat[pred],
			Heat:      heat,
		}
		if t.Detected >= locDetectFrac {
			g.Detected++
		}
		if t.Localized {
			g.Localized++
		}
		g.Threats = append(g.Threats, t)
		return nil
	}

	for _, k := range trojan.Kinds() {
		k := k
		err := evalThreat(k.String(), k.Region(),
			func() error { return c.SetTrojan(k, true) },
			func() error { return c.SetTrojan(k, false) })
		if err != nil {
			return g, fmt.Errorf("%v: %w", k, err)
		}
	}
	// A2: arm the analog Trojan and let the clock-division wire charge
	// its pump during an idle window; it must be firing before the eval
	// frames score it.
	err = evalThreat("A2", "clkdiv",
		func() error {
			c.EnableA2(true)
			if _, err := c.CaptureIdle(cfg.SpectralCycles); err != nil {
				return err
			}
			if !c.A2().Firing() {
				return fmt.Errorf("A2 pump did not charge in %d idle cycles", cfg.SpectralCycles)
			}
			return nil
		},
		func() error { c.EnableA2(false); return nil })
	if err != nil {
		return g, fmt.Errorf("A2: %w", err)
	}
	return g, nil
}

// tileToRect returns the Chebyshev distance, in tiles, from tile t to
// the tile footprint of array cell k (0 when the footprint covers t).
func tileToRect(g *layout.TileGrid, t int, arr *sensorarray.Array, k int) int {
	tx, ty := t%g.NX, t/g.NX
	txLo, tyLo, txHi, tyHi := arr.CellTileRect(k)
	dx := max(txLo-tx, tx-txHi, 0)
	dy := max(tyLo-ty, ty-tyHi, 0)
	return max(dx, dy)
}

// Grid returns the sweep entry with the given side length, or nil.
func (r *LocalizationResult) Grid(n int) *LocalizationGrid {
	for i := range r.Grids {
		if r.Grids[i].NX == n {
			return &r.Grids[i]
		}
	}
	return nil
}

// String renders the sweep tables.
func (r *LocalizationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Golden-model-free detection and localization with the sensor array (extension)\n")
	fmt.Fprintf(&sb, "detected: alarmed on >= %.0f%% of frames; localized: detected and within %d tile of truth; threshold z > %.1f\n",
		100*locDetectFrac, locAdjacentMax, r.Threshold)
	fmt.Fprintf(&sb, "%-16s %8s %9s %10s\n", "array", "windows", "detected", "localized")
	for _, g := range r.Grids {
		name := fmt.Sprintf("%dx%d", g.NX, g.NY)
		if g.NX == 1 {
			name += " (whole-die)"
		}
		fmt.Fprintf(&sb, "%-16s %8d %6d/%d %7d/%d\n",
			name, g.Windows, g.Detected, len(g.Threats), g.Localized, len(g.Threats))
	}
	if g := r.Grid(4); g != nil {
		fmt.Fprintf(&sb, "\n4x4 per-threat detail\n")
		fmt.Fprintf(&sb, "%-6s %9s %10s %10s %9s %10s %8s\n", "threat", "detected", "pred cell", "tile dist", "dist um", "localized", "mean z")
		for _, t := range g.Threats {
			cx, cy := t.PredCell%g.NX, t.PredCell/g.NX
			fmt.Fprintf(&sb, "%-6s %8.0f%% %10s %10d %9.0f %10v %8.1f\n",
				t.Name, 100*t.Detected, fmt.Sprintf("(%d,%d)", cx, cy), t.TileDist, t.DistUM, t.Localized, t.MeanZ)
		}
	}
	if len(r.Budget) > 0 {
		fmt.Fprintf(&sb, "\nADC channel budget at 4x4 (16 coils)\n")
		fmt.Fprintf(&sb, "%-9s %14s %9s %10s\n", "channels", "windows/frame", "detected", "localized")
		for _, g := range r.Budget {
			fmt.Fprintf(&sb, "%-9d %14d %6d/%d %7d/%d\n",
				g.Channels, g.Windows, g.Detected, len(g.Threats), g.Localized, len(g.Threats))
		}
	}
	return sb.String()
}
