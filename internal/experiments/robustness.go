package experiments

import (
	"fmt"
	"strings"

	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

// RobustnessPoint is one noise level of the degradation sweep.
type RobustnessPoint struct {
	// NoiseScale multiplies the calibrated sensor noise floor.
	NoiseScale float64
	// FalseAlarmRate on golden traces (fingerprint refitted per level).
	FalseAlarmRate float64
	// Detection rates per Trojan at this noise level.
	Detection map[trojan.Kind]float64
}

// RobustnessResult sweeps the environment noise to find where each
// Trojan's detectability collapses — the failure-injection counterpart
// of the paper's fixed-noise evaluation, and a deployment guide for how
// much shielding the analysis module needs.
type RobustnessResult struct {
	BaseNoiseRMS float64
	Points       []RobustnessPoint
}

// Robustness runs the sweep at 0.5x, 1x, 2x and 4x the calibrated noise.
func Robustness(cfg Config) (*RobustnessResult, error) {
	c, err := infectedChip(cfg)
	if err != nil {
		return nil, err
	}
	base := chip.SimulationChannels().Sensor.(trace.Acquisition).NoiseRMS
	res := &RobustnessResult{BaseNoiseRMS: base}
	for _, scale := range []float64{0.5, 1, 2, 4} {
		ch := chip.Channels{
			Sensor: trace.SimulationChannel(base * scale),
			Probe:  trace.SimulationChannel(base * scale),
		}
		golden, err := captureSet(c, cfg, ch, cfg.GoldenTraces, cfg.CaptureCycles)
		if err != nil {
			return nil, err
		}
		fp, err := core.BuildFingerprint(golden.Sensor.Traces, cfg.Fingerprint)
		if err != nil {
			return nil, err
		}
		point := RobustnessPoint{NoiseScale: scale, Detection: make(map[trojan.Kind]float64)}

		held, err := captureSet(c, cfg, ch, cfg.TestTraces, cfg.CaptureCycles)
		if err != nil {
			return nil, err
		}
		falseAlarms := 0
		for _, t := range held.Sensor.Traces {
			if fp.Evaluate(t).Alarm {
				falseAlarms++
			}
		}
		point.FalseAlarmRate = float64(falseAlarms) / float64(cfg.TestTraces)

		for _, k := range trojan.Kinds() {
			set, err := withTrojan(c, cfg, ch, k, cfg.TestTraces, cfg.CaptureCycles)
			if err != nil {
				return nil, err
			}
			hits := 0
			for _, t := range set.Sensor.Traces {
				if fp.Evaluate(t).Alarm {
					hits++
				}
			}
			point.Detection[k] = float64(hits) / float64(cfg.TestTraces)
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// String renders the degradation table.
func (r *RobustnessResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Detection vs environment noise (failure injection, extension)\n")
	fmt.Fprintf(&sb, "%-8s %10s %8s %8s %8s %8s\n", "noise", "false+", "T1", "T2", "T3", "T4")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%6.1fx %9.0f%% %7.0f%% %7.0f%% %7.0f%% %7.0f%%\n",
			p.NoiseScale, 100*p.FalseAlarmRate,
			100*p.Detection[trojan.T1AMLeaker], 100*p.Detection[trojan.T2LeakageCurrent],
			100*p.Detection[trojan.T3CDMALeaker], 100*p.Detection[trojan.T4PowerHog])
	}
	fmt.Fprintf(&sb, "(the Eq. (1) threshold adapts to the refitted golden spread, trading\n detection for false-alarm control as noise grows)\n")
	return sb.String()
}
