package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		restore := SetMaxWorkers(workers)
		n := 100
		seen := make([]atomic.Int32, n)
		if err := For(n, func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
		restore()
	}
}

func TestRunWorkerState(t *testing.T) {
	restore := SetMaxWorkers(4)
	defer restore()
	var created atomic.Int32
	out := make([]int, 64)
	err := Run(len(out),
		func(w int) (int, error) {
			created.Add(1)
			return w, nil
		},
		func(worker, i int) error {
			out[i] = worker + 1 // mark which worker wrote the slot
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(created.Load()); got != 4 {
		t.Errorf("created %d workers, want 4", got)
	}
	for i, v := range out {
		if v == 0 {
			t.Errorf("index %d never ran", i)
		}
	}
}

func TestRunPropagatesFirstError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		restore := SetMaxWorkers(workers)
		boom := errors.New("boom")
		err := For(50, func(i int) error {
			if i == 7 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: got %v, want boom", workers, err)
		}
		restore()
	}
}

func TestRunNewWorkerError(t *testing.T) {
	restore := SetMaxWorkers(3)
	defer restore()
	wantErr := fmt.Errorf("no worker")
	err := Run(10,
		func(w int) (int, error) {
			if w == 1 {
				return 0, wantErr
			}
			return w, nil
		},
		func(worker, i int) error { return nil })
	if !errors.Is(err, wantErr) {
		t.Errorf("got %v, want worker-creation error", err)
	}
}

func TestWorkersClamps(t *testing.T) {
	restore := SetMaxWorkers(8)
	defer restore()
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d, want 3 (never more than tasks)", got)
	}
	if got := Workers(100); got != 8 {
		t.Errorf("Workers(100) = %d, want the cap 8", got)
	}
	restore()
	restore2 := SetMaxWorkers(0)
	defer restore2()
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d, want 1", got)
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := For(0, func(int) error { t.Fatal("must not run"); return nil }); err != nil {
		t.Fatal(err)
	}
}
