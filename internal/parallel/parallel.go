// Package parallel provides the deterministic worker-pool primitives
// behind the trace-capture engine: index-addressed fan-out of n
// independent tasks over up to GOMAXPROCS workers, with per-worker state
// (a chip clone, a scratch buffer) created up front so workers never
// share mutable structures. Determinism is the caller's contract: every
// task writes only to its own index and derives any randomness from the
// task index, never from a shared stream, so results are bit-identical
// for any worker count and any schedule.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps the pool size; 0 (the default) means GOMAXPROCS.
var maxWorkers atomic.Int32

// SetMaxWorkers overrides the worker cap (0 restores the GOMAXPROCS
// default) and returns a function that restores the previous cap. Tests
// use it to pin the pool to 1, 2 or 8 workers when asserting that
// parallel output is bit-identical to serial output.
func SetMaxWorkers(n int) (restore func()) {
	old := maxWorkers.Swap(int32(n))
	return func() { maxWorkers.Store(old) }
}

// Workers returns the effective pool size for n tasks: the configured
// cap (or GOMAXPROCS), never more than n and never less than 1.
func Workers(n int) int {
	w := int(maxWorkers.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn(worker, i) for every index i in [0, n) across a pool
// of Workers(n) goroutines. Worker state is built by newWorker — called
// serially, before any task runs, so it may safely read shared structures
// that the tasks later mutate (e.g. cloning a chip). Indices are handed
// out dynamically; callers must make each task independent and
// index-addressed so the schedule cannot influence results. The first
// task or worker error stops the pool and is returned; on error some
// tasks may not have run.
func Run[W any](n int, newWorker func(w int) (W, error), fn func(worker W, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Workers(n)
	if workers == 1 {
		w, err := newWorker(0)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := fn(w, i); err != nil {
				return err
			}
		}
		return nil
	}
	ws := make([]W, workers)
	for i := range ws {
		w, err := newWorker(i)
		if err != nil {
			return err
		}
		ws[i] = w
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		first  error
		wg     sync.WaitGroup
	)
	for _, w := range ws {
		wg.Add(1)
		go func(w W) {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(w, i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return first
}

// For is Run without per-worker state: fn(i) for every i in [0, n).
func For(n int, fn func(i int) error) error {
	return Run(n,
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, i int) error { return fn(i) })
}
