// Package attack implements correlation power analysis (CPA) over the
// on-chip sensor's EM traces. The paper motivates EM as "rich in
// information"; this package quantifies that: the same coil the trust
// framework monitors carries enough data-dependent leakage to recover
// the AES key byte by byte with a first-order Pearson attack — which is
// also why runtime integrity monitoring and side-channel hygiene are two
// sides of one sensor.
package attack

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"emtrust/internal/aes"
	"emtrust/internal/chip"
	"emtrust/internal/trace"
)

// CPAConfig tunes the attack.
type CPAConfig struct {
	// Traces is the number of random-plaintext captures.
	Traces int
	// Cycles is the capture window (it only needs to cover the load
	// edge and the first round).
	Cycles int
	// WindowStart/WindowEnd bound the samples correlated (the load and
	// first-round activity).
	WindowStart, WindowEnd int
	// ReceiverNoise is the attack front-end noise floor (volts RMS).
	ReceiverNoise float64
	// Model selects the leakage hypothesis: "load" (Hamming weight of
	// the loaded state byte), "sbox" (S-box output-difference weight),
	// "combined" (both) or "profiled" (the default: the exact S-box
	// cone charge from the netlist generator plus the register load).
	Model string
}

// DefaultCPAConfig returns settings that recover the key on clean
// captures in a few thousand traces.
func DefaultCPAConfig() CPAConfig {
	return CPAConfig{
		Traces:        3000,
		Cycles:        16,
		WindowStart:   16, // cycle 1: the load edge settle
		WindowEnd:     32, // just that cycle
		ReceiverNoise: 2e-9,
		Model:         "profiled",
	}
}

// ByteResult is the attack outcome for one key byte.
type ByteResult struct {
	Guess byte
	// Correlation is the best absolute Pearson correlation of the
	// winning hypothesis.
	Correlation float64
	// Margin is the winning correlation divided by the runner-up's: a
	// margin clearly above 1 means a confident recovery.
	Margin float64
}

// Result is the full 16-byte attack outcome.
type Result struct {
	Bytes   [16]ByteResult
	Correct int // bytes matching the true key (filled by Evaluate)
}

// hypothesis returns the leakage model for plaintext byte p under key
// hypothesis k at the load edge, where the state leaves all-zero reset:
// the Hamming weight of the loaded byte (register and fanout toggles)
// and/or the S-box cone's response (HW(sbox(p^k) ^ sbox(0))).
func hypothesis(model string, p, k byte) float64 {
	in := p ^ k
	switch model {
	case "load":
		return float64(bits.OnesCount8(in))
	case "sbox":
		return float64(bits.OnesCount8(aes.SBox(in) ^ aes.SBox(0)))
	case "combined":
		return float64(bits.OnesCount8(in)) + float64(bits.OnesCount8(aes.SBox(in)^aes.SBox(0)))
	default: // profiled
		profile := aes.SBoxToggleCharge()
		const registerCharge = 400e-15 // DFFE + load mux per state bit
		return profile[in] + float64(bits.OnesCount8(in))*registerCharge
	}
}

// Run collects traces from the chip (which must be Trojan-free and use a
// fixed key) and mounts the CPA. The chip's state is reset before every
// capture so the load-edge Hamming model holds.
func Run(c *chip.Chip, key []byte, cfg CPAConfig, rng *rand.Rand) (*Result, error) {
	if len(key) != 16 {
		return nil, fmt.Errorf("attack: need a 16-byte key")
	}
	if cfg.Traces < 16 || cfg.WindowEnd <= cfg.WindowStart {
		return nil, fmt.Errorf("attack: invalid config %+v", cfg)
	}
	rx := chip.Channels{
		Sensor: trace.SimulationChannel(cfg.ReceiverNoise),
		Probe:  trace.SimulationChannel(cfg.ReceiverNoise),
	}

	w := cfg.WindowEnd - cfg.WindowStart
	n := cfg.Traces
	pts := make([][]byte, n)
	samples := make([][]float64, n) // [trace][windowSample]
	for t := 0; t < n; t++ {
		pt := make([]byte, 16)
		rng.Read(pt)
		pts[t] = pt
		c.ResetState()
		cap, err := c.CapturePT(pt, key, cfg.Cycles)
		if err != nil {
			return nil, err
		}
		s, _ := c.Acquire(cap, rx)
		if cfg.WindowEnd > len(s.Samples) {
			return nil, fmt.Errorf("attack: window [%d,%d) exceeds trace of %d samples",
				cfg.WindowStart, cfg.WindowEnd, len(s.Samples))
		}
		row := make([]float64, w)
		copy(row, s.Samples[cfg.WindowStart:cfg.WindowEnd])
		samples[t] = row
	}

	// Per-sample means and standard deviations, shared by every
	// hypothesis.
	meanX := make([]float64, w)
	for _, row := range samples {
		for s, v := range row {
			meanX[s] += v
		}
	}
	for s := range meanX {
		meanX[s] /= float64(n)
	}
	stdX := make([]float64, w)
	for _, row := range samples {
		for s, v := range row {
			d := v - meanX[s]
			stdX[s] += d * d
		}
	}
	for s := range stdX {
		stdX[s] = math.Sqrt(stdX[s])
	}

	var res Result
	h := make([]float64, n)
	for b := 0; b < 16; b++ {
		best, second := -1.0, -1.0
		var bestK byte
		for k := 0; k < 256; k++ {
			var sumH, sumH2 float64
			for t := 0; t < n; t++ {
				h[t] = hypothesis(cfg.Model, pts[t][b], byte(k))
				sumH += h[t]
				sumH2 += h[t] * h[t]
			}
			meanH := sumH / float64(n)
			stdH := math.Sqrt(sumH2 - float64(n)*meanH*meanH)
			if stdH == 0 {
				continue
			}
			// max |rho| over the window; cov = sum(h*x) - n*mh*mx.
			maxRho := 0.0
			for s := 0; s < w; s++ {
				if stdX[s] == 0 {
					continue
				}
				cov := 0.0
				for t := 0; t < n; t++ {
					cov += h[t] * samples[t][s]
				}
				cov -= float64(n) * meanH * meanX[s]
				rho := math.Abs(cov / (stdH * stdX[s]))
				if rho > maxRho {
					maxRho = rho
				}
			}
			switch {
			case maxRho > best:
				second = best
				best = maxRho
				bestK = byte(k)
			case maxRho > second:
				second = maxRho
			}
		}
		margin := 0.0
		if second > 0 {
			margin = best / second
		}
		res.Bytes[b] = ByteResult{Guess: bestK, Correlation: best, Margin: margin}
	}
	return &res, nil
}

// Evaluate fills Correct by comparing against the true key and returns
// the count.
func (r *Result) Evaluate(key []byte) int {
	r.Correct = 0
	for b := 0; b < 16 && b < len(key); b++ {
		if r.Bytes[b].Guess == key[b] {
			r.Correct++
		}
	}
	return r.Correct
}

// String renders the recovered key and per-byte confidence.
func (r *Result) String() string {
	out := "CPA over on-chip sensor traces:\n  guess:"
	for _, b := range r.Bytes {
		out += fmt.Sprintf(" %02x", b.Guess)
	}
	out += "\n  |rho|:"
	for _, b := range r.Bytes {
		out += fmt.Sprintf(" %.2f", b.Correlation)
	}
	out += fmt.Sprintf("\n  %d/16 bytes correct\n", r.Correct)
	return out
}
