package attack

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"emtrust/internal/chip"
)

var testKey = []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}

var (
	victimOnce sync.Once
	victimChip *chip.Chip
	victimErr  error
)

func victim(t testing.TB) *chip.Chip {
	t.Helper()
	victimOnce.Do(func() {
		cfg := chip.DefaultConfig()
		cfg.WithTrojans = false
		cfg.WithA2 = false
		victimChip, victimErr = chip.New(cfg)
	})
	if victimErr != nil {
		t.Fatal(victimErr)
	}
	return victimChip
}

func TestHypothesisModels(t *testing.T) {
	// The models must differ and respond to the input.
	models := []string{"load", "sbox", "combined", "profiled"}
	for _, m := range models {
		if hypothesis(m, 0x00, 0x00) != 0 {
			t.Errorf("model %s: zero transition should leak nothing", m)
		}
		varies := false
		base := hypothesis(m, 0x01, 0x00)
		for p := 2; p < 256; p++ {
			if hypothesis(m, byte(p), 0x00) != base {
				varies = true
				break
			}
		}
		if !varies {
			t.Errorf("model %s is constant", m)
		}
	}
	// XOR structure: hypothesis(p, k) depends only on p^k.
	if hypothesis("profiled", 0xAB, 0xCD) != hypothesis("profiled", 0xAB^0xCD, 0) {
		t.Error("hypothesis must be a function of p^k")
	}
}

func TestRunValidation(t *testing.T) {
	c := victim(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := Run(c, make([]byte, 8), DefaultCPAConfig(), rng); err == nil {
		t.Fatal("short key must error")
	}
	bad := DefaultCPAConfig()
	bad.Traces = 2
	if _, err := Run(c, testKey, bad, rng); err == nil {
		t.Fatal("tiny trace budget must error")
	}
	bad = DefaultCPAConfig()
	bad.WindowEnd = bad.WindowStart
	if _, err := Run(c, testKey, bad, rng); err == nil {
		t.Fatal("empty window must error")
	}
	bad = DefaultCPAConfig()
	bad.Traces = 20
	bad.WindowEnd = 10000
	if _, err := Run(c, testKey, bad, rng); err == nil {
		t.Fatal("oversized window must error")
	}
}

// TestCPARecoversKey mounts the profiled attack with a reduced trace
// budget; most of the key must come out.
func TestCPARecoversKey(t *testing.T) {
	if testing.Short() {
		t.Skip("CPA needs thousands of simulated captures")
	}
	c := victim(t)
	cfg := DefaultCPAConfig()
	cfg.Traces = 2000
	res, err := Run(c, testKey, cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	correct := res.Evaluate(testKey)
	t.Logf("recovered %d/16 key bytes at %d traces", correct, cfg.Traces)
	if correct < 12 {
		t.Fatalf("only %d/16 key bytes recovered", correct)
	}
	for b, br := range res.Bytes {
		if br.Correlation <= 0 {
			t.Errorf("byte %d: non-positive correlation", b)
		}
	}
	if !strings.Contains(res.String(), "16 bytes") && !strings.Contains(res.String(), "/16") {
		t.Error("rendering broken")
	}
}

// The analytic (unprofiled) models must do strictly worse than the
// profiled template — that gap is the point of shipping the profile.
func TestProfiledBeatsAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("CPA needs thousands of simulated captures")
	}
	c := victim(t)
	run := func(model string) int {
		cfg := DefaultCPAConfig()
		cfg.Traces = 1200
		cfg.Model = model
		res, err := Run(c, testKey, cfg, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		return res.Evaluate(testKey)
	}
	analytic := run("combined")
	profiled := run("profiled")
	t.Logf("combined model: %d/16, profiled: %d/16 (1200 traces)", analytic, profiled)
	if profiled <= analytic {
		t.Fatalf("profiled (%d) must beat the analytic model (%d)", profiled, analytic)
	}
}
