package sensorarray

import (
	"fmt"
	"math"
	"sync"

	"emtrust/internal/chip"
	"emtrust/internal/dsp"
	"emtrust/internal/parallel"
	"emtrust/internal/trace"
)

// The mux sequencer: the real array shares a bounded number of ADC
// channels, so a full frame (one reading per coil) takes
// ceil(NumCoils/Channels) capture windows, each digitizing one coil
// group while the chip keeps running. The simulation honors that —
// coils in different windows see different (consecutive) chip activity
// windows, exactly the state skew a hardware sequencer would produce —
// and the channel budget becomes a measurable latency/coverage
// tradeoff in the localization experiment.

// Windows returns the number of capture windows one full array frame
// needs under the channel budget.
func (a *Array) Windows() int {
	k := a.NumCoils()
	ch := a.Cfg.Channels
	if ch <= 0 || ch >= k {
		return 1
	}
	return (k + ch - 1) / ch
}

// WindowCoils returns the cell indices digitized in window w of a frame.
func (a *Array) WindowCoils(w int) []int {
	k := a.NumCoils()
	ch := a.Cfg.Channels
	if ch <= 0 || ch >= k {
		ch = k
	}
	lo := w * ch
	hi := lo + ch
	if lo >= k {
		return nil
	}
	if hi > k {
		hi = k
	}
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// Frame is one full scan of the array: one measured trace per coil, plus
// which mux window each coil was digitized in.
type Frame struct {
	Traces []*trace.Trace
	// Window[k] is the capture window cell k was read in; coils in
	// different windows saw different chip activity windows.
	Window []int
	// Windows is the frame's total window count (the frame latency in
	// capture windows).
	Windows int
	Dt      float64
}

// CaptureFunc produces the chip activity for one mux window. It is
// called once per window, serially and in window order, so stateful
// workloads evolve across windows the way they would under a hardware
// sequencer.
type CaptureFunc func(w int) (*chip.Capture, error)

// ScanFrame captures one full array frame: for each mux window it runs
// one chip capture, then fans the window's coil group out over the
// worker pool — per-coil emf synthesis plus acquisition with a private
// (stream, cell)-derived generator. Each task writes only its own cell
// index, so the frame is bit-identical for any worker count. The emf
// synthesis completes before the next window's capture because
// Capture.Tiles alias the recorder's buffers.
func (a *Array) ScanFrame(c *chip.Chip, ch trace.Channel, capture CaptureFunc) (*Frame, error) {
	k := a.NumCoils()
	stream := c.NextStream()
	f := &Frame{
		Traces:  make([]*trace.Trace, k),
		Window:  make([]int, k),
		Windows: a.Windows(),
	}
	for w := 0; w < f.Windows; w++ {
		cap, err := capture(w)
		if err != nil {
			return nil, fmt.Errorf("sensorarray: window %d: %w", w, err)
		}
		coils := a.WindowCoils(w)
		emfs, err := a.windowEMFs(cap, coils)
		if err != nil {
			return nil, err
		}
		err = parallel.For(len(coils), func(i int) error {
			cell := coils[i]
			f.Traces[cell] = ch.Acquire(emfs[i], cap.Dt, c.SplitRand(stream, uint64(cell)))
			f.Window[cell] = w
			return nil
		})
		if err != nil {
			return nil, err
		}
		f.Dt = cap.Dt
	}
	return f, nil
}

// windowEMFs synthesizes (or replays from the per-array cache) the emf
// waveform of each listed coil for one capture. The capture is keyed by
// its process-unique Seq — equal Seq means the same waveforms, so
// re-presenting a replayed capture (the chip's fixed-point memo) skips
// the synthesis. A zero Seq (hand-built captures) bypasses the cache.
// Cache access is mutex-guarded; the parallel fan-out writes only a
// window-local slice, so concurrent frames on one array stay race-free.
func (a *Array) windowEMFs(cap *chip.Capture, coils []int) ([][]float64, error) {
	emfs := make([][]float64, len(coils))
	seq := cap.Seq()
	var entry [][]float64
	missing := make([]int, 0, len(coils))
	if seq != 0 {
		a.emfMu.Lock()
		if a.emfCache == nil {
			a.emfCache = make(map[uint64][][]float64)
		}
		entry = a.emfCache[seq]
		if entry == nil {
			if len(a.emfCache) >= maxEMFCaptures {
				a.emfCache = make(map[uint64][][]float64)
			}
			entry = make([][]float64, a.NumCoils())
			a.emfCache[seq] = entry
		}
		for i, cell := range coils {
			if entry[cell] != nil {
				emfs[i] = entry[cell]
			} else {
				missing = append(missing, i)
			}
		}
		a.emfMu.Unlock()
	} else {
		for i := range coils {
			missing = append(missing, i)
		}
	}
	err := parallel.For(len(missing), func(j int) error {
		i := missing[j]
		emfs[i] = a.Couplings[coils[i]].EMF(cap.Tiles, cap.Dt)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if seq != 0 && len(missing) > 0 {
		a.emfMu.Lock()
		for _, i := range missing {
			if entry[coils[i]] == nil {
				entry[coils[i]] = emfs[i]
			}
		}
		a.emfMu.Unlock()
	}
	return emfs, nil
}

// ScanEncryption captures a frame of the standard fixed-stimulus
// encryption workload: every mux window runs one encryption of pt under
// key.
func (a *Array) ScanEncryption(c *chip.Chip, ch trace.Channel, pt, key []byte, cycles int) (*Frame, error) {
	return a.ScanFrame(c, ch, func(int) (*chip.Capture, error) {
		return c.CapturePT(pt, key, cycles)
	})
}

// ScanIdle captures a frame with no encryption running.
func (a *Array) ScanIdle(c *chip.Chip, ch trace.Channel, cycles int) (*Frame, error) {
	return a.ScanFrame(c, ch, func(int) (*chip.Capture, error) {
		return c.CaptureIdle(cycles)
	})
}

// Feature reduces one coil trace to the scalar the self-referencing
// detector compares across the array.
type Feature func(t *trace.Trace) float64

// RMSFeature is the default feature: broadband RMS emission, the array
// counterpart of the paper's amplitude statistics.
func RMSFeature(t *trace.Trace) float64 { return dsp.RMS(t.Samples) }

// BandPowerFeature returns a feature measuring the spectral energy in
// [fLo, fHi] hertz of each coil trace — the narrowband counterpart of
// RMSFeature, tuned at, say, the clock harmonic an always-on Trojan
// pollutes. It runs on the planned spectral engine: the per-call
// amplitude buffer comes from a pool shared by the returned closure, so
// scanning a full array frame allocates nothing at steady state. The
// closure is safe for concurrent use.
func BandPowerFeature(fLo, fHi float64, w dsp.Window) Feature {
	var pool sync.Pool
	return func(t *trace.Trace) float64 {
		if len(t.Samples) == 0 {
			return 0
		}
		bp, _ := pool.Get().(*[]float64)
		if bp == nil {
			bp = new([]float64)
		}
		p := dsp.PlanForLength(len(t.Samples))
		amp := p.SpectrumInto(*bp, t.Samples, w)
		df := 1 / (float64(p.Size()) * t.Dt)
		lo := int(math.Round(fLo / df))
		hi := int(math.Round(fHi / df))
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo < 0 {
			lo = 0
		}
		if hi >= len(amp) {
			hi = len(amp) - 1
		}
		e := 0.0
		for k := lo; k <= hi; k++ {
			e += amp[k] * amp[k]
		}
		*bp = amp
		pool.Put(bp)
		return e
	}
}

// Features reduces the frame to one scalar per coil.
func (f *Frame) Features(fn Feature) []float64 {
	out := make([]float64, len(f.Traces))
	for k, t := range f.Traces {
		out[k] = fn(t)
	}
	return out
}
