package sensorarray

import (
	"fmt"
	"strings"

	"emtrust/internal/core"
)

// Monitor couples an Array to the golden-model-free self-referencing
// detector: frames in, per-cell anomaly scores and a localization answer
// out. The geometry (which cells are neighbors, where a cell sits on the
// die) stays here; the statistics stay in internal/core.
type Monitor struct {
	Array   *Array
	Det     *core.SelfReference
	Feature Feature
}

// Calibrate fits the detector from frames captured while the chip runs
// its trusted workload — the array's self-calibration, no golden chip
// involved. A nil feature selects RMSFeature.
func Calibrate(a *Array, frames []*Frame, feat Feature, cfg core.SelfReferenceConfig) (*Monitor, error) {
	if feat == nil {
		feat = RMSFeature
	}
	feats := make([][]float64, len(frames))
	for i, f := range frames {
		if len(f.Traces) != a.NumCoils() {
			return nil, fmt.Errorf("sensorarray: calibration frame %d has %d coils, array has %d", i, len(f.Traces), a.NumCoils())
		}
		feats[i] = f.Features(feat)
	}
	det, err := core.CalibrateSelfReference(feats, a.Adjacency(), cfg)
	if err != nil {
		return nil, err
	}
	return &Monitor{Array: a, Det: det, Feature: feat}, nil
}

// Evaluate scores one frame.
func (m *Monitor) Evaluate(f *Frame) (core.ArrayVerdict, error) {
	return m.Det.Evaluate(f.Features(m.Feature))
}

// HeatmapString renders per-cell scores as a coarse ASCII die map (row
// NY-1 on top, matching die orientation), with the hottest cell marked.
// Useful for trustmon's terminal output; the HTML report draws the same
// data as an SVG heatmap.
func (m *Monitor) HeatmapString(z []float64) string {
	a := m.Array
	hot := 0
	for k := range z {
		if z[k] > z[hot] {
			hot = k
		}
	}
	var sb strings.Builder
	for cy := a.Cfg.NY - 1; cy >= 0; cy-- {
		for cx := 0; cx < a.Cfg.NX; cx++ {
			k := cy*a.Cfg.NX + cx
			mark := " "
			if k == hot && z[k] > m.Det.Threshold() {
				mark = "*"
			}
			fmt.Fprintf(&sb, "%6.1f%s", z[k], mark)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
