// Package sensorarray models the programmable on-chip EM sensor array of
// Wang et al.: an N×M grid of small nested-rectangle spiral coils tiled
// over the die on the top metal layer, read out through a bounded number
// of shared ADC channels by a mux sequencer. Each cell coil is the
// local-resolution counterpart of the paper's single whole-die spiral
// (which the 1×1 array degenerates to), so a Trojan switching under one
// cell dominates that cell's reading instead of vanishing into the
// whole-die aggregate.
//
// The package owns the geometry (coils, couplings, cell adjacency) and
// the acquisition sequencing; the golden-model-free analysis on top of
// the per-coil frames lives in internal/core (SelfReference) and is
// glued together by Monitor in this package.
package sensorarray

import (
	"fmt"
	"sync"

	"emtrust/internal/chip"
	"emtrust/internal/emfield"
	"emtrust/internal/layout"
	"emtrust/internal/parallel"
	"emtrust/internal/trace"
)

// Config describes one array build.
type Config struct {
	// NX, NY set the grid: NX columns by NY rows of cell coils. 1×1 is
	// the paper's single whole-die spiral.
	NX, NY int
	// Turns is the nested-rectangle turn count of each cell coil.
	Turns int
	// Z is the coil height above the switching devices (the top metal
	// layer, like the whole-die spiral).
	Z float64
	// Channels bounds how many coils the shared readout can digitize in
	// one capture window — the ADC-channel budget of the real hardware.
	// <= 0 or >= NX*NY reads the whole array in a single window.
	Channels int
	// TileLoopArea and Quad mirror chip.Config's coupling parameters so
	// array couplings share the same field model (and the process-wide
	// coupling cache) as the chip's own sensors.
	TileLoopArea float64
	Quad         int
}

// ConfigFor derives an n×n array matching a chip build's coil height and
// coupling parameters. The 1×1 array keeps the full whole-die turn
// count; larger grids halve it, since each cell coil spans a fraction of
// the die and a dense small spiral would not route on the shared metal
// layer.
func ConfigFor(cc chip.Config, n int) Config {
	turns := cc.SpiralTurns
	if n > 1 {
		turns = cc.SpiralTurns / 2
		if turns < 2 {
			turns = 2
		}
	}
	return Config{
		NX: n, NY: n,
		Turns:        turns,
		Z:            cc.SpiralZ,
		TileLoopArea: cc.TileLoopArea,
		Quad:         cc.Quad,
	}
}

// Array is one built sensor array over a specific floorplan: per-cell
// coils with their tile couplings precomputed (once per geometry, via
// the process-wide coupling cache).
type Array struct {
	Cfg  Config
	Die  layout.Point
	grid *layout.TileGrid
	// Coils and Couplings are indexed by cell k = cy*NX + cx, matching
	// the tile-grid convention (row 0 at the die bottom).
	Coils     []*emfield.Coil
	Couplings []*emfield.Coupling

	// emfMu guards emfCache: per-capture-identity coil emf waveforms,
	// keyed by Capture.Seq. Replayed captures (the chip memoizes
	// fixed-point windows, so a dormant chip hands every mux window the
	// same capture) skip the per-coil emf synthesis entirely. Synthesis
	// is pure, so caching cannot change results.
	emfMu    sync.Mutex
	emfCache map[uint64][][]float64
}

// maxEMFCaptures bounds the emf cache; eviction is a wholesale drop.
const maxEMFCaptures = 64

// New builds the array coils over the floorplan and precomputes their
// couplings. Coupling computation fans out over tiles through
// internal/parallel (inside NewCoupling) and is memoized process-wide,
// so rebuilding the same array geometry is free.
func New(fp *layout.Floorplan, cfg Config) (*Array, error) {
	if cfg.NX <= 0 || cfg.NY <= 0 {
		return nil, fmt.Errorf("sensorarray: invalid grid %dx%d", cfg.NX, cfg.NY)
	}
	if cfg.Turns <= 0 {
		cfg.Turns = 4
	}
	a := &Array{Cfg: cfg, Die: fp.Die, grid: fp.Grid}
	cw := fp.Die.X / float64(cfg.NX)
	ch := fp.Die.Y / float64(cfg.NY)
	for cy := 0; cy < cfg.NY; cy++ {
		for cx := 0; cx < cfg.NX; cx++ {
			coil := &emfield.Coil{Name: fmt.Sprintf("cell (%d,%d)", cx, cy)}
			for t := 1; t <= cfg.Turns; t++ {
				frac := float64(t) / float64(cfg.Turns)
				coil.Loops = append(coil.Loops, emfield.RectLoop{
					CX: (float64(cx) + 0.5) * cw,
					CY: (float64(cy) + 0.5) * ch,
					W:  cw * frac, H: ch * frac,
					Z: cfg.Z,
				})
			}
			cp, err := emfield.CachedCoupling(coil, fp.Grid, cfg.TileLoopArea, cfg.Quad)
			if err != nil {
				return nil, fmt.Errorf("sensorarray: cell (%d,%d): %w", cx, cy, err)
			}
			a.Coils = append(a.Coils, coil)
			a.Couplings = append(a.Couplings, cp)
		}
	}
	return a, nil
}

// NumCoils returns NX*NY.
func (a *Array) NumCoils() int { return a.Cfg.NX * a.Cfg.NY }

// CellXY decodes cell index k into grid coordinates.
func (a *Array) CellXY(k int) (cx, cy int) { return k % a.Cfg.NX, k / a.Cfg.NX }

// CellCenter returns the die position under the center of cell k.
func (a *Array) CellCenter(k int) layout.Point {
	cx, cy := a.CellXY(k)
	return layout.Point{
		X: (float64(cx) + 0.5) * a.Die.X / float64(a.Cfg.NX),
		Y: (float64(cy) + 0.5) * a.Die.Y / float64(a.Cfg.NY),
	}
}

// CellOf returns the cell index whose coil covers point p (clamped to
// the die, like layout.TileGrid.TileOf).
func (a *Array) CellOf(p layout.Point) int {
	cx := clamp(int(p.X/a.Die.X*float64(a.Cfg.NX)), a.Cfg.NX)
	cy := clamp(int(p.Y/a.Die.Y*float64(a.Cfg.NY)), a.Cfg.NY)
	return cy*a.Cfg.NX + cx
}

func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// CellTile returns the floorplan tile under the center of cell k — the
// localization answer in tile coordinates.
func (a *Array) CellTile(k int) int { return a.grid.TileOf(a.CellCenter(k)) }

// CellTileRect returns the inclusive floorplan-tile range covered by
// cell k's coil — the footprint a localization answer actually narrows
// the die down to (one cell spans several tiles unless the array is as
// fine as the tile grid).
func (a *Array) CellTileRect(k int) (txLo, tyLo, txHi, tyHi int) {
	cx, cy := a.CellXY(k)
	txLo = cx * a.grid.NX / a.Cfg.NX
	txHi = ((cx+1)*a.grid.NX - 1) / a.Cfg.NX
	tyLo = cy * a.grid.NY / a.Cfg.NY
	tyHi = ((cy+1)*a.grid.NY - 1) / a.Cfg.NY
	return txLo, tyLo, txHi, tyHi
}

// Neighbors returns the 8-connected spatial neighbors of cell k, the
// cross-sensor reference set of the golden-model-free detector. A 1×1
// array has none (history-only referencing).
func (a *Array) Neighbors(k int) []int {
	cx, cy := a.CellXY(k)
	var out []int
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := cx+dx, cy+dy
			if nx < 0 || nx >= a.Cfg.NX || ny < 0 || ny >= a.Cfg.NY {
				continue
			}
			out = append(out, ny*a.Cfg.NX+nx)
		}
	}
	return out
}

// Adjacency returns Neighbors for every cell, in the form
// core.CalibrateSelfReference expects.
func (a *Array) Adjacency() [][]int {
	out := make([][]int, a.NumCoils())
	for k := range out {
		out[k] = a.Neighbors(k)
	}
	return out
}

// CellDist returns the Chebyshev (chessboard) distance between two
// cells: 0 same cell, 1 adjacent (including diagonals).
func (a *Array) CellDist(k1, k2 int) int {
	x1, y1 := a.CellXY(k1)
	x2, y2 := a.CellXY(k2)
	dx, dy := x1-x2, y1-y2
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dy > dx {
		return dy
	}
	return dx
}

// EMFs synthesizes every coil's induced voltage from one capture's
// per-tile current waveforms, fanned out over the worker pool. Each task
// writes only its own cell index, so the result is schedule-independent.
func (a *Array) EMFs(currents [][]float64, dt float64) ([][]float64, error) {
	out := make([][]float64, a.NumCoils())
	err := parallel.For(a.NumCoils(), func(k int) error {
		out[k] = a.Couplings[k].EMF(currents, dt)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DefaultChannel returns the acquisition front end assumed for the
// array: simulation-mode white noise, lower than the whole-die sensor's
// floor because each cell coil feeds a dedicated narrowband LNA next to
// the mux instead of the long shared route to the pad.
func DefaultChannel() trace.Channel {
	return trace.SimulationChannel(2e-9)
}
