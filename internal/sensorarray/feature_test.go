package sensorarray

import (
	"math"
	"sync"
	"testing"

	"emtrust/internal/dsp"
	"emtrust/internal/trace"
)

// toneTrace synthesizes a coil trace carrying one sinusoid.
func toneTrace(n int, dt, freq, amp float64) *trace.Trace {
	s := make([]float64, n)
	for i := range s {
		s[i] = amp * math.Sin(2*math.Pi*freq*dt*float64(i))
	}
	return &trace.Trace{Dt: dt, Samples: s}
}

func TestBandPowerFeatureConcentratesAtTone(t *testing.T) {
	const n, dt = 1024, 1e-9
	const freq = 50e6
	tr := toneTrace(n, dt, freq, 1.0)
	inBand := BandPowerFeature(freq-5e6, freq+5e6, dsp.Hann)
	offBand := BandPowerFeature(200e6, 250e6, dsp.Hann)
	in := inBand(tr)
	off := offBand(tr)
	if in <= 0 {
		t.Fatalf("in-band energy = %g", in)
	}
	if off >= in/1e6 {
		t.Fatalf("off-band energy %g not negligible next to in-band %g", off, in)
	}
	// The tone's one-sided amplitude is ~1; Hann smearing spreads it
	// over the main lobe, so the summed amplitude-squared lands near
	// 1.5 (the window's incoherent/coherent gain ratio).
	if in < 0.5 || in > 2.5 {
		t.Fatalf("in-band energy = %g, want ~1.5", in)
	}
	// Swapped band edges are normalized, not an empty band.
	swapped := BandPowerFeature(freq+5e6, freq-5e6, dsp.Hann)
	if got := swapped(tr); got != in {
		t.Fatalf("swapped edges give %g, want %g", got, in)
	}
	// Degenerate inputs.
	if got := inBand(&trace.Trace{Dt: dt}); got != 0 {
		t.Fatalf("empty trace energy = %g", got)
	}
	// Bands entirely above Nyquist clamp to the top bin, not a panic.
	above := BandPowerFeature(10e9, 20e9, dsp.Hann)
	_ = above(tr)
}

// TestBandPowerFeatureConcurrent exercises the closure's shared pool
// from many goroutines: results must match the serial value exactly.
func TestBandPowerFeatureConcurrent(t *testing.T) {
	const n, dt = 512, 1e-9
	f := BandPowerFeature(40e6, 60e6, dsp.Hann)
	traces := make([]*trace.Trace, 8)
	want := make([]float64, len(traces))
	for i := range traces {
		traces[i] = toneTrace(n, dt, 50e6, float64(i+1)*0.25)
		want[i] = f(traces[i])
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 100; iter++ {
				i := (w + iter) % len(traces)
				if got := f(traces[i]); got != want[i] {
					errs <- "band power diverged under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
