package sensorarray

import (
	"testing"

	"emtrust/internal/chip"
	"emtrust/internal/emfield"
	"emtrust/internal/layout"
	"emtrust/internal/parallel"
)

// testFloorplan builds a synthetic placement view: the array only needs
// the die outline and the tile grid, not real cell positions.
func testFloorplan() *layout.Floorplan {
	die := layout.Point{X: 1e-3, Y: 1e-3}
	return &layout.Floorplan{
		Die:  die,
		Grid: &layout.TileGrid{NX: 16, NY: 16, Die: die},
	}
}

func TestArrayGeometry(t *testing.T) {
	fp := testFloorplan()
	a, err := New(fp, Config{NX: 4, NY: 4, Turns: 3, Z: 5e-6, TileLoopArea: 25e-12, Quad: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCoils() != 16 || len(a.Coils) != 16 || len(a.Couplings) != 16 {
		t.Fatalf("want 16 coils, got %d/%d/%d", a.NumCoils(), len(a.Coils), len(a.Couplings))
	}
	// Cell index round-trips through its own center, and the center lands
	// in the expected grid cell.
	for k := 0; k < a.NumCoils(); k++ {
		if got := a.CellOf(a.CellCenter(k)); got != k {
			t.Errorf("CellOf(CellCenter(%d)) = %d", k, got)
		}
	}
	if c := a.CellCenter(0); c.X != 0.125e-3 || c.Y != 0.125e-3 {
		t.Errorf("cell 0 center = %+v", c)
	}
	// Clamping: points off the die map to border cells.
	if got := a.CellOf(layout.Point{X: -1, Y: -1}); got != 0 {
		t.Errorf("CellOf(off-die SW) = %d", got)
	}
	if got := a.CellOf(layout.Point{X: 2e-3, Y: 2e-3}); got != 15 {
		t.Errorf("CellOf(off-die NE) = %d", got)
	}
	// Neighbor counts: corner 3, edge 5, interior 8; all 8-connected.
	if n := a.Neighbors(0); len(n) != 3 {
		t.Errorf("corner neighbors = %v", n)
	}
	if n := a.Neighbors(1); len(n) != 5 {
		t.Errorf("edge neighbors = %v", n)
	}
	if n := a.Neighbors(5); len(n) != 8 {
		t.Errorf("interior neighbors = %v", n)
	}
	for _, n := range a.Neighbors(5) {
		if a.CellDist(5, n) != 1 {
			t.Errorf("neighbor %d of 5 at distance %d", n, a.CellDist(5, n))
		}
	}
	if d := a.CellDist(0, 15); d != 3 {
		t.Errorf("CellDist(corner, corner) = %d", d)
	}
}

// TestOneByOneMatchesWholeDieSpiral pins that the 1×1 array degenerates
// to the paper's whole-die spiral: identical turn geometry, hence (via
// the coupling cache) identical couplings.
func TestOneByOneMatchesWholeDieSpiral(t *testing.T) {
	fp := testFloorplan()
	cc := chip.DefaultConfig()
	a, err := New(fp, ConfigFor(cc, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := emfield.OnChipSpiral(fp.Die, cc.SpiralTurns, cc.SpiralZ)
	got := a.Coils[0]
	if len(got.Loops) != len(want.Loops) {
		t.Fatalf("1x1 coil has %d turns, whole-die spiral %d", len(got.Loops), len(want.Loops))
	}
	for i := range got.Loops {
		if got.Loops[i].(emfield.RectLoop) != want.Loops[i].(emfield.RectLoop) {
			t.Errorf("turn %d: got %+v want %+v", i, got.Loops[i], want.Loops[i])
		}
	}
	if a.Neighbors(0) != nil {
		t.Errorf("1x1 array has neighbors: %v", a.Neighbors(0))
	}
}

func TestWindowsPartitionCoils(t *testing.T) {
	fp := testFloorplan()
	for _, tc := range []struct {
		channels, windows int
	}{
		{0, 1}, {16, 1}, {99, 1}, {4, 4}, {5, 4}, {1, 16},
	} {
		a, err := New(fp, Config{NX: 4, NY: 4, Turns: 2, Z: 5e-6, Channels: tc.channels, TileLoopArea: 25e-12, Quad: 8})
		if err != nil {
			t.Fatal(err)
		}
		if got := a.Windows(); got != tc.windows {
			t.Errorf("channels=%d: windows = %d, want %d", tc.channels, got, tc.windows)
		}
		// Every coil is digitized exactly once per frame.
		seen := make(map[int]int)
		for w := 0; w < a.Windows(); w++ {
			coils := a.WindowCoils(w)
			if len(coils) == 0 {
				t.Errorf("channels=%d: window %d empty", tc.channels, w)
			}
			if tc.channels > 0 && tc.channels < 16 && len(coils) > tc.channels {
				t.Errorf("channels=%d: window %d digitizes %d coils", tc.channels, w, len(coils))
			}
			for _, k := range coils {
				seen[k]++
			}
		}
		for k := 0; k < 16; k++ {
			if seen[k] != 1 {
				t.Errorf("channels=%d: coil %d digitized %d times", tc.channels, k, seen[k])
			}
		}
	}
}

// TestScanFrameWorkerIndependence pins the acceptance requirement that
// array capture runs through internal/parallel yet stays byte-identical
// for any worker count: per-cell randomness derives from (seed, stream,
// cell), never from schedule.
func TestScanFrameWorkerIndependence(t *testing.T) {
	cfg := chip.DefaultConfig()
	cfg.WithTrojans = false
	cfg.WithA2 = false
	key := make([]byte, 16)
	pt := make([]byte, 16)

	capture := func(workers int) *Frame {
		restore := parallel.SetMaxWorkers(workers)
		defer restore()
		c, err := chip.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		acfg := ConfigFor(cfg, 2)
		acfg.Channels = 2 // two mux windows per frame
		a, err := New(c.Floorplan(), acfg)
		if err != nil {
			t.Fatal(err)
		}
		f, err := a.ScanEncryption(c, DefaultChannel(), pt, key, 24)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	serial := capture(1)
	wide := capture(4)
	if serial.Windows != 2 {
		t.Fatalf("frame has %d windows, want 2", serial.Windows)
	}
	for k := range serial.Traces {
		if serial.Window[k] != wide.Window[k] {
			t.Fatalf("cell %d window differs: %d vs %d", k, serial.Window[k], wide.Window[k])
		}
		ss, ws := serial.Traces[k].Samples, wide.Traces[k].Samples
		if len(ss) != len(ws) {
			t.Fatalf("cell %d trace length differs: %d vs %d", k, len(ss), len(ws))
		}
		for i := range ss {
			if ss[i] != ws[i] {
				t.Fatalf("cell %d sample %d differs between worker counts: %g vs %g", k, i, ss[i], ws[i])
			}
		}
	}
	// Coils in the same window share a chip activity window; coils in
	// different windows generally do not (state skew is modeled).
	if serial.Window[0] != 0 || serial.Window[3] != 1 {
		t.Errorf("unexpected window assignment: %v", serial.Window)
	}
}
