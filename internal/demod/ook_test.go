package demod

import (
	"math"
	"math/rand"
	"testing"

	"emtrust/internal/aes"
	"emtrust/internal/chip"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

// synthOOK builds an on-off-keyed pulse-train trace: bits of symbolLen
// samples, pulses every pulsePeriod samples while "on", plus noise.
func synthOOK(bits []uint8, symbolLen, pulsePeriod, phase int, noise float64, rng *rand.Rand) []float64 {
	x := make([]float64, len(bits)*symbolLen)
	for i := range x {
		sym := ((i - phase) / symbolLen)
		if i-phase < 0 {
			sym = 0
		}
		if sym >= len(bits) {
			sym = len(bits) - 1
		}
		if bits[sym] == 1 && (i-phase)%pulsePeriod == 0 && i >= phase {
			x[i] = 1.0
		}
		x[i] += rng.NormFloat64() * noise
	}
	return x
}

func TestDemodulateSyntheticOOK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bits := []uint8{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0}
	const symbolLen = 256
	const pulsePeriod = 128
	const dt = 5e-9
	x := synthOOK(bits, symbolLen, pulsePeriod, 64, 0.02, rng)
	cfg := OOKConfig{
		PulseHz:       1 / (float64(pulsePeriod) * dt),
		SymbolSamples: symbolLen,
		WindowSamples: pulsePeriod,
		HopSamples:    16,
	}
	res, err := DemodulateOOK(x, dt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rot, errs, ok := MatchRotation(res.Bits, bits, 1)
	if !ok {
		t.Fatalf("no rotation matches: got %v want %v (rot %d errs %d)", res.Bits, bits, rot, errs)
	}
	if res.Contrast <= 1 {
		t.Fatalf("contrast %g too low", res.Contrast)
	}
}

func TestDemodulateValidation(t *testing.T) {
	if _, err := DemodulateOOK(nil, 1e-9, OOKConfig{}); err == nil {
		t.Fatal("zero config must error")
	}
	cfg := OOKConfig{PulseHz: 1e6, SymbolSamples: 8, WindowSamples: 8, HopSamples: 8}
	if _, err := DemodulateOOK(make([]float64, 64), 1e-9, cfg); err == nil {
		t.Fatal("symbol shorter than two hops must error")
	}
	cfg = OOKConfig{PulseHz: 1e6, SymbolSamples: 64, WindowSamples: 16, HopSamples: 8}
	if _, err := DemodulateOOK(make([]float64, 32), 1e-9, cfg); err == nil {
		t.Fatal("trace shorter than two symbols must error")
	}
}

func TestMatchRotation(t *testing.T) {
	want := []uint8{1, 0, 0, 1, 1}
	got := []uint8{0, 1, 1, 1, 0}
	rot, errs, ok := MatchRotation(got, want, 0)
	if !ok || errs != 0 || rot != 2 {
		t.Fatalf("rot=%d errs=%d ok=%v", rot, errs, ok)
	}
	if _, _, ok := MatchRotation(nil, want, 0); ok {
		t.Fatal("empty input must not match")
	}
	// With one flipped bit, matching needs a tolerance.
	got[0] ^= 1
	if _, _, ok := MatchRotation(got, want, 0); ok {
		t.Fatal("should not match exactly")
	}
	if _, errs, ok := MatchRotation(got, want, 1); !ok || errs != 1 {
		t.Fatal("tolerance of 1 should match")
	}
}

func TestChannelConfig(t *testing.T) {
	cfg := ChannelConfig(12e6, 1/(12e6*16))
	if cfg.PulseHz != 6e6 {
		t.Fatalf("receiver frequency %g, want clock/2", cfg.PulseHz)
	}
	if cfg.SymbolSamples != 256 || cfg.WindowSamples != 128 || cfg.HopSamples != 16 {
		t.Fatalf("config %+v", cfg)
	}
}

// TestKeyRecoveryFromSensor is the end-to-end proof: activate Trojan 1
// on the virtual chip, let one encryption load its shift register, then
// demodulate the on-chip sensor's idle-time trace and recover the AES
// key bits from the air.
func TestKeyRecoveryFromSensor(t *testing.T) {
	cfg := chip.DefaultConfig()
	cfg.WithA2 = false
	c, err := chip.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeactivateAll(); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTrojan(trojan.T1AMLeaker, true); err != nil {
		t.Fatal(err)
	}
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	// The encryption loads the key into the Trojan's shift register.
	if _, err := c.CapturePT(make([]byte, 16), key, 20); err != nil {
		t.Fatal(err)
	}
	// Idle capture long enough for > 1.5 key rotations on the air:
	// 128 bits x 16 cycles = 2048 cycles per rotation.
	cap, err := c.CaptureIdle(3400)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker's receiver: same coil, quieter front-end (a radio
	// receiver tuned to one narrow band tolerates far less noise than
	// the broadband trust monitor).
	receiver := chip.Channels{
		Sensor: trace.SimulationChannel(2e-9),
		Probe:  trace.SimulationChannel(2e-9),
	}
	s, _ := c.Acquire(cap, receiver)

	dcfg := ChannelConfig(cfg.Power.ClockHz, s.Dt)
	res, err := DemodulateOOK(s.Samples, s.Dt, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bits) < 150 {
		t.Fatalf("recovered only %d bits", len(res.Bits))
	}
	keyBits := aes.BytesToBits(key)
	// Allow a few errors at the symbol edges.
	budget := len(res.Bits) / 20
	rot, errs, ok := MatchRotation(res.Bits, keyBits, budget)
	if !ok {
		t.Fatalf("key not recovered: best rotation %d has %d/%d bit errors", rot, errs, len(res.Bits))
	}
	errRate := float64(errs) / float64(len(res.Bits))
	t.Logf("recovered %d bits, rotation %d, bit error rate %.1f%%, contrast %.1f",
		len(res.Bits), rot, 100*errRate, res.Contrast)
	if math.IsNaN(res.Threshold) {
		t.Fatal("threshold NaN")
	}
}
