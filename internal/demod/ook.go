// Package demod recovers the data carried by Trojan 1's covert AM
// channel from an EM trace: on-off keying of a 750 kHz carrier, one key
// bit per carrier period (Section IV-A, Trojan 1: "the leaked
// information can be demodulated with a wireless radio receiver"). It
// doubles as the proof that the Trojan's payload is real — the same
// on-chip sensor that detects the Trojan can also read what it leaks.
package demod

import (
	"fmt"
	"math"

	"emtrust/internal/dsp"
)

// OOKConfig describes the covert channel's modulation.
type OOKConfig struct {
	// PulseHz is the receiver's lock-in frequency. The antenna's
	// supply pulses repeat at twice the carrier (one per toggle); any
	// harmonic of that pulse rate carries the keying, and higher
	// harmonics hold more induced-emf energy. ChannelConfig picks one.
	PulseHz float64
	// SymbolSamples is the number of trace samples per leaked bit.
	SymbolSamples int
	// WindowSamples is the envelope-detector window; it should span at
	// least one pulse period and at most one symbol.
	WindowSamples int
	// HopSamples is the envelope-detector stride; smaller hops give
	// finer symbol synchronization.
	HopSamples int
}

// ChannelConfig returns the demodulator settings for Trojan 1's channel
// given the chip clock and trace sample rate: the carrier is clock/16,
// one bit lasts 16 clock cycles. The antenna's supply pulses repeat at
// clock/8, but an induced emf pulse is bipolar (zero net area), so its
// low harmonics are weak; the receiver locks onto the 4th harmonic at
// clock/2, which carries the same on-off keying and stays clear of the
// clock fundamental.
func ChannelConfig(clockHz, dt float64) OOKConfig {
	samplesPerCycle := int(1/(clockHz*dt) + 0.5)
	return OOKConfig{
		PulseHz:       clockHz / 2, // 4th harmonic of the pulse train
		SymbolSamples: 16 * samplesPerCycle,
		WindowSamples: 8 * samplesPerCycle,
		HopSamples:    samplesPerCycle,
	}
}

// Result is a demodulated bitstream.
type Result struct {
	Bits []uint8
	// Offset is the detected symbol boundary in envelope hops.
	Offset int
	// Contrast is the separation between the on and off envelope
	// clusters, normalized by their spread; higher is cleaner.
	Contrast float64
	// Threshold is the decision level used.
	Threshold float64
}

// DemodulateOOK recovers the on-off-keyed bits from a trace. It
// estimates the symbol phase by maximizing inter-symbol contrast, then
// slices and thresholds the carrier envelope.
func DemodulateOOK(x []float64, dt float64, cfg OOKConfig) (*Result, error) {
	if cfg.SymbolSamples <= 0 || cfg.WindowSamples <= 0 || cfg.HopSamples <= 0 {
		return nil, fmt.Errorf("demod: invalid config %+v", cfg)
	}
	env := dsp.GoertzelSeries(x, dt, cfg.PulseHz, cfg.WindowSamples, cfg.HopSamples)
	hopsPerSymbol := cfg.SymbolSamples / cfg.HopSamples
	if hopsPerSymbol < 2 {
		return nil, fmt.Errorf("demod: symbol of %d samples too short for hop %d", cfg.SymbolSamples, cfg.HopSamples)
	}
	if len(env) < 2*hopsPerSymbol {
		return nil, fmt.Errorf("demod: trace holds fewer than two symbols")
	}

	// Phase search: the offset whose per-symbol means are most bimodal.
	bestOffset, bestScore := 0, -1.0
	var bestMeans []float64
	for off := 0; off < hopsPerSymbol; off++ {
		means := symbolMeans(env, off, hopsPerSymbol)
		if len(means) < 2 {
			continue
		}
		if score := bimodality(means); score > bestScore {
			bestScore, bestOffset, bestMeans = score, off, means
		}
	}
	if bestMeans == nil {
		return nil, fmt.Errorf("demod: could not synchronize")
	}
	threshold := twoMeansThreshold(bestMeans)
	bits := make([]uint8, len(bestMeans))
	for i, m := range bestMeans {
		if m > threshold {
			bits[i] = 1
		}
	}
	return &Result{Bits: bits, Offset: bestOffset, Contrast: bestScore, Threshold: threshold}, nil
}

// symbolMeans averages env over consecutive symbol-length groups
// starting at the given hop offset. Only the central half of each symbol
// is used: envelope windows that straddle a symbol boundary mix adjacent
// bits and would smear the decision.
func symbolMeans(env []float64, offset, hopsPerSymbol int) []float64 {
	lo := hopsPerSymbol / 4
	hi := hopsPerSymbol - hopsPerSymbol/4
	if hi <= lo {
		lo, hi = 0, hopsPerSymbol
	}
	var out []float64
	for start := offset; start+hopsPerSymbol <= len(env); start += hopsPerSymbol {
		sum := 0.0
		for _, v := range env[start+lo : start+hi] {
			sum += v
		}
		out = append(out, sum/float64(hi-lo))
	}
	return out
}

// bimodality scores how separable the values are into two clusters:
// between-cluster distance over within-cluster spread (a 1-D two-means
// criterion).
func bimodality(x []float64) float64 {
	lo, hi := minMax(x)
	if hi == lo {
		return 0
	}
	mid := (lo + hi) / 2
	var nLo, nHi int
	var sumLo, sumHi float64
	for _, v := range x {
		if v > mid {
			nHi++
			sumHi += v
		} else {
			nLo++
			sumLo += v
		}
	}
	if nLo == 0 || nHi == 0 {
		return 0
	}
	muLo, muHi := sumLo/float64(nLo), sumHi/float64(nHi)
	var spread float64
	for _, v := range x {
		d := v - muLo
		if v > mid {
			d = v - muHi
		}
		spread += d * d
	}
	spread = spread / float64(len(x))
	if spread == 0 {
		return 1e12
	}
	return (muHi - muLo) * (muHi - muLo) / spread
}

// twoMeansThreshold refines the on/off decision level by iterating the
// 1-D two-means update from the midrange starting point; it is robust to
// unbalanced bit populations where the plain midpoint is not.
func twoMeansThreshold(x []float64) float64 {
	lo, hi := minMax(x)
	th := (lo + hi) / 2
	for iter := 0; iter < 16; iter++ {
		var nLo, nHi int
		var sumLo, sumHi float64
		for _, v := range x {
			if v > th {
				nHi++
				sumHi += v
			} else {
				nLo++
				sumLo += v
			}
		}
		if nLo == 0 || nHi == 0 {
			return th
		}
		next := (sumLo/float64(nLo) + sumHi/float64(nHi)) / 2
		if math.Abs(next-th) < 1e-15 {
			break
		}
		th = next
	}
	return th
}

func minMax(x []float64) (lo, hi float64) {
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// MatchRotation searches for a rotation of want (a cyclic bit pattern)
// that matches got, allowing up to maxErrors bit errors. It returns the
// rotation and error count of the best alignment, or ok=false when no
// rotation fits. The covert channel repeats the key endlessly, so the
// receiver sees an arbitrary rotation.
func MatchRotation(got, want []uint8, maxErrors int) (rotation, errors int, ok bool) {
	if len(want) == 0 || len(got) == 0 {
		return 0, 0, false
	}
	bestErr := len(got) + 1
	bestRot := 0
	for rot := 0; rot < len(want); rot++ {
		errs := 0
		for i := range got {
			if got[i] != want[(rot+i)%len(want)] {
				errs++
			}
		}
		if errs < bestErr {
			bestErr, bestRot = errs, rot
		}
	}
	return bestRot, bestErr, bestErr <= maxErrors
}
