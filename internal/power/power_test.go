package power

import (
	"math"
	"testing"

	"emtrust/internal/layout"
	"emtrust/internal/logic"
	"emtrust/internal/netlist"
)

// smallPlan builds a small placed netlist: an inverter chain plus a few
// flip-flops.
func smallPlan(t testing.TB) (*layout.Floorplan, *netlist.Netlist) {
	t.Helper()
	b := netlist.NewBuilder("small")
	in := b.Input("in", 1)
	b.SetRegion("logic")
	x := in[0]
	for i := 0; i < 10; i++ {
		x = b.Not(x)
	}
	q := b.Reg(x)
	b.Reg(q)
	b.Output("o", []netlist.Net{q})
	n := b.Build()
	cfg := layout.DefaultConfig()
	cfg.TilesX, cfg.TilesY = 4, 4
	fp, err := layout.Place(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fp, n
}

func TestNewRecorderValidation(t *testing.T) {
	fp, _ := smallPlan(t)
	bad := DefaultConfig()
	bad.ClockHz = 0
	if _, err := NewRecorder(bad, fp); err == nil {
		t.Fatal("zero clock must error")
	}
	bad = DefaultConfig()
	bad.PulseFraction = 0
	if _, err := NewRecorder(bad, fp); err == nil {
		t.Fatal("zero pulse fraction must error")
	}
}

func TestPulseShapeUnitCharge(t *testing.T) {
	cfg := DefaultConfig()
	shape := pulseShape(cfg)
	sum := 0.0
	for _, v := range shape {
		sum += v * cfg.Dt()
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("pulse integral = %g, want 1", sum)
	}
	if len(shape) < 1 || len(shape) > cfg.SamplesPerCycle {
		t.Fatalf("pulse length %d", len(shape))
	}
}

func TestToggleChargeConservation(t *testing.T) {
	fp, n := smallPlan(t)
	cfg := DefaultConfig()
	cfg.ClockPinCharge = 0 // isolate toggle charge
	rec, err := NewRecorder(cfg, fp)
	if err != nil {
		t.Fatal(err)
	}
	rec.Begin(4)
	// Toggle cell 0 twice in cycle 0 and cell 1 once in cycle 2.
	rec.OnToggle(0, true)
	rec.OnToggle(0, false)
	if err := rec.EndCycle(); err != nil {
		t.Fatal(err)
	}
	if err := rec.EndCycle(); err != nil {
		t.Fatal(err)
	}
	rec.OnToggle(1, true)
	if err := rec.EndCycle(); err != nil {
		t.Fatal(err)
	}
	if err := rec.EndCycle(); err != nil {
		t.Fatal(err)
	}
	want := 2*n.Cells[0].Type.SwitchingCharge() + n.Cells[1].Type.SwitchingCharge()
	if got := rec.TotalCharge(); math.Abs(got-want) > want*1e-9 {
		t.Fatalf("total charge = %g, want %g", got, want)
	}
	if rec.Cycle() != 4 {
		t.Fatalf("cycle = %d", rec.Cycle())
	}
}

func TestClockTreeChargePerCycle(t *testing.T) {
	fp, _ := smallPlan(t)
	cfg := DefaultConfig()
	rec, err := NewRecorder(cfg, fp)
	if err != nil {
		t.Fatal(err)
	}
	ffs := 0
	for _, c := range rec.TileFFCount() {
		ffs += c
	}
	if ffs != 2 {
		t.Fatalf("flip-flop count = %d, want 2", ffs)
	}
	rec.Begin(3)
	for i := 0; i < 3; i++ {
		if err := rec.EndCycle(); err != nil {
			t.Fatal(err)
		}
	}
	want := 3 * 2 * cfg.ClockPinCharge
	if got := rec.TotalCharge(); math.Abs(got-want) > want*1e-9 {
		t.Fatalf("clock charge = %g, want %g", got, want)
	}
}

func TestStaticCurrent(t *testing.T) {
	fp, _ := smallPlan(t)
	cfg := DefaultConfig()
	cfg.ClockPinCharge = 0
	rec, err := NewRecorder(cfg, fp)
	if err != nil {
		t.Fatal(err)
	}
	rec.Begin(2)
	rec.AddStaticCurrent(3, 1e-3)
	if err := rec.EndCycle(); err != nil {
		t.Fatal(err)
	}
	if err := rec.EndCycle(); err != nil {
		t.Fatal(err)
	}
	// 1 mA over one cycle at 12 MHz = 83.3 pC.
	want := 1e-3 / cfg.ClockHz
	if got := rec.TotalCharge(); math.Abs(got-want) > want*1e-9 {
		t.Fatalf("static charge = %g, want %g", got, want)
	}
	// Entirely inside cycle 0.
	w := rec.Currents()[3]
	for i := cfg.SamplesPerCycle; i < len(w); i++ {
		if w[i] != 0 {
			t.Fatal("static current leaked into the next cycle")
		}
	}
}

func TestFastToggles(t *testing.T) {
	fp, _ := smallPlan(t)
	cfg := DefaultConfig()
	cfg.ClockPinCharge = 0
	rec, err := NewRecorder(cfg, fp)
	if err != nil {
		t.Fatal(err)
	}
	rec.Begin(1)
	rec.AddFastToggles(0, 4, 1e-15)
	rec.AddFastToggles(0, 0, 1e-15) // no-op
	rec.AddFastToggles(0, 2, 0)     // no-op
	if err := rec.EndCycle(); err != nil {
		t.Fatal(err)
	}
	want := 4e-15
	if got := rec.TotalCharge(); math.Abs(got-want) > want*0.3 {
		// Pulses near the cycle end may clip; most charge must land.
		t.Fatalf("fast-toggle charge = %g, want ~%g", got, want)
	}
	// The four pulses must hit four distinct sub-cycle offsets.
	w := rec.Currents()[0]
	nonzero := 0
	for _, v := range w {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 4 {
		t.Fatalf("fast toggles occupy only %d samples", nonzero)
	}
}

func TestEndCyclePastCapture(t *testing.T) {
	fp, _ := smallPlan(t)
	rec, err := NewRecorder(DefaultConfig(), fp)
	if err != nil {
		t.Fatal(err)
	}
	rec.Begin(1)
	if err := rec.EndCycle(); err != nil {
		t.Fatal(err)
	}
	if err := rec.EndCycle(); err == nil {
		t.Fatal("EndCycle past capture must error")
	}
}

func TestBeginResetsState(t *testing.T) {
	fp, _ := smallPlan(t)
	cfg := DefaultConfig()
	cfg.ClockPinCharge = 0
	rec, err := NewRecorder(cfg, fp)
	if err != nil {
		t.Fatal(err)
	}
	rec.Begin(1)
	rec.OnToggle(0, true)
	rec.AddStaticCurrent(0, 1)
	rec.AddFastToggles(0, 2, 1e-15)
	// Begin again without EndCycle: everything booked must vanish.
	rec.Begin(1)
	if err := rec.EndCycle(); err != nil {
		t.Fatal(err)
	}
	if got := rec.TotalCharge(); got != 0 {
		t.Fatalf("stale activity survived Begin: %g", got)
	}
}

func TestDtAndConfig(t *testing.T) {
	cfg := DefaultConfig()
	want := 1 / (cfg.ClockHz * float64(cfg.SamplesPerCycle))
	if cfg.Dt() != want {
		t.Fatal("Dt wrong")
	}
	fp, _ := smallPlan(t)
	rec, _ := NewRecorder(cfg, fp)
	if rec.Dt() != want || rec.Config().ClockHz != cfg.ClockHz {
		t.Fatal("accessors wrong")
	}
}

func TestProcessVariation(t *testing.T) {
	fp, n := smallPlan(t)
	base := DefaultConfig()
	base.ClockPinCharge = 0

	varied := base
	varied.VariationSigma = 0.1
	varied.CornerSigma = 0.1
	varied.VariationSeed = 5

	charge := func(cfg Config) float64 {
		rec, err := NewRecorder(cfg, fp)
		if err != nil {
			t.Fatal(err)
		}
		rec.Begin(1)
		for i := range n.Cells {
			rec.OnToggle(i, true)
		}
		if err := rec.EndCycle(); err != nil {
			t.Fatal(err)
		}
		return rec.TotalCharge()
	}

	nominal := charge(base)
	sampleA := charge(varied)
	if sampleA == nominal {
		t.Fatal("variation had no effect")
	}
	// Same seed reproduces the same chip.
	if charge(varied) != sampleA {
		t.Fatal("variation not deterministic per seed")
	}
	// A different seed gives a different chip.
	other := varied
	other.VariationSeed = 6
	if charge(other) == sampleA {
		t.Fatal("different seeds must differ")
	}
	// Variation is bounded: within ~50% of nominal at sigma 0.1.
	if sampleA < nominal*0.5 || sampleA > nominal*1.5 {
		t.Fatalf("variation unreasonable: %g vs %g", sampleA, nominal)
	}
}

// TestDrainTogglesMatchesOnToggle pins the batched-accounting contract:
// draining a toggle batch produces bit-identical waveforms to calling
// OnToggle per event, because the drain walks the batch in occurrence
// order performing the same float additions.
func TestDrainTogglesMatchesOnToggle(t *testing.T) {
	fp, n := smallPlan(t)
	cfg := DefaultConfig()
	recA, err := NewRecorder(cfg, fp)
	if err != nil {
		t.Fatal(err)
	}
	recB, err := NewRecorder(cfg, fp)
	if err != nil {
		t.Fatal(err)
	}
	// A toggle sequence hitting the same cells repeatedly, in an order
	// where float-add reordering would show up if the drain grouped or
	// reordered events.
	cells := []int{0, 3, 1, 0, 2, 0, 5, int(uint(len(n.Cells) - 1)), 1, 0}
	recA.Begin(2)
	recB.Begin(2)
	for cycle := 0; cycle < 2; cycle++ {
		var batch []logic.ToggleEvent
		for i, cell := range cells {
			rise := i%2 == 0
			recA.OnToggle(cell, rise)
			e := logic.ToggleEvent(cell) << 1
			if rise {
				e |= 1
			}
			batch = append(batch, e)
		}
		recB.DrainToggles(batch)
		if err := recA.EndCycle(); err != nil {
			t.Fatal(err)
		}
		if err := recB.EndCycle(); err != nil {
			t.Fatal(err)
		}
	}
	wa, wb := recA.Currents(), recB.Currents()
	for tile := range wa {
		for i := range wa[tile] {
			if wa[tile][i] != wb[tile][i] {
				t.Fatalf("tile %d sample %d: callback %v != drained %v", tile, i, wa[tile][i], wb[tile][i])
			}
		}
	}
}
