// Package power turns gate-level switching activity into per-tile supply
// current waveforms, the "current distribution network" stage of the
// paper's EM simulation flow: every cell toggle deposits its library
// switching charge as a sub-cycle current pulse at the cell's tile, the
// clock tree draws a charge per flip-flop every cycle, and static
// injections model the T2 crowbar leakage and the A2 charge pump.
package power

import (
	"fmt"
	"math"
	"math/rand"

	"emtrust/internal/layout"
	"emtrust/internal/logic"
)

// Config sets the electrical and discretization parameters.
type Config struct {
	// ClockHz is the system clock. The paper's AM Trojan leaks at
	// 750 kHz = clock/16, so the experiments use 12 MHz.
	ClockHz float64
	// SamplesPerCycle is the sub-cycle current resolution.
	SamplesPerCycle int
	// PulseFraction is the fraction of the clock period over which a
	// switching-charge pulse is spread.
	PulseFraction float64
	// RiseFraction shapes the double-exponential pulse: the rise time
	// constant as a fraction of the pulse length.
	RiseFraction float64
	// ClockPinCharge is the charge drawn by one flip-flop's clock pin
	// every cycle (coulombs); it produces the clock fundamental that
	// dominates the spectra of Figures 4 and 6.
	ClockPinCharge float64
	// CrowbarCurrent is the static current of one T2 leakage pair
	// while conducting (amps).
	CrowbarCurrent float64
	// VDD is the supply voltage, used to convert explicit net load
	// capacitance into switching charge.
	VDD float64
	// VariationSigma is the fractional standard deviation of per-cell
	// switching charge across fabricated chips (process variation).
	// Zero disables variation; each chip draws its own sample from
	// VariationSeed.
	VariationSigma float64
	// CornerSigma is the fractional standard deviation of a chip-wide
	// charge multiplier (the global process corner: faster or slower
	// silicon overall). Per-cell variation averages out over a tile;
	// the corner shift is what distinguishes two dies macroscopically.
	CornerSigma float64
	// VariationSeed selects the chip's process sample.
	VariationSeed int64
}

// DefaultConfig returns the 180 nm / 12 MHz parameters used throughout
// the experiments.
func DefaultConfig() Config {
	return Config{
		ClockHz:         12e6,
		SamplesPerCycle: 16,
		PulseFraction:   0.35,
		RiseFraction:    0.15,
		ClockPinCharge:  15e-15,
		CrowbarCurrent:  0.2e-6,
		VDD:             1.8,
	}
}

// Dt returns the waveform sample spacing in seconds.
func (c Config) Dt() float64 { return 1 / (c.ClockHz * float64(c.SamplesPerCycle)) }

// Recorder accumulates switching activity for one trace capture.
type Recorder struct {
	cfg    Config
	grid   *layout.TileGrid
	charge []float64 // per-cell switching charge (indexed by cell)
	ffTile []int     // flip-flop cell -> tile, for the clock tree model
	// clockCharge is the per-tile clock-tree charge drawn every cycle
	// (the ffTile walk pre-summed), so EndCycle pays one add per tile
	// instead of one per flip-flop.
	clockCharge []float64

	pulse       []float64 // unit-charge pulse shape (amps at dt spacing)
	cycleCharge []float64 // per-tile charge accumulated this cycle
	static      []float64 // per-tile static current this cycle (amps)
	sub         []subEvent
	currents    [][]float64 // per-tile waveform
	cycle       int
	numCycles   int
}

type subEvent struct {
	tile   int
	charge float64
	count  int
}

// NewRecorder builds a recorder for the placed netlist.
func NewRecorder(cfg Config, fp *layout.Floorplan) (*Recorder, error) {
	if cfg.ClockHz <= 0 || cfg.SamplesPerCycle <= 0 {
		return nil, fmt.Errorf("power: invalid config %+v", cfg)
	}
	if cfg.PulseFraction <= 0 || cfg.PulseFraction > 1 {
		return nil, fmt.Errorf("power: pulse fraction %g out of (0,1]", cfg.PulseFraction)
	}
	n := fp.Netlist()
	r := &Recorder{
		cfg:    cfg,
		grid:   fp.Grid,
		charge: make([]float64, len(n.Cells)),
	}
	var vrng *rand.Rand
	corner := 1.0
	if cfg.VariationSigma > 0 || cfg.CornerSigma > 0 {
		vrng = rand.New(rand.NewSource(cfg.VariationSeed))
		if cfg.CornerSigma > 0 {
			corner = 1 + cfg.CornerSigma*vrng.NormFloat64()
			if corner < 0.1 {
				corner = 0.1
			}
		}
	}
	for i, c := range n.Cells {
		r.charge[i] = (c.Type.SwitchingCharge() + c.Load*cfg.VDD) * corner
		if vrng != nil && cfg.VariationSigma > 0 {
			f := 1 + cfg.VariationSigma*vrng.NormFloat64()
			if f < 0.1 {
				f = 0.1
			}
			r.charge[i] *= f
		}
		if c.Type.IsSequential() {
			r.ffTile = append(r.ffTile, fp.Grid.CellTile[i])
		}
	}
	r.pulse = pulseShape(cfg)
	r.cycleCharge = make([]float64, fp.Grid.NumTiles())
	r.static = make([]float64, fp.Grid.NumTiles())
	r.clockCharge = make([]float64, fp.Grid.NumTiles())
	for _, tile := range r.ffTile {
		r.clockCharge[tile] += cfg.ClockPinCharge
	}
	return r, nil
}

// pulseShape builds the unit-charge double-exponential current pulse.
func pulseShape(cfg Config) []float64 {
	n := int(float64(cfg.SamplesPerCycle)*cfg.PulseFraction + 0.5)
	if n < 1 {
		n = 1
	}
	dt := cfg.Dt()
	tauR := cfg.RiseFraction * float64(n) * dt
	tauF := float64(n) * dt / 3
	if tauR <= 0 {
		tauR = dt / 4
	}
	shape := make([]float64, n)
	sum := 0.0
	for i := range shape {
		t := (float64(i) + 0.5) * dt
		shape[i] = math.Exp(-t/tauF) - math.Exp(-t/tauR)
		sum += shape[i] * dt
	}
	if sum == 0 {
		shape[0] = 1 / dt
		return shape
	}
	for i := range shape {
		shape[i] /= sum // integral = 1 coulomb per unit charge
	}
	return shape
}

// Begin starts a capture of numCycles clock cycles. Waveform buffers are
// reused across captures when the dimensions still fit, which is why
// Capture.Tiles documents its slices as valid only until the next
// capture on the same chip.
func (r *Recorder) Begin(numCycles int) {
	r.numCycles = numCycles
	r.cycle = 0
	total := numCycles * r.cfg.SamplesPerCycle
	if len(r.currents) != r.grid.NumTiles() {
		r.currents = make([][]float64, r.grid.NumTiles())
	}
	for t := range r.currents {
		if cap(r.currents[t]) >= total {
			w := r.currents[t][:total]
			for i := range w {
				w[i] = 0
			}
			r.currents[t] = w
		} else {
			r.currents[t] = make([]float64, total)
		}
	}
	for t := range r.cycleCharge {
		r.cycleCharge[t] = 0
		r.static[t] = 0
	}
	r.sub = r.sub[:0]
}

// OnToggle is the logic.Simulator callback: it books the toggling cell's
// switching charge at its tile for the current cycle.
func (r *Recorder) OnToggle(cell int, _ bool) {
	r.cycleCharge[r.grid.CellTile[cell]] += r.charge[cell]
}

// DrainToggles books a batch of toggle events (logic.Simulator.TakeToggles)
// for the current cycle. It walks the batch in occurrence order, adding
// each cell's charge exactly as the per-event OnToggle path would, so the
// accumulated waveforms are bit-identical to per-callback recording while
// paying one call per cycle instead of one per toggle.
func (r *Recorder) DrainToggles(events []logic.ToggleEvent) {
	cycleCharge, tile, charge := r.cycleCharge, r.grid.CellTile, r.charge
	for _, e := range events {
		cell := e.Cell()
		cycleCharge[tile[cell]] += charge[cell]
	}
}

// AddStaticCurrent injects a constant current (amps) at a tile for the
// duration of the current cycle (T2's crowbar leakage).
func (r *Recorder) AddStaticCurrent(tile int, amps float64) {
	r.static[tile] += amps
}

// AddFastToggles injects count evenly spaced charge pulses inside the
// current cycle (the A2 trigger's fast flipping), each carrying the given
// charge.
func (r *Recorder) AddFastToggles(tile int, count int, charge float64) {
	if count <= 0 || charge == 0 {
		return
	}
	r.sub = append(r.sub, subEvent{tile: tile, charge: charge, count: count})
}

// EndCycle flushes the cycle's booked activity into the waveforms and
// advances to the next cycle. Calling it more than numCycles times is an
// error.
func (r *Recorder) EndCycle() error {
	if r.cycle >= r.numCycles {
		return fmt.Errorf("power: EndCycle past the %d-cycle capture", r.numCycles)
	}
	s := r.cfg.SamplesPerCycle
	base := r.cycle * s
	// Clock tree: every flip-flop's clock pin draws charge each cycle
	// (pre-summed per tile in clockCharge), on top of the cycle's
	// switching charge.
	for tile, q := range r.cycleCharge {
		if tq := q + r.clockCharge[tile]; tq != 0 {
			r.deposit(tile, base, tq)
		}
		if q != 0 {
			r.cycleCharge[tile] = 0
		}
	}
	for tile, amps := range r.static {
		if amps != 0 {
			w := r.currents[tile]
			for k := 0; k < s && base+k < len(w); k++ {
				w[base+k] += amps
			}
			r.static[tile] = 0
		}
	}
	for _, ev := range r.sub {
		stride := s / ev.count
		if stride < 1 {
			stride = 1
		}
		// Center each pulse in its sub-interval so the injected tones
		// sit in quadrature with the cycle-aligned clock pulses and
		// always add energy instead of sometimes cancelling.
		for j := 0; j < ev.count; j++ {
			r.deposit(ev.tile, base+j*stride+stride/2, ev.charge)
		}
	}
	r.sub = r.sub[:0]
	r.cycle++
	return nil
}

// deposit adds a charge pulse starting at sample index start.
func (r *Recorder) deposit(tile, start int, q float64) {
	w := r.currents[tile]
	for k, p := range r.pulse {
		i := start + k
		if i >= len(w) {
			break
		}
		w[i] += q * p
	}
}

// Currents returns the per-tile waveforms captured so far.
func (r *Recorder) Currents() [][]float64 { return r.currents }

// Dt returns the waveform sample spacing in seconds.
func (r *Recorder) Dt() float64 { return r.cfg.Dt() }

// Cycle returns how many cycles have been flushed.
func (r *Recorder) Cycle() int { return r.cycle }

// Config returns the recorder's configuration.
func (r *Recorder) Config() Config { return r.cfg }

// TotalCharge integrates all tile currents over the capture; useful for
// sanity checks and the power-hog experiments.
func (r *Recorder) TotalCharge() float64 {
	dt := r.Dt()
	sum := 0.0
	for _, w := range r.currents {
		for _, v := range w {
			sum += v * dt
		}
	}
	return sum
}

// TileFFCount returns the number of flip-flops per tile (the clock-load
// map), exposed for tests and the layout report.
func (r *Recorder) TileFFCount() []int {
	counts := make([]int, r.grid.NumTiles())
	for _, t := range r.ffTile {
		counts[t]++
	}
	return counts
}
