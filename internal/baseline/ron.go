// Package baseline implements the prior-art on-chip detection structure
// the paper positions itself against: a ring-oscillator network (RON,
// reference [10], Zhang & Tehranipoor DATE'11). Ring oscillators spread
// over the die slow down when nearby switching drops the local supply
// voltage; counting their edges over a window fingerprints the chip's
// power activity. The paper's critique — "these on-chip structures share
// a common problem of low coverage rates" — is reproduced quantitatively
// by internal/experiments: the RON sees the power hog next to one of its
// oscillators but misses the small CDMA leaker and the analog Trojan
// that the full-die EM sensor catches.
package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"emtrust/internal/layout"
)

// RONConfig sets the ring-oscillator network's electrical model.
type RONConfig struct {
	// Rows and Cols place Rows*Cols oscillators on a uniform grid over
	// the die.
	Rows, Cols int
	// NominalHz is the free-running oscillator frequency (a 13-stage
	// RO in 180 nm runs at a few hundred MHz).
	NominalHz float64
	// VoltSensitivity is the fractional frequency drop per volt of
	// local supply droop.
	VoltSensitivity float64
	// GridResistance converts local current draw into supply droop
	// (ohms, lumped).
	GridResistance float64
	// NeighborDecay attenuates a tile's influence per tile of
	// Chebyshev distance from the oscillator; it encodes how local the
	// IR drop is — and therefore the network's coverage.
	NeighborDecay float64
	// CounterNoise is the RMS measurement noise in counts (quantization
	// plus oscillator jitter).
	CounterNoise float64
}

// DefaultRONConfig returns a 3x3 network of 400 MHz oscillators with a
// 6-ohm lumped local grid and 20%/V sensitivity.
func DefaultRONConfig() RONConfig {
	return RONConfig{
		Rows: 3, Cols: 3,
		NominalHz:       400e6,
		VoltSensitivity: 0.2,
		GridResistance:  8.0,
		NeighborDecay:   0.5,
		CounterNoise:    1.0,
	}
}

// RON is a placed ring-oscillator network on one floorplan.
type RON struct {
	cfg       RONConfig
	positions []layout.Point
	// weights[o][tile] is oscillator o's sensitivity to tile current.
	weights [][]float64
}

// NewRON places the network on the floorplan's tile grid.
func NewRON(fp *layout.Floorplan, cfg RONConfig) (*RON, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("baseline: need a positive RO grid, got %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.NominalHz <= 0 || cfg.NeighborDecay < 0 || cfg.NeighborDecay >= 1 {
		return nil, fmt.Errorf("baseline: invalid config %+v", cfg)
	}
	grid := fp.Grid
	r := &RON{cfg: cfg}
	for i := 0; i < cfg.Rows; i++ {
		for j := 0; j < cfg.Cols; j++ {
			p := layout.Point{
				X: (float64(j) + 0.5) / float64(cfg.Cols) * fp.Die.X,
				Y: (float64(i) + 0.5) / float64(cfg.Rows) * fp.Die.Y,
			}
			r.positions = append(r.positions, p)
			home := grid.TileOf(p)
			hx, hy := home%grid.NX, home/grid.NX
			w := make([]float64, grid.NumTiles())
			for t := range w {
				tx, ty := t%grid.NX, t/grid.NX
				d := chebyshev(hx, hy, tx, ty)
				w[t] = math.Pow(cfg.NeighborDecay, float64(d))
			}
			r.weights = append(r.weights, w)
		}
	}
	return r, nil
}

func chebyshev(ax, ay, bx, by int) int {
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dy > dx {
		return dy
	}
	return dx
}

// Oscillators returns the number of placed oscillators.
func (r *RON) Oscillators() int { return len(r.positions) }

// Positions returns the oscillator locations on the die.
func (r *RON) Positions() []layout.Point { return r.positions }

// Measure counts each oscillator's edges over the capture window given
// the per-tile current waveforms (amps, spaced dt seconds). The counts
// carry the configured measurement noise from rng.
func (r *RON) Measure(tiles [][]float64, dt float64, rng *rand.Rand) []float64 {
	if len(tiles) == 0 {
		return make([]float64, len(r.weights))
	}
	n := len(tiles[0])
	window := float64(n) * dt
	counts := make([]float64, len(r.weights))
	for o, w := range r.weights {
		// Average local droop over the window: the counter integrates
		// frequency, so only the mean droop matters at first order.
		var meanI float64
		for t, wt := range w {
			if wt == 0 {
				continue
			}
			sum := 0.0
			for _, v := range tiles[t] {
				sum += v
			}
			meanI += wt * sum / float64(n)
		}
		droop := meanI * r.cfg.GridResistance
		freq := r.cfg.NominalHz * (1 - r.cfg.VoltSensitivity*droop)
		count := freq * window
		if r.cfg.CounterNoise > 0 && rng != nil {
			count += rng.NormFloat64() * r.cfg.CounterNoise
		}
		counts[o] = count
	}
	return counts
}

// Detector is the RON's golden-model detector: mean golden count vector
// and a max-pairwise-distance threshold, mirroring the EM framework's
// Eq. (1) so the comparison is apples to apples.
type Detector struct {
	Mean      []float64
	Threshold float64
	golden    [][]float64
}

// FitDetector builds the golden RON model from repeated measurements.
func FitDetector(golden [][]float64) (*Detector, error) {
	if len(golden) < 2 {
		return nil, fmt.Errorf("baseline: need at least 2 golden measurements")
	}
	n := len(golden[0])
	mean := make([]float64, n)
	for _, g := range golden {
		if len(g) != n {
			return nil, fmt.Errorf("baseline: ragged golden measurements")
		}
		for i, v := range g {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(len(golden))
	}
	th := 0.0
	for i := 0; i < len(golden); i++ {
		for j := i + 1; j < len(golden); j++ {
			if d := euclid(golden[i], golden[j]); d > th {
				th = d
			}
		}
	}
	return &Detector{Mean: mean, Threshold: th, golden: golden}, nil
}

// Distance returns the measurement's Euclidean distance to the nearest
// golden sample.
func (d *Detector) Distance(counts []float64) float64 {
	best := math.Inf(1)
	for _, g := range d.golden {
		if dist := euclid(counts, g); dist < best {
			best = dist
		}
	}
	return best
}

// Evaluate reports whether the measurement exceeds the golden threshold.
func (d *Detector) Evaluate(counts []float64) (distance float64, alarm bool) {
	dist := d.Distance(counts)
	return dist, dist > d.Threshold
}

func euclid(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		diff := a[i] - b[i]
		sum += diff * diff
	}
	return math.Sqrt(sum)
}
