package baseline

import (
	"math"
	"math/rand"
	"testing"

	"emtrust/internal/layout"
	"emtrust/internal/netlist"
)

func testPlan(t *testing.T) *layout.Floorplan {
	t.Helper()
	b := netlist.NewBuilder("p")
	in := b.Input("in", 2)
	b.SetRegion("logic")
	for i := 0; i < 50; i++ {
		b.Xor(in[0], in[1])
	}
	b.Output("o", in)
	fp, err := layout.Place(b.Build(), layout.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestNewRONPlacement(t *testing.T) {
	fp := testPlan(t)
	r, err := NewRON(fp, DefaultRONConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Oscillators() != 9 {
		t.Fatalf("oscillators = %d", r.Oscillators())
	}
	for _, p := range r.Positions() {
		if p.X < 0 || p.X > fp.Die.X || p.Y < 0 || p.Y > fp.Die.Y {
			t.Fatalf("oscillator off-die at %+v", p)
		}
	}
}

func TestNewRONValidation(t *testing.T) {
	fp := testPlan(t)
	bad := DefaultRONConfig()
	bad.Rows = 0
	if _, err := NewRON(fp, bad); err == nil {
		t.Fatal("zero rows must error")
	}
	bad = DefaultRONConfig()
	bad.NeighborDecay = 1
	if _, err := NewRON(fp, bad); err == nil {
		t.Fatal("decay of 1 must error")
	}
}

func TestMeasureNominal(t *testing.T) {
	fp := testPlan(t)
	cfg := DefaultRONConfig()
	cfg.CounterNoise = 0
	r, err := NewRON(fp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No current anywhere: every oscillator at nominal frequency.
	tiles := make([][]float64, fp.Grid.NumTiles())
	for i := range tiles {
		tiles[i] = make([]float64, 100)
	}
	const dt = 1e-8
	counts := r.Measure(tiles, dt, nil)
	want := cfg.NominalHz * 100 * dt
	for o, c := range counts {
		if math.Abs(c-want) > 1e-9 {
			t.Fatalf("oscillator %d count %g, want %g", o, c, want)
		}
	}
	// Empty capture degenerates gracefully.
	if got := r.Measure(nil, dt, nil); len(got) != r.Oscillators() {
		t.Fatal("empty measure length")
	}
}

func TestMeasureLocalDroopSlowsNearestRO(t *testing.T) {
	fp := testPlan(t)
	cfg := DefaultRONConfig()
	cfg.CounterNoise = 0
	r, err := NewRON(fp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiles := make([][]float64, fp.Grid.NumTiles())
	for i := range tiles {
		tiles[i] = make([]float64, 100)
	}
	// Inject 10 mA at the tile under oscillator 0.
	home := fp.Grid.TileOf(r.Positions()[0])
	for i := range tiles[home] {
		tiles[home][i] = 10e-3
	}
	counts := r.Measure(tiles, 1e-8, nil)
	nominal := cfg.NominalHz * 100e-8
	drop0 := nominal - counts[0]
	dropFar := nominal - counts[len(counts)-1]
	if drop0 <= 0 {
		t.Fatal("loaded oscillator did not slow down")
	}
	if dropFar >= drop0 {
		t.Fatalf("far oscillator dropped as much as the near one: %g vs %g", dropFar, drop0)
	}
	// The decay is geometric in tile distance.
	if dropFar > drop0*0.2 {
		t.Fatalf("coverage too global: far drop %g vs near %g", dropFar, drop0)
	}
}

func TestDetectorFitAndEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	golden := make([][]float64, 20)
	for i := range golden {
		m := make([]float64, 9)
		for j := range m {
			m[j] = 1000 + rng.NormFloat64()
		}
		golden[i] = m
	}
	det, err := FitDetector(golden)
	if err != nil {
		t.Fatal(err)
	}
	// A golden-like vector passes.
	probe := make([]float64, 9)
	for j := range probe {
		probe[j] = 1000 + rng.NormFloat64()
	}
	if _, alarm := det.Evaluate(probe); alarm {
		t.Fatal("golden-like measurement must pass")
	}
	// A strongly shifted vector alarms.
	for j := range probe {
		probe[j] = 1000 - 50
	}
	if dist, alarm := det.Evaluate(probe); !alarm || dist <= det.Threshold {
		t.Fatalf("shifted measurement must alarm (dist %g, th %g)", dist, det.Threshold)
	}
}

func TestDetectorValidation(t *testing.T) {
	if _, err := FitDetector(nil); err == nil {
		t.Fatal("empty golden must error")
	}
	if _, err := FitDetector([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged golden must error")
	}
}
