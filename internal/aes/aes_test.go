package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFMulKnown(t *testing.T) {
	// Classic FIPS-197 examples.
	if got := Mul(0x57, 0x83); got != 0xc1 {
		t.Fatalf("0x57*0x83 = %#x, want 0xc1", got)
	}
	if got := Mul(0x57, 0x13); got != 0xfe {
		t.Fatalf("0x57*0x13 = %#x, want 0xfe", got)
	}
}

func TestGFMulProperties(t *testing.T) {
	comm := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error("commutativity:", err)
	}
	ident := func(a byte) bool { return Mul(a, 1) == a }
	if err := quick.Check(ident, nil); err != nil {
		t.Error("identity:", err)
	}
	zero := func(a byte) bool { return Mul(a, 0) == 0 }
	if err := quick.Check(zero, nil); err != nil {
		t.Error("zero:", err)
	}
	distrib := func(a, b, c byte) bool { return Mul(a, b^c) == Mul(a, b)^Mul(a, c) }
	if err := quick.Check(distrib, nil); err != nil {
		t.Error("distributivity:", err)
	}
	assoc := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(assoc, nil); err != nil {
		t.Error("associativity:", err)
	}
}

func TestGFInv(t *testing.T) {
	if Inv(0) != 0 {
		t.Fatal("Inv(0) must be 0")
	}
	for a := 1; a < 256; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a*Inv(a) = %#x for a=%#x", got, a)
		}
	}
}

func TestXTime(t *testing.T) {
	for a := 0; a < 256; a++ {
		if XTime(byte(a)) != Mul(byte(a), 2) {
			t.Fatalf("XTime(%#x) != Mul(.,2)", a)
		}
	}
}

func TestSBoxKnownValues(t *testing.T) {
	// Spot values from the FIPS-197 S-box table.
	cases := map[byte]byte{0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16, 0x10: 0xca}
	for in, want := range cases {
		if got := SBox(in); got != want {
			t.Fatalf("SBox(%#02x) = %#02x, want %#02x", in, got, want)
		}
	}
}

func TestSBoxIsPermutation(t *testing.T) {
	var seen [256]bool
	for x := 0; x < 256; x++ {
		v := SBox(byte(x))
		if seen[v] {
			t.Fatalf("S-box value %#02x repeats", v)
		}
		seen[v] = true
	}
}

func TestBehavioralMatchesCryptoAES(t *testing.T) {
	// FIPS-197 Appendix B vector.
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	want := []byte{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32}

	c := NewCipher(key)
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("FIPS vector failed: got %x", got)
	}

	// Random cross-check against the standard library.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		k := make([]byte, 16)
		p := make([]byte, 16)
		rng.Read(k)
		rng.Read(p)
		ref, err := stdaes.NewCipher(k)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 16)
		ref.Encrypt(want, p)
		got := make([]byte, 16)
		NewCipher(k).Encrypt(got, p)
		if !bytes.Equal(got, want) {
			t.Fatalf("mismatch for key %x pt %x: got %x want %x", k, p, got, want)
		}
	}
}

func TestNewCipherPanicsOnBadKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCipher(make([]byte, 24))
}

func TestRoundKeyZeroIsKey(t *testing.T) {
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	rk0 := NewCipher(key).RoundKey(0)
	// roundKeys store r+4c layout; key byte 4c+r maps to rk0[r+4c].
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			if rk0[r+4*c] != key[4*c+r] {
				t.Fatalf("round key 0 layout wrong at r=%d c=%d", r, c)
			}
		}
	}
}

func TestBitsRoundTrip(t *testing.T) {
	f := func(block [16]byte) bool {
		return bytes.Equal(BitsToBytes(BytesToBits(block[:])), block[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsToBytesPanicsOnRaggedInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BitsToBytes(make([]uint8, 13))
}

func TestSBoxToggleCharge(t *testing.T) {
	profile := SBoxToggleCharge()
	// Staying at zero draws nothing.
	if profile[0] != 0 {
		t.Fatalf("profile[0] = %g", profile[0])
	}
	// Every non-zero transition draws positive charge, and the profile
	// varies across inputs (otherwise it carries no information).
	min, max := profile[1], profile[1]
	for x := 1; x < 256; x++ {
		if profile[x] <= 0 {
			t.Fatalf("profile[%#x] = %g", x, profile[x])
		}
		if profile[x] < min {
			min = profile[x]
		}
		if profile[x] > max {
			max = profile[x]
		}
	}
	if max < min*1.2 {
		t.Fatalf("profile too flat: [%g, %g]", min, max)
	}
	// Memoized: a second call returns identical data.
	again := SBoxToggleCharge()
	for x := range profile {
		if profile[x] != again[x] {
			t.Fatal("profile not stable")
		}
	}
}
