package aes

import (
	"bytes"
	"math/rand"
	"testing"

	"emtrust/internal/logic"
	"emtrust/internal/netlist"
)

// buildSboxNet wraps a lone structural S-box in a netlist for exhaustive
// testing.
func buildSboxNet(t *testing.T) *logic.Simulator {
	t.Helper()
	b := netlist.NewBuilder("sbox")
	in := b.Input("x", 8)
	b.Output("y", sboxNet(b, in))
	sim, err := logic.New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestStructuralSBoxExhaustive(t *testing.T) {
	sim := buildSboxNet(t)
	for x := 0; x < 256; x++ {
		sim.SetPortUint("x", uint64(x))
		sim.Settle()
		got, _ := sim.PortUint("y")
		if byte(got) != SBox(byte(x)) {
			t.Fatalf("structural S-box(%#02x) = %#02x, want %#02x", x, got, SBox(byte(x)))
		}
	}
}

func TestStructuralGFMulExhaustiveSample(t *testing.T) {
	b := netlist.NewBuilder("gfmul")
	x := b.Input("x", 8)
	y := b.Input("y", 8)
	b.Output("z", gfMulNet(b, x, y))
	sim, err := logic.New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		a, c := byte(rng.Intn(256)), byte(rng.Intn(256))
		sim.SetPortUint("x", uint64(a))
		sim.SetPortUint("y", uint64(c))
		sim.Settle()
		got, _ := sim.PortUint("z")
		if byte(got) != Mul(a, c) {
			t.Fatalf("gfMulNet(%#x,%#x) = %#x, want %#x", a, c, got, Mul(a, c))
		}
	}
}

func TestStructuralGFSquareExhaustive(t *testing.T) {
	b := netlist.NewBuilder("gfsq")
	x := b.Input("x", 8)
	b.Output("z", gfSquareNet(b, x))
	sim, err := logic.New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 256; a++ {
		sim.SetPortUint("x", uint64(a))
		sim.Settle()
		got, _ := sim.PortUint("z")
		if byte(got) != Mul(byte(a), byte(a)) {
			t.Fatalf("square(%#x) = %#x, want %#x", a, got, Mul(byte(a), byte(a)))
		}
	}
}

// buildCore builds the full AES core once for the tests below.
func buildCore(t testing.TB) (*netlist.Netlist, *logic.Simulator) {
	t.Helper()
	b := netlist.NewBuilder("aes_core")
	Generate(b)
	n := b.Build()
	sim, err := logic.New(n)
	if err != nil {
		t.Fatal(err)
	}
	return n, sim
}

func TestStructuralAESMatchesBehavioral(t *testing.T) {
	_, sim := buildCore(t)
	drv := NewDriver(sim)

	// FIPS vector first.
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	want := []byte{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32}
	got, err := drv.Encrypt(pt, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("gate-level FIPS vector: got %x, want %x", got, want)
	}

	// Back-to-back random encryptions reusing the same core instance.
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 20; i++ {
		k := make([]byte, 16)
		p := make([]byte, 16)
		rng.Read(k)
		rng.Read(p)
		wantBuf := make([]byte, 16)
		NewCipher(k).Encrypt(wantBuf, p)
		gotBuf, err := drv.Encrypt(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBuf, wantBuf) {
			t.Fatalf("iteration %d: got %x want %x", i, gotBuf, wantBuf)
		}
	}
}

func TestCoreGateCountNearPaper(t *testing.T) {
	n, _ := buildCore(t)
	s := n.Stats("aes")
	// The paper's AES is 33083 gates in a 180 nm library. Our generator
	// should land in the same regime (tens of thousands of cells); the
	// experiment harness reports the exact number.
	if s.Cells < 15000 || s.Cells > 60000 {
		t.Fatalf("AES cell count %d far from the paper's ~33k regime", s.Cells)
	}
	if s.Sequential < 128+128+4+2-1 {
		t.Fatalf("AES has too few flip-flops: %d", s.Sequential)
	}
	t.Logf("AES core: %d cells (%.0f GE), %d flip-flops", s.Cells, s.GateEquivalent, s.Sequential)
}

func TestCoreRegionsTagged(t *testing.T) {
	n, _ := buildCore(t)
	for _, prefix := range []string{"aes/ctrl", "aes/keysched", "aes/round"} {
		if n.Stats(prefix).Cells == 0 {
			t.Errorf("no cells tagged %s", prefix)
		}
	}
	if n.Stats("aes/round/sbox0").Cells == 0 {
		t.Error("datapath S-boxes not tagged")
	}
}

func TestDriverErrors(t *testing.T) {
	_, sim := buildCore(t)
	drv := NewDriver(sim)
	if _, err := drv.Encrypt(make([]byte, 8), make([]byte, 16)); err == nil {
		t.Fatal("short plaintext must error")
	}
	if _, err := drv.Encrypt(make([]byte, 16), make([]byte, 8)); err == nil {
		t.Fatal("short key must error")
	}
}

func BenchmarkStructuralEncrypt(b *testing.B) {
	_, sim := buildCore(b)
	drv := NewDriver(sim)
	key := make([]byte, 16)
	pt := make([]byte, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt[0] = byte(i)
		if _, err := drv.Encrypt(pt, key); err != nil {
			b.Fatal(err)
		}
	}
}
