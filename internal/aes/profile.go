package aes

import (
	"sync"

	"emtrust/internal/logic"
	"emtrust/internal/netlist"
)

// SBoxToggleCharge returns, for every input value x, the switching
// charge (coulombs) drawn by one structural S-box cone when its input
// changes from 0x00 to x — the per-byte leakage profile of the load
// edge. Side-channel work calls this a profiled (template) model; here
// the template comes from the very netlist generator that built the
// chip, so it is exact up to placement.
func SBoxToggleCharge() [256]float64 {
	profileOnce.Do(buildProfile)
	return sboxProfile
}

var (
	profileOnce sync.Once
	sboxProfile [256]float64
)

func buildProfile() {
	b := netlist.NewBuilder("sbox_profile")
	in := b.Input("x", 8)
	b.Output("y", sboxNet(b, in))
	n := b.Build()
	sim, err := logic.New(n)
	if err != nil {
		panic(err) // generator bug: the S-box netlist must be acyclic
	}
	charge := make([]float64, len(n.Cells))
	for i, c := range n.Cells {
		charge[i] = c.Type.SwitchingCharge()
	}
	var total float64
	sim.OnToggle = func(cell int, _ bool) { total += charge[cell] }
	for x := 0; x < 256; x++ {
		// Settle at zero without counting, then transition to x.
		sim.OnToggle = nil
		sim.SetPortUint("x", 0)
		sim.Settle()
		total = 0
		sim.OnToggle = func(cell int, _ bool) { total += charge[cell] }
		sim.SetPortUint("x", uint64(x))
		sim.Settle()
		sboxProfile[x] = total
	}
}
