package aes

import (
	"fmt"

	"emtrust/internal/logic"
)

// BytesToBits expands a byte block into a bus bit slice: byte i occupies
// bits 8i..8i+7, LSB first — the bus convention of the structural core.
func BytesToBits(block []byte) []uint8 {
	bits := make([]uint8, 8*len(block))
	for i, by := range block {
		for k := 0; k < 8; k++ {
			bits[8*i+k] = by >> uint(k) & 1
		}
	}
	return bits
}

// BitsToBytes packs a bus bit slice back into bytes (inverse of
// BytesToBits). The bit slice length must be a multiple of 8.
func BitsToBytes(bits []uint8) []byte {
	if len(bits)%8 != 0 {
		panic(fmt.Sprintf("aes: BitsToBytes needs a multiple of 8 bits, got %d", len(bits)))
	}
	out := make([]byte, len(bits)/8)
	for i := range out {
		var by byte
		for k := 0; k < 8; k++ {
			if bits[8*i+k] != 0 {
				by |= 1 << uint(k)
			}
		}
		out[i] = by
	}
	return out
}

// Driver runs encryptions on a simulated netlist that exposes the
// standard AES core ports.
type Driver struct {
	Sim *logic.Simulator
}

// NewDriver wraps a simulator whose netlist contains the AES core ports.
func NewDriver(sim *logic.Simulator) *Driver { return &Driver{Sim: sim} }

// Encrypt runs one complete encryption (Latency cycles plus the handshake
// cycle) and returns the ciphertext. Trojan control and activity
// recording happen through the simulator's callbacks; Encrypt only drives
// the protocol.
func (d *Driver) Encrypt(pt, key []byte) ([]byte, error) {
	if len(pt) != 16 || len(key) != 16 {
		return nil, fmt.Errorf("aes: Encrypt needs 16-byte pt and key, got %d/%d", len(pt), len(key))
	}
	s := d.Sim
	if err := s.SetPortBits(PortPT, BytesToBits(pt)); err != nil {
		return nil, err
	}
	if err := s.SetPortBits(PortKey, BytesToBits(key)); err != nil {
		return nil, err
	}
	if err := s.SetPortUint(PortStart, 1); err != nil {
		return nil, err
	}
	s.Settle() // propagate inputs to register D pins before the edge
	s.Tick()   // load edge: state <- pt^key
	if err := s.SetPortUint(PortStart, 0); err != nil {
		return nil, err
	}
	s.Settle()
	for i := 0; i < Latency-1; i++ {
		s.Tick()
	}
	done, err := s.PortUint(PortDone)
	if err != nil {
		return nil, err
	}
	if done != 1 {
		return nil, fmt.Errorf("aes: done not asserted after %d cycles", Latency)
	}
	bits, err := s.PortBits(PortCT)
	if err != nil {
		return nil, err
	}
	return BitsToBytes(bits), nil
}
