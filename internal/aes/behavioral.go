package aes

// This file implements the behavioral AES-128 model. The state follows
// FIPS-197 conventions: state[r][c] corresponds to input byte in[r+4c],
// kept here as a flat [16]byte indexed r+4c.

// sbox and invAffine are derived, not hardcoded, so the math is the single
// source of truth shared with the structural generator.
var sbox = buildSbox()

func buildSbox() [256]byte {
	var s [256]byte
	for x := 0; x < 256; x++ {
		s[x] = affine(Inv(byte(x)))
	}
	return s
}

// affine applies the AES affine transformation to the field inverse.
func affine(b byte) byte {
	var out byte
	for i := 0; i < 8; i++ {
		bit := b >> uint(i) & 1
		bit ^= b >> uint((i+4)%8) & 1
		bit ^= b >> uint((i+5)%8) & 1
		bit ^= b >> uint((i+6)%8) & 1
		bit ^= b >> uint((i+7)%8) & 1
		bit ^= 0x63 >> uint(i) & 1
		out |= bit << uint(i)
	}
	return out
}

// SBox returns the AES S-box value for x.
func SBox(x byte) byte { return sbox[x] }

// rcon holds the round constants for rounds 1..10.
var rcon = [11]byte{0, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}

// Rcon returns the round constant for round r (1..10).
func Rcon(r int) byte { return rcon[r] }

// Cipher is a behavioral AES-128 encryption engine with a fixed expanded
// key.
type Cipher struct {
	roundKeys [11][16]byte // indexed [round][r+4c]
}

// NewCipher expands a 16-byte key. It panics on a wrong key length (a
// programming error in this codebase, which only ever uses AES-128).
func NewCipher(key []byte) *Cipher {
	if len(key) != 16 {
		panic("aes: NewCipher requires a 16-byte key")
	}
	c := &Cipher{}
	// Key expansion over 4-byte words w[0..43].
	var w [44][4]byte
	for i := 0; i < 4; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	for i := 4; i < 44; i++ {
		t := w[i-1]
		if i%4 == 0 {
			t = [4]byte{
				sbox[t[1]] ^ rcon[i/4],
				sbox[t[2]],
				sbox[t[3]],
				sbox[t[0]],
			}
		}
		for k := 0; k < 4; k++ {
			w[i][k] = w[i-4][k] ^ t[k]
		}
	}
	for round := 0; round < 11; round++ {
		for col := 0; col < 4; col++ {
			for row := 0; row < 4; row++ {
				c.roundKeys[round][row+4*col] = w[4*round+col][row]
			}
		}
	}
	return c
}

// RoundKey returns round key r (0..10) in r+4c order.
func (c *Cipher) RoundKey(r int) [16]byte { return c.roundKeys[r] }

// Encrypt encrypts one 16-byte block. dst and src may overlap.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < 16 || len(dst) < 16 {
		panic("aes: Encrypt requires 16-byte blocks")
	}
	var s [16]byte
	// Load: state[r][c] = in[r+4c]; our flat layout matches the input.
	copy(s[:], src[:16])
	addRoundKey(&s, &c.roundKeys[0])
	for round := 1; round <= 9; round++ {
		subBytes(&s)
		shiftRows(&s)
		mixColumns(&s)
		addRoundKey(&s, &c.roundKeys[round])
	}
	subBytes(&s)
	shiftRows(&s)
	addRoundKey(&s, &c.roundKeys[10])
	copy(dst[:16], s[:])
}

func subBytes(s *[16]byte) {
	for i, v := range s {
		s[i] = sbox[v]
	}
}

// shiftRows rotates row r left by r. Index = r + 4c.
func shiftRows(s *[16]byte) {
	var t [16]byte
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			t[r+4*c] = s[r+4*((c+r)%4)]
		}
	}
	*s = t
}

func mixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		col := s[4*c : 4*c+4]
		a0, a1, a2, a3 := col[0], col[1], col[2], col[3]
		col[0] = XTime(a0) ^ XTime(a1) ^ a1 ^ a2 ^ a3
		col[1] = a0 ^ XTime(a1) ^ XTime(a2) ^ a2 ^ a3
		col[2] = a0 ^ a1 ^ XTime(a2) ^ XTime(a3) ^ a3
		col[3] = XTime(a0) ^ a0 ^ a1 ^ a2 ^ XTime(a3)
	}
}

func addRoundKey(s, k *[16]byte) {
	for i := range s {
		s[i] ^= k[i]
	}
}
