// Package aes provides two implementations of AES-128: a behavioral
// software model (verified against crypto/aes) and a structural gate-level
// netlist generator whose S-boxes compute the GF(2^8) inversion as an
// explicit x^254 exponentiation circuit. The gate-level design is the
// "target circuit" of the paper: a 128-bit AES in 180 nm with roughly
// 33 k gates (Table I).
package aes

// Poly is the AES field polynomial x^8 + x^4 + x^3 + x + 1.
const Poly = 0x11b

// Mul multiplies two elements of GF(2^8) modulo Poly.
func Mul(a, b byte) byte {
	var p uint16
	x := uint16(a)
	for i := 0; i < 8; i++ {
		if b>>uint(i)&1 == 1 {
			p ^= x << uint(i)
		}
	}
	return reduce(p)
}

// reduce folds a 15-bit polynomial product back into GF(2^8).
func reduce(p uint16) byte {
	for i := 14; i >= 8; i-- {
		if p>>uint(i)&1 == 1 {
			p ^= uint16(Poly) << uint(i-8)
		}
	}
	return byte(p)
}

// Inv returns the multiplicative inverse of a in GF(2^8) (0 maps to 0, as
// the AES S-box requires).
func Inv(a byte) byte {
	// a^254 via square-and-multiply: the same addition chain the
	// structural S-box uses, so the software model exercises identical
	// math.
	if a == 0 {
		return 0
	}
	x2 := Mul(a, a)
	x3 := Mul(x2, a)
	x6 := Mul(x3, x3)
	x12 := Mul(x6, x6)
	x15 := Mul(x12, x3)
	x30 := Mul(x15, x15)
	x60 := Mul(x30, x30)
	x120 := Mul(x60, x60)
	x240 := Mul(x120, x120)
	x252 := Mul(x240, x12)
	return Mul(x252, x2)
}

// XTime multiplies by x (i.e. 2) in GF(2^8).
func XTime(a byte) byte {
	v := uint16(a) << 1
	if v&0x100 != 0 {
		v ^= Poly
	}
	return byte(v)
}

// reductionMask returns the GF(2^8) representation of x^k for k in
// [0, 14]: the constants the structural multiplier uses to fold high
// partial-product columns back into the byte.
func reductionMask(k int) byte {
	if k < 8 {
		return 1 << uint(k)
	}
	return reduce(1 << uint(k))
}

// squareMask returns the GF(2^8) representation of (x^i)^2 = x^(2i),
// the column of the linear squaring map for input bit i.
func squareMask(i int) byte { return reductionMask(2 * i) }
