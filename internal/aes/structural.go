package aes

import (
	"fmt"

	"emtrust/internal/netlist"
)

// Structural generator for the gate-level AES-128 core.
//
// Interface of the generated module:
//
//	inputs:  pt[128], key[128], start[1]
//	outputs: ct[128], done[1], busy[1]
//
// Bit b of the pt/ct/key buses is bit (b%8) of byte (b/8) in FIPS input
// order, so byte i of a []byte block maps to bus bits 8i..8i+7 (LSB
// first).
//
// The core is iterative: one AES round per clock cycle with an on-the-fly
// key schedule, 20 S-boxes total (16 datapath + 4 key schedule), exactly
// the micro-architecture class the paper fabricates (about 33 k gates in
// 180 nm, Table I).

// Ports used by the generated AES core.
const (
	PortPT    = "pt"
	PortKey   = "key"
	PortStart = "start"
	PortCT    = "ct"
	PortDone  = "done"
	PortBusy  = "busy"
)

// Latency is the number of clock cycles from asserting start to done:
// one load cycle plus ten round cycles.
const Latency = 11

// Generate builds the AES core into b under the region tag "aes". It
// returns the module's port nets for callers that embed the core in a
// larger design (the chip model wires Trojans to these).
type Core struct {
	PT, Key []netlist.Net
	Start   netlist.Net
	CT      []netlist.Net
	Done    netlist.Net
	Busy    netlist.Net
	// State exposes the 128 state-register outputs; Trojans tap these
	// internal nets exactly as a foundry-inserted Trojan would.
	State []netlist.Net
	// RoundKey exposes the 128 round-key register outputs (the running
	// key material that leakage Trojans target).
	RoundKey []netlist.Net
}

// Generate constructs the gate-level AES-128 core inside the builder and
// declares its ports. The caller provides pt, key and start nets (usually
// freshly declared inputs).
func Generate(b *netlist.Builder) *Core {
	b.PushRegion("aes")
	defer b.PopRegion()

	pt := b.Input(PortPT, 128)
	key := b.Input(PortKey, 128)
	start := b.Input(PortStart, 1)[0]

	core := generateBody(b, pt, key, start)
	b.Output(PortCT, core.CT)
	b.Output(PortDone, []netlist.Net{core.Done})
	b.Output(PortBusy, []netlist.Net{core.Busy})
	return core
}

// generateBody builds the AES datapath and control given already-existing
// input nets. Split out so tests and the chip model can compose it.
func generateBody(b *netlist.Builder, pt, key []netlist.Net, start netlist.Net) *Core {
	if len(pt) != 128 || len(key) != 128 {
		panic(fmt.Sprintf("aes: Generate needs 128-bit pt/key, got %d/%d", len(pt), len(key)))
	}

	// --- Control -----------------------------------------------------
	b.PushRegion("ctrl")
	// running flip-flop: set by start, cleared after the final round.
	roundQ := make([]netlist.Net, 4) // round counter register outputs
	roundCells := make([]int, 4)     // cell indices for later patching
	running := b.Reg(b.Low())        // D patched below
	runningCell := b.NumCells() - 1  // index of the running DFF
	for i := range roundQ {
		roundQ[i] = b.Reg(b.Low()) // D patched below
		roundCells[i] = b.NumCells() - 1
	}
	isFinal := b.EqualsConst(roundQ, 10)
	// running' = start OR (running AND NOT final)
	keepRunning := b.And(running, b.Not(isFinal))
	runningD := b.Or(start, keepRunning)
	b.PatchCellInput(runningCell, 0, runningD)
	// round' = start ? 1 : running ? round+1 : round
	inc := b.Incrementer(roundQ)
	held := b.MuxBus(roundQ, inc, running)
	loaded := b.MuxBus(held, b.ConstBus(1, 4), start)
	for i, ci := range roundCells {
		b.PatchCellInput(ci, 0, loaded[i])
	}
	// done pulses one cycle after the final round completes.
	doneD := b.And(running, isFinal)
	done := b.Reg(doneD)
	stateEn := b.Or(start, running)
	b.PopRegion()

	// --- Key schedule ------------------------------------------------
	b.PushRegion("keysched")
	rkeyQ := make([]netlist.Net, 128)
	rkeyCells := make([]int, 128)
	for i := range rkeyQ {
		rkeyQ[i] = b.RegE(b.Low(), stateEn) // D patched below
		rkeyCells[i] = b.NumCells() - 1
	}
	rconBus := rconDecoder(b, roundQ)
	nextKey := keyExpand(b, rkeyQ, rconBus)
	for i, ci := range rkeyCells {
		d := b.Mux(nextKey[i], key[i], start)
		b.PatchCellInput(ci, 0, d)
	}
	b.PopRegion()

	// --- Datapath ----------------------------------------------------
	b.PushRegion("round")
	stateQ := make([]netlist.Net, 128)
	stateCells := make([]int, 128)
	for i := range stateQ {
		stateQ[i] = b.RegE(b.Low(), stateEn) // D patched below
		stateCells[i] = b.NumCells() - 1
	}
	sb := subBytesNet(b, stateQ)
	sr := shiftRowsNet(sb)
	mc := mixColumnsNet(b, sr)
	normal := b.XorBus(mc, nextKey)
	final := b.XorBus(sr, nextKey)
	roundOut := b.MuxBus(normal, final, isFinal)
	load := b.XorBus(pt, key)
	for i, ci := range stateCells {
		d := b.Mux(roundOut[i], load[i], start)
		b.PatchCellInput(ci, 0, d)
	}
	b.PopRegion()

	return &Core{
		PT: pt, Key: key, Start: start,
		CT: stateQ, Done: done, Busy: stateEn,
		State: stateQ, RoundKey: rkeyQ,
	}
}

// rconDecoder produces the 8-bit round constant as a function of the
// 4-bit round counter.
func rconDecoder(b *netlist.Builder, round []netlist.Net) []netlist.Net {
	// one-hot round match terms for rounds 1..10
	match := make([]netlist.Net, 11)
	for r := 1; r <= 10; r++ {
		match[r] = b.EqualsConst(round, uint64(r))
	}
	out := make([]netlist.Net, 8)
	for bit := 0; bit < 8; bit++ {
		var terms []netlist.Net
		for r := 1; r <= 10; r++ {
			if Rcon(r)>>uint(bit)&1 == 1 {
				terms = append(terms, match[r])
			}
		}
		out[bit] = b.ReduceOr(terms)
	}
	return out
}

// keyExpand computes the next 128-bit round key from the current one and
// the round constant, following the AES-128 schedule. Bit layout matches
// the pt/key buses: byte i at bits 8i..8i+7, where byte index is the FIPS
// key byte order (word w = bytes 4w..4w+3).
func keyExpand(b *netlist.Builder, rkey, rcon []netlist.Net) []netlist.Net {
	byteOf := func(bus []netlist.Net, i int) []netlist.Net { return bus[8*i : 8*i+8] }
	// temp = SubWord(RotWord(w3)) ^ (rcon, 0, 0, 0)
	// w3 bytes are key bytes 12..15; RotWord gives (13, 14, 15, 12).
	rot := [4]int{13, 14, 15, 12}
	temp := make([][]netlist.Net, 4)
	for k := 0; k < 4; k++ {
		s := sboxNet(b, byteOf(rkey, rot[k]))
		if k == 0 {
			s = b.XorBus(s, rcon)
		}
		temp[k] = s
	}
	out := make([]netlist.Net, 128)
	prev := temp[:]
	for w := 0; w < 4; w++ {
		next := make([][]netlist.Net, 4)
		for k := 0; k < 4; k++ {
			nb := b.XorBus(byteOf(rkey, 4*w+k), prev[k])
			next[k] = nb
			copy(out[8*(4*w+k):], nb)
		}
		prev = next
	}
	return out
}

// subBytesNet instantiates 16 S-boxes over the 128-bit state.
func subBytesNet(b *netlist.Builder, state []netlist.Net) []netlist.Net {
	out := make([]netlist.Net, 128)
	for i := 0; i < 16; i++ {
		b.PushRegion(fmt.Sprintf("sbox%d", i))
		copy(out[8*i:], sboxNet(b, state[8*i:8*i+8]))
		b.PopRegion()
	}
	return out
}

// shiftRowsNet permutes state bytes; pure wiring, no gates. State byte
// index is r+4c (FIPS layout), matching the behavioral model.
func shiftRowsNet(state []netlist.Net) []netlist.Net {
	out := make([]netlist.Net, 128)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			src := r + 4*((c+r)%4)
			dst := r + 4*c
			copy(out[8*dst:8*dst+8], state[8*src:8*src+8])
		}
	}
	return out
}

// mixColumnsNet builds the MixColumns XOR network.
func mixColumnsNet(b *netlist.Builder, state []netlist.Net) []netlist.Net {
	out := make([]netlist.Net, 128)
	byteOf := func(i int) []netlist.Net { return state[8*i : 8*i+8] }
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := byteOf(4*c), byteOf(4*c+1), byteOf(4*c+2), byteOf(4*c+3)
		x0, x1, x2, x3 := xtimeNet(b, a0), xtimeNet(b, a1), xtimeNet(b, a2), xtimeNet(b, a3)
		rows := [][]netlist.Net{
			xorMany(b, x0, x1, a1, a2, a3),
			xorMany(b, a0, x1, x2, a2, a3),
			xorMany(b, a0, a1, x2, x3, a3),
			xorMany(b, x0, a0, a1, a2, x3),
		}
		for r, row := range rows {
			copy(out[8*(r+4*c):], row)
		}
	}
	return out
}

// xtimeNet multiplies a byte bus by 2 in GF(2^8): shift left and fold the
// carry through the field polynomial (bits 0,1,3,4 get the carry).
func xtimeNet(b *netlist.Builder, a []netlist.Net) []netlist.Net {
	out := make([]netlist.Net, 8)
	carry := a[7]
	for i := 7; i >= 1; i-- {
		out[i] = a[i-1]
	}
	out[0] = carry
	for _, bit := range []int{1, 3, 4} {
		out[bit] = b.Xor(out[bit], carry)
	}
	return out
}

func xorMany(b *netlist.Builder, buses ...[]netlist.Net) []netlist.Net {
	acc := buses[0]
	for _, x := range buses[1:] {
		acc = b.XorBus(acc, x)
	}
	return acc
}

// sboxNet builds one AES S-box over an 8-bit bus: GF(2^8) inversion as
// x^254 followed by the affine transformation.
func sboxNet(b *netlist.Builder, x []netlist.Net) []netlist.Net {
	x2 := gfSquareNet(b, x)
	x3 := gfMulNet(b, x2, x)
	x6 := gfSquareNet(b, x3)
	x12 := gfSquareNet(b, x6)
	x15 := gfMulNet(b, x12, x3)
	x30 := gfSquareNet(b, x15)
	x60 := gfSquareNet(b, x30)
	x120 := gfSquareNet(b, x60)
	x240 := gfSquareNet(b, x120)
	x252 := gfMulNet(b, x240, x12)
	inv := gfMulNet(b, x252, x2)
	return affineNet(b, inv)
}

// gfMulNet builds a full GF(2^8) multiplier: 64 partial products folded
// through the field polynomial.
func gfMulNet(b *netlist.Builder, x, y []netlist.Net) []netlist.Net {
	// terms[m] collects the nets that XOR into output bit m.
	var terms [8][]netlist.Net
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			pp := b.And(x[i], y[j])
			mask := reductionMask(i + j)
			for m := 0; m < 8; m++ {
				if mask>>uint(m)&1 == 1 {
					terms[m] = append(terms[m], pp)
				}
			}
		}
	}
	out := make([]netlist.Net, 8)
	for m := range out {
		out[m] = b.ReduceXor(terms[m])
	}
	return out
}

// gfSquareNet builds the linear squaring map of GF(2^8).
func gfSquareNet(b *netlist.Builder, x []netlist.Net) []netlist.Net {
	var terms [8][]netlist.Net
	for i := 0; i < 8; i++ {
		mask := squareMask(i)
		for m := 0; m < 8; m++ {
			if mask>>uint(m)&1 == 1 {
				terms[m] = append(terms[m], x[i])
			}
		}
	}
	out := make([]netlist.Net, 8)
	for m := range out {
		out[m] = b.ReduceXor(terms[m])
	}
	return out
}

// affineNet applies the AES affine transformation y = M*x ^ 0x63.
func affineNet(b *netlist.Builder, x []netlist.Net) []netlist.Net {
	out := make([]netlist.Net, 8)
	for i := 0; i < 8; i++ {
		bit := b.Xor(x[i], x[(i+4)%8])
		bit = b.Xor(bit, x[(i+5)%8])
		bit = b.Xor(bit, x[(i+6)%8])
		bit = b.Xor(bit, x[(i+7)%8])
		if 0x63>>uint(i)&1 == 1 {
			bit = b.Not(bit)
		}
		out[i] = bit
	}
	return out
}
