package trace

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"emtrust/internal/dsp"
)

func TestTraceBasics(t *testing.T) {
	tr := &Trace{Dt: 1e-6, Samples: []float64{1, 2, 3}}
	if tr.Duration() != 3e-6 {
		t.Fatalf("duration = %g", tr.Duration())
	}
	cl := tr.Clone()
	cl.Samples[0] = 99
	if tr.Samples[0] != 1 {
		t.Fatal("Clone aliases")
	}
	csv := tr.CSV()
	if !strings.HasPrefix(csv, "time_s,voltage_v\n") || strings.Count(csv, "\n") != 4 {
		t.Fatalf("csv = %q", csv)
	}
}

func TestAcquireAddsCalibratedNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := SimulationChannel(0.01)
	clean := make([]float64, 16384)
	tr := a.Acquire(clean, 1e-8, rng)
	rms := dsp.RMS(tr.Samples)
	if math.Abs(rms-0.01) > 0.001 {
		t.Fatalf("noise RMS = %g, want ~0.01", rms)
	}
}

func TestAcquirePreservesSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := SimulationChannel(0)
	clean := []float64{1, -1, 0.5}
	tr := a.Acquire(clean, 1e-8, rng)
	for i, v := range clean {
		if tr.Samples[i] != v {
			t.Fatal("noiseless channel must be transparent")
		}
	}
	if tr.Dt != 1e-8 {
		t.Fatal("dt lost")
	}
}

func TestAcquireGain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Acquisition{Gain: 10}
	tr := a.Acquire([]float64{1}, 1e-8, rng)
	if tr.Samples[0] != 10 {
		t.Fatalf("gain not applied: %g", tr.Samples[0])
	}
	// Zero gain defaults to unity, so a zero-valued Acquisition is usable.
	b := Acquisition{}
	tr = b.Acquire([]float64{1}, 1e-8, rng)
	if tr.Samples[0] != 1 {
		t.Fatal("zero gain must default to 1")
	}
}

func TestMeasurementChannelInterference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := MeasurementChannel(0, 0.1, 1)
	a.ADCBits = 0 // isolate the interference
	tr := a.Acquire(make([]float64, 65536), 1e-7, rng)
	rms := dsp.RMS(tr.Samples)
	if math.Abs(rms-0.1) > 0.02 {
		t.Fatalf("interference RMS = %g, want ~0.1", rms)
	}
	// Interference must concentrate at the configured tone.
	spec := dsp.NewSpectrum(tr.Samples, 1e-7, dsp.Hann)
	peak := spec.TopPeaks(1, 0)[0]
	if math.Abs(peak.Frequency-a.InterferenceHz) > 5*spec.DF {
		t.Fatalf("interference peak at %g, want %g", peak.Frequency, a.InterferenceHz)
	}
}

func TestQuantization(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Acquisition{ADCBits: 3, FullScale: 1, Gain: 1}
	in := []float64{0.999, -2, 0.1, 2}
	tr := a.Acquire(in, 1e-8, rng)
	step := 2.0 / 8
	for i, v := range tr.Samples {
		q := v / step
		if math.Abs(q-math.Round(q)) > 1e-9 {
			t.Fatalf("sample %d = %g not on the ADC grid", i, v)
		}
		if v > 1 || v < -1 {
			t.Fatalf("sample %d = %g beyond full scale", i, v)
		}
	}
}

func TestAcquireNoiseLength(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := SimulationChannel(0.05)
	tr := a.AcquireNoise(100, 1e-8, rng)
	if len(tr.Samples) != 100 {
		t.Fatalf("noise length = %d", len(tr.Samples))
	}
	if dsp.RMS(tr.Samples) == 0 {
		t.Fatal("noise record silent")
	}
}

func TestSetMatrix(t *testing.T) {
	var s Set
	if _, err := s.Matrix(); err == nil {
		t.Fatal("empty set must error")
	}
	s.Add(&Trace{Dt: 1, Samples: []float64{1, 2, 3}})
	s.Add(&Trace{Dt: 1, Samples: []float64{4, 5}})
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	rows, err := s.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rows[0]) != 2 || len(rows[1]) != 2 {
		t.Fatalf("matrix shape wrong: %v", rows)
	}
	if rows[0][0] != 1 || rows[1][1] != 5 {
		t.Fatal("matrix values wrong")
	}
}
