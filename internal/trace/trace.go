// Package trace models the measurement chain between the coil and the
// data-analysis module: additive environment noise, oscilloscope
// sampling, and ADC quantization. The split between "simulation mode"
// (Section IV: white noise only) and "measurement mode" (Section V:
// extra interference, worse for the external probe) lives in the
// acquisition configuration.
package trace

import (
	"fmt"
	"math"
	"strings"
)

// Rand is the slice of randomness the measurement chain consumes: one
// uniform draw for the interference phase, one normal draw per sample
// for environment noise, and the occasional bounded integer for fault
// injection run lengths (internal/degrade). Both *math/rand.Rand and
// the repo's concrete *frand.Rand satisfy it; the fleet hot path passes
// the latter so every per-sample draw compiles to direct arithmetic
// instead of two interface hops.
type Rand interface {
	Float64() float64
	NormFloat64() float64
	Intn(n int) int
}

// Trace is a sampled voltage record.
type Trace struct {
	Dt      float64 // sample spacing in seconds
	Samples []float64
}

// Duration returns the trace length in seconds.
func (t *Trace) Duration() float64 { return float64(len(t.Samples)) * t.Dt }

// Clone returns a deep copy.
func (t *Trace) Clone() *Trace {
	s := make([]float64, len(t.Samples))
	copy(s, t.Samples)
	return &Trace{Dt: t.Dt, Samples: s}
}

// CSV renders the trace as "time,voltage" lines for external plotting.
func (t *Trace) CSV() string {
	var sb strings.Builder
	sb.WriteString("time_s,voltage_v\n")
	for i, v := range t.Samples {
		fmt.Fprintf(&sb, "%.9e,%.9e\n", float64(i)*t.Dt, v)
	}
	return sb.String()
}

// Channel converts a clean coil waveform into a measured trace. The
// concrete Acquisition models a healthy front end; wrappers (see
// internal/degrade) can interpose fault injection between the coil and
// the data-analysis module without the experiments noticing.
type Channel interface {
	Acquire(clean []float64, dt float64, rng Rand) *Trace
}

// ScaledAcquirer is the allocation-free fast path of a Channel: it
// writes the measured record into dst (reusing dst.Samples when the
// capacity suffices) and folds a caller-supplied amplitude scale into
// the front-end gain, so a common-mode gain wobble costs no separate
// copy pass. Acquire(clean, dt, rng) must equal
// AcquireScaledInto(new, clean, 1, dt, rng) bit for bit.
type ScaledAcquirer interface {
	AcquireScaledInto(dst *Trace, clean []float64, scale, dt float64, rng Rand) *Trace
}

// Acquisition models one measurement channel (sensor or probe).
type Acquisition struct {
	// NoiseRMS is the RMS of the additive white Gaussian environment
	// noise referred to the coil output (volts). The paper's on-chip
	// sensor sees far less of it than the external probe.
	NoiseRMS float64
	// InterferenceRMS adds narrowband mains-and-lab interference, the
	// reason the fabricated chip's external probe SNR (13.87 dB) is
	// worse than its simulated one (17.48 dB). Zero in simulation mode.
	InterferenceRMS float64
	// InterferenceHz is the interference tone frequency.
	InterferenceHz float64
	// ADCBits and FullScale quantize the record like the oscilloscope;
	// ADCBits <= 0 disables quantization.
	ADCBits   int
	FullScale float64
	// Gain is the analog front-end gain applied before the ADC.
	Gain float64
}

// SimulationChannel returns the Section IV acquisition: white noise only.
func SimulationChannel(noiseRMS float64) Acquisition {
	return Acquisition{NoiseRMS: noiseRMS, Gain: 1}
}

// MeasurementChannel returns the Section V acquisition: white noise plus
// narrowband interference and 8-bit oscilloscope quantization.
func MeasurementChannel(noiseRMS, interferenceRMS, fullScale float64) Acquisition {
	return Acquisition{
		NoiseRMS:        noiseRMS,
		InterferenceRMS: interferenceRMS,
		InterferenceHz:  50e3,
		ADCBits:         8,
		FullScale:       fullScale,
		Gain:            1,
	}
}

// Acquire converts a clean coil waveform into a measured trace: gain,
// noise, interference, quantization. The rng makes captures reproducible;
// phase of the interference tone is randomized per capture, as on a real
// unsynchronized scope.
func (a Acquisition) Acquire(clean []float64, dt float64, rng Rand) *Trace {
	return a.AcquireScaledInto(&Trace{}, clean, 1, dt, rng)
}

// AcquireScaledInto implements ScaledAcquirer: Acquire with the clean
// waveform pre-multiplied by scale, written into dst. dst.Samples is
// reused when its capacity suffices; the rng draw order (interference
// phase first, then one normal draw per sample) matches Acquire
// exactly, so reseeded streams reproduce the allocating path bit for
// bit. scale*gain is applied as (v*scale)*g, two rounded multiplies,
// matching a caller that scaled the waveform itself before acquiring.
func (a Acquisition) AcquireScaledInto(dst *Trace, clean []float64, scale, dt float64, rng Rand) *Trace {
	g := a.Gain
	if g == 0 {
		g = 1
	}
	out := dst.Samples
	if cap(out) < len(clean) {
		out = make([]float64, len(clean))
	} else {
		out = out[:len(clean)]
	}
	phase := rng.Float64() * 2 * math.Pi
	for i, v := range clean {
		s := (v * scale) * g
		if a.NoiseRMS > 0 {
			s += rng.NormFloat64() * a.NoiseRMS
		}
		if a.InterferenceRMS > 0 {
			s += a.InterferenceRMS * math.Sqrt2 * math.Sin(2*math.Pi*a.InterferenceHz*float64(i)*dt+phase)
		}
		out[i] = s
	}
	if a.ADCBits > 0 && a.FullScale > 0 {
		quantize(out, a.ADCBits, a.FullScale)
	}
	dst.Dt = dt
	dst.Samples = out
	return dst
}

// AcquireNoise captures a record with no signal (the chip idling), used
// for the separate-noise-measurement SNR protocol of Section V-A.
func (a Acquisition) AcquireNoise(n int, dt float64, rng Rand) *Trace {
	return a.Acquire(make([]float64, n), dt, rng)
}

// quantize rounds samples to the ADC grid and clips at full scale.
func quantize(x []float64, bits int, fullScale float64) {
	levels := float64(int64(1) << uint(bits))
	step := 2 * fullScale / levels
	for i, v := range x {
		if v > fullScale {
			v = fullScale
		}
		if v < -fullScale {
			v = -fullScale
		}
		x[i] = math.Round(v/step) * step
	}
}

// Set is a collection of traces from the same channel and workload.
type Set struct {
	Traces []*Trace
}

// Add appends a trace.
func (s *Set) Add(t *Trace) { s.Traces = append(s.Traces, t) }

// Len returns the number of traces.
func (s *Set) Len() int { return len(s.Traces) }

// Matrix flattens the set into rows of samples, truncating every trace
// to the shortest length so the rows are rectangular.
func (s *Set) Matrix() ([][]float64, error) {
	if len(s.Traces) == 0 {
		return nil, fmt.Errorf("trace: empty set")
	}
	minLen := len(s.Traces[0].Samples)
	for _, t := range s.Traces {
		if len(t.Samples) < minLen {
			minLen = len(t.Samples)
		}
	}
	rows := make([][]float64, len(s.Traces))
	for i, t := range s.Traces {
		rows[i] = t.Samples[:minLen]
	}
	return rows, nil
}
