package layout

import (
	"strings"
	"testing"

	"emtrust/internal/aes"
	"emtrust/internal/netlist"
	"emtrust/internal/trojan"
)

func buildFullDesign(t testing.TB) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("chip")
	core := aes.Generate(b)
	for _, k := range trojan.Kinds() {
		trojan.Generate(b, core, k, trojan.DefaultConfig())
	}
	return b.Build()
}

func TestPlaceBasics(t *testing.T) {
	n := buildFullDesign(t)
	fp, err := Place(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fp.Die.X <= 0 || fp.Die.Y <= 0 {
		t.Fatal("degenerate die")
	}
	// 180 nm, ~45k GE: die side should be on the order of a millimeter.
	if fp.Die.X < 0.3e-3 || fp.Die.X > 5e-3 {
		t.Fatalf("die side %g m implausible for 180 nm", fp.Die.X)
	}
	if len(fp.Positions) != len(n.Cells) {
		t.Fatal("not every cell placed")
	}
	for i, p := range fp.Positions {
		if p.X < 0 || p.X > fp.Die.X || p.Y < 0 || p.Y > fp.Die.Y {
			t.Fatalf("cell %d placed off-die at %+v", i, p)
		}
	}
}

func TestRegionsSeparated(t *testing.T) {
	n := buildFullDesign(t)
	fp, err := Place(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	aesBlock, ok := fp.RegionOf("aes")
	if !ok {
		t.Fatal("no AES block")
	}
	for _, k := range trojan.Kinds() {
		blk, ok := fp.RegionOf(k.Region())
		if !ok {
			t.Fatalf("no block for %v", k)
		}
		// Trojan blocks sit in the right-edge column (Figure 3).
		if blk.X < aesBlock.X+aesBlock.W-1e-12 {
			t.Errorf("%v block at x=%g overlaps the AES block", k, blk.X)
		}
	}
	// Cells land inside their region's block.
	for i, c := range n.Cells {
		top := c.Region
		if k := strings.IndexByte(top, '/'); k >= 0 {
			top = top[:k]
		}
		blk := fp.Regions[top]
		if !blk.Contains(fp.Positions[i]) {
			t.Fatalf("cell %d (%s) at %+v outside block %+v", i, c.Region, fp.Positions[i], blk)
		}
	}
}

func TestTileGrid(t *testing.T) {
	n := buildFullDesign(t)
	cfg := DefaultConfig()
	fp, err := Place(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := fp.Grid
	if g.NumTiles() != cfg.TilesX*cfg.TilesY {
		t.Fatalf("tiles = %d", g.NumTiles())
	}
	if len(g.CellTile) != len(n.Cells) {
		t.Fatal("tile map incomplete")
	}
	// TileOf(TileCenter(t)) == t for every tile.
	for ti := 0; ti < g.NumTiles(); ti++ {
		if got := g.TileOf(g.TileCenter(ti)); got != ti {
			t.Fatalf("tile %d center maps to %d", ti, got)
		}
	}
	// Clamping.
	if g.TileOf(Point{-1, -1}) != 0 {
		t.Fatal("negative clamp broken")
	}
	if g.TileOf(Point{g.Die.X * 2, g.Die.Y * 2}) != g.NumTiles()-1 {
		t.Fatal("positive clamp broken")
	}
	if g.TileArea() <= 0 {
		t.Fatal("tile area")
	}
	// Occupancy: the AES region must spread over many tiles.
	occupied := make(map[int]bool)
	for _, ti := range g.CellTile {
		occupied[ti] = true
	}
	if len(occupied) < g.NumTiles()/4 {
		t.Fatalf("placement only touches %d of %d tiles", len(occupied), g.NumTiles())
	}
}

func TestPlaceConfigValidation(t *testing.T) {
	n := buildFullDesign(t)
	bad := DefaultConfig()
	bad.CellArea = 0
	if _, err := Place(n, bad); err == nil {
		t.Fatal("zero cell area must error")
	}
	bad = DefaultConfig()
	bad.TilesX = 0
	if _, err := Place(n, bad); err == nil {
		t.Fatal("zero tiles must error")
	}
	bad = DefaultConfig()
	bad.Utilization = 1.5
	if _, err := Place(n, bad); err == nil {
		t.Fatal("overfull utilization must error")
	}
	empty := netlist.NewBuilder("empty").Build()
	if _, err := Place(empty, DefaultConfig()); err == nil {
		t.Fatal("empty netlist must error")
	}
}

func TestSingleRegionFillsDie(t *testing.T) {
	b := netlist.NewBuilder("solo")
	in := b.Input("in", 4)
	b.SetRegion("only")
	b.Xor(in[0], in[1])
	b.Xor(in[2], in[3])
	b.Output("o", in)
	fp, err := Place(b.Build(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	blk := fp.Regions["only"]
	if blk.W != fp.Die.X || blk.H != fp.Die.Y {
		t.Fatalf("single region should fill the die, got %+v", blk)
	}
}

func TestRender(t *testing.T) {
	n := buildFullDesign(t)
	fp, err := Place(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := fp.Render(64, 96)
	if !strings.Contains(out, "a") {
		t.Fatal("render missing AES cells")
	}
	for _, digit := range []string{"1", "2", "3", "4"} {
		if !strings.Contains(out, digit) {
			t.Errorf("render missing trojan%s", digit)
		}
	}
	// Default sizing path.
	if fp.Render(0, 0) == "" {
		t.Fatal("default render empty")
	}
}
