// Package layout synthesizes a physical view of a netlist: a die outline,
// a region-clustered row placement (the counterpart of the paper's
// Figure 3 floorplan, with the AES on the left and the four Trojans in a
// column on the right), and a tile grid that aggregates cell positions for
// the EM current-distribution model.
package layout

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"emtrust/internal/netlist"
)

// Point is a position on the die in meters, origin at the lower-left die
// corner.
type Point struct {
	X, Y float64
}

// Config controls floorplanning.
type Config struct {
	// CellArea is the silicon area of one NAND2 gate equivalent in
	// square meters. The default models a 180 nm standard-cell library.
	CellArea float64
	// Utilization is the placement density (fraction of core area
	// occupied by cells).
	Utilization float64
	// TrojanColumn puts regions other than the first in a column along
	// the right die edge, like Figure 3. Width is this fraction of the
	// die.
	TrojanColumn float64
	// TilesX, TilesY set the aggregation grid resolution.
	TilesX, TilesY int
}

// DefaultConfig returns the 180 nm-flavored defaults used by the paper
// reproduction.
func DefaultConfig() Config {
	return Config{
		CellArea:     12e-12, // 12 um^2 per gate equivalent (180 nm)
		Utilization:  0.7,
		TrojanColumn: 0.18,
		TilesX:       16,
		TilesY:       16,
	}
}

// Floorplan is the placed design.
type Floorplan struct {
	Die       Point   // die dimensions (width, height) in meters
	Positions []Point // cell center per netlist cell index
	Regions   map[string]Rect
	Grid      *TileGrid
	netlist   *netlist.Netlist
}

// Rect is an axis-aligned placement block.
type Rect struct {
	X, Y, W, H float64
}

// Contains reports whether p lies inside the rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X && p.X <= r.X+r.W && p.Y >= r.Y && p.Y <= r.Y+r.H
}

// TileGrid aggregates cells into NX x NY tiles over the die.
type TileGrid struct {
	NX, NY int
	Die    Point
	// CellTile maps every netlist cell index to its tile index
	// (ty*NX + tx).
	CellTile []int
}

// NumTiles returns NX*NY.
func (g *TileGrid) NumTiles() int { return g.NX * g.NY }

// TileCenter returns the center position of tile index t.
func (g *TileGrid) TileCenter(t int) Point {
	tx, ty := t%g.NX, t/g.NX
	return Point{
		X: (float64(tx) + 0.5) * g.Die.X / float64(g.NX),
		Y: (float64(ty) + 0.5) * g.Die.Y / float64(g.NY),
	}
}

// TileArea returns the area of one tile in square meters.
func (g *TileGrid) TileArea() float64 {
	return g.Die.X * g.Die.Y / float64(g.NumTiles())
}

// TileOf returns the tile index containing point p (clamped to the die).
func (g *TileGrid) TileOf(p Point) int {
	tx := int(p.X / g.Die.X * float64(g.NX))
	ty := int(p.Y / g.Die.Y * float64(g.NY))
	if tx < 0 {
		tx = 0
	}
	if tx >= g.NX {
		tx = g.NX - 1
	}
	if ty < 0 {
		ty = 0
	}
	if ty >= g.NY {
		ty = g.NY - 1
	}
	return ty*g.NX + tx
}

// Place floorplans the netlist: the largest region (by area) fills the
// main block; every other top-level region gets a slice of a column along
// the right edge, stacked bottom to top in name order, mirroring
// Figure 3.
func Place(n *netlist.Netlist, cfg Config) (*Floorplan, error) {
	if cfg.CellArea <= 0 || cfg.Utilization <= 0 || cfg.Utilization > 1 {
		return nil, fmt.Errorf("layout: invalid config %+v", cfg)
	}
	if cfg.TilesX <= 0 || cfg.TilesY <= 0 {
		return nil, fmt.Errorf("layout: invalid tile grid %dx%d", cfg.TilesX, cfg.TilesY)
	}
	if len(n.Cells) == 0 {
		return nil, fmt.Errorf("layout: netlist %s has no cells", n.Name)
	}

	// Total core area sets the (square) die.
	totalGE := n.Stats("").GateEquivalent
	coreArea := totalGE * cfg.CellArea / cfg.Utilization
	side := math.Sqrt(coreArea)
	die := Point{X: side, Y: side}

	// Partition cells by top-level region.
	regions := n.Regions()
	cellsByRegion := make(map[string][]int)
	for i, c := range n.Cells {
		top := c.Region
		if k := strings.IndexByte(top, '/'); k >= 0 {
			top = top[:k]
		}
		cellsByRegion[top] = append(cellsByRegion[top], i)
	}
	// Main region = largest area.
	main := regions[0]
	mainGE := 0.0
	for _, r := range regions {
		ge := n.Stats(r).GateEquivalent
		if ge > mainGE {
			mainGE = ge
			main = r
		}
	}

	blocks := make(map[string]Rect, len(regions))
	if len(regions) == 1 {
		blocks[main] = Rect{0, 0, die.X, die.Y}
	} else {
		colW := die.X * cfg.TrojanColumn
		blocks[main] = Rect{0, 0, die.X - colW, die.Y}
		// Column slices proportional to region area, in sorted name
		// order bottom to top.
		var others []string
		otherGE := 0.0
		for _, r := range regions {
			if r != main {
				others = append(others, r)
				otherGE += n.Stats(r).GateEquivalent
			}
		}
		sort.Strings(others)
		y := 0.0
		for _, r := range others {
			h := die.Y * n.Stats(r).GateEquivalent / otherGE
			blocks[r] = Rect{die.X - colW, y, colW, h}
			y += h
		}
	}

	fp := &Floorplan{
		Die:       die,
		Positions: make([]Point, len(n.Cells)),
		Regions:   blocks,
		netlist:   n,
	}
	// Row placement inside each block: scan cells left to right, bottom
	// to top, advancing by each cell's own width on a fixed row height.
	rowHeight := math.Sqrt(cfg.CellArea) // square unit cell
	rowPitch := rowHeight / cfg.Utilization
	for region, cells := range cellsByRegion {
		blk := blocks[region]
		x, y := blk.X, blk.Y
		for _, ci := range cells {
			w := n.Cells[ci].Type.GateEquivalents() * cfg.CellArea / rowHeight / cfg.Utilization
			if x+w > blk.X+blk.W {
				x = blk.X
				y += rowPitch
				if y+rowHeight > blk.Y+blk.H {
					y = blk.Y // overflow wraps; density bookkeeping is approximate
				}
			}
			// Clamp centers into the block for cells wider than the
			// block or blocks shorter than one row.
			px := math.Min(x+w/2, blk.X+blk.W)
			py := math.Min(y+rowHeight/2, blk.Y+blk.H)
			fp.Positions[ci] = Point{X: px, Y: py}
			x += w
		}
	}

	grid := &TileGrid{NX: cfg.TilesX, NY: cfg.TilesY, Die: die, CellTile: make([]int, len(n.Cells))}
	for i, p := range fp.Positions {
		grid.CellTile[i] = grid.TileOf(p)
	}
	fp.Grid = grid
	return fp, nil
}

// Netlist returns the placed design.
func (f *Floorplan) Netlist() *netlist.Netlist { return f.netlist }

// RegionOf returns the placement block of a top-level region.
func (f *Floorplan) RegionOf(name string) (Rect, bool) {
	r, ok := f.Regions[name]
	return r, ok
}

// Render returns a coarse ASCII map of the floorplan (the Figure 3
// counterpart): each character cell shows the dominant region initial at
// that spot, with '.' for empty silicon.
func (f *Floorplan) Render(cols, rows int) string {
	if cols <= 0 {
		cols = 48
	}
	if rows <= 0 {
		rows = 16
	}
	grid := make([]map[byte]int, cols*rows)
	for i, p := range f.Positions {
		cx := int(p.X / f.Die.X * float64(cols))
		cy := int(p.Y / f.Die.Y * float64(rows))
		if cx < 0 || cx >= cols || cy < 0 || cy >= rows {
			continue
		}
		region := f.netlist.Cells[i].Region
		initial := byte('?')
		if region != "" {
			initial = region[0]
			// Distinguish trojan1..trojan4 by digit.
			if strings.HasPrefix(region, "trojan") && len(region) > 6 {
				initial = region[6]
			}
		}
		idx := cy*cols + cx
		if grid[idx] == nil {
			grid[idx] = make(map[byte]int)
		}
		grid[idx][initial]++
	}
	var sb strings.Builder
	for cy := rows - 1; cy >= 0; cy-- {
		for cx := 0; cx < cols; cx++ {
			m := grid[cy*cols+cx]
			best, bestN := byte('.'), 0
			for ch, n := range m {
				if n > bestN {
					best, bestN = ch, n
				}
			}
			sb.WriteByte(best)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
