package fleet

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"emtrust/internal/core"
)

// dieState is the aggregator's fixed-size view of one die. The
// aggregator's memory is exactly Dies of these plus one ranking
// snapshot — independent of how many verdicts stream through.
type dieState struct {
	count     int // accepted verdicts folded into the EWMA
	rejected  int
	confirmed int
	ewma      float64
	seen      bool
	distance  float64 // last accepted distance
	lastZ     float64 // last accepted residual z
}

// aggregator folds the verdict stream into per-die EWMAs and
// periodically re-ranks the fleet: common-mode cancellation against the
// live population median, robust re-standardization by the fleet's MAD,
// and a Benjamini-Hochberg pass that turns per-die p-values into an
// alarm list with a bounded false-discovery fraction.
type aggregator struct {
	cfg  Config
	dies []*Die

	// The stream counters are atomic, outside the mutex, so Status
	// snapshots and the chaos stall hook read them without stalling a
	// batch ingest mid-flush.
	processed atomic.Uint64
	rejected  atomic.Uint64
	confirmed atomic.Uint64

	mu        sync.Mutex
	st        []dieState
	sinceRank int
	rank      core.PopulationVerdict
	fleetSig  float64
	scores    []float64 // scratch, reused per ranking pass
	eligible  []bool
}

func newAggregator(cfg Config, dies []*Die) *aggregator {
	return &aggregator{
		cfg: cfg, dies: dies,
		st:       make([]dieState, len(dies)),
		scores:   make([]float64, len(dies)),
		eligible: make([]bool, len(dies)),
	}
}

// ingest folds one verdict in. Called only from the aggregator
// goroutine; the mutex protects concurrent Status/Alarms readers.
func (a *aggregator) ingest(v verdict) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ingestLocked(v)
}

// ingestBatch folds a drained queue batch in under one lock
// acquisition — the aggregator-side half of the batched delivery path.
func (a *aggregator) ingestBatch(vs []verdict) {
	if len(vs) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, v := range vs {
		a.ingestLocked(v)
	}
}

func (a *aggregator) ingestLocked(v verdict) {
	st := &a.st[v.die]
	a.processed.Add(1)
	if v.v.Health.Rejected {
		st.rejected++
		a.rejected.Add(1)
	} else if !math.IsNaN(v.z) && !math.IsInf(v.z, 0) {
		// Winsorize what feeds the EWMA: a persistent Trojan offset
		// saturates the cap round after round and still dominates the
		// ranking, while a single surviving burst can only buy a
		// bounded, fast-decaying bump.
		z := v.z
		if cap := 4 * a.cfg.ThresholdK; z > cap {
			z = cap
		}
		if !st.seen {
			st.ewma, st.seen = z, true
		} else {
			st.ewma = (1-a.cfg.EWMAAlpha)*st.ewma + a.cfg.EWMAAlpha*z
		}
		st.count++
		st.distance = v.v.Time.Distance
		st.lastZ = v.z
		if v.z > a.cfg.ThresholdK {
			st.confirmed++
			a.confirmed.Add(1)
		}
	}
	if a.sinceRank++; a.sinceRank >= a.cfg.RankEvery {
		a.rerankLocked()
	}
}

// rerankLocked recomputes the fleet ranking from the current per-die
// EWMAs. The per-die z-scores are already null-calibrated, but each
// die's calibration is only as good as its 16-trace null sample; the
// fleet's own robust spread (MAD about the median) re-standardizes them
// so the Benjamini-Hochberg p-values stay honest even when the
// per-die calibration is collectively off.
func (a *aggregator) rerankLocked() {
	a.sinceRank = 0
	n := 0
	for i := range a.st {
		st := &a.st[i]
		a.scores[i] = st.ewma
		a.eligible[i] = st.seen && st.count >= a.cfg.MinSamples &&
			!a.dies[i].quarantined.Load() &&
			!math.IsNaN(st.ewma) && !math.IsInf(st.ewma, 0)
		if a.eligible[i] {
			n++
		}
	}
	a.fleetSig = a.fleetSigmaLocked(n)
	pr := core.NewPopulationReference(core.PopulationConfig{
		MinCohort: a.cfg.MinCohort,
		Sigma:     a.fleetSig,
		FDR:       a.cfg.FDR,
	})
	a.rank = pr.Rank(a.scores, a.eligible)
}

// fleetSigmaLocked estimates the clean cross-die spread of the EWMA
// scores: 1.4826*MAD about the median, floored so a perfectly quiet
// fleet does not turn numerical dust into alarms. Robust, so the
// infected tail barely moves it.
func (a *aggregator) fleetSigmaLocked(n int) float64 {
	if n < a.cfg.MinCohort {
		return 1
	}
	vals := make([]float64, 0, n)
	for i := range a.st {
		if a.eligible[i] {
			vals = append(vals, a.scores[i])
		}
	}
	sort.Float64s(vals)
	med := vals[len(vals)/2]
	for i, v := range vals {
		vals[i] = math.Abs(v - med)
	}
	sort.Float64s(vals)
	sig := 1.4826 * vals[len(vals)/2]
	if sig < 0.1 {
		sig = 0.1
	}
	return sig
}

// snapshot re-ranks if new verdicts arrived and returns the aggregation
// counters plus a copy of the current ranking.
func (a *aggregator) snapshot() (processed, rejected, confirmed uint64, rank core.PopulationVerdict, fleetSig float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sinceRank > 0 || a.rank.Adjusted == nil {
		a.rerankLocked()
	}
	rank = a.rank
	rank.Adjusted = append([]float64(nil), a.rank.Adjusted...)
	rank.P = append([]float64(nil), a.rank.P...)
	rank.Flag = append([]bool(nil), a.rank.Flag...)
	return a.processed.Load(), a.rejected.Load(), a.confirmed.Load(), rank, a.fleetSig
}

// Alarm is one ranked fleet alarm, ordered most-suspicious first.
type Alarm struct {
	Die int `json:"die"`
	// Score is the die's common-mode-cancelled, fleet-standardized
	// z-score; P its one-sided p-value in the Benjamini-Hochberg
	// family.
	Score float64 `json:"score"`
	P     float64 `json:"p"`
	// Verdicts and Confirmed count this die's accepted verdicts and
	// those whose residual crossed the per-die guard threshold; EWMA is
	// the smoothed per-die z the ranking runs on, in the die's own null
	// sigma units.
	Verdicts  int     `json:"verdicts"`
	Confirmed int     `json:"confirmed"`
	EWMA      float64 `json:"ewma"`
	// Distance and LastZ echo the die's latest accepted time-domain
	// distance and its null-calibrated residual score.
	Distance float64 `json:"distance"`
	LastZ    float64 `json:"last_z"`
}

// alarms builds the ranked alarm list from the current ranking.
func (a *aggregator) alarms() []Alarm {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sinceRank > 0 || a.rank.Adjusted == nil {
		a.rerankLocked()
	}
	out := make([]Alarm, 0, 16)
	for i, flagged := range a.rank.Flag {
		if !flagged {
			continue
		}
		st := &a.st[i]
		// Confirmation gate: a fleet alarm needs the die's own detector
		// to have held above threshold — a sustained fraction of its
		// confirmed rounds, and an average level that is itself
		// anomalous in the die's own null units. A clean die's one- or
		// two-round noise excursion can survive Benjamini-Hochberg when
		// the infected dies' p-values drag the threshold up and the
		// clean fleet's MAD is tiny; it cannot survive this. An always-on
		// Trojan confirms essentially every accepted round, so requiring
		// two-thirds leaves real alarms untouched; a clean die's noise
		// confirms about half its rounds at best. The EWMA criterion is
		// deliberately redundant with the count ratio: shedding drops
		// confirmed and unconfirmed verdicts alike, but at tiny counts
		// the ratio is coarse while the EWMA still integrates level.
		if st.confirmed < 2 || 3*st.confirmed < 2*st.count || st.ewma < a.cfg.ThresholdK/2 {
			continue
		}
		out = append(out, Alarm{
			Die:       i,
			Score:     a.rank.Adjusted[i] / a.fleetSig,
			P:         a.rank.P[i],
			Verdicts:  st.count,
			Confirmed: st.confirmed,
			EWMA:      st.ewma,
			Distance:  st.distance,
			LastZ:     st.lastZ,
		})
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x].P != out[y].P {
			return out[x].P < out[y].P
		}
		if out[x].Score != out[y].Score {
			return out[x].Score > out[y].Score
		}
		return out[x].Die < out[y].Die
	})
	return out
}
