package fleet

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStatusUnderBatchFlushStress hammers the read API from several
// goroutines while the shards flush verdict batches through a
// four-slot ring that wraps constantly. Run under -race it checks the
// batched delivery path's synchronization: atomic stream counters read
// mid-flush, the ranking snapshot taken between batch ingests, and the
// ring's drop-oldest accounting staying exact — every produced verdict
// is either processed or counted shed, never both, never lost.
func TestStatusUnderBatchFlushStress(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.Dies = 64
	cfg.Shards = 4
	cfg.Rounds = 30
	cfg.TickAverages = 1
	cfg.GoldenTraces = 6
	cfg.NullTraces = 8
	cfg.QueueSize = 4 // wraps thousands of times across the run
	cfg.MinSamples = 1
	cfg.RankEvery = 1 // re-rank on every verdict: ingest is the bottleneck
	cfg.TickTimeout = 0
	cfg.QuarantineAfter = 1 << 20 // unreachable: every die ticks every round
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var reads atomic.Uint64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := s.Status()
				if st.Verdicts+st.Dropped > uint64(cfg.Dies*cfg.Rounds) {
					panic("mid-run verdict count exceeds production")
				}
				_ = s.Alarms()
				reads.Add(1)
			}
		}()
	}

	st := s.Wait()
	close(done)
	wg.Wait()

	want := uint64(cfg.Dies * cfg.Rounds)
	if st.Verdicts+st.Dropped != want {
		t.Fatalf("verdicts %d + dropped %d = %d, want exactly %d produced",
			st.Verdicts, st.Dropped, st.Verdicts+st.Dropped, want)
	}
	if st.Dropped == 0 {
		t.Error("four-slot ring shed nothing; the wrap path was not exercised")
	}
	if st.QueueLen != 0 {
		t.Fatalf("queue_len = %d after drain", st.QueueLen)
	}
	if reads.Load() == 0 {
		t.Fatal("reader goroutines never completed a Status/Alarms cycle")
	}
	t.Logf("verdicts=%d dropped=%d concurrent_reads=%d", st.Verdicts, st.Dropped, reads.Load())
	waitNoGoroutines(t, s)
}
