package fleet

import (
	"encoding/json"
	"net/http"
)

// Handler exposes the service over HTTP:
//
//	GET /status — the Status snapshot (schema in service.go)
//	GET /alarms — the ranked FDR-controlled alarm list
//
// Both endpoints are read-only snapshots, safe while the fleet is
// streaming.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Status())
	})
	mux.HandleFunc("/alarms", func(w http.ResponseWriter, r *http.Request) {
		alarms := s.Alarms()
		if alarms == nil {
			alarms = []Alarm{}
		}
		writeJSON(w, alarms)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
