package fleet

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// The pin fixture freezes the fleet's observable behavior bit-for-bit
// at a fixed seed: the per-die calibration scales, every monitored
// round's residual z and time-domain distance (as raw float64 bits),
// the health-reject stream, and the final service-level alarm list.
// Any hot-path rewrite (buffer reuse, loop fusion, batching) must
// reproduce this file exactly — floating-point identity, not tolerance.
// Regenerate deliberately with FLEET_PIN_WRITE=1 when behavior is
// *meant* to change, and say so in the commit.

const pinPath = "testdata/pin.json"

type pinRound struct {
	Z        uint64 `json:"z"`
	Distance uint64 `json:"distance"`
	Rejected bool   `json:"rejected"`
}

type pinDie struct {
	ID          int        `json:"id"`
	Infected    bool       `json:"infected"`
	Flatlined   bool       `json:"flatlined"`
	Med         uint64     `json:"med"`
	Sigma       uint64     `json:"sigma"`
	MedR        uint64     `json:"med_r"`
	SigmaR      uint64     `json:"sigma_r"`
	Quarantined bool       `json:"quarantined"`
	Rounds      []pinRound `json:"rounds"`
}

type pinAlarm struct {
	Die       int    `json:"die"`
	Score     uint64 `json:"score"`
	P         uint64 `json:"p"`
	Verdicts  int    `json:"verdicts"`
	Confirmed int    `json:"confirmed"`
	EWMA      uint64 `json:"ewma"`
}

type pinFile struct {
	Dies        []pinDie   `json:"dies"`
	RejectDies  []pinDie   `json:"reject_dies"`
	Alarms      []pinAlarm `json:"alarms"`
	Verdicts    uint64     `json:"verdicts"`
	Rejected    uint64     `json:"rejected"`
	Confirmed   uint64     `json:"confirmed"`
	Quarantined int        `json:"quarantined"`
}

// tickStream replays rounds on every die of a fresh fleet built from
// cfg, single-threaded in die order, so every recorded bit is
// schedule-independent.
func tickStream(t *testing.T, cfg Config) []pinDie {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []pinDie
	for _, d := range s.dies {
		pd := pinDie{
			ID:        d.ID,
			Infected:  d.Infected,
			Flatlined: d.Flatlined,
			Med:       math.Float64bits(d.med),
			Sigma:     math.Float64bits(d.sigma),
			MedR:      math.Float64bits(d.medR),
			SigmaR:    math.Float64bits(d.sigmaR),
		}
		for round := 0; round < cfg.Rounds; round++ {
			v := d.tick(round)
			pd.Rounds = append(pd.Rounds, pinRound{
				Z:        math.Float64bits(v.z),
				Distance: math.Float64bits(v.v.Time.Distance),
				Rejected: v.v.Health.Rejected,
			})
		}
		pd.Quarantined = d.quarantined.Load()
		out = append(out, pd)
	}
	return out
}

// pinConfig exercises the full hot path: trimmed-mean averaging
// (TickAverages >= 4), severity-2 degradation (bursts, clipping,
// retries), infected dies activating mid-run, and a flatline draw.
func pinConfig() Config {
	cfg := DefaultConfig()
	cfg.Dies = 24
	cfg.Shards = 3
	cfg.Seed = 13
	cfg.Prevalence = 0.2
	cfg.Severity = 2
	cfg.FlatlineRate = 0.15
	cfg.CaptureCycles = 8
	cfg.GoldenTraces = 6
	cfg.NullTraces = 8
	cfg.TickAverages = 5
	cfg.ActivationRound = 5
	cfg.Rounds = 18
	cfg.QueueSize = 1 << 14 // nothing sheds: the stream is deterministic
	cfg.MinSamples = 4
	cfg.QuarantineAfter = 8
	return cfg
}

// pinRejectConfig is a small, violently degraded fleet that pins the
// paths the main config rarely hits: health rejections, the bounded
// retry re-acquisition, and the plain-mean combine (TickAverages < 4).
func pinRejectConfig() Config {
	cfg := pinConfig()
	cfg.Dies = 8
	cfg.Shards = 2
	cfg.Severity = 4
	cfg.FlatlineRate = 0.3
	cfg.DriftSpan = 40
	cfg.TickAverages = 2
	cfg.Rounds = 12
	return cfg
}

func capturePin(t *testing.T) pinFile {
	t.Helper()
	cfg := pinConfig()

	out := pinFile{
		Dies:       tickStream(t, cfg),
		RejectDies: tickStream(t, pinRejectConfig()),
	}

	// Part two: a full service run on a fresh fleet — shards, queue,
	// aggregator, ranking. The queue is oversized so nothing is shed and
	// the final statistics are identical across schedules.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s2.Wait()
	out.Verdicts = st.Verdicts
	out.Rejected = st.Rejected
	out.Confirmed = st.Confirmed
	out.Quarantined = st.Quarantined
	for _, a := range s2.Alarms() {
		out.Alarms = append(out.Alarms, pinAlarm{
			Die:       a.Die,
			Score:     math.Float64bits(a.Score),
			P:         math.Float64bits(a.P),
			Verdicts:  a.Verdicts,
			Confirmed: a.Confirmed,
			EWMA:      math.Float64bits(a.EWMA),
		})
	}
	return out
}

func TestFleetPinnedBehavior(t *testing.T) {
	got := capturePin(t)
	if os.Getenv("FLEET_PIN_WRITE") != "" {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(pinPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(pinPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", pinPath)
		return
	}
	data, err := os.ReadFile(pinPath)
	if err != nil {
		t.Fatalf("missing pin fixture (regenerate with FLEET_PIN_WRITE=1): %v", err)
	}
	var want pinFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	comparePinDies(t, "main", got.Dies, want.Dies)
	comparePinDies(t, "reject", got.RejectDies, want.RejectDies)
	if got.Verdicts != want.Verdicts || got.Rejected != want.Rejected ||
		got.Confirmed != want.Confirmed || got.Quarantined != want.Quarantined {
		t.Errorf("service counters drifted: got %d/%d/%d/%d, want %d/%d/%d/%d",
			got.Verdicts, got.Rejected, got.Confirmed, got.Quarantined,
			want.Verdicts, want.Rejected, want.Confirmed, want.Quarantined)
	}
	if len(got.Alarms) != len(want.Alarms) {
		t.Fatalf("alarm list length %d, want %d (got %+v)", len(got.Alarms), len(want.Alarms), got.Alarms)
	}
	for i, wa := range want.Alarms {
		if got.Alarms[i] != wa {
			t.Errorf("alarm %d not bit-identical: got %+v, want %+v", i, got.Alarms[i], wa)
		}
	}
}

func comparePinDies(t *testing.T, label string, got, want []pinDie) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s die count %d, want %d", label, len(got), len(want))
	}
	for i, wd := range want {
		gd := got[i]
		if gd.Infected != wd.Infected || gd.Flatlined != wd.Flatlined {
			t.Errorf("%s die %d identity drifted: got inf=%v flat=%v, want inf=%v flat=%v",
				label, wd.ID, gd.Infected, gd.Flatlined, wd.Infected, wd.Flatlined)
		}
		if gd.Med != wd.Med || gd.Sigma != wd.Sigma || gd.MedR != wd.MedR || gd.SigmaR != wd.SigmaR {
			t.Errorf("%s die %d null calibration not bit-identical", label, wd.ID)
		}
		if gd.Quarantined != wd.Quarantined {
			t.Errorf("%s die %d quarantine = %v, want %v", label, wd.ID, gd.Quarantined, wd.Quarantined)
		}
		if len(gd.Rounds) != len(wd.Rounds) {
			t.Fatalf("%s die %d has %d rounds, want %d", label, wd.ID, len(gd.Rounds), len(wd.Rounds))
		}
		for r, wr := range wd.Rounds {
			if gr := gd.Rounds[r]; gr != wr {
				t.Errorf("%s die %d round %d verdict not bit-identical: z %x vs %x, dist %x vs %x, rej %v vs %v",
					label, wd.ID, r, gr.Z, wr.Z, gr.Distance, wr.Distance, gr.Rejected, wr.Rejected)
			}
		}
	}
}
