package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// TestStatusSchemaGolden pins the /status JSON schema: downstream
// scrapers key on these field names, so adding a field means updating
// the golden, and renaming or dropping one is a breaking change this
// test makes loud.
func TestStatusSchemaGolden(t *testing.T) {
	s, err := New(cheapConfig(4, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Wait()
	defer waitNoGoroutines(t, s)

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /status: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var status map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(status))
	for k := range status {
		got = append(got, k)
	}
	sort.Strings(got)

	raw, err := os.ReadFile(filepath.Join("testdata", "status_schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("/status schema drifted:\n got %v\nwant %v", got, want)
	}

	// Spot-check values against the service's own view.
	st := s.Status()
	if int(status["dies"].(float64)) != st.Dies || int(status["verdicts"].(float64)) != int(st.Verdicts) {
		t.Fatalf("status payload disagrees with Status(): %v vs %+v", status, st)
	}

	// /alarms serves a JSON array even when empty.
	resp2, err := http.Get(srv.URL + "/alarms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var alarms []Alarm
	if err := json.NewDecoder(resp2.Body).Decode(&alarms); err != nil {
		t.Fatalf("GET /alarms did not decode as an array: %v", err)
	}
}
