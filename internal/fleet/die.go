package fleet

import (
	"fmt"
	"math"
	"sync/atomic"

	"emtrust/internal/chip"
	"emtrust/internal/core"
	"emtrust/internal/degrade"
	"emtrust/internal/dsp"
	"emtrust/internal/emfield"
	"emtrust/internal/frand"
	"emtrust/internal/stats"
	"emtrust/internal/trace"
)

// Population holds the shared physics every die is derived from. The
// gate-level netlist, placement, and switching schedule are identical
// across process siblings — variation moves charge, not logic — so the
// fleet simulates the gates once and synthesizes each die's emf by
// re-weighting the shared per-tile current waveforms with that die's
// variation gains (emfield.EMFWeightedInto). That amortization is what
// makes thousands of dies tractable: per monitored round a die costs an
// acquisition and a verdict, not a gate-level simulation.
type Population struct {
	cfg      Config
	dt       float64
	coupling *emfield.Coupling
	// dormant is the deep-copied per-tile current waveform of the
	// Trojan-free steady state; active[k] are TrojanStates captured
	// states of the planted Trojan.
	dormant [][]float64
	active  [][][]float64
}

// newPopulation builds the shared baseline: one chip, one dormant
// fixed-point capture, and a short orbit of Trojan-active captures.
func newPopulation(cfg Config) (*Population, error) {
	c, err := chip.New(cfg.Chip)
	if err != nil {
		return nil, err
	}
	if err := c.DeactivateAll(); err != nil {
		return nil, err
	}
	c.EnableA2(false)
	p := &Population{cfg: cfg, coupling: c.SensorCoupling()}

	capture := func() ([][]float64, error) {
		cap, err := c.CapturePT(cfg.Plaintext, cfg.Key, cfg.CaptureCycles)
		if err != nil {
			return nil, err
		}
		p.dt = cap.Dt
		// Tiles alias the recorder's reusable buffers; copy before the
		// next capture overwrites them.
		tiles := make([][]float64, len(cap.Tiles))
		for i, w := range cap.Tiles {
			tiles[i] = append([]float64(nil), w...)
		}
		return tiles, nil
	}
	if _, err := capture(); err != nil { // warm-up, discarded
		return nil, err
	}
	if p.dormant, err = capture(); err != nil {
		return nil, err
	}

	if cfg.Prevalence > 0 {
		if c.Trojan(cfg.Trojan) == nil {
			return nil, fmt.Errorf("fleet: chip build carries no %v Trojan", cfg.Trojan)
		}
		if err := c.SetTrojan(cfg.Trojan, true); err != nil {
			return nil, err
		}
		if _, err := capture(); err != nil { // trigger transient, discarded
			return nil, err
		}
		for k := 0; k < cfg.TrojanStates; k++ {
			tiles, err := capture()
			if err != nil {
				return nil, err
			}
			p.active = append(p.active, tiles)
		}
		if err := c.SetTrojan(cfg.Trojan, false); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// commonGain is the fleet-wide gain wobble at one monitored round —
// identical on every die, which is exactly what the cross-die reference
// must cancel.
func (p *Population) commonGain(round int) float64 {
	return 1 + p.cfg.CommonModeAmp*math.Sin(2*math.Pi*float64(round)/float64(p.cfg.CommonModePeriod))
}

// Die is one deployed device: a variation sibling of the shared build
// with its own degrade profile, its own enrolled fingerprint, and its
// own verdict pipeline. All mutable state is owned by the shard that
// ticks it; only the quarantine flag is shared with the aggregator.
type Die struct {
	ID int
	// Infected marks the die fabricated with the Trojan (ground truth
	// for evaluating the alarm list; the detectors never see it).
	Infected bool
	// Flatlined marks the die configured to lose its sensor mid-run.
	Flatlined bool

	pop      *Population
	severity float64
	dormant  []float64   // clean emf of this die's healthy state
	active   [][]float64 // clean emf per Trojan state (infected only)
	// rng is the die's reusable generator: every draw site reseeds it
	// with dieSeed, which yields the same stream as a fresh dieRand
	// generator without the per-draw rngSource allocation.
	rng *frand.Rand
	// acqAcc accumulates the trimmed mean in place and is the trace
	// handed to the verdict pipeline; acqDraw holds the current raw
	// draw. Both are die-owned and overwritten by the next acquire.
	acqAcc, acqDraw *trace.Trace
	// acqLo/acqHi are acquire's per-sample min/max scratch for the
	// trimmed mean.
	acqLo, acqHi []float64
	// featBuf is the reused feature vector returned by features.
	featBuf []float64
	channel *degrade.Channel
	health  *core.ChannelHealth
	eval    *core.Evaluator
	// level/trend are the die's guarded Holt tracker over the projected
	// score vector: level+trend predicts the next healthy-aging score,
	// and the tracker learns only while the residual norm stays inside
	// the freeze guard. Tracking the vector rather than the scalar
	// distance matters: once aging dominates, a Trojan's contribution to
	// the distance norm is quadratically suppressed (||drift + delta|| ≈
	// ||drift|| + ||delta||²/2||drift|| for orthogonal delta), but the
	// prediction residual still carries the full delta vector. The trend
	// term follows the degrade profile's accelerating offset drift; the
	// guard (with trend coasting while frozen) keeps a Trojan's step
	// from being learned away.
	fp           *core.Fingerprint
	level, trend []float64
	resid        []float64
	// ewmaVec integrates the prediction residual vector coherently: a
	// Trojan's delta has a fixed direction in score space, so it
	// accumulates toward its full length while isotropic channel noise
	// averages down as sqrt(smoothAlpha/(2-smoothAlpha)). The die's z is
	// the null-calibrated norm of this vector, not of a single round's
	// residual — integration is what buys the detection margin that a
	// severity-2 channel's single-shot SNR cannot.
	ewmaVec []float64
	// med/sigma calibrate the null distribution of the integrated
	// residual norm (the reported z); medR/sigmaR calibrate the
	// single-round residual norm, which gates the tracker freeze — the
	// instantaneous statistic crosses the guard on the very first
	// post-activation round, before the fast tracker can absorb any of
	// the step, while the integrated one needs a few rounds to build.
	med, sigma   float64
	medR, sigmaR float64
	// fitCount is the acquisition timeline index where monitoring
	// starts (enrollment consumed the earlier indices).
	fitCount int

	// quarantined is set by the shard and read by the aggregator.
	quarantined atomic.Bool
	// busy guards against re-entering a die whose timed-out tick is
	// still running on an abandoned goroutine.
	busy atomic.Bool
	// consecutiveBad counts health-rejected or still-stuck ticks;
	// consecutiveTimeouts counts watchdog overruns of any grade with no
	// successful verdict in between (both shard-local).
	consecutiveBad      int
	consecutiveTimeouts int
	// consecutiveLocalized counts consecutive frozen rounds whose
	// integrated residual is concentrated in a single segment — the
	// signature of a localized channel fault (a converter rail the
	// drifting gain is pushing the waveform peak into), not of a Trojan.
	consecutiveLocalized int
}

// verdict is one die's monitored round, queued to the aggregator.
type verdict struct {
	die   int
	round int
	v     core.Verdict
	// z is the die's drift-prediction residual in null-calibrated sigma
	// units (NaN when the health gate rejected the trace).
	z float64
}

// spawn derives die id from the population. It is index-addressed and
// safe to run in parallel across dies.
func (p *Population) spawn(id int) (*Die, error) {
	cfg := p.cfg
	d := &Die{ID: id, pop: p}

	// Per-die process sample: a die-wide corner times per-tile jitter,
	// the tile-level image of power.Config's corner/variation model
	// (per-cell variation averages out within a tile; the corner is
	// what distinguishes dies macroscopically).
	prng := dieRand(cfg.Seed, id, purposeParams, 0)
	corner := 1 + cfg.CornerSigma*prng.NormFloat64()
	if corner < 0.1 {
		corner = 0.1
	}
	gains := make([]float64, len(p.coupling.M))
	for t := range gains {
		g := corner * (1 + cfg.VariationSigma*prng.NormFloat64())
		if g < 0.1 {
			g = 0.1
		}
		gains[t] = g
	}
	d.Infected = prng.Float64() < cfg.Prevalence && len(p.active) > 0
	d.severity = cfg.Severity * (0.5 + prng.Float64())
	flatline := prng.Float64() < cfg.FlatlineRate

	// This die's clean waveforms, synthesized from the shared tiles.
	d.dormant = p.coupling.EMFWeightedInto(nil, p.dormant, p.dt, gains)
	if d.Infected {
		d.active = make([][]float64, len(p.active))
		for k, tiles := range p.active {
			d.active[k] = p.coupling.EMFWeightedInto(nil, tiles, p.dt, gains)
		}
	}
	// The die-owned generator is reseeded per acquisition draw, so it
	// is the concrete math/rand replica — same value streams, jumpable
	// seed chain, and no interface hops per sample (see internal/frand).
	d.rng = frand.NewRand(0)
	d.acqAcc = &trace.Trace{Samples: make([]float64, 0, len(d.dormant))}
	d.acqDraw = &trace.Trace{Samples: make([]float64, 0, len(d.dormant))}

	// The die's acquisition chain: the healthy simulation channel
	// wrapped in this die's aging profile (and, for the unlucky ones, a
	// mid-run coil break).
	refRMS := dsp.RMS(d.dormant)
	peak := dsp.PeakAbs(d.dormant)
	stages := degrade.Profile{
		Severity: d.severity,
		RefRMS:   refRMS,
		RefPeak:  peak,
		Span:     cfg.DriftSpan,
	}.Stages()
	fit := cfg.GoldenTraces + cfg.NullTraces
	if flatline {
		d.Flatlined = true
		// The coil breaks somewhere in the first DriftSpan monitored
		// rounds, always after enrollment AND null calibration — a die
		// already dead at calibration is born quarantined, which is a
		// different (and less interesting) failure than losing a sensor
		// mid-deployment.
		stages = append(stages, degrade.Flatline{Start: fit + 2*cfg.NullTraces + prng.Intn(cfg.DriftSpan)})
	}
	d.channel = degrade.Wrap(chip.SimulationChannels().Sensor, stages...)

	// Post-deployment enrollment on the die's own channel: fingerprint
	// and health envelope from GoldenTraces, then NullTraces more to
	// calibrate the null distance distribution (median/MAD), so every
	// die's z-scores share a scale regardless of its variation corner
	// and channel noise.
	golden := make([]*trace.Trace, cfg.GoldenTraces)
	for i := range golden {
		// Clone: acquire returns the die-owned reusable buffer, and the
		// golden set is retained by the fingerprint and health builders.
		golden[i] = d.acquire(i, d.dormant, 1, purposeGolden, uint64(i)).Clone()
	}
	fp, err := core.BuildFingerprint(golden, core.DefaultFingerprintConfig())
	if err != nil {
		return nil, fmt.Errorf("fleet: die %d fingerprint: %w", id, err)
	}
	hcfg := core.DefaultHealthConfig()
	health, err := core.BuildChannelHealth(golden, hcfg)
	if err != nil {
		return nil, fmt.Errorf("fleet: die %d health: %w", id, err)
	}
	// Post-deployment enrollment must accept the die's own baseline: a
	// severe corner whose ADC rail sits below the signal peak clips a
	// few percent of every record, enrollment and monitoring alike. The
	// default clip tolerance would reject such a die's every trace, so
	// widen it to double the worst clipping enrollment itself produced —
	// a converter that later saturates much harder than its birth state
	// still trips the gate.
	maxClip := 0.0
	for _, g := range golden {
		if v := health.Check(g); v.Clipped > maxClip {
			maxClip = v.Clipped
		}
	}
	if tol := 2*maxClip + 0.005; tol > hcfg.MaxClippedRatio {
		hcfg.MaxClippedRatio = tol
		if health, err = core.BuildChannelHealth(golden, hcfg); err != nil {
			return nil, fmt.Errorf("fleet: die %d health: %w", id, err)
		}
	}
	d.health = health

	// The fleet does its own drift tracking (the Holt filter below), so
	// the evaluator's level-only rebaseliner is disabled — it cannot
	// follow the degrade profile's accelerating offset drift, and its
	// freeze guard would ratchet fast-aging dies into permanent false
	// alarms. The Eq. (1) threshold is likewise disarmed: alarming is
	// the fleet ranking's job, in null-calibrated residual units.
	opts := core.HardenedOptions(health)
	opts.Rebaseline = core.RebaselineConfig{}
	fp.Threshold = math.Inf(1)
	d.eval, err = core.NewEvaluator(fp, nil, opts)
	if err != nil {
		return nil, fmt.Errorf("fleet: die %d evaluator: %w", id, err)
	}

	// Null calibration runs on the live (already aging) channel, in two
	// stages that mirror what monitoring will actually do. The first
	// span's healthy traces are fit with a per-dimension Theil–Sen
	// regression that seeds the Holt tracker (level, trend): the robust
	// fit is load-bearing, since a glitched trace that survives the trim
	// would pull an online tracker's seed by holtAlpha times the glitch
	// and pollute its trend. Then the ONLINE GUARDED TRACKER ITSELF is
	// replayed over the second span, and its one-step-ahead prediction
	// residuals set the die's null median/MAD. Replaying the real
	// process is the point: a fitted line's in-sample residuals are far
	// tighter than any out-of-sample prediction — the fitted slope
	// carries estimation error that grows an extrapolated residual
	// linearly with distance, and a per-die slope-error vector is fixed
	// in direction, so the coherent integrator accumulates it exactly
	// like a Trojan step. Null scales taken in-sample therefore
	// understate monitoring residuals for every die, and clean dies in
	// the tail of the slope-error draw ratchet into permanent false
	// alarms. The online replay's residuals include tracker lag, seed
	// error, and channel noise in the same proportions monitoring will
	// see, because monitoring simply continues the replayed process from
	// its end state.
	d.fp = fp
	feats := make([][]float64, 2*cfg.NullTraces)
	firstX := make([]float64, 0, cfg.NullTraces)
	firstY := make([][]float64, 0, cfg.NullTraces)
	accepted := 0 // second-span traces that passed the health gate
	for i := range feats {
		idx := fit + i
		t := d.acquire(idx, d.dormant, 1, purposeNull, uint64(i))
		if d.health.Check(t).Rejected {
			continue
		}
		feats[i] = append([]float64(nil), d.features(t)...)
		if i < cfg.NullTraces {
			firstX = append(firstX, float64(idx))
			firstY = append(firstY, feats[i])
		} else {
			accepted++
		}
	}
	nullInt := make([]float64, 0, accepted)
	nullRes := make([]float64, 0, accepted)
	if len(firstX) >= 2 && accepted >= 2 {
		dims := len(firstY[0])
		d.level = make([]float64, dims)
		d.trend = make([]float64, dims)
		d.resid = make([]float64, dims)
		d.ewmaVec = make([]float64, dims)
		seedLevel := make([]float64, dims)
		seedTrend := make([]float64, dims)
		xSeed := float64(fit + cfg.NullTraces - 1)
		for j := 0; j < dims; j++ {
			slope, icept := theilSen(firstX, firstY, j)
			seedTrend[j] = slope
			seedLevel[j] = icept + slope*xSeed
		}
		reseed := func() {
			copy(d.level, seedLevel)
			copy(d.trend, seedTrend)
			for j := range d.ewmaVec {
				d.ewmaVec[j] = 0
			}
		}
		// Pass one: unguarded online replay of the second span, giving
		// the provisional residual scales the guard needs.
		reseed()
		prov := make([]float64, 0, accepted)
		for i := cfg.NullTraces; i < 2*cfg.NullTraces; i++ {
			y := feats[i]
			if y == nil {
				d.coast()
				continue
			}
			prov = append(prov, d.residNorm(y))
			d.track(y)
		}
		medR0, sigmaR0 := robustScale(prov)
		// Pass two: the exact monitoring loop — guarded tracking plus
		// the coherent integrator — whose residual norms and integrated
		// norms become the final null scales and whose end state the
		// monitored stream continues seamlessly. The integrator is
		// burned in over the first span's in-sample residuals so the
		// second span's integrated norms sample the steady state rather
		// than a ramp from zero (a ramp's MAD wildly understates the
		// steady-state fluctuation, leaving z hair-triggered).
		reseed()
		capR := medR0 + cfg.ThresholdK*sigmaR0
		for i := 0; i < cfg.NullTraces; i++ {
			y := feats[i]
			if y == nil {
				continue
			}
			x := float64(fit + i)
			rn := 0.0
			for j := range y {
				r := y[j] - (seedLevel[j] + seedTrend[j]*(x-xSeed))
				d.resid[j] = r
				rn += r * r
			}
			d.integrate(math.Sqrt(rn), capR)
		}
		for i := cfg.NullTraces; i < 2*cfg.NullTraces; i++ {
			y := feats[i]
			if y == nil {
				d.coast()
				continue
			}
			rn := d.residNorm(y)
			nullRes = append(nullRes, rn)
			nullInt = append(nullInt, d.integrate(rn, capR))
			if (rn-medR0)/sigmaR0 > cfg.ThresholdK {
				d.coast()
			} else {
				d.track(y)
			}
		}
	}
	if len(nullInt) < 2 {
		// The channel is already unusable at enrollment (a severe draw):
		// the die is born quarantined — a maintenance case, never a
		// member of the false-discovery family — so its garbage
		// calibration can never reach the ranking.
		d.quarantined.Store(true)
		nullInt = append(nullInt, 0, 0)
		nullRes = append(nullRes, 0, 0)
	}
	if d.level == nil {
		n := fp.Extractor.Segments
		if n <= 0 {
			n = 32
		}
		d.level = make([]float64, n)
		d.trend = make([]float64, n)
		d.resid = make([]float64, n)
		d.ewmaVec = make([]float64, n)
	}
	d.med, d.sigma = robustScale(nullInt)
	d.medR, d.sigmaR = robustScale(nullRes)
	d.fitCount = fit + 2*cfg.NullTraces
	return d, nil
}

// theilSen fits dimension j of the calibration points robustly: the
// slope is the median of all pairwise slopes, the intercept the median
// of the per-point intercepts at that slope. Up to just under half the
// span can be glitched without moving the fit.
func theilSen(x []float64, y [][]float64, j int) (slope, intercept float64) {
	n := len(x)
	slopes := make([]float64, 0, n*(n-1)/2)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if dx := x[b] - x[a]; dx != 0 {
				slopes = append(slopes, (y[b][j]-y[a][j])/dx)
			}
		}
	}
	if len(slopes) == 0 {
		return 0, y[0][j]
	}
	slope = stats.Summarize(slopes).Median
	icepts := make([]float64, n)
	for a := 0; a < n; a++ {
		icepts[a] = y[a][j] - slope*x[a]
	}
	return slope, stats.Summarize(icepts).Median
}

// robustScale returns the median and a floored MAD-sigma of one null
// sample.
func robustScale(null []float64) (med, sigma float64) {
	med = stats.Summarize(null).Median
	dev := make([]float64, len(null))
	for i, v := range null {
		dev[i] = math.Abs(v - med)
	}
	sigma = 1.4826 * stats.Summarize(dev).Median
	if floor := 0.05 * med; sigma < floor {
		sigma = floor
	}
	if !(sigma > 0) {
		sigma = 1e-30
	}
	return med, sigma
}

// Tracker and integrator gains. The level tracks fast so the Holt
// filter converges well inside the calibration settle span (a tracker
// still converging when the null is sampled biases the whole z scale);
// fast tracking is safe against absorption because the trimmed-mean
// acquisition leaves the Trojan step many nulls-sigmas tall, so the
// freeze guard engages on the very first post-activation round, before
// the tracker ever learns from it. The trend is slower — it only needs
// to follow drift whose time constant is DriftSpan rounds. smoothAlpha
// sets the residual integrator's horizon (~1/smoothAlpha rounds):
// noise in the integrated vector shrinks by
// sqrt(smoothAlpha/(2-smoothAlpha)) ≈ 0.36 while a persistent
// (frozen-out) delta passes through whole.
const (
	holtAlpha   = 0.4
	holtBeta    = 0.1
	smoothAlpha = 0.25
)

// localizedShare is the single-segment share of the integrated
// residual's energy beyond which a persistent anomaly is read as a
// localized channel fault rather than a Trojan. Empirically the stock
// Trojans' emission deltas spread across segments (top share 0.3-0.5,
// the payload modulates the whole encryption window) while progressive
// rail clipping concentrates 0.8+ of the energy in the peak's segment.
const localizedShare = 0.6

// features maps a trace to the tracked observation vector: the raw
// segment-RMS features rather than the fingerprint's PCA scores. The
// PCA basis is fit on a dozen same-wave golden traces, so its
// components span the channel's noise directions, not the signal's —
// most of a Trojan's emission delta lands in the Q-residual dimension,
// where a large noise floor suppresses it quadratically
// (sqrt(Q²+δ²) ≈ Q + δ²/2Q). The raw features keep the delta linear,
// and segment RMS is itself noise-quenching: uncorrelated noise enters
// a segment's RMS quadratically while in-band signal change passes
// straight through.
// The returned slice is the die-owned featBuf, overwritten by the next
// call — callers that retain it must copy.
func (d *Die) features(t *trace.Trace) []float64 {
	d.featBuf = d.fp.Extractor.ExtractInto(d.featBuf, t)
	return d.featBuf
}

// residNorm returns ||score - (level + trend)||, the prediction
// residual norm, filling d.resid as scratch. The loop is unrolled
// four-wide but keeps one sequential accumulator — the squared terms
// are added in exactly the original index order, so the norm is
// bit-identical to the rolled loop (a multi-accumulator reduction
// would reassociate the sum and drift the pinned verdict stream).
func (d *Die) residNorm(score []float64) float64 {
	sum := 0.0
	level, trend, resid := d.level, d.trend, d.resid
	j := 0
	for ; j+4 <= len(score); j += 4 {
		r0 := score[j] - (level[j] + trend[j])
		r1 := score[j+1] - (level[j+1] + trend[j+1])
		r2 := score[j+2] - (level[j+2] + trend[j+2])
		r3 := score[j+3] - (level[j+3] + trend[j+3])
		resid[j], resid[j+1], resid[j+2], resid[j+3] = r0, r1, r2, r3
		sum += r0 * r0
		sum += r1 * r1
		sum += r2 * r2
		sum += r3 * r3
	}
	for ; j < len(score); j++ {
		r := score[j] - (level[j] + trend[j])
		resid[j] = r
		sum += r * r
	}
	return math.Sqrt(sum)
}

// integrate folds the current residual vector (d.resid, filled by
// residNorm) into the coherent integrator and returns the integrated
// norm — the raw material of the die's z-score. The contribution is
// winsorized: a residual whose norm rn exceeds cap (the freeze-guard
// boundary, medR + K·sigmaR) is scaled down to exactly cap before
// integration. Detection loses nothing — a Trojan's step is
// persistent, so its capped contribution arrives in the same direction
// every round and the integrator still converges to the full cap, many
// null-sigmas above the integrated norm's median — while a one-off
// channel burst that beat the trimmed mean and the health gate can
// only buy one capped round, a few-sigma bump that drains on the next
// round instead of a 100-sigma spike that takes ten rounds at
// (1-smoothAlpha) per round to decay below threshold.
func (d *Die) integrate(rn, cap float64) float64 {
	scale := 1.0
	if rn > cap && rn > 0 {
		scale = cap / rn
	}
	// Unrolled four-wide with a single sequential accumulator, same
	// bit-identity constraint as residNorm.
	sum := 0.0
	resid, ew := d.resid, d.ewmaVec
	j := 0
	for ; j+4 <= len(resid); j += 4 {
		e0, e1, e2, e3 := ew[j], ew[j+1], ew[j+2], ew[j+3]
		e0 += smoothAlpha * (scale*resid[j] - e0)
		e1 += smoothAlpha * (scale*resid[j+1] - e1)
		e2 += smoothAlpha * (scale*resid[j+2] - e2)
		e3 += smoothAlpha * (scale*resid[j+3] - e3)
		ew[j], ew[j+1], ew[j+2], ew[j+3] = e0, e1, e2, e3
		sum += e0 * e0
		sum += e1 * e1
		sum += e2 * e2
		sum += e3 * e3
	}
	for ; j < len(resid); j++ {
		e := ew[j]
		e += smoothAlpha * (scale*resid[j] - e)
		ew[j] = e
		sum += e * e
	}
	return math.Sqrt(sum)
}

// track folds one accepted score vector into the tracker.
func (d *Die) track(score []float64) {
	for j, v := range score {
		pred := d.level[j] + d.trend[j]
		prev := d.level[j]
		d.level[j] = holtAlpha*v + (1-holtAlpha)*pred
		d.trend[j] = holtBeta*(d.level[j]-prev) + (1-holtBeta)*d.trend[j]
	}
}

// coast advances the prediction along the learned trend without
// learning from the current round — used while frozen (residual beyond
// the guard) and across health-rejected rounds, so healthy aging keeps
// being discounted while a persistent step stays visible.
func (d *Die) coast() {
	for j := range d.level {
		d.level[j] += d.trend[j]
	}
}

// topShare returns the largest single-coordinate share of the
// integrated residual's energy.
func (d *Die) topShare() float64 {
	top, sum := 0.0, 0.0
	for _, v := range d.ewmaVec {
		v *= v
		sum += v
		if v > top {
			top = v
		}
	}
	if sum <= 0 {
		return 0
	}
	return top / sum
}

// acquire combines cfg.TickAverages back-to-back acquisitions of wave
// at one timeline index into one trace, per-sample, with the min and
// max draw dropped (a trimmed mean once there are at least four
// draws). Drift and flatline depend on the index alone, so the
// combined trace carries the full aging state; the trim is what makes
// the difference at high severity — burst and dropout glitches corrupt
// one draw at a time, so a plain mean lets a single 8×RMS burst leak
// amplitude/M into the features while the trim removes it outright,
// and the remaining white/jitter noise still averages down by
// ~sqrt(TickAverages).
// The returned trace is the die-owned acqAcc buffer, overwritten by the
// next acquire — callers that retain it (enrollment) must Clone. The
// amplitude scale is folded into the acquisition itself, so the caller
// never copies the waveform to apply a gain.
func (d *Die) acquire(idx int, wave []float64, scale float64, purpose int, index uint64) *trace.Trace {
	cfg := d.pop.cfg
	m := uint64(cfg.TickAverages)
	d.rng.Seed(dieSeed(cfg.Seed, d.ID, purpose, index*m))
	t := d.channel.AcquireAtInto(idx, d.acqAcc, wave, scale, d.pop.dt, d.rng)
	if m == 1 {
		return t
	}
	trim := m >= 4
	if len(d.acqLo) != len(t.Samples) {
		d.acqLo = make([]float64, len(t.Samples))
		d.acqHi = make([]float64, len(t.Samples))
	}
	acc, lo, hi := t.Samples, d.acqLo, d.acqHi
	copy(lo, acc)
	copy(hi, acc)
	for k := uint64(1); k < m; k++ {
		d.rng.Seed(dieSeed(cfg.Seed, d.ID, purpose, index*m+k))
		r := d.channel.AcquireAtInto(idx, d.acqDraw, wave, scale, d.pop.dt, d.rng)
		// One fused pass: sum for the mean, min/max for the trim.
		for j, v := range r.Samples {
			acc[j] += v
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	if trim {
		inv := 1 / float64(m-2)
		for j := range acc {
			acc[j] = (acc[j] - lo[j] - hi[j]) * inv
		}
	} else {
		inv := 1 / float64(m)
		for j := range acc {
			acc[j] *= inv
		}
	}
	return t
}

// tick runs one monitored round: synthesize the die's current state,
// acquire through its degrading channel (with one bounded retry on a
// health reject), and evaluate. Deterministic in (die, round).
func (d *Die) tick(round int) verdict {
	cfg := d.pop.cfg
	wave := d.dormant
	if d.Infected && round >= cfg.ActivationRound && len(d.active) > 0 {
		wave = d.active[(round-cfg.ActivationRound)%len(d.active)]
	}
	g := d.pop.commonGain(round)
	idx := d.fitCount + round
	t := d.acquire(idx, wave, g, purposeTick, uint64(round))
	hv := d.health.Check(t)
	if hv.Rejected {
		// One re-acquisition: transient bursts pass on retry, a dead
		// coil fails again and walks toward quarantine.
		t = d.acquire(idx, wave, g, purposeRetry, uint64(round))
		hv = d.health.Check(t)
	}
	// The health verdict and features feed both the evaluator and the
	// drift tracker below — checked once, extracted once.
	var score []float64
	if !hv.Rejected {
		score = d.features(t)
	}
	v := d.eval.EvalChecked(t, hv, score)
	z := math.NaN()
	if v.Health.Rejected {
		d.coast()
	} else {
		rn := d.residNorm(score)
		zi := (rn - d.medR) / d.sigmaR
		z = (d.integrate(rn, d.medR+cfg.ThresholdK*d.sigmaR) - d.med) / d.sigma
		if zi > d.pop.cfg.ThresholdK {
			// Frozen: this round's residual is beyond anything aging
			// produces, so don't learn from it — coast on the held trend
			// while the integrator accumulates the step. The gate is the
			// instantaneous statistic alone, and that is deliberate. It
			// beats the fast tracker to a fresh activation step (zi
			// crosses on the very first post-activation round), and it
			// keeps a persistent step frozen by itself: coasting holds
			// the prediction away from the stepped observations, so an
			// infected die re-trips the gate every round. Gating on the
			// integrated z as well would pin CLEAN dies: after a one-off
			// burst the integrator's memory holds z up for several rounds
			// while the channel is already back to normal, the tracker
			// coasts on those perfectly learnable rounds, its trend error
			// compounds, and the die ratchets into a permanent false
			// alarm. Freezing only on fresh evidence means a glitched
			// clean die resumes tracking the next round and its
			// integrator drains back to the null.
			d.coast()
			// A persistent anomaly living in a single segment is a
			// channel fault (progressive rail saturation), not a
			// Trojan: retire the die to maintenance instead of letting
			// it ratchet into the alarm list.
			if d.topShare() > localizedShare {
				if d.consecutiveLocalized++; d.consecutiveLocalized >= cfg.QuarantineAfter {
					d.quarantined.Store(true)
				}
			} else {
				d.consecutiveLocalized = 0
			}
		} else {
			d.track(score)
			d.consecutiveLocalized = 0
		}
	}
	return verdict{die: d.ID, round: round, v: v, z: z}
}
