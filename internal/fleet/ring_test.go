package fleet

import "testing"

func TestRingFIFOAndDropOldest(t *testing.T) {
	r := newRing(3)
	for i := 0; i < 3; i++ {
		r.push(verdict{die: i})
	}
	if depth, capacity, dropped := r.stats(); depth != 3 || capacity != 3 || dropped != 0 {
		t.Fatalf("stats after fill: depth=%d cap=%d dropped=%d", depth, capacity, dropped)
	}
	// Overflow: the two oldest are evicted, both counted.
	r.push(verdict{die: 3})
	r.push(verdict{die: 4})
	if _, _, dropped := r.stats(); dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	for want := 2; want <= 4; want++ {
		v, ok := r.pop()
		if !ok || v.die != want {
			t.Fatalf("pop = (%v, %v), want die %d", v.die, ok, want)
		}
	}
}

func TestRingCloseDrains(t *testing.T) {
	r := newRing(4)
	r.push(verdict{die: 1})
	r.push(verdict{die: 2})
	r.close()
	// A closed ring still hands out its backlog...
	if v, ok := r.pop(); !ok || v.die != 1 {
		t.Fatalf("pop after close = (%v, %v)", v.die, ok)
	}
	if v, ok := r.pop(); !ok || v.die != 2 {
		t.Fatalf("pop after close = (%v, %v)", v.die, ok)
	}
	// ...then reports exhaustion instead of blocking.
	if _, ok := r.pop(); ok {
		t.Fatal("pop on drained closed ring reported ok")
	}
	// Pushes after close are shed and counted, not leaked.
	r.push(verdict{die: 3})
	if _, _, dropped := r.stats(); dropped != 1 {
		t.Fatalf("dropped after post-close push = %d, want 1", dropped)
	}
}

func TestRingCapacityClamp(t *testing.T) {
	r := newRing(0)
	if _, capacity, _ := r.stats(); capacity != 1 {
		t.Fatalf("capacity = %d, want clamp to 1", capacity)
	}
}

func TestRingUnblocksConsumerOnClose(t *testing.T) {
	r := newRing(2)
	done := make(chan bool)
	go func() {
		_, ok := r.pop()
		done <- ok
	}()
	r.close()
	if ok := <-done; ok {
		t.Fatal("blocked pop returned ok after close of empty ring")
	}
}
