package fleet

import (
	"context"
	"testing"
	"time"
)

// cheapConfig returns a small, fast fleet for the robustness unit
// tests: pristine channels, tiny enrollment, short traces.
func cheapConfig(dies, shards, rounds int) Config {
	cfg := DefaultConfig()
	cfg.Dies = dies
	cfg.Shards = shards
	cfg.Rounds = rounds
	cfg.Prevalence = 0
	cfg.Severity = 0
	cfg.CaptureCycles = 8
	cfg.GoldenTraces = 4
	cfg.NullTraces = 4
	cfg.TickAverages = 2
	cfg.MinSamples = 2
	cfg.RankEvery = 16
	return cfg
}

// waitNoGoroutines polls the service's goroutine counter to zero:
// abandoned timed-out ticks are allowed to finish after Wait returns,
// but nothing may leak.
func waitNoGoroutines(t *testing.T, s *Service) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.Goroutines() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("service leaked %d goroutines", s.Goroutines())
}

func TestServiceRunsToRoundBudget(t *testing.T) {
	s, err := New(cheapConfig(6, 2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err == nil {
		t.Fatal("second Start did not fail")
	}
	st := s.Wait()
	if st.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", st.Rounds)
	}
	if want := uint64(6 * 5); st.Verdicts != want {
		t.Fatalf("verdicts = %d, want %d (dropped %d)", st.Verdicts, want, st.Dropped)
	}
	if st.Dropped != 0 || st.QueueLen != 0 {
		t.Fatalf("dropped=%d queue_len=%d after clean drain", st.Dropped, st.QueueLen)
	}
	if st.LiveShards != 2 || st.DeadShards != 0 || st.Crashes != 0 {
		t.Fatalf("shard accounting: %+v", st)
	}
	waitNoGoroutines(t, s)
}

func TestServiceGracefulShutdown(t *testing.T) {
	cfg := cheapConfig(6, 2, 0) // endless: only the context stops it
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// Let it stream for a bit, then cancel and require a full drain.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if s.Status().Verdicts > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no verdicts before shutdown")
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := s.Close()
	if st.Verdicts == 0 {
		t.Fatal("no verdicts after shutdown drain")
	}
	if st.QueueLen != 0 {
		t.Fatalf("queue_len = %d after drain, want 0", st.QueueLen)
	}
	waitNoGoroutines(t, s)
}

func TestBackpressureShedsCounted(t *testing.T) {
	cfg := cheapConfig(8, 4, 6)
	cfg.QueueSize = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately slow consumer: the bounded queue must shed with a
	// counted drop instead of stalling producers or growing.
	s.hooks.stallAggregator = func(uint64) time.Duration { return 2 * time.Millisecond }
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Wait()
	if st.Dropped == 0 {
		t.Fatal("no drops despite saturated queue")
	}
	// Conservation: every produced verdict was either aggregated or
	// counted as shed.
	if got, want := st.Verdicts+st.Dropped, uint64(8*6); got != want {
		t.Fatalf("verdicts+dropped = %d, want %d", got, want)
	}
	if st.Rounds != 6 {
		t.Fatalf("rounds = %d: producers stalled behind the slow consumer", st.Rounds)
	}
	waitNoGoroutines(t, s)
}

func TestSupervisorRestartsCrashedShard(t *testing.T) {
	cfg := cheapConfig(6, 2, 6)
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 4 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 panics at rounds 1 and 3; the supervisor must restart it
	// and the shard must still finish its remaining rounds.
	s.hooks.crashShard = func(shard, round int) bool {
		return shard == 0 && (round == 1 || round == 3)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Wait()
	if st.Crashes != 2 || st.Restarts != 2 {
		t.Fatalf("crashes=%d restarts=%d, want 2/2", st.Crashes, st.Restarts)
	}
	if st.DeadShards != 0 || st.LiveShards != 2 {
		t.Fatalf("dead=%d live=%d, want 0/2", st.DeadShards, st.LiveShards)
	}
	if st.Rounds != 6 {
		t.Fatalf("rounds = %d, want 6", st.Rounds)
	}
	// Shard 0's dies (0, 2, 4) lost the two poisoned rounds; shard 1's
	// saw all six.
	want := uint64(3*4 + 3*6)
	if st.Verdicts != want {
		t.Fatalf("verdicts = %d, want %d", st.Verdicts, want)
	}
	waitNoGoroutines(t, s)
}

func TestSupervisorRestartBudgetExhausted(t *testing.T) {
	cfg := cheapConfig(6, 3, 4)
	cfg.MaxRestarts = 2
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 2 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1 is poisoned beyond repair. It must die quietly after its
	// restart budget; the other shards keep streaming.
	s.hooks.crashShard = func(shard, round int) bool { return shard == 1 }
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Wait()
	if st.DeadShards != 1 || st.LiveShards != 2 {
		t.Fatalf("dead=%d live=%d, want 1/2", st.DeadShards, st.LiveShards)
	}
	if st.Crashes != 3 || st.Restarts != 2 {
		t.Fatalf("crashes=%d restarts=%d, want 3/2", st.Crashes, st.Restarts)
	}
	// The two surviving shards cover 4 dies for all 4 rounds.
	if want := uint64(4 * 4); st.Verdicts != want {
		t.Fatalf("verdicts = %d, want %d", st.Verdicts, want)
	}
	waitNoGoroutines(t, s)
}

func TestTickTimeoutQuarantinesStalledDie(t *testing.T) {
	cfg := cheapConfig(4, 2, 10)
	cfg.TickTimeout = 5 * time.Millisecond
	cfg.QuarantineAfter = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Die 2's capture wedges on every round — in deployment, a hung
	// sensor readout. Its shard must keep servicing its other dies and
	// the die must end up quarantined, not retried forever.
	s.hooks.stallDie = func(die, round int) time.Duration {
		if die == 2 {
			return 50 * time.Millisecond
		}
		return 0
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Wait()
	if st.Timeouts == 0 {
		t.Fatal("no timeouts recorded for the wedged die")
	}
	if !s.dies[2].quarantined.Load() {
		t.Fatal("wedged die not quarantined")
	}
	if st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	if st.Rounds != 10 {
		t.Fatalf("rounds = %d: the wedged die stalled its shard", st.Rounds)
	}
	// Healthy dies were never starved.
	if healthy := s.agg.st[0].count + s.agg.st[1].count + s.agg.st[3].count; healthy != 3*10 {
		t.Fatalf("healthy dies got %d verdicts, want 30", healthy)
	}
	waitNoGoroutines(t, s)
}

func TestFlatlinedDieQuarantined(t *testing.T) {
	cfg := cheapConfig(3, 1, 20)
	cfg.Severity = 1
	cfg.FlatlineRate = 1 // every die's coil breaks mid-run
	cfg.DriftSpan = 8    // breaks within the first 8 monitored rounds
	cfg.QuarantineAfter = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Wait()
	if st.Quarantined != 3 {
		t.Fatalf("quarantined = %d, want all 3 flatlined dies", st.Quarantined)
	}
	if len(s.Alarms()) != 0 {
		t.Fatalf("flatlined dies raised alarms: %+v", s.Alarms())
	}
	if st.Rejected == 0 {
		t.Fatal("flatline produced no health rejections")
	}
	waitNoGoroutines(t, s)
}

// TestDeterministicAcrossShards locks in the determinism contract: the
// same seed yields the same per-die statistics regardless of how the
// fleet is sharded (only shed verdicts may differ, and nothing is shed
// here).
func TestDeterministicAcrossShards(t *testing.T) {
	run := func(shards int) (*Service, Status) {
		cfg := cheapConfig(9, shards, 6)
		cfg.Severity = 1
		cfg.Prevalence = 0.5
		cfg.QueueSize = 4096
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		return s, s.Wait()
	}
	s1, st1 := run(1)
	s3, st3 := run(3)
	if st1.Verdicts != st3.Verdicts || st1.Infected != st3.Infected {
		t.Fatalf("verdicts/infected differ across shardings: %+v vs %+v", st1, st3)
	}
	for i := range s1.dies {
		a, b := s1.agg.st[i], s3.agg.st[i]
		if a.count != b.count || a.confirmed != b.confirmed || a.ewma != b.ewma {
			t.Fatalf("die %d stats differ across shardings: %+v vs %+v", i, a, b)
		}
		if s1.dies[i].Infected != s3.dies[i].Infected {
			t.Fatalf("die %d infection differs across shardings", i)
		}
	}
	waitNoGoroutines(t, s1)
	waitNoGoroutines(t, s3)
}
