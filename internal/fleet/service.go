package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"emtrust/internal/parallel"
)

// Service is the running fleet: a population of simulated dies, sharded
// monitor workers, their supervisors, and the aggregator. Build with
// New, run with Start, stop with Close (or cancel the Start context);
// Status and Alarms are safe from any goroutine while running.
type Service struct {
	cfg    Config
	pop    *Population
	dies   []*Die
	shards []*shardState
	queue  *ring
	agg    *aggregator

	ctx     context.Context
	cancel  context.CancelFunc
	started atomic.Bool

	producers sync.WaitGroup
	done      chan struct{}

	// goroutines counts every live goroutine the service spawned —
	// including abandoned timed-out ticks — so shutdown tests can
	// assert nothing leaks.
	goroutines atomic.Int64
	timeouts   atomic.Uint64
	start      time.Time

	// hooks inject faults for the chaos tests (in-package only).
	hooks struct {
		// crashShard panics the shard at the top of the given round.
		crashShard func(shard, round int) bool
		// stallDie delays the given die's tick (exercises the capture
		// timeout and quarantine paths).
		stallDie func(die, round int) time.Duration
		// stallAggregator delays the aggregator after the given number
		// of processed verdicts (saturates the queue).
		stallAggregator func(processed uint64) time.Duration
	}
}

// timeoutStreakFactor scales QuarantineAfter into the soft-timeout
// streak threshold: watchdog overruns that each completed before the
// next visit only quarantine after this many times the hard-evidence
// count, because any single one is indistinguishable from scheduler
// jitter on an oversubscribed host.
const timeoutStreakFactor = 4

// shardBatch caps a shard's local verdict batch; batches flush to the
// ring in one lock acquisition at this size and at every sweep end.
// aggBatch sizes the aggregator's drain buffer.
const (
	shardBatch = 64
	aggBatch   = 256
)

// shardState is one worker's slice of the fleet plus its supervision
// counters. runner, timer, and batch are touched only by the shard's
// own goroutine.
type shardState struct {
	id       int
	dies     []*Die
	round    atomic.Int64
	crashes  atomic.Int64
	restarts atomic.Int64
	dead     atomic.Bool
	running  atomic.Bool
	// runner is the shard's persistent watchdog worker (created on
	// first timed tick, replaced when abandoned on a timeout); timer is
	// the reused watchdog timer; batch is the sweep-local verdict
	// buffer flushed into the ring in bulk. congested is set when the
	// last flush shed verdicts: while it holds, the shard flushes
	// per-verdict so drop-oldest thins the stream as uniformly as the
	// unbatched path did, instead of evicting contiguous sweep runs.
	runner    *tickRunner
	timer     *time.Timer
	batch     []verdict
	congested bool
}

// tickRunner is a persistent goroutine the shard hands timed ticks to,
// replacing a per-tick spawn. Its done slot is buffered so a runner
// abandoned on timeout can deliver its late verdict into the void,
// clear the die's busy flag, and exit.
type tickRunner struct {
	req  chan tickReq
	done chan verdict // capacity 1
	exit chan struct{}
}

type tickReq struct {
	die   *Die
	round int
	stall time.Duration
}

// New builds the population and enrolls every die. Enrollment is the
// expensive part (per-die fingerprint fitting); it runs sharded across
// the worker pool and is deterministic per die.
func New(cfg Config) (*Service, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	pop, err := newPopulation(cfg)
	if err != nil {
		return nil, err
	}
	s := &Service{cfg: cfg, pop: pop, dies: make([]*Die, cfg.Dies), done: make(chan struct{})}
	if err := parallel.For(cfg.Dies, func(i int) error {
		d, err := pop.spawn(i)
		if err != nil {
			return err
		}
		s.dies[i] = d
		return nil
	}); err != nil {
		return nil, err
	}
	s.shards = make([]*shardState, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &shardState{id: i}
	}
	for i, d := range s.dies {
		st := s.shards[i%cfg.Shards]
		st.dies = append(st.dies, d)
	}
	s.queue = newRing(cfg.QueueSize)
	s.agg = newAggregator(cfg, s.dies)
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

// InfectedDies returns the ground-truth infected die IDs (the simulated
// fab's secret, for evaluating the alarm list — the detectors never see
// it).
func (s *Service) InfectedDies() []int {
	var out []int
	for _, d := range s.dies {
		if d.Infected {
			out = append(out, d.ID)
		}
	}
	return out
}

// Goroutines returns the number of live service-spawned goroutines.
func (s *Service) Goroutines() int64 { return s.goroutines.Load() }

// Start launches the shards, supervisors, and aggregator. The service
// stops when ctx is cancelled or, with cfg.Rounds > 0, when every shard
// finishes its rounds; either way in-flight verdicts are drained before
// Wait returns.
func (s *Service) Start(ctx context.Context) error {
	if !s.started.CompareAndSwap(false, true) {
		return fmt.Errorf("fleet: service already started")
	}
	s.ctx, s.cancel = context.WithCancel(ctx)
	s.start = time.Now()
	for _, st := range s.shards {
		s.producers.Add(1)
		st := st
		s.spawn(func() {
			defer s.producers.Done()
			s.superviseShard(st)
		})
	}
	// Closer: once every producer is done, close the queue so the
	// aggregator drains the remainder and exits — the graceful-shutdown
	// drain path.
	s.spawn(func() {
		s.producers.Wait()
		s.queue.close()
	})
	s.spawn(func() {
		defer close(s.done)
		if h := s.hooks.stallAggregator; h != nil {
			// Chaos path: the stall hook wants per-verdict granularity so
			// the queue saturates deterministically.
			for {
				v, ok := s.queue.pop()
				if !ok {
					return
				}
				if d := h(s.agg.processedApprox()); d > 0 {
					time.Sleep(d)
				}
				s.agg.ingest(v)
			}
		}
		buf := make([]verdict, aggBatch)
		for {
			n := s.queue.popBatch(buf)
			if n == 0 {
				return
			}
			s.agg.ingestBatch(buf[:n])
		}
	})
	return nil
}

// spawn runs fn on a counted goroutine (see Goroutines).
func (s *Service) spawn(fn func()) {
	s.goroutines.Add(1)
	go func() {
		defer s.goroutines.Add(-1)
		fn()
	}()
}

// Wait blocks until the service has stopped and the verdict stream is
// fully drained, then returns the final status.
func (s *Service) Wait() Status {
	<-s.done
	return s.Status()
}

// Close cancels the service and waits for the drain.
func (s *Service) Close() Status {
	if s.cancel != nil {
		s.cancel()
	}
	return s.Wait()
}

// superviseShard runs one shard under panic recovery, restarting it
// with exponential backoff until the restart budget is exhausted. A
// shard that returns cleanly (context cancelled or rounds finished) is
// not restarted.
func (s *Service) superviseShard(st *shardState) {
	defer st.closeRunner()
	for {
		panicked := s.runShardOnce(st)
		if !panicked {
			return
		}
		st.crashes.Add(1)
		n := st.restarts.Load()
		if n >= int64(s.cfg.MaxRestarts) {
			// Budget exhausted: the shard stays down and its dies go
			// dark. Degraded, deliberately non-fatal — the rest of the
			// fleet keeps streaming.
			st.dead.Store(true)
			return
		}
		st.restarts.Add(1)
		backoff := s.cfg.BackoffBase << uint(n)
		if backoff > s.cfg.BackoffMax || backoff <= 0 {
			backoff = s.cfg.BackoffMax
		}
		select {
		case <-s.ctx.Done():
			return
		case <-time.After(backoff):
		}
	}
}

// runShardOnce ticks the shard's dies round-robin until the context is
// cancelled or the round budget is reached. A panic anywhere in the
// round is recovered, the poisoned round is skipped, and the supervisor
// decides whether to restart.
func (s *Service) runShardOnce(st *shardState) (panicked bool) {
	st.running.Store(true)
	defer st.running.Store(false)
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			// Skip the round that poisoned us: re-running it would hit
			// the same deterministic fault forever.
			st.round.Add(1)
		}
	}()
	if st.batch == nil {
		st.batch = make([]verdict, 0, shardBatch)
	}
	// Registered after the recover defer so it runs first (LIFO): the
	// verdicts produced before a panic are delivered, exactly as the
	// unbatched path delivered them one by one.
	defer st.flush(s.queue)
	for {
		round := int(st.round.Load())
		if s.cfg.Rounds > 0 && round >= s.cfg.Rounds {
			return false
		}
		select {
		case <-s.ctx.Done():
			return false
		default:
		}
		if h := s.hooks.crashShard; h != nil && h(st.id, round) {
			panic(fmt.Sprintf("fleet: injected crash in shard %d round %d", st.id, round))
		}
		// Rotate the sweep's starting die each round: the queue sheds
		// oldest-first under overload, and with a fixed sweep order the
		// same front-of-sweep dies would be the oldest in the queue
		// every single round — systematically starved below MinSamples
		// while the back of the sweep loses nothing. Rotation turns
		// positional starvation into uniform thinning, which is what
		// "degrade statistics gracefully" has to mean per die, not just
		// in aggregate.
		n := len(st.dies)
		for i := 0; i < n; i++ {
			d := st.dies[(i+round)%n]
			if d.quarantined.Load() {
				continue
			}
			v, ok, stuck := s.tickDie(st, d, round)
			// Quarantine evidence comes in two grades. Hard: health
			// rejects and still-stuck visits (the previous tick hadn't
			// finished a full round later) feed consecutiveBad. Soft: a
			// tick that overran the watchdog but completed before the
			// shard came back is usually scheduler jitter on a loaded
			// host, so a single one proves nothing — but a die whose
			// every tick overruns, with no successful verdict in
			// between, is wedged even if each tick eventually finishes;
			// the soft streak quarantines too, at timeoutStreakFactor
			// times the hard threshold. A good verdict resets both.
			if stuck || (ok && v.v.Health.Rejected) {
				d.consecutiveBad++
			}
			if !ok {
				d.consecutiveTimeouts++
			}
			if ok && !v.v.Health.Rejected {
				d.consecutiveBad = 0
				d.consecutiveTimeouts = 0
			}
			if d.consecutiveBad >= s.cfg.QuarantineAfter ||
				d.consecutiveTimeouts >= timeoutStreakFactor*s.cfg.QuarantineAfter {
				// The die is unusable (dead coil, stuck capture): take
				// it out of the monitored set so it neither stalls the
				// shard nor pollutes the fleet statistics. A
				// maintenance event, not a Trojan.
				d.quarantined.Store(true)
			}
			if ok {
				st.batch = append(st.batch, v)
				if st.congested || len(st.batch) == shardBatch {
					st.flush(s.queue)
				}
			}
		}
		st.flush(s.queue)
		st.round.Add(1)
	}
}

// flush delivers the shard's batched verdicts into the ring in one
// lock acquisition and resets the batch, recording whether the ring is
// shedding (the congestion hysteresis: shed → per-verdict flushes,
// clean flush → back to bulk). A shedding flush also yields the
// scheduler slot: drop-oldest must never block a producer, but on an
// oversubscribed host the aggregator can sit runnable-but-unscheduled
// for a whole preemption slice while shards overflow the ring — a
// yield hands it the core and turns scheduler-induced shedding back
// into genuine overload shedding.
func (st *shardState) flush(q *ring) {
	if len(st.batch) == 0 {
		return
	}
	st.congested = q.pushBatch(st.batch) > 0
	st.batch = st.batch[:0]
	if st.congested {
		runtime.Gosched()
	}
}

// closeRunner retires the shard's watchdog worker (if any) and stops
// its timer, so Goroutines drains to zero after shutdown. The current
// runner is always idle here: tickDie either received its result or
// already abandoned and detached it.
func (st *shardState) closeRunner() {
	if r := st.runner; r != nil {
		st.runner = nil
		close(r.req)
		<-r.exit
	}
	if st.timer != nil {
		st.timer.Stop()
	}
}

// tickDie runs one die's round, under the capture watchdog when
// configured. On timeout the die's tick keeps running on an abandoned
// (counted) goroutine and the die is skipped until it completes — one
// wedged die costs its shard at most TickTimeout per round, never a
// stall. The stuck result distinguishes the two failure grades: a
// fresh timeout (watchdog fired this round) is soft — the tick may
// complete moments later — while finding the previous round's tick
// STILL running a full round later is the hard signature of a wedged
// capture, and only that grade feeds the quarantine streak.
func (s *Service) tickDie(st *shardState, d *Die, round int) (v verdict, ok, stuck bool) {
	stall := time.Duration(0)
	if h := s.hooks.stallDie; h != nil {
		stall = h(d.ID, round)
	}
	if s.cfg.TickTimeout <= 0 {
		if stall > 0 {
			time.Sleep(stall)
		}
		return d.tick(round), true, false
	}
	if !d.busy.CompareAndSwap(false, true) {
		// A previous timed-out tick is still running; skip this round
		// rather than racing its state.
		s.timeouts.Add(1)
		return verdict{}, false, true
	}
	r := st.runner
	if r == nil {
		r = s.newTickRunner()
		st.runner = r
	}
	r.req <- tickReq{die: d, round: round, stall: stall}
	if st.timer == nil {
		st.timer = time.NewTimer(s.cfg.TickTimeout)
	} else {
		// The timer is always quiescent here: both arms below leave its
		// channel drained.
		st.timer.Reset(s.cfg.TickTimeout)
	}
	select {
	case v := <-r.done:
		if !st.timer.Stop() {
			<-st.timer.C
		}
		return v, true, false
	case <-st.timer.C:
		s.timeouts.Add(1)
		// Abandon the runner: it finishes the tick on its own counted
		// goroutine, parks the late verdict in its buffered done slot,
		// clears the die's busy flag, and exits. The shard gets a fresh
		// runner on the next timed tick.
		close(r.req)
		st.runner = nil
		return verdict{}, false, false
	}
}

// newTickRunner spawns a shard's persistent watchdog worker: it loops
// on tick requests so the no-timeout happy path costs a channel
// round-trip instead of a goroutine spawn plus timer allocation.
func (s *Service) newTickRunner() *tickRunner {
	r := &tickRunner{req: make(chan tickReq), done: make(chan verdict, 1), exit: make(chan struct{})}
	s.spawn(func() {
		defer close(r.exit)
		for req := range r.req {
			if req.stall > 0 {
				time.Sleep(req.stall)
			}
			v := req.die.tick(req.round)
			req.die.busy.Store(false)
			r.done <- v
		}
	})
	return r
}

// processedApprox reads the aggregator's processed counter for the
// stall hook without taking the snapshot path or any lock.
func (a *aggregator) processedApprox() uint64 {
	return a.processed.Load()
}

// Status is the service's machine-readable health summary, served on
// the /status endpoint. Field names are a stable schema (golden-tested)
// — downstream scrapers depend on them.
type Status struct {
	Dies        int     `json:"dies"`
	Infected    int     `json:"infected"`
	Shards      int     `json:"shards"`
	LiveShards  int     `json:"live_shards"`
	DeadShards  int     `json:"dead_shards"`
	Crashes     int64   `json:"crashes"`
	Restarts    int64   `json:"restarts"`
	Rounds      int64   `json:"rounds"`
	Verdicts    uint64  `json:"verdicts"`
	Dropped     uint64  `json:"dropped"`
	Rejected    uint64  `json:"rejected"`
	Confirmed   uint64  `json:"confirmed"`
	Timeouts    uint64  `json:"timeouts"`
	Quarantined int     `json:"quarantined"`
	QueueLen    int     `json:"queue_len"`
	QueueCap    int     `json:"queue_cap"`
	Eligible    int     `json:"eligible"`
	CommonMode  float64 `json:"common_mode"`
	FleetSigma  float64 `json:"fleet_sigma"`
	Alarms      int     `json:"alarms"`
	FDR         float64 `json:"fdr_q"`
	PThreshold  float64 `json:"p_threshold"`
	UptimeSec   float64 `json:"uptime_sec"`
}

// Status assembles the current service status. Safe from any goroutine.
func (s *Service) Status() Status {
	processed, rejected, confirmed, rank, fleetSig := s.agg.snapshot()
	depth, capacity, dropped := s.queue.stats()
	st := Status{
		Dies:       len(s.dies),
		Shards:     len(s.shards),
		Verdicts:   processed,
		Dropped:    dropped,
		Rejected:   rejected,
		Confirmed:  confirmed,
		Timeouts:   s.timeouts.Load(),
		QueueLen:   depth,
		QueueCap:   capacity,
		Eligible:   rank.Eligible,
		CommonMode: rank.CommonMode,
		FleetSigma: fleetSig,
		FDR:        s.cfg.FDR,
		PThreshold: rank.Threshold,
	}
	if !s.start.IsZero() {
		st.UptimeSec = time.Since(s.start).Seconds()
	}
	for _, d := range s.dies {
		if d.Infected {
			st.Infected++
		}
		if d.quarantined.Load() {
			st.Quarantined++
		}
	}
	st.Alarms = len(s.agg.alarms())
	for _, sh := range s.shards {
		st.Crashes += sh.crashes.Load()
		st.Restarts += sh.restarts.Load()
		if sh.dead.Load() {
			st.DeadShards++
		} else {
			st.LiveShards++
		}
		if r := sh.round.Load(); r > st.Rounds {
			st.Rounds = r
		}
	}
	return st
}

// Alarms returns the current FDR-controlled alarm list, most suspicious
// first. Safe from any goroutine.
func (s *Service) Alarms() []Alarm { return s.agg.alarms() }

// TickOnce synchronously runs one capture-and-evaluate tick of the
// given die at the given round, bypassing the shard workers, watchdog,
// and verdict queue. It exists so benchmarks and allocation gates can
// measure the bare tick path; the production path drives ticks through
// Start. Not safe concurrently with a started service — the tick
// mutates the die's reusable acquisition and evaluation buffers.
func (s *Service) TickOnce(die, round int) {
	s.dies[die].tick(round)
}
