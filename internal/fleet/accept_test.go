package fleet

import (
	"context"
	"testing"
	"time"
)

// TestFleetAcceptance is the ISSUE-7 chaos acceptance run: a
// 1000-die fleet at 1% Trojan prevalence and severity-2 channel
// degradation, with a tenth of shard rounds panicking through the test
// hook, one die's capture wedged solid, and the aggregator stalled
// until the bounded queue sheds. The service must keep running through
// all of it: every crashed shard restarted, drops counted, the wedged
// die quarantined — and the alarm list must still flag at least 90% of
// the infected dies with at most 5% false discovery.
func TestFleetAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance run is heavy; skipped in -short")
	}
	cfg := DefaultConfig()
	cfg.Dies = 1000
	cfg.Shards = 8
	cfg.Prevalence = 0.01
	cfg.Severity = 2
	cfg.Rounds = 24
	cfg.TickAverages = 4
	cfg.GoldenTraces = 8
	cfg.NullTraces = 12
	cfg.QueueSize = 256
	cfg.MinSamples = 6
	// Generous relative to an honest tick (sub-millisecond of CPU) so
	// scheduler jitter on a loaded box cannot fake a wedged die, but
	// far below the injected 600ms wedge.
	cfg.TickTimeout = 150 * time.Millisecond
	cfg.QuarantineAfter = 4
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 8 * time.Millisecond

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	infected := s.InfectedDies()
	if len(infected) < 5 {
		t.Fatalf("seed produced only %d infected dies; acceptance needs a real cohort", len(infected))
	}

	// Chaos, all deterministic in (shard, round) / (die, round):
	// roughly 10% of shard rounds panic...
	s.hooks.crashShard = func(shard, round int) bool {
		return splitmix64(uint64(shard)<<32|uint64(round))%10 == 0
	}
	// ...one clean die's capture wedges solid from round 3 on...
	wedged := -1
	for _, d := range s.dies {
		if !d.Infected && !d.Flatlined {
			wedged = d.ID
			break
		}
	}
	s.hooks.stallDie = func(die, round int) time.Duration {
		if die == wedged && round >= 3 {
			return 600 * time.Millisecond
		}
		return 0
	}
	// ...and the aggregator stalls until the queue saturates and sheds
	// its first verdict, then recovers. The stall must be a transient,
	// not a steady state: under sustained saturation drop-oldest evicts
	// whatever was pushed first, which systematically starves the
	// low-numbered dies of every shard below MinSamples. Keying the
	// stall off the shed count (rather than a fixed processed count)
	// makes the transient's depth independent of how fast the tick path
	// runs — a fixed count calibrated for one tick speed turns into a
	// fleet-wide blackout when the ticks get faster.
	s.hooks.stallAggregator = func(processed uint64) time.Duration {
		if _, _, dropped := s.queue.stats(); dropped == 0 {
			return 500 * time.Microsecond
		}
		return 0
	}

	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Wait()

	// Robustness: the service survived the chaos.
	if st.Crashes == 0 {
		t.Fatal("chaos hook produced no crashes")
	}
	if st.Restarts != st.Crashes {
		t.Fatalf("crashes=%d restarts=%d: not every crashed shard was restarted", st.Crashes, st.Restarts)
	}
	if st.DeadShards != 0 || st.LiveShards != cfg.Shards {
		t.Fatalf("dead=%d live=%d: a shard exhausted its restart budget", st.DeadShards, st.LiveShards)
	}
	if st.Rounds != int64(cfg.Rounds) {
		t.Fatalf("rounds = %d, want %d", st.Rounds, cfg.Rounds)
	}
	if st.Dropped == 0 {
		t.Fatal("saturated queue shed nothing — backpressure path not exercised")
	}
	if st.Timeouts == 0 {
		t.Fatal("wedged die produced no capture timeouts")
	}
	if !s.dies[wedged].quarantined.Load() {
		t.Fatalf("wedged die %d not quarantined", wedged)
	}

	// Detection: >=90% recall, <=5% false discovery.
	alarms := s.Alarms()
	isInfected := make(map[int]bool, len(infected))
	for _, id := range infected {
		isInfected[id] = true
	}
	hits, falses := 0, 0
	for _, a := range alarms {
		if isInfected[a.Die] {
			hits++
		} else {
			falses++
		}
	}
	t.Logf("infected=%d alarms=%d hits=%d falses=%d dropped=%d crashes=%d quarantined=%d",
		len(infected), len(alarms), hits, falses, st.Dropped, st.Crashes, st.Quarantined)
	if 10*hits < 9*len(infected) {
		alarmed := make(map[int]bool, len(alarms))
		for _, a := range alarms {
			alarmed[a.Die] = true
		}
		for _, id := range infected {
			if !alarmed[id] {
				st := &s.agg.st[id]
				t.Logf("missed infected die %d: count=%d confirmed=%d ewma=%.2f quarantined=%v",
					id, st.count, st.confirmed, st.ewma, s.dies[id].quarantined.Load())
			}
		}
		t.Fatalf("recall %d/%d below 90%% (alarms: %+v)", hits, len(infected), alarms)
	}
	if len(alarms) > 0 && 20*falses > len(alarms) {
		t.Fatalf("false discovery %d/%d above 5%%", falses, len(alarms))
	}

	// Graceful end: everything drained, nothing leaked.
	if st.QueueLen != 0 {
		t.Fatalf("queue_len = %d after drain", st.QueueLen)
	}
	waitNoGoroutines(t, s)
}
