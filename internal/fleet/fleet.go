// Package fleet is the population-scale layer over the single-die
// runtime monitor: a long-running service that simulates and monitors
// thousands of deployed dies at once. Each die is an independent
// process-variation sibling of one shared reference build (per-tile
// current gains drawn from the corner/variation model), ages through
// its own internal/degrade drift profile, and carries its own
// post-deployment fingerprint; sharded workers stream per-die verdicts
// into a bounded-memory aggregator that cancels the fleet's common mode
// (the cross-die analog of core.SelfReference's neighbor median) and
// ranks alarms under Benjamini-Hochberg false-discovery control.
//
// Robustness is the design center, not a bolt-on:
//
//   - the verdict queue is bounded with an explicit drop-oldest
//     shedding policy and a counted Dropped metric — overload degrades
//     statistics gracefully instead of growing memory or stalling
//     producers;
//   - every shard worker runs under panic recovery with a per-shard
//     supervisor that restarts it with exponential backoff and a
//     restart budget;
//   - per-die capture carries a retry and an optional timeout, and dies
//     that stay unusable are quarantined, so one flatlined sensor can
//     neither stall its shard nor poison the population statistics;
//   - shutdown is context-based and drains in-flight verdicts before
//     the aggregator exits.
//
// Determinism: every die's waveforms, faults, and infection status
// derive from (Config.Seed, die, purpose, index) via splitmix64, so the
// simulated fleet is identical across runs and shard counts; only
// which verdicts are shed under overload depends on scheduling.
package fleet

import (
	"fmt"
	"math/rand"
	"time"

	"emtrust/internal/chip"
	"emtrust/internal/trojan"
)

// Config sizes and seeds the fleet service. The zero value is not
// runnable; start from DefaultConfig.
type Config struct {
	// Chip is the shared reference build every die is a
	// process-variation sibling of.
	Chip chip.Config
	// Key and Plaintext fix the monitored encryption stimulus
	// (fingerprinting assumes a known, repeatable workload).
	Key       []byte
	Plaintext []byte

	// Dies is the population size.
	Dies int
	// Shards is the number of monitor-pool workers; dies are dealt
	// round-robin. Default 4.
	Shards int
	// Seed drives every per-die random draw.
	Seed int64

	// Prevalence is the fraction of dies fabricated with the Trojan
	// (each die draws independently, so the realized count is binomial).
	Prevalence float64
	// Trojan is the payload planted in infected dies. Default
	// T1AMLeaker: its emission delta is the largest of the four stock
	// payloads while its amplitude stays inside a degraded ADC rail
	// (T4PowerHog's sustained draw clips a severity-2 converter, which
	// the health gate reads as a dying sensor, not a Trojan).
	Trojan trojan.Kind
	// ActivationRound is the monitored round at which infected dies'
	// Trojans trigger (fingerprints are always enrolled pre-activation).
	ActivationRound int
	// TrojanStates is how many captured states of the active Trojan the
	// infected dies cycle through (Trojans with internal counters evolve
	// across captures). Default 4.
	TrojanStates int

	// VariationSigma and CornerSigma follow power.Config's process
	// model, applied per tile: each die's tile currents are scaled by
	// corner * (1 + VariationSigma*N(0,1)) with the corner shared
	// across the die. Defaults 0.05 each.
	VariationSigma float64
	CornerSigma    float64

	// Severity scales every die's degrade.Profile; each die draws a
	// personal factor in [0.5, 1.5) on top. <= 0 leaves channels
	// pristine.
	Severity float64
	// DriftSpan is the trace count over which profile drift accrues to
	// its full value. Default 400.
	DriftSpan int
	// FlatlineRate is the fraction of dies whose sensor dies outright
	// partway through the run (graceful-degradation fodder: they must
	// end up quarantined, not in the alarm list).
	FlatlineRate float64
	// CommonModeAmp and CommonModePeriod shape a fleet-wide sinusoidal
	// gain wobble (ambient temperature, supply season) that every die
	// sees identically — the signal the cross-die reference must
	// cancel. Defaults 0.01 and 200 rounds.
	CommonModeAmp    float64
	CommonModePeriod int

	// CaptureCycles is the capture window; GoldenTraces fit each die's
	// fingerprint and health envelope; NullTraces calibrate its null
	// distance distribution. Defaults 32/12/16.
	CaptureCycles int
	GoldenTraces  int
	NullTraces    int
	// TickAverages is how many back-to-back acquisitions are averaged
	// into every trace (enrollment, calibration, and monitoring alike).
	// Averaging buys detection floor directly: channel noise shrinks as
	// sqrt(TickAverages) and its bursty tails gaussianize, while the
	// Trojan's emission delta and the tracked aging drift pass through
	// untouched. Default 8.
	TickAverages int

	// QueueSize bounds the verdict queue between shards and the
	// aggregator. Default 1024.
	QueueSize int
	// Rounds stops each shard after that many monitored rounds per die;
	// 0 runs until the context is cancelled.
	Rounds int
	// TickTimeout bounds one die's capture+evaluate; 0 disables the
	// watchdog (the simulated capture cannot block on hardware, but a
	// stalled die in deployment can, and tests inject stalls).
	TickTimeout time.Duration
	// QuarantineAfter is the consecutive bad ticks (health-rejected, or
	// found still running a full round after its watchdog fired) after
	// which a die is quarantined. A tick that merely overran TickTimeout
	// but finished before the shard's next visit is scheduler jitter,
	// not die evidence, and does not feed the streak. Default 8.
	QuarantineAfter int

	// MaxRestarts is the per-shard supervisor restart budget; a shard
	// that exhausts it stays down (degraded, not fatal). Default 8.
	MaxRestarts int
	// BackoffBase doubles per consecutive restart up to BackoffMax.
	// Defaults 50ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// ThresholdK is each die's alarm threshold in null-calibrated sigma
	// units, and doubles as the drift tracker's freeze guard: a residual
	// beyond ThresholdK sigmas stops the tracker from learning (it
	// coasts on the trend it already holds), so smooth aging is tracked
	// away while a Trojan's activation step stays visible instead of
	// being absorbed into the baseline. Default 6.
	ThresholdK float64
	// EWMAAlpha smooths each die's z-score stream in the aggregator.
	// Default 0.15.
	EWMAAlpha float64
	// MinSamples is the verdict count before a die joins the
	// false-discovery family. Default 8.
	MinSamples int
	// RankEvery re-ranks the fleet every that many aggregated verdicts
	// (status requests also re-rank on demand). Default max(64, Dies).
	RankEvery int
	// FDR is the Benjamini-Hochberg false discovery rate of the alarm
	// list. Default 0.05.
	FDR float64
	// MinCohort gates common-mode cancellation (see
	// core.PopulationConfig). Default 8.
	MinCohort int
}

// DefaultConfig returns a small but fully-featured fleet: 64 dies on 4
// shards at 1% prevalence, severity-1 aging, and the default chip
// build.
func DefaultConfig() Config {
	return Config{
		Chip: chip.DefaultConfig(),
		Key: []byte{
			0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
			0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
		},
		Plaintext: []byte{
			0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
			0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34,
		},
		Dies:       64,
		Shards:     4,
		Seed:       1,
		Prevalence: 0.01,
		Severity:   1,
	}
}

func (c Config) withDefaults() (Config, error) {
	if c.Dies <= 0 {
		return c, fmt.Errorf("fleet: need a positive die count, got %d", c.Dies)
	}
	if len(c.Key) != 16 || len(c.Plaintext) != 16 {
		return c, fmt.Errorf("fleet: need 16-byte key and plaintext")
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Shards > c.Dies {
		c.Shards = c.Dies
	}
	if c.Trojan == 0 {
		c.Trojan = trojan.T1AMLeaker
	}
	if c.TrojanStates <= 0 {
		c.TrojanStates = 4
	}
	if c.VariationSigma == 0 {
		c.VariationSigma = 0.05
	}
	if c.CornerSigma == 0 {
		c.CornerSigma = 0.05
	}
	if c.DriftSpan <= 0 {
		c.DriftSpan = 400
	}
	if c.CommonModeAmp == 0 {
		c.CommonModeAmp = 0.01
	}
	if c.CommonModePeriod <= 0 {
		c.CommonModePeriod = 200
	}
	if c.CaptureCycles <= 0 {
		c.CaptureCycles = 32
	}
	if c.GoldenTraces < 2 {
		c.GoldenTraces = 12
	}
	if c.NullTraces < 4 {
		c.NullTraces = 16
	}
	if c.TickAverages <= 0 {
		c.TickAverages = 8
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 8
	}
	if c.MaxRestarts < 0 {
		c.MaxRestarts = 0
	} else if c.MaxRestarts == 0 {
		c.MaxRestarts = 8
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.ThresholdK <= 0 {
		c.ThresholdK = 6
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.15
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.RankEvery <= 0 {
		c.RankEvery = 64
		if c.Dies > c.RankEvery {
			c.RankEvery = c.Dies
		}
	}
	if c.FDR <= 0 || c.FDR >= 1 {
		c.FDR = 0.05
	}
	if c.MinCohort <= 0 {
		c.MinCohort = 8
	}
	return c, nil
}

// Random-draw purposes. Every stochastic element of one die derives
// from (Seed, die, purpose, index) through splitmix64, so the fleet is
// identical across runs, shard counts, and schedules.
const (
	purposeParams = iota // corner, gains, infection, severity, flatline
	purposeGolden        // fingerprint enrollment acquisitions
	purposeNull          // null-distance calibration acquisitions
	purposeTick          // monitored acquisitions
	purposeRetry         // the bounded re-acquisition after a health reject
)

// splitmix64 is the SplitMix64 finalizer, the same mixing primitive the
// chip's per-trace streams use.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// dieSeed hashes one (die, purpose, index) draw site to its generator
// seed.
func dieSeed(seed int64, die, purpose int, index uint64) int64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ splitmix64(uint64(die)+1))
	h = splitmix64(h ^ splitmix64(uint64(purpose)+0x1000))
	h = splitmix64(h ^ splitmix64(index+0x100000))
	return int64(h)
}

// dieRand returns the private generator for one (die, purpose, index)
// draw site. Hot paths keep a per-die *rand.Rand and Seed it with
// dieSeed instead — reseeding resets the source to the identical
// stream without the ~5 KB generator allocation.
func dieRand(seed int64, die, purpose int, index uint64) *rand.Rand {
	return rand.New(rand.NewSource(dieSeed(seed, die, purpose, index)))
}
