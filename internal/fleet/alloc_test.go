package fleet

import "testing"

// The allocation gates pin the hot-path memory discipline: after the
// first warming round, a monitored tick must not allocate beyond the
// two fixed-size verdict-payload copies the evaluator hands back, and
// a raw acquisition must not allocate at all. These run only without
// -race (see raceEnabled).

func allocService(t testing.TB) *Service {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Dies = 4
	cfg.Shards = 1
	cfg.TickAverages = 4 // exercise the trimmed-mean fused pass
	cfg.GoldenTraces = 6
	cfg.NullTraces = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTickAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run the gate without -race")
	}
	s := allocService(t)
	d := s.dies[0]
	d.tick(0) // warm the reusable buffers
	round := 1
	avg := testing.AllocsPerRun(200, func() {
		d.tick(round)
		round++
	})
	if avg > 2 {
		t.Fatalf("Die.tick allocates %.1f times per round, want <= 2", avg)
	}
}

func TestAcquireAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run the gate without -race")
	}
	s := allocService(t)
	d := s.dies[0]
	d.acquire(0, d.dormant, 1, purposeTick, 0) // warm acqAcc/acqDraw/acqLo/acqHi
	round := uint64(1)
	avg := testing.AllocsPerRun(200, func() {
		d.acquire(int(round), d.dormant, 1, purposeTick, round)
		round++
	})
	if avg != 0 {
		t.Fatalf("Die.acquire allocates %.1f times per call, want 0", avg)
	}
}
