package fleet

import "sync"

// ring is the bounded verdict queue between the shard workers and the
// aggregator. Its shedding policy is drop-oldest: a full queue evicts
// the stalest verdict to admit the new one, and every eviction is
// counted. The choice is deliberate — under overload the aggregator's
// per-die statistics recover from losing old samples (the EWMA simply
// sees a sparser stream), whereas blocking producers would stall whole
// shards behind one slow consumer and an unbounded queue would grow
// until the process dies. Memory is fixed at construction: one slice,
// no per-push allocation.
type ring struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	buf      []verdict
	head     int // index of the oldest element
	n        int // elements in the buffer
	dropped  uint64
	closed   bool
}

func newRing(capacity int) *ring {
	if capacity < 1 {
		capacity = 1
	}
	r := &ring{buf: make([]verdict, capacity)}
	r.nonEmpty = sync.NewCond(&r.mu)
	return r
}

// push admits v, evicting the oldest entry when full. It never blocks.
// Pushes after close are counted as drops: the aggregator is gone, so
// the verdict is shed, not leaked into a queue nobody drains.
func (r *ring) push(v verdict) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		r.dropped++
		return
	}
	if r.n == len(r.buf) {
		r.head = (r.head + 1) % len(r.buf)
		r.n--
		r.dropped++
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
	r.nonEmpty.Signal()
}

// pushBatch admits every element of vs under one lock acquisition,
// element-wise identical to a sequence of push calls: each admission
// may evict the then-oldest entry, and every eviction (or post-close
// shed) is counted. It returns the number of verdicts shed, which
// producers use as a congestion signal to shrink their batches — bulk
// admission under saturation would evict contiguous runs of one
// shard's sweep and systematically starve the same dies, where
// fine-grained interleaving thins the stream uniformly. One Signal
// suffices — the ring has a single consumer.
func (r *ring) pushBatch(vs []verdict) (shed int) {
	if len(vs) == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		r.dropped += uint64(len(vs))
		return len(vs)
	}
	for _, v := range vs {
		if r.n == len(r.buf) {
			r.head = (r.head + 1) % len(r.buf)
			r.n--
			r.dropped++
			shed++
		}
		r.buf[(r.head+r.n)%len(r.buf)] = v
		r.n++
	}
	r.nonEmpty.Signal()
	return shed
}

// pop blocks until an element is available or the ring is closed and
// drained; ok is false only in the latter case. A closed ring still
// hands out its remaining elements — close-then-drain is the graceful
// shutdown path.
func (r *ring) pop() (verdict, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.n == 0 && !r.closed {
		r.nonEmpty.Wait()
	}
	if r.n == 0 {
		return verdict{}, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = verdict{} // drop references for the GC
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v, true
}

// popBatch blocks like pop until something is available, then drains
// up to len(buf) elements in one lock acquisition and returns how many
// it wrote. Zero only when the ring is closed and drained.
func (r *ring) popBatch(buf []verdict) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.n == 0 && !r.closed {
		r.nonEmpty.Wait()
	}
	n := r.n
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = r.buf[r.head]
		r.buf[r.head] = verdict{} // drop references for the GC
		r.head = (r.head + 1) % len(r.buf)
	}
	r.n -= n
	return n
}

// close stops admissions and wakes blocked consumers once the remaining
// elements are drained.
func (r *ring) close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.nonEmpty.Broadcast()
}

// stats returns the current depth, capacity, and drop count.
func (r *ring) stats() (depth, capacity int, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n, len(r.buf), r.dropped
}
