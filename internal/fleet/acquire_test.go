package fleet

import (
	"fmt"
	"testing"
)

// referenceAcquire reproduces Die.acquire through the allocating
// pre-pooling path: one fresh RNG per draw (dieRand), one allocating
// channel.AcquireAt per draw on a pre-scaled waveform, then the
// per-sample combine in the same sequential arithmetic order acquire
// uses. Agreement must be bit-exact — it proves the in-place reseed,
// the buffer reuse, and the scale folding changed nothing.
func referenceAcquire(d *Die, idx int, wave []float64, scale float64, purpose int, index uint64) []float64 {
	cfg := d.pop.cfg
	m := uint64(cfg.TickAverages)
	scaled := wave
	if scale != 1 {
		scaled = make([]float64, len(wave))
		for i, v := range wave {
			scaled[i] = v * scale
		}
	}
	draws := make([][]float64, m)
	for k := uint64(0); k < m; k++ {
		rng := dieRand(cfg.Seed, d.ID, purpose, index*m+k)
		tr := d.channel.AcquireAt(idx, scaled, d.pop.dt, rng)
		draws[k] = append([]float64(nil), tr.Samples...)
	}
	n := len(draws[0])
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		sum, lo, hi := draws[0][j], draws[0][j], draws[0][j]
		for k := uint64(1); k < m; k++ {
			v := draws[k][j]
			sum += v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if m >= 4 {
			out[j] = (sum - lo - hi) * (1 / float64(m-2))
		} else {
			out[j] = sum * (1 / float64(m))
		}
	}
	return out
}

// TestAcquireTrimEdgeCases pins the averaging-count boundary: one draw
// passes through untouched, two and three draws take the plain mean
// (trimming min and max would leave 0 or 1 samples), and four or more
// switch to the trimmed mean. Each count is checked bit-exactly against
// the allocating reference path.
func TestAcquireTrimEdgeCases(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 6} {
		t.Run(fmt.Sprintf("averages=%d", m), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Seed = 11
			cfg.Dies = 2
			cfg.Shards = 1
			cfg.TickAverages = m
			cfg.GoldenTraces = 6
			cfg.NullTraces = 8
			cfg.Severity = 2 // bursts and dropouts make the trim visible
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			d := s.dies[0]
			for round := 0; round < 4; round++ {
				idx := d.fitCount + round
				want := referenceAcquire(d, idx, d.dormant, 1.25, purposeTick, uint64(round))
				got := d.acquire(idx, d.dormant, 1.25, purposeTick, uint64(round))
				if len(got.Samples) != len(want) {
					t.Fatalf("round %d: %d samples, want %d", round, len(got.Samples), len(want))
				}
				for j := range want {
					if got.Samples[j] != want[j] {
						t.Fatalf("round %d sample %d: %v != reference %v (m=%d)",
							round, j, got.Samples[j], want[j], m)
					}
				}
			}
		})
	}
}

// TestAcquireTrimVsPlainMean demonstrates the boundary is real: with
// four or more draws the combined trace is NOT the plain mean of the
// draws whenever the channel glitches a draw, while at three it is
// exactly the plain mean.
func TestAcquireTrimVsPlainMean(t *testing.T) {
	plainMean := func(d *Die, idx int, index uint64) []float64 {
		cfg := d.pop.cfg
		m := uint64(cfg.TickAverages)
		var sum []float64
		for k := uint64(0); k < m; k++ {
			rng := dieRand(cfg.Seed, d.ID, purposeTick, index*m+k)
			tr := d.channel.AcquireAt(idx, d.dormant, d.pop.dt, rng)
			if sum == nil {
				sum = make([]float64, len(tr.Samples))
			}
			for j, v := range tr.Samples {
				sum[j] += v
			}
		}
		for j := range sum {
			sum[j] /= float64(m)
		}
		return sum
	}
	build := func(m int) (*Service, *Die) {
		cfg := DefaultConfig()
		cfg.Seed = 11
		cfg.Dies = 2
		cfg.Shards = 1
		cfg.TickAverages = m
		cfg.GoldenTraces = 6
		cfg.NullTraces = 8
		cfg.Severity = 3
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s, s.dies[0]
	}

	_, d4 := build(4)
	diverged := false
	for round := 0; round < 16 && !diverged; round++ {
		idx := d4.fitCount + round
		mean := plainMean(d4, idx, uint64(round))
		got := d4.acquire(idx, d4.dormant, 1, purposeTick, uint64(round))
		for j := range mean {
			if got.Samples[j] != mean[j] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Error("trimmed mean at TickAverages=4 never diverged from the plain mean across 16 glitchy rounds")
	}
}

// TestAcquireReturnsOwnedBuffer documents the aliasing contract: the
// trace acquire returns is the die-owned accumulator, overwritten by
// the next acquire. Retaining callers (enrollment) must Clone.
func TestAcquireReturnsOwnedBuffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.Dies = 2
	cfg.Shards = 1
	cfg.TickAverages = 2
	cfg.GoldenTraces = 6
	cfg.NullTraces = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := s.dies[0]
	t1 := d.acquire(0, d.dormant, 1, purposeTick, 0)
	first := t1.Samples[0]
	t2 := d.acquire(1, d.dormant, 1, purposeTick, 1)
	if &t1.Samples[0] != &t2.Samples[0] {
		t.Fatal("acquire returned distinct buffers; the pooled contract expects the shared accumulator")
	}
	if t1.Samples[0] == first {
		t.Skip("second acquisition coincidentally matched the first sample; aliasing not observable")
	}
}
