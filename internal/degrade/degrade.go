// Package degrade injects measurement-chain faults between the coil and
// the data-analysis module. A deployed sensor does not stay healthy for
// the life of the device: its ADC saturates, samples drop or stick, the
// front end picks up burst interference, gain and offset drift with
// aging and temperature, the sample clock jitters, and in the worst case
// the coil breaks or is tampered flat. Each of those failure modes is a
// composable Stage; a Channel wraps any trace.Channel with a stage list,
// so every experiment can acquire through an injected-fault chain and
// the runtime monitor can be graded on telling "Trojan activated" from
// "sensor dying".
//
// Determinism contract: stages draw all randomness from the per-capture
// generator handed to Acquire (the experiments derive it from
// chip.SplitRand), and drift-like stages depend only on the explicit
// trace index, so a degraded stream is bit-identical for a given seed.
package degrade

import (
	"math"
	"sync/atomic"

	"emtrust/internal/trace"
)

// Env carries per-acquisition context into a stage: the sample spacing,
// the trace's index along the deployment timeline (drift accrues with
// it), and the capture's private random generator.
type Env struct {
	Dt    float64
	Index int
	Rng   trace.Rand
	// scratch, when non-nil, points at a channel-owned reusable buffer
	// stages may borrow via scratchBuf instead of allocating. Only the
	// Into acquisition path wires it; a zero Env keeps every stage
	// allocation-free of shared state and safe to use concurrently.
	scratch *[]float64
}

// scratchBuf returns a length-n scratch slice for a stage's private
// use within one Apply call, reusing the channel-owned buffer when the
// Env carries one.
func (e Env) scratchBuf(n int) []float64 {
	if e.scratch == nil {
		return make([]float64, n)
	}
	buf := *e.scratch
	if cap(buf) < n {
		buf = make([]float64, n)
		*e.scratch = buf
	}
	return buf[:n]
}

// Stage mutates one acquired trace in place.
type Stage interface {
	// Name identifies the stage in logs and reports.
	Name() string
	// Apply degrades the samples in place.
	Apply(samples []float64, env Env)
}

// Identity is the no-op inner channel: it copies the input waveform
// verbatim. Wrapping it turns a stage list into a pure re-measurement
// chain, which lets experiments replay an already-acquired trace set
// through a fault profile without touching the originals.
type Identity struct{}

// Acquire copies the waveform into a fresh trace.
func (Identity) Acquire(clean []float64, dt float64, _ trace.Rand) *trace.Trace {
	s := make([]float64, len(clean))
	copy(s, clean)
	return &trace.Trace{Dt: dt, Samples: s}
}

// AcquireScaledInto implements trace.ScaledAcquirer: the waveform times
// scale, written into dst's reused buffer.
func (Identity) AcquireScaledInto(dst *trace.Trace, clean []float64, scale, dt float64, _ trace.Rand) *trace.Trace {
	s := dst.Samples
	if cap(s) < len(clean) {
		s = make([]float64, len(clean))
	} else {
		s = s[:len(clean)]
	}
	for i, v := range clean {
		s[i] = v * scale
	}
	dst.Dt = dt
	dst.Samples = s
	return dst
}

// Channel wraps an inner acquisition channel with degradation stages,
// applied in order after the healthy acquisition (the faults live in the
// readout chain, downstream of the physics).
type Channel struct {
	Inner  trace.Channel
	Stages []Stage
	next   atomic.Int64
	// stageScratch and scaleScratch back the allocation-free
	// AcquireAtInto path; they make that method (and only it) unsafe
	// for concurrent use.
	stageScratch []float64
	scaleScratch []float64
}

// Wrap builds a degraded channel over inner.
func Wrap(inner trace.Channel, stages ...Stage) *Channel {
	return &Channel{Inner: inner, Stages: stages}
}

// Acquire implements trace.Channel, advancing an internal timeline
// index per call. The internal index makes this order-sensitive: loops
// that may be reordered or parallelized must use AcquireAt with an
// explicit index instead.
func (c *Channel) Acquire(clean []float64, dt float64, rng trace.Rand) *trace.Trace {
	return c.AcquireAt(int(c.next.Add(1)-1), clean, dt, rng)
}

// AcquireAt acquires through the inner channel and applies every stage
// with the given timeline index. Deterministic for a given (index, rng).
func (c *Channel) AcquireAt(index int, clean []float64, dt float64, rng trace.Rand) *trace.Trace {
	t := c.Inner.Acquire(clean, dt, rng)
	env := Env{Dt: dt, Index: index, Rng: rng}
	for _, s := range c.Stages {
		s.Apply(t.Samples, env)
	}
	return t
}

// AcquireAtInto is AcquireAt writing into dst (reusing dst's sample
// buffer) with the clean waveform pre-multiplied by scale, and with
// the channel's internal scratch lent to the stages. Bit-identical to
// scaling the waveform yourself and calling AcquireAt, but with zero
// steady-state allocations when the inner channel implements
// trace.ScaledAcquirer. NOT safe for concurrent use on one Channel —
// the scratch buffers are channel-owned; concurrent acquirers must
// keep using AcquireAt.
func (c *Channel) AcquireAtInto(index int, dst *trace.Trace, clean []float64, scale, dt float64, rng trace.Rand) *trace.Trace {
	if sa, ok := c.Inner.(trace.ScaledAcquirer); ok {
		dst = sa.AcquireScaledInto(dst, clean, scale, dt, rng)
	} else {
		if scale != 1 {
			if cap(c.scaleScratch) < len(clean) {
				c.scaleScratch = make([]float64, len(clean))
			}
			buf := c.scaleScratch[:len(clean)]
			for i, v := range clean {
				buf[i] = v * scale
			}
			clean = buf
		}
		*dst = *c.Inner.Acquire(clean, dt, rng)
	}
	env := Env{Dt: dt, Index: index, Rng: rng, scratch: &c.stageScratch}
	for _, s := range c.Stages {
		s.Apply(dst.Samples, env)
	}
	return dst
}

// Clip saturates the record at the ADC rails ±Rail, the signature of a
// front-end gain that drifted past the converter's full scale.
type Clip struct {
	Rail float64
}

func (c Clip) Name() string { return "clip" }

func (c Clip) Apply(s []float64, _ Env) {
	if c.Rail <= 0 {
		return
	}
	for i, v := range s {
		if v > c.Rail {
			s[i] = c.Rail
		} else if v < -c.Rail {
			s[i] = -c.Rail
		}
	}
}

// Dropout zeroes individual samples with probability Rate per sample
// (missed ADC conversions).
type Dropout struct {
	Rate float64
}

func (d Dropout) Name() string { return "dropout" }

func (d Dropout) Apply(s []float64, env Env) {
	if d.Rate <= 0 {
		return
	}
	for i := range s {
		if env.Rng.Float64() < d.Rate {
			s[i] = 0
		}
	}
}

// Stuck starts, with probability Rate per sample, a run in which the
// converter repeats its previous output (a stuck sample-and-hold). Run
// lengths are uniform in [1, 2*MeanRun-1], mean MeanRun.
type Stuck struct {
	Rate    float64
	MeanRun int
}

func (g Stuck) Name() string { return "stuck" }

func (g Stuck) Apply(s []float64, env Env) {
	if g.Rate <= 0 || len(s) < 2 {
		return
	}
	mean := g.MeanRun
	if mean < 1 {
		mean = 1
	}
	for i := 1; i < len(s); i++ {
		if env.Rng.Float64() >= g.Rate {
			continue
		}
		run := 1 + env.Rng.Intn(2*mean-1)
		hold := s[i-1]
		for j := 0; j < run && i < len(s); j, i = j+1, i+1 {
			s[i] = hold
		}
	}
}

// Burst adds runs of strong white noise (relay chatter, a neighbouring
// driver switching): with probability Rate per sample a burst of RMS
// amplitude starts, lasting uniform [1, 2*MeanRun-1] samples.
type Burst struct {
	Rate    float64
	RMS     float64
	MeanRun int
}

func (b Burst) Name() string { return "burst" }

func (b Burst) Apply(s []float64, env Env) {
	if b.Rate <= 0 || b.RMS <= 0 {
		return
	}
	mean := b.MeanRun
	if mean < 1 {
		mean = 1
	}
	for i := 0; i < len(s); i++ {
		if env.Rng.Float64() >= b.Rate {
			continue
		}
		run := 1 + env.Rng.Intn(2*mean-1)
		for j := 0; j < run && i < len(s); j, i = j+1, i+1 {
			s[i] += env.Rng.NormFloat64() * b.RMS
		}
	}
}

// Drift applies slow front-end aging: by trace index i the gain has
// moved to 1 + GainPerTrace*i and the offset to OffsetPerTrace*i. Within
// one trace the drift is constant — aging is slow against a capture
// window.
type Drift struct {
	GainPerTrace   float64
	OffsetPerTrace float64
}

func (d Drift) Name() string { return "drift" }

func (d Drift) Apply(s []float64, env Env) {
	gain := 1 + d.GainPerTrace*float64(env.Index)
	offset := d.OffsetPerTrace * float64(env.Index)
	if gain == 1 && offset == 0 {
		return
	}
	for i, v := range s {
		s[i] = v*gain + offset
	}
}

// Jitter resamples the record with Gaussian sample-clock jitter of
// RMSFraction sample periods, by linear interpolation between the
// neighbouring true samples.
type Jitter struct {
	RMSFraction float64
}

func (j Jitter) Name() string { return "jitter" }

func (j Jitter) Apply(s []float64, env Env) {
	if j.RMSFraction <= 0 || len(s) < 2 {
		return
	}
	orig := env.scratchBuf(len(s))
	copy(orig, s)
	max := float64(len(s) - 1)
	for i := range s {
		pos := float64(i) + env.Rng.NormFloat64()*j.RMSFraction
		if pos < 0 {
			pos = 0
		} else if pos > max {
			pos = max
		}
		lo := int(pos)
		frac := pos - float64(lo)
		if lo >= len(s)-1 {
			s[i] = orig[len(s)-1]
			continue
		}
		s[i] = orig[lo]*(1-frac) + orig[lo+1]*frac
	}
}

// Flatline kills the channel outright (coil break, tamper) from trace
// index Start onward: the record collapses to the constant Level.
type Flatline struct {
	Start int
	Level float64
}

func (f Flatline) Name() string { return "flatline" }

func (f Flatline) Apply(s []float64, env Env) {
	if env.Index < f.Start {
		return
	}
	for i := range s {
		s[i] = f.Level
	}
}

// Profile bundles the standard fault mix of an aging front end at one
// severity knob, with magnitudes anchored to the healthy channel's
// signal RMS. Severity 1 is a plausibly degraded deployed sensor (mild
// bursts, slow drift, occasional glitches); severity grows every rate
// and amplitude linearly and pulls the ADC rail down toward the signal.
type Profile struct {
	// Severity scales every fault; <= 0 disables all stages.
	Severity float64
	// RefRMS is the healthy channel's signal RMS (sets absolute
	// magnitudes for bursts and offsets).
	RefRMS float64
	// RefPeak is the healthy channel's peak amplitude; the ADC rail is
	// anchored to it, since a converter's full scale is sized to the
	// signal's crest, not its RMS (EM current pulses are spiky — crest
	// factors of 5-6 are normal). Defaults to 3*RefRMS when zero.
	RefPeak float64
	// Span is the trace count over which the drift accrues to its full
	// value (GainDrift, OffsetDrift); <= 0 defaults to 100.
	Span int
	// GainDrift is the total relative gain drift at Severity 1 across
	// Span traces (default 0.08 when zero).
	GainDrift float64
	// OffsetDrift is the total offset drift at Severity 1 across Span
	// traces, as a multiple of RefRMS (default 0.25 when zero). Offset
	// enters a segment's RMS quadratically (sqrt(r^2 + o^2)), so the
	// apparent drift accelerates along the stream even though the offset
	// itself grows linearly.
	OffsetDrift float64
}

// maxSeverity caps the severity knob. Fleet configs are arithmetic on
// user input, so the profile must stay well-defined for any float64:
// past this point every rate is already saturated and the rail is
// essentially at zero, and an uncapped severity would push the drift
// gains to overflow. The cap keeps every stage parameter finite, which
// — with the clip rail applied last — keeps every output sample finite.
const maxSeverity = 1e6

// Stages materializes the profile into an ordered stage list: drift and
// jitter act on the analog path, then glitches and bursts, then the ADC
// rail clips last. The severity knob is clamped: NaN, zero and negative
// disable the chain entirely, +Inf and anything past maxSeverity clamp
// to maxSeverity — so any float64 yields a deterministic, finite chain.
func (p Profile) Stages() []Stage {
	if math.IsNaN(p.Severity) || p.Severity <= 0 {
		return nil
	}
	span := p.Span
	if span <= 0 {
		span = 100
	}
	gain := p.GainDrift
	if gain == 0 {
		gain = 0.08
	}
	offset := p.OffsetDrift
	if offset == 0 {
		offset = 0.25
	}
	sev := p.Severity
	if sev > maxSeverity {
		sev = maxSeverity
	}
	ref := p.RefRMS
	peak := p.RefPeak
	if peak <= 0 {
		peak = 3 * ref
	}
	// The rail starts above the signal crest and closes in as the chain
	// degrades: 2.4x the golden peak at severity 1 (clips nothing), 1.2x
	// at 2 (shaves the tallest pulses), 0.8x at 3 (real saturation).
	rail := 2.4 * peak / sev
	return []Stage{
		Drift{
			GainPerTrace:   gain * sev / float64(span),
			OffsetPerTrace: offset * sev * ref / float64(span),
		},
		// Jitter stays small: it is white per-trace noise, and even a few
		// percent of a sample period swamps the Eq. (1) threshold in a way
		// no slow-drift tracker can compensate.
		Jitter{RMSFraction: 0.01 * sev},
		Dropout{Rate: 0.001 * sev},
		Stuck{Rate: 0.0005 * sev, MeanRun: 6},
		// Bursts are rare but violent: interference arrives as sporadic
		// events a debouncer can ride out, not as a steady alarm floor.
		// Long runs on purpose — a burst parks enough samples at the ADC
		// rail for the health gate's clip-ratio check to call it.
		Burst{Rate: 0.0001 * sev, RMS: 8 * ref, MeanRun: 30},
		Clip{Rail: rail},
	}
}
