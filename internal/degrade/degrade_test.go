package degrade

import (
	"math"
	"math/rand"
	"testing"

	"emtrust/internal/trace"
)

// passthrough returns the clean waveform unchanged, isolating the
// stages under test from acquisition noise.
type passthrough struct{}

func (passthrough) Acquire(clean []float64, dt float64, _ trace.Rand) *trace.Trace {
	s := make([]float64, len(clean))
	copy(s, clean)
	return &trace.Trace{Dt: dt, Samples: s}
}

func ramp(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Sin(float64(i) * 0.1)
	}
	return s
}

func TestClipSaturates(t *testing.T) {
	ch := Wrap(passthrough{}, Clip{Rail: 0.5})
	tr := ch.AcquireAt(0, ramp(256), 1e-8, rand.New(rand.NewSource(1)))
	for i, v := range tr.Samples {
		if v > 0.5 || v < -0.5 {
			t.Fatalf("sample %d = %g beyond rail", i, v)
		}
	}
	clipped := 0
	for _, v := range tr.Samples {
		if v == 0.5 || v == -0.5 {
			clipped++
		}
	}
	if clipped == 0 {
		t.Fatal("nothing hit the rail; the stimulus should exceed 0.5")
	}
}

func TestDropoutZeroesSamples(t *testing.T) {
	ch := Wrap(passthrough{}, Dropout{Rate: 0.2})
	in := make([]float64, 2000)
	for i := range in {
		in[i] = 1
	}
	tr := ch.AcquireAt(0, in, 1e-8, rand.New(rand.NewSource(2)))
	zeros := 0
	for _, v := range tr.Samples {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 200 || zeros > 700 {
		t.Fatalf("dropout rate off: %d/2000 zeros", zeros)
	}
}

func TestStuckHoldsRuns(t *testing.T) {
	ch := Wrap(passthrough{}, Stuck{Rate: 0.05, MeanRun: 4})
	in := make([]float64, 1000)
	for i := range in {
		in[i] = float64(i) // strictly increasing, so repeats betray the stage
	}
	tr := ch.AcquireAt(0, in, 1e-8, rand.New(rand.NewSource(3)))
	repeats := 0
	for i := 1; i < len(tr.Samples); i++ {
		if tr.Samples[i] == tr.Samples[i-1] {
			repeats++
		}
	}
	if repeats == 0 {
		t.Fatal("no stuck runs injected")
	}
}

func TestBurstRaisesRMS(t *testing.T) {
	ch := Wrap(passthrough{}, Burst{Rate: 0.01, RMS: 10, MeanRun: 8})
	tr := ch.AcquireAt(0, ramp(4096), 1e-8, rand.New(rand.NewSource(4)))
	var energy float64
	for _, v := range tr.Samples {
		energy += v * v
	}
	clean := ramp(4096)
	var cleanEnergy float64
	for _, v := range clean {
		cleanEnergy += v * v
	}
	if energy < 2*cleanEnergy {
		t.Fatalf("burst noise did not raise energy: %g vs clean %g", energy, cleanEnergy)
	}
}

func TestDriftAccruesWithIndex(t *testing.T) {
	ch := Wrap(passthrough{}, Drift{GainPerTrace: 0.01, OffsetPerTrace: 0.1})
	rng := rand.New(rand.NewSource(5))
	early := ch.AcquireAt(0, ramp(64), 1e-8, rng)
	late := ch.AcquireAt(50, ramp(64), 1e-8, rng)
	// Index 0: untouched. Index 50: gain 1.5, offset +5.
	for i := range early.Samples {
		want := ramp(64)[i]*1.5 + 5
		if math.Abs(late.Samples[i]-want) > 1e-12 {
			t.Fatalf("sample %d: %g, want %g", i, late.Samples[i], want)
		}
		if early.Samples[i] != ramp(64)[i] {
			t.Fatalf("index 0 must be drift-free")
		}
	}
}

func TestJitterPreservesEnvelope(t *testing.T) {
	ch := Wrap(passthrough{}, Jitter{RMSFraction: 0.3})
	in := ramp(1024)
	tr := ch.AcquireAt(0, in, 1e-8, rand.New(rand.NewSource(6)))
	moved := 0
	for i, v := range tr.Samples {
		if v != in[i] {
			moved++
		}
		if v > 1 || v < -1 {
			t.Fatalf("interpolation overshot at %d: %g", i, v)
		}
	}
	if moved < len(in)/4 {
		t.Fatalf("jitter barely moved anything: %d samples", moved)
	}
}

func TestFlatlineStartsAtIndex(t *testing.T) {
	ch := Wrap(passthrough{}, Flatline{Start: 10})
	rng := rand.New(rand.NewSource(7))
	alive := ch.AcquireAt(9, ramp(64), 1e-8, rng)
	dead := ch.AcquireAt(10, ramp(64), 1e-8, rng)
	for i := range alive.Samples {
		if alive.Samples[i] != ramp(64)[i] {
			t.Fatal("flatline fired early")
		}
		if dead.Samples[i] != 0 {
			t.Fatal("flatline left a live sample")
		}
	}
}

func TestChannelDeterministicPerIndex(t *testing.T) {
	stages := Profile{Severity: 2, RefRMS: 0.7, Span: 50}.Stages()
	a := Wrap(trace.SimulationChannel(0.05), stages...)
	b := Wrap(trace.SimulationChannel(0.05), stages...)
	in := ramp(512)
	for _, idx := range []int{0, 7, 49} {
		ta := a.AcquireAt(idx, in, 1e-8, rand.New(rand.NewSource(99)))
		tb := b.AcquireAt(idx, in, 1e-8, rand.New(rand.NewSource(99)))
		for i := range ta.Samples {
			if ta.Samples[i] != tb.Samples[i] {
				t.Fatalf("index %d sample %d diverged: %g vs %g", idx, i, ta.Samples[i], tb.Samples[i])
			}
		}
	}
}

func TestAcquireAdvancesTimeline(t *testing.T) {
	ch := Wrap(passthrough{}, Drift{OffsetPerTrace: 1})
	rng := rand.New(rand.NewSource(8))
	first := ch.Acquire(make([]float64, 4), 1e-8, rng)
	second := ch.Acquire(make([]float64, 4), 1e-8, rng)
	if first.Samples[0] != 0 || second.Samples[0] != 1 {
		t.Fatalf("timeline index not advancing: %g then %g", first.Samples[0], second.Samples[0])
	}
}

func TestProfileSeverityZeroIsPristine(t *testing.T) {
	if got := (Profile{Severity: 0, RefRMS: 1}).Stages(); got != nil {
		t.Fatalf("severity 0 must inject nothing, got %d stages", len(got))
	}
	stages := Profile{Severity: 1, RefRMS: 1, Span: 100}.Stages()
	if len(stages) == 0 {
		t.Fatal("severity 1 must inject stages")
	}
	for _, s := range stages {
		if s.Name() == "" {
			t.Fatal("unnamed stage")
		}
	}
}

// TestProfileEdgeSeverities pins the profile's behavior across the full
// float64 severity range: negative and NaN disable the chain like zero
// does, while huge and infinite severities clamp — every stage
// parameter stays finite, and the acquired samples stay finite and
// deterministic. Fleet configs do arithmetic on user input, so Stages
// must be total over float64, not just sensible inputs.
func TestProfileEdgeSeverities(t *testing.T) {
	for _, sev := range []float64{0, -1, -1e300, math.NaN()} {
		if got := (Profile{Severity: sev, RefRMS: 1}).Stages(); got != nil {
			t.Fatalf("severity %v must inject nothing, got %d stages", sev, len(got))
		}
	}
	for _, sev := range []float64{1e-12, 3, 1e9, 1e300, math.Inf(1)} {
		p := Profile{Severity: sev, RefRMS: 1, RefPeak: 5, Span: 10}
		stages := p.Stages()
		if len(stages) == 0 {
			t.Fatalf("severity %v must inject stages", sev)
		}
		ch := Wrap(passthrough{}, stages...)
		var prev *trace.Trace
		for _, idx := range []int{0, 7, 100000} {
			tr := ch.AcquireAt(idx, ramp(256), 1e-8, rand.New(rand.NewSource(9)))
			for i, v := range tr.Samples {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("severity %v index %d: sample %d = %v", sev, idx, i, v)
				}
			}
			prev = tr
		}
		// Same (index, seed) must reproduce bit-identically.
		again := ch.AcquireAt(100000, ramp(256), 1e-8, rand.New(rand.NewSource(9)))
		for i := range again.Samples {
			if again.Samples[i] != prev.Samples[i] {
				t.Fatalf("severity %v: sample %d not deterministic: %v != %v",
					sev, i, again.Samples[i], prev.Samples[i])
			}
		}
	}
}
