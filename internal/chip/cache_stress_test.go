package chip

import (
	"sync"
	"testing"

	"emtrust/internal/trojan"
)

// stressOrbit walks a fresh chip down a fixed-stimulus capture chain —
// the path that consults the capture cache — and folds every sample
// into one checksum. Chips built from the same Config are
// deterministic, so every caller must come back with the same value no
// matter how the replay caches behaved in between.
func stressOrbit(t *testing.T, captures int) float64 {
	t.Helper()
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetTrojan(trojan.T1AMLeaker, true); err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, 16)
	caps, err := c.CaptureChain(pt, testKey, batchCycles, captures)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, cap := range caps {
		for _, v := range cap.Sensor {
			sum += v
		}
	}
	return sum
}

// TestCacheStressConcurrent hammers the process-wide build and capture
// caches from many goroutines while another goroutine repeatedly drops
// the capture cache, and checks the two properties the caches promise:
// results never depend on cache contents (every worker's checksum is
// identical), and the hit/miss counters actually move. Run under -race
// this doubles as the locking proof for the PR-6 replay caches.
func TestCacheStressConcurrent(t *testing.T) {
	// Warm the build cache so every worker's New is a guaranteed hit.
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	before := Stats()

	const workers = 8
	const captures = 10
	want := stressOrbit(t, captures)

	var wg sync.WaitGroup
	results := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = stressOrbit(t, captures)
		}(w)
	}
	// Concurrent wholesale evictions: correctness must not depend on
	// residency, so dropping everything mid-flight changes nothing but
	// the hit rate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			ResetCaptureCache()
		}
	}()
	wg.Wait()
	for w, got := range results {
		if got != want {
			t.Fatalf("worker %d checksum %v != %v: cache state leaked into results", w, got, want)
		}
	}

	// With the evictions finished, one more pass misses-and-fills and a
	// second identical pass must ride entirely on replays.
	_ = stressOrbit(t, captures)
	mid := Stats()
	_ = stressOrbit(t, captures)
	after := Stats()

	if after.BuildHits <= before.BuildHits {
		t.Fatalf("build cache recorded no hits: before %+v after %+v", before, after)
	}
	if mid.CaptureMisses <= before.CaptureMisses {
		t.Fatalf("capture cache recorded no misses: before %+v mid %+v", before, mid)
	}
	if after.CaptureHits <= mid.CaptureHits {
		t.Fatalf("identical replay pass recorded no capture hits: mid %+v after %+v", mid, after)
	}
	if after.BuildMisses != before.BuildMisses {
		t.Fatalf("warmed build cache missed: before %+v after %+v", before, after)
	}
}
