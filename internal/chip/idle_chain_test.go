package chip

import "testing"

// TestCaptureIdleChainMatchesSerial pins the idle chain's contract on
// the interesting case — an A2-armed chip whose charge pump keeps
// evolving while the logic idles: every step must be bit-identical to a
// serial CaptureIdle sequence (waveforms, end state, cycle counter, A2
// voltage), and a second chip from the same start must replay the whole
// chain from the cache.
func TestCaptureIdleChainMatchesSerial(t *testing.T) {
	resetCaptureCache()
	c, err := infected(t).Clone()
	if err != nil {
		t.Fatal(err)
	}
	c.EnableA2(true)
	start := c.Snapshot()
	const count = 5

	serial, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	serial.Restore(start)
	want := make([]*Capture, count)
	for j := range want {
		cap, err := serial.CaptureIdle(batchCycles)
		if err != nil {
			t.Fatal(err)
		}
		want[j] = &Capture{
			Sensor: append([]float64(nil), cap.Sensor...),
			Probe:  append([]float64(nil), cap.Probe...),
			Dt:     cap.Dt,
		}
	}

	chained, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	chained.Restore(start)
	got, err := chained.CaptureIdleChain(batchCycles, count)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != count {
		t.Fatalf("chain returned %d captures", len(got))
	}
	for j := range want {
		sameWave(t, "idle chain", got[j], want[j])
	}
	if !chained.sim.State().ValuesEqual(serial.sim.State()) {
		t.Fatal("idle chain and serial idles end in different states")
	}
	if chained.sim.Cycle() != serial.sim.Cycle() {
		t.Fatalf("chain cycle %d != serial cycle %d", chained.sim.Cycle(), serial.sim.Cycle())
	}
	if *chained.a2 != *serial.a2 {
		t.Fatal("idle chain left the A2 in a different state")
	}

	replay, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	replay.Restore(start)
	again, err := replay.CaptureIdleChain(batchCycles, count)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for j := range again {
		sameWave(t, "replayed idle chain", again[j], want[j])
		if again[j] == got[j] {
			hits++
		}
	}
	if hits != count {
		t.Fatalf("replayed idle chain hit the cache on %d/%d steps", hits, count)
	}
	if !replay.sim.State().ValuesEqual(serial.sim.State()) {
		t.Fatal("replayed idle chain ends in a different state")
	}
	if *replay.a2 != *serial.a2 {
		t.Fatal("replayed idle chain left the A2 in a different state")
	}
}

// TestCaptureIdleChainDormant covers the golden chip: idling is a fixed
// point, so the chain collapses to the memo while still advancing the
// cycle counter exactly like serial CaptureIdle calls.
func TestCaptureIdleChainDormant(t *testing.T) {
	resetCaptureCache()
	c, err := golden(t).Clone()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	const count = 4
	want := make([]*Capture, count)
	for j := range want {
		cap, err := serial.CaptureIdle(batchCycles)
		if err != nil {
			t.Fatal(err)
		}
		want[j] = &Capture{
			Sensor: append([]float64(nil), cap.Sensor...),
			Probe:  append([]float64(nil), cap.Probe...),
			Dt:     cap.Dt,
		}
	}
	got, err := c.CaptureIdleChain(batchCycles, count)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		sameWave(t, "dormant idle chain", got[j], want[j])
	}
	if c.sim.Cycle() != serial.sim.Cycle() {
		t.Fatalf("chain cycle %d != serial cycle %d", c.sim.Cycle(), serial.sim.Cycle())
	}
	if !c.sim.State().ValuesEqual(serial.sim.State()) {
		t.Fatal("dormant idle chain moved the chip differently than serial idles")
	}

	// Degenerate counts.
	if caps, err := c.CaptureIdleChain(batchCycles, 0); err != nil || caps != nil {
		t.Fatalf("count 0 = (%v, %v), want (nil, nil)", caps, err)
	}
}
