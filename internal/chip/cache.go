package chip

import (
	"sync"
	"sync/atomic"

	"emtrust/internal/aes"
	"emtrust/internal/analog"
	"emtrust/internal/emfield"
	"emtrust/internal/layout"
	"emtrust/internal/logic"
	"emtrust/internal/netlist"
	"emtrust/internal/trojan"
)

// Two process-wide replay caches complement the bit-parallel capture
// engine (batch.go). Both exploit the same fact the determinism
// contract rests on: a capture is a pure function of (design, config,
// pre-capture state, stimulus), so replaying one is indistinguishable
// from re-simulating it. Caches therefore never change results — they
// only short-circuit identical computations — and worker/lane counts
// cannot influence outputs through them. Entries are verified by exact
// state comparison (ValuesEqual), never by hash alone.

// buildKey identifies one immutable chip structure: the full build
// configuration with the random seed zeroed, since Seed feeds only the
// chip's noise/plaintext streams, never the netlist, placement or
// couplings.
type buildKey struct {
	cfg Config
}

// built holds the immutable parts of a chip build, shared by every chip
// constructed with an equivalent configuration. The template simulator
// is never ticked; chips fork it, which shares the compiled program and
// levelization while giving each chip private mutable state.
type built struct {
	n        *netlist.Netlist
	core     *aes.Core
	fp       *layout.Floorplan
	sensor   *emfield.Coupling
	probe    *emfield.Coupling
	trojans  map[trojan.Kind]*trojan.Instance
	template *logic.Simulator
	t2Tile   int
	a2Victim netlist.Net
	a2Tile   int
}

var buildCache = struct {
	sync.Mutex
	m map[buildKey]*built
}{m: make(map[buildKey]*built)}

// maxBuilds bounds the build cache; experiments touch a handful of
// configurations per process, so eviction is a wholesale drop.
const maxBuilds = 8

// Cache traffic counters. Monotonic over the process lifetime (resets
// drop entries, not counters), so concurrent readers can difference
// before/after snapshots without racing a zeroing write.
var cacheStats struct {
	buildHits, buildMisses     atomic.Uint64
	captureHits, captureMisses atomic.Uint64
}

// CacheStats is a point-in-time snapshot of the replay caches' traffic.
// A "miss" is a lookup that found no usable entry — including the
// deliberate misses after a wholesale eviction — so hits+misses equals
// the number of lookups, not the number of simulations.
type CacheStats struct {
	BuildHits, BuildMisses     uint64
	CaptureHits, CaptureMisses uint64
}

// Stats returns the current process-wide cache counters.
func Stats() CacheStats {
	return CacheStats{
		BuildHits:     cacheStats.buildHits.Load(),
		BuildMisses:   cacheStats.buildMisses.Load(),
		CaptureHits:   cacheStats.captureHits.Load(),
		CaptureMisses: cacheStats.captureMisses.Load(),
	}
}

func lookupBuild(key buildKey) *built {
	buildCache.Lock()
	defer buildCache.Unlock()
	b := buildCache.m[key]
	if b != nil {
		cacheStats.buildHits.Add(1)
	} else {
		cacheStats.buildMisses.Add(1)
	}
	return b
}

func storeBuild(key buildKey, b *built) {
	buildCache.Lock()
	defer buildCache.Unlock()
	if len(buildCache.m) >= maxBuilds {
		buildCache.m = make(map[buildKey]*built)
	}
	buildCache.m[key] = b
}

// captureKey identifies one capture as a pure function: the design (by
// identity — stuck-at variants get fresh netlists), the build
// configuration, the stimulus, the window length, and the analog-Trojan
// state. The gate-level pre-state rides as a hash here and is verified
// exactly against each candidate entry.
type captureKey struct {
	n       *netlist.Netlist
	cfg     Config
	pt      [16]byte
	key     [16]byte
	cycles  int
	idle    bool
	a2      analog.A2
	a2On    bool
	simHash uint64
}

// captureEntry is one memoized capture: the exact pre-state it applies
// to, the clean waveforms, a stable *Capture handle (Tiles nil — batch
// and replayed captures do not carry per-tile currents), and the
// post-capture state so a replay can advance a chip without
// simulating.
type captureEntry struct {
	pre      *logic.State
	cap      *Capture
	post     *logic.State
	postA2   analog.A2
	postHash uint64
}

var captureCache = struct {
	sync.Mutex
	m     map[captureKey][]*captureEntry
	count int
}{m: make(map[captureKey][]*captureEntry)}

// maxCaptureEntries bounds the capture cache (an entry holds two state
// snapshots and two waveforms, ~100 KB on the default design). Eviction
// is a wholesale drop: correctness never depends on residency.
const maxCaptureEntries = 256

// lookupCapture returns the entry matching key with an exactly equal
// pre-state, or nil.
func lookupCapture(key captureKey, pre *logic.State) *captureEntry {
	captureCache.Lock()
	defer captureCache.Unlock()
	for _, e := range captureCache.m[key] {
		if e.pre.ValuesEqual(pre) {
			cacheStats.captureHits.Add(1)
			return e
		}
	}
	cacheStats.captureMisses.Add(1)
	return nil
}

// storeCapture inserts an entry unless an equivalent one is already
// present (concurrent workers may race to fill the same key; both
// compute identical results, so either copy serves).
func storeCapture(key captureKey, e *captureEntry) *captureEntry {
	captureCache.Lock()
	defer captureCache.Unlock()
	for _, have := range captureCache.m[key] {
		if have.pre.ValuesEqual(e.pre) {
			return have
		}
	}
	if captureCache.count >= maxCaptureEntries {
		captureCache.m = make(map[captureKey][]*captureEntry)
		captureCache.count = 0
	}
	captureCache.m[key] = append(captureCache.m[key], e)
	captureCache.count++
	return e
}

// ResetCaptureCache drops every memoized capture result. Outputs never
// depend on cache contents, so this is purely a way for tests and
// benchmarks to force fresh simulation paths.
func ResetCaptureCache() {
	captureCache.Lock()
	captureCache.m = make(map[captureKey][]*captureEntry)
	captureCache.count = 0
	captureCache.Unlock()
}

// captureCacheKey assembles the cache key for a capture from this
// chip's current identity and the given stimulus. simHash must be the
// ValueHash of the pre-state being keyed.
func (c *Chip) captureCacheKey(pt, key [16]byte, cycles int, idle bool, a2 analog.A2, a2On bool, simHash uint64) captureKey {
	return captureKey{
		n: c.n, cfg: c.cfg,
		pt: pt, key: key, cycles: cycles, idle: idle,
		a2: a2, a2On: a2On, simHash: simHash,
	}
}
