package chip

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"emtrust/internal/aes"
	"emtrust/internal/analog"
	"emtrust/internal/logic"
	"emtrust/internal/power"
	"emtrust/internal/trojan"
)

// Batched capture: up to logic.MaxLanes capture lanes — (pre-state,
// plaintext) pairs — run through one bit-parallel wide simulation
// instead of N scalar ones. The pipeline deduplicates identical lanes,
// replays lanes the process-wide capture cache has seen before, and
// simulates only the remainder, one uint64 word per net, with per-lane
// toggle extraction feeding per-lane power recorders so every lane's
// waveform is bit-identical to an independent scalar capture (pinned by
// the batch and determinism tests at every worker/lane count).
//
// Batch captures are side-effect-free on the chip: the wide engine is
// separate simulation state, so the chip's own simulator, recorder and
// analog Trojan stay where they were. Returned captures carry no Tiles
// (per-tile current waveforms) — lanes share pooled recorder buffers
// and cached captures have none to give; consumers that need Tiles use
// the scalar CapturePT/CaptureIdle.

// batchLanes caps how many lanes one wide simulation carries; 0 (the
// default) means logic.MaxLanes.
var batchLanes atomic.Int32

// BatchLanes returns the effective lane cap for batched captures,
// between 1 and logic.MaxLanes.
func BatchLanes() int {
	v := int(batchLanes.Load())
	if v <= 0 || v > logic.MaxLanes {
		return logic.MaxLanes
	}
	return v
}

// SetBatchLanes overrides the lane cap (0 restores the MaxLanes
// default) and returns a function restoring the previous cap. Tests use
// it to pin batched output bit-identical across lane counts.
func SetBatchLanes(n int) (restore func()) {
	old := batchLanes.Swap(int32(n))
	return func() { batchLanes.Store(old) }
}

// nextCaptureSeq hands out process-unique capture identities; see
// Capture.Seq.
var captureSeq atomic.Uint64

func nextCaptureSeq() uint64 { return captureSeq.Add(1) }

// batchGroup is one deduplicated (pre-state, plaintext) capture lane
// and the input indices that collapse onto it.
type batchGroup struct {
	snap  *Snapshot
	hash  uint64
	pt    [16]byte
	ck    captureKey
	idx   []int
	entry *captureEntry
}

// CaptureBatch fans up to 64 plaintext lanes from the chip's current
// state through one wide simulation: lane i encrypts pts[i] under key.
// It returns one *Capture per lane without advancing the chip's state.
func (c *Chip) CaptureBatch(pts [][]byte, key []byte, cycles int) ([]*Capture, error) {
	return c.CaptureBatchFrom(nil, pts, key, cycles)
}

// CaptureBatchFrom is CaptureBatch with per-lane starting states: lane
// i restores snaps[i] (taken on this chip or one sharing its design)
// before encrypting pts[i]. A nil snaps broadcasts the chip's current
// state to every lane. The cache may retain references to the
// snapshots' states, which Snapshot already promises are immutable.
func (c *Chip) CaptureBatchFrom(snaps []*Snapshot, pts [][]byte, key []byte, cycles int) ([]*Capture, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	if len(key) != 16 {
		return nil, fmt.Errorf("chip: need 16-byte key")
	}
	ptA := make([][16]byte, len(pts))
	for i, pt := range pts {
		if len(pt) != 16 {
			return nil, fmt.Errorf("chip: lane %d: need 16-byte pt", i)
		}
		copy(ptA[i][:], pt)
	}
	snaps, err := c.batchSnaps(snaps, len(pts))
	if err != nil {
		return nil, err
	}
	return c.captureBatch(snaps, ptA, key, cycles, false)
}

// CaptureIdleBatch runs one idle (no encryption) capture lane per
// snapshot through the wide engine, without advancing the chip's state.
func (c *Chip) CaptureIdleBatch(snaps []*Snapshot, cycles int) ([]*Capture, error) {
	if len(snaps) == 0 {
		return nil, nil
	}
	if len(snaps) > logic.MaxLanes*1024 {
		return nil, fmt.Errorf("chip: idle batch of %d lanes", len(snaps))
	}
	return c.captureBatch(snaps, make([][16]byte, len(snaps)), nil, cycles, true)
}

// batchSnaps normalizes the snapshot list: nil broadcasts the current
// state, otherwise one snapshot per lane.
func (c *Chip) batchSnaps(snaps []*Snapshot, n int) ([]*Snapshot, error) {
	if snaps == nil {
		cur := c.Snapshot()
		snaps = make([]*Snapshot, n)
		for i := range snaps {
			snaps[i] = cur
		}
		return snaps, nil
	}
	if len(snaps) != n {
		return nil, fmt.Errorf("chip: %d snapshots for %d lanes", len(snaps), n)
	}
	for i, s := range snaps {
		if s == nil {
			return nil, fmt.Errorf("chip: nil snapshot for lane %d", i)
		}
	}
	return snaps, nil
}

// captureBatch deduplicates the lanes, replays cached groups, simulates
// the rest in wide chunks (or scalar captures when the chip runs the
// reference engine), and maps group results back onto the input order.
func (c *Chip) captureBatch(snaps []*Snapshot, pts [][16]byte, key []byte, cycles int, idle bool) ([]*Capture, error) {
	var keyA [16]byte
	copy(keyA[:], key)
	hashes := make(map[*Snapshot]uint64)
	var groups []*batchGroup
	var misses []*batchGroup
	for i, s := range snaps {
		h, ok := hashes[s]
		if !ok {
			h = s.sim.ValueHash()
			hashes[s] = h
		}
		var g *batchGroup
		for _, have := range groups {
			if have.pt != pts[i] {
				continue
			}
			if have.snap == s || (have.hash == h && have.snap.a2Enabled == s.a2Enabled &&
				have.snap.a2 == s.a2 && have.snap.sim.ValuesEqual(s.sim)) {
				g = have
				break
			}
		}
		if g == nil {
			g = &batchGroup{
				snap: s, hash: h, pt: pts[i],
				ck: c.captureCacheKey(pts[i], keyA, cycles, idle, s.a2, s.a2Enabled, h),
			}
			g.entry = lookupCapture(g.ck, s.sim)
			groups = append(groups, g)
			if g.entry == nil {
				misses = append(misses, g)
			}
		}
		g.idx = append(g.idx, i)
	}
	if len(misses) > 0 {
		if c.sim.Compiled() {
			lanes := BatchLanes()
			for lo := 0; lo < len(misses); lo += lanes {
				hi := lo + lanes
				if hi > len(misses) {
					hi = len(misses)
				}
				if err := c.runWide(misses[lo:hi], key, cycles, idle); err != nil {
					return nil, err
				}
			}
		} else if err := c.runScalarBatch(misses, key, cycles, idle); err != nil {
			return nil, err
		}
	}
	out := make([]*Capture, len(snaps))
	for _, g := range groups {
		for _, i := range g.idx {
			out[i] = g.entry.cap
		}
	}
	return out, nil
}

// ensureWide lazily builds the chip's wide engine and grows the pooled
// per-lane recorders and analog-Trojan scratch to the given lane count.
// Pooled recorders are built from the same configuration and floorplan
// as the chip's own, so their per-cell charge tables are identical and
// lane waveforms match scalar captures bit for bit.
func (c *Chip) ensureWide(lanes int) error {
	if c.wide == nil {
		w, err := c.sim.Wide()
		if err != nil {
			return err
		}
		c.wide = w
	}
	for len(c.recs) < lanes {
		r, err := power.NewRecorder(c.cfg.Power, c.fp)
		if err != nil {
			return err
		}
		c.recs = append(c.recs, r)
	}
	if len(c.a2s) < lanes {
		c.a2s = make([]analog.A2, lanes)
		c.a2on = make([]bool, lanes)
	}
	return nil
}

// runWide simulates up to MaxLanes miss groups as lanes of one wide
// capture, stores each lane's result in the capture cache and fills the
// groups' entries. The capture sequence mirrors CapturePT/CaptureIdle
// exactly: idle lead-in tick, per-lane plaintext with broadcast key and
// start pulse, load edge, then the remaining cycles — with the T2
// crowbar and A2 charge-pump hooks applied per lane from the lane's net
// word each cycle.
func (c *Chip) runWide(groups []*batchGroup, key []byte, cycles int, idle bool) error {
	lanes := len(groups)
	if err := c.ensureWide(lanes); err != nil {
		return err
	}
	w := c.wide
	sts := make([]*logic.State, lanes)
	for l, g := range groups {
		sts[l] = g.snap.sim
	}
	if err := w.LoadStates(sts); err != nil {
		return err
	}
	recs := c.recs[:lanes]
	a2s := c.a2s[:lanes]
	a2on := c.a2on[:lanes]
	for l, g := range groups {
		recs[l].Begin(cycles)
		if c.a2 != nil {
			a2s[l] = g.snap.a2
		}
		a2on[l] = g.snap.a2Enabled && c.a2 != nil
	}
	// Per-lane toggle extraction: diff = old^new marks the lanes that
	// changed; each set bit books the cell's switching charge on that
	// lane's recorder, in the same order a scalar capture would.
	w.OnWideToggle = func(cell int32, diff, nv uint64) {
		for diff != 0 {
			l := bits.TrailingZeros64(diff)
			diff &= diff - 1
			recs[l].OnToggle(int(cell), nv>>uint(l)&1 == 1)
		}
	}
	defer func() { w.OnWideToggle = nil }()

	t2, hasT2 := c.trojans[trojan.T2LeakageCurrent]
	tick := func() error {
		w.Tick()
		if hasT2 {
			on := w.NetWord(t2.Active) &^ w.NetWord(t2.LeakWire)
			amps := c.cfg.Power.CrowbarCurrent * float64(t2.CrowbarPairs)
			for on != 0 {
				l := bits.TrailingZeros64(on)
				on &= on - 1
				if l < lanes {
					recs[l].AddStaticCurrent(c.t2Tile, amps)
				}
			}
		}
		if c.a2 != nil {
			vw := w.NetWord(c.a2Victim)
			for l := 0; l < lanes; l++ {
				if !a2on[l] {
					continue
				}
				res := a2s[l].Step(uint8(vw >> uint(l) & 1))
				if res.Pumped {
					recs[l].AddFastToggles(c.a2Tile, 1, c.cfg.A2.PumpCharge)
				}
				if res.FastToggles > 0 {
					recs[l].AddFastToggles(c.a2Tile, res.FastToggles, c.cfg.A2.TriggerCharge)
				}
			}
		}
		for l := range recs {
			if err := recs[l].EndCycle(); err != nil {
				return err
			}
		}
		return nil
	}

	if idle {
		for i := 0; i < cycles; i++ {
			if err := tick(); err != nil {
				return err
			}
		}
	} else {
		if err := tick(); err != nil { // cycle 0: idle lead-in
			return err
		}
		laneBits := make([][]uint8, lanes)
		for l, g := range groups {
			laneBits[l] = aes.BytesToBits(g.pt[:])
		}
		if err := w.SetPortLanesBits(aes.PortPT, laneBits); err != nil {
			return err
		}
		if err := w.SetPortBitsAll(aes.PortKey, aes.BytesToBits(key)); err != nil {
			return err
		}
		if err := w.SetPortUintAll(aes.PortStart, 1); err != nil {
			return err
		}
		w.Settle()
		if err := tick(); err != nil { // load edge
			return err
		}
		if err := w.SetPortUintAll(aes.PortStart, 0); err != nil {
			return err
		}
		w.Settle()
		for i := 2; i < cycles; i++ {
			if err := tick(); err != nil {
				return err
			}
		}
	}

	dt := recs[0].Dt()
	for l, g := range groups {
		currents := recs[l].Currents()
		post := w.LaneState(l)
		var postA2 analog.A2
		if c.a2 != nil {
			postA2 = a2s[l]
		}
		e := &captureEntry{
			pre: g.snap.sim,
			cap: &Capture{
				Sensor: c.sensor.EMF(currents, dt),
				Probe:  c.probe.EMF(currents, dt),
				Dt:     dt,
				seq:    nextCaptureSeq(),
			},
			post: post, postA2: postA2, postHash: post.ValueHash(),
		}
		g.entry = storeCapture(g.ck, e)
	}
	return nil
}

// runScalarBatch is the reference-engine fallback (and the batch
// layer's semantic ground truth, which the batch tests pin the wide
// path against): each miss group restores its snapshot and runs a plain
// scalar capture, after which the chip is rewound to where it was.
func (c *Chip) runScalarBatch(groups []*batchGroup, key []byte, cycles int, idle bool) error {
	save := c.Snapshot()
	defer c.Restore(save)
	for _, g := range groups {
		c.Restore(g.snap)
		var cap *Capture
		var err error
		if idle {
			cap, err = c.CaptureIdle(cycles)
		} else {
			cap, err = c.CapturePT(g.pt[:], key, cycles)
		}
		if err != nil {
			return err
		}
		post := c.sim.State()
		var postA2 analog.A2
		if c.a2 != nil {
			postA2 = *c.a2
		}
		e := &captureEntry{
			pre:  g.snap.sim,
			cap:  &Capture{Sensor: cap.Sensor, Probe: cap.Probe, Dt: cap.Dt, seq: nextCaptureSeq()},
			post: post, postA2: postA2, postHash: post.ValueHash(),
		}
		g.entry = storeCapture(g.ck, e)
	}
	return nil
}

// CaptureChain runs count consecutive fixed-stimulus captures — the
// serial state-evolution chain of a fixed-plaintext capture set, where
// capture j starts from capture j-1's post state — and returns them in
// order, advancing the chip by exactly count captures. Each step is
// replayed from the capture cache when this exact (state, stimulus)
// capture has run before (a dormant chip's fixed point collapses the
// whole chain to one simulation; an active Trojan's orbit replays after
// its first traversal), and simulated scalar otherwise. Waveforms and
// the chip's state trajectory are bit-identical to count serial
// CapturePT calls. Chain captures carry no Tiles.
func (c *Chip) CaptureChain(pt, key []byte, cycles, count int) ([]*Capture, error) {
	if len(pt) != 16 || len(key) != 16 {
		return nil, fmt.Errorf("chip: need 16-byte pt and key")
	}
	var ptA, keyA [16]byte
	copy(ptA[:], pt)
	copy(keyA[:], key)
	caps := make([]*Capture, count)
	var hash uint64
	hashValid := false
	for j := range caps {
		pre := c.sim.State()
		if !hashValid {
			hash = pre.ValueHash()
		}
		var a2v analog.A2
		if c.a2 != nil {
			a2v = *c.a2
		}
		ck := c.captureCacheKey(ptA, keyA, cycles, false, a2v, c.a2Enabled, hash)
		if e := lookupCapture(ck, pre); e != nil {
			cyc := c.sim.Cycle()
			c.sim.SetState(e.post)
			c.sim.SetCycle(cyc + cycles)
			if c.a2 != nil {
				*c.a2 = e.postA2
			}
			caps[j] = e.cap
			hash, hashValid = e.postHash, true
			continue
		}
		cap, err := c.CapturePT(pt, key, cycles)
		if err != nil {
			return nil, err
		}
		post := c.sim.State()
		var postA2 analog.A2
		if c.a2 != nil {
			postA2 = *c.a2
		}
		e := storeCapture(ck, &captureEntry{
			pre:  pre,
			cap:  &Capture{Sensor: cap.Sensor, Probe: cap.Probe, Dt: cap.Dt, seq: nextCaptureSeq()},
			post: post, postA2: postA2, postHash: post.ValueHash(),
		})
		caps[j] = e.cap
		hash, hashValid = e.postHash, true
	}
	return caps, nil
}

// CaptureIdleChain is CaptureChain for idle (no-encryption) captures:
// count consecutive CaptureIdle calls run as one serial chain through
// the process-wide capture cache. A dormant chip's idle fixed point
// collapses the whole chain to at most one simulation — on a fresh chip
// of an already-seen configuration, to none at all, since the chip
// build cache makes identical chips start from the identical state the
// cache has already recorded. An armed A2 whose charge pump is still
// integrating genuinely changes state every capture, so each step along
// that orbit simulates once process-wide and replays forever after.
// Waveforms, the simulator state trajectory, and the analog Trojan
// state are bit-identical to count serial CaptureIdle calls. Chain
// captures carry no Tiles. A count <= 0 is clamped to a nil chain.
func (c *Chip) CaptureIdleChain(cycles, count int) ([]*Capture, error) {
	if count <= 0 {
		return nil, nil
	}
	caps := make([]*Capture, count)
	var zero [16]byte
	var hash uint64
	hashValid := false
	for j := range caps {
		pre := c.sim.State()
		if !hashValid {
			hash = pre.ValueHash()
		}
		var a2v analog.A2
		if c.a2 != nil {
			a2v = *c.a2
		}
		ck := c.captureCacheKey(zero, zero, cycles, true, a2v, c.a2Enabled, hash)
		if e := lookupCapture(ck, pre); e != nil {
			cyc := c.sim.Cycle()
			c.sim.SetState(e.post)
			c.sim.SetCycle(cyc + cycles)
			if c.a2 != nil {
				*c.a2 = e.postA2
			}
			caps[j] = e.cap
			hash, hashValid = e.postHash, true
			continue
		}
		cap, err := c.CaptureIdle(cycles)
		if err != nil {
			return nil, err
		}
		post := c.sim.State()
		var postA2 analog.A2
		if c.a2 != nil {
			postA2 = *c.a2
		}
		e := storeCapture(ck, &captureEntry{
			pre:  pre,
			cap:  &Capture{Sensor: cap.Sensor, Probe: cap.Probe, Dt: cap.Dt, seq: nextCaptureSeq()},
			post: post, postA2: postA2, postHash: post.ValueHash(),
		})
		caps[j] = e.cap
		hash, hashValid = e.postHash, true
	}
	return caps, nil
}
