package chip

import (
	"testing"

	"emtrust/internal/trojan"
)

// resetCaptureCache empties the process-wide capture cache so a test
// exercises the simulation paths rather than replays.
func resetCaptureCache() { ResetCaptureCache() }

const batchCycles = 16

// activeClone returns an independent clone of the infected chip with
// the given Trojan armed, so its state genuinely evolves from capture
// to capture (no fixed point, no trivial cache hits).
func activeClone(t *testing.T, kind trojan.Kind) *Chip {
	t.Helper()
	c, err := infected(t).Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetTrojan(kind, true); err != nil {
		t.Fatal(err)
	}
	return c
}

func sameWave(t *testing.T, step string, a, b *Capture) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: nil capture", step)
	}
	if len(a.Sensor) != len(b.Sensor) || len(a.Probe) != len(b.Probe) || a.Dt != b.Dt {
		t.Fatalf("%s: capture shapes differ", step)
	}
	for i := range a.Sensor {
		if a.Sensor[i] != b.Sensor[i] {
			t.Fatalf("%s: sensor sample %d: %v != %v", step, i, a.Sensor[i], b.Sensor[i])
		}
		if a.Probe[i] != b.Probe[i] {
			t.Fatalf("%s: probe sample %d: %v != %v", step, i, a.Probe[i], b.Probe[i])
		}
	}
}

// orbitSnapshots advances the chip through count captures of a fixed
// plaintext and returns the snapshot before each, giving genuinely
// distinct per-lane starting states on an active-Trojan chip.
func orbitSnapshots(t *testing.T, c *Chip, pt []byte, count int) []*Snapshot {
	t.Helper()
	snaps := make([]*Snapshot, count)
	for i := range snaps {
		snaps[i] = c.Snapshot()
		if _, err := c.CapturePT(pt, testKey, batchCycles); err != nil {
			t.Fatal(err)
		}
	}
	return snaps
}

// TestCaptureBatchMatchesScalar pins the wide engine's end-to-end
// contract: every lane of a batched capture — divergent plaintexts AND
// divergent starting states, with a digital Trojan and the analog A2
// running — must be bit-identical to an independent scalar capture from
// the same snapshot, and the batch must not move the chip.
func TestCaptureBatchMatchesScalar(t *testing.T) {
	resetCaptureCache()
	c := activeClone(t, trojan.T1AMLeaker)
	c.EnableA2(true)
	basePT := make([]byte, 16)
	snaps := orbitSnapshots(t, c, basePT, 5)

	const lanes = 9
	pts := make([][]byte, lanes)
	laneSnaps := make([]*Snapshot, lanes)
	for i := range pts {
		pt := make([]byte, 16)
		pt[0] = byte(37 * i)
		pt[15] = byte(i)
		pts[i] = pt
		laneSnaps[i] = snaps[i%len(snaps)]
	}

	before := c.Snapshot()
	caps, err := c.CaptureBatchFrom(laneSnaps, pts, testKey, batchCycles)
	if err != nil {
		t.Fatal(err)
	}
	if !c.sim.State().ValuesEqual(before.sim) || *c.a2 != before.a2 {
		t.Fatal("batched capture moved the chip's state")
	}

	scalar, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		scalar.Restore(laneSnaps[i])
		want, err := scalar.CapturePT(pts[i], testKey, batchCycles)
		if err != nil {
			t.Fatal(err)
		}
		sameWave(t, "lane", caps[i], want)
	}
}

// TestCaptureIdleBatchMatchesScalar does the same for idle captures.
func TestCaptureIdleBatchMatchesScalar(t *testing.T) {
	resetCaptureCache()
	c := activeClone(t, trojan.T3CDMALeaker)
	snaps := orbitSnapshots(t, c, make([]byte, 16), 6)
	caps, err := c.CaptureIdleBatch(snaps, batchCycles)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range snaps {
		scalar.Restore(s)
		want, err := scalar.CaptureIdle(batchCycles)
		if err != nil {
			t.Fatal(err)
		}
		sameWave(t, "idle lane", caps[i], want)
	}
}

// TestCaptureBatchLaneCountInvariance pins the determinism contract:
// the same batch split into 1-, 3- or 64-lane wide runs (partial final
// chunks included) produces byte-identical captures.
func TestCaptureBatchLaneCountInvariance(t *testing.T) {
	c := activeClone(t, trojan.T4PowerHog)
	snaps := orbitSnapshots(t, c, make([]byte, 16), 4)
	const n = 7
	pts := make([][]byte, n)
	laneSnaps := make([]*Snapshot, n)
	for i := range pts {
		pt := make([]byte, 16)
		pt[3] = byte(11 * i)
		pts[i] = pt
		laneSnaps[i] = snaps[i%len(snaps)]
	}
	var got [][]*Capture
	for _, lanes := range []int{64, 3, 1} {
		resetCaptureCache()
		restore := SetBatchLanes(lanes)
		caps, err := c.CaptureBatchFrom(laneSnaps, pts, testKey, batchCycles)
		restore()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, caps)
	}
	for i := 0; i < n; i++ {
		sameWave(t, "lanes=3", got[0][i], got[1][i])
		sameWave(t, "lanes=1", got[0][i], got[2][i])
	}
}

// TestCaptureBatchReferenceFallback pins the scalar fallback: a
// reference-engine chip batches through per-group scalar captures, and
// its waveforms match the compiled chip's wide-engine batch.
func TestCaptureBatchReferenceFallback(t *testing.T) {
	resetCaptureCache()
	cfg := DefaultConfig()
	cfg.ReferenceSim = true
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetTrojan(trojan.T2LeakageCurrent, true); err != nil {
		t.Fatal(err)
	}
	// The compiled chip must start from the same pre-state as the fresh
	// reference chip, so build it fresh too: the shared infected chip's
	// latch state depends on which tests captured on it earlier, and a
	// clone of it would make this comparison shuffle-order dependent.
	cmp, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := cmp.SetTrojan(trojan.T2LeakageCurrent, true); err != nil {
		t.Fatal(err)
	}

	pts := make([][]byte, 3)
	for i := range pts {
		pt := make([]byte, 16)
		pt[7] = byte(i + 1)
		pts[i] = pt
	}
	refCaps, err := ref.CaptureBatch(pts, testKey, batchCycles)
	if err != nil {
		t.Fatal(err)
	}
	cmpCaps, err := cmp.CaptureBatch(pts, testKey, batchCycles)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		sameWave(t, "engine", refCaps[i], cmpCaps[i])
	}
}

// TestCaptureBatchDedup: lanes with identical (state, plaintext) share
// one simulation and one result object.
func TestCaptureBatchDedup(t *testing.T) {
	resetCaptureCache()
	c := activeClone(t, trojan.T1AMLeaker)
	pt := make([]byte, 16)
	other := make([]byte, 16)
	other[0] = 0xff
	caps, err := c.CaptureBatch([][]byte{pt, other, pt}, testKey, batchCycles)
	if err != nil {
		t.Fatal(err)
	}
	if caps[0] != caps[2] {
		t.Fatal("identical lanes returned distinct captures")
	}
	if caps[0] == caps[1] {
		t.Fatal("distinct plaintexts returned the same capture")
	}
	if caps[0].Seq() == caps[1].Seq() {
		t.Fatal("distinct captures share a Seq")
	}
}

// TestCaptureChainMatchesSerial pins CaptureChain's contract on an
// evolving chip: waveforms and the state trajectory are bit-identical
// to serial CapturePT calls, and a replayed chain (cache hits) returns
// the same results and final state.
func TestCaptureChainMatchesSerial(t *testing.T) {
	resetCaptureCache()
	c := activeClone(t, trojan.T3CDMALeaker)
	start := c.Snapshot()
	pt := make([]byte, 16)
	pt[5] = 0xa5
	const count = 5

	serial, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	serial.Restore(start)
	want := make([]*Capture, count)
	for j := range want {
		cap, err := serial.CapturePT(pt, testKey, batchCycles)
		if err != nil {
			t.Fatal(err)
		}
		want[j] = &Capture{
			Sensor: append([]float64(nil), cap.Sensor...),
			Probe:  append([]float64(nil), cap.Probe...),
			Dt:     cap.Dt,
		}
	}

	chained, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	chained.Restore(start)
	got, err := chained.CaptureChain(pt, testKey, batchCycles, count)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		sameWave(t, "chain", got[j], want[j])
	}
	if !chained.sim.State().ValuesEqual(serial.sim.State()) {
		t.Fatal("chain and serial capture end in different states")
	}
	if chained.sim.Cycle() != serial.sim.Cycle() {
		t.Fatalf("chain cycle %d != serial cycle %d", chained.sim.Cycle(), serial.sim.Cycle())
	}

	replay, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	replay.Restore(start)
	again, err := replay.CaptureChain(pt, testKey, batchCycles, count)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for j := range again {
		sameWave(t, "replayed chain", again[j], want[j])
		if again[j] == got[j] {
			hits++
		}
	}
	if hits != count {
		t.Fatalf("replayed chain hit the cache on %d/%d steps", hits, count)
	}
	if !replay.sim.State().ValuesEqual(serial.sim.State()) {
		t.Fatal("replayed chain ends in a different state")
	}
}

// TestFixedPointMemo pins the dormant-chip fast path: from the second
// identical capture on, CapturePT and CaptureIdle return the same
// stable *Capture while still advancing the cycle counter, and a
// different stimulus breaks the memo.
func TestFixedPointMemo(t *testing.T) {
	c, err := golden(t).Clone()
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, 16)
	// Capture 1 moves the AES registers off the reset state; capture 2
	// is the first fixed-point traversal and creates the memo.
	if _, err := c.CapturePT(pt, testKey, batchCycles); err != nil {
		t.Fatal(err)
	}
	cycle := c.sim.Cycle()
	c2, err := c.CapturePT(pt, testKey, batchCycles)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := c.CapturePT(pt, testKey, batchCycles)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c3 {
		t.Fatal("repeated fixed-point captures returned distinct objects")
	}
	if got := c.sim.Cycle(); got != cycle+2*batchCycles {
		t.Fatalf("cycle = %d, want %d", got, cycle+2*batchCycles)
	}
	if len(c2.Tiles) == 0 {
		t.Fatal("memoized capture lost its Tiles")
	}
	// A replay must match what a fresh simulation of the same capture
	// produces: clear the memo and re-simulate.
	c.memoPT = nil
	fresh, err := c.CapturePT(pt, testKey, batchCycles)
	if err != nil {
		t.Fatal(err)
	}
	sameWave(t, "memo vs fresh", fresh, c2)

	other := make([]byte, 16)
	other[0] = 1
	c4, err := c.CapturePT(other, testKey, batchCycles)
	if err != nil {
		t.Fatal(err)
	}
	if c4 == c3 {
		t.Fatal("different plaintext replayed the memo")
	}

	if _, err := c.CaptureIdle(batchCycles); err != nil {
		t.Fatal(err)
	}
	i2, err := c.CaptureIdle(batchCycles)
	if err != nil {
		t.Fatal(err)
	}
	i3, err := c.CaptureIdle(batchCycles)
	if err != nil {
		t.Fatal(err)
	}
	if i2 != i3 {
		t.Fatal("repeated idle captures returned distinct objects")
	}
	c.memoIdle = nil
	freshIdle, err := c.CaptureIdle(batchCycles)
	if err != nil {
		t.Fatal(err)
	}
	sameWave(t, "idle memo vs fresh", freshIdle, i2)
}
