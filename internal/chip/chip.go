// Package chip assembles the full virtual device of the paper's
// experiments: the gate-level AES-128, the four digital Trojans, the
// A2-style analog Trojan, a floorplan with the on-chip spiral sensor on
// the top metal layer, the external probe above the package, and the
// switching-current to EM-emf pipeline. It is the stand-in for the
// fabricated 180 nm chip of Section V.
package chip

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"emtrust/internal/aes"
	"emtrust/internal/analog"
	"emtrust/internal/emfield"
	"emtrust/internal/layout"
	"emtrust/internal/logic"
	"emtrust/internal/netlist"
	"emtrust/internal/power"
	"emtrust/internal/trace"
	"emtrust/internal/trojan"
)

// Inserter injects extra logic into the chip's netlist after the AES
// core and the clock divider are generated (a campaign-generated Trojan,
// an instrumentation block). Implementations must be deterministic —
// the same inserter value must always build the same cells — and must
// be comparable pointer types: chip builds and captures are memoized in
// maps keyed on Config, so the dynamic value participates in map-key
// comparison (identity, for a pointer).
type Inserter interface {
	// InsertName tags the built netlist (and the build-cache key); two
	// inserters that build different logic must report different names.
	InsertName() string
	// Insert appends logic to the partially built design. The base
	// design's cells and nets are already in place, so the inserter can
	// reference and rewire them by the ids of the golden build.
	Insert(b *netlist.Builder) error
}

// Config describes one chip build.
type Config struct {
	// WithTrojans selects the infected chip (the golden reference chip
	// carries only the AES and the clock divider).
	WithTrojans bool
	// WithA2 adds the analog Trojan watching the clock-division wire.
	WithA2 bool
	// Insert, when non-nil, injects extra logic after the base design is
	// generated (see Inserter). Campaign chips combine it with
	// WithTrojans=false: the only malicious logic is the inserted one.
	Insert Inserter

	Trojan trojan.Config
	A2     analog.A2Config
	Power  power.Config
	Layout layout.Config

	// Sensor geometry: nested-rectangle spiral turns on the top metal
	// layer at SpiralZ above the devices.
	SpiralTurns int
	SpiralZ     float64
	// External probe geometry: same-diameter turn stack at ProbeZ.
	ProbeRadius float64
	ProbeTurns  int
	ProbeZ      float64
	ProbePitch  float64
	// TileLoopArea is the effective supply-loop area of one tile's
	// switching current (the dipole strength per ampere).
	TileLoopArea float64
	// Quad is the boundary-integral resolution for coupling
	// precomputation.
	Quad int

	// Seed drives every stochastic element (plaintexts, noise) so
	// experiments are reproducible.
	Seed int64

	// ReferenceSim selects logic's reference full-cone evaluator instead
	// of the default compiled event-driven engine. Both produce
	// bit-identical captures (pinned by the differential tests); the
	// reference engine exists as ground truth and for benchmarking.
	ReferenceSim bool
}

// simOptions translates the config into logic.New options.
func (cfg Config) simOptions() []logic.Option {
	if cfg.ReferenceSim {
		return []logic.Option{logic.WithReferenceEngine()}
	}
	return nil
}

// DefaultConfig returns the experiment configuration: 12 MHz clock,
// 180 nm-style layout, a 10-turn spiral 5 um above the devices, and a
// LANGER-style probe 100 um above the die (the paper's package
// thickness).
func DefaultConfig() Config {
	return Config{
		WithTrojans:  true,
		WithA2:       true,
		Trojan:       trojan.DefaultConfig(),
		A2:           analog.DefaultA2Config(),
		Power:        power.DefaultConfig(),
		Layout:       layout.DefaultConfig(),
		SpiralTurns:  10,
		SpiralZ:      5e-6,
		ProbeRadius:  0.5e-3,
		ProbeTurns:   8,
		ProbeZ:       100e-6,
		ProbePitch:   20e-6,
		TileLoopArea: 25e-12,
		Quad:         96,
		Seed:         1,
	}
}

// Chip is one built and placed device with its measurement coils.
type Chip struct {
	cfg  Config
	n    *netlist.Netlist
	sim  *logic.Simulator
	fp   *layout.Floorplan
	rec  *power.Recorder
	core *aes.Core

	sensor *emfield.Coupling
	probe  *emfield.Coupling

	trojans map[trojan.Kind]*trojan.Instance
	t2Tile  int // tile of the T2 crowbar cells

	a2        *analog.A2
	a2Victim  netlist.Net
	a2Tile    int
	a2Enabled bool

	rng *rand.Rand
	// streams counts the per-trace seed streams handed out by NextStream.
	// It is a shared pointer so clones and stuck-at variants draw from the
	// same sequence as the chip they derive from.
	streams *atomic.Uint64

	// Lazy batch-capture machinery (batch.go): the wide engine and its
	// pooled per-lane recorders and analog-Trojan scratch. Private to this
	// chip handle — Clone and WithStuckAt reset them.
	wide *logic.WideState
	recs []*power.Recorder
	a2s  []analog.A2
	a2on []bool

	// Fixed-point capture memos: when a capture leaves the chip exactly
	// where it started (a dormant chip under fixed stimulus), the next
	// identical capture replays the memo instead of simulating.
	memoPT   *captureMemo
	memoIdle *captureMemo
}

// captureMemo is one memoized fixed-point capture: the pre-state it
// applies to (which, being a fixed point, is also its post-state), the
// stimulus, and the stable result with deep-copied Tiles.
type captureMemo struct {
	pre     *logic.State
	a2      analog.A2
	a2On    bool
	pt, key [16]byte
	cycles  int
	cap     *Capture
}

// matches reports whether the chip currently sits exactly on the memo's
// fixed point with the same analog-Trojan state.
func (m *captureMemo) matches(c *Chip, cycles int) bool {
	if m == nil || m.cycles != cycles || m.a2On != c.a2Enabled {
		return false
	}
	if c.a2 != nil && *c.a2 != m.a2 {
		return false
	}
	return c.sim.State().ValuesEqual(m.pre)
}

// New builds, places and couples a chip. Builds are memoized
// process-wide: chips whose configurations differ only in Seed share
// one immutable structure (netlist, floorplan, coil couplings, compiled
// program) and differ only in their private mutable state.
func New(cfg Config) (*Chip, error) {
	key := buildKey{cfg: cfg}
	key.cfg.Seed = 0
	b := lookupBuild(key)
	if b == nil {
		var err error
		b, err = buildChip(cfg)
		if err != nil {
			return nil, err
		}
		storeBuild(key, b)
	}
	rec, err := power.NewRecorder(cfg.Power, b.fp)
	if err != nil {
		return nil, err
	}
	c := &Chip{
		cfg: cfg, n: b.n, sim: b.template.Fork(), fp: b.fp, rec: rec, core: b.core,
		sensor: b.sensor, probe: b.probe,
		trojans: b.trojans,
		t2Tile:  b.t2Tile,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		streams: new(atomic.Uint64),
	}
	if cfg.WithA2 {
		c.a2 = analog.NewA2(cfg.A2)
		c.a2Victim = b.a2Victim
		c.a2Tile = b.a2Tile
	}
	return c, nil
}

// buildChip constructs the immutable part of a chip build.
func buildChip(cfg Config) (*built, error) {
	b := netlist.NewBuilder(chipName(cfg))
	core := aes.Generate(b)

	// Clock-division wire: bit 0 of a free-running divider toggles every
	// cycle; it is the A2 Trojan's victim and trigger source, matching
	// "the trigger input ... is provided by the on-chip clock division
	// signal".
	b.SetRegion("clkdiv")
	div := b.Counter(2, netlist.InvalidNet)
	b.Output("clkdiv", div)
	b.SetRegion("")

	trojans := make(map[trojan.Kind]*trojan.Instance)
	if cfg.WithTrojans {
		for _, k := range trojan.Kinds() {
			trojans[k] = trojan.Generate(b, core, k, cfg.Trojan)
		}
	}
	if cfg.Insert != nil {
		if err := cfg.Insert.Insert(b); err != nil {
			return nil, fmt.Errorf("chip: insert %s: %w", cfg.Insert.InsertName(), err)
		}
	}
	n := b.Build()
	template, err := logic.New(n, cfg.simOptions()...)
	if err != nil {
		return nil, err
	}
	fp, err := layout.Place(n, cfg.Layout)
	if err != nil {
		return nil, err
	}
	spiral := emfield.OnChipSpiral(fp.Die, cfg.SpiralTurns, cfg.SpiralZ)
	sensor, err := emfield.CachedCoupling(spiral, fp.Grid, cfg.TileLoopArea, cfg.Quad)
	if err != nil {
		return nil, err
	}
	probeCoil := emfield.ExternalProbe(fp.Die, cfg.ProbeRadius, cfg.ProbeTurns, cfg.ProbeZ, cfg.ProbePitch)
	probe, err := emfield.CachedCoupling(probeCoil, fp.Grid, cfg.TileLoopArea, cfg.Quad)
	if err != nil {
		return nil, err
	}

	out := &built{
		n: n, core: core, fp: fp,
		sensor: sensor, probe: probe,
		trojans: trojans, template: template,
	}
	if inst, ok := trojans[trojan.T2LeakageCurrent]; ok {
		// The crowbar pairs sit with the rest of the T2 block; use the
		// leak wire's driver cell tile as the injection point.
		out.t2Tile = fp.Grid.CellTile[n.Driver(inst.LeakWire)]
	}
	if cfg.WithA2 {
		p, ok := n.OutputPort("clkdiv")
		if !ok {
			return nil, fmt.Errorf("chip: clkdiv port missing")
		}
		out.a2Victim = p.Nets[0]
		out.a2Tile = fp.Grid.CellTile[n.Driver(out.a2Victim)]
	}
	return out, nil
}

func chipName(cfg Config) string {
	name := "aes_golden"
	if cfg.WithTrojans {
		name = "aes_infected"
	}
	if cfg.Insert != nil {
		name += "_" + cfg.Insert.InsertName()
	}
	return name
}

// Netlist returns the chip's gate-level design.
func (c *Chip) Netlist() *netlist.Netlist { return c.n }

// Floorplan returns the placed design.
func (c *Chip) Floorplan() *layout.Floorplan { return c.fp }

// Config returns the build configuration.
func (c *Chip) Config() Config { return c.cfg }

// A2 returns the analog Trojan instance, or nil.
func (c *Chip) A2() *analog.A2 { return c.a2 }

// Trojan returns the instance of the given kind, or nil on a golden chip.
func (c *Chip) Trojan(kind trojan.Kind) *trojan.Instance { return c.trojans[kind] }

// SensorCoupling returns the on-chip spiral's precomputed per-tile
// coupling. Consumers that re-weight tile currents (the fleet's
// process-variation sibling synthesis) need the raw couplings, not just
// the synthesized emf of a capture.
func (c *Chip) SensorCoupling() *emfield.Coupling { return c.sensor }

// Rand returns the chip's deterministic random stream (shared with the
// acquisition channels so a whole experiment reproduces from one seed).
// Loops that may be reordered or parallelized should derive a private
// stream per trace with SplitRand instead: consuming this shared stream
// out of order changes every later draw.
func (c *Chip) Rand() *rand.Rand { return c.rng }

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit
// permutation used to derive independent sub-seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SubSeed derives a deterministic seed from (cfg.Seed, stream, index).
// Distinct (stream, index) pairs land in unrelated points of the
// SplitMix64 permutation, so per-trace generators are statistically
// independent of each other and of the chip's shared stream, yet fully
// reproducible from cfg.Seed alone.
func (c *Chip) SubSeed(stream, index uint64) int64 {
	h := splitmix64(uint64(c.cfg.Seed) ^ 0x6d7472757374) // "mtrust"
	h = splitmix64(h ^ stream)
	h = splitmix64(h ^ index)
	return int64(h >> 1) // non-negative for rand.NewSource
}

// SplitRand returns a private generator for one trace, seeded by
// SubSeed. Use one stream id per capture set (NextStream) and the trace
// index within the set, so results do not depend on capture order or
// worker count.
func (c *Chip) SplitRand(stream, index uint64) *rand.Rand {
	return rand.New(rand.NewSource(c.SubSeed(stream, index)))
}

// NextStream reserves the next seed-stream id. The counter is shared
// with clones and stuck-at variants, so every capture set in an
// experiment gets a distinct stream no matter which chip handle runs it.
func (c *Chip) NextStream() uint64 { return c.streams.Add(1) - 1 }

// Snapshot captures the chip's mutable state: simulator net values and
// cycle counter, the analog Trojan's charge-pump state, and whether it
// is armed. Couplings, floorplan and netlist are immutable and shared.
type Snapshot struct {
	sim       *logic.State
	a2        analog.A2
	a2Enabled bool
}

// Snapshot returns a copy of the chip's current dynamic state.
func (c *Chip) Snapshot() *Snapshot {
	s := &Snapshot{sim: c.sim.State(), a2Enabled: c.a2Enabled}
	if c.a2 != nil {
		s.a2 = *c.a2
	}
	return s
}

// Restore rewinds the chip to a snapshot taken on the same design. It
// does not touch the chip's random stream: state and randomness are
// deliberately decoupled so replayed captures can draw fresh noise.
func (c *Chip) Restore(s *Snapshot) {
	c.sim.SetState(s.sim)
	if c.a2 != nil {
		*c.a2 = s.a2
	}
	c.a2Enabled = s.a2Enabled
}

// Clone returns an independent chip sharing c's immutable structure
// (netlist, floorplan, couplings, Trojan instances) with its own
// simulator, activity recorder and analog Trojan state, all copied from
// c's current state. A clone can capture on its own goroutine; the
// logic.Simulator is single-goroutine, the chips' shared structures are
// read-only. The clone's shared random stream restarts from cfg.Seed —
// parallel capture paths must use SplitRand, not Rand.
func (c *Chip) Clone() (*Chip, error) {
	rec, err := power.NewRecorder(c.cfg.Power, c.fp)
	if err != nil {
		return nil, err
	}
	out := *c
	out.sim = c.sim.Fork()
	out.rec = rec
	if c.a2 != nil {
		a2 := *c.a2
		out.a2 = &a2
	}
	out.rng = rand.New(rand.NewSource(c.cfg.Seed))
	out.resetPrivate()
	return &out, nil
}

// resetPrivate detaches the per-handle lazy machinery after a shallow
// chip copy: the wide engine wraps the source's simulator, the pooled
// recorders and memos belong to the source handle.
func (c *Chip) resetPrivate() {
	c.wide = nil
	c.recs = nil
	c.a2s = nil
	c.a2on = nil
	c.memoPT = nil
	c.memoIdle = nil
}

// SetTrojan switches a digital Trojan's external trigger and advances one
// cycle so the activation flag registers, mirroring the measurement
// procedure of Section V-B ("the Trojans are activated in sequence").
func (c *Chip) SetTrojan(kind trojan.Kind, on bool) error {
	if _, ok := c.trojans[kind]; !ok {
		return fmt.Errorf("chip: %v not present on %s", kind, c.n.Name)
	}
	v := uint64(0)
	if on {
		v = 1
	}
	if err := c.sim.SetPortUint(kind.TriggerPort(), v); err != nil {
		return err
	}
	c.sim.Settle()
	c.sim.Tick()
	return nil
}

// SetPort drives a one-bit input port and advances one cycle so a
// registered activation flag behind it latches — the generic form of
// SetTrojan for inserted logic (a campaign member's force input).
func (c *Chip) SetPort(name string, on bool) error {
	v := uint64(0)
	if on {
		v = 1
	}
	if err := c.sim.SetPortUint(name, v); err != nil {
		return err
	}
	c.sim.Settle()
	c.sim.Tick()
	return nil
}

// DeactivateAll clears every digital Trojan trigger.
func (c *Chip) DeactivateAll() error {
	for k := range c.trojans {
		if err := c.SetTrojan(k, false); err != nil {
			return err
		}
	}
	return nil
}

// EnableA2 resets (and re-arms) the analog Trojan; disable detaches it.
func (c *Chip) EnableA2(on bool) {
	if c.a2 == nil {
		return
	}
	c.a2.Reset()
	c.a2Enabled = on
}

// Capture runs one trace capture of the given number of clock cycles.
// The workload is one AES encryption of a random plaintext under the
// given key, started at cycle 2; Trojan and analog activity continue for
// the whole window. It returns the clean (noise-free) sensor and probe
// waveforms.
func (c *Chip) Capture(key []byte, cycles int) (*Capture, error) {
	if cycles < aes.Latency+3 {
		return nil, fmt.Errorf("chip: capture of %d cycles cannot contain an encryption (need >= %d)", cycles, aes.Latency+3)
	}
	pt := make([]byte, 16)
	c.rng.Read(pt)
	return c.CapturePT(pt, key, cycles)
}

// CapturePT is Capture with a caller-chosen plaintext.
//
// Fixed-point fast path: when the chip is dormant (no active Trojan
// state machine evolving), a fixed-stimulus capture returns the chip to
// exactly its pre-capture state; such a capture is memoized and every
// later identical capture replays the memo (same *Capture, deep-copied
// Tiles) while only advancing the cycle counter. Replay is gated on
// exact state equality, so an active Trojan — whose state genuinely
// evolves — never hits it.
func (c *Chip) CapturePT(pt, key []byte, cycles int) (*Capture, error) {
	if len(pt) != 16 || len(key) != 16 {
		return nil, fmt.Errorf("chip: need 16-byte pt and key")
	}
	if m := c.memoPT; m.matches(c, cycles) &&
		string(pt) == string(m.pt[:]) && string(key) == string(m.key[:]) {
		c.sim.SetCycle(c.sim.Cycle() + cycles)
		return m.cap, nil
	}
	pre := c.sim.State()
	preA2, preOn := c.a2State()
	s := c.sim
	c.rec.Begin(cycles)
	// Batched toggle accounting: the engine accumulates toggle events per
	// cycle and tick() drains them into the recorder in occurrence order,
	// keeping rec.Currents() bit-identical to per-callback recording.
	s.BatchToggles(true)
	defer s.BatchToggles(false)

	// Cycle 0: idle lead-in.
	if err := c.tick(); err != nil {
		return nil, err
	}
	// Set up the encryption; the input settle happens inside the cycle.
	if err := s.SetPortBits(aes.PortPT, aes.BytesToBits(pt)); err != nil {
		return nil, err
	}
	if err := s.SetPortBits(aes.PortKey, aes.BytesToBits(key)); err != nil {
		return nil, err
	}
	if err := s.SetPortUint(aes.PortStart, 1); err != nil {
		return nil, err
	}
	s.Settle()
	if err := c.tick(); err != nil { // load edge
		return nil, err
	}
	if err := s.SetPortUint(aes.PortStart, 0); err != nil {
		return nil, err
	}
	s.Settle()
	for i := 2; i < cycles; i++ {
		if err := c.tick(); err != nil {
			return nil, err
		}
	}
	currents := c.rec.Currents()
	dt := c.rec.Dt()
	cap := &Capture{
		Sensor: c.sensor.EMF(currents, dt),
		Probe:  c.probe.EMF(currents, dt),
		Dt:     dt,
		Tiles:  currents,
		seq:    nextCaptureSeq(),
	}
	if m := c.tryMemo(pre, preA2, preOn, cycles, cap); m != nil {
		copy(m.pt[:], pt)
		copy(m.key[:], key)
		c.memoPT = m
		return m.cap, nil
	}
	return cap, nil
}

// CaptureIdle runs a capture with no encryption: the Section V-A noise
// measurement ("the chip is powered up without executing the
// encryption"). Only the clock tree and any active Trojans draw current.
func (c *Chip) CaptureIdle(cycles int) (*Capture, error) {
	if m := c.memoIdle; m.matches(c, cycles) {
		c.sim.SetCycle(c.sim.Cycle() + cycles)
		return m.cap, nil
	}
	pre := c.sim.State()
	preA2, preOn := c.a2State()
	c.rec.Begin(cycles)
	c.sim.BatchToggles(true)
	defer c.sim.BatchToggles(false)
	for i := 0; i < cycles; i++ {
		if err := c.tick(); err != nil {
			return nil, err
		}
	}
	currents := c.rec.Currents()
	dt := c.rec.Dt()
	cap := &Capture{
		Sensor: c.sensor.EMF(currents, dt),
		Probe:  c.probe.EMF(currents, dt),
		Dt:     dt,
		Tiles:  currents,
		seq:    nextCaptureSeq(),
	}
	if m := c.tryMemo(pre, preA2, preOn, cycles, cap); m != nil {
		c.memoIdle = m
		return m.cap, nil
	}
	return cap, nil
}

// a2State copies the analog Trojan's current state and armed flag.
func (c *Chip) a2State() (analog.A2, bool) {
	var a analog.A2
	if c.a2 != nil {
		a = *c.a2
	}
	return a, c.a2Enabled
}

// tryMemo builds a fixed-point memo when the capture that just finished
// left the chip exactly where it started. The memoized capture deep-
// copies Tiles (the live capture's alias the recorder's reusable
// buffers) so the memo stays valid across later captures.
func (c *Chip) tryMemo(pre *logic.State, preA2 analog.A2, preOn bool, cycles int, cap *Capture) *captureMemo {
	if preOn != c.a2Enabled {
		return nil
	}
	if c.a2 != nil && *c.a2 != preA2 {
		return nil
	}
	if !c.sim.State().ValuesEqual(pre) {
		return nil
	}
	tiles := make([][]float64, len(cap.Tiles))
	for i, row := range cap.Tiles {
		tiles[i] = append([]float64(nil), row...)
	}
	stable := &Capture{Sensor: cap.Sensor, Probe: cap.Probe, Dt: cap.Dt, Tiles: tiles, seq: cap.seq}
	return &captureMemo{pre: pre, a2: preA2, a2On: preOn, cycles: cycles, cap: stable}
}

// tick advances one clock cycle inside a capture: gate-level simulation,
// then the analog hooks, then the waveform flush.
func (c *Chip) tick() error {
	c.sim.Tick()
	// Drain the cycle's batched toggles (including any from inter-tick
	// Settle calls) into the recorder before the cycle flushes.
	c.rec.DrainToggles(c.sim.TakeToggles())
	// T2 crowbar leakage: static current while active and the head bit
	// of the leakage shift register is low.
	if inst, ok := c.trojans[trojan.T2LeakageCurrent]; ok {
		if c.sim.Net(inst.Active) == 1 && c.sim.Net(inst.LeakWire) == 0 {
			c.rec.AddStaticCurrent(c.t2Tile, c.cfg.Power.CrowbarCurrent*float64(inst.CrowbarPairs))
		}
	}
	// A2 charge pump on the clock-division wire.
	if c.a2 != nil && c.a2Enabled {
		res := c.a2.Step(c.sim.Net(c.a2Victim))
		if res.Pumped {
			c.rec.AddFastToggles(c.a2Tile, 1, c.a2.Config().PumpCharge)
		}
		if res.FastToggles > 0 {
			c.rec.AddFastToggles(c.a2Tile, res.FastToggles, c.a2.Config().TriggerCharge)
		}
	}
	return c.rec.EndCycle()
}

// WithStuckAt returns a new chip identical to c except for a stuck-at
// fault on the given net (a fabrication defect or a crude tampering
// attempt). Floorplan and coil couplings are shared — the die geometry
// does not change — but the gate-level simulator and activity recorder
// are rebuilt for the mutated netlist.
func (c *Chip) WithStuckAt(net netlist.Net, value bool) (*Chip, error) {
	mutated, err := c.n.StuckAt(net, value)
	if err != nil {
		return nil, err
	}
	sim, err := logic.New(mutated, c.cfg.simOptions()...)
	if err != nil {
		return nil, err
	}
	rec, err := power.NewRecorder(c.cfg.Power, c.fp)
	if err != nil {
		return nil, err
	}
	out := *c
	out.n = mutated
	out.sim = sim
	out.rec = rec
	if c.a2 != nil {
		out.a2 = analog.NewA2(c.cfg.A2)
	}
	out.resetPrivate()
	return &out, nil
}

// ResetState zeroes every register and re-settles the design, so the
// next capture starts from a known all-zero state (side-channel attack
// workloads depend on a fixed pre-encryption state).
func (c *Chip) ResetState() {
	c.sim.Reset()
	if c.a2 != nil {
		c.a2.Reset()
	}
}

// Ciphertext returns the AES output register contents (valid after a
// capture whose encryption completed).
func (c *Chip) Ciphertext() ([]byte, error) {
	bits, err := c.sim.PortBits(aes.PortCT)
	if err != nil {
		return nil, err
	}
	return aes.BitsToBytes(bits), nil
}

// Capture is the clean dual-channel output of one trace window.
type Capture struct {
	Sensor []float64 // on-chip spiral emf (volts)
	Probe  []float64 // external probe emf (volts)
	Dt     float64
	// Tiles holds the per-tile supply-current waveforms behind the emf
	// synthesis, indexed [tile][sample]. The slices alias the
	// recorder's buffers and are only valid until the next capture on
	// the same chip; consumers (like the ring-oscillator baseline)
	// must read them immediately or copy.
	Tiles [][]float64

	// seq is a process-unique identity for result caching: equal seq
	// means the same capture result (replays of a memoized or cached
	// capture return the same *Capture and hence the same seq). Zero on
	// captures predating the counter (zero-value Captures in tests).
	seq uint64
}

// Seq returns the capture's process-unique identity; downstream caches
// (like the sensor array's EMF synthesis cache) key on it instead of
// the pointer, which could be reused after garbage collection.
func (cap *Capture) Seq() uint64 { return cap.seq }

// Channels bundles the two acquisition channels of an experiment. The
// fields are interfaces so a degradation wrapper (internal/degrade) can
// stand in for the healthy trace.Acquisition on either side.
type Channels struct {
	Sensor trace.Channel
	Probe  trace.Channel
}

// SimulationChannels returns the Section IV noise setup: white noise
// only, with the external probe picking up several times more
// environment noise than the shielded on-chip sensor. The floors are
// calibrated so the default workload lands near the paper's simulated
// SNRs (29.98 dB on-chip, 17.48 dB external).
func SimulationChannels() Channels {
	return Channels{
		Sensor: trace.SimulationChannel(1e-8),
		Probe:  trace.SimulationChannel(3.8e-8),
	}
}

// MeasurementChannels returns the Section V setup: the probe also picks
// up narrowband lab interference and both channels pass through the
// oscilloscope ADC, which is why the fabricated chip's external probe
// reads worse (13.87 dB) than its simulation (17.48 dB) while the
// on-chip sensor barely moves (30.55 dB).
func MeasurementChannels() Channels {
	s := trace.MeasurementChannel(1e-8, 2e-9, 4e-6)
	p := trace.MeasurementChannel(1.9e-8, 5.8e-8, 4e-6)
	s.ADCBits, p.ADCBits = 10, 10
	return Channels{Sensor: s, Probe: p}
}

// Acquire converts a clean capture into measured traces on both channels,
// drawing noise from the chip's shared random stream. Order-sensitive:
// prefer Channels.Acquire with a SplitRand generator in loops that may be
// reordered or parallelized.
func (c *Chip) Acquire(cap *Capture, ch Channels) (sensor, probe *trace.Trace) {
	return ch.Acquire(cap, c.rng)
}

// Acquire converts a clean capture into measured traces on both channels
// using the given generator (sensor noise first, then probe noise — the
// draw order is part of the reproducibility contract).
func (ch Channels) Acquire(cap *Capture, rng *rand.Rand) (sensor, probe *trace.Trace) {
	sensor = ch.Sensor.Acquire(cap.Sensor, cap.Dt, rng)
	probe = ch.Probe.Acquire(cap.Probe, cap.Dt, rng)
	return sensor, probe
}
