package chip

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"emtrust/internal/aes"
	"emtrust/internal/dsp"
	"emtrust/internal/netlist"
	"emtrust/internal/trojan"
)

// Building a chip is expensive (~20 k cell netlist plus coupling
// precompute); share instances across tests.
var (
	infectedOnce sync.Once
	infectedChip *Chip
	goldenOnce   sync.Once
	goldenChip   *Chip
)

func infected(t testing.TB) *Chip {
	t.Helper()
	infectedOnce.Do(func() {
		c, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		infectedChip = c
	})
	if infectedChip == nil {
		t.Fatal("infected chip failed to build earlier")
	}
	return infectedChip
}

func golden(t testing.TB) *Chip {
	t.Helper()
	goldenOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.WithTrojans = false
		cfg.WithA2 = false
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		goldenChip = c
	})
	if goldenChip == nil {
		t.Fatal("golden chip failed to build earlier")
	}
	return goldenChip
}

var testKey = []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}

func TestGoldenChipHasNoTrojans(t *testing.T) {
	c := golden(t)
	for _, k := range trojan.Kinds() {
		if c.Trojan(k) != nil {
			t.Fatalf("golden chip carries %v", k)
		}
		if err := c.SetTrojan(k, true); err == nil {
			t.Fatalf("activating %v on the golden chip must fail", k)
		}
	}
	if c.A2() != nil {
		t.Fatal("golden chip carries the A2 Trojan")
	}
	if c.Netlist().Name != "aes_golden" {
		t.Fatalf("name = %s", c.Netlist().Name)
	}
}

func TestInfectedChipInventory(t *testing.T) {
	c := infected(t)
	for _, k := range trojan.Kinds() {
		if c.Trojan(k) == nil {
			t.Fatalf("missing %v", k)
		}
	}
	if c.A2() == nil {
		t.Fatal("missing A2")
	}
	if c.Config().Seed != DefaultConfig().Seed {
		t.Fatal("config not retained")
	}
	if c.Floorplan() == nil || c.Netlist() == nil || c.Rand() == nil {
		t.Fatal("accessors broken")
	}
}

func TestCaptureEncryptsCorrectly(t *testing.T) {
	c := golden(t)
	pt := []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	want := make([]byte, 16)
	aes.NewCipher(testKey).Encrypt(want, pt)
	if _, err := c.CapturePT(pt, testKey, 20); err != nil {
		t.Fatal(err)
	}
	got, err := c.Ciphertext()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("capture ciphertext %x, want %x", got, want)
	}
}

func TestCaptureShapes(t *testing.T) {
	c := golden(t)
	cap, err := c.Capture(testKey, 24)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 24 * c.Config().Power.SamplesPerCycle
	if len(cap.Sensor) != wantLen || len(cap.Probe) != wantLen {
		t.Fatalf("lengths %d/%d, want %d", len(cap.Sensor), len(cap.Probe), wantLen)
	}
	if cap.Dt != c.Config().Power.Dt() {
		t.Fatal("dt mismatch")
	}
	if dsp.RMS(cap.Sensor) == 0 || dsp.RMS(cap.Probe) == 0 {
		t.Fatal("silent capture")
	}
	if _, err := c.Capture(testKey, 5); err == nil {
		t.Fatal("too-short capture must error")
	}
	if _, err := c.CapturePT(make([]byte, 3), testKey, 24); err == nil {
		t.Fatal("short pt must error")
	}
}

func TestIdleQuieterThanActive(t *testing.T) {
	c := golden(t)
	idle, err := c.CaptureIdle(24)
	if err != nil {
		t.Fatal(err)
	}
	active, err := c.Capture(testKey, 24)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.RMS(idle.Sensor)*2 > dsp.RMS(active.Sensor) {
		t.Fatalf("idle sensor RMS %g not well below active %g", dsp.RMS(idle.Sensor), dsp.RMS(active.Sensor))
	}
}

func TestTrojanActivationChangesEM(t *testing.T) {
	c := infected(t)
	if err := c.DeactivateAll(); err != nil {
		t.Fatal(err)
	}
	base, err := c.Capture(testKey, 24)
	if err != nil {
		t.Fatal(err)
	}
	baseRMS := dsp.RMS(base.Sensor)
	for _, k := range []trojan.Kind{trojan.T2LeakageCurrent, trojan.T4PowerHog} {
		if err := c.SetTrojan(k, true); err != nil {
			t.Fatal(err)
		}
		cap, err := c.Capture(testKey, 24)
		if err != nil {
			t.Fatal(err)
		}
		if got := dsp.RMS(cap.Sensor); got <= baseRMS*1.02 {
			t.Errorf("%v active: sensor RMS %g not above baseline %g", k, got, baseRMS)
		}
		if err := c.SetTrojan(k, false); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSimulatedSNRGap(t *testing.T) {
	c := golden(t)
	ch := SimulationChannels()
	// Build long signal and noise records like Section IV-B/V-A: the
	// chip idles for the noise record and encrypts back-to-back for the
	// signal record.
	var signalS, signalP, noiseS, noiseP []float64
	for i := 0; i < 6; i++ {
		cap, err := c.Capture(testKey, 16)
		if err != nil {
			t.Fatal(err)
		}
		s, p := c.Acquire(cap, ch)
		signalS = append(signalS, s.Samples...)
		signalP = append(signalP, p.Samples...)
		idle, err := c.CaptureIdle(16)
		if err != nil {
			t.Fatal(err)
		}
		sn, pn := c.Acquire(idle, ch)
		noiseS = append(noiseS, sn.Samples...)
		noiseP = append(noiseP, pn.Samples...)
	}
	snrSensor := dsp.SNRdB(signalS, noiseS)
	snrProbe := dsp.SNRdB(signalP, noiseP)
	t.Logf("simulated SNR: sensor %.2f dB, probe %.2f dB", snrSensor, snrProbe)
	if snrSensor < snrProbe+8 {
		t.Fatalf("sensor SNR %.1f dB not clearly above probe %.1f dB", snrSensor, snrProbe)
	}
	if snrSensor < 24 || snrSensor > 36 {
		t.Errorf("sensor SNR %.1f dB outside the paper's regime (~30 dB)", snrSensor)
	}
	if snrProbe < 12 || snrProbe > 23 {
		t.Errorf("probe SNR %.1f dB outside the paper's regime (~17.5 dB)", snrProbe)
	}
}

func TestA2FiresDuringCapture(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WithTrojans = false // isolate the analog Trojan
	cfg.WithA2 = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableA2(true)
	// The clkdiv victim toggles every cycle; a few hundred cycles charge
	// the pump past threshold.
	if _, err := c.CaptureIdle(400); err != nil {
		t.Fatal(err)
	}
	if !c.A2().Firing() {
		t.Fatalf("A2 did not fire; V=%g", c.A2().Voltage())
	}
	// Disabled, it stays silent.
	c.EnableA2(false)
	if _, err := c.CaptureIdle(400); err != nil {
		t.Fatal(err)
	}
	if c.A2().Firing() || c.A2().Voltage() != 0 {
		t.Fatal("disabled A2 still pumping")
	}
}

func TestAcquireChannels(t *testing.T) {
	c := golden(t)
	cap, err := c.Capture(testKey, 16)
	if err != nil {
		t.Fatal(err)
	}
	s, p := c.Acquire(cap, MeasurementChannels())
	if len(s.Samples) != len(cap.Sensor) || len(p.Samples) != len(cap.Probe) {
		t.Fatal("acquire length mismatch")
	}
	if s.Dt != cap.Dt {
		t.Fatal("dt lost in acquisition")
	}
}

func TestWithStuckAtChip(t *testing.T) {
	c := golden(t)
	// Stuck-at on a combinational AES net: ciphertext corrupts, the
	// original chip stays healthy.
	n := c.Netlist()
	var target = netlist.InvalidNet
	for _, cell := range n.Cells {
		if cell.Type == netlist.Xor2 && strings.HasPrefix(cell.Region, "aes/round") {
			target = cell.Output
			break
		}
	}
	if target == netlist.InvalidNet {
		t.Fatal("no fault site found")
	}
	faulty, err := c.WithStuckAt(target, true)
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, 16)
	want := make([]byte, 16)
	aes.NewCipher(testKey).Encrypt(want, pt)
	if _, err := faulty.CapturePT(pt, testKey, 20); err != nil {
		t.Fatal(err)
	}
	got, err := faulty.Ciphertext()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, want) {
		t.Log("fault was masked for this vector (possible); checking the healthy chip still works")
	}
	if _, err := c.CapturePT(pt, testKey, 20); err != nil {
		t.Fatal(err)
	}
	healthy, err := c.Ciphertext()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healthy, want) {
		t.Fatal("original chip corrupted by WithStuckAt")
	}
	// Error paths.
	if _, err := c.WithStuckAt(netlist.InvalidNet, true); err == nil {
		t.Fatal("invalid net must error")
	}
}

func TestResetState(t *testing.T) {
	c := golden(t)
	pt := make([]byte, 16)
	if _, err := c.CapturePT(pt, testKey, 20); err != nil {
		t.Fatal(err)
	}
	c.ResetState()
	ct, err := c.Ciphertext()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range ct {
		if b != 0 {
			t.Fatal("state survived ResetState")
		}
	}
}

func TestSubSeedStableAndStreamSeparated(t *testing.T) {
	c := golden(t)
	if c.SubSeed(0, 0) != c.SubSeed(0, 0) {
		t.Fatal("SubSeed not deterministic")
	}
	seen := map[int64]bool{}
	for stream := uint64(0); stream < 8; stream++ {
		for idx := uint64(0); idx < 64; idx++ {
			s := c.SubSeed(stream, idx)
			if s < 0 {
				t.Fatalf("SubSeed(%d,%d) = %d is negative", stream, idx, s)
			}
			if seen[s] {
				t.Fatalf("SubSeed collision at (%d,%d)", stream, idx)
			}
			seen[s] = true
		}
	}
	// Different chip seeds must decorrelate.
	cfg := DefaultConfig()
	cfg.WithTrojans = false
	cfg.WithA2 = false
	cfg.Seed = 99
	other, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if other.SubSeed(0, 0) == c.SubSeed(0, 0) {
		t.Error("different chip seeds produced the same sub-seed")
	}
}

func TestNextStreamSharedWithDerivedChips(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WithTrojans = false
	cfg.WithA2 = false
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s0 := c.NextStream()
	clone, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	s1 := clone.NextStream()
	s2 := c.NextStream()
	if s1 != s0+1 || s2 != s0+2 {
		t.Errorf("streams not shared: got %d, %d, %d", s0, s1, s2)
	}
}

func TestSnapshotRestoreReplaysCapture(t *testing.T) {
	c := infected(t)
	base := c.Snapshot()
	cap1, err := c.CapturePT(make([]byte, 16), testKey, 16)
	if err != nil {
		t.Fatal(err)
	}
	first := append([]float64(nil), cap1.Sensor...)
	c.Restore(base)
	cap2, err := c.CapturePT(make([]byte, 16), testKey, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if cap2.Sensor[i] != first[i] {
			t.Fatalf("sample %d differs after snapshot/restore replay", i)
		}
	}
	c.Restore(base)
}

func TestCloneCapturesIdentically(t *testing.T) {
	c := infected(t)
	base := c.Snapshot()
	defer c.Restore(base)
	clone, err := c.Clone()
	if err != nil {
		t.Fatal(err)
	}
	capC, err := c.CapturePT(make([]byte, 16), testKey, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), capC.Sensor...)
	capW, err := clone.CapturePT(make([]byte, 16), testKey, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if capW.Sensor[i] != want[i] {
			t.Fatalf("sample %d: clone %v != original %v", i, capW.Sensor[i], want[i])
		}
	}
	// The clone must be fully independent: capturing on it again must not
	// disturb the original's recorder buffers.
	if _, err := clone.CaptureIdle(8); err != nil {
		t.Fatal(err)
	}
}

func TestChannelsAcquireDeterministic(t *testing.T) {
	c := golden(t)
	base := c.Snapshot()
	defer c.Restore(base)
	cap, err := c.CaptureIdle(16)
	if err != nil {
		t.Fatal(err)
	}
	ch := SimulationChannels()
	s1, p1 := ch.Acquire(cap, c.SplitRand(1000, 7))
	s2, p2 := ch.Acquire(cap, c.SplitRand(1000, 7))
	for i := range s1.Samples {
		if s1.Samples[i] != s2.Samples[i] || p1.Samples[i] != p2.Samples[i] {
			t.Fatal("same (stream, index) must reproduce the same trace")
		}
	}
	s3, _ := ch.Acquire(cap, c.SplitRand(1000, 8))
	same := true
	for i := range s1.Samples {
		if s1.Samples[i] != s3.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different indices produced identical noise")
	}
}

// TestCompiledMatchesReferenceCaptures pins the perf-critical contract
// of the compiled event-driven simulator at the chip level: every
// capture output — sensor and probe waveforms and the per-tile current
// matrix — must be bit-identical to the reference full-cone evaluator,
// across encryption captures, idle captures, active Trojans, the A2
// analog path, and a stuck-at mutant.
func TestCompiledMatchesReferenceCaptures(t *testing.T) {
	cfg := DefaultConfig()
	compiled, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReferenceSim = true
	reference, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	compare := func(step string, a, b *Capture) {
		t.Helper()
		if len(a.Sensor) != len(b.Sensor) {
			t.Fatalf("%s: capture lengths differ", step)
		}
		for i := range a.Sensor {
			if a.Sensor[i] != b.Sensor[i] {
				t.Fatalf("%s: sensor sample %d: compiled %v != reference %v", step, i, a.Sensor[i], b.Sensor[i])
			}
			if a.Probe[i] != b.Probe[i] {
				t.Fatalf("%s: probe sample %d: compiled %v != reference %v", step, i, a.Probe[i], b.Probe[i])
			}
		}
		for tile := range a.Tiles {
			for i := range a.Tiles[tile] {
				if a.Tiles[tile][i] != b.Tiles[tile][i] {
					t.Fatalf("%s: tile %d sample %d differs", step, tile, i)
				}
			}
		}
	}

	run := func(step string, f func(c *Chip) (*Capture, error)) {
		t.Helper()
		ca, err := f(compiled)
		if err != nil {
			t.Fatalf("%s (compiled): %v", step, err)
		}
		// Copy: Tiles alias recorder buffers that the next capture reuses.
		snap := &Capture{
			Sensor: append([]float64(nil), ca.Sensor...),
			Probe:  append([]float64(nil), ca.Probe...),
			Tiles:  make([][]float64, len(ca.Tiles)),
		}
		for i, w := range ca.Tiles {
			snap.Tiles[i] = append([]float64(nil), w...)
		}
		cb, err := f(reference)
		if err != nil {
			t.Fatalf("%s (reference): %v", step, err)
		}
		compare(step, snap, cb)
	}

	pt := make([]byte, 16)
	run("encrypt", func(c *Chip) (*Capture, error) { return c.CapturePT(pt, testKey, 16) })
	run("idle", func(c *Chip) (*Capture, error) { return c.CaptureIdle(12) })

	for _, c := range []*Chip{compiled, reference} {
		if err := c.SetTrojan(trojan.T1AMLeaker, true); err != nil {
			t.Fatal(err)
		}
		c.EnableA2(true)
	}
	run("trojan+a2", func(c *Chip) (*Capture, error) { return c.CapturePT(pt, testKey, 16) })

	// Snapshot/restore replay must stay identical across engines too.
	snapC, snapR := compiled.Snapshot(), reference.Snapshot()
	run("pre-restore", func(c *Chip) (*Capture, error) { return c.CapturePT(pt, testKey, 16) })
	compiled.Restore(snapC)
	reference.Restore(snapR)
	run("post-restore", func(c *Chip) (*Capture, error) { return c.CapturePT(pt, testKey, 16) })

	// Stuck-at mutants rebuild the simulator; the engines must agree there.
	target := compiled.Netlist().Cells[100].Output
	saC, err := compiled.WithStuckAt(target, true)
	if err != nil {
		t.Fatal(err)
	}
	saR, err := reference.WithStuckAt(target, true)
	if err != nil {
		t.Fatal(err)
	}
	capC, err := saC.CapturePT(pt, testKey, 16)
	if err != nil {
		t.Fatal(err)
	}
	snap := &Capture{Sensor: append([]float64(nil), capC.Sensor...), Probe: append([]float64(nil), capC.Probe...)}
	capR, err := saR.CapturePT(pt, testKey, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap.Sensor {
		if snap.Sensor[i] != capR.Sensor[i] || snap.Probe[i] != capR.Probe[i] {
			t.Fatalf("stuck-at: sample %d differs between engines", i)
		}
	}
}
