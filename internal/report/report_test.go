package report

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestWriteHTMLBasics(t *testing.T) {
	r := New("Test <Report>")
	r.AddHeading("Section & One", "prose with <tags>")
	r.AddTable([]string{"a", "b"}, [][]string{{"1", "x<y"}, {"2", "z"}})
	r.AddPre("line1\nline2 <pre>")
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Test &lt;Report&gt;",
		"Section &amp; One",
		"<td>x&lt;y</td>",
		"line2 &lt;pre&gt;",
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Nothing unescaped leaked through.
	if strings.Contains(out, "<tags>") || strings.Contains(out, "x<y") {
		t.Error("HTML injection not escaped")
	}
}

func TestAddBars(t *testing.T) {
	r := New("bars")
	r.AddBars("histogram", "distance", 0, 1,
		Series{Name: "golden", Values: []float64{5, 10, 2, 0}},
		Series{Name: "active", Values: []float64{0, 1, 8, 9}},
	)
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "<rect"); got < 7 { // background + 6 nonzero bars
		t.Fatalf("rect count = %d", got)
	}
	if !strings.Contains(out, "golden") || !strings.Contains(out, "active") {
		t.Error("legend missing")
	}
	// Empty chart degenerates without panicking.
	r2 := New("empty")
	r2.AddBars("nothing", "x", 0, 1, Series{Name: "none", Values: []float64{0, 0}})
	if err := r2.WriteHTML(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestAddLines(t *testing.T) {
	r := New("lines")
	r.AddLines("spectrum", "Hz", 0, 1e6, true,
		Series{Name: "on", Values: []float64{1e-9, 5e-9, 2e-8, 1e-9}},
		Series{Name: "off", Values: []float64{1e-9, 2e-9, 3e-9, 1e-9}},
	)
	r.AddLines("linear", "Hz", 0, 1e6, false,
		Series{Name: "a", Values: []float64{0, 1, 2, 3}},
	)
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "<polyline"); got != 3 {
		t.Fatalf("polyline count = %d", got)
	}
	// Degenerate inputs.
	r2 := New("deg")
	r2.AddLines("too short", "x", 0, 1, false, Series{Name: "s", Values: []float64{1}})
	if err := r2.WriteHTML(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteHTMLPropagatesError(t *testing.T) {
	r := New("x")
	if err := r.WriteHTML(failWriter{}); err == nil {
		t.Fatal("write error must propagate")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("nope") }

func TestDefaultColorsCycle(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		seen[defaultColor(i)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("colors = %v", seen)
	}
	if defaultColor(0) != defaultColor(4) {
		t.Fatal("colors must cycle")
	}
}

func TestAddHeatmap(t *testing.T) {
	r := New("heat")
	// 2x2 grid, bottom row first; cell 3 (top-right) is hottest.
	r.AddHeatmap("die map", 2, 2, []float64{0, 1, -2, 10})
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Background + 4 cells + hottest outline.
	if got := strings.Count(out, "<rect"); got != 6 {
		t.Fatalf("rect count = %d", got)
	}
	// The hottest cell is saturated red, the zero and negative cells white.
	if !strings.Contains(out, "rgb(192,57,43)") {
		t.Error("max cell not full red")
	}
	if strings.Count(out, "rgb(255,255,255)") != 2 {
		t.Error("zero/negative cells not white")
	}
	// Cells this large carry value labels.
	if !strings.Contains(out, ">10.0</text>") {
		t.Error("value label missing")
	}

	// Degenerate inputs render an empty chart without panicking.
	r2 := New("deg")
	r2.AddHeatmap("bad", 3, 3, []float64{1, 2})
	r2.AddHeatmap("empty", 0, 0, nil)
	r2.AddHeatmap("all zero", 2, 1, []float64{0, 0})
	if err := r2.WriteHTML(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}
