// Package report renders experiment results into a single
// self-contained HTML page with inline-SVG charts — the Figure 6
// histogram panels and Figure 4 spectra in the paper's red/blue
// colouring, plus the comparison tables, with no external assets.
package report

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"
)

// Report accumulates sections and renders them as one HTML document.
type Report struct {
	title    string
	sections []string
}

// New creates an empty report with the given page title.
func New(title string) *Report {
	return &Report{title: title}
}

// AddHeading appends a section heading with optional prose.
func (r *Report) AddHeading(title, prose string) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "<h2>%s</h2>\n", html.EscapeString(title))
	if prose != "" {
		fmt.Fprintf(&sb, "<p>%s</p>\n", html.EscapeString(prose))
	}
	r.sections = append(r.sections, sb.String())
}

// AddTable appends a simple table.
func (r *Report) AddTable(headers []string, rows [][]string) {
	var sb strings.Builder
	sb.WriteString("<table>\n<tr>")
	for _, h := range headers {
		fmt.Fprintf(&sb, "<th>%s</th>", html.EscapeString(h))
	}
	sb.WriteString("</tr>\n")
	for _, row := range rows {
		sb.WriteString("<tr>")
		for _, cell := range row {
			fmt.Fprintf(&sb, "<td>%s</td>", html.EscapeString(cell))
		}
		sb.WriteString("</tr>\n")
	}
	sb.WriteString("</table>\n")
	r.sections = append(r.sections, sb.String())
}

// AddPre appends preformatted text (ASCII renderings).
func (r *Report) AddPre(text string) {
	r.sections = append(r.sections,
		fmt.Sprintf("<pre>%s</pre>\n", html.EscapeString(text)))
}

// Series is one named data series for a chart.
type Series struct {
	Name   string
	Color  string // CSS color; defaults alternate red/blue
	Values []float64
}

const (
	chartW, chartH = 560, 220
	margin         = 36
)

// AddBars appends an overlaid bar chart (the Figure 6 histogram style):
// every series shares the x-axis bins; bars are translucent so overlap
// shows.
func (r *Report) AddBars(title, xLabel string, xMin, xMax float64, series ...Series) {
	var sb strings.Builder
	openSVG(&sb, title)
	maxV := 0.0
	bins := 0
	for _, s := range series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
		if len(s.Values) > bins {
			bins = len(s.Values)
		}
	}
	if maxV == 0 || bins == 0 {
		sb.WriteString("</svg>\n")
		r.sections = append(r.sections, sb.String())
		return
	}
	plotW := float64(chartW - 2*margin)
	plotH := float64(chartH - 2*margin)
	bw := plotW / float64(bins)
	for si, s := range series {
		color := s.Color
		if color == "" {
			color = defaultColor(si)
		}
		for i, v := range s.Values {
			if v == 0 {
				continue
			}
			h := v / maxV * plotH
			x := margin + float64(i)*bw
			y := float64(chartH-margin) - h
			fmt.Fprintf(&sb,
				`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.55"/>`+"\n",
				x, y, bw*0.9, h, color)
		}
	}
	axes(&sb, xLabel, xMin, xMax, maxV)
	legend(&sb, series)
	sb.WriteString("</svg>\n")
	r.sections = append(r.sections, sb.String())
}

// AddLines appends a line chart (the Figure 4 / Figure 6 spectrum
// style). Values are plotted on a log10 y-axis when logY is set.
func (r *Report) AddLines(title, xLabel string, xMin, xMax float64, logY bool, series ...Series) {
	var sb strings.Builder
	openSVG(&sb, title)
	maxV, minV := 0.0, math.Inf(1)
	n := 0
	for _, s := range series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
			if v > 0 && v < minV {
				minV = v
			}
		}
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	if maxV == 0 || n < 2 {
		sb.WriteString("</svg>\n")
		r.sections = append(r.sections, sb.String())
		return
	}
	if !logY {
		minV = 0
	}
	plotW := float64(chartW - 2*margin)
	plotH := float64(chartH - 2*margin)
	yOf := func(v float64) float64 {
		var frac float64
		if logY {
			if v <= minV {
				frac = 0
			} else {
				frac = math.Log10(v/minV) / math.Log10(maxV/minV)
			}
		} else {
			frac = v / maxV
		}
		return float64(chartH-margin) - frac*plotH
	}
	for si, s := range series {
		color := s.Color
		if color == "" {
			color = defaultColor(si)
		}
		var pts []string
		for i, v := range s.Values {
			x := margin + float64(i)/float64(n-1)*plotW
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, yOf(v)))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.2"/>`+"\n",
			strings.Join(pts, " "), color)
	}
	axes(&sb, xLabel, xMin, xMax, maxV)
	legend(&sb, series)
	sb.WriteString("</svg>\n")
	r.sections = append(r.sections, sb.String())
}

// AddHeatmap appends an nx×ny cell grid colored white→red by value —
// the die-heatmap view of the sensor-array localization experiment.
// values is row-major with row 0 the bottom row, matching die
// coordinates; negative values clamp to white. The hottest cell is
// outlined, and cells large enough carry their value as text.
func (r *Report) AddHeatmap(title string, nx, ny int, values []float64) {
	var sb strings.Builder
	openSVG(&sb, title)
	if nx <= 0 || ny <= 0 || len(values) != nx*ny {
		sb.WriteString("</svg>\n")
		r.sections = append(r.sections, sb.String())
		return
	}
	maxV, hot := 0.0, 0
	for i, v := range values {
		if v > values[hot] {
			hot = i
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	cell := math.Min(float64(chartW-2*margin)/float64(nx), float64(chartH-2*margin)/float64(ny))
	x0, y0 := float64(margin), float64(chartH-margin)
	cellRect := func(k int) (x, y float64) {
		return x0 + float64(k%nx)*cell, y0 - float64(k/nx+1)*cell
	}
	lerp := func(frac float64, to int) int { return int(255 + frac*float64(to-255)) }
	for k, v := range values {
		frac := v / maxV
		if frac < 0 {
			frac = 0
		}
		x, y := cellRect(k)
		// White fading into the report's golden red (#c0392b).
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(%d,%d,%d)" stroke="#ddd"/>`+"\n",
			x, y, cell, cell, lerp(frac, 0xc0), lerp(frac, 0x39), lerp(frac, 0x2b))
		if cell >= 24 {
			color := "#333"
			if frac > 0.6 {
				color = "#fff"
			}
			fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="9" fill="%s" text-anchor="middle">%.1f</text>`+"\n",
				x+cell/2, y+cell/2+3, color, v)
		}
	}
	x, y := cellRect(hot)
	fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#222" stroke-width="2"/>`+"\n",
		x, y, cell, cell)
	sb.WriteString("</svg>\n")
	r.sections = append(r.sections, sb.String())
}

func openSVG(sb *strings.Builder, title string) {
	fmt.Fprintf(sb, `<h3>%s</h3><svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">`+"\n",
		html.EscapeString(title), chartW, chartH, chartW, chartH)
	fmt.Fprintf(sb, `<rect x="0" y="0" width="%d" height="%d" fill="#fcfcfc"/>`+"\n", chartW, chartH)
}

func axes(sb *strings.Builder, xLabel string, xMin, xMax, yMax float64) {
	fmt.Fprintf(sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		margin, chartH-margin, chartW-margin, chartH-margin)
	fmt.Fprintf(sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		margin, margin, margin, chartH-margin)
	fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="10" fill="#333">%s</text>`+"\n",
		margin, chartH-8, html.EscapeString(fmt.Sprintf("%s: %.3g .. %.3g", xLabel, xMin, xMax)))
	fmt.Fprintf(sb, `<text x="4" y="%d" font-size="10" fill="#333">%.3g</text>`+"\n",
		margin+4, yMax)
}

func legend(sb *strings.Builder, series []Series) {
	x := chartW - margin - 150
	y := margin
	for si, s := range series {
		color := s.Color
		if color == "" {
			color = defaultColor(si)
		}
		fmt.Fprintf(sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", x, y+si*14, color)
		fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="10" fill="#333">%s</text>`+"\n",
			x+14, y+si*14+9, html.EscapeString(s.Name))
	}
}

func defaultColor(i int) string {
	// The paper's plots: golden red, Trojan blue.
	colors := []string{"#c0392b", "#2455a4", "#1e8449", "#8e44ad"}
	return colors[i%len(colors)]
}

// WriteHTML renders the full document.
func (r *Report) WriteHTML(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&sb, "<title>%s</title>\n", html.EscapeString(r.title))
	sb.WriteString(`<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #222; }
table { border-collapse: collapse; margin: 0.6rem 0; }
th, td { border: 1px solid #bbb; padding: 0.25rem 0.6rem; font-size: 0.9rem; }
th { background: #f2f2f2; }
pre { background: #f7f7f7; padding: 0.6rem; overflow-x: auto; font-size: 0.8rem; }
svg { border: 1px solid #ddd; margin: 0.4rem 0; }
</style></head><body>
`)
	fmt.Fprintf(&sb, "<h1>%s</h1>\n", html.EscapeString(r.title))
	for _, s := range r.sections {
		sb.WriteString(s)
	}
	sb.WriteString("</body></html>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
