package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEuclideanKnown(t *testing.T) {
	if d := Euclidean([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Fatalf("Euclidean = %g, want 5", d)
	}
	if d := Euclidean([]float64{1, 2, 3}, []float64{1, 2, 3}); d != 0 {
		t.Fatalf("self distance = %g", d)
	}
}

func TestEuclideanPanicsOnMismatch(t *testing.T) {
	mustPanic(t, func() { Euclidean([]float64{1}, []float64{1, 2}) })
}

// Metric axioms: symmetry, non-negativity, triangle inequality.
func TestEuclideanMetricAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		dab := Euclidean(a, b)
		dba := Euclidean(b, a)
		dac := Euclidean(a, c)
		dcb := Euclidean(c, b)
		if dab < 0 || math.Abs(dab-dba) > 1e-12 {
			return false
		}
		return dab <= dac+dcb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxPairwiseDistance(t *testing.T) {
	m := NewMatrix(3, 1)
	m.Set(0, 0, 0)
	m.Set(1, 0, 2)
	m.Set(2, 0, 10)
	if d := MaxPairwiseDistance(m); d != 10 {
		t.Fatalf("MaxPairwiseDistance = %g, want 10", d)
	}
	if d := MaxPairwiseDistance(NewMatrix(1, 4)); d != 0 {
		t.Fatalf("single sample must give 0, got %g", d)
	}
}

// Eq. (1) threshold property: no golden sample pair may ever exceed it.
func TestThresholdCoversGolden(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(10, 3)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		th := MaxPairwiseDistance(m)
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Rows; j++ {
				if Euclidean(m.Row(i), m.Row(j)) > th+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistancesToCentroid(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 0)
	m.Set(1, 0, 2)
	m.Set(1, 1, 0)
	c := Centroid(m) // (1, 0)
	d := DistancesToCentroid(m, c)
	if d[0] != 1 || d[1] != 1 {
		t.Fatalf("distances = %v", d)
	}
}

func TestMinDistanceToSet(t *testing.T) {
	m := NewMatrix(2, 1)
	m.Set(0, 0, 5)
	m.Set(1, 0, -1)
	if d := MinDistanceToSet([]float64{0}, m); d != 1 {
		t.Fatalf("MinDistanceToSet = %g, want 1", d)
	}
	if !math.IsInf(MinDistanceToSet([]float64{0}, NewMatrix(0, 1)), 1) {
		t.Fatal("empty set must give +Inf")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Fatalf("median = %g", s.Median)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %g, want %g", s.Std, want)
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Fatalf("odd median = %g", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Median != 7 {
		t.Fatalf("singleton summary = %+v", one)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddAll([]float64{0.5, 1.5, 1.6, 9.9, -5, 100})
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0.5 and clamped -5
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Fatalf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 9.9 and clamped 100
		t.Fatalf("bin9 = %d", h.Counts[9])
	}
	if h.PeakBin() != 0 {
		t.Fatalf("peak bin = %d (ties resolve low)", h.PeakBin())
	}
	if math.Abs(h.BinCenter(0)-0.5) > 1e-12 {
		t.Fatalf("bin center = %g", h.BinCenter(0))
	}
}

func TestHistogramOverlap(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	b := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		a.Add(2.5)
		b.Add(2.5)
	}
	if o := a.Overlap(b); math.Abs(o-1) > 1e-12 {
		t.Fatalf("identical overlap = %g", o)
	}
	c := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		c.Add(7.5)
	}
	if o := a.Overlap(c); o != 0 {
		t.Fatalf("disjoint overlap = %g", o)
	}
	if sep := a.PeakSeparation(c); math.Abs(sep-5) > 1e-12 {
		t.Fatalf("peak separation = %g, want 5", sep)
	}
}

func TestHistogramOverlapPanicsOnMismatch(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	b := NewHistogram(0, 10, 20)
	mustPanic(t, func() { a.Overlap(b) })
}

func TestHistogramConstructorPanics(t *testing.T) {
	mustPanic(t, func() { NewHistogram(0, 10, 0) })
	mustPanic(t, func() { NewHistogram(5, 5, 4) })
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 4, 20)
	for i := 0; i < 50; i++ {
		h.Add(1)
	}
	out := h.Render(4)
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	empty := NewHistogram(0, 1, 4)
	if empty.Render(2) != "(empty histogram)\n" {
		t.Fatal("empty histogram render")
	}
}
