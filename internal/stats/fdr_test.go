package stats

import (
	"math"
	"testing"
)

func TestBenjaminiHochbergBasics(t *testing.T) {
	// The worked example from Benjamini & Hochberg (1995): m=15 tests
	// at q=0.05 reject exactly the four smallest p-values (note the
	// step-up rule rejects 0.0095 even though 0.0095 > 3/15*0.05).
	p := []float64{
		0.0019, 0.0001, 0.0095, 0.0004, 0.0201, 0.0278, 0.0298, 0.0344,
		0.0459, 0.3240, 0.4262, 0.5719, 0.6528, 0.7590, 1.000,
	}
	reject, thr := BenjaminiHochberg(p, 0.05)
	want := []bool{true, true, true, true, false, false, false, false, false, false, false, false, false, false, false}
	for i := range want {
		if reject[i] != want[i] {
			t.Fatalf("reject[%d] = %v, want %v (reject=%v)", i, reject[i], want[i], reject)
		}
	}
	if thr != 0.0095 {
		t.Fatalf("threshold = %g, want 0.0095", thr)
	}
}

func TestBenjaminiHochbergEdges(t *testing.T) {
	if r, thr := BenjaminiHochberg(nil, 0.05); len(r) != 0 || thr != 0 {
		t.Fatalf("empty input: got %v, %g", r, thr)
	}
	// All large p-values: nothing rejected.
	r, thr := BenjaminiHochberg([]float64{0.9, 0.8, 0.99}, 0.05)
	for i, v := range r {
		if v {
			t.Fatalf("rejected null hypothesis %d with p=0.8+", i)
		}
	}
	if thr != 0 {
		t.Fatalf("threshold = %g, want 0", thr)
	}
	// Non-finite p-values never reject but do not crash or shrink the
	// family; a single tiny p among them still rejects.
	r, _ = BenjaminiHochberg([]float64{math.NaN(), 1e-9, math.Inf(1), -3}, 0.05)
	if r[0] || !r[1] || r[2] || r[3] {
		t.Fatalf("non-finite handling wrong: %v", r)
	}
	// Monotone in q: a rejection at q=0.01 is a rejection at q=0.1.
	p := []float64{0.0004, 0.03, 0.5, 0.6, 0.7}
	lo, _ := BenjaminiHochberg(p, 0.01)
	hi, _ := BenjaminiHochberg(p, 0.1)
	for i := range p {
		if lo[i] && !hi[i] {
			t.Fatalf("rejection set not monotone in q at %d", i)
		}
	}
}

func TestNormalSF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.6448536269514722, 0.05},
		{3, 0.0013498980316300933},
		{-1, 0.8413447460685429},
	}
	for _, c := range cases {
		if got := NormalSF(c.z); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("NormalSF(%g) = %g, want %g", c.z, got, c.want)
		}
	}
}
