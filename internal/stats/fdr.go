package stats

import (
	"math"
	"sort"
)

// Multiple-testing control for fleet-scale alarm ranking. A fleet of N
// monitored dies is N simultaneous hypothesis tests per aggregation
// round; thresholding each die's p-value at alpha fires alpha*N false
// alarms per round no matter how clean the population is. The
// Benjamini-Hochberg procedure instead bounds the *false discovery
// rate* — the expected fraction of flagged dies that are actually
// clean — which is the quantity a triage queue cares about.

// BenjaminiHochberg returns which hypotheses to reject at false
// discovery rate q, given per-hypothesis p-values. The returned slice
// parallels p; threshold is the largest p-value rejected (0 when
// nothing is rejected). Non-finite p-values are treated as 1 (never
// rejected, still counted in the family size).
func BenjaminiHochberg(p []float64, q float64) (reject []bool, threshold float64) {
	reject = make([]bool, len(p))
	if len(p) == 0 || q <= 0 {
		return reject, 0
	}
	order := make([]int, len(p))
	for i := range order {
		order[i] = i
	}
	val := func(i int) float64 {
		v := p[i]
		if math.IsNaN(v) || v < 0 {
			return 1
		}
		if v > 1 {
			return 1
		}
		return v
	}
	sort.Slice(order, func(a, b int) bool { return val(order[a]) < val(order[b]) })
	// Largest k with p_(k) <= k/m * q; reject everything ranked at or
	// below it.
	m := float64(len(p))
	cut := -1
	for k, idx := range order {
		if val(idx) <= float64(k+1)/m*q {
			cut = k
		}
	}
	for k := 0; k <= cut; k++ {
		reject[order[k]] = true
		threshold = val(order[k])
	}
	return reject, threshold
}

// NormalSF is the standard normal survival function P(Z > z), the
// one-sided p-value of a z-score.
func NormalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
