package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestJacobiDiagonal(t *testing.T) {
	// A diagonal matrix must come back unchanged with identity vectors.
	m := NewMatrix(3, 3)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	m.Set(2, 2, 2)
	vals, vecs := Jacobi(m, 0)
	want := []float64{3, 1, 2}
	for i, v := range vals {
		if math.Abs(v-want[i]) > 1e-12 {
			t.Fatalf("eigenvalue %d = %g, want %g", i, v, want[i])
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			expect := 0.0
			if i == j {
				expect = 1
			}
			if math.Abs(vecs.At(i, j)-expect) > 1e-12 {
				t.Fatal("eigenvectors of a diagonal matrix must be identity")
			}
		}
	}
}

func TestJacobiKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	vals, _ := Jacobi(m, 0)
	lo, hi := math.Min(vals[0], vals[1]), math.Max(vals[0], vals[1])
	if math.Abs(lo-1) > 1e-10 || math.Abs(hi-3) > 1e-10 {
		t.Fatalf("eigenvalues = %v, want {1,3}", vals)
	}
}

// Jacobi must satisfy A*v = lambda*v for every eigenpair (property test).
func TestJacobiEigenEquation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomSymmetric(rng, n)
		vals, vecs := Jacobi(a, 0)
		for col := 0; col < n; col++ {
			v := make([]float64, n)
			for i := 0; i < n; i++ {
				v[i] = vecs.At(i, col)
			}
			av := a.MulVec(v)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[col]*v[i]) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Eigenvalue sum must equal the trace (property test).
func TestJacobiTracePreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomSymmetric(rng, n)
		trace := 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		vals, _ := Jacobi(a, 0)
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return math.Abs(sum-trace) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Points spread along (1,1)/sqrt2 with tiny orthogonal noise: the
	// first component must align with that diagonal.
	rng := rand.New(rand.NewSource(11))
	data := NewMatrix(400, 2)
	for i := 0; i < data.Rows; i++ {
		tval := rng.NormFloat64() * 10
		noise := rng.NormFloat64() * 0.1
		data.Set(i, 0, tval+noise)
		data.Set(i, 1, tval-noise)
	}
	p := FitPCA(data, 1)
	c := p.Components.Row(0)
	inv := 1 / math.Sqrt2
	dot := math.Abs(c[0]*inv + c[1]*inv)
	if dot < 0.999 {
		t.Fatalf("first component %v not aligned with (1,1): |dot| = %g", c, dot)
	}
	if p.ExplainedVarianceRatio() < 0.99 {
		t.Fatalf("explained variance ratio = %g, want > 0.99", p.ExplainedVarianceRatio())
	}
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + rng.Intn(5)
		data := NewMatrix(50, d)
		for i := range data.Data {
			data.Data[i] = rng.NormFloat64()
		}
		p := FitPCA(data, 0)
		for a := 0; a < p.K(); a++ {
			for b := a; b < p.K(); b++ {
				dot := 0.0
				ra, rb := p.Components.Row(a), p.Components.Row(b)
				for i := range ra {
					dot += ra[i] * rb[i]
				}
				want := 0.0
				if a == b {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPCAVariancesDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := NewMatrix(100, 6)
	for i := range data.Data {
		data.Data[i] = rng.NormFloat64()
	}
	p := FitPCA(data, 0)
	for i := 1; i < len(p.Variances); i++ {
		if p.Variances[i] > p.Variances[i-1]+1e-12 {
			t.Fatalf("variances not descending: %v", p.Variances)
		}
	}
}

func TestPCAProjectReconstructFullRank(t *testing.T) {
	// With all components kept, project+reconstruct must be identity.
	rng := rand.New(rand.NewSource(2))
	data := NewMatrix(60, 4)
	for i := range data.Data {
		data.Data[i] = rng.NormFloat64()
	}
	p := FitPCA(data, 0)
	x := data.Row(7)
	back := p.Reconstruct(p.Project(x))
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-8 {
			t.Fatalf("reconstruction error at %d: %g vs %g", i, back[i], x[i])
		}
	}
}

func TestPCAProjectRowsShape(t *testing.T) {
	data := NewMatrix(10, 5)
	p := FitPCA(data, 2)
	scores := p.ProjectRows(data)
	if scores.Rows != 10 || scores.Cols != 2 {
		t.Fatalf("scores shape %dx%d", scores.Rows, scores.Cols)
	}
}

func TestPCADimensionPanics(t *testing.T) {
	p := FitPCA(NewMatrix(5, 3), 2)
	mustPanic(t, func() { p.Project([]float64{1, 2}) })
	mustPanic(t, func() { p.Reconstruct([]float64{1, 2, 3}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
