package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram bins scalar samples over a fixed range, mirroring the
// Euclidean-distance histograms of Figure 6.
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
}

// NewHistogram creates a histogram with the given number of bins over
// [min, max). Samples outside the range are clamped into the edge bins so
// no data is silently dropped.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: histogram needs at least 1 bin, got %d", bins))
	}
	if !(max > min) {
		panic(fmt.Sprintf("stats: histogram range [%g, %g) is empty", min, max))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.Counts[h.binOf(v)]++
	h.total++
}

// AddAll records every sample of xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, v := range xs {
		h.Add(v)
	}
}

func (h *Histogram) binOf(v float64) int {
	b := int(float64(len(h.Counts)) * (v - h.Min) / (h.Max - h.Min))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	return b
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// PeakBin returns the index of the most populated bin (ties resolve to the
// lowest index).
func (h *Histogram) PeakBin() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// PeakCenter returns the center value of the most populated bin: the
// "distribution peak" whose runtime shift the paper uses as the detection
// signal for the on-chip sensor histograms (Fig. 6(e)-(h)).
func (h *Histogram) PeakCenter() float64 { return h.BinCenter(h.PeakBin()) }

// Overlap returns the sample-count overlap between two histograms with
// identical binning, normalized to [0, 1]: 1 means identical
// distributions, 0 means disjoint. It implements the "are the golden and
// Trojan populations separable" question of Fig. 6 quantitatively.
func (h *Histogram) Overlap(o *Histogram) float64 {
	if len(h.Counts) != len(o.Counts) || h.Min != o.Min || h.Max != o.Max {
		panic("stats: Overlap requires identically binned histograms")
	}
	if h.total == 0 || o.total == 0 {
		return 0
	}
	overlap := 0.0
	for i := range h.Counts {
		a := float64(h.Counts[i]) / float64(h.total)
		b := float64(o.Counts[i]) / float64(o.total)
		overlap += math.Min(a, b)
	}
	return overlap
}

// PeakSeparation returns the absolute distance between the two
// distribution peaks in units of the bin width. A separation >= 1 means
// the peaks land in different bins — the paper's separability criterion
// for the sensor histograms.
func (h *Histogram) PeakSeparation(o *Histogram) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return math.Abs(h.PeakCenter()-o.PeakCenter()) / w
}

// Render returns a fixed-width ASCII rendering of the histogram with the
// given number of rows, suitable for terminal output of the Figure 6
// panels.
func (h *Histogram) Render(rows int) string {
	if rows <= 0 {
		rows = 8
	}
	peak := h.Counts[h.PeakBin()]
	if peak == 0 {
		return "(empty histogram)\n"
	}
	var sb strings.Builder
	for r := rows; r >= 1; r-- {
		cut := float64(r) / float64(rows) * float64(peak)
		for _, c := range h.Counts {
			if float64(c) >= cut {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-8.3g%*s\n", h.Min, len(h.Counts)-8, fmt.Sprintf("%.3g", h.Max))
	return sb.String()
}
