package stats

import (
	"fmt"
	"math"
	"sort"
)

// Euclidean returns the Euclidean (L2) distance between a and b, which must
// have the same length.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: Euclidean length mismatch %d vs %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// MaxPairwiseDistance implements Eq. (1) of the paper: the maximum
// Euclidean distance between any two samples of the golden (Trojan-free)
// data set. The paper uses this as the detection threshold EDth so that
// residual noise surviving denoising and PCA never raises a false alarm on
// golden data.
func MaxPairwiseDistance(golden *Matrix) float64 {
	max := 0.0
	for i := 0; i < golden.Rows; i++ {
		ri := golden.Row(i)
		for j := i + 1; j < golden.Rows; j++ {
			if d := Euclidean(ri, golden.Row(j)); d > max {
				max = d
			}
		}
	}
	return max
}

// Centroid returns the mean row of m.
func Centroid(m *Matrix) []float64 { return m.ColumnMeans() }

// DistancesToCentroid returns the Euclidean distance of every row of m to
// the given centroid.
func DistancesToCentroid(m *Matrix, centroid []float64) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Euclidean(m.Row(i), centroid)
	}
	return out
}

// MinDistanceToSet returns the smallest Euclidean distance from x to any
// row of set. It returns +Inf for an empty set.
func MinDistanceToSet(x []float64, set *Matrix) float64 {
	min := math.Inf(1)
	for i := 0; i < set.Rows; i++ {
		if d := Euclidean(x, set.Row(i)); d < min {
			min = d
		}
	}
	return min
}

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes descriptive statistics of x.
func Summarize(x []float64) Summary {
	s := Summary{N: len(x)}
	if len(x) == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, v := range x {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(len(x))
	for _, v := range x {
		d := v - s.Mean
		s.Std += d * d
	}
	if len(x) > 1 {
		s.Std = math.Sqrt(s.Std / float64(len(x)-1))
	} else {
		s.Std = 0
	}
	sorted := make([]float64, len(x))
	copy(sorted, x)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}
