package stats

import (
	"math"
	"math/rand"
	"testing"
)

func gaussianSample(rng *rand.Rand, n int, mean, std float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + rng.NormFloat64()*std
	}
	return out
}

func TestWelchTSamePopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := gaussianSample(rng, 200, 5, 1)
	b := gaussianSample(rng, 200, 5, 1)
	tt, dof := WelchT(a, b)
	if math.Abs(tt) > 3 {
		t.Fatalf("same-population t = %g", tt)
	}
	if dof < 100 {
		t.Fatalf("dof = %g", dof)
	}
	if TVLADetects(a, b) {
		t.Fatal("TVLA false positive")
	}
}

func TestWelchTSeparatedPopulations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := gaussianSample(rng, 100, 0, 1)
	b := gaussianSample(rng, 100, 1.5, 1)
	tt, _ := WelchT(a, b)
	if tt > -TVLAThreshold { // a below b: negative t
		t.Fatalf("separated populations t = %g, want < -4.5", tt)
	}
	if !TVLADetects(a, b) {
		t.Fatal("TVLA missed a 1.5-sigma mean shift at n=100")
	}
}

func TestWelchTKnownValue(t *testing.T) {
	// Hand-computed case: a = {1,2,3}, b = {5,6,7}: means 2 and 6, each
	// variance 1, t = (2-6)/sqrt(1/3+1/3) = -4.898979, dof = 4.
	a := []float64{1, 2, 3}
	b := []float64{5, 6, 7}
	tt, dof := WelchT(a, b)
	if math.Abs(tt+4.898979485566356) > 1e-9 {
		t.Fatalf("t = %.9f", tt)
	}
	if math.Abs(dof-4) > 1e-9 {
		t.Fatalf("dof = %g", dof)
	}
}

func TestWelchTDegenerate(t *testing.T) {
	if tt, dof := WelchT([]float64{1}, []float64{1, 2}); tt != 0 || dof != 0 {
		t.Fatal("tiny samples must give 0")
	}
	// Identical constant populations: t = 0.
	if tt, _ := WelchT([]float64{2, 2, 2}, []float64{2, 2, 2}); tt != 0 {
		t.Fatalf("constant equal populations t = %g", tt)
	}
	// Constant but different: infinite separation.
	tt, _ := WelchT([]float64{3, 3, 3}, []float64{2, 2, 2})
	if !math.IsInf(tt, 1) {
		t.Fatalf("constant different populations t = %g, want +Inf", tt)
	}
}

// spectraGroup builds rows of synthetic one-sided spectra with
// independent per-bin Gaussian noise; shift raises the mean of one bin.
func spectraGroup(rng *rand.Rand, rows, bins, shiftBin int, shift float64) [][]float64 {
	out := make([][]float64, rows)
	for r := range out {
		out[r] = make([]float64, bins)
		for k := range out[r] {
			out[r][k] = 1 + rng.NormFloat64()*0.1
		}
		if shiftBin >= 0 {
			out[r][shiftBin] += shift
		}
	}
	return out
}

// TestSpectralTVLAMatchesWelchT: the per-bin sweep must agree with
// WelchT applied to the materialized column samples.
func TestSpectralTVLAMatchesWelchT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := spectraGroup(rng, 20, 33, 7, 0.5)
	b := spectraGroup(rng, 25, 33, -1, 0)
	got := SpectralTVLA(nil, a, b)
	if len(got) != 33 {
		t.Fatalf("%d bins, want 33", len(got))
	}
	colA := make([]float64, len(a))
	colB := make([]float64, len(b))
	for k := range got {
		for r := range a {
			colA[r] = a[r][k]
		}
		for r := range b {
			colB[r] = b[r][k]
		}
		want, _ := WelchT(colA, colB)
		if d := math.Abs(got[k] - want); d > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("bin %d: sweep t=%g, WelchT=%g", k, got[k], want)
		}
	}
}

func TestSpectralTVLADetectsShiftedBin(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := spectraGroup(rng, 30, 64, 20, 1.0)
	b := spectraGroup(rng, 30, 64, -1, 0)
	detected, worstBin, worstT := SpectralTVLADetects(a, b)
	if !detected {
		t.Fatal("injected bin shift not detected")
	}
	if worstBin != 20 {
		t.Fatalf("worst bin %d, want 20", worstBin)
	}
	if math.Abs(worstT) <= TVLAThreshold {
		t.Fatalf("worst t = %g under threshold", worstT)
	}
	// Same populations: no detection.
	c := spectraGroup(rng, 30, 64, -1, 0)
	if det, _, _ := SpectralTVLADetects(b, c); det {
		t.Fatal("TVLA false positive on identical populations")
	}
}

func TestSpectralTVLADegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	one := spectraGroup(rng, 1, 8, -1, 0)
	two := spectraGroup(rng, 2, 8, -1, 0)
	if SpectralTVLA(nil, one, two) != nil {
		t.Fatal("single-row group must yield nil")
	}
	if SpectralTVLA(nil, two, nil) != nil {
		t.Fatal("empty group must yield nil")
	}
	// Ragged rows clamp to the shortest common length.
	ragged := [][]float64{make([]float64, 8), make([]float64, 5)}
	for i := range ragged {
		for k := range ragged[i] {
			ragged[i][k] = rng.NormFloat64()
		}
	}
	if got := SpectralTVLA(nil, ragged, two); len(got) != 5 {
		t.Fatalf("ragged sweep has %d bins, want 5", len(got))
	}
	// Zero-variance equal bins -> t = 0; unequal -> signed infinity.
	ca := [][]float64{{1, 2}, {1, 2}}
	cb := [][]float64{{1, 5}, {1, 5}}
	got := SpectralTVLA(nil, ca, cb)
	if got[0] != 0 {
		t.Fatalf("equal constant bin t = %g, want 0", got[0])
	}
	if !math.IsInf(got[1], -1) {
		t.Fatalf("unequal constant bin t = %g, want -Inf", got[1])
	}
	// dst reuse: a large dirty buffer is truncated and overwritten.
	dirty := make([]float64, 64)
	for i := range dirty {
		dirty[i] = math.NaN()
	}
	reused := SpectralTVLA(dirty, two, two)
	if len(reused) != 8 || &reused[0] != &dirty[0] {
		t.Fatal("dst not reused")
	}
	for _, v := range reused {
		if math.IsNaN(v) {
			t.Fatal("dirty dst leaked into the sweep")
		}
	}
}
