package stats

import (
	"math"
	"math/rand"
	"testing"
)

func gaussianSample(rng *rand.Rand, n int, mean, std float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + rng.NormFloat64()*std
	}
	return out
}

func TestWelchTSamePopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := gaussianSample(rng, 200, 5, 1)
	b := gaussianSample(rng, 200, 5, 1)
	tt, dof := WelchT(a, b)
	if math.Abs(tt) > 3 {
		t.Fatalf("same-population t = %g", tt)
	}
	if dof < 100 {
		t.Fatalf("dof = %g", dof)
	}
	if TVLADetects(a, b) {
		t.Fatal("TVLA false positive")
	}
}

func TestWelchTSeparatedPopulations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := gaussianSample(rng, 100, 0, 1)
	b := gaussianSample(rng, 100, 1.5, 1)
	tt, _ := WelchT(a, b)
	if tt > -TVLAThreshold { // a below b: negative t
		t.Fatalf("separated populations t = %g, want < -4.5", tt)
	}
	if !TVLADetects(a, b) {
		t.Fatal("TVLA missed a 1.5-sigma mean shift at n=100")
	}
}

func TestWelchTKnownValue(t *testing.T) {
	// Hand-computed case: a = {1,2,3}, b = {5,6,7}: means 2 and 6, each
	// variance 1, t = (2-6)/sqrt(1/3+1/3) = -4.898979, dof = 4.
	a := []float64{1, 2, 3}
	b := []float64{5, 6, 7}
	tt, dof := WelchT(a, b)
	if math.Abs(tt+4.898979485566356) > 1e-9 {
		t.Fatalf("t = %.9f", tt)
	}
	if math.Abs(dof-4) > 1e-9 {
		t.Fatalf("dof = %g", dof)
	}
}

func TestWelchTDegenerate(t *testing.T) {
	if tt, dof := WelchT([]float64{1}, []float64{1, 2}); tt != 0 || dof != 0 {
		t.Fatal("tiny samples must give 0")
	}
	// Identical constant populations: t = 0.
	if tt, _ := WelchT([]float64{2, 2, 2}, []float64{2, 2, 2}); tt != 0 {
		t.Fatalf("constant equal populations t = %g", tt)
	}
	// Constant but different: infinite separation.
	tt, _ := WelchT([]float64{3, 3, 3}, []float64{2, 2, 2})
	if !math.IsInf(tt, 1) {
		t.Fatalf("constant different populations t = %g, want +Inf", tt)
	}
}
