package stats

import "math"

// WelchT computes Welch's t-statistic and degrees of freedom between two
// samples — the Test Vector Leakage Assessment (TVLA) statistic the
// side-channel community uses to decide whether two trace populations
// differ. |t| > TVLAThreshold is the conventional detection criterion.
func WelchT(a, b []float64) (t, dof float64) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 0
	}
	sa := Summarize(a)
	sb := Summarize(b)
	va := sa.Std * sa.Std / float64(sa.N)
	vb := sb.Std * sb.Std / float64(sb.N)
	den := math.Sqrt(va + vb)
	if den == 0 {
		if sa.Mean == sb.Mean {
			return 0, float64(sa.N + sb.N - 2)
		}
		return math.Inf(sign(sa.Mean - sb.Mean)), float64(sa.N + sb.N - 2)
	}
	t = (sa.Mean - sb.Mean) / den
	// Welch–Satterthwaite degrees of freedom.
	num := (va + vb) * (va + vb)
	d := va*va/float64(sa.N-1) + vb*vb/float64(sb.N-1)
	if d == 0 {
		dof = float64(sa.N + sb.N - 2)
	} else {
		dof = num / d
	}
	return t, dof
}

// TVLAThreshold is the conventional |t| detection threshold of the Test
// Vector Leakage Assessment methodology.
const TVLAThreshold = 4.5

// TVLADetects reports whether the two populations differ under the TVLA
// criterion.
func TVLADetects(a, b []float64) bool {
	t, _ := WelchT(a, b)
	return math.Abs(t) > TVLAThreshold
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
