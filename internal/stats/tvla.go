package stats

import "math"

// WelchT computes Welch's t-statistic and degrees of freedom between two
// samples — the Test Vector Leakage Assessment (TVLA) statistic the
// side-channel community uses to decide whether two trace populations
// differ. |t| > TVLAThreshold is the conventional detection criterion.
func WelchT(a, b []float64) (t, dof float64) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 0
	}
	sa := Summarize(a)
	sb := Summarize(b)
	va := sa.Std * sa.Std / float64(sa.N)
	vb := sb.Std * sb.Std / float64(sb.N)
	den := math.Sqrt(va + vb)
	if den == 0 {
		if sa.Mean == sb.Mean {
			return 0, float64(sa.N + sb.N - 2)
		}
		return math.Inf(sign(sa.Mean - sb.Mean)), float64(sa.N + sb.N - 2)
	}
	t = (sa.Mean - sb.Mean) / den
	// Welch–Satterthwaite degrees of freedom.
	num := (va + vb) * (va + vb)
	d := va*va/float64(sa.N-1) + vb*vb/float64(sb.N-1)
	if d == 0 {
		dof = float64(sa.N + sb.N - 2)
	} else {
		dof = num / d
	}
	return t, dof
}

// TVLAThreshold is the conventional |t| detection threshold of the Test
// Vector Leakage Assessment methodology.
const TVLAThreshold = 4.5

// TVLADetects reports whether the two populations differ under the TVLA
// criterion.
func TVLADetects(a, b []float64) bool {
	t, _ := WelchT(a, b)
	return math.Abs(t) > TVLAThreshold
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// SpectralTVLA computes the per-bin Welch t-statistic between two
// groups of aligned one-sided spectra (rows from Plan.SpectrumInto,
// Welch.PSDInto, or STFTInto in internal/dsp): the frequency-domain
// TVLA sweep. t is written into dst (grown as needed) over the shortest
// common row length; bins where Welch's t is undefined (fewer than two
// rows in either group) yield a nil result. The per-bin statistic
// matches WelchT applied to that bin's column samples, computed without
// materializing the columns.
func SpectralTVLA(dst []float64, a, b [][]float64) []float64 {
	if len(a) < 2 || len(b) < 2 {
		return nil
	}
	bins := len(a[0])
	for _, r := range a {
		if len(r) < bins {
			bins = len(r)
		}
	}
	for _, r := range b {
		if len(r) < bins {
			bins = len(r)
		}
	}
	if cap(dst) >= bins {
		dst = dst[:bins]
	} else {
		dst = make([]float64, bins)
	}
	na, nb := float64(len(a)), float64(len(b))
	for k := 0; k < bins; k++ {
		ma, mb := 0.0, 0.0
		for _, r := range a {
			ma += r[k]
		}
		ma /= na
		for _, r := range b {
			mb += r[k]
		}
		mb /= nb
		va, vb := 0.0, 0.0
		for _, r := range a {
			d := r[k] - ma
			va += d * d
		}
		va /= na - 1
		for _, r := range b {
			d := r[k] - mb
			vb += d * d
		}
		vb /= nb - 1
		den := math.Sqrt(va/na + vb/nb)
		switch {
		case den != 0:
			dst[k] = (ma - mb) / den
		case ma == mb:
			dst[k] = 0
		default:
			dst[k] = math.Inf(sign(ma - mb))
		}
	}
	return dst
}

// SpectralTVLADetects reports whether any bin of the per-bin Welch
// sweep crosses the TVLA threshold, and returns the worst bin index and
// its t value.
func SpectralTVLADetects(a, b [][]float64) (detected bool, worstBin int, worstT float64) {
	t := SpectralTVLA(nil, a, b)
	for k, v := range t {
		if math.Abs(v) > math.Abs(worstT) || k == 0 {
			worstBin, worstT = k, v
		}
	}
	return math.Abs(worstT) > TVLAThreshold, worstBin, worstT
}
