// Package stats implements the statistical machinery of the paper's data
// analysis module: covariance and PCA (Section III-D mentions PCA for
// dimensionality reduction), Euclidean-distance fingerprinting with the
// Eq. (1) max-pairwise golden threshold, and histogram utilities used to
// reproduce Figure 6.
package stats

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("stats: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("stats: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Row(k)
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns m * v for a column vector v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("stats: dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		sum := 0.0
		for j, r := range row {
			sum += r * v[j]
		}
		out[i] = sum
	}
	return out
}

// ColumnMeans returns the mean of each column of m.
func (m *Matrix) ColumnMeans() []float64 {
	means := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	if m.Rows > 0 {
		for j := range means {
			means[j] /= float64(m.Rows)
		}
	}
	return means
}

// Covariance returns the sample covariance matrix (Cols x Cols) of the row
// observations in m, using the n-1 denominator.
func (m *Matrix) Covariance() *Matrix {
	means := m.ColumnMeans()
	cov := NewMatrix(m.Cols, m.Cols)
	if m.Rows < 2 {
		return cov
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for a := 0; a < m.Cols; a++ {
			da := row[a] - means[a]
			if da == 0 {
				continue
			}
			crow := cov.Row(a)
			for b := 0; b < m.Cols; b++ {
				crow[b] += da * (row[b] - means[b])
			}
		}
	}
	inv := 1 / float64(m.Rows-1)
	for i := range cov.Data {
		cov.Data[i] *= inv
	}
	return cov
}

// MaxOffDiagonal returns the largest absolute off-diagonal element of a
// square matrix, along with its indices (p < q).
func (m *Matrix) MaxOffDiagonal() (p, q int, v float64) {
	p, q = 0, 1
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if a := math.Abs(m.At(i, j)); a > v {
				v = a
				p, q = i, j
			}
		}
	}
	return p, q, v
}
