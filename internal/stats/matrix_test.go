package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must be a view, not a copy")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := NewMatrix(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(i*3+j))
		}
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Fatal("transpose values wrong")
			}
		}
	}
}

func TestMatrixMul(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := NewMatrix(2, 2)
	b.Set(0, 0, 5)
	b.Set(0, 1, 6)
	b.Set(1, 0, 7)
	b.Set(1, 1, 8)
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul wrong at (%d,%d): %g", i, j, c.At(i, j))
			}
		}
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(i+j))
		}
	}
	got := m.MulVec([]float64{1, 2, 3})
	// row0 = [0 1 2] . [1 2 3] = 8; row1 = [1 2 3] . [1 2 3] = 14
	if got[0] != 8 || got[1] != 14 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMatrixMulDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch must panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 2))
}

func TestColumnMeansAndCovariance(t *testing.T) {
	// Two perfectly anti-correlated columns.
	m := NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		m.Set(i, 0, float64(i))
		m.Set(i, 1, -float64(i))
	}
	means := m.ColumnMeans()
	if means[0] != 1.5 || means[1] != -1.5 {
		t.Fatalf("means = %v", means)
	}
	cov := m.Covariance()
	// var of {0,1,2,3} with n-1 denominator = 5/3
	if math.Abs(cov.At(0, 0)-5.0/3.0) > 1e-12 {
		t.Fatalf("var = %g", cov.At(0, 0))
	}
	if math.Abs(cov.At(0, 1)+5.0/3.0) > 1e-12 {
		t.Fatalf("cov = %g", cov.At(0, 1))
	}
	if cov.At(0, 1) != cov.At(1, 0) {
		t.Fatal("covariance must be symmetric")
	}
}

func TestCovarianceDegenerate(t *testing.T) {
	cov := NewMatrix(1, 3).Covariance()
	for _, v := range cov.Data {
		if v != 0 {
			t.Fatal("covariance of a single row must be zero")
		}
	}
}

// Covariance must be invariant under adding a constant to a column
// (property test).
func TestCovarianceShiftInvariant(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(10, 3)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		shifted := m.Clone()
		for i := 0; i < shifted.Rows; i++ {
			shifted.Set(i, 1, shifted.At(i, 1)+shift)
		}
		a := m.Covariance()
		b := shifted.Covariance()
		for i := range a.Data {
			if math.Abs(a.Data[i]-b.Data[i]) > 1e-8*(1+math.Abs(shift)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxOffDiagonal(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(0, 2, -7)
	m.Set(1, 2, 3)
	p, q, v := m.MaxOffDiagonal()
	if p != 0 || q != 2 || v != 7 {
		t.Fatalf("MaxOffDiagonal = (%d,%d,%g)", p, q, v)
	}
}
