package stats

import (
	"fmt"
	"math"
	"sort"
)

// Jacobi diagonalizes the symmetric matrix a using the cyclic Jacobi
// rotation method. It returns the eigenvalues and the matrix of
// eigenvectors (one eigenvector per column), unsorted. a is not modified.
// maxSweeps bounds the number of full sweeps; 0 selects a default.
func Jacobi(a *Matrix, maxSweeps int) (eigenvalues []float64, eigenvectors *Matrix) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("stats: Jacobi requires a square matrix, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	if maxSweeps <= 0 {
		maxSweeps = 64
	}
	w := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const eps = 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Frobenius norm of the off-diagonal part.
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += 2 * w.At(i, j) * w.At(i, j)
			}
		}
		if math.Sqrt(off) < eps {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < eps {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	eigenvalues = make([]float64, n)
	for i := 0; i < n; i++ {
		eigenvalues[i] = w.At(i, i)
	}
	return eigenvalues, v
}

// rotate applies the Jacobi rotation G(p,q,c,s) to w (two-sided) and
// accumulates it into the eigenvector matrix v (one-sided).
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for k := 0; k < n; k++ {
		wkp := w.At(k, p)
		wkq := w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk := w.At(p, k)
		wqk := w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

// PCA holds a fitted principal-component model: the training mean and the
// leading components, ordered by decreasing explained variance.
type PCA struct {
	Mean       []float64 // column means of the training data
	Components *Matrix   // k x d, one component per row, unit norm
	Variances  []float64 // eigenvalue (variance) per kept component
	TotalVar   float64   // sum of all eigenvalues of the covariance
}

// FitPCA fits a PCA model on the rows of data, keeping k components
// (k <= data.Cols). k <= 0 keeps every component.
func FitPCA(data *Matrix, k int) *PCA {
	d := data.Cols
	if k <= 0 || k > d {
		k = d
	}
	cov := data.Covariance()
	vals, vecs := Jacobi(cov, 0)
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })

	p := &PCA{
		Mean:       data.ColumnMeans(),
		Components: NewMatrix(k, d),
		Variances:  make([]float64, k),
	}
	for _, v := range vals {
		p.TotalVar += v
	}
	for row := 0; row < k; row++ {
		col := order[row]
		p.Variances[row] = vals[col]
		norm := 0.0
		for i := 0; i < d; i++ {
			norm += vecs.At(i, col) * vecs.At(i, col)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			norm = 1
		}
		for i := 0; i < d; i++ {
			p.Components.Set(row, i, vecs.At(i, col)/norm)
		}
	}
	return p
}

// K returns the number of kept components.
func (p *PCA) K() int { return p.Components.Rows }

// ExplainedVarianceRatio returns the fraction of total variance captured by
// the kept components.
func (p *PCA) ExplainedVarianceRatio() float64 {
	if p.TotalVar == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range p.Variances {
		sum += v
	}
	return sum / p.TotalVar
}

// Project maps an observation x (length d) to the k-dimensional principal
// subspace.
func (p *PCA) Project(x []float64) []float64 {
	return p.ProjectInto(make([]float64, p.K()), x)
}

// ProjectInto is Project writing into dst, which must have length K().
// The centering is folded into each row's dot product, so no temporary
// is needed; the per-row accumulation order matches Project exactly.
func (p *PCA) ProjectInto(dst, x []float64) []float64 {
	if len(x) != len(p.Mean) {
		panic(fmt.Sprintf("stats: PCA.Project dimension mismatch %d vs %d", len(x), len(p.Mean)))
	}
	if len(dst) != p.K() {
		panic(fmt.Sprintf("stats: PCA.ProjectInto wants %d scores, got %d", p.K(), len(dst)))
	}
	mean := p.Mean
	for r := range dst {
		row := p.Components.Row(r)
		// Unrolled four-wide with one sequential accumulator: the
		// products are added in the original index order, so the score
		// is bit-identical to the rolled dot product.
		sum := 0.0
		j := 0
		for ; j+4 <= len(row); j += 4 {
			sum += row[j] * (x[j] - mean[j])
			sum += row[j+1] * (x[j+1] - mean[j+1])
			sum += row[j+2] * (x[j+2] - mean[j+2])
			sum += row[j+3] * (x[j+3] - mean[j+3])
		}
		for ; j < len(row); j++ {
			sum += row[j] * (x[j] - mean[j])
		}
		dst[r] = sum
	}
	return dst
}

// ProjectRows projects each row of data and returns the k-column score
// matrix.
func (p *PCA) ProjectRows(data *Matrix) *Matrix {
	out := NewMatrix(data.Rows, p.K())
	for i := 0; i < data.Rows; i++ {
		copy(out.Row(i), p.Project(data.Row(i)))
	}
	return out
}

// Reconstruct maps a score vector back into the original space:
// mean + scores * components.
func (p *PCA) Reconstruct(scores []float64) []float64 {
	return p.ReconstructInto(make([]float64, len(p.Mean)), scores)
}

// ReconstructInto is Reconstruct writing into dst, which must have
// length d (the original dimension).
func (p *PCA) ReconstructInto(dst, scores []float64) []float64 {
	if len(scores) != p.K() {
		panic(fmt.Sprintf("stats: PCA.Reconstruct expects %d scores, got %d", p.K(), len(scores)))
	}
	if len(dst) != len(p.Mean) {
		panic(fmt.Sprintf("stats: PCA.ReconstructInto wants %d values, got %d", len(p.Mean), len(dst)))
	}
	copy(dst, p.Mean)
	for r, s := range scores {
		if s == 0 {
			continue
		}
		comp := p.Components.Row(r)
		for i, c := range comp {
			dst[i] += s * c
		}
	}
	return dst
}
