package trojan

import (
	"strings"
	"testing"

	"emtrust/internal/aes"
	"emtrust/internal/logic"
	"emtrust/internal/netlist"
)

// buildInfected builds an AES core with one Trojan attached.
func buildInfected(t testing.TB, kind Kind) (*netlist.Netlist, *logic.Simulator, *Instance) {
	t.Helper()
	b := netlist.NewBuilder("infected")
	core := aes.Generate(b)
	inst := Generate(b, core, kind, DefaultConfig())
	n := b.Build()
	sim, err := logic.New(n)
	if err != nil {
		t.Fatal(err)
	}
	return n, sim, inst
}

func TestKindStrings(t *testing.T) {
	if T1AMLeaker.String() != "T1" || T4PowerHog.String() != "T4" {
		t.Fatal("Kind.String wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind string")
	}
	for _, k := range Kinds() {
		if k.Description() == "unknown" {
			t.Errorf("%v has no description", k)
		}
		if k.Region() == "" || k.TriggerPort() == "" {
			t.Errorf("%v missing region or port", k)
		}
	}
	if Kind(9).Description() != "unknown" {
		t.Fatal("unknown kind description")
	}
}

func TestKindsOrder(t *testing.T) {
	ks := Kinds()
	if len(ks) != 4 || ks[0] != T1AMLeaker || ks[3] != T4PowerHog {
		t.Fatalf("Kinds() = %v", ks)
	}
}

// Trojan sizes must track the Table I ordering: T3 << T1 < T2 ~= T4.
func TestTrojanSizeOrdering(t *testing.T) {
	b := netlist.NewBuilder("all")
	core := aes.Generate(b)
	for _, k := range Kinds() {
		Generate(b, core, k, DefaultConfig())
	}
	n := b.Build()
	aesCells := n.Stats("aes").Cells
	counts := make(map[Kind]int)
	for _, k := range Kinds() {
		counts[k] = n.Stats(k.Region()).Cells
		if counts[k] == 0 {
			t.Fatalf("%v generated no cells", k)
		}
	}
	if !(counts[T3CDMALeaker] < counts[T1AMLeaker] &&
		counts[T1AMLeaker] < counts[T2LeakageCurrent] &&
		counts[T1AMLeaker] < counts[T4PowerHog]) {
		t.Fatalf("size ordering violated: %v", counts)
	}
	// Percentages should be near Table I: 5.01, 8.44, 0.76, 8.44.
	want := map[Kind]float64{T1AMLeaker: 5.01, T2LeakageCurrent: 8.44, T3CDMALeaker: 0.76, T4PowerHog: 8.44}
	for k, pct := range want {
		got := 100 * float64(counts[k]) / float64(aesCells)
		if got < pct*0.7 || got > pct*1.3 {
			t.Errorf("%v share = %.2f%%, want within 30%% of %.2f%%", k, got, pct)
		}
	}
}

// A dormant Trojan must not disturb the AES function, and an active one
// must not either (all four are leakers/hogs, not corrupters).
func TestTrojansPreserveAESFunction(t *testing.T) {
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	want := make([]byte, 16)
	aes.NewCipher(key).Encrypt(want, pt)

	for _, k := range Kinds() {
		_, sim, inst := buildInfected(t, k)
		drv := aes.NewDriver(sim)
		for _, trigger := range []uint64{0, 1} {
			sim.SetPortUint(k.TriggerPort(), trigger)
			got, err := drv.Encrypt(pt, key)
			if err != nil {
				t.Fatalf("%v trigger=%d: %v", k, trigger, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v trigger=%d corrupted AES output", k, trigger)
				}
			}
			_ = inst
		}
	}
}

// countRegionToggles runs one encryption and counts toggles inside the
// Trojan region.
func countRegionToggles(t *testing.T, kind Kind, trigger uint64) int {
	t.Helper()
	n, sim, _ := buildInfected(t, kind)
	region := kind.Region()
	inRegion := make([]bool, len(n.Cells))
	for i, c := range n.Cells {
		inRegion[i] = strings.HasPrefix(c.Region, region)
	}
	sim.SetPortUint(kind.TriggerPort(), trigger)
	sim.Settle()
	sim.Tick() // let the activation flag register the trigger
	drv := aes.NewDriver(sim)
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(0x35 + i)
	}
	pt := make([]byte, 16)
	// Warm-up encryption so one-time input propagation through the
	// Trojan's combinational taps is not counted.
	if _, err := drv.Encrypt(pt, key); err != nil {
		t.Fatal(err)
	}
	count := 0
	sim.OnToggle = func(cell int, _ bool) {
		if inRegion[cell] {
			count++
		}
	}
	if _, err := drv.Encrypt(pt, key); err != nil {
		t.Fatal(err)
	}
	// Run extra idle cycles; leakers keep radiating between encryptions.
	sim.Run(64)
	return count
}

// Dormant Trojans must be quiet; active ones must switch far more.
func TestTrojanActivityGatedByTrigger(t *testing.T) {
	for _, k := range Kinds() {
		dormant := countRegionToggles(t, k, 0)
		active := countRegionToggles(t, k, 1)
		if active <= dormant*10+10 {
			t.Errorf("%v: active toggles %d not >> dormant %d", k, active, dormant)
		}
	}
}

// T3 must be by far the quietest (it is the paper's hardest Trojan), and
// T2 and T4 — the "more registers" pair the paper groups together — must
// be of comparable loudness.
func TestActiveActivityOrdering(t *testing.T) {
	act := make(map[Kind]int)
	for _, k := range Kinds() {
		act[k] = countRegionToggles(t, k, 1)
	}
	for _, k := range []Kind{T1AMLeaker, T2LeakageCurrent, T4PowerHog} {
		if act[T3CDMALeaker]*3 > act[k] {
			t.Fatalf("T3 (%d toggles) must be far quieter than %v (%d)", act[T3CDMALeaker], k, act[k])
		}
	}
	// Raw toggle counts understate T2 (whose crowbar current draws no
	// toggles); just require the register-heavy pair to be within an
	// order of magnitude.
	lo, hi := act[T2LeakageCurrent], act[T4PowerHog]
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 8*lo {
		t.Fatalf("T2 (%d) and T4 (%d) toggles diverge too far", act[T2LeakageCurrent], act[T4PowerHog])
	}
}

// T2 exposes its crowbar leakage interface.
func TestT2LeakInterface(t *testing.T) {
	_, sim, inst := buildInfected(t, T2LeakageCurrent)
	if inst.LeakWire == netlist.InvalidNet {
		t.Fatal("T2 must expose its leak wire")
	}
	if inst.CrowbarPairs <= 0 {
		t.Fatal("T2 must report its crowbar pairs")
	}
	// The leak wire follows the shifted key bits once active. The
	// activation flag lags the trigger by one cycle, so tick first.
	sim.SetPortUint(T2LeakageCurrent.TriggerPort(), 1)
	sim.Settle()
	sim.Tick()
	drv := aes.NewDriver(sim)
	key := make([]byte, 16)
	key[0] = 0xFF
	if _, err := drv.Encrypt(make([]byte, 16), key); err != nil {
		t.Fatal(err)
	}
	seen := map[uint8]bool{}
	for i := 0; i < 600; i++ {
		sim.Tick()
		seen[sim.Net(inst.LeakWire)] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatal("T2 leak wire never changed while shifting key material")
	}
}

func TestGenerateUnknownKindPanics(t *testing.T) {
	b := netlist.NewBuilder("bad")
	core := aes.Generate(b)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(b, core, Kind(42), DefaultConfig())
}
