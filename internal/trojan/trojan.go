// Package trojan implements the four digital hardware Trojans evaluated in
// the paper (Section IV-A) as netlist generators that attach to the AES
// core, plus the shared trigger plumbing. Each Trojan follows the paper's
// description and is sized so its share of the whole design matches the
// Table I percentages.
//
// As in the paper, every Trojan has an extra, externally controllable
// trigger input "to activate the payload in a more manageable way"; the
// original stealthy trigger conditions are modeled as internal gating so
// the dormant Trojans contribute (almost) no switching activity.
package trojan

import (
	"fmt"

	"emtrust/internal/aes"
	"emtrust/internal/netlist"
)

// Kind identifies one of the paper's Trojans.
type Kind int

// The four digital Trojans of Table I.
const (
	T1AMLeaker       Kind = iota + 1 // leaks key bits over a 750 kHz AM carrier
	T2LeakageCurrent                 // leaks via a crowbar leakage-current path
	T3CDMALeaker                     // leaks one bit over many cycles via a CDMA sequence
	T4PowerHog                       // degrades performance by toggling registers
)

// String returns the short Trojan name used in Table I.
func (k Kind) String() string {
	switch k {
	case T1AMLeaker:
		return "T1"
	case T2LeakageCurrent:
		return "T2"
	case T3CDMALeaker:
		return "T3"
	case T4PowerHog:
		return "T4"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Description returns the one-line payload summary from the paper.
func (k Kind) Description() string {
	switch k {
	case T1AMLeaker:
		return "leaks the secret over an AM radio carrier at 750 kHz"
	case T2LeakageCurrent:
		return "leaks the secret through leakage current between two inverters"
	case T3CDMALeaker:
		return "leaks the secret over a CDMA channel, one bit per many cycles"
	case T4PowerHog:
		return "degrades performance by flipping extra registers"
	default:
		return "unknown"
	}
}

// Region returns the netlist region tag used for the Trojan's cells.
func (k Kind) Region() string { return fmt.Sprintf("trojan%d", int(k)) }

// TriggerPort returns the name of the external trigger input for the
// Trojan.
func (k Kind) TriggerPort() string { return fmt.Sprintf("trigger%d", int(k)) }

// Kinds lists all four digital Trojans in Table I order.
func Kinds() []Kind {
	return []Kind{T1AMLeaker, T2LeakageCurrent, T3CDMALeaker, T4PowerHog}
}

// Instance describes a generated Trojan and the nets the chip model and
// power model need to observe.
type Instance struct {
	Kind    Kind
	Trigger netlist.Net // external trigger input net
	Active  netlist.Net // registered "payload active" flag
	// LeakWire, when valid, is the data-dependent wire whose value
	// conditions a static leakage current (T2's crowbar path).
	LeakWire netlist.Net
	// CrowbarPairs counts the inverter pairs forming the leakage path;
	// the power model draws a static current per pair while LeakWire
	// is low and the Trojan is active.
	CrowbarPairs int
}

// Config sizes and tunes the Trojans. The defaults reproduce the Table I
// share of each Trojan relative to this repository's AES core, with
// electrical knobs calibrated so the EM signatures track the paper's
// relative Euclidean distances (T2 ~ T4 > T1 >> T3).
type Config struct {
	T1Drivers int // antenna driver buffers in the AM modulator
	// T1DriverLoad is the antenna load capacitance per driver (farads);
	// radiating a 750 kHz carrier takes real drive current.
	T1DriverLoad float64
	T2Width      int // leakage shift-register width (cells scale ~4x this)
	// T2ShiftPeriod is the "pre-set time" (cycles) between leakage
	// shift steps, rounded up to a power of two.
	T2ShiftPeriod int
	T3Taps        int // key bits multiplexed into the CDMA leaker
	// T3DriverLoad is the covert-channel pad driver load (farads); the
	// CDMA channel still has to leave the chip.
	T3DriverLoad float64
	T4Toggles    int // registers in the power hog's rotating bank
	// T4Density seeds one flipping bit per T4Density hog stages; the
	// hog's extra power scales with T4Toggles/T4Density per cycle.
	T4Density int
}

// DefaultConfig returns sizes tuned so the generated Trojans match the
// paper's Table I percentages of the AES core within a fraction of a
// percent.
func DefaultConfig() Config {
	return Config{
		T1Drivers:     760,
		T1DriverLoad:  220e-15,
		T2Width:       434,
		T2ShiftPeriod: 4,
		T3Taps:        96,
		T3DriverLoad:  26e-12,
		T4Toggles:     870,
		T4Density:     6,
	}
}

// Generate builds the Trojan of the given kind into b, attached to the
// AES core. The external trigger is declared as a one-bit input port
// named by Kind.TriggerPort.
func Generate(b *netlist.Builder, core *aes.Core, kind Kind, cfg Config) *Instance {
	b.PushRegion(kind.Region())
	defer b.PopRegion()
	// The shared trigger plumbing: external port plus registered
	// activation flag, with no internal condition (the paper activates
	// these Trojans only through the manageable external trigger).
	tr := NewTrigger(b, kind.TriggerPort(), netlist.InvalidNet)
	switch kind {
	case T1AMLeaker:
		return generateT1(b, core, tr, cfg)
	case T2LeakageCurrent:
		return generateT2(b, core, tr, cfg)
	case T3CDMALeaker:
		return generateT3(b, core, tr, cfg)
	case T4PowerHog:
		return generateT4(b, tr, cfg)
	default:
		panic(fmt.Sprintf("trojan: unknown kind %d", int(kind)))
	}
}

// generateT1 builds the AM-radio leaker: a carrier divider that toggles a
// bank of antenna drivers at clk/16 (750 kHz at the paper's 12 MHz
// clock), on-off keyed by the key bit currently at the head of a
// parallel-load shift register.
func generateT1(b *netlist.Builder, core *aes.Core, tr Trigger, cfg Config) *Instance {
	active := tr.Active
	// Carrier: bit 3 of a free-running 4-bit divider toggles every 8
	// cycles -> a clk/16 square wave.
	div := b.Counter(4, active)
	carrier := div[3]
	periodEnd := b.EqualsConst(div, 15)

	// Key capture: load the AES key when an encryption starts while
	// active; shift one bit per carrier period afterwards.
	load := b.And(core.Start, active)
	shiftEn := b.And(periodEnd, active)
	en := b.Or(load, shiftEn)
	width := len(core.Key)
	q := make([]netlist.Net, width)
	cells := make([]int, width)
	for i := range q {
		q[i] = b.RegE(b.Low(), en)
		cells[i] = b.NumCells() - 1
	}
	for i := range q {
		shiftIn := q[(i+1)%width] // rotate so the key repeats on air
		d := b.Mux(shiftIn, core.Key[i], load)
		b.PatchCellInput(cells[i], 0, d)
	}
	leakBit := q[0]

	// OOK modulation: the driver bank toggles with the carrier while
	// the leaked bit is 1. Each driver carries its share of the antenna
	// load, so transmitting draws real current at 750 kHz.
	mod := b.And(b.And(carrier, leakBit), active)
	for i := 0; i < cfg.T1Drivers; i++ {
		out := b.Buf(mod)
		b.SetNetLoad(out, cfg.T1DriverLoad)
	}
	return &Instance{Kind: T1AMLeaker, Trigger: tr.Port, Active: active}
}

// generateT2 builds the leakage-current leaker: a wide shift register
// whose head bit, when 0, opens a crowbar path between the PMOS of one
// inverter and the NMOS of the next (the paper's "one shift register and
// two inverters"). The path draws a static current the EM sensor
// integrates; the power model keys it off LeakWire.
func generateT2(b *netlist.Builder, core *aes.Core, tr Trigger, cfg Config) *Instance {
	width := cfg.T2Width
	active := tr.Active
	load := b.And(core.Start, active)
	// The "pre-set time": a small divider paces the leakage shifting.
	period := cfg.T2ShiftPeriod
	if period < 1 {
		period = 1
	}
	bits := 0
	for 1<<bits < period {
		bits++
	}
	var shiftTick netlist.Net
	if bits == 0 {
		shiftTick = active
	} else {
		pace := b.Counter(bits, active)
		shiftTick = b.And(b.EqualsConst(pace, uint64(period-1)), active)
	}
	en := b.Or(load, shiftTick)
	q := make([]netlist.Net, width)
	cells := make([]int, width)
	for i := range q {
		q[i] = b.RegE(b.Low(), en)
		cells[i] = b.NumCells() - 1
	}
	for i := range q {
		src := core.Key[i%len(core.Key)]
		d := b.Mux(q[(i+1)%width], src, load)
		b.PatchCellInput(cells[i], 0, d)
	}
	// The crowbar path: inverter pairs fed by the head bit. Electrically
	// the leakage flows while the head bit is 0; digitally these are
	// ordinary inverters, so they hide from functional inspection. The
	// inverter chains only switch when the head bit shifts (once per
	// pre-set time), keeping the Trojan's dynamic footprint low.
	pairs := width
	head := q[0]
	for i := 0; i < pairs; i++ {
		first := b.Not(head)
		b.Not(first)
	}
	return &Instance{
		Kind: T2LeakageCurrent, Trigger: tr.Port, Active: active,
		LeakWire: head, CrowbarPairs: pairs,
	}
}

// generateT3 builds the CDMA leaker: a 16-bit LFSR spreads one selected
// key bit per observation window over an exclusive-OR channel, using
// multiple clock cycles per leaked bit. It is the smallest Trojan
// (Table I: 0.76%), which is why the paper finds it the hardest to
// detect.
func generateT3(b *netlist.Builder, core *aes.Core, tr Trigger, cfg Config) *Instance {
	taps := cfg.T3Taps
	if taps > len(core.Key) {
		taps = len(core.Key)
	}
	active := tr.Active
	// 16-bit Fibonacci LFSR, taps 16,15,13,4 (maximal length).
	lfsr := make([]netlist.Net, 16)
	cells := make([]int, 16)
	for i := range lfsr {
		lfsr[i] = b.RegE(b.Low(), active)
		cells[i] = b.NumCells() - 1
	}
	fb := b.Xor(b.Xor(lfsr[15], lfsr[14]), b.Xor(lfsr[12], lfsr[3]))
	// Seed the LFSR via an OR with the trigger so it never sticks at 0.
	b.PatchCellInput(cells[0], 0, b.Or(fb, tr.Port))
	for i := 1; i < 16; i++ {
		b.PatchCellInput(cells[i], 0, lfsr[i-1])
	}

	// Bit selector: a slow counter steps through the key bits, several
	// cycles per bit (the "multiple clock cycles to leak a single bit").
	selBits := 0
	for 1<<selBits < taps {
		selBits++
	}
	slow := b.Counter(5+selBits, active)
	sel := slow[5 : 5+selBits]
	keyBit := muxTree(b, core.Key[:taps], sel)
	spread := b.Xor(keyBit, lfsr[15])
	out := b.And(spread, active)
	drv := b.Buf(out) // the covert channel pad driver
	b.SetNetLoad(drv, cfg.T3DriverLoad)
	return &Instance{Kind: T3CDMALeaker, Trigger: tr.Port, Active: active}
}

// muxTree builds a binary multiplexer tree selecting one of len(in) nets
// (padded with the last entry if not a power of two).
func muxTree(b *netlist.Builder, in []netlist.Net, sel []netlist.Net) netlist.Net {
	if len(in) == 1 {
		return in[0]
	}
	half := 1 << uint(len(sel)-1)
	lo, hi := in, []netlist.Net{in[len(in)-1]}
	if len(in) > half {
		lo, hi = in[:half], in[half:]
	}
	loNet := muxTree(b, lo, sel[:len(sel)-1])
	hiNet := muxTree(b, hi, sel[:len(sel)-1])
	return b.Mux(loNet, hiNet, sel[len(sel)-1])
}

// generateT4 builds the power hog: a rotating register bank that flips
// extra bits every cycle once activated, increasing dynamic power
// exactly as the paper describes ("introducing more flipping registers
// after activation"). On activation the bank loads a sparse pattern (one
// flipping bit per T4Density stages) that then rotates forever, so the
// added power is steady and tunable.
func generateT4(b *netlist.Builder, tr Trigger, cfg Config) *Instance {
	toggles := cfg.T4Toggles
	density := cfg.T4Density
	if density < 1 {
		density = 1
	}
	active := tr.Active
	// One-cycle load pulse on the activation edge.
	loadPulse := b.And(tr.Cond, b.Not(active))
	en := b.Or(loadPulse, active)
	q := make([]netlist.Net, toggles)
	cells := make([]int, toggles)
	for i := range q {
		q[i] = b.RegE(b.Low(), en)
		cells[i] = b.NumCells() - 1
	}
	for i := range q {
		seed := b.Const(i%density == 0)
		d := b.Mux(q[(i+1)%toggles], seed, loadPulse)
		b.PatchCellInput(cells[i], 0, d)
	}
	return &Instance{Kind: T4PowerHog, Trigger: tr.Port, Active: active}
}
