package trojan

import "emtrust/internal/netlist"

// Trigger is the activation plumbing shared by every Trojan in this
// repository — the four paper Trojans and the generated campaign
// members. It bundles the externally controllable trigger port the
// paper adds "to activate the payload in a more manageable way", the
// combinational trigger condition (the port, OR'd with an optional
// stealthy internal condition such as a rare-net AND), and the
// registered activation flag the payload gates on.
type Trigger struct {
	// Port is the one-bit external trigger input net.
	Port netlist.Net
	// Cond is the combinational condition feeding the activation
	// register: Port alone, or Port OR the internal condition.
	Cond netlist.Net
	// Active is the registered "payload active" flag: the condition
	// delayed by one flip-flop. Registering the condition also breaks
	// any combinational path from an internal condition back into the
	// logic the payload corrupts, so inserted triggers can never form
	// a combinational loop.
	Active netlist.Net
}

// NewTrigger declares the external trigger input port and builds the
// registered activation flag in the builder's current region. When
// internal is a valid net it is OR'd with the port, so the payload
// fires on either the manageable external trigger or the stealthy
// internal condition; with internal == InvalidNet the trigger is
// port-only (the paper's four Trojans). The flag is level-sensitive:
// once the condition deasserts, the payload deactivates on the next
// clock edge, so experiments can switch Trojans on and off between
// trace captures.
func NewTrigger(b *netlist.Builder, port string, internal netlist.Net) Trigger {
	p := b.Input(port, 1)[0]
	cond := p
	if internal != netlist.InvalidNet {
		cond = b.Or(p, internal)
	}
	return Trigger{Port: p, Cond: cond, Active: b.Reg(cond)}
}
