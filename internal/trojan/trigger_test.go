package trojan

import (
	"testing"

	"emtrust/internal/logic"
	"emtrust/internal/netlist"
)

// TestNewTriggerInternalCondition checks the shared trigger plumbing:
// the active flag follows either the external port or the internal
// condition, one registered cycle late.
func TestNewTriggerInternalCondition(t *testing.T) {
	b := netlist.NewBuilder("trig")
	cond := b.Input("cond", 1)[0]
	tr := NewTrigger(b, "force", cond)
	b.Output("active", []netlist.Net{tr.Active})
	n := b.Build()
	sim, err := logic.New(n)
	if err != nil {
		t.Fatal(err)
	}
	step := func(force, internal uint64) uint64 {
		if err := sim.SetPortUint("force", force); err != nil {
			t.Fatal(err)
		}
		if err := sim.SetPortUint("cond", internal); err != nil {
			t.Fatal(err)
		}
		sim.Settle()
		sim.Tick()
		v, err := sim.PortUint("active")
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := step(0, 0); got != 0 {
		t.Fatalf("idle trigger active")
	}
	if got := step(1, 0); got != 1 {
		t.Fatalf("external port did not arm the trigger")
	}
	if got := step(0, 1); got != 1 {
		t.Fatalf("internal condition did not arm the trigger")
	}
	if got := step(0, 0); got != 0 {
		t.Fatalf("trigger stuck active after conditions dropped")
	}
}

// TestNewTriggerExternalOnly checks the degenerate form the paper
// Trojans use: no internal condition, Cond aliases the port.
func TestNewTriggerExternalOnly(t *testing.T) {
	b := netlist.NewBuilder("trig_ext")
	tr := NewTrigger(b, "force", netlist.InvalidNet)
	if tr.Cond != tr.Port {
		t.Fatalf("external-only trigger should alias Cond to the port net")
	}
	b.Output("active", []netlist.Net{tr.Active})
	if err := b.Build().Check(); err != nil {
		t.Fatal(err)
	}
}
