package core

import (
	"math/rand"
	"sync"
	"testing"
)

// TestSpectralEvaluateZeroAlloc is the acceptance gate for the planned
// spectral engine: a clean verdict on a warmed detector allocates
// nothing — the amplitude buffer comes from the detector's pool and the
// transform plan is cached process-wide. Skipped under -race, whose
// instrumentation allocates on its own.
func TestSpectralEvaluateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race build")
	}
	rng := rand.New(rand.NewSource(1))
	sd, err := BuildSpectralDetector(goldenSet(rng, 8, 2048), DefaultSpectralConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean := synthTrace(rng, 2048, 0)
	if v := sd.Evaluate(clean); v.Alarm {
		t.Fatal("clean trace alarmed; pick a quieter synthetic")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if v := sd.Evaluate(clean); v.Alarm {
			t.Error("clean trace alarmed mid-gate")
		}
	})
	if allocs != 0 {
		t.Fatalf("clean Evaluate allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSpectralEvaluateConcurrent hammers one shared detector from many
// goroutines mixing clean and infected traces: the pooled scratch
// buffers must never cross-contaminate verdicts.
func TestSpectralEvaluateConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sd, err := BuildSpectralDetector(goldenSet(rng, 8, 2048), DefaultSpectralConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean := synthTrace(rng, 2048, 0)
	infected := synthTrace(rng, 2048, 0.5)
	wantClean := sd.Evaluate(clean)
	wantInfected := sd.Evaluate(infected)
	if wantClean.Alarm {
		t.Fatal("clean trace alarmed serially")
	}
	if !wantInfected.Alarm {
		t.Fatal("infected trace did not alarm serially")
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				if (w+iter)%2 == 0 {
					if v := sd.Evaluate(clean); v.Alarm {
						errs <- "clean trace alarmed under concurrency"
						return
					}
				} else {
					v := sd.Evaluate(infected)
					if !v.Alarm || len(v.Spots) != len(wantInfected.Spots) {
						errs <- "infected verdict changed under concurrency"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
