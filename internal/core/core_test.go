package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"emtrust/internal/dsp"
	"emtrust/internal/trace"
)

const testDt = 1e-7

// synthTrace builds a noisy two-tone trace; extra adds a third tone (the
// "Trojan" component) of the given amplitude.
func synthTrace(rng *rand.Rand, n int, extra float64) *trace.Trace {
	s := make([]float64, n)
	for i := range s {
		t := float64(i) * testDt
		s[i] = 1.0*math.Sin(2*math.Pi*1e6*t) + 0.4*math.Sin(2*math.Pi*2e6*t)
		s[i] += extra * math.Sin(2*math.Pi*3.3e6*t)
		s[i] += rng.NormFloat64() * 0.05
	}
	return &trace.Trace{Dt: testDt, Samples: s}
}

func goldenSet(rng *rand.Rand, count, n int) []*trace.Trace {
	out := make([]*trace.Trace, count)
	for i := range out {
		out[i] = synthTrace(rng, n, 0)
	}
	return out
}

func TestFeatureExtractor(t *testing.T) {
	ex := FeatureExtractor{Segments: 4}
	tr := &trace.Trace{Dt: 1, Samples: []float64{1, 1, 2, 2, 3, 3, 4, 4}}
	f := ex.Extract(tr)
	if len(f) != 4 {
		t.Fatalf("features = %v", f)
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if math.Abs(f[i]-want) > 1e-12 {
			t.Fatalf("segment %d = %g, want %g", i, f[i], want)
		}
	}
	// Default segments and degenerate inputs.
	if got := (FeatureExtractor{}).Extract(tr); len(got) != 32 {
		t.Fatalf("default segments = %d", len(got))
	}
	empty := (FeatureExtractor{Segments: 4}).Extract(&trace.Trace{Dt: 1})
	for _, v := range empty {
		if v != 0 {
			t.Fatal("empty trace must give zero features")
		}
	}
	// More segments than samples must not panic and must cover all.
	short := (FeatureExtractor{Segments: 8}).Extract(&trace.Trace{Dt: 1, Samples: []float64{5, 5}})
	if len(short) != 8 {
		t.Fatal("short trace feature length")
	}
}

func TestBuildFingerprintValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BuildFingerprint(goldenSet(rng, 1, 256), DefaultFingerprintConfig()); err == nil {
		t.Fatal("single golden trace must error")
	}
}

func TestFingerprintNoFalseAlarmsOnGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fp, err := BuildFingerprint(goldenSet(rng, 40, 1024), DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Held-out golden traces: distances should land at or below the
	// threshold almost always (the threshold is the max golden pairwise
	// distance; held-out data may rarely exceed it).
	alarms := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		if fp.Evaluate(synthTrace(rng, 1024, 0)).Alarm {
			alarms++
		}
	}
	if alarms > trials/10 {
		t.Fatalf("%d/%d false alarms on golden traces", alarms, trials)
	}
}

func TestFingerprintDetectsInjectedComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fp, err := BuildFingerprint(goldenSet(rng, 40, 1024), DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		v := fp.Evaluate(synthTrace(rng, 1024, 0.8))
		if v.Alarm {
			detected++
		}
		if v.Threshold != fp.Threshold {
			t.Fatal("verdict threshold mismatch")
		}
	}
	if detected < trials*9/10 {
		t.Fatalf("only %d/%d infected traces detected", detected, trials)
	}
}

// Distance must grow monotonically-ish with the Trojan component size.
func TestDistanceScalesWithActivity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fp, err := BuildFingerprint(goldenSet(rng, 30, 1024), DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	mean := func(extra float64) float64 {
		sum := 0.0
		for i := 0; i < 10; i++ {
			sum += fp.Distance(synthTrace(rng, 1024, extra))
		}
		return sum / 10
	}
	small, large := mean(0.2), mean(1.5)
	if large <= small {
		t.Fatalf("distance did not grow with activity: %g vs %g", small, large)
	}
}

func TestCentroidDistanceSeparatesPopulations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fp, err := BuildFingerprint(goldenSet(rng, 30, 1024), DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	var g, tr []float64
	for i := 0; i < 20; i++ {
		g = append(g, fp.CentroidDistance(synthTrace(rng, 1024, 0)))
		tr = append(tr, fp.CentroidDistance(synthTrace(rng, 1024, 0.8)))
	}
	gm, tm := dsp.Mean(g), dsp.Mean(tr)
	if tm <= gm {
		t.Fatalf("infected centroid distance %g not above golden %g", tm, gm)
	}
}

func TestThresholdMarginScales(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	set := goldenSet(rng, 10, 512)
	cfg := DefaultFingerprintConfig()
	base, err := BuildFingerprint(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ThresholdMargin = 2
	wide, err := BuildFingerprint(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wide.Threshold-2*base.Threshold) > 1e-12*base.Threshold {
		t.Fatalf("margin not applied: %g vs %g", wide.Threshold, base.Threshold)
	}
}

func TestSpectralDetectorFindsNewSpot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sd, err := BuildSpectralDetector(goldenSet(rng, 12, 2048), DefaultSpectralConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Clean trace: no alarm.
	clean := sd.Evaluate(synthTrace(rng, 2048, 0))
	if clean.Alarm {
		t.Fatalf("false spectral alarm: %+v", clean.Spots)
	}
	// A new 3.3 MHz tone must be flagged as a NEW spot.
	v := sd.Evaluate(synthTrace(rng, 2048, 0.6))
	if !v.Alarm {
		t.Fatal("spectral detector missed an injected tone")
	}
	spot := v.StrongestSpot()
	if math.Abs(spot.Frequency-3.3e6) > 5*sd.DF {
		t.Fatalf("strongest spot at %g Hz, want ~3.3 MHz", spot.Frequency)
	}
	if !spot.New {
		t.Fatal("injected tone should be a new spot")
	}
}

func TestSpectralDetectorFindsAmplifiedSpot(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sd, err := BuildSpectralDetector(goldenSet(rng, 12, 2048), DefaultSpectralConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Amplify an existing tone (2 MHz: golden amplitude 0.4 -> 1.0).
	s := make([]float64, 2048)
	for i := range s {
		tt := float64(i) * testDt
		s[i] = 1.0*math.Sin(2*math.Pi*1e6*tt) + 1.0*math.Sin(2*math.Pi*2e6*tt) + rng.NormFloat64()*0.05
	}
	v := sd.Evaluate(&trace.Trace{Dt: testDt, Samples: s})
	if !v.Alarm {
		t.Fatal("amplified spot missed")
	}
	spot := v.StrongestSpot()
	if math.Abs(spot.Frequency-2e6) > 5*sd.DF {
		t.Fatalf("strongest spot at %g Hz, want ~2 MHz", spot.Frequency)
	}
	if spot.New {
		t.Fatal("amplified existing tone must not be flagged as new")
	}
}

func TestSpectralDetectorValidation(t *testing.T) {
	if _, err := BuildSpectralDetector(nil, DefaultSpectralConfig()); err == nil {
		t.Fatal("empty golden set must error")
	}
	rng := rand.New(rand.NewSource(9))
	mixed := []*trace.Trace{synthTrace(rng, 1024, 0), synthTrace(rng, 4096, 0)}
	if _, err := BuildSpectralDetector(mixed, DefaultSpectralConfig()); err == nil {
		t.Fatal("mismatched trace lengths must error")
	}
}

func TestVerdictString(t *testing.T) {
	v := Verdict{Seq: 3, Time: TimeVerdict{Distance: 1, Threshold: 0.5, Alarm: true}}
	if v.String() == "" || !v.Alarm() {
		t.Fatal("verdict rendering broken")
	}
	clean := Verdict{}
	if clean.Alarm() {
		t.Fatal("zero verdict must be clean")
	}
}

func TestMonitorPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	golden := goldenSet(rng, 20, 1024)
	fp, err := BuildFingerprint(golden, DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	sd, err := BuildSpectralDetector(golden, DefaultSpectralConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(fp, sd, 4)
	if err != nil {
		t.Fatal(err)
	}
	const nClean, nBad = 8, 8
	go func() {
		for i := 0; i < nClean; i++ {
			m.Submit(synthTrace(rng, 1024, 0))
		}
		for i := 0; i < nBad; i++ {
			m.Submit(synthTrace(rng, 1024, 1.0))
		}
		m.Close()
	}()
	var verdicts []Verdict
	for v := range m.Verdicts() {
		verdicts = append(verdicts, v)
	}
	if len(verdicts) != nClean+nBad {
		t.Fatalf("got %d verdicts", len(verdicts))
	}
	for i, v := range verdicts {
		if v.Seq != i {
			t.Fatalf("sequence broken at %d", i)
		}
	}
	badAlarms := 0
	for _, v := range verdicts[nClean:] {
		if v.Alarm() {
			badAlarms++
		}
	}
	if badAlarms < nBad-1 {
		t.Fatalf("monitor missed infected traces: %d/%d", badAlarms, nBad)
	}
	total, alarms := m.Stats()
	if total != nClean+nBad || alarms != badAlarms+countAlarms(verdicts[:nClean]) {
		t.Fatalf("stats %d/%d inconsistent", total, alarms)
	}
}

func countAlarms(vs []Verdict) int {
	n := 0
	for _, v := range vs {
		if v.Alarm() {
			n++
		}
	}
	return n
}

func TestMonitorNeedsADetector(t *testing.T) {
	if _, err := NewMonitor(nil, nil, 0); err == nil {
		t.Fatal("nil detectors must error")
	}
}

func TestMonitorTimeOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fp, err := BuildFingerprint(goldenSet(rng, 10, 512), DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(fp, nil, -1) // negative buffer clamps to 0
	if err != nil {
		t.Fatal(err)
	}
	go m.Submit(synthTrace(rng, 512, 0))
	v := <-m.Verdicts()
	if v.Spectral.Alarm || len(v.Spectral.Spots) != 0 {
		t.Fatal("spectral verdict should be empty without a detector")
	}
	m.Close()
}

func TestQuickMedian(t *testing.T) {
	if median([]float64{5, 1, 3}) != 3 {
		t.Fatal("median odd")
	}
	if median(nil) != 0 {
		t.Fatal("median empty")
	}
	x := []float64{9, 2, 7, 4, 6, 1, 8}
	if median(x) != 6 {
		t.Fatalf("median = %g", median(x))
	}
}

func TestMonitorPoolPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	golden := goldenSet(rng, 20, 1024)
	fp, err := BuildFingerprint(golden, DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	sd, err := BuildSpectralDetector(golden, DefaultSpectralConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		m, err := NewMonitorPool(fp, sd, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		const n = 32
		go func() {
			for i := 0; i < n; i++ {
				m.Submit(synthTrace(rng, 1024, 0))
			}
			m.Close()
		}()
		want := 0
		for v := range m.Verdicts() {
			if v.Seq != want {
				t.Fatalf("workers=%d: verdict %d arrived out of order (want %d)", workers, v.Seq, want)
			}
			want++
		}
		if want != n {
			t.Fatalf("workers=%d: got %d verdicts, want %d", workers, want, n)
		}
		if total, _ := m.Stats(); total != n {
			t.Fatalf("workers=%d: stats total %d, want %d", workers, total, n)
		}
	}
}

// A monitor closed before any submission must report zero traces and
// zero alarms, and its verdict channel must just close.
func TestMonitorStatsZeroTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	fp, err := BuildFingerprint(goldenSet(rng, 10, 512), DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(fp, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	for range m.Verdicts() {
		t.Fatal("verdict without a submission")
	}
	if total, alarms := m.Stats(); total != 0 || alarms != 0 {
		t.Fatalf("stats = %d/%d, want 0/0", total, alarms)
	}
	if rejected, confirmed := m.HardenedStats(); rejected != 0 || confirmed != 0 {
		t.Fatalf("hardened stats = %d/%d, want 0/0", rejected, confirmed)
	}
}

// A spectral-only hit must alarm and (without debouncing) confirm, even
// though the time-domain detector stayed quiet.
func TestVerdictSpectralOnlyAlarm(t *testing.T) {
	v := Verdict{
		Time:     TimeVerdict{Distance: 0.1, Threshold: 0.5},
		Spectral: SpectralVerdict{Alarm: true, Spots: []Spot{{}}},
	}
	if !v.Alarm() || !v.Confirmed() {
		t.Fatal("spectral-only hit must raise a confirmed alarm")
	}
	if !strings.Contains(v.String(), "ALARM") || !strings.Contains(v.String(), "spots=1") {
		t.Fatalf("rendering %q", v.String())
	}
}

// Each verdict status has its own rendering, and a health-rejected or
// unconfirmed-window alarm never confirms.
func TestVerdictStatusEdges(t *testing.T) {
	rejected := Verdict{
		Time:   TimeVerdict{Alarm: true},
		Health: HealthVerdict{Rejected: true, Reason: "flatline"},
	}
	if rejected.Confirmed() {
		t.Fatal("health-rejected trace must never confirm")
	}
	if !strings.Contains(rejected.String(), "REJECT(flatline)") {
		t.Fatalf("rendering %q", rejected.String())
	}

	pending := Verdict{
		Time:       TimeVerdict{Alarm: true},
		Window:     WindowState{M: 3, N: 5, Alarms: 1},
		Confidence: 0.9,
	}
	if !pending.Alarm() || pending.Confirmed() {
		t.Fatal("raw hit below the debounce threshold must not confirm")
	}
	s := pending.String()
	if !strings.Contains(s, "alarm?") || !strings.Contains(s, "window=1/5") {
		t.Fatalf("rendering %q", s)
	}

	confirmed := pending
	confirmed.Window.Alarms = 3
	confirmed.Window.Confirmed = true
	if !confirmed.Confirmed() || !strings.Contains(confirmed.String(), "ALARM") {
		t.Fatalf("rendering %q", confirmed.String())
	}

	clean := Verdict{Window: WindowState{M: 3, N: 5}}
	if clean.Alarm() || clean.Confirmed() || !strings.Contains(clean.String(), "ok") {
		t.Fatalf("rendering %q", clean.String())
	}
}
