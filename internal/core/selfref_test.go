package core

import (
	"math/rand"
	"testing"
)

// grid3x3 returns the 8-connected adjacency of a 3x3 sensor grid.
func grid3x3() [][]int {
	nb := make([][]int, 9)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			k := y*3 + x
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if (dx == 0 && dy == 0) || nx < 0 || nx > 2 || ny < 0 || ny > 2 {
						continue
					}
					nb[k] = append(nb[k], ny*3+nx)
				}
			}
		}
	}
	return nb
}

// calFrames synthesizes calibration frames: per-sensor level ~1 with a
// little multiplicative noise.
func calFrames(n int, rng *rand.Rand) [][]float64 {
	frames := make([][]float64, n)
	for i := range frames {
		f := make([]float64, 9)
		for k := range f {
			f[k] = 1 + 0.002*rng.NormFloat64()
		}
		frames[i] = f
	}
	return frames
}

func TestSelfReferenceCalibrationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	good := calFrames(6, rng)
	nb := grid3x3()
	if _, err := CalibrateSelfReference(good[:3], nb, SelfReferenceConfig{}); err == nil {
		t.Error("3 frames accepted")
	}
	ragged := calFrames(6, rng)
	ragged[2] = ragged[2][:5]
	if _, err := CalibrateSelfReference(ragged, nb, SelfReferenceConfig{}); err == nil {
		t.Error("ragged frames accepted")
	}
	if _, err := CalibrateSelfReference(good, nb[:4], SelfReferenceConfig{}); err == nil {
		t.Error("short adjacency accepted")
	}
	bad := grid3x3()
	bad[0] = []int{9}
	if _, err := CalibrateSelfReference(good, bad, SelfReferenceConfig{}); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
	self := grid3x3()
	self[0] = []int{0}
	if _, err := CalibrateSelfReference(good, self, SelfReferenceConfig{}); err == nil {
		t.Error("self-neighbor accepted")
	}
	zero := [][]float64{make([]float64, 9), make([]float64, 9), make([]float64, 9), make([]float64, 9)}
	if _, err := CalibrateSelfReference(zero, nb, SelfReferenceConfig{}); err == nil {
		t.Error("all-zero calibration accepted")
	}
}

// TestSelfReferenceLocalVsCommonMode pins the defining property of
// cross-sensor self-referencing: a local bump under one sensor alarms
// and names that sensor, while the same bump applied to every sensor
// (temperature, supply sag) cancels in the spatial reference.
func TestSelfReferenceLocalVsCommonMode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, err := CalibrateSelfReference(calFrames(8, rng), grid3x3(), SelfReferenceConfig{})
	if err != nil {
		t.Fatal(err)
	}

	clean := make([]float64, 9)
	for k := range clean {
		clean[k] = 1 + 0.002*rng.NormFloat64()
	}
	v, err := d.Evaluate(clean)
	if err != nil {
		t.Fatal(err)
	}
	if v.Alarm {
		t.Fatalf("clean frame alarms: %+v", v)
	}

	local := append([]float64(nil), clean...)
	local[4] *= 1.2 // +20% under the center sensor only
	v, err = d.Evaluate(local)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Alarm || v.ArgMax != 4 {
		t.Fatalf("local bump not localized: alarm=%v argmax=%d max=%.1f", v.Alarm, v.ArgMax, v.Max)
	}

	global := append([]float64(nil), clean...)
	for k := range global {
		global[k] *= 1.2 // same +20%, everywhere
	}
	v, err = d.Evaluate(global)
	if err != nil {
		t.Fatal(err)
	}
	if v.Alarm {
		t.Fatalf("common-mode shift alarms: max=%.1f at %d", v.Max, v.ArgMax)
	}

	if _, err := d.Evaluate(clean[:5]); err == nil {
		t.Error("short frame accepted")
	}
}

// TestSelfReferenceGuardedBaseline pins that quiet frames feed the
// rolling baseline while alarming frames never do — a Trojan cannot be
// absorbed into its own reference.
func TestSelfReferenceGuardedBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, err := CalibrateSelfReference(calFrames(8, rng), grid3x3(), SelfReferenceConfig{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	before := d.Baseline()

	hot := make([]float64, 9)
	for k := range hot {
		hot[k] = before[k]
	}
	hot[4] *= 1.5
	for i := 0; i < 10; i++ {
		v, err := d.Evaluate(hot)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Alarm {
			t.Fatalf("round %d: persistent local anomaly absorbed into baseline", i)
		}
	}
	if got := d.Baseline(); got[4] != before[4] {
		t.Errorf("alarming frames moved the baseline: %.6f -> %.6f", before[4], got[4])
	}

	// A quiet drift does update the baseline.
	quiet := append([]float64(nil), before...)
	for k := range quiet {
		quiet[k] *= 1.01
	}
	if _, err := d.Evaluate(quiet); err != nil {
		t.Fatal(err)
	}
	if got := d.Baseline(); got[4] == before[4] {
		t.Error("quiet frame did not update the baseline")
	}
}

// TestSelfReferenceSingleSensor pins the 1×1 degradation: with no
// neighbors the detector falls back to history-only referencing, so a
// global shift does alarm (there is no spatial common mode to cancel).
func TestSelfReferenceSingleSensor(t *testing.T) {
	frames := [][]float64{{1.0}, {1.001}, {0.999}, {1.0}, {1.002}}
	d, err := CalibrateSelfReference(frames, [][]int{nil}, SelfReferenceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Evaluate([]float64{1.0}); v.Alarm {
		t.Fatalf("steady single sensor alarms: %+v", v)
	}
	if v, _ := d.Evaluate([]float64{1.3}); !v.Alarm {
		t.Fatalf("single-sensor step not detected: %+v", v)
	}
}
