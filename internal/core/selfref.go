package core

import "fmt"

// Golden-model-free detection for sensor arrays, after Wang et al.'s
// "Programmable EM Sensor Array for Golden-Model Free Run-time Trojan
// Detection and Localization": with a grid of small coils over the die,
// no golden chip is needed, because every sensor carries two references
// of its own — its spatial neighbors at the same instant and its own
// rolling history. A Trojan activating under one coil moves that coil's
// reading away from both; a global shift (temperature, supply sag, a
// different workload phase) moves every coil together and cancels in the
// cross-sensor comparison.
//
// The detector is deliberately geometry-agnostic: it scores frames of
// per-sensor scalar features against an adjacency list, so internal/core
// stays free of coil geometry and internal/sensorarray supplies both.

// SelfReferenceConfig tunes the array detector.
type SelfReferenceConfig struct {
	// Threshold is the robust z-score above which a sensor is anomalous.
	Threshold float64
	// Alpha is the EWMA weight of the guarded per-sensor baseline update
	// on quiet frames (0 freezes the baseline at calibration).
	Alpha float64
	// MinSigma floors the per-sensor spread estimate, in relative-change
	// units. Calibration frames of a steady chip differ only by
	// acquisition noise, and on a nearly noise-free channel the measured
	// spread collapses toward zero; without a floor any benign
	// fluctuation would then score as anomalous.
	MinSigma float64
}

// DefaultSelfReferenceConfig returns the tuning used by the
// localization experiments: a sensor must move at least Threshold×
// MinSigma (≈4%) relative to its neighbors before it is called
// anomalous, however quiet the calibration was.
func DefaultSelfReferenceConfig() SelfReferenceConfig {
	return SelfReferenceConfig{Threshold: 8, Alpha: 0.1, MinSigma: 0.005}
}

func (c SelfReferenceConfig) withDefaults() SelfReferenceConfig {
	if c.Threshold <= 0 {
		c.Threshold = 8
	}
	if c.Alpha < 0 || c.Alpha >= 1 {
		c.Alpha = 0.1
	}
	if c.MinSigma <= 0 {
		c.MinSigma = 0.005
	}
	return c
}

// SelfReference is the fitted array detector. It is stateful (rolling
// baseline) and must not be shared across goroutines.
type SelfReference struct {
	cfg       SelfReferenceConfig
	neighbors [][]int
	// base is the per-sensor baseline feature (median of calibration,
	// then EWMA-tracked on quiet frames).
	base []float64
	// sigma is the per-sensor robust spread of the spatial residual over
	// the calibration frames, floored at cfg.MinSigma.
	sigma []float64
	// baseFloor guards the relative-change division against dead sensors.
	baseFloor float64
}

// CalibrateSelfReference fits the detector from frames of per-sensor
// features captured while the chip is trusted-idle or running its known
// workload with nothing anomalous — the post-deployment self-calibration
// of the paper's threat model, not a golden chip. neighbors[k] lists the
// sensors spatially adjacent to sensor k; an empty list degrades sensor
// k to history-only referencing (the single-coil case).
func CalibrateSelfReference(frames [][]float64, neighbors [][]int, cfg SelfReferenceConfig) (*SelfReference, error) {
	if len(frames) < 4 {
		return nil, fmt.Errorf("core: self-reference calibration needs at least 4 frames, got %d", len(frames))
	}
	k := len(frames[0])
	if k == 0 {
		return nil, fmt.Errorf("core: self-reference frames are empty")
	}
	for i, f := range frames {
		if len(f) != k {
			return nil, fmt.Errorf("core: calibration frame %d has %d sensors, want %d", i, len(f), k)
		}
	}
	if len(neighbors) != k {
		return nil, fmt.Errorf("core: %d adjacency lists for %d sensors", len(neighbors), k)
	}
	for s, ns := range neighbors {
		for _, n := range ns {
			if n < 0 || n >= k || n == s {
				return nil, fmt.Errorf("core: sensor %d has invalid neighbor %d", s, n)
			}
		}
	}
	d := &SelfReference{cfg: cfg.withDefaults(), neighbors: neighbors}

	// Per-sensor baseline: median feature over the calibration frames.
	d.base = make([]float64, k)
	col := make([]float64, len(frames))
	for s := 0; s < k; s++ {
		for i, f := range frames {
			col[i] = f[s]
		}
		d.base[s] = median(col)
	}
	// A dead sensor's baseline is ~0; dividing by it would turn noise
	// into infinite relative change. Floor at a small fraction of the
	// array-median baseline instead.
	d.baseFloor = 1e-3 * median(d.base)
	if d.baseFloor <= 0 {
		return nil, fmt.Errorf("core: calibration features carry no signal")
	}

	// Per-sensor spread of the spatial residual across calibration
	// frames (1.4826*MAD estimates a Gaussian sigma robustly).
	resid := make([][]float64, len(frames))
	for i, f := range frames {
		resid[i] = d.residuals(f)
	}
	d.sigma = make([]float64, k)
	for s := 0; s < k; s++ {
		for i := range resid {
			col[i] = resid[i][s]
		}
		m := median(col)
		for i := range col {
			col[i] = abs(col[i] - m)
		}
		d.sigma[s] = 1.4826 * median(col)
		if d.sigma[s] < d.cfg.MinSigma {
			d.sigma[s] = d.cfg.MinSigma
		}
	}
	return d, nil
}

// residuals computes each sensor's spatial residual for one frame: the
// relative change against its own baseline, minus the median relative
// change of its neighbors (the common-mode reference).
func (d *SelfReference) residuals(frame []float64) []float64 {
	k := len(d.base)
	rel := make([]float64, k)
	for s := 0; s < k; s++ {
		b := d.base[s]
		if b < d.baseFloor {
			b = d.baseFloor
		}
		rel[s] = frame[s]/b - 1
	}
	out := make([]float64, k)
	var nb []float64
	for s := 0; s < k; s++ {
		out[s] = rel[s]
		if len(d.neighbors[s]) == 0 {
			continue
		}
		nb = nb[:0]
		for _, n := range d.neighbors[s] {
			nb = append(nb, rel[n])
		}
		out[s] -= median(nb)
	}
	return out
}

// ArrayVerdict is the detector's view of one frame.
type ArrayVerdict struct {
	// Z holds the per-sensor anomaly scores (robust z of the spatial
	// residual; positive means more emission than the references).
	Z []float64
	// Max and ArgMax identify the most anomalous sensor — the
	// localization answer when Alarm is set.
	Max    float64
	ArgMax int
	// Alarm is set when any sensor exceeds the threshold.
	Alarm bool
}

// Evaluate scores one frame of per-sensor features and, on quiet frames
// only, lets the rolling baseline track slow drift. Like the monitor's
// guarded re-baseliner, an alarming frame never feeds the baseline, so a
// Trojan's signature is never absorbed into its own reference.
func (d *SelfReference) Evaluate(frame []float64) (ArrayVerdict, error) {
	if len(frame) != len(d.base) {
		return ArrayVerdict{}, fmt.Errorf("core: frame has %d sensors, detector fitted for %d", len(frame), len(d.base))
	}
	r := d.residuals(frame)
	v := ArrayVerdict{Z: r}
	for s := range r {
		r[s] /= d.sigma[s]
		if r[s] > v.Max || s == 0 {
			v.Max, v.ArgMax = r[s], s
		}
	}
	v.Alarm = v.Max > d.cfg.Threshold
	if !v.Alarm && d.cfg.Alpha > 0 {
		for s := range d.base {
			d.base[s] = (1-d.cfg.Alpha)*d.base[s] + d.cfg.Alpha*frame[s]
		}
	}
	return v, nil
}

// Threshold returns the effective alarm threshold.
func (d *SelfReference) Threshold() float64 { return d.cfg.Threshold }

// Baseline returns a copy of the current per-sensor rolling baseline.
func (d *SelfReference) Baseline() []float64 {
	out := make([]float64, len(d.base))
	copy(out, d.base)
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
