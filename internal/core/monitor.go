package core

import (
	"fmt"
	"sync"

	"emtrust/internal/trace"
)

// Verdict combines both detectors' views of one trace.
type Verdict struct {
	Seq      int
	Time     TimeVerdict
	Spectral SpectralVerdict
}

// Alarm reports whether either detector fired.
func (v Verdict) Alarm() bool { return v.Time.Alarm || v.Spectral.Alarm }

// String renders a one-line monitor log entry.
func (v Verdict) String() string {
	status := "ok"
	if v.Alarm() {
		status = "ALARM"
	}
	return fmt.Sprintf("trace %d: %s distance=%.4g threshold=%.4g spots=%d",
		v.Seq, status, v.Time.Distance, v.Time.Threshold, len(v.Spectral.Spots))
}

// Monitor is the runtime trust evaluation loop of Figure 1: traces from
// the on-chip sensor stream in, verdicts stream out, and the analysis
// runs in parallel with the circuit's normal execution (no performance
// degradation on the monitored chip). With more than one worker the
// evaluations themselves run concurrently — both detectors are read-only
// after fitting — while verdicts are still emitted in submission order.
type Monitor struct {
	fp *Fingerprint
	sd *SpectralDetector

	in      chan *trace.Trace
	out     chan Verdict
	wg      sync.WaitGroup
	history struct {
		sync.Mutex
		alarms int
		total  int
	}
}

// job carries one submitted trace through the pool; done delivers its
// verdict to the in-order emitter.
type job struct {
	seq  int
	t    *trace.Trace
	done chan Verdict
}

// NewMonitor builds a single-worker runtime monitor from fitted
// detectors. Either detector may be nil to run the other alone.
func NewMonitor(fp *Fingerprint, sd *SpectralDetector, buffer int) (*Monitor, error) {
	return NewMonitorPool(fp, sd, buffer, 1)
}

// NewMonitorPool is NewMonitor with a worker pool of the given size
// evaluating traces concurrently. Verdict order matches submission
// order regardless of worker count; workers <= 1 degrades to the serial
// monitor.
func NewMonitorPool(fp *Fingerprint, sd *SpectralDetector, buffer, workers int) (*Monitor, error) {
	if fp == nil && sd == nil {
		return nil, fmt.Errorf("core: monitor needs at least one detector")
	}
	if buffer < 0 {
		buffer = 0
	}
	if workers < 1 {
		workers = 1
	}
	m := &Monitor{
		fp:  fp,
		sd:  sd,
		in:  make(chan *trace.Trace, buffer),
		out: make(chan Verdict, buffer),
	}

	// Dispatcher: stamps sequence numbers and registers each job with the
	// emitter (pending preserves submission order). Workers: evaluate in
	// any order, delivering on the job's private channel. Emitter: drains
	// pending in order, so out-of-order completions wait their turn.
	jobs := make(chan job, workers)
	pending := make(chan job, buffer+workers)
	m.wg.Add(1)
	go func() { // dispatcher
		defer m.wg.Done()
		seq := 0
		for t := range m.in {
			j := job{seq: seq, t: t, done: make(chan Verdict, 1)}
			seq++
			pending <- j
			jobs <- j
		}
		close(jobs)
		close(pending)
	}()
	var workersWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func() {
			defer workersWG.Done()
			for j := range jobs {
				j.done <- m.evaluate(j.seq, j.t)
			}
		}()
	}
	m.wg.Add(1)
	go func() { // emitter
		defer m.wg.Done()
		defer close(m.out)
		for j := range pending {
			v := <-j.done
			m.history.Lock()
			m.history.total++
			if v.Alarm() {
				m.history.alarms++
			}
			m.history.Unlock()
			m.out <- v
		}
		workersWG.Wait()
	}()
	return m, nil
}

// evaluate runs both detectors on one trace.
func (m *Monitor) evaluate(seq int, t *trace.Trace) Verdict {
	v := Verdict{Seq: seq}
	if m.fp != nil {
		v.Time = m.fp.Evaluate(t)
	}
	if m.sd != nil {
		v.Spectral = m.sd.Evaluate(t)
	}
	return v
}

// Submit queues a trace for evaluation. It blocks when the buffer is
// full (backpressure instead of dropped traces).
func (m *Monitor) Submit(t *trace.Trace) { m.in <- t }

// Verdicts returns the output stream. It is closed after Close.
func (m *Monitor) Verdicts() <-chan Verdict { return m.out }

// Close stops accepting traces and waits for in-flight evaluations.
func (m *Monitor) Close() {
	close(m.in)
	m.wg.Wait()
}

// Stats returns the running totals.
func (m *Monitor) Stats() (total, alarms int) {
	m.history.Lock()
	defer m.history.Unlock()
	return m.history.total, m.history.alarms
}
