package core

import (
	"fmt"
	"sync"

	"emtrust/internal/trace"
)

// Verdict combines both detectors' views of one trace, plus the
// hardening context: the channel-health pre-check, the debounce window,
// and a confidence score that replaces raw booleans when the channel is
// degraded.
type Verdict struct {
	Seq      int
	Time     TimeVerdict
	Spectral SpectralVerdict
	// Health is the pre-check outcome; the zero value means accepted
	// (or unchecked, on a monitor without a health gate).
	Health HealthVerdict
	// Window is the debouncer's m-of-n view; N == 0 when debouncing is
	// off.
	Window WindowState
	// Confidence in this verdict, in [0, 1]: 1 on a pristine channel,
	// lower as the channel degrades, 0 for a rejected trace.
	Confidence float64
}

// Alarm reports whether either detector raw-fired on this trace.
func (v Verdict) Alarm() bool { return v.Time.Alarm || v.Spectral.Alarm }

// Confirmed reports the debounced Trojan alarm: with debouncing enabled
// it requires M raw alarms in the last N traces; without it, it equals
// Alarm(). A health-rejected trace never confirms — a dying sensor is a
// maintenance event, not a Trojan detection.
func (v Verdict) Confirmed() bool {
	if v.Health.Rejected {
		return false
	}
	if v.Window.N > 0 {
		return v.Window.Confirmed
	}
	return v.Alarm()
}

// String renders a one-line monitor log entry.
func (v Verdict) String() string {
	status := "ok"
	switch {
	case v.Health.Rejected:
		status = "REJECT(" + v.Health.Reason + ")"
	case v.Confirmed():
		status = "ALARM"
	case v.Alarm():
		status = "alarm?" // raw hit, not yet confirmed by the window
	}
	s := fmt.Sprintf("trace %d: %s distance=%.4g threshold=%.4g spots=%d",
		v.Seq, status, v.Time.Distance, v.Time.Threshold, len(v.Spectral.Spots))
	if v.Window.N > 0 {
		s += fmt.Sprintf(" window=%d/%d confidence=%.2f", v.Window.Alarms, v.Window.N, v.Confidence)
	}
	return s
}

// Monitor is the runtime trust evaluation loop of Figure 1: traces from
// the on-chip sensor stream in, verdicts stream out, and the analysis
// runs in parallel with the circuit's normal execution (no performance
// degradation on the monitored chip). With more than one worker the
// evaluations themselves run concurrently — both detectors are read-only
// after fitting — while verdicts are still emitted in submission order.
// The hardening stages (health gate, debouncer, re-baseliner) are
// stateful and run in the in-order emitter, so they see the stream
// exactly as submitted regardless of worker count.
type Monitor struct {
	// ev is the verdict pipeline shared with the synchronous Evaluator:
	// its stateless half runs in the worker pool, its stateful half in
	// the in-order emitter.
	ev *Evaluator

	in      chan *trace.Trace
	out     chan Verdict
	wg      sync.WaitGroup
	history struct {
		sync.Mutex
		alarms    int
		total     int
		rejected  int
		confirmed int
	}
}

// eval carries a worker's stateless result to the in-order finalizer:
// the verdict skeleton plus the raw score vector when the emitter must
// apply the drift baseline itself.
type eval struct {
	v     Verdict
	score []float64
}

// job carries one submitted trace through the pool; done delivers its
// evaluation to the in-order emitter.
type job struct {
	seq  int
	t    *trace.Trace
	done chan eval
}

// NewMonitor builds a single-worker runtime monitor from fitted
// detectors. Either detector may be nil to run the other alone.
func NewMonitor(fp *Fingerprint, sd *SpectralDetector, buffer int) (*Monitor, error) {
	return NewMonitorWith(fp, sd, MonitorOptions{Buffer: buffer})
}

// NewMonitorPool is NewMonitor with a worker pool of the given size
// evaluating traces concurrently. Verdict order matches submission
// order regardless of worker count; workers <= 1 degrades to the serial
// monitor.
func NewMonitorPool(fp *Fingerprint, sd *SpectralDetector, buffer, workers int) (*Monitor, error) {
	return NewMonitorWith(fp, sd, MonitorOptions{Buffer: buffer, Workers: workers})
}

// NewMonitorWith builds a monitor with explicit options (see
// MonitorOptions; the zero value reproduces the paper's monitor).
func NewMonitorWith(fp *Fingerprint, sd *SpectralDetector, opts MonitorOptions) (*Monitor, error) {
	ev, err := NewEvaluator(fp, sd, opts)
	if err != nil {
		return nil, err
	}
	buffer := opts.Buffer
	if buffer < 0 {
		buffer = 0
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	m := &Monitor{
		ev:  ev,
		in:  make(chan *trace.Trace, buffer),
		out: make(chan Verdict, buffer),
	}

	// Dispatcher: stamps sequence numbers and registers each job with the
	// emitter (pending preserves submission order). Workers: evaluate in
	// any order, delivering on the job's private channel. Emitter: drains
	// pending in order, finalizing the stateful hardening stages there.
	jobs := make(chan job, workers)
	pending := make(chan job, buffer+workers)
	m.wg.Add(1)
	go func() { // dispatcher
		defer m.wg.Done()
		seq := 0
		for t := range m.in {
			j := job{seq: seq, t: t, done: make(chan eval, 1)}
			seq++
			pending <- j
			jobs <- j
		}
		close(jobs)
		close(pending)
	}()
	var workersWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func() {
			defer workersWG.Done()
			for j := range jobs {
				j.done <- m.evaluate(j.seq, j.t)
			}
		}()
	}
	m.wg.Add(1)
	go func() { // emitter
		defer m.wg.Done()
		defer close(m.out)
		for j := range pending {
			e := <-j.done
			v := m.finalize(e)
			m.history.Lock()
			m.history.total++
			if v.Alarm() {
				m.history.alarms++
			}
			if v.Health.Rejected {
				m.history.rejected++
			}
			if v.Confirmed() {
				m.history.confirmed++
			}
			m.history.Unlock()
			m.out <- v
		}
		workersWG.Wait()
	}()
	return m, nil
}

// evaluate runs the stateless half of the pipeline in a pool worker;
// finalize runs the stateful half (debounce, re-baselining) in the
// in-order emitter. Both live on Evaluator.
func (m *Monitor) evaluate(seq int, t *trace.Trace) eval { return m.ev.evaluate(seq, t) }

func (m *Monitor) finalize(e eval) Verdict { return m.ev.finalize(e) }

// Submit queues a trace for evaluation. It blocks when the buffer is
// full (backpressure instead of dropped traces).
func (m *Monitor) Submit(t *trace.Trace) { m.in <- t }

// Verdicts returns the output stream. It is closed after Close.
func (m *Monitor) Verdicts() <-chan Verdict { return m.out }

// Close stops accepting traces and waits for in-flight evaluations.
func (m *Monitor) Close() {
	close(m.in)
	m.wg.Wait()
}

// Stats returns the running totals: traces evaluated and raw detector
// alarms.
func (m *Monitor) Stats() (total, alarms int) {
	m.history.Lock()
	defer m.history.Unlock()
	return m.history.total, m.history.alarms
}

// HardenedStats returns the hardening counters: health-rejected traces
// and debounce-confirmed alarms.
func (m *Monitor) HardenedStats() (rejected, confirmed int) {
	m.history.Lock()
	defer m.history.Unlock()
	return m.history.rejected, m.history.confirmed
}

// BaselineOffset returns a copy of the current drift-tracking offset in
// score space (nil when re-baselining is off or nothing has been
// adapted yet). Its norm is the amount of slow drift the monitor has
// absorbed instead of alarming on.
func (m *Monitor) BaselineOffset() []float64 { return m.ev.BaselineOffset() }
