package core

import (
	"fmt"
	"sync"

	"emtrust/internal/trace"
)

// Verdict combines both detectors' views of one trace.
type Verdict struct {
	Seq      int
	Time     TimeVerdict
	Spectral SpectralVerdict
}

// Alarm reports whether either detector fired.
func (v Verdict) Alarm() bool { return v.Time.Alarm || v.Spectral.Alarm }

// String renders a one-line monitor log entry.
func (v Verdict) String() string {
	status := "ok"
	if v.Alarm() {
		status = "ALARM"
	}
	return fmt.Sprintf("trace %d: %s distance=%.4g threshold=%.4g spots=%d",
		v.Seq, status, v.Time.Distance, v.Time.Threshold, len(v.Spectral.Spots))
}

// Monitor is the runtime trust evaluation loop of Figure 1: traces from
// the on-chip sensor stream in, verdicts stream out, and the analysis
// runs in parallel with the circuit's normal execution (no performance
// degradation on the monitored chip).
type Monitor struct {
	fp *Fingerprint
	sd *SpectralDetector

	in      chan *trace.Trace
	out     chan Verdict
	wg      sync.WaitGroup
	seq     int
	history struct {
		sync.Mutex
		alarms int
		total  int
	}
}

// NewMonitor builds a runtime monitor from fitted detectors. Either
// detector may be nil to run the other alone.
func NewMonitor(fp *Fingerprint, sd *SpectralDetector, buffer int) (*Monitor, error) {
	if fp == nil && sd == nil {
		return nil, fmt.Errorf("core: monitor needs at least one detector")
	}
	if buffer < 0 {
		buffer = 0
	}
	m := &Monitor{
		fp:  fp,
		sd:  sd,
		in:  make(chan *trace.Trace, buffer),
		out: make(chan Verdict, buffer),
	}
	m.wg.Add(1)
	go m.loop()
	return m, nil
}

func (m *Monitor) loop() {
	defer m.wg.Done()
	defer close(m.out)
	for t := range m.in {
		v := Verdict{Seq: m.seq}
		m.seq++
		if m.fp != nil {
			v.Time = m.fp.Evaluate(t)
		}
		if m.sd != nil {
			v.Spectral = m.sd.Evaluate(t)
		}
		m.history.Lock()
		m.history.total++
		if v.Alarm() {
			m.history.alarms++
		}
		m.history.Unlock()
		m.out <- v
	}
}

// Submit queues a trace for evaluation. It blocks when the buffer is
// full (backpressure instead of dropped traces).
func (m *Monitor) Submit(t *trace.Trace) { m.in <- t }

// Verdicts returns the output stream. It is closed after Close.
func (m *Monitor) Verdicts() <-chan Verdict { return m.out }

// Close stops accepting traces and waits for in-flight evaluations.
func (m *Monitor) Close() {
	close(m.in)
	m.wg.Wait()
}

// Stats returns the running totals.
func (m *Monitor) Stats() (total, alarms int) {
	m.history.Lock()
	defer m.history.Unlock()
	return m.history.total, m.history.alarms
}
