package core

import (
	"fmt"
	"math"

	"emtrust/internal/dsp"
	"emtrust/internal/trace"
)

// A monitor that cannot tell "Trojan activated" from "ADC saturating"
// either floods false alarms or has its thresholds widened until Trojans
// slip through. ChannelHealth is the per-trace sanity gate in front of
// both detectors: it learns the golden channel's amplitude envelope once
// and then rejects traces no detector should be asked to judge — a
// flatlined coil, a saturating converter, a record whose energy left the
// plausible range entirely.

// HealthConfig tunes the pre-check thresholds.
type HealthConfig struct {
	// FlatlineFraction flags a dead channel: peak-to-peak below this
	// fraction of the golden mean peak-to-peak. Default 0.02.
	FlatlineFraction float64
	// MaxClippedRatio flags saturation: more than this fraction of
	// samples pinned at the record's extreme rails. Default 0.01 — a
	// healthy noisy record touches its exact maximum once or twice; a
	// saturating converter (or a burst clipped at the rail) parks there
	// for whole runs.
	MaxClippedRatio float64
	// RMSFactor bounds the plausible energy envelope: accept RMS within
	// [golden/RMSFactor, golden*RMSFactor]. Default 4.
	RMSFactor float64
	// SpikeFactor flags physically impossible samples: anything beyond
	// SpikeFactor times the golden peak amplitude cannot have come from
	// the chip and must be interference in the readout chain. Default
	// 1.5 — generous against aging gain drift, far below any burst.
	SpikeFactor float64
	// MaxSpikeRatio is the tolerated fraction of spike samples before
	// the trace is rejected as burst interference. Default 0.005.
	MaxSpikeRatio float64
}

// DefaultHealthConfig returns the tuning used by the experiments.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		FlatlineFraction: 0.02,
		MaxClippedRatio:  0.01,
		RMSFactor:        4,
		SpikeFactor:      1.5,
		MaxSpikeRatio:    0.005,
	}
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.FlatlineFraction <= 0 {
		c.FlatlineFraction = 0.02
	}
	if c.MaxClippedRatio <= 0 {
		c.MaxClippedRatio = 0.01
	}
	if c.RMSFactor <= 1 {
		c.RMSFactor = 4
	}
	if c.SpikeFactor <= 1 {
		c.SpikeFactor = 1.5
	}
	if c.MaxSpikeRatio <= 0 {
		c.MaxSpikeRatio = 0.005
	}
	return c
}

// ChannelHealth holds the golden channel's amplitude statistics.
type ChannelHealth struct {
	cfg HealthConfig
	// GoldenRMS is the mean golden trace RMS.
	GoldenRMS float64
	// GoldenPTP is the mean golden peak-to-peak swing.
	GoldenPTP float64
	// GoldenPeak is the mean golden peak amplitude (max |sample|).
	GoldenPeak float64
}

// BuildChannelHealth fits the envelope from Trojan-free traces captured
// on the healthy channel.
func BuildChannelHealth(golden []*trace.Trace, cfg HealthConfig) (*ChannelHealth, error) {
	if len(golden) == 0 {
		return nil, fmt.Errorf("core: need golden traces for the channel health model")
	}
	h := &ChannelHealth{cfg: cfg.withDefaults()}
	for _, t := range golden {
		if len(t.Samples) == 0 {
			return nil, fmt.Errorf("core: empty golden trace")
		}
		h.GoldenRMS += dsp.RMS(t.Samples)
		lo, hi := minMax(t.Samples)
		h.GoldenPTP += hi - lo
		h.GoldenPeak += math.Max(math.Abs(lo), math.Abs(hi))
	}
	h.GoldenRMS /= float64(len(golden))
	h.GoldenPTP /= float64(len(golden))
	h.GoldenPeak /= float64(len(golden))
	if h.GoldenRMS == 0 || h.GoldenPTP == 0 {
		return nil, fmt.Errorf("core: golden traces carry no signal")
	}
	return h, nil
}

// Config returns the effective thresholds.
func (h *ChannelHealth) Config() HealthConfig { return h.cfg }

// HealthVerdict is the pre-check outcome for one trace. The zero value
// means "accepted" (or "not checked" on an unhardened monitor).
type HealthVerdict struct {
	// Rejected is set when the trace is unusable for detection.
	Rejected bool
	// Flatline is set when the record is (near-)constant.
	Flatline bool
	// Clipped is the fraction of samples pinned at the extreme rails.
	Clipped float64
	// Spikes is the fraction of samples beyond the plausible amplitude
	// (burst interference).
	Spikes float64
	// RMS is the record's root-mean-square amplitude.
	RMS float64
	// Reason names the failed check ("flatline", "clipping", "burst",
	// "rms"), empty when accepted.
	Reason string
}

// Check runs the pre-check on one trace.
func (h *ChannelHealth) Check(t *trace.Trace) HealthVerdict {
	v := HealthVerdict{}
	if len(t.Samples) == 0 {
		v.Rejected, v.Flatline, v.Reason = true, true, "flatline"
		return v
	}
	v.RMS = dsp.RMS(t.Samples)
	lo, hi := minMax(t.Samples)
	if hi-lo < h.cfg.FlatlineFraction*h.GoldenPTP {
		v.Rejected, v.Flatline, v.Reason = true, true, "flatline"
		return v
	}
	// Saturation: a plateau of samples at the record's own extremes. A
	// healthy noisy record touches its maximum a handful of times; a
	// clipped one parks there.
	rail := math.Max(math.Abs(lo), math.Abs(hi))
	pinned := 0
	for _, s := range t.Samples {
		if math.Abs(s) >= 0.999*rail {
			pinned++
		}
	}
	v.Clipped = float64(pinned) / float64(len(t.Samples))
	if v.Clipped > h.cfg.MaxClippedRatio {
		v.Rejected, v.Reason = true, "clipping"
		return v
	}
	// Burst interference: samples the chip physically cannot emit. The
	// golden peak bounds what the die radiates; anything well past it is
	// the readout chain picking up the environment, and the detectors
	// must not be asked to vote on it.
	limit := h.cfg.SpikeFactor * h.GoldenPeak
	spikes := 0
	for _, s := range t.Samples {
		if math.Abs(s) > limit {
			spikes++
		}
	}
	v.Spikes = float64(spikes) / float64(len(t.Samples))
	if v.Spikes > h.cfg.MaxSpikeRatio {
		v.Rejected, v.Reason = true, "burst"
		return v
	}
	if v.RMS > h.GoldenRMS*h.cfg.RMSFactor || v.RMS < h.GoldenRMS/h.cfg.RMSFactor {
		v.Rejected, v.Reason = true, "rms"
		return v
	}
	return v
}

// Confidence maps a verdict to [0, 1]: 1 for a pristine record, falling
// as the clipped ratio and the RMS deviation approach their rejection
// thresholds, 0 for a rejected record. It is the monitor's
// degraded-confidence signal — a verdict at confidence 0.4 says "the
// channel is sick, weigh this alarm accordingly", instead of a raw
// boolean that hides the sickness.
func (h *ChannelHealth) Confidence(v HealthVerdict) float64 {
	if v.Rejected {
		return 0
	}
	c := 1.0
	c -= 0.5 * v.Clipped / h.cfg.MaxClippedRatio
	c -= 0.5 * v.Spikes / h.cfg.MaxSpikeRatio
	if v.RMS > 0 {
		// Log-space distance to the envelope edge: 0 at golden RMS, 1 at
		// the rejection boundary.
		dev := math.Abs(math.Log(v.RMS/h.GoldenRMS)) / math.Log(h.cfg.RMSFactor)
		c -= 0.5 * dev
	}
	if c < 0.05 {
		c = 0.05
	}
	return c
}

// AcquireHealthy pulls traces from acquire until the pre-check accepts
// one or retries re-acquisitions are exhausted (bounded, so a dead
// channel cannot spin the monitor forever). It returns the last trace,
// its verdict, and how many attempts were rejected.
func (h *ChannelHealth) AcquireHealthy(retries int, acquire func(attempt int) (*trace.Trace, error)) (*trace.Trace, HealthVerdict, int, error) {
	rejected := 0
	for attempt := 0; ; attempt++ {
		t, err := acquire(attempt)
		if err != nil {
			return nil, HealthVerdict{}, rejected, err
		}
		v := h.Check(t)
		if !v.Rejected || attempt >= retries {
			return t, v, rejected, nil
		}
		rejected++
	}
}

func minMax(s []float64) (lo, hi float64) {
	lo, hi = s[0], s[0]
	for _, v := range s[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
