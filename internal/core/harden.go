package core

import (
	"fmt"
	"sync"
)

// This file is the degradation-aware half of the runtime monitor. The
// paper's monitor assumes the coil and its readout chain stay healthy
// for the life of the device; these pieces make the monitor degrade
// gracefully instead of silently misfiring when they don't:
//
//   - DebounceConfig: an m-of-n sliding-window alarm debouncer, so a
//     single noise burst cannot fire the Trojan alarm.
//   - RebaselineConfig: guarded EWMA re-baselining, so the fingerprint
//     centroid may follow gradual gain/offset drift — but adaptation
//     freezes the moment any alarm evidence enters the window, so a
//     Trojan's step change is never absorbed.
//   - MonitorOptions: bundles both with the ChannelHealth pre-check.

// DebounceConfig is the m-of-n sliding-window debouncer: the Trojan
// alarm is confirmed only when at least M of the last N evaluated
// traces raised a raw detector alarm. The zero value disables
// debouncing (every raw alarm is confirmed immediately, the paper's
// behavior).
type DebounceConfig struct {
	M, N int
}

func (c DebounceConfig) enabled() bool { return c.N > 0 }

func (c DebounceConfig) validate() error {
	if !c.enabled() {
		return nil
	}
	if c.M < 1 || c.M > c.N {
		return fmt.Errorf("core: debounce wants 1 <= M <= N, got %d-of-%d", c.M, c.N)
	}
	return nil
}

// WindowState is the debouncer's view attached to one verdict. The zero
// value (N == 0) means debouncing is off.
type WindowState struct {
	// M and N echo the configuration.
	M, N int
	// Alarms is how many of the last N evaluated traces raw-alarmed.
	Alarms int
	// Confirmed reports Alarms >= M.
	Confirmed bool
}

// debouncer keeps the raw-alarm ring buffer. Health-rejected traces are
// not pushed: they carry no detector evidence either way.
type debouncer struct {
	cfg    DebounceConfig
	ring   []bool
	pos    int
	filled int
	alarms int
}

func newDebouncer(cfg DebounceConfig) *debouncer {
	return &debouncer{cfg: cfg, ring: make([]bool, cfg.N)}
}

func (d *debouncer) push(alarm bool) WindowState {
	if d.filled == len(d.ring) {
		if d.ring[d.pos] {
			d.alarms--
		}
	} else {
		d.filled++
	}
	d.ring[d.pos] = alarm
	if alarm {
		d.alarms++
	}
	d.pos = (d.pos + 1) % len(d.ring)
	return d.state()
}

func (d *debouncer) state() WindowState {
	return WindowState{
		M: d.cfg.M, N: d.cfg.N,
		Alarms:    d.alarms,
		Confirmed: d.alarms >= d.cfg.M,
	}
}

// RebaselineConfig enables slow-drift tracking: after each quiet trace
// the golden score baseline moves toward the observed score by weight
// Alpha (an EWMA). Quiet means the trace passed the health check, raised
// no raw alarm, and the debounce window holds no alarms at all — any
// alarm evidence freezes adaptation, erring toward false alarms rather
// than toward absorbing a Trojan. Alpha 0 (the zero value) disables
// re-baselining, freezing the fingerprint for the device's lifetime.
type RebaselineConfig struct {
	Alpha float64
}

func (c RebaselineConfig) enabled() bool { return c.Alpha > 0 }

func (c RebaselineConfig) validate() error {
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("core: rebaseline alpha %g outside [0, 1]", c.Alpha)
	}
	return nil
}

// rebaseliner tracks the EWMA offset between the live score stream and
// the golden centroid. It is updated only from the in-order emitter;
// the mutex covers concurrent BaselineOffset reads.
type rebaseliner struct {
	mu     sync.Mutex
	alpha  float64
	offset []float64
}

// shift returns score minus the current baseline offset.
func (r *rebaseliner) shift(score []float64) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.offset == nil {
		return score
	}
	out := make([]float64, len(score))
	for i := range score {
		out[i] = score[i] - r.offset[i]
	}
	return out
}

// update moves the offset toward (score - centroid) by alpha.
func (r *rebaseliner) update(score, centroid []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.offset == nil {
		r.offset = make([]float64, len(score))
	}
	for i := range r.offset {
		r.offset[i] = (1-r.alpha)*r.offset[i] + r.alpha*(score[i]-centroid[i])
	}
}

func (r *rebaseliner) snapshot() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, len(r.offset))
	copy(out, r.offset)
	return out
}

// MonitorOptions configures a monitor beyond the detector pair. The
// zero value reproduces the paper's monitor exactly: no health gate, no
// debouncing, a frozen baseline, confidence pinned at 1.
type MonitorOptions struct {
	// Buffer is the submit/verdict channel depth.
	Buffer int
	// Workers sizes the evaluation pool; <= 1 is serial.
	Workers int
	// Health, when set, pre-checks every trace and rejects unusable ones
	// before either detector sees them.
	Health *ChannelHealth
	// Debounce is the m-of-n confirmation window.
	Debounce DebounceConfig
	// Rebaseline is the guarded slow-drift tracker.
	Rebaseline RebaselineConfig
}

// HardenedOptions returns the degradation-aware tuning used by the
// experiments: the given health gate, a 2-of-4 debounce window, and
// alpha 0.5 guarded re-baselining. The alpha is deliberately fast: the
// EWMA's tracking lag is roughly drift-slope/alpha, and a lag that
// reaches the Eq. (1) threshold starts an alarm run that freezes
// adaptation for good (the freeze guard cannot tell tracked-too-slowly
// drift from a Trojan). The guard makes a fast alpha safe — adaptation
// only ever runs on fully quiet windows, so a Trojan's step never
// feeds the EWMA no matter how fast it moves.
func HardenedOptions(h *ChannelHealth) MonitorOptions {
	return MonitorOptions{
		Buffer:     8,
		Workers:    1,
		Health:     h,
		Debounce:   DebounceConfig{M: 2, N: 4},
		Rebaseline: RebaselineConfig{Alpha: 0.5},
	}
}
