package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// The persisted golden models are the monitor's long-lived state: they
// outlive restarts and may be copied between hosts, so a corrupt or
// hostile file must come back as an error from Load, never as a model
// that panics the analysis module on its first trace. The fuzzers below
// push arbitrary bytes through both loaders and, whenever a load
// succeeds, immediately exercise the loaded model the way the monitor
// would.

// savedFingerprint builds a small valid fingerprint and returns its
// serialized form (the seed corpus anchor).
func savedFingerprint(tb testing.TB) []byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(41))
	fp, err := BuildFingerprint(goldenSet(rng, 8, 256), FingerprintConfig{
		Segments: 8, Components: 3, ThresholdMargin: 1, IncludeResidual: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fp.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func savedSpectral(tb testing.TB) []byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	sd, err := BuildSpectralDetector(goldenSet(rng, 6, 512), DefaultSpectralConfig())
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sd.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzLoadFingerprint(f *testing.F) {
	valid := savedFingerprint(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-object
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"segments":4,"mean":[1,2],"components":[[1,2]],"variances":[1],"golden_scores":[[0.5]],"centroid":[0.5]}`))
	f.Add([]byte(`{"version":1,"segments":2,"mean":[1,2],"components":[[1,2]],"variances":[1],"golden_scores":[[0.5,0.1,0.2]],"centroid":[0.5],"residual":true}`))
	f.Add([]byte(`{"version":1,"segments":2,"mean":[1,2],"components":[[1,2]],"variances":[1],"golden_scores":[[0.5]],"centroid":[0.5,0.9,0.1]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		fp, err := LoadFingerprint(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A load that succeeds must hand back a model the monitor can use
		// without crashing, whatever the trace looks like.
		rng := rand.New(rand.NewSource(1))
		for _, n := range []int{0, 1, 257} {
			tr := synthTrace(rng, n, 0)
			v := fp.Evaluate(tr)
			if v.Threshold != fp.Threshold {
				t.Fatalf("verdict threshold %g, model %g", v.Threshold, fp.Threshold)
			}
			fp.CentroidDistance(tr)
		}
		// And it must round-trip.
		var buf bytes.Buffer
		if err := fp.Save(&buf); err != nil {
			t.Fatalf("re-saving a loaded fingerprint: %v", err)
		}
		if _, err := LoadFingerprint(&buf); err != nil {
			t.Fatalf("re-loading a saved fingerprint: %v", err)
		}
	})
}

func FuzzLoadSpectralDetector(f *testing.F) {
	valid := savedSpectral(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"envelope":[1,2,3],"mean":[1],"floor":0.1,"df":1000}`))
	f.Add([]byte(`{"version":1,"window":9999,"envelope":[0.1],"floor":-5,"df":0}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sd, err := LoadSpectralDetector(bytes.NewReader(data))
		if err != nil {
			return
		}
		rng := rand.New(rand.NewSource(2))
		for _, n := range []int{0, 1, 512, 4096} {
			v := sd.Evaluate(synthTrace(rng, n, 0.5))
			v.StrongestSpot()
		}
		var buf bytes.Buffer
		if err := sd.Save(&buf); err != nil {
			t.Fatalf("re-saving a loaded detector: %v", err)
		}
		if _, err := LoadSpectralDetector(&buf); err != nil {
			t.Fatalf("re-loading a saved detector: %v", err)
		}
	})
}
