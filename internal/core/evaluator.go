package core

import (
	"fmt"

	"emtrust/internal/stats"
	"emtrust/internal/trace"
)

// Evaluator is the runtime verdict pipeline — health gate, both
// detectors, the m-of-n debounce window, and guarded EWMA
// re-baselining — run synchronously on the calling goroutine. It is the
// engine inside Monitor, exposed directly for callers that multiplex
// many monitored devices over few goroutines (the fleet service runs
// one Evaluator per die inside a shard worker; spawning a Monitor's
// goroutine trio per die would not scale to thousands of dies).
//
// An Evaluator is stateful (debounce ring, drift baseline, sequence
// counter) and must not be used from multiple goroutines concurrently.
type Evaluator struct {
	fp     *Fingerprint
	sd     *SpectralDetector
	health *ChannelHealth
	db     *debouncer
	rb     *rebaseliner
	seq    int
	// feat/score/recon back the allocation-free EvalChecked path. They
	// are confined to the synchronous Eval/EvalChecked entry points —
	// Monitor's concurrent worker pool goes through evaluate, which
	// never touches them.
	feat, score, recon []float64
}

// NewEvaluator builds the synchronous pipeline from fitted detectors.
// Options are interpreted as in NewMonitorWith; Buffer and Workers are
// ignored (there is no pool — the caller is the worker).
func NewEvaluator(fp *Fingerprint, sd *SpectralDetector, opts MonitorOptions) (*Evaluator, error) {
	if fp == nil && sd == nil {
		return nil, fmt.Errorf("core: evaluator needs at least one detector")
	}
	if err := opts.Debounce.validate(); err != nil {
		return nil, err
	}
	if err := opts.Rebaseline.validate(); err != nil {
		return nil, err
	}
	if opts.Rebaseline.enabled() && fp == nil {
		return nil, fmt.Errorf("core: re-baselining needs the time-domain fingerprint")
	}
	e := &Evaluator{fp: fp, sd: sd, health: opts.Health}
	if opts.Debounce.enabled() {
		e.db = newDebouncer(opts.Debounce)
	}
	if opts.Rebaseline.enabled() {
		e.rb = &rebaseliner{alpha: opts.Rebaseline.Alpha}
	}
	return e, nil
}

// Eval runs the full pipeline on one trace and returns its verdict.
// Sequence numbers are stamped in call order.
func (e *Evaluator) Eval(t *trace.Trace) Verdict {
	var hv HealthVerdict
	if e.health != nil {
		hv = e.health.Check(t)
	}
	return e.EvalChecked(t, hv, nil)
}

// EvalChecked is Eval for callers that already ran the health gate on
// this trace (and possibly extracted its features, sparing the
// pipeline a second extraction): hv must be this evaluator's health
// check result for t — pass a zero HealthVerdict when the evaluator
// was built without a health gate — and features, when non-nil, must
// be the trace's feature vector under the fingerprint's extractor.
// The verdict is bit-identical to Eval's. Score buffers are
// evaluator-owned and reused across calls; the returned Verdict holds
// no references into them, so the steady-state path allocates nothing.
func (e *Evaluator) EvalChecked(t *trace.Trace, hv HealthVerdict, features []float64) Verdict {
	v := Verdict{Seq: e.seq, Confidence: 1}
	e.seq++
	if e.health != nil {
		v.Health = hv
		v.Confidence = e.health.Confidence(hv)
		if hv.Rejected {
			if e.db != nil {
				v.Window = e.db.state() // window unchanged: no evidence either way
			}
			return v
		}
	}
	var score []float64
	if e.fp != nil {
		if features == nil {
			e.feat = e.fp.Extractor.ExtractInto(e.feat, t)
			features = e.feat
		}
		e.score, e.recon = e.fp.scoreInto(e.score, e.recon, features)
		score = e.score
		if e.rb == nil {
			d := stats.MinDistanceToSet(score, e.fp.Golden)
			v.Time = TimeVerdict{Distance: d, Threshold: e.fp.Threshold, Alarm: d > e.fp.Threshold}
		}
	}
	if e.sd != nil {
		v.Spectral = e.sd.Evaluate(t)
	}
	if e.rb != nil && score != nil {
		// rb.shift either returns score itself (no offset yet) or a fresh
		// shifted copy; neither path retains the reused buffer.
		d := stats.MinDistanceToSet(e.rb.shift(score), e.fp.Golden)
		v.Time = TimeVerdict{Distance: d, Threshold: e.fp.Threshold, Alarm: d > e.fp.Threshold}
	}
	raw := v.Time.Alarm || v.Spectral.Alarm
	if e.db != nil {
		v.Window = e.db.push(raw)
	}
	// Guarded re-baselining, as in finalize: adapt only on quiet traces
	// with an all-clear debounce window.
	if e.rb != nil && score != nil && !raw && v.Window.Alarms == 0 {
		e.rb.update(score, e.fp.Centroid)
	}
	return v
}

// evaluate is the stateless half: the health pre-check and both
// detectors. With re-baselining enabled the time-domain distance
// depends on pipeline state, so only the projected score is computed
// here; finalize applies the baseline. Monitor calls this from its
// worker pool, so it must not touch db/rb state.
func (e *Evaluator) evaluate(seq int, t *trace.Trace) eval {
	ev := eval{v: Verdict{Seq: seq, Confidence: 1}}
	if e.health != nil {
		ev.v.Health = e.health.Check(t)
		ev.v.Confidence = e.health.Confidence(ev.v.Health)
		if ev.v.Health.Rejected {
			return ev // no usable evidence; detectors skipped
		}
	}
	if e.fp != nil {
		if e.rb != nil {
			ev.score = e.fp.Project(t)
		} else {
			ev.v.Time = e.fp.Evaluate(t)
		}
	}
	if e.sd != nil {
		ev.v.Spectral = e.sd.Evaluate(t)
	}
	return ev
}

// finalize applies the stateful hardening stages in submission order:
// baseline-shifted distance, debounce window, and the guarded EWMA
// update.
func (e *Evaluator) finalize(ev eval) Verdict {
	v := ev.v
	if v.Health.Rejected {
		if e.db != nil {
			v.Window = e.db.state() // window unchanged: no evidence either way
		}
		return v
	}
	if e.rb != nil && ev.score != nil {
		d := stats.MinDistanceToSet(e.rb.shift(ev.score), e.fp.Golden)
		v.Time = TimeVerdict{Distance: d, Threshold: e.fp.Threshold, Alarm: d > e.fp.Threshold}
	}
	raw := v.Time.Alarm || v.Spectral.Alarm
	if e.db != nil {
		v.Window = e.db.push(raw)
	}
	// Guarded re-baselining: adapt only on quiet traces (no raw alarm —
	// an alarming trace never feeds the baseline, so a Trojan's own
	// signature is never averaged in) and only while the debounce window
	// holds no alarm evidence at all. A marginal Trojan fires on some
	// traces and sits just under threshold on others; freezing on any
	// window evidence keeps those sub-threshold activations out of the
	// baseline too, instead of slowly averaging the Trojan in between
	// its own alarms.
	if e.rb != nil && ev.score != nil && !raw && v.Window.Alarms == 0 {
		e.rb.update(ev.score, e.fp.Centroid)
	}
	return v
}

// Fingerprint returns the fitted time-domain detector (nil when running
// spectral-only).
func (e *Evaluator) Fingerprint() *Fingerprint { return e.fp }

// BaselineOffset returns a copy of the current drift-tracking offset in
// score space (nil when re-baselining is off or nothing has been
// adapted yet).
func (e *Evaluator) BaselineOffset() []float64 {
	if e.rb == nil {
		return nil
	}
	off := e.rb.snapshot()
	if len(off) == 0 {
		return nil
	}
	return off
}
