//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. The
// allocation gates skip under it: race instrumentation allocates on
// its own, so AllocsPerRun counts the detector, not the verdict path.
const raceEnabled = true
