package core

import (
	"encoding/json"
	"fmt"
	"io"

	"emtrust/internal/dsp"
	"emtrust/internal/stats"
)

// The golden models are fitted once per deployed chip and then used for
// the device's lifetime, so they must survive restarts of the analysis
// module. The JSON forms below are versioned and self-contained.

const persistVersion = 1

type fingerprintJSON struct {
	Version    int         `json:"version"`
	Segments   int         `json:"segments"`
	Mean       []float64   `json:"mean"`
	Components [][]float64 `json:"components"`
	Variances  []float64   `json:"variances"`
	TotalVar   float64     `json:"total_var"`
	Golden     [][]float64 `json:"golden_scores"`
	Threshold  float64     `json:"threshold"`
	Centroid   []float64   `json:"centroid"`
	Residual   bool        `json:"residual"`
}

// Save writes the fingerprint as versioned JSON.
func (fp *Fingerprint) Save(w io.Writer) error {
	j := fingerprintJSON{
		Version:   persistVersion,
		Segments:  fp.Extractor.Segments,
		Mean:      fp.PCA.Mean,
		Variances: fp.PCA.Variances,
		TotalVar:  fp.PCA.TotalVar,
		Threshold: fp.Threshold,
		Centroid:  fp.Centroid,
		Residual:  fp.residual,
	}
	for i := 0; i < fp.PCA.Components.Rows; i++ {
		row := make([]float64, fp.PCA.Components.Cols)
		copy(row, fp.PCA.Components.Row(i))
		j.Components = append(j.Components, row)
	}
	for i := 0; i < fp.Golden.Rows; i++ {
		row := make([]float64, fp.Golden.Cols)
		copy(row, fp.Golden.Row(i))
		j.Golden = append(j.Golden, row)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(j)
}

// LoadFingerprint reads a fingerprint saved by Save.
func LoadFingerprint(r io.Reader) (*Fingerprint, error) {
	var j fingerprintJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("core: decoding fingerprint: %w", err)
	}
	if j.Version != persistVersion {
		return nil, fmt.Errorf("core: fingerprint version %d, want %d", j.Version, persistVersion)
	}
	if len(j.Components) == 0 || len(j.Golden) == 0 || len(j.Mean) == 0 {
		return nil, fmt.Errorf("core: fingerprint file incomplete")
	}
	// Cross-field consistency: every dimension below feeds a routine that
	// panics on mismatch (PCA.Project, Euclidean), so a corrupt or
	// hand-edited file must be refused here, not crash the monitor later.
	d := len(j.Mean)
	seg := j.Segments
	if seg <= 0 {
		seg = 32 // the extractor's default resolution
	}
	if seg != d {
		return nil, fmt.Errorf("core: fingerprint has %d segments but a %d-dim mean", seg, d)
	}
	comp := stats.NewMatrix(len(j.Components), d)
	for i, row := range j.Components {
		if len(row) != d {
			return nil, fmt.Errorf("core: component %d has %d dims, want %d", i, len(row), d)
		}
		copy(comp.Row(i), row)
	}
	if len(j.Variances) != len(j.Components) {
		return nil, fmt.Errorf("core: %d variances for %d components", len(j.Variances), len(j.Components))
	}
	scoreDim := len(j.Components)
	if j.Residual {
		scoreDim++
	}
	k := len(j.Golden[0])
	if k != scoreDim {
		return nil, fmt.Errorf("core: golden scores are %d-dim, want %d (%d components, residual=%t)",
			k, scoreDim, len(j.Components), j.Residual)
	}
	golden := stats.NewMatrix(len(j.Golden), k)
	for i, row := range j.Golden {
		if len(row) != k {
			return nil, fmt.Errorf("core: golden score %d has %d dims, want %d", i, len(row), k)
		}
		copy(golden.Row(i), row)
	}
	if len(j.Centroid) != k {
		return nil, fmt.Errorf("core: centroid is %d-dim, want %d", len(j.Centroid), k)
	}
	fp := &Fingerprint{
		Extractor: FeatureExtractor{Segments: j.Segments},
		PCA: &stats.PCA{
			Mean:       j.Mean,
			Components: comp,
			Variances:  j.Variances,
			TotalVar:   j.TotalVar,
		},
		Golden:    golden,
		Threshold: j.Threshold,
		Centroid:  j.Centroid,
		residual:  j.Residual,
	}
	return fp, nil
}

type spectralJSON struct {
	Version     int       `json:"version"`
	Window      int       `json:"window"`
	Margin      float64   `json:"margin"`
	FloorFactor float64   `json:"floor_factor"`
	Envelope    []float64 `json:"envelope"`
	Mean        []float64 `json:"mean"`
	Floor       float64   `json:"floor"`
	DF          float64   `json:"df"`
}

// Save writes the spectral detector as versioned JSON.
func (d *SpectralDetector) Save(w io.Writer) error {
	j := spectralJSON{
		Version:     persistVersion,
		Window:      int(d.cfg.Window),
		Margin:      d.cfg.Margin,
		FloorFactor: d.cfg.FloorFactor,
		Envelope:    d.Envelope,
		Mean:        d.Mean,
		Floor:       d.Floor,
		DF:          d.DF,
	}
	return json.NewEncoder(w).Encode(j)
}

// LoadSpectralDetector reads a detector saved by Save.
func LoadSpectralDetector(r io.Reader) (*SpectralDetector, error) {
	var j spectralJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("core: decoding spectral detector: %w", err)
	}
	if j.Version != persistVersion {
		return nil, fmt.Errorf("core: spectral detector version %d, want %d", j.Version, persistVersion)
	}
	if len(j.Envelope) == 0 {
		return nil, fmt.Errorf("core: spectral detector file incomplete")
	}
	if len(j.Mean) != 0 && len(j.Mean) != len(j.Envelope) {
		return nil, fmt.Errorf("core: spectral mean is %d bins, envelope %d", len(j.Mean), len(j.Envelope))
	}
	return &SpectralDetector{
		cfg: SpectralConfig{
			Window:      dsp.Window(j.Window),
			Margin:      j.Margin,
			FloorFactor: j.FloorFactor,
		},
		Envelope: j.Envelope,
		Mean:     j.Mean,
		Floor:    j.Floor,
		DF:       j.DF,
	}, nil
}
