package core

import (
	"fmt"
	"math"
	"sync"

	"emtrust/internal/dsp"
	"emtrust/internal/trace"
)

// SpectralConfig sets the frequency-domain detector of Section III-E.
type SpectralConfig struct {
	// Window tapers traces before the FFT.
	Window dsp.Window
	// Margin is the relative amplitude increase over the golden
	// envelope that flags a spot (e.g. 0.5 = +50%).
	Margin float64
	// FloorFactor sets the detection floor as a multiple of the median
	// golden bin amplitude; spots below the floor are ignored as noise.
	FloorFactor float64
}

// DefaultSpectralConfig returns the detector tuning used by the
// experiments.
func DefaultSpectralConfig() SpectralConfig {
	return SpectralConfig{Window: dsp.Hann, Margin: 0.5, FloorFactor: 6}
}

// SpectralDetector holds the golden spectral envelope: per-bin maxima
// over the golden captures, against which runtime spectra are compared
// for "extra frequency spots or increased amplitude".
type SpectralDetector struct {
	cfg      SpectralConfig
	Envelope []float64 // per-bin max golden amplitude
	Mean     []float64 // per-bin mean golden amplitude (for reporting)
	Floor    float64
	DF       float64
	// scratch pools per-call amplitude buffers so the clean verdict
	// path allocates nothing at steady state, even with the monitor's
	// worker pool evaluating concurrently on one shared detector.
	scratch sync.Pool
}

// BuildSpectralDetector fits the golden envelope. All traces must share
// one sample rate and length.
func BuildSpectralDetector(golden []*trace.Trace, cfg SpectralConfig) (*SpectralDetector, error) {
	if len(golden) == 0 {
		return nil, fmt.Errorf("core: need golden traces for the spectral detector")
	}
	if cfg.Margin <= 0 {
		cfg.Margin = 0.5
	}
	if cfg.FloorFactor <= 0 {
		cfg.FloorFactor = 6
	}
	var env, mean, amp []float64
	var df float64
	for _, t := range golden {
		p := dsp.PlanForLength(len(t.Samples))
		amp = p.SpectrumInto(amp, t.Samples, cfg.Window)
		if env == nil {
			env = make([]float64, len(amp))
			mean = make([]float64, len(amp))
			df = 1 / (float64(p.Size()) * t.Dt)
		}
		if len(amp) != len(env) {
			return nil, fmt.Errorf("core: golden traces disagree on spectrum length (%d vs %d)", len(amp), len(env))
		}
		for i, a := range amp {
			if a > env[i] {
				env[i] = a
			}
			mean[i] += a
		}
	}
	for i := range mean {
		mean[i] /= float64(len(golden))
	}
	d := &SpectralDetector{cfg: cfg, Envelope: env, Mean: mean, DF: df}
	d.Floor = cfg.FloorFactor * median(mean)
	return d, nil
}

func median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	cp := make([]float64, len(x))
	copy(cp, x)
	// insertion-free: use the stats package? keep local to avoid a
	// dependency cycle risk; simple selection is fine at spectrum size.
	quickMedian(cp)
	return cp[len(cp)/2]
}

// quickMedian partially sorts cp so the middle element is the median.
func quickMedian(cp []float64) {
	k := len(cp) / 2
	lo, hi := 0, len(cp)-1
	for lo < hi {
		pivot := cp[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for cp[i] < pivot {
				i++
			}
			for cp[j] > pivot {
				j--
			}
			if i <= j {
				cp[i], cp[j] = cp[j], cp[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
}

// Spot is one offending frequency bin.
type Spot struct {
	Bin       int
	Frequency float64
	Amplitude float64
	Golden    float64 // envelope amplitude at the same bin
	New       bool    // true when the golden envelope was below the floor here
}

// SpectralVerdict is the outcome of the frequency-domain detector.
type SpectralVerdict struct {
	Spots []Spot
	Alarm bool
}

// Evaluate compares one trace's spectrum against the golden envelope.
// The spectrum lands in a pooled buffer from the planned engine, so a
// clean verdict allocates nothing; Spots are allocated only on alarm.
// Safe for concurrent use on a shared detector.
func (d *SpectralDetector) Evaluate(t *trace.Trace) SpectralVerdict {
	bp, _ := d.scratch.Get().(*[]float64)
	if bp == nil {
		bp = new([]float64)
	}
	p := dsp.PlanForLength(len(t.Samples))
	amp := p.SpectrumInto(*bp, t.Samples, d.cfg.Window)
	df := 0.0
	if len(t.Samples) > 0 {
		df = 1 / (float64(p.Size()) * t.Dt)
	}
	var v SpectralVerdict
	n := len(amp)
	if n > len(d.Envelope) {
		n = len(d.Envelope)
	}
	for i := 1; i < n; i++ { // skip DC
		a := amp[i]
		if a < d.Floor {
			continue
		}
		g := d.Envelope[i]
		if a <= g*(1+d.cfg.Margin) {
			continue // within the golden envelope's margin
		}
		v.Spots = append(v.Spots, Spot{
			Bin: i, Frequency: float64(i) * df, Amplitude: a, Golden: g,
			New: g < d.Floor,
		})
	}
	v.Alarm = len(v.Spots) > 0
	*bp = amp
	d.scratch.Put(bp)
	return v
}

// StrongestSpot returns the spot with the largest amplitude excess over
// the golden envelope, or a zero Spot when the verdict is clean.
func (v SpectralVerdict) StrongestSpot() Spot {
	var best Spot
	bestExcess := math.Inf(-1)
	for _, s := range v.Spots {
		if e := s.Amplitude - s.Golden; e > bestExcess {
			bestExcess = e
			best = s
		}
	}
	return best
}
