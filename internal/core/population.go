package core

import (
	"math"

	"emtrust/internal/stats"
)

// Population-level self-reference: the cross-die analog of
// SelfReference's neighbor median. At fleet scale every die carries a
// reference it was never fabricated with — the rest of the population
// at the same instant. A Trojan activating on one die moves that die's
// detector statistic away from the fleet; a common-mode effect (an
// ambient temperature swing, a firmware rollout changing the workload
// phase, seasonal supply drift) moves every die together and cancels in
// the cross-die comparison. What survives cancellation is ranked with
// Benjamini-Hochberg false-discovery control, so the fleet alarm list
// is a triage queue with a bounded expected fraction of clean dies on
// it, instead of alpha*N per-die false alarms.

// PopulationConfig tunes the cross-die detector.
type PopulationConfig struct {
	// MinCohort is the fewest eligible dies for which common-mode
	// cancellation is applied; a smaller cohort has no trustworthy
	// median and the common mode is taken as 0. Default 8.
	MinCohort int
	// Sigma is the per-die score spread under the clean hypothesis
	// after cancellation (an aggregator feeding EWMA-smoothed z-scores
	// passes the EWMA's effective sigma). Default 1.
	Sigma float64
	// FDR is the Benjamini-Hochberg false discovery rate of the fleet
	// alarm set. Default 0.05.
	FDR float64
}

// DefaultPopulationConfig returns the tuning used by the fleet service.
func DefaultPopulationConfig() PopulationConfig {
	return PopulationConfig{MinCohort: 8, Sigma: 1, FDR: 0.05}
}

func (c PopulationConfig) withDefaults() PopulationConfig {
	if c.MinCohort <= 0 {
		c.MinCohort = 8
	}
	if c.Sigma <= 0 {
		c.Sigma = 1
	}
	if c.FDR <= 0 || c.FDR >= 1 {
		c.FDR = 0.05
	}
	return c
}

// PopulationVerdict is one ranking pass over the fleet. Slices parallel
// the scores passed to Rank.
type PopulationVerdict struct {
	// CommonMode is the median score of the eligible cohort (0 when the
	// cohort is below MinCohort).
	CommonMode float64
	// Adjusted is score minus common mode (NaN for ineligible dies).
	Adjusted []float64
	// P is the one-sided p-value of Adjusted against the clean
	// hypothesis N(0, Sigma) (1 for ineligible dies).
	P []float64
	// Flag marks the Benjamini-Hochberg rejections at the configured
	// FDR — the fleet's alarm set.
	Flag []bool
	// Threshold is the largest rejected p-value (0 when nothing is
	// flagged).
	Threshold float64
	// Eligible counts the dies in the test family.
	Eligible int
}

// PopulationReference ranks per-die detector statistics against the
// live population. It is stateless: callers own the per-die score
// accumulation (EWMAs, sample counts) and pass one frame per pass.
type PopulationReference struct {
	cfg PopulationConfig
}

// NewPopulationReference builds the detector (zero-value fields take
// defaults).
func NewPopulationReference(cfg PopulationConfig) *PopulationReference {
	return &PopulationReference{cfg: cfg.withDefaults()}
}

// Config returns the effective tuning.
func (p *PopulationReference) Config() PopulationConfig { return p.cfg }

// Rank cancels the common mode and flags the FDR-controlled alarm set.
// scores[i] is die i's current detector statistic (a z-like score where
// larger means more Trojan-like); eligible[i] gates die i into the test
// family — callers exclude quarantined dies and dies with too few
// verdicts. A nil eligible slice includes every die. Non-finite scores
// are ineligible regardless.
func (p *PopulationReference) Rank(scores []float64, eligible []bool) PopulationVerdict {
	v := PopulationVerdict{
		Adjusted: make([]float64, len(scores)),
		P:        make([]float64, len(scores)),
		Flag:     make([]bool, len(scores)),
	}
	in := func(i int) bool {
		if eligible != nil && !eligible[i] {
			return false
		}
		return !math.IsNaN(scores[i]) && !math.IsInf(scores[i], 0)
	}
	cohort := make([]float64, 0, len(scores))
	for i := range scores {
		if in(i) {
			cohort = append(cohort, scores[i])
		}
	}
	v.Eligible = len(cohort)
	if v.Eligible >= p.cfg.MinCohort {
		v.CommonMode = median(cohort)
	}
	// p-values for the eligible family only: an ineligible die must not
	// dilute the Benjamini-Hochberg family size.
	family := make([]float64, 0, v.Eligible)
	idx := make([]int, 0, v.Eligible)
	for i := range scores {
		if !in(i) {
			v.Adjusted[i] = math.NaN()
			v.P[i] = 1
			continue
		}
		v.Adjusted[i] = scores[i] - v.CommonMode
		v.P[i] = stats.NormalSF(v.Adjusted[i] / p.cfg.Sigma)
		family = append(family, v.P[i])
		idx = append(idx, i)
	}
	reject, thr := stats.BenjaminiHochberg(family, p.cfg.FDR)
	v.Threshold = thr
	for k, r := range reject {
		if r {
			v.Flag[idx[k]] = true
		}
	}
	return v
}
