package core

import (
	"math"
	"math/rand"
	"testing"

	"emtrust/internal/trace"
)

// Adversarial coverage for the hardening stages: the debouncer at its
// m-of-n boundaries, the health gate swallowing unusable traces, and
// the guarded re-baseliner refusing to absorb a Trojan's step change.

func TestDebouncerBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		m, n    int
		alarms  []bool
		confirm []bool // expected Confirmed after each push
	}{
		{
			name: "1-of-1 tracks raw",
			m:    1, n: 1,
			alarms:  []bool{false, true, false, true},
			confirm: []bool{false, true, false, true},
		},
		{
			name: "2-of-3 single blip suppressed",
			m:    2, n: 3,
			alarms:  []bool{true, false, false, false},
			confirm: []bool{false, false, false, false},
		},
		{
			name: "2-of-3 confirms on second hit",
			m:    2, n: 3,
			alarms:  []bool{true, false, true, false, false},
			confirm: []bool{false, false, true, false, false},
		},
		{
			name: "3-of-3 needs a full window",
			m:    3, n: 3,
			alarms:  []bool{true, true, false, true, true, true},
			confirm: []bool{false, false, false, false, false, true},
		},
		{
			name: "2-of-5 old alarms age out",
			m:    2, n: 5,
			// Two early alarms confirm; once the window slides past the
			// first of them the count drops below M and must release.
			alarms:  []bool{true, true, false, false, false, false, false},
			confirm: []bool{false, true, true, true, true, false, false},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newDebouncer(DebounceConfig{M: tc.m, N: tc.n})
			for i, a := range tc.alarms {
				w := d.push(a)
				if w.Confirmed != tc.confirm[i] {
					t.Fatalf("push %d (alarm=%t): confirmed=%t, want %t (window %d/%d)",
						i, a, w.Confirmed, tc.confirm[i], w.Alarms, w.N)
				}
				if w.M != tc.m || w.N != tc.n {
					t.Fatalf("window echoes %d-of-%d, want %d-of-%d", w.M, w.N, tc.m, tc.n)
				}
			}
		})
	}
}

func TestMonitorOptionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	fp, err := BuildFingerprint(goldenSet(rng, 8, 256), DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts MonitorOptions
	}{
		{"M zero", MonitorOptions{Debounce: DebounceConfig{M: 0, N: 3}}},
		{"M above N", MonitorOptions{Debounce: DebounceConfig{M: 4, N: 3}}},
		{"negative alpha", MonitorOptions{Rebaseline: RebaselineConfig{Alpha: -0.1}}},
		{"alpha above one", MonitorOptions{Rebaseline: RebaselineConfig{Alpha: 1.5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewMonitorWith(fp, nil, tc.opts); err == nil {
				t.Fatal("want a configuration error")
			}
		})
	}
	// Re-baselining without a time-domain fingerprint is meaningless.
	sd, err := BuildSpectralDetector(goldenSet(rng, 8, 512), DefaultSpectralConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMonitorWith(nil, sd, MonitorOptions{Rebaseline: RebaselineConfig{Alpha: 0.1}}); err == nil {
		t.Fatal("rebaseline without fingerprint must error")
	}
}

// pulseTrace synthesizes a spiky EM-style record: a quiet noise floor
// with a tall current pulse every 32 samples, crest factor around 5
// like the simulated die's near-field waveform. The health gate's
// spike check is calibrated against the golden peak, so its interplay
// with the RMS envelope only shows up at a realistic crest factor — a
// low-crest stimulus trips the spike check long before the envelope.
func pulseTrace(rng *rand.Rand, n int) *trace.Trace {
	s := make([]float64, n)
	for i := range s {
		s[i] = 0.05 * rng.NormFloat64()
		if i%32 == 16 {
			s[i] += 1 + 0.02*rng.NormFloat64()
		}
	}
	return &trace.Trace{Dt: testDt, Samples: s}
}

func pulseGoldenSet(rng *rand.Rand, count, n int) []*trace.Trace {
	out := make([]*trace.Trace, count)
	for i := range out {
		out[i] = pulseTrace(rng, n)
	}
	return out
}

func TestChannelHealthChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	golden := pulseGoldenSet(rng, 10, 512)
	h, err := BuildChannelHealth(golden, DefaultHealthConfig())
	if err != nil {
		t.Fatal(err)
	}
	flat := &trace.Trace{Dt: testDt, Samples: make([]float64, 512)}
	// Saturation: every current pulse clamps at half height, parking 16
	// of 512 samples at the record's own rail.
	clipped := pulseTrace(rng, 512)
	for i := range clipped.Samples {
		if clipped.Samples[i] > 0.5 {
			clipped.Samples[i] = 0.5
		} else if clipped.Samples[i] < -0.5 {
			clipped.Samples[i] = -0.5
		}
	}
	// Burst interference: a short run of samples far beyond the golden
	// peak, with varied magnitudes so no clipping plateau forms.
	burst := pulseTrace(rng, 512)
	for j := 0; j < 8; j++ {
		sign := 1.0
		if j%2 == 1 {
			sign = -1
		}
		burst.Samples[100+j] = sign * (2.5 + rng.Float64())
	}
	// RMS high without spikes: a sine carries four-plus times the golden
	// energy while its peak stays under the spike limit — only possible
	// because the golden waveform's crest factor is high. Noise breaks
	// the smooth crest so no samples pin at the record maximum.
	loud := &trace.Trace{Dt: testDt, Samples: make([]float64, 512)}
	for i := range loud.Samples {
		loud.Samples[i] = 1.2*math.Sin(2*math.Pi*float64(i)/64) + 0.03*rng.NormFloat64()
	}
	quiet := pulseTrace(rng, 512)
	for i := range quiet.Samples {
		quiet.Samples[i] *= 0.05
	}
	cases := []struct {
		name   string
		tr     *trace.Trace
		reason string
	}{
		{"healthy", pulseTrace(rng, 512), ""},
		{"flatline", flat, "flatline"},
		{"empty", &trace.Trace{Dt: testDt}, "flatline"},
		{"clipped", clipped, "clipping"},
		{"burst", burst, "burst"},
		{"rms high", loud, "rms"},
		{"rms low", quiet, "rms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := h.Check(tc.tr)
			if (tc.reason != "") != v.Rejected || v.Reason != tc.reason {
				t.Fatalf("verdict %+v, want reason %q", v, tc.reason)
			}
			c := h.Confidence(v)
			if v.Rejected && c != 0 {
				t.Fatalf("rejected trace confidence %g, want 0", c)
			}
			if !v.Rejected && (c <= 0 || c > 1) {
				t.Fatalf("confidence %g outside (0, 1]", c)
			}
		})
	}
}

func TestConfidenceDegradesBeforeRejection(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	h, err := BuildChannelHealth(pulseGoldenSet(rng, 10, 512), DefaultHealthConfig())
	if err != nil {
		t.Fatal(err)
	}
	pristine := h.Confidence(h.Check(pulseTrace(rng, 512)))
	worse := pulseTrace(rng, 512)
	for i := range worse.Samples {
		// A uniform gain drift moves peak and RMS together, so 1.5x (the
		// spike limit) bounds how far gain can drift before rejection —
		// 1.4x is accepted but must already read as a sick channel.
		worse.Samples[i] *= 1.4
	}
	v := h.Check(worse)
	if v.Rejected {
		t.Fatalf("1.4x gain should still be accepted, got %+v", v)
	}
	if got := h.Confidence(v); got >= pristine {
		t.Fatalf("confidence %g did not degrade from pristine %g", got, pristine)
	}
}

func TestMonitorRejectsUnhealthyTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	golden := goldenSet(rng, 15, 512)
	fp, err := BuildFingerprint(golden, DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	h, err := BuildChannelHealth(golden, DefaultHealthConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitorWith(fp, nil, HardenedOptions(h))
	if err != nil {
		t.Fatal(err)
	}
	flat := &trace.Trace{Dt: testDt, Samples: make([]float64, 512)}
	go func() {
		m.Submit(synthTrace(rng, 512, 0))
		m.Submit(flat)
		m.Submit(synthTrace(rng, 512, 0))
		m.Close()
	}()
	var vs []Verdict
	for v := range m.Verdicts() {
		vs = append(vs, v)
	}
	if len(vs) != 3 {
		t.Fatalf("got %d verdicts", len(vs))
	}
	if vs[0].Health.Rejected || vs[2].Health.Rejected {
		t.Fatal("healthy traces must pass the gate")
	}
	bad := vs[1]
	switch {
	case !bad.Health.Rejected:
		t.Fatal("flatline trace must be rejected")
	case bad.Confidence != 0:
		t.Fatalf("rejected confidence %g, want 0", bad.Confidence)
	case bad.Confirmed(), bad.Alarm():
		t.Fatal("a rejected trace must never raise the Trojan alarm")
	case bad.Time != (TimeVerdict{}):
		t.Fatal("detectors must be skipped for rejected traces")
	}
	rejected, _ := m.HardenedStats()
	if rejected != 1 {
		t.Fatalf("rejected count %d, want 1", rejected)
	}
}

func TestAcquireHealthyBoundedRetries(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	golden := goldenSet(rng, 10, 512)
	h, err := BuildChannelHealth(golden, DefaultHealthConfig())
	if err != nil {
		t.Fatal(err)
	}
	flat := &trace.Trace{Dt: testDt, Samples: make([]float64, 512)}

	// Second attempt recovers: one rejection, a healthy trace back.
	calls := 0
	tr, v, rejected, err := h.AcquireHealthy(3, func(attempt int) (*trace.Trace, error) {
		calls++
		if attempt == 0 {
			return flat, nil
		}
		return synthTrace(rng, 512, 0), nil
	})
	if err != nil || v.Rejected || rejected != 1 || calls != 2 || tr == nil {
		t.Fatalf("recovery path: calls=%d rejected=%d verdict=%+v err=%v", calls, rejected, v, err)
	}

	// Dead channel: the loop must stop after retries and report the last
	// rejected verdict instead of spinning forever.
	calls = 0
	_, v, rejected, err = h.AcquireHealthy(3, func(int) (*trace.Trace, error) {
		calls++
		return flat, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 || rejected != 3 || !v.Rejected {
		t.Fatalf("dead channel: calls=%d rejected=%d verdict=%+v", calls, rejected, v)
	}
}

// driftedTrace shifts a clean synthetic trace by a slow gain/offset
// drift (index i of span) without any Trojan component.
func driftedTrace(rng *rand.Rand, n, i, span int) *trace.Trace {
	tr := synthTrace(rng, n, 0)
	g := 1 + 0.2*float64(i)/float64(span)
	off := 0.3 * float64(i) / float64(span)
	for k := range tr.Samples {
		tr.Samples[k] = tr.Samples[k]*g + off
	}
	return tr
}

func TestRebaselineTracksSlowDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	golden := goldenSet(rng, 30, 1024)
	fp, err := BuildFingerprint(golden, DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n, span = 120, 120
	run := func(opts MonitorOptions) (alarms int) {
		m, err := NewMonitorWith(fp, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for i := 0; i < n; i++ {
				m.Submit(driftedTrace(rng, 1024, i, span))
			}
			m.Close()
		}()
		for v := range m.Verdicts() {
			if v.Confirmed() {
				alarms++
			}
		}
		return alarms
	}
	naive := run(MonitorOptions{})
	hardened := run(MonitorOptions{
		Debounce:   DebounceConfig{M: 2, N: 5},
		Rebaseline: RebaselineConfig{Alpha: 0.1},
	})
	if naive == 0 {
		t.Fatal("the drift stimulus is too weak to exercise the naive monitor")
	}
	if hardened >= naive {
		t.Fatalf("re-baselining did not help: hardened %d vs naive %d false alarms", hardened, naive)
	}
}

func TestRebaselineFreezesOnTrojanStep(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	golden := goldenSet(rng, 30, 1024)
	fp, err := BuildFingerprint(golden, DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitorWith(fp, nil, MonitorOptions{
		Buffer:     4,
		Debounce:   DebounceConfig{M: 2, N: 5},
		Rebaseline: RebaselineConfig{Alpha: 0.2}, // aggressive: absorb fast if unguarded
	})
	if err != nil {
		t.Fatal(err)
	}
	const quiet, active = 30, 60
	go func() {
		for i := 0; i < quiet; i++ {
			m.Submit(synthTrace(rng, 1024, 0))
		}
		// Trojan activates and stays on. An unguarded EWMA at alpha 0.2
		// would swallow the step within ~20 traces; the guard must keep
		// the alarm latched for the whole activation.
		for i := 0; i < active; i++ {
			m.Submit(synthTrace(rng, 1024, 1.0))
		}
		m.Close()
	}()
	var vs []Verdict
	for v := range m.Verdicts() {
		vs = append(vs, v)
	}
	lateAlarms := 0
	for _, v := range vs[quiet+active/2:] {
		if v.Confirmed() {
			lateAlarms++
		}
	}
	tail := len(vs[quiet+active/2:])
	if lateAlarms < tail*9/10 {
		t.Fatalf("alarm decayed during activation: %d/%d late traces confirmed — baseline absorbed the Trojan", lateAlarms, tail)
	}
	// The frozen baseline must still be (near) zero: all adaptation
	// happened on the quiet prefix where scores sit at the centroid.
	off := m.BaselineOffset()
	var norm float64
	for _, v := range off {
		norm += v * v
	}
	if norm = math.Sqrt(norm); norm > fp.Threshold {
		t.Fatalf("baseline offset norm %g exceeds threshold %g — drifted toward the Trojan", norm, fp.Threshold)
	}
}

func TestHardenedVerdictString(t *testing.T) {
	v := Verdict{
		Seq:        7,
		Health:     HealthVerdict{Rejected: true, Reason: "clipping"},
		Window:     WindowState{M: 2, N: 5, Alarms: 1},
		Confidence: 0,
	}
	s := v.String()
	if s == "" || v.Confirmed() {
		t.Fatalf("rejected verdict renders %q and must not confirm", s)
	}
	confirmed := Verdict{
		Time:       TimeVerdict{Alarm: true},
		Window:     WindowState{M: 2, N: 5, Alarms: 3, Confirmed: true},
		Confidence: 0.9,
	}
	if !confirmed.Confirmed() {
		t.Fatal("confirmed window must confirm")
	}
	pending := Verdict{
		Time:   TimeVerdict{Alarm: true},
		Window: WindowState{M: 2, N: 5, Alarms: 1},
	}
	if pending.Confirmed() {
		t.Fatal("1-of-5 window must not confirm yet")
	}
	if !pending.Alarm() {
		t.Fatal("raw alarm must survive debouncing in Alarm()")
	}
}
