package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestPopulationReferenceCancelsCommonMode(t *testing.T) {
	// 200 clean dies riding a fleet-wide shift of +3 sigma, plus 3
	// infected dies another +8 above that. Naive per-die thresholding
	// at 3 sigma would flag the whole fleet; common-mode cancellation
	// plus FDR ranking must flag exactly the infected ones.
	rng := rand.New(rand.NewSource(7))
	const clean, infected = 200, 3
	scores := make([]float64, clean+infected)
	for i := 0; i < clean; i++ {
		scores[i] = 3 + rng.NormFloat64()
	}
	for i := clean; i < clean+infected; i++ {
		scores[i] = 3 + 8 + rng.NormFloat64()
	}
	pr := NewPopulationReference(PopulationConfig{})
	v := pr.Rank(scores, nil)
	if math.Abs(v.CommonMode-3) > 0.5 {
		t.Fatalf("common mode %g, want ~3", v.CommonMode)
	}
	for i := 0; i < clean; i++ {
		if v.Flag[i] {
			t.Fatalf("clean die %d flagged (score %g, adjusted %g, p %g)", i, scores[i], v.Adjusted[i], v.P[i])
		}
	}
	for i := clean; i < clean+infected; i++ {
		if !v.Flag[i] {
			t.Fatalf("infected die %d not flagged (adjusted %g, p %g)", i, v.Adjusted[i], v.P[i])
		}
	}
	if v.Eligible != clean+infected {
		t.Fatalf("eligible %d, want %d", v.Eligible, clean+infected)
	}
}

func TestPopulationReferenceEligibility(t *testing.T) {
	pr := NewPopulationReference(PopulationConfig{MinCohort: 4, Sigma: 1, FDR: 0.05})
	scores := []float64{0.1, -0.2, 0.05, 12, math.NaN(), math.Inf(1), 11}
	eligible := []bool{true, true, true, true, true, true, false}
	v := pr.Rank(scores, eligible)
	// NaN/Inf and the explicitly excluded die are out of the family.
	if v.Eligible != 4 {
		t.Fatalf("eligible %d, want 4", v.Eligible)
	}
	for _, i := range []int{4, 5, 6} {
		if v.Flag[i] || v.P[i] != 1 || !math.IsNaN(v.Adjusted[i]) {
			t.Fatalf("ineligible die %d leaked into the family: flag=%v p=%g adj=%g", i, v.Flag[i], v.P[i], v.Adjusted[i])
		}
	}
	if !v.Flag[3] {
		t.Fatalf("outlier die 3 not flagged (p=%g)", v.P[3])
	}
}

func TestPopulationReferenceSmallCohort(t *testing.T) {
	// Below MinCohort there is no trustworthy median: the common mode
	// stays 0 and a fleet-wide shift shows up raw.
	pr := NewPopulationReference(PopulationConfig{MinCohort: 8})
	scores := []float64{5, 5.1, 4.9}
	v := pr.Rank(scores, nil)
	if v.CommonMode != 0 {
		t.Fatalf("common mode %g on a cohort of 3, want 0", v.CommonMode)
	}
	if v.Adjusted[0] != 5 {
		t.Fatalf("adjusted %g, want raw score 5", v.Adjusted[0])
	}
}
