package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestFingerprintSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	golden := goldenSet(rng, 25, 1024)
	fp, err := BuildFingerprint(golden, DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFingerprint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold != fp.Threshold {
		t.Fatalf("threshold %g vs %g", loaded.Threshold, fp.Threshold)
	}
	// Verdicts must be identical on clean and infected traces.
	for _, extra := range []float64{0, 0.8} {
		tr := synthTrace(rng, 1024, extra)
		a := fp.Evaluate(tr)
		b := loaded.Evaluate(tr)
		if a.Alarm != b.Alarm || a.Distance != b.Distance {
			t.Fatalf("verdicts diverge after reload: %+v vs %+v", a, b)
		}
	}
}

func TestSpectralSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	golden := goldenSet(rng, 12, 2048)
	sd, err := BuildSpectralDetector(golden, DefaultSpectralConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sd.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpectralDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, extra := range []float64{0, 0.6} {
		tr := synthTrace(rng, 2048, extra)
		a := sd.Evaluate(tr)
		b := loaded.Evaluate(tr)
		if a.Alarm != b.Alarm || len(a.Spots) != len(b.Spots) {
			t.Fatalf("spectral verdicts diverge: %+v vs %+v", a, b)
		}
	}
}

func TestLoadFingerprintRejectsGarbage(t *testing.T) {
	if _, err := LoadFingerprint(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must error")
	}
	if _, err := LoadFingerprint(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("wrong version must error")
	}
	if _, err := LoadFingerprint(strings.NewReader(`{"version":1}`)); err == nil {
		t.Fatal("incomplete file must error")
	}
	if _, err := LoadFingerprint(strings.NewReader(
		`{"version":1,"mean":[1,2],"components":[[1]],"golden_scores":[[1]]}`)); err == nil {
		t.Fatal("ragged components must error")
	}
	if _, err := LoadFingerprint(strings.NewReader(
		`{"version":1,"mean":[1],"components":[[1]],"golden_scores":[[1],[1,2]]}`)); err == nil {
		t.Fatal("ragged golden scores must error")
	}
}

func TestLoadSpectralRejectsGarbage(t *testing.T) {
	if _, err := LoadSpectralDetector(strings.NewReader("{")); err == nil {
		t.Fatal("garbage must error")
	}
	if _, err := LoadSpectralDetector(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("wrong version must error")
	}
	if _, err := LoadSpectralDetector(strings.NewReader(`{"version":1}`)); err == nil {
		t.Fatal("incomplete file must error")
	}
}

func TestMonitorWithLoadedModels(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	golden := goldenSet(rng, 15, 1024)
	fp, err := BuildFingerprint(golden, DefaultFingerprintConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFingerprint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(loaded, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		mon.Submit(synthTrace(rng, 1024, 1.0))
		mon.Close()
	}()
	v := <-mon.Verdicts()
	if !v.Alarm() {
		t.Fatal("reloaded monitor missed an infected trace")
	}
}
