// Package core implements the paper's primary contribution: the runtime
// trust evaluation framework. It builds a golden EM fingerprint (feature
// extraction, PCA dimensionality reduction, Euclidean distance with the
// Eq. (1) max-pairwise threshold), inspects spectra for the
// new-or-amplified frequency spots that betray A2-style analog Trojans
// (Section III-E), and runs both detectors continuously over a stream of
// traces in the runtime Monitor of Figure 1.
package core

import (
	"fmt"

	"emtrust/internal/dsp"
	"emtrust/internal/stats"
	"emtrust/internal/trace"
)

// FeatureExtractor reduces a raw trace to a fixed-length feature vector:
// the RMS energy of consecutive segments. Segment energies capture the
// where-and-how-much of the EM radiation while washing out the sample
// phase jitter that raw-sample distances would choke on.
type FeatureExtractor struct {
	// Segments is the number of energy windows per trace.
	Segments int
}

// Extract computes the feature vector of a trace.
func (f FeatureExtractor) Extract(t *trace.Trace) []float64 {
	return f.ExtractInto(nil, t)
}

// ExtractInto is Extract writing into dst, which is reused when its
// capacity suffices and reallocated otherwise; the (possibly new)
// buffer is returned.
func (f FeatureExtractor) ExtractInto(dst []float64, t *trace.Trace) []float64 {
	n := f.Segments
	if n <= 0 {
		n = 32
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if len(t.Samples) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i := 0; i < n; i++ {
		lo := i * len(t.Samples) / n
		hi := (i + 1) * len(t.Samples) / n
		if hi <= lo {
			hi = lo + 1
			if hi > len(t.Samples) {
				lo, hi = len(t.Samples)-1, len(t.Samples)
			}
		}
		dst[i] = dsp.RMS(t.Samples[lo:hi])
	}
	return dst
}

// FingerprintConfig sets the fingerprint construction parameters.
type FingerprintConfig struct {
	// Segments is the feature-extractor resolution.
	Segments int
	// Components is the number of principal components kept; <= 0 keeps
	// every component.
	Components int
	// ThresholdMargin scales the Eq. (1) threshold; 1.0 is the paper's
	// exact rule (max pairwise golden distance).
	ThresholdMargin float64
	// IncludeResidual appends the PCA reconstruction error (the
	// Q-statistic of process monitoring) as an extra score dimension.
	// Without it a Trojan whose signature is orthogonal to the golden
	// variation would be projected out of the reduced space entirely.
	IncludeResidual bool
}

// DefaultFingerprintConfig returns the configuration used by the
// experiments: 32 energy segments reduced to 8 principal components plus
// the reconstruction residual.
func DefaultFingerprintConfig() FingerprintConfig {
	return FingerprintConfig{Segments: 32, Components: 8, ThresholdMargin: 1.0, IncludeResidual: true}
}

// Fingerprint is the golden reference model of the data-analysis module.
type Fingerprint struct {
	Extractor FeatureExtractor
	PCA       *stats.PCA
	// Golden holds the projected golden observations (one row per
	// trace).
	Golden *stats.Matrix
	// Threshold is the Eq. (1) detection threshold EDth.
	Threshold float64
	// Centroid is the mean golden score vector, used for the Figure 6
	// distance histograms.
	Centroid []float64
	// residual records whether score vectors carry the Q-statistic.
	residual bool
}

// BuildFingerprint fits the golden model from Trojan-free traces. It
// needs at least two traces to define the Eq. (1) threshold.
func BuildFingerprint(golden []*trace.Trace, cfg FingerprintConfig) (*Fingerprint, error) {
	if len(golden) < 2 {
		return nil, fmt.Errorf("core: need at least 2 golden traces, got %d", len(golden))
	}
	if cfg.ThresholdMargin <= 0 {
		cfg.ThresholdMargin = 1.0
	}
	ex := FeatureExtractor{Segments: cfg.Segments}
	features := stats.NewMatrix(len(golden), len(ex.Extract(golden[0])))
	for i, t := range golden {
		copy(features.Row(i), ex.Extract(t))
	}
	pca := stats.FitPCA(features, cfg.Components)
	fp := &Fingerprint{
		Extractor: ex,
		PCA:       pca,
		residual:  cfg.IncludeResidual,
	}
	scores := stats.NewMatrix(len(golden), len(fp.project(features.Row(0))))
	for i := 0; i < features.Rows; i++ {
		copy(scores.Row(i), fp.project(features.Row(i)))
	}
	fp.Golden = scores
	fp.Threshold = cfg.ThresholdMargin * stats.MaxPairwiseDistance(scores)
	fp.Centroid = stats.Centroid(scores)
	return fp, nil
}

// project maps a feature vector to scores, optionally appending the
// reconstruction residual.
func (fp *Fingerprint) project(features []float64) []float64 {
	scores, _ := fp.scoreInto(nil, nil, features)
	return scores
}

// scoreInto is project writing the score vector into dst and using
// recon as reconstruction scratch; both buffers are reused when their
// capacity suffices and the (possibly grown) buffers are returned.
// Bit-identical to project.
func (fp *Fingerprint) scoreInto(dst, recon, features []float64) (scores, reconOut []float64) {
	k := fp.PCA.K()
	n := k
	if fp.residual {
		n = k + 1
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	fp.PCA.ProjectInto(dst[:k], features)
	if !fp.residual {
		return dst, recon
	}
	if cap(recon) < len(fp.PCA.Mean) {
		recon = make([]float64, len(fp.PCA.Mean))
	}
	recon = recon[:len(fp.PCA.Mean)]
	fp.PCA.ReconstructInto(recon, dst[:k])
	dst[k] = stats.Euclidean(features, recon)
	return dst, recon
}

// Project maps a trace into the golden score space (PCA scores plus the
// residual dimension when configured).
func (fp *Fingerprint) Project(t *trace.Trace) []float64 {
	return fp.project(fp.Extractor.Extract(t))
}

// Distance returns the trace's Euclidean distance to the nearest golden
// sample: the quantity compared against the Eq. (1) threshold.
func (fp *Fingerprint) Distance(t *trace.Trace) float64 {
	return stats.MinDistanceToSet(fp.Project(t), fp.Golden)
}

// CentroidDistance returns the distance to the golden centroid, the
// statistic plotted in the Figure 6 histograms.
func (fp *Fingerprint) CentroidDistance(t *trace.Trace) float64 {
	return stats.Euclidean(fp.Project(t), fp.Centroid)
}

// Evaluate runs the time-domain detector on one trace.
func (fp *Fingerprint) Evaluate(t *trace.Trace) TimeVerdict {
	d := fp.Distance(t)
	return TimeVerdict{Distance: d, Threshold: fp.Threshold, Alarm: d > fp.Threshold}
}

// TimeVerdict is the outcome of the Euclidean-distance detector.
type TimeVerdict struct {
	Distance  float64
	Threshold float64
	Alarm     bool
}
