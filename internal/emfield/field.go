// Package emfield computes the magnetic coupling between the chip's
// switching currents and the measurement coils, following the staged
// method of the paper's reference [18]: tile currents -> Biot-Savart
// field -> flux through coil loops (Faraday's law) -> induced emf.
//
// Each floorplan tile is modeled as a small vertical-axis current loop
// (the local supply/return path), i.e. a magnetic dipole m = I*Aeff ẑ.
// The on-chip sensor is the paper's one-way spiral on the top metal layer
// (approximated as nested rectangular turns); the external probe is a
// stack of same-diameter circular turns 100 um above the package, as seen
// in the X-ray of Figure 2(a).
package emfield

import (
	"fmt"
	"math"

	"emtrust/internal/layout"
	"emtrust/internal/parallel"
)

// Mu0 is the vacuum permeability in H/m.
const Mu0 = 4 * math.Pi * 1e-7

// Vec3 is a 3-D vector in meters (or field units, by context).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v * k.
func (v Vec3) Scale(k float64) Vec3 { return Vec3{v.X * k, v.Y * k, v.Z * k} }

// Dot returns the dot product.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// DipoleB returns the magnetic field at point p of a magnetic dipole with
// moment m located at pos (exact dipole formula).
func DipoleB(pos, p Vec3, m Vec3) Vec3 {
	r := p.Sub(pos)
	rn := r.Norm()
	if rn == 0 {
		return Vec3{}
	}
	rhat := r.Scale(1 / rn)
	k := Mu0 / (4 * math.Pi * rn * rn * rn)
	return rhat.Scale(3 * m.Dot(rhat)).Sub(m).Scale(k)
}

// DipoleBz returns only the z-component of the field of a ẑ-oriented
// unit dipole at pos evaluated at p; the common case for flux through
// horizontal loops.
func DipoleBz(pos, p Vec3) float64 {
	r := p.Sub(pos)
	rn := r.Norm()
	if rn == 0 {
		return 0
	}
	k := Mu0 / (4 * math.Pi * rn * rn * rn * rn * rn)
	return k * (3*r.Z*r.Z - rn*rn)
}

// SegmentB returns the Biot-Savart field at p of a finite straight wire
// from a to b carrying unit current (amps).
func SegmentB(a, b, p Vec3) Vec3 {
	ab := b.Sub(a)
	l := ab.Norm()
	if l == 0 {
		return Vec3{}
	}
	u := ab.Scale(1 / l)
	ap := p.Sub(a)
	// Perpendicular distance vector from the wire line to p.
	along := ap.Dot(u)
	perp := ap.Sub(u.Scale(along))
	d := perp.Norm()
	if d == 0 {
		return Vec3{} // on the wire axis: field singular/zero by symmetry
	}
	// Standard finite-wire result: B = mu0 I /(4 pi d) (sin t2 - sin t1)
	// where angles are measured from the perpendicular foot.
	sin1 := -along / math.Hypot(along, d)
	sin2 := (l - along) / math.Hypot(l-along, d)
	mag := Mu0 / (4 * math.Pi * d) * (sin2 - sin1)
	dir := u.Cross(perp.Scale(1 / d))
	return dir.Scale(mag)
}

// Loop is a horizontal conducting turn through which flux is computed.
type Loop interface {
	// FluxOfUnitDipole returns the magnetic flux through the loop from
	// a unit ẑ dipole at pos. It is evaluated as the boundary line
	// integral of the dipole's vector potential (Stokes' theorem),
	// which stays well-conditioned even when the loop passes a few
	// micrometers above the source — the on-chip sensor's regime. n is
	// the number of integration samples per edge (or per turn for
	// circles); n <= 0 selects a default.
	FluxOfUnitDipole(pos Vec3, n int) float64
	// Area returns the enclosed area in square meters.
	Area() float64
}

// dipoleA returns the vector potential at p of a unit ẑ dipole at pos:
// A = mu0/(4 pi) (m x r)/|r|^3.
func dipoleA(pos, p Vec3) Vec3 {
	r := p.Sub(pos)
	rn := r.Norm()
	if rn == 0 {
		return Vec3{}
	}
	k := Mu0 / (4 * math.Pi * rn * rn * rn)
	// ẑ x r = (-r.Y, r.X, 0)
	return Vec3{-r.Y * k, r.X * k, 0}
}

// boundaryFlux integrates A . dl along the closed polyline given by pts
// (counter-clockwise, last point connects back to the first), with n
// midpoint samples per edge.
func boundaryFlux(pos Vec3, pts []Vec3, n int) float64 {
	if n <= 0 {
		n = 64
	}
	sum := 0.0
	for i := range pts {
		a := pts[i]
		b := pts[(i+1)%len(pts)]
		d := b.Sub(a).Scale(1 / float64(n))
		for k := 0; k < n; k++ {
			mid := a.Add(d.Scale(float64(k) + 0.5))
			sum += dipoleA(pos, mid).Dot(d)
		}
	}
	return sum
}

// RectLoop is a rectangular turn centered at (CX, CY) at height Z.
type RectLoop struct {
	CX, CY, W, H, Z float64
}

// Area returns W*H.
func (r RectLoop) Area() float64 { return r.W * r.H }

// FluxOfUnitDipole integrates the dipole vector potential around the
// rectangle boundary (counter-clockwise) with n samples per edge.
func (r RectLoop) FluxOfUnitDipole(pos Vec3, n int) float64 {
	hx, hy := r.W/2, r.H/2
	pts := []Vec3{
		{r.CX - hx, r.CY - hy, r.Z},
		{r.CX + hx, r.CY - hy, r.Z},
		{r.CX + hx, r.CY + hy, r.Z},
		{r.CX - hx, r.CY + hy, r.Z},
	}
	return boundaryFlux(pos, pts, n)
}

// CircleLoop is a circular turn of radius R centered at (CX, CY) at
// height Z.
type CircleLoop struct {
	CX, CY, R, Z float64
}

// Area returns pi R^2.
func (c CircleLoop) Area() float64 { return math.Pi * c.R * c.R }

// FluxOfUnitDipole integrates the dipole vector potential around the
// circle (counter-clockwise) approximated as a 4n-gon.
func (c CircleLoop) FluxOfUnitDipole(pos Vec3, n int) float64 {
	if n <= 0 {
		n = 64
	}
	sides := 4 * n
	pts := make([]Vec3, sides)
	for i := range pts {
		th := 2 * math.Pi * float64(i) / float64(sides)
		pts[i] = Vec3{c.CX + c.R*math.Cos(th), c.CY + c.R*math.Sin(th), c.Z}
	}
	return boundaryFlux(pos, pts, 1)
}

// Coil is a series-connected stack of loops; the induced emf is the sum
// of the per-turn flux derivatives.
type Coil struct {
	Name  string
	Loops []Loop
}

// TotalArea returns the summed turn area (a coarse sensitivity measure:
// the paper notes the spiral's effectiveness "equals the accumulation of
// all the coils with gradually increasing diameters").
func (c *Coil) TotalArea() float64 {
	a := 0.0
	for _, l := range c.Loops {
		a += l.Area()
	}
	return a
}

// OnChipSpiral builds the paper's on-chip sensor: a one-way spiral
// starting at the die center and extending to the corner (Figure 2(b)),
// approximated by turns nested rectangles on the top metal layer at
// height z above the switching devices, covering the entire die.
func OnChipSpiral(die layout.Point, turns int, z float64) *Coil {
	if turns <= 0 {
		turns = 8
	}
	c := &Coil{Name: "on-chip spiral"}
	for k := 1; k <= turns; k++ {
		frac := float64(k) / float64(turns)
		c.Loops = append(c.Loops, RectLoop{
			CX: die.X / 2, CY: die.Y / 2,
			W: die.X * frac, H: die.Y * frac,
			Z: z,
		})
	}
	return c
}

// QuadrantNames labels the four quadrant spirals of QuadrantSpirals in
// order: south-west, south-east, north-west, north-east.
var QuadrantNames = [4]string{"SW", "SE", "NW", "NE"}

// QuadrantSpirals builds the localization-enhanced sensor of the paper's
// future-work direction: four smaller spirals, one per die quadrant, on
// the same top metal layer. Comparing the per-quadrant responses locates
// the radiating region — the "location awareness" advantage of the EM
// side channel. Quadrant k covers x-half k%2 and y-half k/2.
func QuadrantSpirals(die layout.Point, turns int, z float64) [4]*Coil {
	if turns <= 0 {
		turns = 6
	}
	var out [4]*Coil
	for q := 0; q < 4; q++ {
		cx := die.X * (0.25 + 0.5*float64(q%2))
		cy := die.Y * (0.25 + 0.5*float64(q/2))
		c := &Coil{Name: "quadrant " + QuadrantNames[q]}
		for k := 1; k <= turns; k++ {
			frac := float64(k) / float64(turns)
			c.Loops = append(c.Loops, RectLoop{
				CX: cx, CY: cy,
				W: die.X / 2 * frac, H: die.Y / 2 * frac,
				Z: z,
			})
		}
		out[q] = c
	}
	return out
}

// QuadrantOf returns the quadrant index (see QuadrantNames) containing
// the point p on the die.
func QuadrantOf(die layout.Point, p Vec3) int {
	q := 0
	if p.X >= die.X/2 {
		q++
	}
	if p.Y >= die.Y/2 {
		q += 2
	}
	return q
}

// ExternalProbe builds the LANGER-style RF probe of Figure 2(a): a stack
// of same-diameter circular turns at height z above the die center (the
// paper sets 100 um for the package thickness), with stack pitch between
// turns.
func ExternalProbe(die layout.Point, radius float64, turns int, z, pitch float64) *Coil {
	if turns <= 0 {
		turns = 8
	}
	c := &Coil{Name: "external probe"}
	for k := 0; k < turns; k++ {
		c.Loops = append(c.Loops, CircleLoop{
			CX: die.X / 2, CY: die.Y / 2,
			R: radius,
			Z: z + float64(k)*pitch,
		})
	}
	return c
}

// Coupling holds the precomputed per-tile mutual coupling of a coil:
// flux through the coil per ampere of tile loop current.
type Coupling struct {
	Coil *Coil
	// M[tile] in webers per ampere (henries).
	M []float64
}

// NewCoupling precomputes the tile->coil coupling for the given grid.
// aeff is the effective loop area of one tile's supply current path;
// quad is the per-loop quadrature resolution (points per axis).
func NewCoupling(c *Coil, grid *layout.TileGrid, aeff float64, quad int) (*Coupling, error) {
	if aeff <= 0 {
		return nil, fmt.Errorf("emfield: effective tile loop area must be positive, got %g", aeff)
	}
	cp := &Coupling{Coil: c, M: make([]float64, grid.NumTiles())}
	// Tiles are independent quadrature problems; each writes only its own
	// M entry, so the fan-out is deterministic regardless of schedule.
	err := parallel.For(grid.NumTiles(), func(t int) error {
		pos := grid.TileCenter(t)
		src := Vec3{pos.X, pos.Y, 0}
		flux := 0.0
		for _, l := range c.Loops {
			flux += l.FluxOfUnitDipole(src, quad)
		}
		// Dipole moment per ampere is aeff, so M = flux * aeff.
		cp.M[t] = flux * aeff
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cp, nil
}

// EMF synthesizes the coil's induced voltage from per-tile current
// waveforms: emf(t) = -sum_tile M[tile] * dI_tile/dt. currents is indexed
// [tile][sample]; dt is the sample spacing in seconds.
func (cp *Coupling) EMF(currents [][]float64, dt float64) []float64 {
	return cp.EMFInto(nil, currents, dt)
}

// EMFInto is EMF writing into dst, which is grown only when its capacity
// is insufficient; it returns the slice holding the result. Tiles with
// zero coupling or zero-length waveforms are skipped, and waveforms
// longer than the first tile's are clamped rather than read out of
// bounds.
func (cp *Coupling) EMFInto(dst []float64, currents [][]float64, dt float64) []float64 {
	return cp.emfInto(dst, currents, dt, nil)
}

// emfInto is the shared synthesis body: flux accumulation (four tiles
// per sweep), then one backward differentiation.
func (cp *Coupling) emfInto(dst []float64, currents [][]float64, dt float64, gains []float64) []float64 {
	if len(currents) != len(cp.M) {
		panic(fmt.Sprintf("emfield: %d tile waveforms for %d couplings", len(currents), len(cp.M)))
	}
	if len(currents) == 0 {
		return dst[:0]
	}
	n := len(currents[0])
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]float64, n)
	}
	// First accumulate the flux waveform, then differentiate once:
	// algebraically identical to summing per-tile derivatives but one
	// pass and numerically steadier.
	for i := range dst {
		dst[i] = 0
	}
	accumulateFlux(dst, currents, cp.M, gains)
	// In-place backward differentiation: index i needs flux[i] and
	// flux[i-1], both still intact when walking from the top down.
	for i := n - 1; i >= 1; i-- {
		dst[i] = -(dst[i] - dst[i-1]) / dt
	}
	if n > 1 {
		dst[0] = dst[1]
	} else {
		dst[0] = 0
	}
	return dst
}

// accumulateFlux adds every tile's effective coupling times its
// current waveform into dst, sweeping dst once per group of four tiles
// instead of once per tile — the flux pass is memory-bound, and the
// grouped sweep loads and stores each dst sample once per four
// contributions. Grouping never reorders arithmetic: each dst[i]
// receives its contributions in exactly the tile order of the
// one-tile-at-a-time loop, so the result is bit-identical. A waveform
// whose length differs from dst's breaks the group and is accumulated
// individually over its clamped length, preserving that order too.
func accumulateFlux(dst []float64, currents [][]float64, m, gains []float64) {
	n := len(dst)
	var ws [4][]float64
	var ms [4]float64
	pend := 0
	for t, w := range currents {
		mt := m[t]
		if t < len(gains) {
			mt *= gains[t]
		}
		if mt == 0 || len(w) == 0 {
			continue
		}
		if len(w) != n {
			flushFlux(dst, &ws, &ms, pend)
			pend = 0
			if len(w) > n {
				w = w[:n]
			}
			for i, v := range w {
				dst[i] += mt * v
			}
			continue
		}
		ws[pend], ms[pend] = w, mt
		if pend++; pend == 4 {
			flushFlux(dst, &ws, &ms, 4)
			pend = 0
		}
	}
	flushFlux(dst, &ws, &ms, pend)
}

// flushFlux adds the pending group's contributions, in tile order per
// sample. Every grouped waveform has exactly len(dst) samples.
func flushFlux(dst []float64, ws *[4][]float64, ms *[4]float64, pend int) {
	n := len(dst)
	switch pend {
	case 4:
		w0, w1, w2, w3 := ws[0][:n], ws[1][:n], ws[2][:n], ws[3][:n]
		m0, m1, m2, m3 := ms[0], ms[1], ms[2], ms[3]
		for i := range dst {
			dst[i] += m0 * w0[i]
			dst[i] += m1 * w1[i]
			dst[i] += m2 * w2[i]
			dst[i] += m3 * w3[i]
		}
	case 3:
		w0, w1, w2 := ws[0][:n], ws[1][:n], ws[2][:n]
		m0, m1, m2 := ms[0], ms[1], ms[2]
		for i := range dst {
			dst[i] += m0 * w0[i]
			dst[i] += m1 * w1[i]
			dst[i] += m2 * w2[i]
		}
	case 2:
		w0, w1 := ws[0][:n], ws[1][:n]
		m0, m1 := ms[0], ms[1]
		for i := range dst {
			dst[i] += m0 * w0[i]
			dst[i] += m1 * w1[i]
		}
	case 1:
		w0, m0 := ws[0][:n], ms[0]
		for i := range dst {
			dst[i] += m0 * w0[i]
		}
	}
}

// EMFWeightedInto is EMFInto with a per-tile current gain applied
// during flux accumulation: tile t contributes gains[t]*M[t]*I_t. It is
// the cheap way to synthesize the emf of a process-variation sibling
// die from one shared gate-level capture — per-cell charge variation
// averages out within a tile, so to first order a die differs from its
// neighbor by per-tile current scale factors, and re-weighting the
// accumulation reproduces that without re-simulating the logic. A nil
// gains slice degrades to EMFInto; a short slice treats missing tiles
// as gain 1.
func (cp *Coupling) EMFWeightedInto(dst []float64, currents [][]float64, dt float64, gains []float64) []float64 {
	if len(gains) == 0 {
		return cp.EMFInto(dst, currents, dt)
	}
	return cp.emfInto(dst, currents, dt, gains)
}
