package emfield

import (
	"math/rand"
	"testing"
)

// referenceFlux is the pre-fusion one-tile-at-a-time accumulation,
// kept verbatim as the differential oracle for accumulateFlux.
func referenceFlux(dst []float64, currents [][]float64, m, gains []float64) {
	n := len(dst)
	for t, w := range currents {
		mt := m[t]
		if t < len(gains) {
			mt *= gains[t]
		}
		if mt == 0 || len(w) == 0 {
			continue
		}
		if len(w) > n {
			w = w[:n]
		}
		for i, v := range w {
			dst[i] += mt * v
		}
	}
}

// TestAccumulateFluxMatchesReference sweeps tile counts through every
// group remainder (0..9 tiles), with zero couplings, empty, short, and
// over-long waveforms interleaved, and checks the fused grouped sweep
// against the rolled reference bit for bit. FP addition is not
// associative, so this only holds because grouping preserves per-sample
// tile order exactly — which is the property under test.
func TestAccumulateFluxMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 37 // odd length so the grouped sweep has no friendly alignment
	for tiles := 0; tiles <= 9; tiles++ {
		for trial := 0; trial < 8; trial++ {
			currents := make([][]float64, tiles)
			m := make([]float64, tiles)
			gains := make([]float64, rng.Intn(tiles+1)) // short gains: tail tiles at gain 1
			for g := range gains {
				gains[g] = 0.5 + rng.Float64()
			}
			for i := range currents {
				m[i] = rng.NormFloat64()
				switch rng.Intn(6) {
				case 0:
					currents[i] = nil // empty: skipped
				case 1:
					m[i] = 0 // zero coupling: skipped
					currents[i] = randWave(rng, n)
				case 2:
					currents[i] = randWave(rng, 1+rng.Intn(n-1)) // short: breaks the group
				case 3:
					currents[i] = randWave(rng, n+1+rng.Intn(16)) // long: clamped, breaks the group
				default:
					currents[i] = randWave(rng, n) // full length: groupable
				}
			}
			want := make([]float64, n)
			referenceFlux(want, currents, m, gains)
			got := make([]float64, n)
			accumulateFlux(got, currents, m, gains)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("tiles=%d trial=%d sample %d: fused %v != reference %v",
						tiles, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func randWave(rng *rand.Rand, n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return w
}

// TestEMFWeightedIntoAllocs pins the synthesis path allocation-free
// once dst has capacity: the fleet's per-die waveform builds and the
// localization sweeps rely on it.
func TestEMFWeightedIntoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run the gate without -race")
	}
	rng := rand.New(rand.NewSource(7))
	const tiles, n = 64, 256
	cp := &Coupling{M: make([]float64, tiles)}
	currents := make([][]float64, tiles)
	gains := make([]float64, tiles)
	for i := range currents {
		cp.M[i] = rng.NormFloat64()
		gains[i] = 0.5 + rng.Float64()
		currents[i] = randWave(rng, n)
	}
	dst := make([]float64, n)
	avg := testing.AllocsPerRun(100, func() {
		dst = cp.EMFWeightedInto(dst, currents, 1e-9, gains)
	})
	if avg != 0 {
		t.Fatalf("EMFWeightedInto allocates %.1f times per call, want 0", avg)
	}
}
