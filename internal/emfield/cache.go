package emfield

import (
	"encoding/binary"
	"math"
	"strings"
	"sync"

	"emtrust/internal/layout"
)

// couplingCache memoizes NewCoupling results process-wide. Golden,
// infected and stuck-at chip variants share floorplans, so the expensive
// boundary-integral precompute (the dominant cost of a chip build at the
// default quadrature resolution) runs once per distinct geometry.
var couplingCache sync.Map // string -> *couplingEntry

type couplingEntry struct {
	once sync.Once
	cp   *Coupling
	err  error
}

// couplingKey serializes everything NewCoupling's result depends on: the
// tile-center geometry (grid dimensions and die size — TileCenter is a
// pure function of those), the effective loop area, the quadrature
// resolution, and every loop's concrete type and parameters. It returns
// "" when a loop type is unknown, which makes the caller bypass the
// cache rather than risk aliasing distinct geometries.
func couplingKey(c *Coil, grid *layout.TileGrid, aeff float64, quad int) string {
	var b strings.Builder
	b.Grow(64 + 32*len(c.Loops))
	putU := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		b.Write(buf[:])
	}
	putF := func(v float64) { putU(math.Float64bits(v)) }
	putU(uint64(grid.NX))
	putU(uint64(grid.NY))
	putF(grid.Die.X)
	putF(grid.Die.Y)
	putF(aeff)
	putU(uint64(int64(quad)))
	for _, l := range c.Loops {
		switch l := l.(type) {
		case RectLoop:
			b.WriteByte('R')
			putF(l.CX)
			putF(l.CY)
			putF(l.W)
			putF(l.H)
			putF(l.Z)
		case CircleLoop:
			b.WriteByte('C')
			putF(l.CX)
			putF(l.CY)
			putF(l.R)
			putF(l.Z)
		default:
			return ""
		}
	}
	return b.String()
}

// CachedCoupling is NewCoupling behind the process-wide memo. Concurrent
// callers with the same geometry block on one computation and share the
// resulting *Coupling, which is safe because Coupling is read-only after
// construction. Coils with loop types the key cannot describe fall back
// to an uncached NewCoupling call.
func CachedCoupling(c *Coil, grid *layout.TileGrid, aeff float64, quad int) (*Coupling, error) {
	key := couplingKey(c, grid, aeff, quad)
	if key == "" {
		return NewCoupling(c, grid, aeff, quad)
	}
	v, _ := couplingCache.LoadOrStore(key, &couplingEntry{})
	e := v.(*couplingEntry)
	e.once.Do(func() {
		e.cp, e.err = NewCoupling(c, grid, aeff, quad)
	})
	return e.cp, e.err
}
