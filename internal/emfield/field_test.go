package emfield

import (
	"math"
	"testing"

	"emtrust/internal/layout"
)

func TestVecOps(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) || a.Sub(b) != (Vec3{-3, -3, -3}) {
		t.Fatal("Add/Sub")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Fatal("Scale")
	}
	if a.Dot(b) != 32 {
		t.Fatal("Dot")
	}
	if a.Cross(b) != (Vec3{-3, 6, -3}) {
		t.Fatal("Cross")
	}
	if math.Abs(a.Norm()-math.Sqrt(14)) > 1e-15 {
		t.Fatal("Norm")
	}
}

// The finite-segment Biot-Savart must converge to the infinite-wire field
// B = mu0 I / (2 pi d) for a long wire.
func TestSegmentBLongWireLimit(t *testing.T) {
	const d = 1e-3
	a := Vec3{-100, 0, 0}
	b := Vec3{100, 0, 0}
	p := Vec3{0, d, 0}
	got := SegmentB(a, b, p)
	want := Mu0 / (2 * math.Pi * d)
	if math.Abs(got.Z-want) > want*1e-4 { // field along +z by right-hand rule
		t.Fatalf("long-wire Bz = %g, want %g", got.Z, want)
	}
	if math.Abs(got.X) > want*1e-9 || math.Abs(got.Y) > want*1e-9 {
		t.Fatal("long-wire field must be purely tangential")
	}
}

// Four segments forming a square loop must reproduce the analytic field
// at the loop center: B = 2*sqrt2*mu0*I/(pi*a).
func TestSegmentBSquareLoopCenter(t *testing.T) {
	const side = 2e-3
	h := side / 2
	corners := []Vec3{{-h, -h, 0}, {h, -h, 0}, {h, h, 0}, {-h, h, 0}}
	var bz float64
	for i := range corners {
		f := SegmentB(corners[i], corners[(i+1)%4], Vec3{0, 0, 0})
		bz += f.Z
	}
	want := 2 * math.Sqrt2 * Mu0 / (math.Pi * side)
	if math.Abs(bz-want) > want*1e-9 {
		t.Fatalf("square loop center Bz = %g, want %g", bz, want)
	}
}

func TestSegmentBDegenerate(t *testing.T) {
	if (SegmentB(Vec3{}, Vec3{}, Vec3{1, 0, 0})) != (Vec3{}) {
		t.Fatal("zero-length segment must give zero field")
	}
	if (SegmentB(Vec3{}, Vec3{1, 0, 0}, Vec3{2, 0, 0})) != (Vec3{}) {
		t.Fatal("on-axis point must give zero field")
	}
}

// Dipole Bz on axis: mu0 m / (2 pi z^3).
func TestDipoleOnAxis(t *testing.T) {
	const z = 1e-3
	got := DipoleBz(Vec3{}, Vec3{0, 0, z})
	want := Mu0 / (2 * math.Pi * z * z * z)
	if math.Abs(got-want) > want*1e-12 {
		t.Fatalf("on-axis dipole Bz = %g, want %g", got, want)
	}
	// In-plane: Bz = -mu0 m/(4 pi r^3).
	got = DipoleBz(Vec3{}, Vec3{z, 0, 0})
	want = -Mu0 / (4 * math.Pi * z * z * z)
	if math.Abs(got-want) > math.Abs(want)*1e-12 {
		t.Fatalf("in-plane dipole Bz = %g, want %g", got, want)
	}
	if DipoleBz(Vec3{}, Vec3{}) != 0 {
		t.Fatal("coincident point must give 0")
	}
}

func TestDipoleBMatchesBz(t *testing.T) {
	pos := Vec3{1e-4, -2e-4, 0}
	p := Vec3{3e-4, 5e-4, 2e-4}
	full := DipoleB(pos, p, Vec3{0, 0, 1})
	bz := DipoleBz(pos, p)
	if math.Abs(full.Z-bz) > math.Abs(bz)*1e-12 {
		t.Fatalf("DipoleB.Z = %g, DipoleBz = %g", full.Z, bz)
	}
	if DipoleB(pos, pos, Vec3{0, 0, 1}) != (Vec3{}) {
		t.Fatal("coincident dipole field must be zero-valued")
	}
}

// Coaxial circular loop above a dipole: the flux has the closed form
// mu0 m R^2 / (2 (R^2 + d^2)^(3/2)).
func TestCircleFluxAnalytic(t *testing.T) {
	const R = 1e-3
	for _, d := range []float64{5e-6, 100e-6, 500e-6} {
		c := CircleLoop{CX: 0, CY: 0, R: R, Z: d}
		got := c.FluxOfUnitDipole(Vec3{0, 0, 0}, 128)
		want := Mu0 * R * R / (2 * math.Pow(R*R+d*d, 1.5))
		if math.Abs(got-want) > want*1e-3 {
			t.Fatalf("d=%g: flux = %g, want %g", d, got, want)
		}
	}
}

// A rectangle boundary integral must converge: doubling the sampling
// should not change the result materially.
func TestRectFluxConverges(t *testing.T) {
	r := RectLoop{CX: 1e-4, CY: -2e-4, W: 1.2e-3, H: 0.8e-3, Z: 5e-6}
	src := Vec3{2e-4, 1e-4, 0}
	a := r.FluxOfUnitDipole(src, 128)
	b := r.FluxOfUnitDipole(src, 512)
	if math.Abs(a-b) > math.Abs(b)*0.01 {
		t.Fatalf("boundary integral not converged: %g vs %g", a, b)
	}
}

// Flux through a large loop far above a dipole must fall off; through a
// co-centered nearby loop it must be positive and larger.
func TestFluxOfUnitDipoleGeometry(t *testing.T) {
	near := RectLoop{CX: 0, CY: 0, W: 2e-3, H: 2e-3, Z: 5e-6}
	far := RectLoop{CX: 0, CY: 0, W: 2e-3, H: 2e-3, Z: 200e-6}
	src := Vec3{0, 0, 0}
	fNear := near.FluxOfUnitDipole(src, 16)
	fFar := far.FluxOfUnitDipole(src, 16)
	if fNear <= 0 || fFar <= 0 {
		t.Fatalf("flux through loops above a +z dipole must be positive: %g %g", fNear, fFar)
	}
	if fNear <= fFar {
		t.Fatalf("closer loop must capture more flux: near %g, far %g", fNear, fFar)
	}
	c := CircleLoop{CX: 0, CY: 0, R: 1e-3, Z: 5e-6}
	if c.FluxOfUnitDipole(src, 16) <= 0 {
		t.Fatal("circular loop flux must be positive")
	}
	if c.Area() != math.Pi*1e-6 {
		t.Fatalf("circle area = %g", c.Area())
	}
	if near.Area() != 4e-6 {
		t.Fatalf("rect area = %g", near.Area())
	}
	// Default quadrature path.
	if near.FluxOfUnitDipole(src, 0) <= 0 || c.FluxOfUnitDipole(src, 0) <= 0 {
		t.Fatal("default quadrature broken")
	}
}

func TestCoilConstructors(t *testing.T) {
	die := layout.Point{X: 1e-3, Y: 1e-3}
	spiral := OnChipSpiral(die, 10, 5e-6)
	if len(spiral.Loops) != 10 {
		t.Fatalf("spiral turns = %d", len(spiral.Loops))
	}
	if spiral.TotalArea() <= 0 || spiral.TotalArea() > 10*die.X*die.Y {
		t.Fatalf("spiral area = %g", spiral.TotalArea())
	}
	// Largest turn covers the whole die (the paper's coil covers the
	// entire circuit).
	last := spiral.Loops[len(spiral.Loops)-1].(RectLoop)
	if last.W != die.X || last.H != die.Y {
		t.Fatal("outermost turn must cover the die")
	}
	probe := ExternalProbe(die, 0.5e-3, 6, 100e-6, 20e-6)
	if len(probe.Loops) != 6 {
		t.Fatalf("probe turns = %d", len(probe.Loops))
	}
	// All probe turns share the same diameter (Figure 2(a)).
	r0 := probe.Loops[0].(CircleLoop).R
	for _, l := range probe.Loops {
		if l.(CircleLoop).R != r0 {
			t.Fatal("probe turns must share one diameter")
		}
	}
	// Defaulted turn counts.
	if len(OnChipSpiral(die, 0, 5e-6).Loops) == 0 || len(ExternalProbe(die, 1e-3, 0, 1e-4, 1e-5).Loops) == 0 {
		t.Fatal("default turns broken")
	}
}

func buildGrid() *layout.TileGrid {
	g := &layout.TileGrid{NX: 4, NY: 4, Die: layout.Point{X: 1e-3, Y: 1e-3}}
	return g
}

func TestCouplingOnChipBeatsProbe(t *testing.T) {
	grid := buildGrid()
	die := grid.Die
	spiral := OnChipSpiral(die, 8, 5e-6)
	probe := ExternalProbe(die, 0.5e-3, 8, 100e-6, 20e-6)
	aeff := 25e-12
	cs, err := NewCoupling(spiral, grid, aeff, 8)
	if err != nil {
		t.Fatal(err)
	}
	cpb, err := NewCoupling(probe, grid, aeff, 8)
	if err != nil {
		t.Fatal(err)
	}
	var sumS, sumP float64
	for ti := range cs.M {
		sumS += math.Abs(cs.M[ti])
		sumP += math.Abs(cpb.M[ti])
	}
	if sumS <= sumP {
		t.Fatalf("on-chip coupling (%g) must exceed external probe coupling (%g)", sumS, sumP)
	}
	// Geometry alone gives the on-chip sensor a modest signal edge; the
	// bulk of the paper's ~12 dB SNR gap is the external probe's
	// environment-noise pickup, modeled in the acquisition channel.
	if sumS < 1.02*sumP {
		t.Fatalf("on-chip/external coupling ratio %g too small", sumS/sumP)
	}
}

// Moving the external probe farther away must monotonically weaken its
// coupling (the "signal intensity is closely related to the distance"
// observation motivating the on-chip sensor).
func TestProbeCouplingFallsWithHeight(t *testing.T) {
	grid := buildGrid()
	prev := math.Inf(1)
	for _, z := range []float64{50e-6, 100e-6, 200e-6, 400e-6} {
		probe := ExternalProbe(grid.Die, 0.5e-3, 8, z, 20e-6)
		cp, err := NewCoupling(probe, grid, 25e-12, 32)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, m := range cp.M {
			sum += math.Abs(m)
		}
		if sum >= prev {
			t.Fatalf("coupling did not fall with height at z=%g", z)
		}
		prev = sum
	}
}

func TestCouplingValidation(t *testing.T) {
	grid := buildGrid()
	spiral := OnChipSpiral(grid.Die, 4, 5e-6)
	if _, err := NewCoupling(spiral, grid, 0, 8); err == nil {
		t.Fatal("zero aeff must error")
	}
}

func TestEMFKnownWaveform(t *testing.T) {
	grid := buildGrid()
	spiral := OnChipSpiral(grid.Die, 4, 5e-6)
	cp, err := NewCoupling(spiral, grid, 25e-12, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Drive one tile with a unit current ramp: emf must be constant
	// -M*dI/dt after the first sample.
	const dt = 1e-9
	currents := make([][]float64, grid.NumTiles())
	for i := range currents {
		currents[i] = make([]float64, 64)
	}
	slope := 1e3 // amps per second
	for i := range currents[5] {
		currents[5][i] = slope * dt * float64(i)
	}
	emf := cp.EMF(currents, dt)
	want := -cp.M[5] * slope
	for i := 1; i < len(emf); i++ {
		if math.Abs(emf[i]-want) > math.Abs(want)*1e-9+1e-30 {
			t.Fatalf("emf[%d] = %g, want %g", i, emf[i], want)
		}
	}
	if emf[0] != emf[1] {
		t.Fatal("first sample should copy the second (no derivative available)")
	}
}

func TestEMFValidation(t *testing.T) {
	grid := buildGrid()
	spiral := OnChipSpiral(grid.Die, 4, 5e-6)
	cp, _ := NewCoupling(spiral, grid, 25e-12, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched tile count must panic")
		}
	}()
	cp.EMF(make([][]float64, 3), 1e-9)
}

func TestQuadrantSpirals(t *testing.T) {
	die := layout.Point{X: 1e-3, Y: 1e-3}
	coils := QuadrantSpirals(die, 6, 5e-6)
	for q, c := range coils {
		if len(c.Loops) != 6 {
			t.Fatalf("quadrant %d turns = %d", q, len(c.Loops))
		}
		// The outermost turn covers exactly its quadrant.
		outer := c.Loops[len(c.Loops)-1].(RectLoop)
		if outer.W != die.X/2 || outer.H != die.Y/2 {
			t.Fatalf("quadrant %d outer turn %gx%g", q, outer.W, outer.H)
		}
		// Its center sits in the right quadrant.
		if got := QuadrantOf(die, Vec3{X: outer.CX, Y: outer.CY}); got != q {
			t.Fatalf("quadrant %d centered in quadrant %d", q, got)
		}
	}
	// Default turn count.
	if len(QuadrantSpirals(die, 0, 5e-6)[0].Loops) == 0 {
		t.Fatal("default turns broken")
	}
}

func TestQuadrantOf(t *testing.T) {
	die := layout.Point{X: 2, Y: 2}
	cases := []struct {
		p Vec3
		q int
	}{
		{Vec3{0.5, 0.5, 0}, 0}, {Vec3{1.5, 0.5, 0}, 1},
		{Vec3{0.5, 1.5, 0}, 2}, {Vec3{1.5, 1.5, 0}, 3},
		{Vec3{1, 1, 0}, 3}, // boundary goes to the upper-right
	}
	for _, c := range cases {
		if got := QuadrantOf(die, c.p); got != c.q {
			t.Errorf("QuadrantOf(%+v) = %d, want %d", c.p, got, c.q)
		}
	}
	if QuadrantNames[0] != "SW" || QuadrantNames[3] != "NE" {
		t.Fatal("quadrant names wrong")
	}
}

// A dipole in a quadrant couples most strongly to that quadrant's coil.
func TestQuadrantCouplingIsLocal(t *testing.T) {
	grid := buildGrid()
	coils := QuadrantSpirals(grid.Die, 6, 5e-6)
	src := Vec3{X: grid.Die.X * 0.25, Y: grid.Die.Y * 0.75, Z: 0} // NW
	var flux [4]float64
	for q, c := range coils {
		for _, l := range c.Loops {
			flux[q] += math.Abs(l.FluxOfUnitDipole(src, 64))
		}
	}
	for q := range flux {
		if q != 2 && flux[2] <= flux[q] {
			t.Fatalf("NW dipole couples more to quadrant %d (%g) than NW (%g)", q, flux[q], flux[2])
		}
	}
}

func TestEMFIntoMatchesEMF(t *testing.T) {
	grid := buildGrid()
	coil := OnChipSpiral(grid.Die, 4, 5e-6)
	cp, err := NewCoupling(coil, grid, 25e-12, 8)
	if err != nil {
		t.Fatal(err)
	}
	currents := make([][]float64, grid.NumTiles())
	for i := range currents {
		currents[i] = make([]float64, 32)
		for s := range currents[i] {
			currents[i][s] = float64(i*s%7) * 1e-3
		}
	}
	want := cp.EMF(currents, 1e-9)
	buf := make([]float64, 64)
	got := cp.EMFInto(buf, currents, 1e-9)
	if &got[0] != &buf[0] {
		t.Error("EMFInto allocated despite sufficient capacity")
	}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, got[i], want[i])
		}
	}
	// Dirty reuse must not leak previous contents.
	got2 := cp.EMFInto(got, currents, 1e-9)
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("reused sample %d: %v != %v", i, got2[i], want[i])
		}
	}
}

func TestEMFIntoSkipsShortWaveforms(t *testing.T) {
	grid := buildGrid()
	coil := OnChipSpiral(grid.Die, 2, 5e-6)
	cp, err := NewCoupling(coil, grid, 25e-12, 4)
	if err != nil {
		t.Fatal(err)
	}
	currents := make([][]float64, grid.NumTiles())
	currents[0] = make([]float64, 8)
	for s := range currents[0] {
		currents[0][s] = 1e-3 * float64(s)
	}
	// Tile 1 has an empty waveform, tile 2 a longer-than-first one:
	// neither may panic; the long one is clamped.
	currents[1] = nil
	currents[2] = make([]float64, 20)
	for i := 3; i < len(currents); i++ {
		currents[i] = make([]float64, 8)
	}
	out := cp.EMF(currents, 1e-9)
	if len(out) != 8 {
		t.Fatalf("got %d samples, want 8", len(out))
	}
}

func TestCachedCouplingMemoizes(t *testing.T) {
	grid := buildGrid()
	coil := OnChipSpiral(grid.Die, 3, 5e-6)
	a, err := CachedCoupling(coil, grid, 25e-12, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedCoupling(OnChipSpiral(grid.Die, 3, 5e-6), grid, 25e-12, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical geometry did not hit the cache")
	}
	fresh, err := NewCoupling(coil, grid, 25e-12, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.M {
		if a.M[i] != fresh.M[i] {
			t.Fatalf("tile %d: cached M %v != fresh %v", i, a.M[i], fresh.M[i])
		}
	}
	// Different geometry must miss.
	c, err := CachedCoupling(OnChipSpiral(grid.Die, 4, 5e-6), grid, 25e-12, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different turn count aliased the same cache entry")
	}
	d, err := CachedCoupling(coil, grid, 25e-12, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("different quad resolution aliased the same cache entry")
	}
}

// The half-lines belong to the east/north quadrants: the quadrant test
// is >=, so a point exactly on a dividing line lands up and to the
// right, and the die corners map to their own quadrants.
func TestQuadrantOfBoundaries(t *testing.T) {
	die := layout.Point{X: 2, Y: 4}
	cases := []struct {
		p Vec3
		q int
	}{
		{Vec3{0, 0, 0}, 0},         // SW corner
		{Vec3{2, 0, 0}, 1},         // SE corner
		{Vec3{0, 4, 0}, 2},         // NW corner
		{Vec3{2, 4, 0}, 3},         // NE corner
		{Vec3{1, 0.5, 0}, 1},       // on the vertical divider, south half
		{Vec3{1, 3.5, 0}, 3},       // on the vertical divider, north half
		{Vec3{0.5, 2, 0}, 2},       // on the horizontal divider, west half
		{Vec3{1.5, 2, 0}, 3},       // on the horizontal divider, east half
		{Vec3{1, 2, 0}, 3},         // die center: both dividers
		{Vec3{0.999, 1.999, 0}, 0}, // just inside SW
	}
	for _, c := range cases {
		if got := QuadrantOf(die, c.p); got != c.q {
			t.Errorf("QuadrantOf(%v, %+v) = %d (%s), want %d (%s)",
				die, c.p, got, QuadrantNames[got], c.q, QuadrantNames[c.q])
		}
	}
}

// Each quadrant spiral is the whole-die spiral scaled by half in both
// axes: per-turn area is a quarter, so each quadrant coil has a quarter
// of the whole-die coil's total area — the per-coil sensitivity cost of
// localization at equal turn counts — and the four together tile it.
func TestQuadrantSpiralAreas(t *testing.T) {
	die := layout.Point{X: 1e-3, Y: 0.8e-3}
	const turns = 6
	whole := OnChipSpiral(die, turns, 5e-6)
	quads := QuadrantSpirals(die, turns, 5e-6)
	relTol := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-12*math.Max(math.Abs(got), math.Abs(want))
	}
	sum := 0.0
	for q, c := range quads {
		if !relTol(c.TotalArea(), whole.TotalArea()/4) {
			t.Errorf("quadrant %s area %g, want 1/4 of whole-die %g",
				QuadrantNames[q], c.TotalArea(), whole.TotalArea())
		}
		// Every turn stays inside its quadrant.
		for i, l := range c.Loops {
			r := l.(RectLoop)
			xLo, xHi := r.CX-r.W/2, r.CX+r.W/2
			yLo, yHi := r.CY-r.H/2, r.CY+r.H/2
			qx, qy := float64(q%2), float64(q/2)
			if xLo < qx*die.X/2-1e-15 || xHi > (qx+1)*die.X/2+1e-15 ||
				yLo < qy*die.Y/2-1e-15 || yHi > (qy+1)*die.Y/2+1e-15 {
				t.Errorf("quadrant %s turn %d [%g,%g]x[%g,%g] leaves its quadrant",
					QuadrantNames[q], i, xLo, xHi, yLo, yHi)
			}
		}
		sum += c.TotalArea()
	}
	if !relTol(sum, whole.TotalArea()) {
		t.Errorf("four quadrants sum to %g, want the whole-die %g", sum, whole.TotalArea())
	}
	// More turns never shrink the accumulated area.
	if OnChipSpiral(die, 12, 5e-6).TotalArea() <= whole.TotalArea() {
		t.Error("doubling turns did not grow the whole-die total area")
	}
}

func TestEMFWeightedInto(t *testing.T) {
	grid := buildGrid()
	coil := OnChipSpiral(grid.Die, 4, 5e-6)
	cp, err := NewCoupling(coil, grid, 25e-12, 8)
	if err != nil {
		t.Fatal(err)
	}
	currents := make([][]float64, grid.NumTiles())
	for i := range currents {
		currents[i] = make([]float64, 32)
		for s := range currents[i] {
			currents[i][s] = float64((i+2)*s%11) * 1e-3
		}
	}
	// Nil and all-ones gains must reproduce EMF exactly.
	plain := cp.EMF(currents, 1e-9)
	if got := cp.EMFWeightedInto(nil, currents, 1e-9, nil); !sliceEq(got, plain) {
		t.Fatal("nil gains differ from EMF")
	}
	ones := make([]float64, len(cp.M))
	for i := range ones {
		ones[i] = 1
	}
	if got := cp.EMFWeightedInto(nil, currents, 1e-9, ones); !sliceEq(got, plain) {
		t.Fatal("unit gains differ from EMF")
	}
	// A uniform gain scales the emf linearly.
	uniform := make([]float64, len(cp.M))
	for i := range uniform {
		uniform[i] = 1.25
	}
	scaled := cp.EMFWeightedInto(nil, currents, 1e-9, uniform)
	for i := range plain {
		if diff := scaled[i] - 1.25*plain[i]; diff > 1e-18 || diff < -1e-18 {
			t.Fatalf("sample %d: %g, want %g", i, scaled[i], 1.25*plain[i])
		}
	}
	// Per-tile gains equal re-weighting the currents themselves.
	gains := make([]float64, len(cp.M))
	for i := range gains {
		gains[i] = 0.8 + 0.05*float64(i%9)
	}
	reweighted := make([][]float64, len(currents))
	for i, w := range currents {
		reweighted[i] = make([]float64, len(w))
		for s, v := range w {
			reweighted[i][s] = gains[i] * v
		}
	}
	want := cp.EMF(reweighted, 1e-9)
	got := cp.EMFWeightedInto(nil, currents, 1e-9, gains)
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-15 || diff < -1e-15 {
			t.Fatalf("sample %d: %g, want %g", i, got[i], want[i])
		}
	}
	// A short gains slice treats the tail as gain 1 and must not panic.
	short := cp.EMFWeightedInto(nil, currents, 1e-9, gains[:3])
	if len(short) != len(plain) {
		t.Fatalf("short gains produced %d samples, want %d", len(short), len(plain))
	}
}

func sliceEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
