package logic

import (
	"math/bits"
	"testing"

	"emtrust/internal/netlist"
)

func TestAddNetOnes(t *testing.T) {
	b := netlist.NewBuilder("ones")
	in := b.Input("in", 2)
	x := b.Xor(in[0], in[1])
	b.Output("out", []netlist.Net{x})
	n := b.Build()
	sim, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.Wide()
	if err != nil {
		t.Fatal(err)
	}
	lanes := 5
	states := make([]*State, lanes)
	laneBits := make([][]uint8, lanes)
	for l := range states {
		states[l] = sim.State()
		laneBits[l] = []uint8{uint8(l & 1), uint8(l >> 1 & 1)}
	}
	if err := w.LoadStates(states); err != nil {
		t.Fatal(err)
	}
	if err := w.SetPortLanesBits("in", laneBits); err != nil {
		t.Fatal(err)
	}
	w.Settle()
	counts := make([]uint64, n.NumNets())
	w.AddNetOnes(counts)
	w.AddNetOnes(counts) // accumulates, not overwrites
	for l := 0; l < lanes; l++ {
		for bit := 0; bit < 2; bit++ {
			want := uint64(2 * ((l >> bit) & 1))
			// recompute per-net expectation below via direct check
			_ = want
		}
	}
	// in[0] is 1 on lanes 1 and 3; in[1] on lanes 2 and 3; xor on 1 and 2.
	if counts[in[0]] != 4 || counts[in[1]] != 4 || counts[x] != 4 {
		t.Errorf("counts = in0:%d in1:%d xor:%d, want 4 each (2 calls × 2 lanes)",
			counts[in[0]], counts[in[1]], counts[x])
	}
	// Cross-check against NetWord popcounts.
	if got := uint64(2 * bits.OnesCount64(w.NetWord(x))); got != counts[x] {
		t.Errorf("AddNetOnes %d disagrees with NetWord popcount %d", counts[x], got)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("AddNetOnes with short slice should panic")
		}
	}()
	w.AddNetOnes(make([]uint64, 1))
}
