package logic

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"emtrust/internal/netlist"
)

// randomNetlist builds random "gate soup": a handful of flip-flops with
// patched feedback and a few dozen combinational gates drawing inputs
// from the port, register outputs and earlier gate outputs (acyclic by
// construction). It exercises every cell type including DFFE enables and
// Mux2 selects.
func randomNetlist(rng *rand.Rand) *netlist.Netlist {
	b := netlist.NewBuilder("soup")
	width := 2 + rng.Intn(7)
	in := b.Input("in", width)
	pool := append([]netlist.Net{}, in...)

	type regInfo struct {
		cell int
		dffe bool
	}
	var regs []regInfo
	for i, n := 0, rng.Intn(6); i < n; i++ {
		dffe := rng.Intn(2) == 0
		var q netlist.Net
		if dffe {
			q = b.RegE(b.Low(), b.Low())
		} else {
			q = b.Reg(b.Low())
		}
		regs = append(regs, regInfo{cell: b.NumCells() - 1, dffe: dffe})
		pool = append(pool, q)
	}
	pick := func() netlist.Net { return pool[rng.Intn(len(pool))] }
	for i, n := 0, 5+rng.Intn(60); i < n; i++ {
		var out netlist.Net
		switch rng.Intn(11) {
		case 0:
			out = b.Buf(pick())
		case 1:
			out = b.Not(pick())
		case 2:
			out = b.And(pick(), pick())
		case 3:
			out = b.Nand(pick(), pick())
		case 4:
			out = b.Or(pick(), pick())
		case 5:
			out = b.Nor(pick(), pick())
		case 6:
			out = b.Xor(pick(), pick())
		case 7:
			out = b.Xnor(pick(), pick())
		case 8:
			out = b.Mux(pick(), pick(), pick())
		case 9:
			out = b.Const(rng.Intn(2) == 1)
		default:
			out = b.Xor(pick(), pick())
		}
		pool = append(pool, out)
	}
	// Close the sequential feedback loops through the finished soup.
	for _, r := range regs {
		b.PatchCellInput(r.cell, 0, pick())
		if r.dffe {
			b.PatchCellInput(r.cell, 1, pick())
		}
	}
	outs := make([]netlist.Net, 1+rng.Intn(4))
	for i := range outs {
		outs[i] = pick()
	}
	b.Output("out", outs)
	return b.Build()
}

type toggleRec struct {
	cell int
	rise bool
}

// differentialPair wires up a reference and a compiled simulator over
// the same netlist, with the compiled one running batched toggle
// accounting so the batch path is what the differential checks pin.
type differentialPair struct {
	n        *netlist.Netlist
	ref, cmp *Simulator
	refLog   []toggleRec
}

func newDifferentialPair(t testing.TB, n *netlist.Netlist) *differentialPair {
	t.Helper()
	ref, err := New(n, WithReferenceEngine())
	if err != nil {
		t.Fatalf("reference New: %v", err)
	}
	cmp, err := New(n)
	if err != nil {
		t.Fatalf("compiled New: %v", err)
	}
	if ref.Compiled() || !cmp.Compiled() {
		t.Fatal("engine selection broken")
	}
	d := &differentialPair{n: n, ref: ref, cmp: cmp}
	ref.OnToggle = func(cell int, rise bool) { d.refLog = append(d.refLog, toggleRec{cell, rise}) }
	cmp.BatchToggles(true)
	return d
}

// check compares net values and the step's toggle streams (reference
// callback order vs compiled batched order, including directions).
func (d *differentialPair) check(t testing.TB, step string) {
	t.Helper()
	for net := netlist.Net(1); int(net) < d.n.NumNets(); net++ {
		if rv, cv := d.ref.Net(net), d.cmp.Net(net); rv != cv {
			t.Fatalf("%s: net %d: reference=%d compiled=%d", step, net, rv, cv)
		}
	}
	events := d.cmp.TakeToggles()
	if len(events) != len(d.refLog) {
		t.Fatalf("%s: %d compiled toggles vs %d reference toggles", step, len(events), len(d.refLog))
	}
	for i, e := range events {
		if e.Cell() != d.refLog[i].cell || e.Rise() != d.refLog[i].rise {
			t.Fatalf("%s: toggle %d: compiled (cell %d, rise %v) vs reference (cell %d, rise %v)",
				step, i, e.Cell(), e.Rise(), d.refLog[i].cell, d.refLog[i].rise)
		}
	}
	if d.ref.Cycle() != d.cmp.Cycle() {
		t.Fatalf("%s: cycle %d vs %d", step, d.ref.Cycle(), d.cmp.Cycle())
	}
	d.refLog = d.refLog[:0]
}

// driveDifferential replays a stimulus byte stream against both engines,
// comparing after every operation. Byte encoding: low 3 bits select the
// operation, the rest parameterize it.
func driveDifferential(t testing.TB, n *netlist.Netlist, stimulus []byte) {
	t.Helper()
	d := newDifferentialPair(t, n)
	d.check(t, "initial settle")
	var refSnap, cmpSnap *State
	for i, by := range stimulus {
		switch by & 7 {
		case 0, 1, 2, 3: // drive the port, settle inside the cycle, tick
			v := uint64(by >> 3)
			if err := d.ref.SetPortUint("in", v); err != nil {
				t.Fatal(err)
			}
			if err := d.cmp.SetPortUint("in", v); err != nil {
				t.Fatal(err)
			}
			d.ref.Settle()
			d.cmp.Settle()
			d.check(t, "settle")
			d.ref.Tick()
			d.cmp.Tick()
			d.check(t, "tick after settle")
		case 4: // drive and tick without an explicit settle
			v := uint64(by >> 3)
			d.ref.SetPortUint("in", v)
			d.cmp.SetPortUint("in", v)
			d.ref.Tick()
			d.cmp.Tick()
			d.check(t, "tick")
		case 5: // snapshot, run ahead, restore, replay
			if refSnap == nil {
				refSnap, cmpSnap = d.ref.State(), d.cmp.State()
			} else {
				d.ref.SetState(refSnap)
				d.cmp.SetState(cmpSnap)
				refSnap, cmpSnap = nil, nil
				d.refLog = d.refLog[:0]
				d.cmp.TakeToggles()
				d.ref.Tick()
				d.cmp.Tick()
				d.check(t, "tick after restore")
			}
		case 6: // fork both and continue on the forks
			ref, cmp := d.ref.Fork(), d.cmp.Fork()
			ref.OnToggle = func(cell int, rise bool) { d.refLog = append(d.refLog, toggleRec{cell, rise}) }
			cmp.BatchToggles(true)
			d.ref, d.cmp = ref, cmp
			d.ref.Tick()
			d.cmp.Tick()
			d.check(t, "tick after fork")
		case 7: // reset (toggle reporting suppressed on both)
			d.ref.Reset()
			d.cmp.Reset()
			d.check(t, "reset")
		}
		_ = i
	}
}

// TestDifferentialRandomNetlists pins compiled-vs-reference equality on
// a few hundred random designs with random stimulus: identical net
// values after every operation and identical toggle streams (cells,
// directions and order) per step.
func TestDifferentialRandomNetlists(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetlist(rng)
		stim := make([]byte, 40)
		rng.Read(stim)
		driveDifferential(t, n, stim)
	}
}

// TestDifferentialStuckAt covers the stuck-at netlist mutation: the tie
// cell replacing a driver must behave identically under both engines.
func TestDifferentialStuckAt(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		n := randomNetlist(rng)
		// Stick the output of the last cell (always present).
		target := n.Cells[len(n.Cells)-1].Output
		sa, err := n.StuckAt(target, seed%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		stim := make([]byte, 24)
		rng.Read(stim)
		driveDifferential(t, sa, stim)
	}
}

// TestDifferentialCrossEngineState restores a reference-engine snapshot
// into a compiled simulator (and vice versa): the compiled engine must
// schedule a conservative full pass and converge to identical state.
func TestDifferentialCrossEngineState(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := randomNetlist(rng)
	d := newDifferentialPair(t, n)
	for i := 0; i < 10; i++ {
		v := uint64(rng.Intn(256))
		d.ref.SetPortUint("in", v)
		d.cmp.SetPortUint("in", v)
		d.ref.Tick()
		d.cmp.Tick()
	}
	d.refLog = d.refLog[:0]
	d.cmp.TakeToggles()
	// A reference snapshot carries no scheduling info; the compiled
	// engine must still replay identically from it.
	snap := d.ref.State()
	d.cmp.SetState(snap)
	d.check(t, "cross-engine restore")
	d.ref.SetState(snap)
	for i := 0; i < 5; i++ {
		v := uint64(rng.Intn(256))
		d.ref.SetPortUint("in", v)
		d.cmp.SetPortUint("in", v)
		d.ref.Tick()
		d.cmp.Tick()
		d.check(t, "tick after cross-engine restore")
	}
}

// FuzzCompiledVsReference fuzzes the differential harness: the first 8
// bytes seed the random netlist shape, the rest replay as stimulus
// against both engines. Any divergence in net values, toggle counts,
// toggle order or toggle direction fails.
func FuzzCompiledVsReference(f *testing.F) {
	f.Add([]byte("emtrust0\x00\x08\x11\x1a\x23\x2c\x35\x3e\x47\x50"))
	f.Add([]byte("\x01\x00\x00\x00\x00\x00\x00\x00\x04\x05\x06\x07\x0c\x15\x1e\x27"))
	f.Add([]byte("\xff\xfe\xfd\xfc\xfb\xfa\xf9\xf8\x05\x05\x06\x06\x07\x07\x04\x04"))
	f.Add([]byte("differential-seed"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		seed := int64(binary.LittleEndian.Uint64(data[:8]))
		rng := rand.New(rand.NewSource(seed))
		n := randomNetlist(rng)
		stim := data[8:]
		if len(stim) > 64 {
			stim = stim[:64]
		}
		driveDifferential(t, n, stim)
	})
}

// TestCompiledActivityFactor is a living measurement, not an assertion
// of hardware truth: on random soup with random stimulus the compiled
// engine must evaluate strictly fewer cell visits than cycles times
// cells (the reference cost), or the event-driven machinery is not
// actually skipping anything.
func TestCompiledSkipsQuietCells(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := randomNetlist(rng)
	sim, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	// A tick with unchanged inputs after settling must evaluate only
	// cells reachable from toggled flip-flops. With no state change at
	// all, zero toggles must be reported.
	sim.Run(3)
	sim.BatchToggles(true)
	sim.Settle() // nothing changed since the last settle
	if got := len(sim.TakeToggles()); got != 0 {
		t.Fatalf("settle with no input change produced %d toggles", got)
	}
}
