package logic

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"emtrust/internal/netlist"
)

// wideHarness runs one WideState against per-lane scalar pairs — a
// reference-engine and a compiled simulator per lane — so every check
// is a three-way differential: wide vs compiled vs reference, per lane,
// including toggle streams in order.
type wideHarness struct {
	n      *netlist.Netlist
	lanes  int
	ref    []*Simulator
	cmp    []*Simulator
	refLog [][]toggleRec
	w      *WideState
}

func newWideHarness(t testing.TB, n *netlist.Netlist, lanes int) *wideHarness {
	t.Helper()
	base, err := New(n)
	if err != nil {
		t.Fatalf("compiled New: %v", err)
	}
	w, err := base.Wide()
	if err != nil {
		t.Fatalf("Wide: %v", err)
	}
	sts := make([]*State, lanes)
	for l := range sts {
		sts[l] = base.State()
	}
	if err := w.LoadStates(sts); err != nil {
		t.Fatalf("LoadStates: %v", err)
	}
	h := &wideHarness{n: n, lanes: lanes, w: w, refLog: make([][]toggleRec, lanes)}
	for l := 0; l < lanes; l++ {
		ref, err := New(n, WithReferenceEngine())
		if err != nil {
			t.Fatalf("reference New: %v", err)
		}
		l := l
		ref.OnToggle = func(cell int, rise bool) {
			h.refLog[l] = append(h.refLog[l], toggleRec{cell, rise})
		}
		cmp, err := New(n)
		if err != nil {
			t.Fatalf("compiled New: %v", err)
		}
		cmp.BatchToggles(true)
		h.ref = append(h.ref, ref)
		h.cmp = append(h.cmp, cmp)
	}
	return h
}

// check compares, per lane, every net value and the step's toggle
// stream (cells, directions, order) across all three engines, then
// clears the accumulated streams.
func (h *wideHarness) check(t testing.TB, step string) {
	t.Helper()
	for l := 0; l < h.lanes; l++ {
		for net := netlist.Net(1); int(net) < h.n.NumNets(); net++ {
			rv, cv, wv := h.ref[l].Net(net), h.cmp[l].Net(net), h.w.NetLane(net, l)
			if rv != cv || cv != wv {
				t.Fatalf("%s: lane %d net %d: reference=%d compiled=%d wide=%d", step, l, net, rv, cv, wv)
			}
		}
		if hi := h.w.NetWord(netlist.Net(1)) &^ h.w.mask; hi != 0 {
			t.Fatalf("%s: lane word has bits above the %d-lane mask: %#x", step, h.lanes, hi)
		}
		evC := h.cmp[l].TakeToggles()
		evW := h.w.LaneToggles(l)
		if len(evC) != len(evW) || len(evC) != len(h.refLog[l]) {
			t.Fatalf("%s: lane %d: %d wide toggles vs %d compiled vs %d reference",
				step, l, len(evW), len(evC), len(h.refLog[l]))
		}
		for i := range evC {
			r := h.refLog[l][i]
			if evW[i].Cell() != evC[i].Cell() || evW[i].Rise() != evC[i].Rise() ||
				evC[i].Cell() != r.cell || evC[i].Rise() != r.rise {
				t.Fatalf("%s: lane %d toggle %d: wide (cell %d, rise %v) compiled (cell %d, rise %v) reference (cell %d, rise %v)",
					step, l, i, evW[i].Cell(), evW[i].Rise(), evC[i].Cell(), evC[i].Rise(), r.cell, r.rise)
			}
		}
		if h.ref[l].Cycle() != h.w.Cycle() || h.cmp[l].Cycle() != h.w.Cycle() {
			t.Fatalf("%s: lane %d cycle: reference %d compiled %d wide %d",
				step, l, h.ref[l].Cycle(), h.cmp[l].Cycle(), h.w.Cycle())
		}
		h.refLog[l] = h.refLog[l][:0]
	}
	h.w.ResetToggles()
}

func (h *wideHarness) settleAll() {
	for l := 0; l < h.lanes; l++ {
		h.ref[l].Settle()
		h.cmp[l].Settle()
	}
	h.w.Settle()
}

func (h *wideHarness) tickAll() {
	for l := 0; l < h.lanes; l++ {
		h.ref[l].Tick()
		h.cmp[l].Tick()
	}
	h.w.Tick()
}

// driveWideDifferential replays a stimulus byte stream against the
// harness, comparing after every operation. The low 3 bits of each byte
// select the operation; the rest parameterize it. Lane stimulus is
// deliberately divergent (a per-lane offset folded into the value) so
// lanes exercise different paths through the same word-parallel settle.
func driveWideDifferential(t testing.TB, n *netlist.Netlist, lanes int, stimulus []byte) {
	t.Helper()
	h := newWideHarness(t, n, lanes)
	h.check(t, "initial load")
	for _, by := range stimulus {
		switch by & 7 {
		case 0, 1, 2, 3: // lane-divergent port values, settle, tick
			for l := 0; l < lanes; l++ {
				v := uint64(by>>3) + 7*uint64(l)
				if err := h.ref[l].SetPortUint("in", v); err != nil {
					t.Fatal(err)
				}
				if err := h.cmp[l].SetPortUint("in", v); err != nil {
					t.Fatal(err)
				}
				if err := h.w.SetPortLaneUint("in", l, v); err != nil {
					t.Fatal(err)
				}
			}
			h.settleAll()
			h.check(t, "settle")
			h.tickAll()
			h.check(t, "tick after settle")
		case 4: // broadcast port value, tick without explicit settle
			v := uint64(by >> 3)
			for l := 0; l < lanes; l++ {
				h.ref[l].SetPortUint("in", v)
				h.cmp[l].SetPortUint("in", v)
			}
			if err := h.w.SetPortUintAll("in", v); err != nil {
				t.Fatal(err)
			}
			h.tickAll()
			h.check(t, "tick broadcast")
		case 5: // lane extraction round-trip
			l := int(by>>3) % lanes
			st := h.w.LaneState(l)
			if !st.ValuesEqual(h.cmp[l].State()) {
				t.Fatalf("LaneState(%d) diverges from the lane's scalar state", l)
			}
			if st.cycle != h.cmp[l].Cycle() {
				t.Fatalf("LaneState(%d) cycle %d vs scalar %d", l, st.cycle, h.cmp[l].Cycle())
			}
		case 6: // per-lane bit vectors through the transposing port write
			p, ok := n.InputPort("in")
			if !ok {
				t.Fatal("no input port")
			}
			laneBits := make([][]uint8, lanes)
			for l := range laneBits {
				bits := make([]uint8, len(p.Nets))
				for i := range bits {
					bits[i] = uint8((int(by>>3) + 3*l + i) & 1)
				}
				laneBits[l] = bits
				h.ref[l].SetPortBits("in", bits)
				h.cmp[l].SetPortBits("in", bits)
			}
			if err := h.w.SetPortLanesBits("in", laneBits); err != nil {
				t.Fatal(err)
			}
			h.settleAll()
			h.check(t, "settle lane bits")
			h.tickAll()
			h.check(t, "tick lane bits")
		case 7: // broadcast bit vector
			p, ok := n.InputPort("in")
			if !ok {
				t.Fatal("no input port")
			}
			bits := make([]uint8, len(p.Nets))
			for i := range bits {
				bits[i] = uint8(int(by>>3) >> (i & 7) & 1)
			}
			for l := 0; l < lanes; l++ {
				h.ref[l].SetPortBits("in", bits)
				h.cmp[l].SetPortBits("in", bits)
			}
			if err := h.w.SetPortBitsAll("in", bits); err != nil {
				t.Fatal(err)
			}
			h.tickAll()
			h.check(t, "tick broadcast bits")
		}
	}
}

// TestWideDifferentialRandomNetlists pins wide-vs-compiled-vs-reference
// equality on 300 random designs with random stimulus and random lane
// counts from 1 to 64 — including partial last words — per lane:
// identical net values after every operation and identical toggle
// streams (cells, directions, order) per step.
func TestWideDifferentialRandomNetlists(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		n := randomNetlist(rng)
		lanes := 1 + rng.Intn(MaxLanes)
		stim := make([]byte, 24)
		rng.Read(stim)
		driveWideDifferential(t, n, lanes, stim)
	}
}

// TestWideZeroActivityLanes pins the per-lane toggle filter: when a
// single lane's stimulus changes, every other lane's toggle stream must
// stay empty even though the wide settle visits the dirtied ranks for
// all lanes at once.
func TestWideZeroActivityLanes(t *testing.T) {
	b := netlist.NewBuilder("quiet")
	in := b.Input("in", 2)
	x := b.Xor(in[0], in[1])
	q := b.Reg(x)
	b.Output("out", []netlist.Net{b.Not(q)})
	n := b.Build()

	h := newWideHarness(t, n, MaxLanes)
	h.check(t, "load")
	const active = 37
	for l := 0; l < MaxLanes; l++ {
		v := uint64(0)
		if l == active {
			v = 1
		}
		h.ref[l].SetPortUint("in", v)
		h.cmp[l].SetPortUint("in", v)
		h.w.SetPortLaneUint("in", l, v)
	}
	h.settleAll()
	for l := 0; l < MaxLanes; l++ {
		if l != active && len(h.w.LaneToggles(l)) != 0 {
			t.Fatalf("inactive lane %d reported %d toggles", l, len(h.w.LaneToggles(l)))
		}
	}
	if len(h.w.LaneToggles(active)) == 0 {
		t.Fatal("active lane reported no toggles")
	}
	h.check(t, "single-lane settle")
	h.tickAll()
	h.check(t, "single-lane tick")
}

// TestWideAllLanesToggle drives all 64 lanes through the same
// transition: every lane must report the full toggle stream and the
// toggled net words must saturate the lane mask.
func TestWideAllLanesToggle(t *testing.T) {
	b := netlist.NewBuilder("saturate")
	in := b.Input("in", 1)
	inv := b.Not(in[0])
	q := b.Reg(inv)
	b.Output("out", []netlist.Net{q})
	n := b.Build()

	h := newWideHarness(t, n, MaxLanes)
	h.check(t, "load")
	// inv settles to 1 on every lane at load; in=0 keeps it there, so
	// the first tick loads q=1 on all 64 lanes simultaneously.
	if got := h.w.NetWord(inv); got != h.w.mask {
		t.Fatalf("inverter word %#x, want full mask %#x", got, h.w.mask)
	}
	h.tickAll()
	for l := 0; l < MaxLanes; l++ {
		if len(h.w.LaneToggles(l)) == 0 {
			t.Fatalf("lane %d missed the all-lane flip-flop toggle", l)
		}
	}
	if got := h.w.NetWord(q); got != h.w.mask {
		t.Fatalf("flip-flop word %#x, want full mask %#x", got, h.w.mask)
	}
	h.check(t, "all-lane tick")
	// Now flip the input on every lane at once: inv falls everywhere.
	for l := 0; l < MaxLanes; l++ {
		h.ref[l].SetPortUint("in", 1)
		h.cmp[l].SetPortUint("in", 1)
	}
	h.w.SetPortUintAll("in", 1)
	h.settleAll()
	if got := h.w.NetWord(inv); got != 0 {
		t.Fatalf("inverter word %#x after all-lane fall, want 0", got)
	}
	h.check(t, "all-lane settle")
}

// TestWidePartialWordMasking pins the lane mask on a partial last word:
// with 5 lanes no computation — including output-inverting gates whose
// intermediate words carry high garbage bits — may leak values above
// the mask, and constants must read back masked.
func TestWidePartialWordMasking(t *testing.T) {
	b := netlist.NewBuilder("partial")
	in := b.Input("in", 2)
	hi := b.Const(true)
	inv := b.Not(in[0])
	nand := b.Nand(in[1], hi)
	q := b.Reg(b.Xor(inv, nand))
	b.Output("out", []netlist.Net{q})
	n := b.Build()

	const lanes = 5
	h := newWideHarness(t, n, lanes)
	h.check(t, "load")
	if got, want := h.w.NetWord(hi), uint64(1<<lanes-1); got != want {
		t.Fatalf("constant-1 word %#x, want %#x", got, want)
	}
	for _, net := range []netlist.Net{hi, inv, nand, q} {
		if over := h.w.NetWord(net) &^ h.w.mask; over != 0 {
			t.Fatalf("net %d carries bits above the 5-lane mask: %#x", net, over)
		}
	}
	rng := rand.New(rand.NewSource(9))
	stim := make([]byte, 16)
	rng.Read(stim)
	driveWideDifferential(t, n, lanes, stim)
}

// TestWideDFFEDivergentEnables pins the enable path of DFFE under
// lane-divergent enables: enabled lanes load D while disabled lanes
// hold Q, within one word-parallel commit.
func TestWideDFFEDivergentEnables(t *testing.T) {
	b := netlist.NewBuilder("dffe")
	in := b.Input("in", 2)
	q := b.RegE(in[0], in[1])
	b.Output("out", []netlist.Net{q})
	n := b.Build()

	const lanes = 7
	h := newWideHarness(t, n, lanes)
	h.check(t, "load")
	// Odd lanes enabled with D=1, even lanes disabled with D=1: after
	// the tick only odd lanes hold 1.
	for l := 0; l < lanes; l++ {
		v := uint64(1) // D=1, en=0
		if l&1 == 1 {
			v = 3 // D=1, en=1
		}
		h.ref[l].SetPortUint("in", v)
		h.cmp[l].SetPortUint("in", v)
		h.w.SetPortLaneUint("in", l, v)
	}
	h.settleAll()
	h.check(t, "settle divergent enables")
	h.tickAll()
	for l := 0; l < lanes; l++ {
		want := uint8(l & 1)
		if got := h.w.NetLane(q, l); got != want {
			t.Fatalf("lane %d DFFE q=%d, want %d", l, got, want)
		}
	}
	h.check(t, "tick divergent enables")
	// Disable everywhere with D=0: every lane must hold.
	for l := 0; l < lanes; l++ {
		h.ref[l].SetPortUint("in", 0)
		h.cmp[l].SetPortUint("in", 0)
	}
	h.w.SetPortUintAll("in", 0)
	h.tickAll()
	for l := 0; l < lanes; l++ {
		want := uint8(l & 1)
		if got := h.w.NetLane(q, l); got != want {
			t.Fatalf("lane %d DFFE lost its held value: q=%d, want %d", l, got, want)
		}
	}
	h.check(t, "hold under disabled enables")
}

// FuzzWideVsCompiled fuzzes the wide differential harness: the first 8
// bytes seed the random netlist shape, the ninth picks the lane count
// (1–64), the rest replay as per-lane stimulus against the wide,
// compiled and reference engines. Any divergence in net values, toggle
// counts, toggle order or toggle direction fails.
func FuzzWideVsCompiled(f *testing.F) {
	f.Add([]byte("emtrust0\x3f\x00\x08\x11\x1a\x23\x2c\x35\x3e\x47\x50"))
	f.Add([]byte("\x01\x00\x00\x00\x00\x00\x00\x00\x01\x04\x05\x06\x07\x0c\x15\x1e\x27"))
	f.Add([]byte("\xff\xfe\xfd\xfc\xfb\xfa\xf9\xf8\x20\x05\x05\x06\x06\x07\x07\x04"))
	f.Add([]byte("wide-differential"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 {
			return
		}
		seed := int64(binary.LittleEndian.Uint64(data[:8]))
		lanes := int(data[8])%MaxLanes + 1
		rng := rand.New(rand.NewSource(seed))
		n := randomNetlist(rng)
		stim := data[9:]
		if len(stim) > 48 {
			stim = stim[:48]
		}
		driveWideDifferential(t, n, lanes, stim)
	})
}
