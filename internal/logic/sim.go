// Package logic implements a levelized two-value synchronous simulator for
// gate-level netlists. It evaluates the full combinational cone once per
// clock cycle in topological order (glitch-free zero-delay semantics) and
// reports every output toggle to an optional callback, which the power
// model turns into switching current.
package logic

import (
	"fmt"

	"emtrust/internal/netlist"
)

// Simulator simulates one netlist instance. It is not safe for concurrent
// use; create one Simulator per goroutine.
type Simulator struct {
	n      *netlist.Netlist
	values []uint8 // current value per net (0 or 1)
	order  []int   // combinational cell indices in topological order
	seq    []int   // sequential cell indices
	newQ   []uint8 // scratch for two-phase flip-flop update
	cycle  int

	// OnToggle, when non-nil, is invoked for every cell output toggle
	// with the cell index and the new output value's direction
	// (rise=true for a 0->1 transition). Flip-flop toggles fire at the
	// clock edge, combinational toggles during settling; both belong to
	// the cycle reported by Cycle() at callback time.
	OnToggle func(cell int, rise bool)
}

// New builds a simulator for n. It fails if the combinational logic
// contains a cycle (through non-sequential cells).
func New(n *netlist.Netlist) (*Simulator, error) {
	s := &Simulator{
		n:      n,
		values: make([]uint8, n.NumNets()),
	}
	for i, c := range n.Cells {
		if c.Type.IsSequential() {
			s.seq = append(s.seq, i)
		}
	}
	s.newQ = make([]uint8, len(s.seq))
	order, err := levelize(n)
	if err != nil {
		return nil, err
	}
	s.order = order
	s.settle() // establish consistent all-zero-input state
	return s, nil
}

// levelize returns the combinational cells of n in topological order using
// Kahn's algorithm. Sequential cell outputs and primary inputs are
// sources.
func levelize(n *netlist.Netlist) ([]int, error) {
	// fanout lists and in-degrees over combinational cells only.
	indeg := make([]int, len(n.Cells))
	fanout := make([][]int32, n.NumNets())
	comb := 0
	for i, c := range n.Cells {
		if c.Type.IsSequential() {
			continue
		}
		comb++
		for _, in := range c.Inputs {
			d := n.Driver(in)
			if d >= 0 && !n.Cells[d].Type.IsSequential() {
				indeg[i]++
				fanout[in] = append(fanout[in], int32(i))
			}
		}
	}
	order := make([]int, 0, comb)
	queue := make([]int, 0, comb)
	for i, c := range n.Cells {
		if !c.Type.IsSequential() && indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, j := range fanout[n.Cells[i].Output] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, int(j))
			}
		}
	}
	if len(order) != comb {
		return nil, fmt.Errorf("logic: netlist %s has a combinational cycle (%d of %d cells levelized)",
			n.Name, len(order), comb)
	}
	return order, nil
}

// Netlist returns the design under simulation.
func (s *Simulator) Netlist() *netlist.Netlist { return s.n }

// State is an opaque copy of a simulator's mutable state (net values and
// cycle counter). It lets capture engines roll a simulator back to a
// known point without re-settling or losing input-port values the way
// Reset would.
type State struct {
	values []uint8
	cycle  int
}

// State snapshots the simulator's current net values and cycle counter.
func (s *Simulator) State() *State {
	v := make([]uint8, len(s.values))
	copy(v, s.values)
	return &State{values: v, cycle: s.cycle}
}

// SetState restores a snapshot taken with State. The snapshot must come
// from a simulator of the same netlist; a length mismatch is a
// programming error and panics.
func (s *Simulator) SetState(st *State) {
	if len(st.values) != len(s.values) {
		panic(fmt.Sprintf("logic: state of %d nets restored into simulator of %d nets", len(st.values), len(s.values)))
	}
	copy(s.values, st.values)
	s.cycle = st.cycle
}

// Fork returns an independent simulator over the same netlist, starting
// from s's current state. The immutable levelization (topological order
// and sequential-cell list) is shared with s; values and scratch buffers
// are copied, so the fork can run on another goroutine.
func (s *Simulator) Fork() *Simulator {
	f := &Simulator{
		n:      s.n,
		values: make([]uint8, len(s.values)),
		order:  s.order,
		seq:    s.seq,
		newQ:   make([]uint8, len(s.seq)),
		cycle:  s.cycle,
	}
	copy(f.values, s.values)
	return f
}

// Cycle returns the number of completed Tick calls since the last Reset.
func (s *Simulator) Cycle() int { return s.cycle }

// Reset zeroes all state and re-settles the combinational logic. Toggle
// callbacks are suppressed during reset.
func (s *Simulator) Reset() {
	for i := range s.values {
		s.values[i] = 0
	}
	s.cycle = 0
	saved := s.OnToggle
	s.OnToggle = nil
	s.settle()
	s.OnToggle = saved
}

// Net returns the current value (0 or 1) of a net.
func (s *Simulator) Net(n netlist.Net) uint8 { return s.values[n] }

// SetPortBits drives a named input port with the given bit values
// (LSB first). The slice length must match the port width.
func (s *Simulator) SetPortBits(name string, bits []uint8) error {
	p, ok := s.n.InputPort(name)
	if !ok {
		return fmt.Errorf("logic: no input port %q on %s", name, s.n.Name)
	}
	if len(bits) != len(p.Nets) {
		return fmt.Errorf("logic: port %q width %d, got %d bits", name, len(p.Nets), len(bits))
	}
	for i, b := range bits {
		if b != 0 {
			s.values[p.Nets[i]] = 1
		} else {
			s.values[p.Nets[i]] = 0
		}
	}
	return nil
}

// SetPortUint drives up to 64 bits of a named input port from an integer
// (LSB first). Wider ports have their upper bits cleared.
func (s *Simulator) SetPortUint(name string, v uint64) error {
	p, ok := s.n.InputPort(name)
	if !ok {
		return fmt.Errorf("logic: no input port %q on %s", name, s.n.Name)
	}
	for i, net := range p.Nets {
		if i < 64 && v>>uint(i)&1 == 1 {
			s.values[net] = 1
		} else {
			s.values[net] = 0
		}
	}
	return nil
}

// PortBits samples a named output (or input) port, LSB first.
func (s *Simulator) PortBits(name string) ([]uint8, error) {
	p, ok := s.n.OutputPort(name)
	if !ok {
		p, ok = s.n.InputPort(name)
		if !ok {
			return nil, fmt.Errorf("logic: no port %q on %s", name, s.n.Name)
		}
	}
	bits := make([]uint8, len(p.Nets))
	for i, net := range p.Nets {
		bits[i] = s.values[net]
	}
	return bits, nil
}

// PortUint samples up to 64 bits of a named port as an integer.
func (s *Simulator) PortUint(name string) (uint64, error) {
	bits, err := s.PortBits(name)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i, b := range bits {
		if i >= 64 {
			break
		}
		if b != 0 {
			v |= 1 << uint(i)
		}
	}
	return v, nil
}

// Settle propagates the combinational logic with the current input and
// register values without advancing the clock. Most callers only need
// Tick; Settle is useful to observe cycle-0 combinational outputs.
func (s *Simulator) Settle() { s.settle() }

// Tick advances one clock cycle: flip-flops capture their (previously
// settled) D inputs at the rising edge, then the combinational logic
// settles with the new register outputs and any inputs applied since the
// last Tick.
func (s *Simulator) Tick() {
	s.cycle++
	// Phase 1: sample every D/enable before writing any Q so that
	// flip-flop chains shift correctly.
	for k, ci := range s.seq {
		c := &s.n.Cells[ci]
		switch c.Type {
		case netlist.DFF:
			s.newQ[k] = s.values[c.Inputs[0]]
		case netlist.DFFE:
			if s.values[c.Inputs[1]] != 0 {
				s.newQ[k] = s.values[c.Inputs[0]]
			} else {
				s.newQ[k] = s.values[c.Output]
			}
		}
	}
	// Phase 2: commit and report edges.
	for k, ci := range s.seq {
		out := s.n.Cells[ci].Output
		old := s.values[out]
		nv := s.newQ[k]
		if nv != old {
			s.values[out] = nv
			if s.OnToggle != nil {
				s.OnToggle(ci, nv == 1)
			}
		}
	}
	s.settle()
}

// Run advances the simulator n cycles.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Tick()
	}
}

func (s *Simulator) settle() {
	v := s.values
	for _, ci := range s.order {
		c := &s.n.Cells[ci]
		var nv uint8
		switch c.Type {
		case netlist.TieLo:
			nv = 0
		case netlist.TieHi:
			nv = 1
		case netlist.Buf:
			nv = v[c.Inputs[0]]
		case netlist.Inv:
			nv = v[c.Inputs[0]] ^ 1
		case netlist.And2:
			nv = v[c.Inputs[0]] & v[c.Inputs[1]]
		case netlist.Nand2:
			nv = (v[c.Inputs[0]] & v[c.Inputs[1]]) ^ 1
		case netlist.Or2:
			nv = v[c.Inputs[0]] | v[c.Inputs[1]]
		case netlist.Nor2:
			nv = (v[c.Inputs[0]] | v[c.Inputs[1]]) ^ 1
		case netlist.Xor2:
			nv = v[c.Inputs[0]] ^ v[c.Inputs[1]]
		case netlist.Xnor2:
			nv = v[c.Inputs[0]] ^ v[c.Inputs[1]] ^ 1
		case netlist.Mux2:
			if v[c.Inputs[2]] != 0 {
				nv = v[c.Inputs[1]]
			} else {
				nv = v[c.Inputs[0]]
			}
		}
		if old := v[c.Output]; nv != old {
			v[c.Output] = nv
			if s.OnToggle != nil {
				s.OnToggle(ci, nv == 1)
			}
		}
	}
}
