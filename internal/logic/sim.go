// Package logic implements a levelized two-value synchronous simulator for
// gate-level netlists. Two engines share one semantics: the reference
// evaluator sweeps the full combinational cone once per clock cycle in
// topological order (glitch-free zero-delay semantics), and the default
// compiled engine (see compiled.go) evaluates the same cone
// event-driven — only cells whose inputs changed — with bit-identical
// net values and toggle streams. Every output toggle is reported either
// through an optional callback or, batched, through TakeToggles; the
// power model turns the reports into switching current.
package logic

import (
	"bytes"
	"fmt"

	"emtrust/internal/netlist"
)

// Simulator simulates one netlist instance. It is not safe for concurrent
// use; create one Simulator per goroutine.
type Simulator struct {
	n      *netlist.Netlist
	values []uint8 // current value per net (0 or 1)
	order  []int   // combinational cell indices in topological order
	seq    []int   // sequential cell indices
	newQ   []uint8 // scratch for two-phase flip-flop update
	cycle  int

	// Compiled event-driven engine (nil when the reference evaluator
	// was selected). dirty is a per-rank scheduling bitset; minW/maxW
	// bound the occupied words (minW > maxW means empty). ov caches
	// each combinational cell's output value indexed by rank (invariant
	// ov[r] == values[out(r)]) so the settle scan compares against a
	// near-sequential load instead of a random net access.
	prog       *program
	dirty      []uint64
	ov         []uint8
	minW, maxW int

	// Batched toggle accounting (see BatchToggles/TakeToggles). When
	// batch is set, toggles are appended to events instead of invoking
	// OnToggle.
	batch  bool
	events []ToggleEvent

	// OnToggle, when non-nil, is invoked for every cell output toggle
	// with the cell index and the new output value's direction
	// (rise=true for a 0->1 transition). Flip-flop toggles fire at the
	// clock edge, combinational toggles during settling; both belong to
	// the cycle reported by Cycle() at callback time. While batched
	// accounting is enabled (BatchToggles), the callback is not invoked.
	OnToggle func(cell int, rise bool)
}

// Option configures a Simulator at construction time.
type Option func(*simOptions)

type simOptions struct {
	reference bool
}

// WithReferenceEngine selects the straight-line full-cone evaluator
// instead of the default compiled event-driven engine. The two engines
// produce bit-identical net values and toggle streams (pinned by the
// differential tests); the reference engine exists as the semantic
// ground truth and for performance comparison.
func WithReferenceEngine() Option {
	return func(o *simOptions) { o.reference = true }
}

// ToggleEvent packs one output toggle reported by batched accounting:
// the toggling cell's index in bits 1.. and the new output value in
// bit 0 (1 for a rising edge).
type ToggleEvent int32

// Cell returns the index of the toggling cell.
func (e ToggleEvent) Cell() int { return int(e >> 1) }

// Rise reports whether the toggle was a 0->1 transition.
func (e ToggleEvent) Rise() bool { return e&1 != 0 }

// New builds a simulator for n. It fails if the combinational logic
// contains a cycle (through non-sequential cells). By default the
// compiled event-driven engine is used; see WithReferenceEngine.
func New(n *netlist.Netlist, opts ...Option) (*Simulator, error) {
	var o simOptions
	for _, opt := range opts {
		opt(&o)
	}
	s := &Simulator{
		n:      n,
		values: make([]uint8, n.NumNets()),
	}
	for i, c := range n.Cells {
		if c.Type.IsSequential() {
			s.seq = append(s.seq, i)
		}
	}
	s.newQ = make([]uint8, len(s.seq))
	order, err := levelize(n)
	if err != nil {
		return nil, err
	}
	s.order = order
	if !o.reference {
		// compile returns nil for designs whose net indices do not fit
		// the packed instruction word; those fall back to the reference
		// evaluator transparently.
		s.prog = compile(n, order, s.seq)
	}
	if s.prog != nil {
		s.dirty = make([]uint64, s.prog.nwords)
		s.ov = make([]uint8, len(order))
		s.minW, s.maxW = len(s.dirty), -1
		s.markAll()
	}
	s.settle() // establish consistent all-zero-input state
	return s, nil
}

// Compiled reports whether the simulator runs the compiled event-driven
// engine (as opposed to the reference evaluator).
func (s *Simulator) Compiled() bool { return s.prog != nil }

// levelize returns the combinational cells of n in topological order using
// Kahn's algorithm. Sequential cell outputs and primary inputs are
// sources.
func levelize(n *netlist.Netlist) ([]int, error) {
	// fanout lists and in-degrees over combinational cells only.
	indeg := make([]int, len(n.Cells))
	fanout := make([][]int32, n.NumNets())
	comb := 0
	for i, c := range n.Cells {
		if c.Type.IsSequential() {
			continue
		}
		comb++
		for _, in := range c.Inputs {
			d := n.Driver(in)
			if d >= 0 && !n.Cells[d].Type.IsSequential() {
				indeg[i]++
				fanout[in] = append(fanout[in], int32(i))
			}
		}
	}
	order := make([]int, 0, comb)
	queue := make([]int, 0, comb)
	for i, c := range n.Cells {
		if !c.Type.IsSequential() && indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, j := range fanout[n.Cells[i].Output] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, int(j))
			}
		}
	}
	if len(order) != comb {
		return nil, fmt.Errorf("logic: netlist %s has a combinational cycle (%d of %d cells levelized)",
			n.Name, len(order), comb)
	}
	return order, nil
}

// Netlist returns the design under simulation.
func (s *Simulator) Netlist() *netlist.Netlist { return s.n }

// BatchToggles switches toggle reporting into batched accounting: the
// engine appends every toggle to an internal flat buffer instead of
// invoking OnToggle per event, and TakeToggles drains the buffer. The
// event order is exactly the OnToggle invocation order, so an
// order-preserving consumer (power.Recorder.DrainToggles) reproduces the
// per-callback results bit-identically while paying one call per cycle
// instead of one per toggle. Turning batching off discards any pending
// events.
func (s *Simulator) BatchToggles(on bool) {
	s.batch = on
	if !on {
		s.events = s.events[:0]
	}
}

// TakeToggles returns the toggle events accumulated since the last call
// (in occurrence order) and resets the buffer. The returned slice
// aliases the simulator's internal buffer: it is valid only until the
// next Tick, Settle or port write, so consumers must drain it
// immediately.
func (s *Simulator) TakeToggles() []ToggleEvent {
	ev := s.events
	s.events = s.events[:0]
	return ev
}

// State is an opaque copy of a simulator's mutable state (net values,
// cycle counter and, for the compiled engine, pending evaluation
// scheduling). It lets capture engines roll a simulator back to a
// known point without re-settling or losing input-port values the way
// Reset would.
type State struct {
	values     []uint8
	cycle      int
	dirty      []uint64 // nil when taken from the reference engine
	minW, maxW int
}

// State snapshots the simulator's current net values and cycle counter.
func (s *Simulator) State() *State {
	v := make([]uint8, len(s.values))
	copy(v, s.values)
	st := &State{values: v, cycle: s.cycle}
	if s.prog != nil {
		st.dirty = append([]uint64(nil), s.dirty...)
		st.minW, st.maxW = s.minW, s.maxW
	}
	return st
}

// ValuesEqual reports whether two snapshots hold identical net values.
// Cycle counters and scheduling metadata are ignored: two states that
// agree on every net produce identical futures under identical stimulus
// regardless of how their pending-evaluation sets differ, because
// settling from either schedule converges to the same fixed point.
func (st *State) ValuesEqual(other *State) bool {
	return bytes.Equal(st.values, other.values)
}

// ValueHash returns a 64-bit FNV-1a hash of the net values. Replay
// caches bucket snapshots by this hash before the exact ValuesEqual
// check.
func (st *State) ValueHash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range st.values {
		h = (h ^ uint64(v)) * prime
	}
	return h
}

// SetCycle overrides the cycle counter. Replay caches use it to keep
// Cycle() consistent when an entire capture is elided from a cache hit.
func (s *Simulator) SetCycle(n int) { s.cycle = n }

// SetState restores a snapshot taken with State. The snapshot must come
// from a simulator of the same netlist; a length mismatch is a
// programming error and panics. Restoring a reference-engine snapshot
// into a compiled simulator schedules a full re-evaluation pass, which
// keeps semantics exact at the cost of one full sweep on the next
// settle.
func (s *Simulator) SetState(st *State) {
	if len(st.values) != len(s.values) {
		panic(fmt.Sprintf("logic: state of %d nets restored into simulator of %d nets", len(st.values), len(s.values)))
	}
	copy(s.values, st.values)
	s.cycle = st.cycle
	if s.prog != nil {
		s.syncOV()
		if st.dirty != nil {
			copy(s.dirty, st.dirty)
			s.minW, s.maxW = st.minW, st.maxW
		} else {
			s.markAll()
		}
	}
}

// Fork returns an independent simulator over the same netlist, starting
// from s's current state. The immutable compiled program and
// levelization (topological order and sequential-cell list) are shared
// with s; values and scratch buffers are copied, so the fork can run on
// another goroutine.
//
// Fork intentionally does NOT copy the OnToggle callback or the batched
// toggle mode: a closure captured for one simulator (e.g. a
// power.Recorder bound to another chip) would silently misattribute the
// fork's activity. The fork starts with nil OnToggle and batching off;
// callers that want the fork's toggles must attach their own sink.
func (s *Simulator) Fork() *Simulator {
	f := &Simulator{
		n:      s.n,
		values: make([]uint8, len(s.values)),
		order:  s.order,
		seq:    s.seq,
		newQ:   make([]uint8, len(s.seq)),
		cycle:  s.cycle,
		prog:   s.prog,
	}
	copy(f.values, s.values)
	if s.prog != nil {
		f.dirty = append([]uint64(nil), s.dirty...)
		f.ov = append([]uint8(nil), s.ov...)
		f.minW, f.maxW = s.minW, s.maxW
	}
	return f
}

// Cycle returns the number of completed Tick calls since the last Reset.
func (s *Simulator) Cycle() int { return s.cycle }

// Reset zeroes all state and re-settles the combinational logic. Toggle
// callbacks are suppressed during reset and pending batched events are
// discarded.
func (s *Simulator) Reset() {
	for i := range s.values {
		s.values[i] = 0
	}
	s.cycle = 0
	s.events = s.events[:0]
	saved, savedBatch := s.OnToggle, s.batch
	s.OnToggle, s.batch = nil, false
	if s.prog != nil {
		s.syncOV()
		s.markAll()
	}
	s.settle()
	s.OnToggle, s.batch = saved, savedBatch
}

// Net returns the current value (0 or 1) of a net.
func (s *Simulator) Net(n netlist.Net) uint8 { return s.values[n] }

// setNet drives one net and, under the compiled engine, schedules its
// combinational readers when the value actually changed.
func (s *Simulator) setNet(n netlist.Net, v uint8) {
	if s.values[n] == v {
		return
	}
	s.values[n] = v
	if s.prog != nil {
		if r := s.prog.netRank[n]; r >= 0 {
			s.ov[r] = v
		}
		s.markFanout(int32(n))
	}
}

// SetPortBits drives a named input port with the given bit values
// (LSB first). The slice length must match the port width.
func (s *Simulator) SetPortBits(name string, bits []uint8) error {
	p, ok := s.n.InputPort(name)
	if !ok {
		return fmt.Errorf("logic: no input port %q on %s", name, s.n.Name)
	}
	if len(bits) != len(p.Nets) {
		return fmt.Errorf("logic: port %q width %d, got %d bits", name, len(p.Nets), len(bits))
	}
	for i, b := range bits {
		if b != 0 {
			s.setNet(p.Nets[i], 1)
		} else {
			s.setNet(p.Nets[i], 0)
		}
	}
	return nil
}

// SetPortUint drives up to 64 bits of a named input port from an integer
// (LSB first). Wider ports have their upper bits cleared.
func (s *Simulator) SetPortUint(name string, v uint64) error {
	p, ok := s.n.InputPort(name)
	if !ok {
		return fmt.Errorf("logic: no input port %q on %s", name, s.n.Name)
	}
	for i, net := range p.Nets {
		if i < 64 && v>>uint(i)&1 == 1 {
			s.setNet(net, 1)
		} else {
			s.setNet(net, 0)
		}
	}
	return nil
}

// PortBits samples a named output (or input) port, LSB first.
func (s *Simulator) PortBits(name string) ([]uint8, error) {
	p, ok := s.n.OutputPort(name)
	if !ok {
		p, ok = s.n.InputPort(name)
		if !ok {
			return nil, fmt.Errorf("logic: no port %q on %s", name, s.n.Name)
		}
	}
	bits := make([]uint8, len(p.Nets))
	for i, net := range p.Nets {
		bits[i] = s.values[net]
	}
	return bits, nil
}

// PortUint samples up to 64 bits of a named port as an integer.
func (s *Simulator) PortUint(name string) (uint64, error) {
	bits, err := s.PortBits(name)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i, b := range bits {
		if i >= 64 {
			break
		}
		if b != 0 {
			v |= 1 << uint(i)
		}
	}
	return v, nil
}

// Settle propagates the combinational logic with the current input and
// register values without advancing the clock. Most callers only need
// Tick; Settle is useful to observe cycle-0 combinational outputs.
func (s *Simulator) Settle() { s.settle() }

// Tick advances one clock cycle: flip-flops capture their (previously
// settled) D inputs at the rising edge, then the combinational logic
// settles with the new register outputs and any inputs applied since the
// last Tick.
func (s *Simulator) Tick() {
	s.cycle++
	if s.prog != nil {
		s.tickCompiled()
		return
	}
	// Phase 1: sample every D/enable before writing any Q so that
	// flip-flop chains shift correctly.
	for k, ci := range s.seq {
		c := &s.n.Cells[ci]
		switch c.Type {
		case netlist.DFF:
			s.newQ[k] = s.values[c.Inputs[0]]
		case netlist.DFFE:
			if s.values[c.Inputs[1]] != 0 {
				s.newQ[k] = s.values[c.Inputs[0]]
			} else {
				s.newQ[k] = s.values[c.Output]
			}
		}
	}
	// Phase 2: commit and report edges.
	for k, ci := range s.seq {
		out := s.n.Cells[ci].Output
		old := s.values[out]
		nv := s.newQ[k]
		if nv != old {
			s.values[out] = nv
			if s.batch {
				s.events = append(s.events, ToggleEvent(ci)<<1|ToggleEvent(nv))
			} else if s.OnToggle != nil {
				s.OnToggle(ci, nv == 1)
			}
		}
	}
	s.settle()
}

// Run advances the simulator n cycles.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Tick()
	}
}

func (s *Simulator) settle() {
	if s.prog != nil {
		s.settleCompiled()
		return
	}
	v := s.values
	for _, ci := range s.order {
		c := &s.n.Cells[ci]
		var nv uint8
		switch c.Type {
		case netlist.TieLo:
			nv = 0
		case netlist.TieHi:
			nv = 1
		case netlist.Buf:
			nv = v[c.Inputs[0]]
		case netlist.Inv:
			nv = v[c.Inputs[0]] ^ 1
		case netlist.And2:
			nv = v[c.Inputs[0]] & v[c.Inputs[1]]
		case netlist.Nand2:
			nv = (v[c.Inputs[0]] & v[c.Inputs[1]]) ^ 1
		case netlist.Or2:
			nv = v[c.Inputs[0]] | v[c.Inputs[1]]
		case netlist.Nor2:
			nv = (v[c.Inputs[0]] | v[c.Inputs[1]]) ^ 1
		case netlist.Xor2:
			nv = v[c.Inputs[0]] ^ v[c.Inputs[1]]
		case netlist.Xnor2:
			nv = v[c.Inputs[0]] ^ v[c.Inputs[1]] ^ 1
		case netlist.Mux2:
			if v[c.Inputs[2]] != 0 {
				nv = v[c.Inputs[1]]
			} else {
				nv = v[c.Inputs[0]]
			}
		}
		if old := v[c.Output]; nv != old {
			v[c.Output] = nv
			if s.batch {
				s.events = append(s.events, ToggleEvent(ci)<<1|ToggleEvent(nv))
			} else if s.OnToggle != nil {
				s.OnToggle(ci, nv == 1)
			}
		}
	}
}
