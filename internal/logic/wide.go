package logic

import (
	"fmt"
	"math/bits"

	"emtrust/internal/netlist"
)

// The wide engine is the bit-parallel counterpart of the compiled
// evaluator: up to MaxLanes independent stimulus lanes packed one bit
// per lane into a uint64 per net, pushed through the same program
// (instruction stream, rank order, fanout bitsets) as the scalar
// engine. One settle advances every lane at once; a rank is pending
// when ANY lane changed one of its inputs, and evaluation is
// word-parallel boolean algebra instead of a per-lane LUT lookup.
//
// Determinism contract: each lane of a WideState reproduces, bit for
// bit, the net values and the toggle stream of an independent scalar
// Simulator run of the same stimulus. Lanes that did not change at a
// visited rank emit nothing (the per-lane toggle filter is the diff
// word old^new), and toggles are extracted in exactly the scalar
// order — flip-flop commits in sequential-cell order at the clock
// edge, then combinational toggles in ascending rank during settle —
// so order-sensitive consumers (power.Recorder's float accumulation)
// see the same sequence per lane as a scalar run. This holds at any
// lane count, including partial last words; the differential tests in
// wide_test.go pin it across 300 random netlists.

// MaxLanes is the number of independent stimulus lanes a WideState
// packs into each 64-bit net word.
const MaxLanes = 64

// Word-parallel gate algebra: each opcode is lowered to input/output
// inversion masks plus a class selector (AND-class, XOR-class,
// MUX-class), so the settle loop evaluates every gate type with one
// branch-free expression:
//
//	a = v[in0]^inv0; b = v[in1]^inv1; s = v[in2]
//	nv = ((a&b) &^ (mx|xr)) | ((a^b)&xr) | (((a&^s)|(b&s))&mx)
//	nv = (nv^invOut) & laneMask
//
// Single-input cells (Buf, Inv) read net 0 — the reserved, never
// driven, constant-0 net — through in1 and are encoded as OR/NOR
// (a|0 = a), exactly mirroring how evalLUT absorbs unused pins.
var (
	wideI0 [16]uint64 // input-0 inversion mask per opcode
	wideI1 [16]uint64 // input-1 inversion mask per opcode
	wideIO [16]uint64 // output inversion mask per opcode
	wideXR [16]uint64 // XOR-class selector per opcode
	wideMX [16]uint64 // MUX-class selector per opcode
)

func init() {
	const m = ^uint64(0)
	set := func(op netlist.CellType, i0, i1, io, xr, mx uint64) {
		wideI0[op], wideI1[op], wideIO[op], wideXR[op], wideMX[op] = i0, i1, io, xr, mx
	}
	set(netlist.TieLo, 0, 0, 0, 0, 0) // 0&0
	set(netlist.TieHi, 0, 0, m, 0, 0) // ~(0&0)
	set(netlist.Buf, m, m, m, 0, 0)   // a|0 via ~(~a&~0)
	set(netlist.Inv, m, m, 0, 0, 0)   // ~(a|0)
	set(netlist.And2, 0, 0, 0, 0, 0)
	set(netlist.Nand2, 0, 0, m, 0, 0)
	set(netlist.Or2, m, m, m, 0, 0)
	set(netlist.Nor2, m, m, 0, 0, 0)
	set(netlist.Xor2, 0, 0, 0, m, 0)
	set(netlist.Xnor2, 0, 0, m, m, 0)
	set(netlist.Mux2, 0, 0, 0, 0, m)
}

// WideState is a bit-parallel multi-lane simulation state over a
// compiled program. It shares the immutable program (and netlist) with
// the Simulator it was created from and owns only per-lane mutable
// state, so one WideState per goroutine is safe alongside the parent.
type WideState struct {
	n    *netlist.Netlist
	prog *program

	lanes int
	mask  uint64 // low `lanes` bits set

	values []uint64 // per-net lane words
	ov     []uint64 // per-rank output cache, ov[r] == values[out(r)]
	newQ   []uint64 // two-phase flip-flop scratch

	dirty      []uint64
	minW, maxW int

	cycle int

	// OnWideToggle, when non-nil, receives every cell-output toggle as
	// (cell, diff, nv): diff has a bit set for each lane that changed,
	// nv is the new lane word. Lane l's scalar-equivalent event is
	// (cell, nv>>l&1) for each set bit l of diff, and callbacks arrive
	// in the scalar toggle order of every lane simultaneously. While
	// set, per-lane event buffers are not filled.
	OnWideToggle func(cell int32, diff, nv uint64)

	events [MaxLanes][]ToggleEvent
}

// Wide creates a bit-parallel lane engine over the simulator's compiled
// program, loaded with a single lane holding the simulator's current
// state. It fails for reference-engine simulators (no program to run).
func (s *Simulator) Wide() (*WideState, error) {
	if s.prog == nil {
		return nil, fmt.Errorf("logic: %s runs the reference engine; wide evaluation needs the compiled program", s.n.Name)
	}
	w := &WideState{
		n:      s.n,
		prog:   s.prog,
		values: make([]uint64, len(s.values)),
		ov:     make([]uint64, len(s.prog.ins)),
		newQ:   make([]uint64, len(s.prog.seqCell)),
		dirty:  make([]uint64, s.prog.nwords),
	}
	if err := w.LoadStates([]*State{s.State()}); err != nil {
		return nil, err
	}
	return w, nil
}

// Lanes returns the active lane count.
func (w *WideState) Lanes() int { return w.lanes }

// Cycle returns the number of Tick calls since the last LoadStates.
func (w *WideState) Cycle() int { return w.cycle }

// LoadStates loads one scalar snapshot per lane (1 to MaxLanes lanes)
// and schedules a full first settle, exactly like restoring a snapshot
// into a scalar simulator. Pending per-lane toggle buffers are
// discarded and the cycle counter restarts at the first lane's.
func (w *WideState) LoadStates(sts []*State) error {
	if len(sts) == 0 || len(sts) > MaxLanes {
		return fmt.Errorf("logic: wide load of %d lanes (want 1..%d)", len(sts), MaxLanes)
	}
	for l, st := range sts {
		if len(st.values) != len(w.values) {
			return fmt.Errorf("logic: lane %d state has %d nets, wide state %d", l, len(st.values), len(w.values))
		}
	}
	w.lanes = len(sts)
	w.mask = ^uint64(0) >> uint(64-w.lanes)
	base := sts[0].values
	for i := range w.values {
		var word uint64
		if base[i] != 0 {
			word = w.mask
		}
		for l := 1; l < len(sts); l++ {
			if sts[l].values[i] != base[i] {
				word ^= 1 << uint(l)
			}
		}
		w.values[i] = word
	}
	p := w.prog
	for r := range p.ins {
		w.ov[r] = w.values[p.ins[r].outOp&netMask]
	}
	w.markAll()
	w.cycle = sts[0].cycle
	w.ResetToggles()
	return nil
}

// LaneState extracts one lane as a scalar snapshot, restorable into a
// Simulator of the same netlist via SetState (it carries no scheduling
// information, so the restore schedules a full settle).
func (w *WideState) LaneState(lane int) *State {
	v := make([]uint8, len(w.values))
	for i, word := range w.values {
		v[i] = uint8(word >> uint(lane) & 1)
	}
	return &State{values: v, cycle: w.cycle}
}

// LaneToggles returns the toggle events accumulated for one lane since
// the last ResetToggles/LoadStates, in scalar occurrence order. The
// slice aliases the internal buffer; it is valid until the buffers are
// reset. Empty while OnWideToggle is installed.
func (w *WideState) LaneToggles(lane int) []ToggleEvent { return w.events[lane] }

// ResetToggles clears every lane's accumulated toggle buffer.
func (w *WideState) ResetToggles() {
	for l := range w.events {
		w.events[l] = w.events[l][:0]
	}
}

func (w *WideState) markAll() {
	nc := len(w.prog.ins)
	if nc == 0 {
		w.minW, w.maxW = len(w.dirty), -1
		return
	}
	for i := range w.dirty {
		w.dirty[i] = ^uint64(0)
	}
	if rem := nc & 63; rem != 0 {
		w.dirty[len(w.dirty)-1] = 1<<uint(rem) - 1
	}
	w.minW, w.maxW = 0, len(w.dirty)-1
}

func (w *WideState) markFanout(net int32) {
	p := w.prog
	for _, fr := range p.fanRank[p.fanStart[net]:p.fanStart[net+1]] {
		wd := int(fr) >> 6
		w.dirty[wd] |= 1 << (uint(fr) & 63)
		if wd < w.minW {
			w.minW = wd
		}
		if wd > w.maxW {
			w.maxW = wd
		}
	}
}

// setNetWord drives one net's lane word (masked) and schedules its
// readers when any lane changed.
func (w *WideState) setNetWord(n netlist.Net, word uint64) {
	word &= w.mask
	if w.values[n] == word {
		return
	}
	w.values[n] = word
	if r := w.prog.netRank[n]; r >= 0 {
		w.ov[r] = word
	}
	w.markFanout(int32(n))
}

// NetWord returns a net's lane word: bit l is lane l's value.
func (w *WideState) NetWord(n netlist.Net) uint64 { return w.values[n] }

// AddNetOnes accumulates, per net, how many active lanes currently hold
// the value 1: counts[net] += popcount(word & laneMask) for every net.
// counts must have NumNets entries. Calling it once per simulated cycle
// turns a wide run into a signal-probability profiler — the per-net
// activity statistics behind rare-net Trojan trigger selection — at one
// popcount per net per cycle instead of one scan per lane.
func (w *WideState) AddNetOnes(counts []uint64) {
	if len(counts) != len(w.values) {
		panic(fmt.Sprintf("logic: AddNetOnes needs %d counters, got %d", len(w.values), len(counts)))
	}
	for i, v := range w.values {
		counts[i] += uint64(bits.OnesCount64(v & w.mask))
	}
}

// NetLane returns one lane's value (0 or 1) of a net.
func (w *WideState) NetLane(n netlist.Net, lane int) uint8 {
	return uint8(w.values[n] >> uint(lane) & 1)
}

// SetPortBitsAll drives a named input port with the same bit values
// (LSB first) on every lane.
func (w *WideState) SetPortBitsAll(name string, bits []uint8) error {
	p, ok := w.n.InputPort(name)
	if !ok {
		return fmt.Errorf("logic: no input port %q on %s", name, w.n.Name)
	}
	if len(bits) != len(p.Nets) {
		return fmt.Errorf("logic: port %q width %d, got %d bits", name, len(p.Nets), len(bits))
	}
	for i, b := range bits {
		if b != 0 {
			w.setNetWord(p.Nets[i], w.mask)
		} else {
			w.setNetWord(p.Nets[i], 0)
		}
	}
	return nil
}

// SetPortUintAll drives up to 64 bits of a named input port from an
// integer (LSB first) on every lane.
func (w *WideState) SetPortUintAll(name string, v uint64) error {
	p, ok := w.n.InputPort(name)
	if !ok {
		return fmt.Errorf("logic: no input port %q on %s", name, w.n.Name)
	}
	for i, net := range p.Nets {
		if i < 64 && v>>uint(i)&1 == 1 {
			w.setNetWord(net, w.mask)
		} else {
			w.setNetWord(net, 0)
		}
	}
	return nil
}

// SetPortLanesBits drives a named input port with per-lane bit vectors:
// laneBits[l] is lane l's value slice (LSB first), one per active lane.
// Each port net is written once with the transposed lane word, so the
// scheduling work matches a single scalar port write.
func (w *WideState) SetPortLanesBits(name string, laneBits [][]uint8) error {
	p, ok := w.n.InputPort(name)
	if !ok {
		return fmt.Errorf("logic: no input port %q on %s", name, w.n.Name)
	}
	if len(laneBits) != w.lanes {
		return fmt.Errorf("logic: port %q driven with %d lanes, wide state has %d", name, len(laneBits), w.lanes)
	}
	for l, bits := range laneBits {
		if len(bits) != len(p.Nets) {
			return fmt.Errorf("logic: port %q width %d, lane %d got %d bits", name, len(p.Nets), l, len(bits))
		}
	}
	for i, net := range p.Nets {
		var word uint64
		for l, bits := range laneBits {
			if bits[i] != 0 {
				word |= 1 << uint(l)
			}
		}
		w.setNetWord(net, word)
	}
	return nil
}

// SetPortLaneUint drives up to 64 bits of a named input port on a
// single lane, leaving the other lanes' values unchanged.
func (w *WideState) SetPortLaneUint(name string, lane int, v uint64) error {
	p, ok := w.n.InputPort(name)
	if !ok {
		return fmt.Errorf("logic: no input port %q on %s", name, w.n.Name)
	}
	bit := uint64(1) << uint(lane)
	for i, net := range p.Nets {
		word := w.values[net] &^ bit
		if i < 64 && v>>uint(i)&1 == 1 {
			word |= bit
		}
		w.setNetWord(net, word)
	}
	return nil
}

// emit reports one cell-output toggle word: diff marks the lanes that
// changed, nv is the new lane word.
func (w *WideState) emit(cell int32, diff, nv uint64) {
	if w.OnWideToggle != nil {
		w.OnWideToggle(cell, diff, nv)
		return
	}
	for diff != 0 {
		l := bits.TrailingZeros64(diff)
		diff &= diff - 1
		w.events[l] = append(w.events[l], ToggleEvent(cell)<<1|ToggleEvent(nv>>uint(l)&1))
	}
}

// Settle propagates pending changes across all lanes without advancing
// the clock, visiting ranks in ascending order exactly like the scalar
// settle. A rank whose inputs changed in no lane is skipped (sparse) or
// evaluates to its cached word and reports nothing (dense sweep).
func (w *WideState) Settle() {
	if w.maxW < w.minW {
		return
	}
	pend := 0
	for i := w.minW; i <= w.maxW; i++ {
		pend += bits.OnesCount64(w.dirty[i])
	}
	if pend >= len(w.prog.ins)/denseDivisor {
		w.settleSweep()
		return
	}
	p := w.prog
	ins := p.ins
	v := w.values
	ov := w.ov
	d := w.dirty
	lmask := w.mask
	for wd := w.minW; wd <= w.maxW; wd++ {
		// Same register-resident word scan as the scalar settle: snapshot
		// the schedule word, clear it once, fold same-word fanout marks
		// back into the register.
		cur := d[wd]
		if cur == 0 {
			continue
		}
		d[wd] = 0
		for cur != 0 {
			t := bits.TrailingZeros64(cur)
			cur &^= 1 << uint(t)
			r := wd<<6 | t
			it := ins[r]
			op := uint32(it.outOp) >> netBits
			a := v[it.in0] ^ wideI0[op]
			b := v[it.in1] ^ wideI1[op]
			s := v[it.in2]
			mx := wideMX[op]
			xr := wideXR[op]
			nv := ((a & b) &^ (mx | xr)) | ((a ^ b) & xr) | (((a &^ s) | (b & s)) & mx)
			nv = (nv ^ wideIO[op]) & lmask
			diff := nv ^ ov[r]
			if diff == 0 {
				continue
			}
			ov[r] = nv
			v[it.outOp&netMask] = nv
			w.emit(p.cellOf[r], diff, nv)
			start, end := p.fanCum[r], p.fanCum[r+1]
			j := start
			if j < end && int(p.fanW[j]) == wd {
				cur |= p.fanM[j]
				j++
			}
			for ; j < end; j++ {
				d[p.fanW[j]] |= p.fanM[j]
			}
			if end > start {
				if fw := int(p.fanW[end-1]); fw > w.maxW {
					w.maxW = fw
				}
			}
		}
	}
	w.minW, w.maxW = len(d), -1
}

// settleSweep is the dense wide settle: one linear pass over the whole
// instruction stream in rank order. No fanout marking is needed (every
// downstream rank is visited anyway) and the schedule bitset is cleared
// wholesale.
func (w *WideState) settleSweep() {
	p := w.prog
	ins := p.ins
	v := w.values
	ov := w.ov
	lmask := w.mask
	for r := range ins {
		it := ins[r]
		op := uint32(it.outOp) >> netBits
		a := v[it.in0] ^ wideI0[op]
		b := v[it.in1] ^ wideI1[op]
		s := v[it.in2]
		mx := wideMX[op]
		xr := wideXR[op]
		nv := ((a & b) &^ (mx | xr)) | ((a ^ b) & xr) | (((a &^ s) | (b & s)) & mx)
		nv = (nv ^ wideIO[op]) & lmask
		diff := nv ^ ov[r]
		if diff == 0 {
			continue
		}
		ov[r] = nv
		v[it.outOp&netMask] = nv
		w.emit(p.cellOf[r], diff, nv)
	}
	for i := range w.dirty {
		w.dirty[i] = 0
	}
	w.minW, w.maxW = len(w.dirty), -1
}

// Tick advances one clock cycle on every lane: the same two-phase
// flip-flop update as the scalar engine (sample all D/enable words,
// commit in sequential-cell order, report per-lane edges, schedule
// fanout), then a settle.
func (w *WideState) Tick() {
	w.cycle++
	p := w.prog
	v := w.values
	for k := range p.seqCell {
		d := v[p.seqD[k]]
		if en := p.seqEn[k]; en >= 0 {
			e := v[en]
			q := v[p.seqQ[k]]
			w.newQ[k] = (d & e) | (q &^ e)
		} else {
			w.newQ[k] = d
		}
	}
	for k, ci := range p.seqCell {
		q := p.seqQ[k]
		nv := w.newQ[k]
		diff := nv ^ v[q]
		if diff == 0 {
			continue
		}
		v[q] = nv
		w.emit(ci, diff, nv)
		if r := p.netRank[q]; r >= 0 {
			w.ov[r] = nv
		}
		w.markFanout(q)
	}
	w.Settle()
}
