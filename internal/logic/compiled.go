package logic

import (
	"math/bits"

	"emtrust/internal/netlist"
)

// The compiled engine lowers the levelized netlist into a flat
// instruction stream and replaces the full-cone settle sweep with
// event-driven selective evaluation. One instruction per combinational
// cell, indexed by its rank in the reference topological order, so
// selective evaluation visits exactly the cells the reference evaluator
// would have toggled, in exactly the same order: net values, toggle
// streams and therefore every downstream waveform stay bit-identical to
// the reference engine.
//
// Scheduling is a per-rank dirty bitset scanned in ascending rank
// order; because fanout ranks are strictly greater than the rank of the
// driving cell, a single forward scan per settle suffices. Everything
// the scan reads per rank (instruction, cached output value, toggle
// cell, fanout segment) is indexed by rank, so the ascending scan walks
// the arrays almost sequentially — the layout exists to keep the hot
// loop memory-bound on as few cache lines as possible. When the seeded
// dirty population is large (high-activity cycles) the scan gives way
// to a branchless full sweep of the instruction stream, which beats
// event bookkeeping once a significant fraction of the netlist is
// pending anyway; see settleCompiled.
type program struct {
	ins []instr // one per combinational cell, indexed by rank

	// Per-rank side arrays: the original cell index for toggle
	// reporting, and the cell's fanout as schedule-bitset updates.
	// Rank r's readers are the (word, mask) pairs
	// fanW/fanM[fanCum[r]:fanCum[r+1]], sorted ascending by word with
	// readers sharing a word pre-combined into one mask — one |= per
	// touched word instead of one per fanout edge.
	cellOf []int32
	fanW   []int32
	fanM   []uint64
	fanCum []int32

	// Per-net CSR fanout (readers of net n are
	// fanRank[fanStart[n]:fanStart[n+1]]), used to seed the dirty set
	// from port writes and flip-flop commits.
	fanStart []int32
	fanRank  []int32

	// netRank maps a net to the rank of the combinational cell driving
	// it (-1 for ports, flip-flop outputs and undriven nets), so setNet
	// can keep the per-rank output cache coherent.
	netRank []int32

	// Sequential cells in the reference commit order (ascending cell
	// index). en is -1 for a plain DFF.
	seqCell []int32
	seqD    []int32
	seqEn   []int32
	seqQ    []int32

	nwords int // len of the dirty bitset in 64-bit words
}

// instr is one compiled combinational cell, packed into 16 bytes so the
// ascending-rank scan streams four instructions per cache line. The
// opcode (netlist.CellType, < 16) rides in the top bits of outOp above
// the output net index. Unused input pins point at net 0, the reserved
// invalid net, which is never driven and reads as a constant 0; evalLUT
// rows account for that.
type instr struct {
	in0, in1, in2 int32
	outOp         int32 // output net | opcode<<netBits
}

const (
	netBits = 27
	netMask = 1<<netBits - 1
)

// evalLUT maps (opcode, packed input values) to the output value. The
// index packs in0 into bit 0, in1 into bit 1 and in2 into bit 2, so a
// gate evaluates in one load with no branches. Sequential opcodes keep
// all-zero rows; they are never evaluated through the LUT.
var evalLUT [16][8]uint8

func init() {
	for idx := 0; idx < 8; idx++ {
		a := uint8(idx & 1)
		b := uint8(idx >> 1 & 1)
		s := uint8(idx >> 2 & 1)
		evalLUT[netlist.TieLo][idx] = 0
		evalLUT[netlist.TieHi][idx] = 1
		evalLUT[netlist.Buf][idx] = a
		evalLUT[netlist.Inv][idx] = a ^ 1
		evalLUT[netlist.And2][idx] = a & b
		evalLUT[netlist.Nand2][idx] = (a & b) ^ 1
		evalLUT[netlist.Or2][idx] = a | b
		evalLUT[netlist.Nor2][idx] = (a | b) ^ 1
		evalLUT[netlist.Xor2][idx] = a ^ b
		evalLUT[netlist.Xnor2][idx] = a ^ b ^ 1
		if s != 0 {
			evalLUT[netlist.Mux2][idx] = b
		} else {
			evalLUT[netlist.Mux2][idx] = a
		}
	}
}

// compile lowers the netlist into the instruction stream. order is the
// reference topological order of combinational cells; seq the sequential
// cells in commit order. Returns nil when the design exceeds the packed
// net-index width (the caller falls back to the reference engine).
func compile(n *netlist.Netlist, order, seq []int) *program {
	if n.NumNets() > netMask {
		return nil
	}
	nc := len(order)
	p := &program{
		ins:    make([]instr, nc),
		cellOf: make([]int32, nc),
	}
	for r, ci := range order {
		c := &n.Cells[ci]
		it := &p.ins[r]
		it.outOp = int32(c.Output) | int32(c.Type)<<netBits
		p.cellOf[r] = int32(ci)
		switch len(c.Inputs) {
		case 3:
			it.in2 = int32(c.Inputs[2])
			fallthrough
		case 2:
			it.in1 = int32(c.Inputs[1])
			fallthrough
		case 1:
			it.in0 = int32(c.Inputs[0])
		}
	}
	// Per-net fanout CSR: count, prefix-sum, fill. Iterating ranks in
	// ascending order leaves each net's reader list sorted by rank. A
	// cell wired to the same net twice appears twice; scheduling is
	// idempotent.
	counts := make([]int32, n.NumNets())
	for _, ci := range order {
		for _, in := range n.Cells[ci].Inputs {
			counts[in]++
		}
	}
	p.fanStart = make([]int32, n.NumNets()+1)
	var total int32
	for net, cnt := range counts {
		p.fanStart[net] = total
		total += cnt
	}
	p.fanStart[n.NumNets()] = total
	p.fanRank = make([]int32, total)
	fill := make([]int32, n.NumNets())
	copy(fill, p.fanStart[:n.NumNets()])
	for r, ci := range order {
		for _, in := range n.Cells[ci].Inputs {
			p.fanRank[fill[in]] = int32(r)
			fill[in]++
		}
	}
	// Rank-ordered fanout as pre-combined bitset updates: each rank's
	// segment is its output net's reader list folded into (word, mask)
	// pairs. The reader ranks are sorted ascending, so readers sharing
	// a schedule word are adjacent and fold into one entry.
	p.fanCum = make([]int32, nc+1)
	for r := range p.ins {
		o := p.ins[r].outOp & netMask
		lastW := int32(-1)
		for _, fr := range p.fanRank[p.fanStart[o]:p.fanStart[o+1]] {
			if w := fr >> 6; w != lastW {
				lastW = w
				p.fanW = append(p.fanW, w)
				p.fanM = append(p.fanM, 0)
			}
			p.fanM[len(p.fanM)-1] |= 1 << (uint(fr) & 63)
		}
		p.fanCum[r+1] = int32(len(p.fanW))
	}
	p.netRank = make([]int32, n.NumNets())
	for i := range p.netRank {
		p.netRank[i] = -1
	}
	for r := range p.ins {
		p.netRank[p.ins[r].outOp&netMask] = int32(r)
	}
	for _, ci := range seq {
		c := &n.Cells[ci]
		p.seqCell = append(p.seqCell, int32(ci))
		p.seqD = append(p.seqD, int32(c.Inputs[0]))
		if c.Type == netlist.DFFE {
			p.seqEn = append(p.seqEn, int32(c.Inputs[1]))
		} else {
			p.seqEn = append(p.seqEn, -1)
		}
		p.seqQ = append(p.seqQ, int32(c.Output))
	}
	p.nwords = (nc + 63) / 64
	return p
}

// syncOV rebuilds the per-rank output-value cache from the net values,
// restoring the invariant ov[r] == values[out(r)] after bulk value
// writes (state restore, reset).
func (s *Simulator) syncOV() {
	for r := range s.prog.ins {
		s.ov[r] = s.values[s.prog.ins[r].outOp&netMask]
	}
}

// markFanout schedules every combinational reader of net for
// re-evaluation. Callers invoke it only after actually changing the
// net's value.
func (s *Simulator) markFanout(net int32) {
	p := s.prog
	for _, fr := range p.fanRank[p.fanStart[net]:p.fanStart[net+1]] {
		w := int(fr) >> 6
		s.dirty[w] |= 1 << (uint(fr) & 63)
		if w < s.minW {
			s.minW = w
		}
		if w > s.maxW {
			s.maxW = w
		}
	}
}

// markAll schedules every combinational cell, turning the next settle
// into a full forward pass (used at construction, after Reset, and when
// restoring a state snapshot that carries no scheduling information).
func (s *Simulator) markAll() {
	nc := len(s.order)
	if nc == 0 {
		return
	}
	for w := range s.dirty {
		s.dirty[w] = ^uint64(0)
	}
	if rem := nc & 63; rem != 0 {
		s.dirty[len(s.dirty)-1] = 1<<uint(rem) - 1
	}
	s.minW, s.maxW = 0, len(s.dirty)-1
}

// denseWord is the dirty-bit population at which a word of the
// denseDivisor sets the adaptive sweep threshold: when the seeded dirty
// population exceeds len(ins)/denseDivisor, the settle abandons
// event-driven scheduling for one straight linear sweep of the whole
// instruction stream. AES-style workloads are bursty — during the
// eleven round cycles most of the cone toggles and selective evaluation
// costs more in scheduling than it saves, while idle and lead-in/tail
// cycles are almost free either way. The sweep needs no fanout marking
// at all (every downstream rank is visited anyway), so its per-cell
// cost undercuts even the reference evaluator's; the sparse path keeps
// quiet cycles proportional to actual activity.
const denseDivisor = 32

// settleCompiled propagates pending changes in ascending rank order.
// Cells whose inputs did not change either are never visited (sparse
// scan) or evaluate to their cached output value and report nothing
// (dense sweep) — exactly the cells the reference evaluator would
// toggle, in exactly the reference order, toggle either way. The output
// compare goes through the rank-indexed ov cache rather than the
// net-value array: same result, but the load is near-sequential in scan
// order instead of a random access per evaluation.
func (s *Simulator) settleCompiled() {
	if s.maxW < s.minW {
		return
	}
	pend := 0
	for w := s.minW; w <= s.maxW; w++ {
		pend += bits.OnesCount64(s.dirty[w])
	}
	if pend >= len(s.prog.ins)/denseDivisor {
		s.settleSweep()
		return
	}
	if s.batch {
		s.settleBatch()
		return
	}
	p := s.prog
	ins := p.ins
	v := s.values
	ov := s.ov
	d := s.dirty
	lut := &evalLUT
	for w := s.minW; w <= s.maxW; w++ {
		// Snapshot the word into a register and clear it once: the scan
		// then pops bits without re-reading d[w], and fanout marks
		// landing in the current word (always the first entry of a
		// fanout segment, since segment words are sorted and >= the
		// driver's own word) fold into the register instead of the
		// store-to-load chain through memory.
		cur := d[w]
		if cur == 0 {
			continue
		}
		d[w] = 0
		for cur != 0 {
			t := bits.TrailingZeros64(cur)
			cur &^= 1 << uint(t)
			r := w<<6 | t
			it := ins[r]
			nv := lut[uint32(it.outOp)>>netBits][uint(v[it.in0])|uint(v[it.in1])<<1|uint(v[it.in2])<<2]
			if nv == ov[r] {
				continue
			}
			ov[r] = nv
			v[it.outOp&netMask] = nv
			if s.OnToggle != nil {
				s.OnToggle(int(p.cellOf[r]), nv == 1)
			}
			start, end := p.fanCum[r], p.fanCum[r+1]
			j := start
			if j < end && int(p.fanW[j]) == w {
				cur |= p.fanM[j]
				j++
			}
			for ; j < end; j++ {
				d[p.fanW[j]] |= p.fanM[j]
			}
			if end > start {
				if fw := int(p.fanW[end-1]); fw > s.maxW {
					s.maxW = fw
				}
			}
		}
	}
	s.minW, s.maxW = len(d), -1
}

// settleSweep is the dense settle: one linear pass over the whole
// instruction stream in rank order, the reference algorithm run on the
// compiled layout (16-byte streamed instructions, branchless LUT
// evaluation, rank-indexed output cache). Clean cells evaluate to their
// cached value and report nothing, so the toggle stream is identical to
// both the sparse path and the reference engine. No fanout marking
// happens — every rank after a toggling cell is visited anyway — and
// the schedule bitset is simply cleared. In batch mode the whole loop
// body is branch-free (speculative event append, unconditional value
// stores): at round-cycle toggle rates the data-dependent toggle test
// mispredicts constantly, and removing it is worth more than the stores
// it saves.
func (s *Simulator) settleSweep() {
	p := s.prog
	ins := p.ins
	v := s.values
	ov := s.ov
	lut := &evalLUT
	if s.batch {
		ev := s.events
		for r := range ins {
			it := ins[r]
			nv := lut[uint32(it.outOp)>>netBits][uint(v[it.in0])|uint(v[it.in1])<<1|uint(v[it.in2])<<2]
			chg := int(nv ^ ov[r])
			ov[r] = nv
			v[it.outOp&netMask] = nv
			ev = append(ev, ToggleEvent(p.cellOf[r])<<1|ToggleEvent(nv))
			ev = ev[:len(ev)-1+chg]
		}
		s.events = ev
	} else {
		for r := range ins {
			it := ins[r]
			nv := lut[uint32(it.outOp)>>netBits][uint(v[it.in0])|uint(v[it.in1])<<1|uint(v[it.in2])<<2]
			if nv == ov[r] {
				continue
			}
			ov[r] = nv
			v[it.outOp&netMask] = nv
			if s.OnToggle != nil {
				s.OnToggle(int(p.cellOf[r]), nv == 1)
			}
		}
	}
	for w := range s.dirty {
		s.dirty[w] = 0
	}
	s.minW, s.maxW = len(s.dirty), -1
}

// settleBatch is the batched-accounting settle: identical semantics to
// the generic loop above, but with the toggle test compiled to straight
// line code. The event append is speculative (written then kept only
// when the output changed) and the fanout loop runs over a
// zero-masked-length segment when nothing toggled, so the data-dependent
// "did it toggle" branch — mispredicted on a third of evaluations under
// real workloads — disappears from the hot path.
func (s *Simulator) settleBatch() {
	p := s.prog
	ins := p.ins
	v := s.values
	ov := s.ov
	d := s.dirty
	lut := &evalLUT
	ev := s.events
	for w := s.minW; w <= s.maxW; w++ {
		// Same register-resident word scan as the generic loop above.
		cur := d[w]
		if cur == 0 {
			continue
		}
		d[w] = 0
		for cur != 0 {
			t := bits.TrailingZeros64(cur)
			cur &^= 1 << uint(t)
			r := w<<6 | t
			it := ins[r]
			nv := lut[uint32(it.outOp)>>netBits][uint(v[it.in0])|uint(v[it.in1])<<1|uint(v[it.in2])<<2]
			chg := int32(nv ^ ov[r])
			ov[r] = nv
			v[it.outOp&netMask] = nv
			ev = append(ev, ToggleEvent(p.cellOf[r])<<1|ToggleEvent(nv))
			ev = ev[:len(ev)-1+int(chg)]
			start := p.fanCum[r]
			end := start + (p.fanCum[r+1]-start)&-chg
			j := start
			if j < end && int(p.fanW[j]) == w {
				cur |= p.fanM[j]
				j++
			}
			for ; j < end; j++ {
				d[p.fanW[j]] |= p.fanM[j]
			}
			if end > start {
				if fw := int(p.fanW[end-1]); fw > s.maxW {
					s.maxW = fw
				}
			}
		}
	}
	s.events = ev
	s.minW, s.maxW = len(d), -1
}

// tickCompiled is the compiled engine's clock edge: the same two-phase
// flip-flop update as the reference, plus fanout scheduling for every Q
// that moved, then a selective settle.
func (s *Simulator) tickCompiled() {
	p := s.prog
	v := s.values
	for k := range p.seqCell {
		if en := p.seqEn[k]; en >= 0 && v[en] == 0 {
			s.newQ[k] = v[p.seqQ[k]]
		} else {
			s.newQ[k] = v[p.seqD[k]]
		}
	}
	for k, ci := range p.seqCell {
		q := p.seqQ[k]
		nv := s.newQ[k]
		if nv == v[q] {
			continue
		}
		v[q] = nv
		if s.batch {
			s.events = append(s.events, ToggleEvent(ci)<<1|ToggleEvent(nv))
		} else if s.OnToggle != nil {
			s.OnToggle(int(ci), nv == 1)
		}
		s.markFanout(q)
	}
	s.settleCompiled()
}
