package logic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"emtrust/internal/netlist"
)

// buildComb creates a tiny netlist with every combinational cell type fed
// by a 3-bit input bus.
func buildComb(t *testing.T) (*netlist.Netlist, *Simulator) {
	t.Helper()
	b := netlist.NewBuilder("comb")
	in := b.Input("in", 3)
	a, c, s := in[0], in[1], in[2]
	b.Output("buf", []netlist.Net{b.Buf(a)})
	b.Output("inv", []netlist.Net{b.Not(a)})
	b.Output("and", []netlist.Net{b.And(a, c)})
	b.Output("nand", []netlist.Net{b.Nand(a, c)})
	b.Output("or", []netlist.Net{b.Or(a, c)})
	b.Output("nor", []netlist.Net{b.Nor(a, c)})
	b.Output("xor", []netlist.Net{b.Xor(a, c)})
	b.Output("xnor", []netlist.Net{b.Xnor(a, c)})
	b.Output("mux", []netlist.Net{b.Mux(a, c, s)})
	b.Output("lo", []netlist.Net{b.Low()})
	b.Output("hi", []netlist.Net{b.High()})
	n := b.Build()
	sim, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	return n, sim
}

func TestAllGateTruthTables(t *testing.T) {
	_, sim := buildComb(t)
	for v := uint64(0); v < 8; v++ {
		if err := sim.SetPortUint("in", v); err != nil {
			t.Fatal(err)
		}
		sim.Settle()
		a := v & 1
		c := v >> 1 & 1
		s := v >> 2 & 1
		expect := map[string]uint64{
			"buf": a, "inv": a ^ 1,
			"and": a & c, "nand": (a & c) ^ 1,
			"or": a | c, "nor": (a | c) ^ 1,
			"xor": a ^ c, "xnor": (a ^ c) ^ 1,
			"lo": 0, "hi": 1,
		}
		if s == 1 {
			expect["mux"] = c
		} else {
			expect["mux"] = a
		}
		for port, want := range expect {
			got, err := sim.PortUint(port)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("in=%03b: %s = %d, want %d", v, port, got, want)
			}
		}
	}
}

func TestDFFShiftRegister(t *testing.T) {
	b := netlist.NewBuilder("shift")
	in := b.Input("d", 1)
	q1 := b.Reg(in[0])
	q2 := b.Reg(q1)
	q3 := b.Reg(q2)
	b.Output("q", []netlist.Net{q3})
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	pattern := []uint64{1, 0, 1, 1, 0, 0, 1, 0}
	var got []uint64
	for _, bit := range pattern {
		sim.SetPortUint("d", bit)
		sim.Tick()
		v, _ := sim.PortUint("q")
		got = append(got, v)
	}
	// After k ticks, q3 holds the input from 3 ticks ago (zeros before).
	for i := range pattern {
		want := uint64(0)
		if i >= 2 {
			want = pattern[i-2]
		}
		if got[i] != want {
			t.Fatalf("tick %d: q = %d, want %d (got %v)", i, got[i], want, got)
		}
	}
}

func TestDFFEHoldsWithoutEnable(t *testing.T) {
	b := netlist.NewBuilder("dffe")
	d := b.Input("d", 1)
	en := b.Input("en", 1)
	q := b.RegE(d[0], en[0])
	b.Output("q", []netlist.Net{q})
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	sim.SetPortUint("d", 1)
	sim.SetPortUint("en", 0)
	sim.Tick()
	if v, _ := sim.PortUint("q"); v != 0 {
		t.Fatal("DFFE captured without enable")
	}
	sim.SetPortUint("en", 1)
	sim.Tick()
	if v, _ := sim.PortUint("q"); v != 1 {
		t.Fatal("DFFE did not capture with enable")
	}
	sim.SetPortUint("d", 0)
	sim.SetPortUint("en", 0)
	sim.Tick()
	if v, _ := sim.PortUint("q"); v != 1 {
		t.Fatal("DFFE did not hold with enable low")
	}
}

func TestCounter(t *testing.T) {
	b := netlist.NewBuilder("ctr")
	q := b.Counter(4, netlist.InvalidNet)
	b.Output("q", q)
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	for want := uint64(1); want < 20; want++ {
		sim.Tick()
		got, _ := sim.PortUint("q")
		if got != want%16 {
			t.Fatalf("after %d ticks counter = %d, want %d", want, got, want%16)
		}
	}
}

func TestGatedCounter(t *testing.T) {
	b := netlist.NewBuilder("gctr")
	en := b.Input("en", 1)
	q := b.Counter(3, en[0])
	b.Output("q", q)
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	sim.SetPortUint("en", 0)
	sim.Run(5)
	if got, _ := sim.PortUint("q"); got != 0 {
		t.Fatalf("gated counter advanced while disabled: %d", got)
	}
	sim.SetPortUint("en", 1)
	sim.Run(3)
	if got, _ := sim.PortUint("q"); got != 3 {
		t.Fatalf("gated counter = %d, want 3", got)
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	b := netlist.NewBuilder("loop")
	in := b.Input("in", 1)
	// Create a feedback loop by patching a gate input to its own cone.
	x := b.And(in[0], in[0])
	b.Or(x, in[0])
	// Manually rewire the AND's second input to the OR output.
	nl := b.Build()
	nl.Cells[0].Inputs[1] = nl.Cells[1].Output
	if _, err := New(nl); err == nil {
		t.Fatal("combinational loop must be rejected")
	}
}

func TestToggleCallback(t *testing.T) {
	b := netlist.NewBuilder("tgl")
	in := b.Input("in", 1)
	inv := b.Not(in[0])
	q := b.Reg(inv)
	b.Output("q", []netlist.Net{q})
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	type event struct {
		cell int
		rise bool
	}
	var events []event
	sim.OnToggle = func(cell int, rise bool) { events = append(events, event{cell, rise}) }

	// After New, inv output settled to 1 (input 0). Driving in=1 makes
	// the inverter fall; the DFF then captures the old value 1 on the
	// next tick and rises.
	sim.SetPortUint("in", 1)
	sim.Tick()
	if len(events) != 2 {
		t.Fatalf("events = %+v, want 2 (DFF rise, INV fall)", events)
	}
	if !events[0].rise { // DFF captures the previously settled 1
		t.Fatalf("first event should be the DFF rising, got %+v", events[0])
	}
	if events[1].rise { // inverter falls after the new input propagates
		t.Fatalf("second event should be the inverter falling, got %+v", events[1])
	}
}

func TestResetSuppressesTogglesAndZeroes(t *testing.T) {
	b := netlist.NewBuilder("rst")
	q := b.Counter(4, netlist.InvalidNet)
	b.Output("q", q)
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(7)
	count := 0
	sim.OnToggle = func(int, bool) { count++ }
	sim.Reset()
	if count != 0 {
		t.Fatal("Reset must not fire toggle callbacks")
	}
	if got, _ := sim.PortUint("q"); got != 0 {
		t.Fatalf("counter after reset = %d", got)
	}
	if sim.Cycle() != 0 {
		t.Fatalf("cycle after reset = %d", sim.Cycle())
	}
	sim.OnToggle = nil
	sim.Run(2)
	if got, _ := sim.PortUint("q"); got != 2 {
		t.Fatalf("counter after reset+2 = %d", got)
	}
}

func TestPortErrors(t *testing.T) {
	_, sim := buildComb(t)
	if err := sim.SetPortUint("nope", 1); err == nil {
		t.Fatal("unknown input port must error")
	}
	if err := sim.SetPortBits("in", []uint8{1}); err == nil {
		t.Fatal("width mismatch must error")
	}
	if _, err := sim.PortUint("nope"); err == nil {
		t.Fatal("unknown port must error")
	}
	if _, err := sim.PortBits("in"); err != nil {
		t.Fatal("reading an input port must work")
	}
}

func TestSetPortBitsNormalizesValues(t *testing.T) {
	_, sim := buildComb(t)
	if err := sim.SetPortBits("in", []uint8{7, 0, 255}); err != nil {
		t.Fatal(err)
	}
	got, _ := sim.PortBits("in")
	if got[0] != 1 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("bits = %v", got)
	}
}

// Property: a combinational adder netlist matches integer addition.
func TestRippleIncrementerMatchesArithmetic(t *testing.T) {
	b := netlist.NewBuilder("inc")
	x := b.Input("x", 8)
	b.Output("y", b.Incrementer(x))
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	f := func(v uint8) bool {
		sim.SetPortUint("x", uint64(v))
		sim.Settle()
		got, _ := sim.PortUint("y")
		return got == uint64(v+1) // uint8 wraps like the 8-bit bus
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EqualsConst matches ==.
func TestEqualsConst(t *testing.T) {
	b := netlist.NewBuilder("eq")
	x := b.Input("x", 8)
	b.Output("eq", []netlist.Net{b.EqualsConst(x, 0xA5)})
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 256; v++ {
		sim.SetPortUint("x", v)
		sim.Settle()
		got, _ := sim.PortUint("eq")
		want := uint64(0)
		if v == 0xA5 {
			want = 1
		}
		if got != want {
			t.Fatalf("EqualsConst(%#x) = %d", v, got)
		}
	}
}

// Property: reduction gates match software reductions on random inputs.
func TestReductions(t *testing.T) {
	b := netlist.NewBuilder("red")
	x := b.Input("x", 9)
	b.Output("rxor", []netlist.Net{b.ReduceXor(x)})
	b.Output("rand", []netlist.Net{b.ReduceAnd(x)})
	b.Output("ror", []netlist.Net{b.ReduceOr(x)})
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		v := uint64(rng.Intn(512))
		sim.SetPortUint("x", v)
		sim.Settle()
		var xr, ar, or uint64
		ar = 1
		for k := 0; k < 9; k++ {
			bit := v >> uint(k) & 1
			xr ^= bit
			ar &= bit
			or |= bit
		}
		gx, _ := sim.PortUint("rxor")
		ga, _ := sim.PortUint("rand")
		go_, _ := sim.PortUint("ror")
		if gx != xr || ga != ar || go_ != or {
			t.Fatalf("v=%09b: got (%d,%d,%d) want (%d,%d,%d)", v, gx, ga, go_, xr, ar, or)
		}
	}
}

func TestNetlistAccessor(t *testing.T) {
	n, sim := buildComb(t)
	if sim.Netlist() != n {
		t.Fatal("Netlist accessor broken")
	}
}

func TestStuckAtChangesFunction(t *testing.T) {
	b := netlist.NewBuilder("saf")
	in := b.Input("in", 2)
	x := b.Xor(in[0], in[1])
	b.Output("y", []netlist.Net{x})
	n := b.Build()
	sa, err := n.StuckAt(x, true)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(sa)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 4; v++ {
		sim.SetPortUint("in", v)
		sim.Settle()
		got, _ := sim.PortUint("y")
		if got != 1 {
			t.Fatalf("stuck-at-1 output = %d for in=%d", got, v)
		}
	}
}
