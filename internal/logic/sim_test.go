package logic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"emtrust/internal/netlist"
)

// buildComb creates a tiny netlist with every combinational cell type fed
// by a 3-bit input bus.
func buildComb(t *testing.T) (*netlist.Netlist, *Simulator) {
	t.Helper()
	b := netlist.NewBuilder("comb")
	in := b.Input("in", 3)
	a, c, s := in[0], in[1], in[2]
	b.Output("buf", []netlist.Net{b.Buf(a)})
	b.Output("inv", []netlist.Net{b.Not(a)})
	b.Output("and", []netlist.Net{b.And(a, c)})
	b.Output("nand", []netlist.Net{b.Nand(a, c)})
	b.Output("or", []netlist.Net{b.Or(a, c)})
	b.Output("nor", []netlist.Net{b.Nor(a, c)})
	b.Output("xor", []netlist.Net{b.Xor(a, c)})
	b.Output("xnor", []netlist.Net{b.Xnor(a, c)})
	b.Output("mux", []netlist.Net{b.Mux(a, c, s)})
	b.Output("lo", []netlist.Net{b.Low()})
	b.Output("hi", []netlist.Net{b.High()})
	n := b.Build()
	sim, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	return n, sim
}

func TestAllGateTruthTables(t *testing.T) {
	_, sim := buildComb(t)
	for v := uint64(0); v < 8; v++ {
		if err := sim.SetPortUint("in", v); err != nil {
			t.Fatal(err)
		}
		sim.Settle()
		a := v & 1
		c := v >> 1 & 1
		s := v >> 2 & 1
		expect := map[string]uint64{
			"buf": a, "inv": a ^ 1,
			"and": a & c, "nand": (a & c) ^ 1,
			"or": a | c, "nor": (a | c) ^ 1,
			"xor": a ^ c, "xnor": (a ^ c) ^ 1,
			"lo": 0, "hi": 1,
		}
		if s == 1 {
			expect["mux"] = c
		} else {
			expect["mux"] = a
		}
		for port, want := range expect {
			got, err := sim.PortUint(port)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("in=%03b: %s = %d, want %d", v, port, got, want)
			}
		}
	}
}

func TestDFFShiftRegister(t *testing.T) {
	b := netlist.NewBuilder("shift")
	in := b.Input("d", 1)
	q1 := b.Reg(in[0])
	q2 := b.Reg(q1)
	q3 := b.Reg(q2)
	b.Output("q", []netlist.Net{q3})
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	pattern := []uint64{1, 0, 1, 1, 0, 0, 1, 0}
	var got []uint64
	for _, bit := range pattern {
		sim.SetPortUint("d", bit)
		sim.Tick()
		v, _ := sim.PortUint("q")
		got = append(got, v)
	}
	// After k ticks, q3 holds the input from 3 ticks ago (zeros before).
	for i := range pattern {
		want := uint64(0)
		if i >= 2 {
			want = pattern[i-2]
		}
		if got[i] != want {
			t.Fatalf("tick %d: q = %d, want %d (got %v)", i, got[i], want, got)
		}
	}
}

func TestDFFEHoldsWithoutEnable(t *testing.T) {
	b := netlist.NewBuilder("dffe")
	d := b.Input("d", 1)
	en := b.Input("en", 1)
	q := b.RegE(d[0], en[0])
	b.Output("q", []netlist.Net{q})
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	sim.SetPortUint("d", 1)
	sim.SetPortUint("en", 0)
	sim.Tick()
	if v, _ := sim.PortUint("q"); v != 0 {
		t.Fatal("DFFE captured without enable")
	}
	sim.SetPortUint("en", 1)
	sim.Tick()
	if v, _ := sim.PortUint("q"); v != 1 {
		t.Fatal("DFFE did not capture with enable")
	}
	sim.SetPortUint("d", 0)
	sim.SetPortUint("en", 0)
	sim.Tick()
	if v, _ := sim.PortUint("q"); v != 1 {
		t.Fatal("DFFE did not hold with enable low")
	}
}

func TestCounter(t *testing.T) {
	b := netlist.NewBuilder("ctr")
	q := b.Counter(4, netlist.InvalidNet)
	b.Output("q", q)
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	for want := uint64(1); want < 20; want++ {
		sim.Tick()
		got, _ := sim.PortUint("q")
		if got != want%16 {
			t.Fatalf("after %d ticks counter = %d, want %d", want, got, want%16)
		}
	}
}

func TestGatedCounter(t *testing.T) {
	b := netlist.NewBuilder("gctr")
	en := b.Input("en", 1)
	q := b.Counter(3, en[0])
	b.Output("q", q)
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	sim.SetPortUint("en", 0)
	sim.Run(5)
	if got, _ := sim.PortUint("q"); got != 0 {
		t.Fatalf("gated counter advanced while disabled: %d", got)
	}
	sim.SetPortUint("en", 1)
	sim.Run(3)
	if got, _ := sim.PortUint("q"); got != 3 {
		t.Fatalf("gated counter = %d, want 3", got)
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	b := netlist.NewBuilder("loop")
	in := b.Input("in", 1)
	// Create a feedback loop by patching a gate input to its own cone.
	x := b.And(in[0], in[0])
	b.Or(x, in[0])
	// Manually rewire the AND's second input to the OR output.
	nl := b.Build()
	nl.Cells[0].Inputs[1] = nl.Cells[1].Output
	if _, err := New(nl); err == nil {
		t.Fatal("combinational loop must be rejected")
	}
}

func TestToggleCallback(t *testing.T) {
	b := netlist.NewBuilder("tgl")
	in := b.Input("in", 1)
	inv := b.Not(in[0])
	q := b.Reg(inv)
	b.Output("q", []netlist.Net{q})
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	type event struct {
		cell int
		rise bool
	}
	var events []event
	sim.OnToggle = func(cell int, rise bool) { events = append(events, event{cell, rise}) }

	// After New, inv output settled to 1 (input 0). Driving in=1 makes
	// the inverter fall; the DFF then captures the old value 1 on the
	// next tick and rises.
	sim.SetPortUint("in", 1)
	sim.Tick()
	if len(events) != 2 {
		t.Fatalf("events = %+v, want 2 (DFF rise, INV fall)", events)
	}
	if !events[0].rise { // DFF captures the previously settled 1
		t.Fatalf("first event should be the DFF rising, got %+v", events[0])
	}
	if events[1].rise { // inverter falls after the new input propagates
		t.Fatalf("second event should be the inverter falling, got %+v", events[1])
	}
}

func TestResetSuppressesTogglesAndZeroes(t *testing.T) {
	b := netlist.NewBuilder("rst")
	q := b.Counter(4, netlist.InvalidNet)
	b.Output("q", q)
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(7)
	count := 0
	sim.OnToggle = func(int, bool) { count++ }
	sim.Reset()
	if count != 0 {
		t.Fatal("Reset must not fire toggle callbacks")
	}
	if got, _ := sim.PortUint("q"); got != 0 {
		t.Fatalf("counter after reset = %d", got)
	}
	if sim.Cycle() != 0 {
		t.Fatalf("cycle after reset = %d", sim.Cycle())
	}
	sim.OnToggle = nil
	sim.Run(2)
	if got, _ := sim.PortUint("q"); got != 2 {
		t.Fatalf("counter after reset+2 = %d", got)
	}
}

func TestPortErrors(t *testing.T) {
	_, sim := buildComb(t)
	if err := sim.SetPortUint("nope", 1); err == nil {
		t.Fatal("unknown input port must error")
	}
	if err := sim.SetPortBits("in", []uint8{1}); err == nil {
		t.Fatal("width mismatch must error")
	}
	if _, err := sim.PortUint("nope"); err == nil {
		t.Fatal("unknown port must error")
	}
	if _, err := sim.PortBits("in"); err != nil {
		t.Fatal("reading an input port must work")
	}
}

func TestSetPortBitsNormalizesValues(t *testing.T) {
	_, sim := buildComb(t)
	if err := sim.SetPortBits("in", []uint8{7, 0, 255}); err != nil {
		t.Fatal(err)
	}
	got, _ := sim.PortBits("in")
	if got[0] != 1 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("bits = %v", got)
	}
}

// Property: a combinational adder netlist matches integer addition.
func TestRippleIncrementerMatchesArithmetic(t *testing.T) {
	b := netlist.NewBuilder("inc")
	x := b.Input("x", 8)
	b.Output("y", b.Incrementer(x))
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	f := func(v uint8) bool {
		sim.SetPortUint("x", uint64(v))
		sim.Settle()
		got, _ := sim.PortUint("y")
		return got == uint64(v+1) // uint8 wraps like the 8-bit bus
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EqualsConst matches ==.
func TestEqualsConst(t *testing.T) {
	b := netlist.NewBuilder("eq")
	x := b.Input("x", 8)
	b.Output("eq", []netlist.Net{b.EqualsConst(x, 0xA5)})
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 256; v++ {
		sim.SetPortUint("x", v)
		sim.Settle()
		got, _ := sim.PortUint("eq")
		want := uint64(0)
		if v == 0xA5 {
			want = 1
		}
		if got != want {
			t.Fatalf("EqualsConst(%#x) = %d", v, got)
		}
	}
}

// Property: reduction gates match software reductions on random inputs.
func TestReductions(t *testing.T) {
	b := netlist.NewBuilder("red")
	x := b.Input("x", 9)
	b.Output("rxor", []netlist.Net{b.ReduceXor(x)})
	b.Output("rand", []netlist.Net{b.ReduceAnd(x)})
	b.Output("ror", []netlist.Net{b.ReduceOr(x)})
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		v := uint64(rng.Intn(512))
		sim.SetPortUint("x", v)
		sim.Settle()
		var xr, ar, or uint64
		ar = 1
		for k := 0; k < 9; k++ {
			bit := v >> uint(k) & 1
			xr ^= bit
			ar &= bit
			or |= bit
		}
		gx, _ := sim.PortUint("rxor")
		ga, _ := sim.PortUint("rand")
		go_, _ := sim.PortUint("ror")
		if gx != xr || ga != ar || go_ != or {
			t.Fatalf("v=%09b: got (%d,%d,%d) want (%d,%d,%d)", v, gx, ga, go_, xr, ar, or)
		}
	}
}

func TestNetlistAccessor(t *testing.T) {
	n, sim := buildComb(t)
	if sim.Netlist() != n {
		t.Fatal("Netlist accessor broken")
	}
}

func TestStuckAtChangesFunction(t *testing.T) {
	b := netlist.NewBuilder("saf")
	in := b.Input("in", 2)
	x := b.Xor(in[0], in[1])
	b.Output("y", []netlist.Net{x})
	n := b.Build()
	sa, err := n.StuckAt(x, true)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(sa)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 4; v++ {
		sim.SetPortUint("in", v)
		sim.Settle()
		got, _ := sim.PortUint("y")
		if got != 1 {
			t.Fatalf("stuck-at-1 output = %d for in=%d", got, v)
		}
	}
}

// engines runs a subtest under both the compiled and reference engine so
// semantic tests pin both implementations.
func engines(t *testing.T, f func(t *testing.T, opts ...Option)) {
	t.Run("compiled", func(t *testing.T) { f(t) })
	t.Run("reference", func(t *testing.T) { f(t, WithReferenceEngine()) })
}

// TestDFFEEnableToggleReporting exercises the DFFE enable path in both
// engines: a disabled flip-flop must neither capture nor report a
// toggle, an enabled one must do both, and the toggle must be reported
// at the clock edge (Cycle() already advanced) rather than during
// settling.
func TestDFFEEnableToggleReporting(t *testing.T) {
	engines(t, func(t *testing.T, opts ...Option) {
		b := netlist.NewBuilder("dffe_tgl")
		d := b.Input("d", 1)
		en := b.Input("en", 1)
		q := b.RegE(d[0], en[0])
		inv := b.Not(q) // combinational fanout of the register
		b.Output("q", []netlist.Net{q})
		b.Output("nq", []netlist.Net{inv})
		sim, err := New(b.Build(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		type ev struct {
			cell  int
			rise  bool
			cycle int
		}
		var events []ev
		sim.OnToggle = func(cell int, rise bool) {
			events = append(events, ev{cell, rise, sim.Cycle()})
		}
		regCell := sim.Netlist().Driver(q)
		invCell := sim.Netlist().Driver(inv)

		// Enable low: D changes must not reach Q and no toggles fire at
		// the edge (the inverter settled to 1 at New, before the hook).
		sim.SetPortUint("d", 1)
		sim.Tick()
		if v, _ := sim.PortUint("q"); v != 0 {
			t.Fatal("DFFE captured with enable low")
		}
		for _, e := range events {
			if e.cell == regCell {
				t.Fatalf("disabled DFFE reported a toggle: %+v", e)
			}
		}
		events = events[:0]

		// Enable high: Q rises at the edge of cycle 2 and the inverter
		// falls during the same cycle's settling.
		sim.SetPortUint("en", 1)
		sim.Tick()
		if v, _ := sim.PortUint("q"); v != 1 {
			t.Fatal("DFFE did not capture with enable high")
		}
		want := []ev{{regCell, true, 2}, {invCell, false, 2}}
		if len(events) != len(want) {
			t.Fatalf("events = %+v, want %+v", events, want)
		}
		for i := range want {
			if events[i] != want[i] {
				t.Fatalf("event %d = %+v, want %+v", i, events[i], want[i])
			}
		}
		events = events[:0]

		// Enable low again with D low: Q holds, no register toggle.
		sim.SetPortUint("d", 0)
		sim.SetPortUint("en", 0)
		sim.Tick()
		if v, _ := sim.PortUint("q"); v != 1 {
			t.Fatal("DFFE did not hold with enable low")
		}
		if len(events) != 0 {
			t.Fatalf("holding DFFE produced events %+v", events)
		}
	})
}

// TestMux2SelectToggles exercises the Mux2 select path: flipping the
// select between unequal data legs toggles the output, flipping it
// between equal legs must not, and toggles during an explicit Settle are
// reported under the still-current cycle (settling, not a clock edge).
func TestMux2SelectToggles(t *testing.T) {
	engines(t, func(t *testing.T, opts ...Option) {
		b := netlist.NewBuilder("mux_sel")
		a := b.Input("a", 1)
		c := b.Input("b", 1)
		s := b.Input("s", 1)
		m := b.Mux(a[0], c[0], s[0])
		b.Output("y", []netlist.Net{m})
		sim, err := New(b.Build(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		muxCell := sim.Netlist().Driver(m)
		type ev struct {
			cell  int
			rise  bool
			cycle int
		}
		var events []ev
		sim.OnToggle = func(cell int, rise bool) {
			events = append(events, ev{cell, rise, sim.Cycle()})
		}

		// a=1, b=0, s=0 -> y=1 (a leg): the mux rises during settling of
		// cycle 0 (no Tick has happened).
		sim.SetPortUint("a", 1)
		sim.Settle()
		if v, _ := sim.PortUint("y"); v != 1 {
			t.Fatal("mux did not pass the a leg")
		}
		if len(events) != 1 || events[0] != (ev{muxCell, true, 0}) {
			t.Fatalf("events = %+v, want mux rise in cycle 0", events)
		}
		events = events[:0]

		// Select flips to the b leg (0): the output falls.
		sim.SetPortUint("s", 1)
		sim.Settle()
		if v, _ := sim.PortUint("y"); v != 0 {
			t.Fatal("mux did not switch to the b leg")
		}
		if len(events) != 1 || events[0].rise {
			t.Fatalf("events = %+v, want a single fall", events)
		}
		events = events[:0]

		// Equal legs: select flips must not toggle the output.
		sim.SetPortUint("b", 1)
		sim.Settle() // y: 0 -> 1 with the b leg now high
		events = events[:0]
		sim.SetPortUint("s", 0)
		sim.Settle()
		if v, _ := sim.PortUint("y"); v != 1 {
			t.Fatal("mux output wrong after select flip between equal legs")
		}
		if len(events) != 0 {
			t.Fatalf("select flip between equal legs toggled: %+v", events)
		}
	})
}

// TestForkDoesNotCopyOnToggle pins Simulator.Fork's intentional non-copy
// of the toggle sink: a fork starts with no OnToggle callback and
// batching off, so it records nothing until a caller attaches its own
// sink. (A copied closure would silently misattribute the fork's
// activity to the parent's recorder.)
func TestForkDoesNotCopyOnToggle(t *testing.T) {
	engines(t, func(t *testing.T, opts ...Option) {
		b := netlist.NewBuilder("fork_tgl")
		q := b.Counter(4, netlist.InvalidNet)
		b.Output("q", q)
		sim, err := New(b.Build(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		parentEvents := 0
		sim.OnToggle = func(int, bool) { parentEvents++ }
		sim.BatchToggles(false)

		f := sim.Fork()
		if f.OnToggle != nil {
			t.Fatal("Fork copied the OnToggle callback")
		}
		before := parentEvents
		f.Run(4)
		if parentEvents != before {
			t.Fatal("fork activity fired the parent's callback")
		}
		if got := len(f.TakeToggles()); got != 0 {
			t.Fatalf("fork accumulated %d batched events without batching on", got)
		}
		// The fork still simulates correctly and can get its own sink.
		forkEvents := 0
		f.OnToggle = func(int, bool) { forkEvents++ }
		f.Run(1)
		if forkEvents == 0 {
			t.Fatal("fork with its own callback recorded nothing")
		}
		if got, _ := f.PortUint("q"); got != 5 {
			t.Fatalf("fork counter = %d, want 5", got)
		}
		// And the parent's callback still works.
		sim.Run(1)
		if parentEvents == 0 {
			t.Fatal("parent callback lost after Fork")
		}
	})
}

// TestBatchTogglesMatchesCallback pins that batched accounting reports
// exactly the callback stream: same cells, same directions, same order.
func TestBatchTogglesMatchesCallback(t *testing.T) {
	engines(t, func(t *testing.T, opts ...Option) {
		b := netlist.NewBuilder("batch")
		q := b.Counter(5, netlist.InvalidNet)
		b.Output("q", q)
		n := b.Build()
		cb, err := New(n, opts...)
		if err != nil {
			t.Fatal(err)
		}
		bt, err := New(n, opts...)
		if err != nil {
			t.Fatal(err)
		}
		type ev struct {
			cell int
			rise bool
		}
		var want []ev
		cb.OnToggle = func(cell int, rise bool) { want = append(want, ev{cell, rise}) }
		bt.BatchToggles(true)
		for i := 0; i < 10; i++ {
			cb.Tick()
			bt.Tick()
			got := bt.TakeToggles()
			if len(got) != len(want) {
				t.Fatalf("tick %d: %d batched vs %d callback events", i, len(got), len(want))
			}
			for k, e := range got {
				if e.Cell() != want[k].cell || e.Rise() != want[k].rise {
					t.Fatalf("tick %d event %d: (%d,%v) vs (%d,%v)", i, k, e.Cell(), e.Rise(), want[k].cell, want[k].rise)
				}
			}
			want = want[:0]
		}
	})
}
