package logic

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"emtrust/internal/netlist"
)

func TestVCDDumpsCounter(t *testing.T) {
	b := netlist.NewBuilder("ctr")
	q := b.Counter(2, netlist.InvalidNet)
	b.Output("q", q)
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	vcd, err := sim.NewVCD(&buf, "q")
	if err != nil {
		t.Fatal(err)
	}
	if err := vcd.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sim.Tick()
		if err := vcd.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale", "$scope module ctr", "$var wire 1 ! q[0] $end",
		"$var wire 1 \" q[1] $end", "$dumpvars", "#1", "#2", "#3", "#4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in VCD:\n%s", want, out)
		}
	}
	// Bit 0 toggles every cycle: four changes after time 0.
	if got := strings.Count(out, "!"); got < 5 { // declaration + 4 changes
		t.Errorf("bit-0 changes = %d", got)
	}
}

func TestVCDQuietCycleEmitsNoTimestamp(t *testing.T) {
	b := netlist.NewBuilder("hold")
	in := b.Input("d", 1)
	b.Output("o", []netlist.Net{b.Buf(in[0])})
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	vcd, err := sim.NewVCD(&buf, "o")
	if err != nil {
		t.Fatal(err)
	}
	vcd.Begin()
	sim.Tick() // nothing changes
	vcd.Sample()
	if strings.Contains(buf.String(), "#1") {
		t.Fatal("quiet cycle should emit no timestamp")
	}
	sim.SetPortUint("d", 1)
	sim.Settle()
	sim.Tick()
	vcd.Sample()
	if !strings.Contains(buf.String(), "#2") {
		t.Fatal("change not recorded")
	}
}

func TestVCDErrors(t *testing.T) {
	b := netlist.NewBuilder("x")
	in := b.Input("d", 1)
	b.Output("o", []netlist.Net{b.Buf(in[0])})
	sim, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewVCD(&bytes.Buffer{}, "nope"); err == nil {
		t.Fatal("unknown port must error")
	}
	if _, err := sim.NewVCD(&bytes.Buffer{}); err == nil {
		t.Fatal("no ports must error")
	}
	if _, err := sim.NewVCD(brokenWriter{}, "o"); err == nil {
		t.Fatal("write errors must propagate")
	}
}

type brokenWriter struct{}

func (brokenWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("broken") }

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
		for _, r := range id {
			if r < 33 || r > 126 {
				t.Fatalf("id %q contains non-printable rune", id)
			}
		}
	}
}
