package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false, want true", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true, want false", n)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// The FFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > tol {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSinusoidBin(t *testing.T) {
	// A pure sinusoid at bin k must concentrate its energy at bins k and
	// N-k with magnitude N/2 each.
	const n = 256
	const k = 17
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*float64(k)*float64(i)/n), 0)
	}
	FFT(x)
	for i, v := range x {
		mag := cmplx.Abs(v)
		switch i {
		case k, n - k:
			if math.Abs(mag-n/2) > 1e-6 {
				t.Errorf("bin %d magnitude = %g, want %g", i, mag, float64(n)/2)
			}
		default:
			if mag > 1e-6 {
				t.Errorf("bin %d magnitude = %g, want ~0", i, mag)
			}
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 128)
	orig := make([]complex128, len(x))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	FFT(x)
	IFFT(x)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT of non-power-of-two length did not panic")
		}
	}()
	FFT(make([]complex128, 12))
}

// TestFFTParseval checks energy conservation for random signals
// (property-based).
func TestFFTParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]complex128, n)
		timeEnergy := 0.0
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		FFT(x)
		freqEnergy := 0.0
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		return almostEqual(timeEnergy, freqEnergy, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFFTLinearity checks FFT(a*x + b*y) == a*FFT(x) + b*FFT(y).
func TestFFTLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		x := make([]complex128, n)
		y := make([]complex128, n)
		mix := make([]complex128, n)
		a := complex(rng.NormFloat64(), 0)
		b := complex(rng.NormFloat64(), 0)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			mix[i] = a*x[i] + b*y[i]
		}
		FFT(x)
		FFT(y)
		FFT(mix)
		for i := range mix {
			want := a*x[i] + b*y[i]
			if cmplx.Abs(mix[i]-want) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRealFFTPadsToPow2(t *testing.T) {
	x := make([]float64, 100)
	spec := RealFFT(x)
	if len(spec) != 128 {
		t.Fatalf("RealFFT length = %d, want 128", len(spec))
	}
}

func TestPadPow2Copies(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	p := PadPow2(x)
	if len(p) != 4 {
		t.Fatalf("PadPow2 length = %d, want 4", len(p))
	}
	p[0] = 99
	if x[0] != 1 {
		t.Fatal("PadPow2 aliased its input")
	}
}

func TestBinFrequency(t *testing.T) {
	// 1024 samples at 1 MHz: bin spacing must be ~976.5625 Hz.
	got := BinFrequency(1, 1024, 1e-6)
	if math.Abs(got-976.5625) > 1e-6 {
		t.Fatalf("BinFrequency = %g, want 976.5625", got)
	}
	if k := FrequencyBin(976.5625, 1024, 1e-6); k != 1 {
		t.Fatalf("FrequencyBin = %d, want 1", k)
	}
	if k := FrequencyBin(-5, 1024, 1e-6); k != 0 {
		t.Fatalf("FrequencyBin clamp low = %d, want 0", k)
	}
	if k := FrequencyBin(1e12, 1024, 1e-6); k != 512 {
		t.Fatalf("FrequencyBin clamp high = %d, want 512", k)
	}
}

// naiveDFT is the O(n^2) textbook transform the FFT must match.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			th := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, th))
		}
		out[k] = sum
	}
	return out
}

// The cached-twiddle FFT must match the naive transform to 1e-12 on
// random inputs across sizes.
func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := make([]complex128, n)
		copy(got, x)
		FFT(got)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-12*(1+cmplx.Abs(want[k])) {
				t.Fatalf("n=%d bin %d: FFT %v, naive %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestIFFTRoundTripLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{512, 2048} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := make([]complex128, n)
		copy(y, x)
		FFT(y)
		IFFT(y)
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-10 {
				t.Fatalf("n=%d sample %d: roundtrip %v != %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestRealFFTIntoReusesBuffer(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	want := RealFFT(x)
	buf := make([]complex128, 16)
	got := RealFFTInto(buf, x)
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	if &got[0] != &buf[0] {
		t.Error("RealFFTInto allocated despite sufficient capacity")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bin %d: %v != %v", i, got[i], want[i])
		}
	}
	// Dirty reuse must give the same answer.
	got2 := RealFFTInto(got, x)
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("reused bin %d: %v != %v", i, got2[i], want[i])
		}
	}
}
