package dsp

import (
	"fmt"
	"math"
	"sync"
)

// This file is the planned spectral engine: every transform size gets a
// cached Plan holding the precomputed bit-reversal permutation, twiddle
// tables, and untangle coefficients, plus a scratch pool, so the hot
// spectral paths (the Section III-E monitor tick, the Figure 4/6
// experiments, STFT spectrograms) run with zero steady-state
// allocations. Real input goes through the half-size complex transform
// plus an untangle pass — an n-point real FFT costs one n/2-point
// complex FFT instead of the n-point transform the old ToComplex path
// paid — and the magnitude/PSD loops use the 4-wide single-accumulator
// unroll idiom of DESIGN.md §10. The pre-existing complex radix-2
// butterflies are kept bit-identical (FFT/IFFT produce the same values
// as before; they only stopped recomputing the permutation per call),
// and they remain the reference the differential tests compare the real
// path against.

// cplan is a complex FFT plan: the bit-reversal permutation and forward
// twiddle table for one power-of-two size. Transforms through a cplan
// are bit-identical to the original per-call fftDir implementation.
type cplan struct {
	n   int
	rev []int32      // bit-reversal permutation
	tw  []complex128 // tw[k] = e^{-2*pi*i*k/n}, k < n/2
}

var (
	cplanMu sync.RWMutex
	cplans  = map[int]*cplan{}
)

// cplanFor returns the cached complex plan for size n, building it on
// first use. n must be a power of two. The read path takes only an
// RLock and never allocates, so concurrent transforms of a shared size
// stay contention- and allocation-free.
func cplanFor(n int) *cplan {
	cplanMu.RLock()
	p := cplans[n]
	cplanMu.RUnlock()
	if p != nil {
		return p
	}
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	rev := make([]int32, n)
	logN := 0
	for 1<<logN < n {
		logN++
	}
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < logN; b++ {
			r = r<<1 | (i>>b)&1
		}
		rev[i] = int32(r)
	}
	p = &cplan{n: n, rev: rev, tw: twiddles(n)}
	cplanMu.Lock()
	if q, ok := cplans[n]; ok {
		p = q
	} else {
		cplans[n] = p
	}
	cplanMu.Unlock()
	return p
}

// transform runs the in-place radix-2 decimation-in-time butterflies.
// The butterfly order, twiddle values, and arithmetic are exactly those
// of the original fftDir, so results are bit-identical; only the
// bit-reversal permutation comes from the precomputed table.
func (p *cplan) transform(x []complex128, inverse bool) {
	n := p.n
	for i, jj := range p.rev {
		if j := int(jj); j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := p.tw
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k*stride]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// Plan is a cached real-input spectral plan for one power-of-two
// transform size. Plans are shared process-wide (PlanFor returns the
// same *Plan for the same size) and safe for concurrent use: scratch
// buffers come from an internal pool, so any number of goroutines can
// run SpectrumInto/RealFFTInto on one Plan with zero steady-state
// allocations and bit-identical results.
type Plan struct {
	n       int    // transform size (power of two, >= 1)
	half    *cplan // complex plan of size n/2 (nil when n < 2)
	rtw     []complex128
	scratch sync.Pool // *[]complex128 of length n/2
}

var (
	planMu sync.RWMutex
	plans  = map[int]*Plan{}
)

// PlanFor returns the cached Plan for transform size n, which must be a
// power of two (callers pad with NextPow2 first; PlanFor panics
// otherwise, mirroring FFT). The lookup is allocation-free.
func PlanFor(n int) *Plan {
	planMu.RLock()
	p := plans[n]
	planMu.RUnlock()
	if p != nil {
		return p
	}
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: plan length %d is not a power of two", n))
	}
	p = &Plan{n: n}
	if n >= 2 {
		p.half = cplanFor(n / 2)
		// Untangle twiddles e^{-2*pi*i*k/n} for k < n/2: exactly the
		// forward twiddle table of the full-size transform, shared with
		// the complex path.
		p.rtw = twiddles(n)
	}
	m := n / 2
	p.scratch.New = func() any {
		s := make([]complex128, m)
		return &s
	}
	planMu.Lock()
	if q, ok := plans[n]; ok {
		p = q
	} else {
		plans[n] = p
	}
	planMu.Unlock()
	return p
}

// PlanForLength returns the Plan for the padded transform of a signal
// of the given sample count: PlanFor(NextPow2(samples)).
func PlanForLength(samples int) *Plan { return PlanFor(NextPow2(samples)) }

// Size returns the transform length n of the plan.
func (p *Plan) Size() int { return p.n }

// Bins returns the number of one-sided spectrum bins, n/2 + 1.
func (p *Plan) Bins() int { return p.n/2 + 1 }

// grow returns buf resized to n, reusing its backing array when the
// capacity suffices.
func grow(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

func growC(buf []complex128, n int) []complex128 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]complex128, n)
}

// pack fills z[j] = x[2j] + i*x[2j+1] (zero-padded past len(x)) — the
// standard even/odd packing that lets the half-size complex transform
// carry the full real signal.
func pack(z []complex128, x []float64) {
	m := len(z)
	full := len(x) / 2 // pairs entirely inside x
	if full > m {
		full = m
	}
	j := 0
	for ; j+4 <= full; j += 4 { // 4-wide unroll of the pack loop
		z[j] = complex(x[2*j], x[2*j+1])
		z[j+1] = complex(x[2*j+2], x[2*j+3])
		z[j+2] = complex(x[2*j+4], x[2*j+5])
		z[j+3] = complex(x[2*j+6], x[2*j+7])
	}
	for ; j < full; j++ {
		z[j] = complex(x[2*j], x[2*j+1])
	}
	if j < m {
		if 2*j < len(x) { // odd trailing sample
			z[j] = complex(x[2*j], 0)
			j++
		}
		for ; j < m; j++ {
			z[j] = 0
		}
	}
}

// packWindowed is pack with the window coefficients applied on the fly,
// fusing the window multiply into the load so no windowed copy of x is
// ever materialized.
func packWindowed(z []complex128, x, c []float64) {
	m := len(z)
	full := len(x) / 2
	if full > m {
		full = m
	}
	j := 0
	for ; j+2 <= full; j += 2 { // 4 real samples per iteration
		z[j] = complex(x[2*j]*c[2*j], x[2*j+1]*c[2*j+1])
		z[j+1] = complex(x[2*j+2]*c[2*j+2], x[2*j+3]*c[2*j+3])
	}
	for ; j < full; j++ {
		z[j] = complex(x[2*j]*c[2*j], x[2*j+1]*c[2*j+1])
	}
	if j < m {
		if 2*j < len(x) {
			z[j] = complex(x[2*j]*c[2*j], 0)
			j++
		}
		for ; j < m; j++ {
			z[j] = 0
		}
	}
}

// RealFFTInto computes the length-n complex spectrum of the real signal
// x (len(x) <= n, zero-padded) into dst, growing dst only when its
// capacity is below n. The upper half is filled by conjugate symmetry,
// so the result matches the full complex transform of the padded signal
// to within floating-point rounding (the differential tests bound the
// difference). The work happens in place inside dst: no scratch buffer
// and no allocation when dst has capacity.
func (p *Plan) RealFFTInto(dst []complex128, x []float64) []complex128 {
	n := p.n
	if len(x) > n {
		panic(fmt.Sprintf("dsp: signal of %d samples exceeds plan size %d", len(x), n))
	}
	dst = growC(dst, n)
	if n == 1 {
		v := 0.0
		if len(x) > 0 {
			v = x[0]
		}
		dst[0] = complex(v, 0)
		return dst
	}
	m := n / 2
	pack(dst[:m], x)
	p.half.transform(dst[:m], false)
	p.untangle(dst)
	return dst
}

// untangle converts the half-size transform of the packed signal
// (stored in dst[:n/2]) into the full n-bin spectrum in place. For each
// pair (k, m-k) it splits the packed transform into the spectra of the
// even and odd sample streams and recombines them with the untangle
// twiddle e^{-2*pi*i*k/n}; the upper half follows from conjugate
// symmetry of real-input spectra.
func (p *Plan) untangle(dst []complex128) {
	n := p.n
	m := n / 2
	z0 := dst[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[m] = complex(real(z0)-imag(z0), 0)
	for k := 1; 2*k <= m; k++ {
		j := m - k
		a, b := dst[k], dst[j]
		ar, ai := real(a), imag(a)
		br, bi := real(b), imag(b)
		evR, evI := 0.5*(ar+br), 0.5*(ai-bi) // spectrum of even samples
		odR, odI := 0.5*(ai+bi), 0.5*(br-ar) // spectrum of odd samples
		tk := p.rtw[k]
		tkR, tkI := real(tk), imag(tk)
		xkR := evR + tkR*odR - tkI*odI
		xkI := evI + tkR*odI + tkI*odR
		if j == k {
			dst[k] = complex(xkR, xkI)
			dst[n-k] = complex(xkR, -xkI)
			continue
		}
		// The partner bin swaps the roles of a and b: the even part
		// conjugates, the odd part negates component-wise.
		tj := p.rtw[j]
		tjR, tjI := real(tj), imag(tj)
		xjR := evR + tjR*odR + tjI*odI
		xjI := -evI - tjR*odI + tjI*odR
		dst[k] = complex(xkR, xkI)
		dst[j] = complex(xjR, xjI)
		dst[n-k] = complex(xkR, -xkI)
		dst[n-j] = complex(xjR, -xjI)
	}
}

// SpectrumInto computes the one-sided amplitude spectrum of x (windowed
// by w, zero-padded to the plan size, scaled by the window's coherent
// gain exactly as NewSpectrum does) into dst, growing dst only when
// needed, and returns the n/2+1 amplitudes. The transform runs in a
// pooled half-size scratch buffer, so the call is allocation-free at
// steady state and safe for concurrent use on a shared Plan. dst may
// alias x: every read of x happens during the packing pass, before the
// first write to dst.
func (p *Plan) SpectrumInto(dst []float64, x []float64, w Window) []float64 {
	if len(x) == 0 {
		return grow(dst, 0)
	}
	n := p.n
	if len(x) > n {
		panic(fmt.Sprintf("dsp: signal of %d samples exceeds plan size %d", len(x), n))
	}
	wv := windowFor(w, len(x))
	scale := 2 / (float64(len(x)) * wv.gain)
	if n == 1 {
		dst = grow(dst, 1)
		// A single bin is both DC and Nyquist; NewSpectrum halves once.
		dst[0] = math.Abs(x[0]*wv.coef[0]) * scale / 2
		return dst
	}
	m := n / 2
	dst = grow(dst, m+1)
	zp := p.scratch.Get().(*[]complex128)
	z := *zp
	packWindowed(z, x, wv.coef)
	p.half.transform(z, false)
	// Untangle and take magnitudes in one pass: only the one-sided bins
	// are needed, so the full spectrum is never materialized.
	z0 := z[0]
	dst[0] = math.Abs(real(z0)+imag(z0)) * scale / 2 // DC appears once
	dst[m] = math.Abs(real(z0)-imag(z0)) * scale / 2 // Nyquist appears once
	for k := 1; 2*k <= m; k++ {
		j := m - k
		a, b := z[k], z[j]
		ar, ai := real(a), imag(a)
		br, bi := real(b), imag(b)
		evR, evI := 0.5*(ar+br), 0.5*(ai-bi)
		odR, odI := 0.5*(ai+bi), 0.5*(br-ar)
		tk := p.rtw[k]
		tkR, tkI := real(tk), imag(tk)
		xkR := evR + tkR*odR - tkI*odI
		xkI := evI + tkR*odI + tkI*odR
		dst[k] = math.Sqrt(xkR*xkR+xkI*xkI) * scale
		if j == k {
			continue
		}
		tj := p.rtw[j]
		tjR, tjI := real(tj), imag(tj)
		xjR := evR + tjR*odR + tjI*odI
		xjI := -evI - tjR*odI + tjI*odR
		dst[j] = math.Sqrt(xjR*xjR+xjI*xjI) * scale
	}
	p.scratch.Put(zp)
	return dst
}

// PSDInto computes the one-sided power spectral density of x (in
// V^2/Hz for a signal in volts sampled every dt seconds) into dst using
// the standard periodogram normalization 2*|X[k]|^2 / (fs * sum(w^2)),
// with DC and Nyquist not doubled. Like SpectrumInto it is
// allocation-free at steady state and concurrency-safe.
func (p *Plan) PSDInto(dst []float64, x []float64, dt float64, w Window) []float64 {
	if len(x) == 0 {
		return grow(dst, 0)
	}
	n := p.n
	if len(x) > n {
		panic(fmt.Sprintf("dsp: signal of %d samples exceeds plan size %d", len(x), n))
	}
	wv := windowFor(w, len(x))
	den := wv.sumsq / dt // fs * sum(w^2)
	scale := 2 / den
	if n == 1 {
		dst = grow(dst, 1)
		v := x[0] * wv.coef[0]
		dst[0] = v * v / den
		return dst
	}
	m := n / 2
	dst = grow(dst, m+1)
	zp := p.scratch.Get().(*[]complex128)
	z := *zp
	packWindowed(z, x, wv.coef)
	p.half.transform(z, false)
	z0 := z[0]
	dc := real(z0) + imag(z0)
	ny := real(z0) - imag(z0)
	dst[0] = dc * dc / den
	dst[m] = ny * ny / den
	for k := 1; 2*k <= m; k++ {
		j := m - k
		a, b := z[k], z[j]
		ar, ai := real(a), imag(a)
		br, bi := real(b), imag(b)
		evR, evI := 0.5*(ar+br), 0.5*(ai-bi)
		odR, odI := 0.5*(ai+bi), 0.5*(br-ar)
		tk := p.rtw[k]
		tkR, tkI := real(tk), imag(tk)
		xkR := evR + tkR*odR - tkI*odI
		xkI := evI + tkR*odI + tkI*odR
		dst[k] = (xkR*xkR + xkI*xkI) * scale
		if j == k {
			continue
		}
		tj := p.rtw[j]
		tjR, tjI := real(tj), imag(tj)
		xjR := evR + tjR*odR + tjI*odI
		xjI := -evI - tjR*odI + tjI*odR
		dst[j] = (xjR*xjR + xjI*xjI) * scale
	}
	p.scratch.Put(zp)
	return dst
}

// MagnitudesInto writes |spec[i]| into dst (grown as needed) and
// returns it, using the 4-wide unrolled sqrt(re^2+im^2) form — the
// values the spectral paths see are far from the overflow regime where
// Hypot's rescaling would matter.
func MagnitudesInto(dst []float64, spec []complex128) []float64 {
	dst = grow(dst, len(spec))
	i := 0
	for ; i+4 <= len(spec); i += 4 {
		a, b, c, d := spec[i], spec[i+1], spec[i+2], spec[i+3]
		dst[i] = math.Sqrt(real(a)*real(a) + imag(a)*imag(a))
		dst[i+1] = math.Sqrt(real(b)*real(b) + imag(b)*imag(b))
		dst[i+2] = math.Sqrt(real(c)*real(c) + imag(c)*imag(c))
		dst[i+3] = math.Sqrt(real(d)*real(d) + imag(d)*imag(d))
	}
	for ; i < len(spec); i++ {
		v := spec[i]
		dst[i] = math.Sqrt(real(v)*real(v) + imag(v)*imag(v))
	}
	return dst
}

// Welch is a streaming averaged-periodogram (Welch) accumulator:
// segments are added one at a time and only the running power sum is
// retained, so arbitrarily long signals average into one PSD with a
// fixed memory footprint and no per-segment allocation.
type Welch struct {
	p      *Plan
	w      Window
	dt     float64
	segLen int
	count  int
	sum    []float64 // running sum of per-segment PSDs
	tmp    []float64 // per-segment scratch
}

// NewWelch returns an accumulator for segments of segLen samples spaced
// dt seconds apart, windowed by w. segLen must be positive.
func NewWelch(segLen int, dt float64, w Window) (*Welch, error) {
	if segLen <= 0 {
		return nil, fmt.Errorf("dsp: welch segment length %d must be positive", segLen)
	}
	if dt <= 0 {
		return nil, fmt.Errorf("dsp: welch sample spacing %g must be positive", dt)
	}
	p := PlanForLength(segLen)
	return &Welch{p: p, w: w, dt: dt, segLen: segLen, sum: make([]float64, p.Bins()), tmp: make([]float64, p.Bins())}, nil
}

// Add accumulates one segment. The segment must have exactly the
// configured length.
func (a *Welch) Add(seg []float64) error {
	if len(seg) != a.segLen {
		return fmt.Errorf("dsp: welch segment of %d samples, want %d", len(seg), a.segLen)
	}
	a.tmp = a.p.PSDInto(a.tmp, seg, a.dt, a.w)
	// 4-wide unrolled accumulation in index order (DESIGN.md §10).
	i := 0
	for ; i+4 <= len(a.sum); i += 4 {
		a.sum[i] += a.tmp[i]
		a.sum[i+1] += a.tmp[i+1]
		a.sum[i+2] += a.tmp[i+2]
		a.sum[i+3] += a.tmp[i+3]
	}
	for ; i < len(a.sum); i++ {
		a.sum[i] += a.tmp[i]
	}
	a.count++
	return nil
}

// Segments returns how many segments have been accumulated.
func (a *Welch) Segments() int { return a.count }

// DF returns the bin spacing of the averaged PSD in hertz.
func (a *Welch) DF() float64 { return 1 / (float64(a.p.Size()) * a.dt) }

// PSDInto writes the averaged PSD into dst (grown as needed). It
// returns nil when no segments have been added.
func (a *Welch) PSDInto(dst []float64) []float64 {
	if a.count == 0 {
		return nil
	}
	dst = grow(dst, len(a.sum))
	inv := 1 / float64(a.count)
	for i, v := range a.sum {
		dst[i] = v * inv
	}
	return dst
}

// Reset clears the accumulator for reuse.
func (a *Welch) Reset() {
	for i := range a.sum {
		a.sum[i] = 0
	}
	a.count = 0
}

// STFTInto computes a spectrogram as raw amplitude rows: successive
// one-sided spectra of winLen-sample frames advanced by hop, written
// into dst (rows reused when present, grown otherwise). It returns the
// rows and the bin spacing in hertz. One plan scratch set is reused
// across all frames, so a steady-state caller re-passing its previous
// rows triggers no allocation at all. Degenerate arguments (winLen <=
// 0, hop <= 0, or a signal shorter than one frame) return (nil, 0),
// the same documented clamp as STFT.
func STFTInto(dst [][]float64, x []float64, dt float64, w Window, winLen, hop int) ([][]float64, float64) {
	if winLen <= 0 || hop <= 0 || len(x) < winLen {
		return nil, 0
	}
	p := PlanForLength(winLen)
	frames := 1 + (len(x)-winLen)/hop
	if cap(dst) >= frames {
		dst = dst[:frames]
	} else {
		old := dst
		dst = make([][]float64, frames)
		copy(dst, old)
	}
	for f := 0; f < frames; f++ {
		start := f * hop
		dst[f] = p.SpectrumInto(dst[f], x[start:start+winLen], w)
	}
	return dst, 1 / (float64(p.Size()) * dt)
}
