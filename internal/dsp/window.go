package dsp

import (
	"math"
	"sync"
)

// Window identifies a tapering function applied to a signal before a
// spectral transform to control leakage.
type Window int

const (
	// Rectangular applies no tapering.
	Rectangular Window = iota
	// Hann is the raised-cosine window; the paper's spectral comparisons
	// use it as the default because it suppresses leakage around the
	// clock harmonics without widening peaks too far.
	Hann
	// Hamming is the classic 0.54/0.46 window.
	Hamming
	// Blackman is a three-term window with very low sidelobes.
	Blackman
)

// String returns the conventional window name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// windowVec is a cached window vector: the coefficients plus the
// derived scalars every spectral normalization needs, computed once per
// (window, length) pair. The coef slice is shared read-only by the hot
// paths; Coefficients hands out copies so callers stay free to mutate.
type windowVec struct {
	coef  []float64
	gain  float64 // coherent gain: mean coefficient
	sumsq float64 // sum of squared coefficients (PSD normalization)
}

type windowKey struct {
	w Window
	n int
}

var (
	windowMu   sync.RWMutex
	windowVecs = map[windowKey]*windowVec{}
)

// windowFor returns the cached window vector for (w, n), building it on
// first use. The read path takes only an RLock and never allocates.
func windowFor(w Window, n int) *windowVec {
	k := windowKey{w, n}
	windowMu.RLock()
	v := windowVecs[k]
	windowMu.RUnlock()
	if v != nil {
		return v
	}
	c := computeCoefficients(w, n)
	v = &windowVec{coef: c, gain: 1}
	if n > 0 {
		sum, sumsq := 0.0, 0.0
		for _, cv := range c {
			sum += cv
			sumsq += cv * cv
		}
		v.gain = sum / float64(n)
		v.sumsq = sumsq
	}
	windowMu.Lock()
	if q, ok := windowVecs[k]; ok {
		v = q
	} else {
		windowVecs[k] = v
	}
	windowMu.Unlock()
	return v
}

func computeCoefficients(w Window, n int) []float64 {
	c := make([]float64, n)
	if n == 1 {
		c[0] = 1
		return c
	}
	den := float64(n - 1)
	for i := range c {
		t := float64(i) / den
		switch w {
		case Hann:
			c[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			c[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			c[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			c[i] = 1
		}
	}
	return c
}

// Coefficients returns the n window coefficients. n must be
// non-negative. The returned slice is a private copy.
func (w Window) Coefficients(n int) []float64 {
	c := make([]float64, n)
	copy(c, windowFor(w, n).coef)
	return c
}

// Apply multiplies x by the window coefficients and returns a new slice; x
// is not modified.
func (w Window) Apply(x []float64) []float64 {
	c := windowFor(w, len(x)).coef
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v * c[i]
	}
	return out
}

// Gain returns the coherent gain of the window (mean coefficient value),
// used to rescale spectral amplitudes so windows are comparable.
func (w Window) Gain(n int) float64 {
	return windowFor(w, n).gain
}
