package dsp

import "math"

// Window identifies a tapering function applied to a signal before a
// spectral transform to control leakage.
type Window int

const (
	// Rectangular applies no tapering.
	Rectangular Window = iota
	// Hann is the raised-cosine window; the paper's spectral comparisons
	// use it as the default because it suppresses leakage around the
	// clock harmonics without widening peaks too far.
	Hann
	// Hamming is the classic 0.54/0.46 window.
	Hamming
	// Blackman is a three-term window with very low sidelobes.
	Blackman
)

// String returns the conventional window name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients. n must be positive.
func (w Window) Coefficients(n int) []float64 {
	c := make([]float64, n)
	if n == 1 {
		c[0] = 1
		return c
	}
	den := float64(n - 1)
	for i := range c {
		t := float64(i) / den
		switch w {
		case Hann:
			c[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			c[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			c[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			c[i] = 1
		}
	}
	return c
}

// Apply multiplies x by the window coefficients and returns a new slice; x
// is not modified.
func (w Window) Apply(x []float64) []float64 {
	c := w.Coefficients(len(x))
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v * c[i]
	}
	return out
}

// Gain returns the coherent gain of the window (mean coefficient value),
// used to rescale spectral amplitudes so windows are comparable.
func (w Window) Gain(n int) float64 {
	c := w.Coefficients(n)
	sum := 0.0
	for _, v := range c {
		sum += v
	}
	return sum / float64(n)
}
