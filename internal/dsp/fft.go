// Package dsp provides the signal-processing primitives used by the trust
// evaluation framework: FFT, window functions, power spectra, RMS and SNR
// computation, and simple filtering. Everything is implemented from scratch
// on top of the standard library so the repository stays dependency-free.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two that is >= n. It returns 1 for
// n <= 1.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. The length of x must be a power of two; FFT panics
// otherwise (a programming error, not an input error: callers zero-pad with
// PadPow2 first). The transform is unnormalized: IFFT(FFT(x)) == x.
func FFT(x []complex128) {
	fftDir(x, false)
}

// IFFT computes the inverse FFT of x in place, including the 1/N
// normalization. The length of x must be a power of two.
func IFFT(x []complex128) {
	fftDir(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftDir(x []complex128, inverse bool) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Danielson-Lanczos butterflies.
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// PadPow2 returns x zero-padded to the next power-of-two length. If the
// length of x is already a power of two, a copy is returned so callers can
// transform the result in place without aliasing the input.
func PadPow2(x []float64) []float64 {
	n := NextPow2(len(x))
	out := make([]float64, n)
	copy(out, x)
	return out
}

// ToComplex converts a real signal to a complex slice with zero imaginary
// parts.
func ToComplex(x []float64) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	return out
}

// RealFFT computes the FFT of a real signal, zero-padding it to a power of
// two. It returns the complex spectrum of length NextPow2(len(x)).
func RealFFT(x []float64) []complex128 {
	padded := PadPow2(x)
	c := ToComplex(padded)
	FFT(c)
	return c
}

// Magnitudes returns the magnitude of each bin of the spectrum.
func Magnitudes(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, v := range spec {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// BinFrequency returns the frequency in hertz of bin k for a transform of
// length n over samples spaced dt seconds apart.
func BinFrequency(k, n int, dt float64) float64 {
	return float64(k) / (float64(n) * dt)
}

// FrequencyBin returns the closest bin index for frequency f (Hz) given a
// transform length n and sample spacing dt. The result is clamped to the
// one-sided range [0, n/2].
func FrequencyBin(f float64, n int, dt float64) int {
	k := int(math.Round(f * float64(n) * dt))
	if k < 0 {
		k = 0
	}
	if k > n/2 {
		k = n / 2
	}
	return k
}
