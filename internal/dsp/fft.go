// Package dsp provides the signal-processing primitives used by the trust
// evaluation framework: FFT, window functions, power spectra, RMS and SNR
// computation, and simple filtering. Everything is implemented from scratch
// on top of the standard library so the repository stays dependency-free.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// twiddleCache memoizes the forward roots of unity per transform length:
// tw[k] = e^{-2*pi*i*k/n} for k < n/2. Each butterfly stage of size s
// reads the same table with stride n/s, so one table serves the whole
// transform, and the direct Cos/Sin evaluation is more accurate than the
// cumulative w *= wStep product the loop used before.
var twiddleCache sync.Map // int -> []complex128

func twiddles(n int) []complex128 {
	if v, ok := twiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		th := -2 * math.Pi * float64(k) / float64(n)
		tw[k] = complex(math.Cos(th), math.Sin(th))
	}
	v, _ := twiddleCache.LoadOrStore(n, tw)
	return v.([]complex128)
}

// NextPow2 returns the smallest power of two that is >= n. It returns 1 for
// n <= 1.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. The length of x must be a power of two; FFT panics
// otherwise (a programming error, not an input error: callers zero-pad with
// PadPow2 first). The transform is unnormalized: IFFT(FFT(x)) == x.
func FFT(x []complex128) {
	fftDir(x, false)
}

// IFFT computes the inverse FFT of x in place, including the 1/N
// normalization. The length of x must be a power of two.
func IFFT(x []complex128) {
	fftDir(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftDir(x []complex128, inverse bool) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// The planned transform runs the same butterflies over the same
	// twiddle table; only the bit-reversal permutation is precomputed,
	// so results stay bit-identical to the historical implementation.
	cplanFor(n).transform(x, inverse)
}

// PadPow2 returns x zero-padded to the next power-of-two length. If the
// length of x is already a power of two, a copy is returned so callers can
// transform the result in place without aliasing the input.
func PadPow2(x []float64) []float64 {
	n := NextPow2(len(x))
	out := make([]float64, n)
	copy(out, x)
	return out
}

// ToComplex converts a real signal to a complex slice with zero imaginary
// parts.
func ToComplex(x []float64) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	return out
}

// RealFFT computes the FFT of a real signal, zero-padding it to a power of
// two. It returns the complex spectrum of length NextPow2(len(x)).
func RealFFT(x []float64) []complex128 {
	return RealFFTInto(nil, x)
}

// RealFFTInto is RealFFT writing into dst, which is grown only when its
// capacity is below NextPow2(len(x)); it returns the slice holding the
// spectrum. It runs the planned half-size real transform (see plan.go):
// half the butterfly work of the old ToComplex + full complex FFT path,
// with no scratch allocation when dst has capacity. The full complex
// transform remains available through FFT and serves as the reference
// in the differential tests.
func RealFFTInto(dst []complex128, x []float64) []complex128 {
	return PlanForLength(len(x)).RealFFTInto(dst, x)
}

// Magnitudes returns the magnitude of each bin of the spectrum.
func Magnitudes(spec []complex128) []float64 {
	return MagnitudesInto(nil, spec)
}

// BinFrequency returns the frequency in hertz of bin k for a transform of
// length n over samples spaced dt seconds apart.
func BinFrequency(k, n int, dt float64) float64 {
	return float64(k) / (float64(n) * dt)
}

// FrequencyBin returns the closest bin index for frequency f (Hz) given a
// transform length n and sample spacing dt. The result is clamped to the
// one-sided range [0, n/2].
func FrequencyBin(f float64, n int, dt float64) int {
	k := int(math.Round(f * float64(n) * dt))
	if k < 0 {
		k = 0
	}
	if k > n/2 {
		k = n / 2
	}
	return k
}
