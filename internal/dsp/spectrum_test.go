package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// sine returns n samples of amplitude*sin(2*pi*f*t) sampled every dt.
func sine(n int, dt, f, amplitude float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = amplitude * math.Sin(2*math.Pi*f*float64(i)*dt)
	}
	return x
}

func TestSpectrumSinusoidAmplitude(t *testing.T) {
	// A 3.0-amplitude sinusoid exactly on a bin must read ~3.0 in the
	// one-sided amplitude spectrum, for every window.
	const n = 1024
	const dt = 1e-6
	f := BinFrequency(100, n, dt)
	x := sine(n, dt, f, 3.0)
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		s := NewSpectrum(x, dt, w)
		got := s.AmplitudeAt(f)
		if math.Abs(got-3.0) > 0.05 {
			t.Errorf("window %v: amplitude = %g, want ~3.0", w, got)
		}
	}
}

func TestSpectrumFrequencyMapping(t *testing.T) {
	const n = 1024
	const dt = 1e-6
	s := NewSpectrum(make([]float64, n), dt, Rectangular)
	if s.N != n {
		t.Fatalf("N = %d, want %d", s.N, n)
	}
	if math.Abs(s.Frequency(1)-s.DF) > 1e-12 {
		t.Fatal("Frequency(1) != DF")
	}
	if got := s.Bin(s.Frequency(77)); got != 77 {
		t.Fatalf("Bin(Frequency(77)) = %d", got)
	}
	if got := s.Bin(-10); got != 0 {
		t.Fatalf("Bin clamps low: got %d", got)
	}
	if got := s.Bin(1e12); got != len(s.Amplitude)-1 {
		t.Fatalf("Bin clamps high: got %d", got)
	}
}

func TestSpectrumEmptyInput(t *testing.T) {
	s := NewSpectrum(nil, 1e-6, Hann)
	if len(s.Amplitude) != 0 {
		t.Fatal("empty input must yield empty spectrum")
	}
	if s.AmplitudeAt(100) != 0 {
		t.Fatal("AmplitudeAt on empty spectrum must be 0")
	}
}

func TestSpectrumPeaks(t *testing.T) {
	const n = 2048
	const dt = 1e-7
	fa := BinFrequency(64, n, dt)
	fb := BinFrequency(200, n, dt)
	x := sine(n, dt, fa, 2.0)
	for i, v := range sine(n, dt, fb, 1.0) {
		x[i] += v
	}
	s := NewSpectrum(x, dt, Hann)
	peaks := s.TopPeaks(2, 0.1)
	if len(peaks) != 2 {
		t.Fatalf("expected 2 peaks, got %d", len(peaks))
	}
	if math.Abs(peaks[0].Frequency-fa) > 2*s.DF {
		t.Errorf("strongest peak at %g, want ~%g", peaks[0].Frequency, fa)
	}
	if math.Abs(peaks[1].Frequency-fb) > 2*s.DF {
		t.Errorf("second peak at %g, want ~%g", peaks[1].Frequency, fb)
	}
	if peaks[0].Amplitude <= peaks[1].Amplitude {
		t.Error("peaks not sorted by descending amplitude")
	}
}

func TestSpectrumBandEnergy(t *testing.T) {
	const n = 1024
	const dt = 1e-6
	f := BinFrequency(100, n, dt)
	x := sine(n, dt, f, 1.0)
	s := NewSpectrum(x, dt, Rectangular)
	in := s.BandEnergy(f-5*s.DF, f+5*s.DF)
	out := s.BandEnergy(f+50*s.DF, f+100*s.DF)
	if in <= 10*out {
		t.Fatalf("band energy around tone (%g) not dominant over off band (%g)", in, out)
	}
	// Reversed bounds must behave the same.
	if got := s.BandEnergy(f+5*s.DF, f-5*s.DF); math.Abs(got-in) > 1e-12 {
		t.Fatal("BandEnergy must accept reversed bounds")
	}
}

func TestSpectrumSub(t *testing.T) {
	const n = 512
	const dt = 1e-6
	a := NewSpectrum(sine(n, dt, BinFrequency(30, n, dt), 2.0), dt, Rectangular)
	b := NewSpectrum(sine(n, dt, BinFrequency(30, n, dt), 1.0), dt, Rectangular)
	d := a.Sub(b)
	if math.Abs(d[30]-1.0) > 0.05 {
		t.Fatalf("Sub at tone bin = %g, want ~1.0", d[30])
	}
}

func TestWindowGain(t *testing.T) {
	if g := Rectangular.Gain(64); math.Abs(g-1) > 1e-12 {
		t.Fatalf("rect gain = %g", g)
	}
	if g := Hann.Gain(4096); math.Abs(g-0.5) > 1e-3 {
		t.Fatalf("hann gain = %g, want ~0.5", g)
	}
}

func TestWindowCoefficientsBounds(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		c := w.Coefficients(129)
		for i, v := range c {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("window %v coefficient %d out of [0,1]: %g", w, i, v)
			}
		}
	}
	if c := Hann.Coefficients(1); c[0] != 1 {
		t.Fatal("length-1 window must be identity")
	}
}

func TestWindowString(t *testing.T) {
	if Hann.String() != "hann" || Window(99).String() != "unknown" {
		t.Fatal("Window.String misbehaves")
	}
}

func TestSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	noise := make([]float64, 4096)
	for i := range noise {
		noise[i] = rng.NormFloat64() * 0.01
	}
	signal := sine(4096, 1e-6, 1000, 1.0)
	for i := range signal {
		signal[i] += rng.NormFloat64() * 0.01
	}
	snr := SNRdB(signal, noise)
	// amplitude 1.0 sinusoid has RMS ~0.707 vs noise RMS 0.01 -> ~37 dB.
	if snr < 33 || snr > 40 {
		t.Fatalf("SNRdB = %g, want ~37", snr)
	}
}

func TestSNRZeroNoise(t *testing.T) {
	if !math.IsInf(SNRVoltage([]float64{1, -1}, []float64{0, 0}), 1) {
		t.Fatal("zero noise must give +Inf SNR")
	}
}

func TestDBConversions(t *testing.T) {
	if got := VoltageRatioDB(10); math.Abs(got-20) > 1e-12 {
		t.Fatalf("VoltageRatioDB(10) = %g", got)
	}
	if got := PowerRatioDB(100); math.Abs(got-20) > 1e-12 {
		t.Fatalf("PowerRatioDB(100) = %g", got)
	}
	if !math.IsInf(VoltageRatioDB(0), -1) || !math.IsInf(PowerRatioDB(-1), -1) {
		t.Fatal("non-positive ratios must map to -Inf")
	}
}

func TestRMSAndMean(t *testing.T) {
	if RMS(nil) != 0 || Mean(nil) != 0 {
		t.Fatal("empty input must give 0")
	}
	if got := RMS([]float64{3, -4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMS = %g", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %g", got)
	}
	centered := RemoveMean([]float64{1, 2, 3})
	if Mean(centered) > 1e-12 {
		t.Fatal("RemoveMean must center the signal")
	}
}
