package dsp

// MovingAverage returns the centered moving average of x over a window of
// the given width (clamped at the edges). A width <= 1 — including zero
// and negative widths — is clamped to the identity filter and returns a
// copy of x.
func MovingAverage(x []float64, width int) []float64 {
	out := make([]float64, len(x))
	if width <= 1 {
		copy(out, x)
		return out
	}
	half := width / 2
	for i := range x {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(x) {
			hi = len(x) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += x[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// Decimate keeps every factor-th sample of x starting at index 0. A factor
// <= 1 — including zero and negative factors — is clamped to no
// decimation and returns a copy of x.
func Decimate(x []float64, factor int) []float64 {
	if factor <= 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	out := make([]float64, 0, (len(x)+factor-1)/factor)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out
}

// Convolve returns the full linear convolution of x and h
// (length len(x)+len(h)-1). It is used by the power model to shape
// per-cycle charge impulses into current pulses.
func Convolve(x, h []float64) []float64 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]float64, len(x)+len(h)-1)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

// Scale multiplies every sample of x by k in place and returns x for
// chaining.
func Scale(x []float64, k float64) []float64 {
	for i := range x {
		x[i] *= k
	}
	return x
}

// Add accumulates src into dst element-wise (over the shorter length) and
// returns dst.
func Add(dst, src []float64) []float64 {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] += src[i]
	}
	return dst
}
