package dsp

import (
	"math"
	"testing"
)

// The degenerate-argument contracts: every helper a monitor or
// experiment feeds raw capture parameters into must clamp rather than
// panic or spin.

func TestGoertzelEmptyInput(t *testing.T) {
	if got := Goertzel(nil, 1e-9, 750e3); got != 0 {
		t.Fatalf("Goertzel(nil) = %g, want 0", got)
	}
	if got := Goertzel([]float64{}, 1e-9, 750e3); got != 0 {
		t.Fatalf("Goertzel(empty) = %g, want 0", got)
	}
}

func TestGoertzelMatchesSpectrumBin(t *testing.T) {
	// Sanity anchor for the guard tests: on a full-bin tone the
	// Goertzel amplitude matches the rectangular-window spectrum bin.
	const n, dt = 512, 1e-9
	freq := 20.0 / (float64(n) * dt)
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.8 * math.Sin(2*math.Pi*freq*dt*float64(i))
	}
	g := Goertzel(x, dt, freq)
	amp := PlanFor(n).SpectrumInto(nil, x, Rectangular)
	if d := math.Abs(g - amp[20]); d > 1e-9 {
		t.Fatalf("Goertzel %g vs spectrum bin %g (Δ=%g)", g, amp[20], d)
	}
}

func TestGoertzelSeriesDegenerateArgs(t *testing.T) {
	x := make([]float64, 100)
	cases := []struct {
		name        string
		x           []float64
		winLen, hop int
	}{
		{"zero winLen", x, 0, 10},
		{"negative winLen", x, -5, 10},
		{"zero hop", x, 32, 0},
		{"negative hop", x, 32, -1},
		{"short signal", x[:10], 32, 8},
		{"empty signal", nil, 32, 8},
	}
	for _, c := range cases {
		if got := GoertzelSeries(c.x, 1e-9, 750e3, c.winLen, c.hop); got != nil {
			t.Fatalf("%s: got %d windows, want nil", c.name, len(got))
		}
	}
	// Valid arguments still work.
	if got := GoertzelSeries(x, 1e-9, 750e3, 32, 8); len(got) != 1+(100-32)/8 {
		t.Fatalf("valid series has %d windows", len(got))
	}
}

func TestSTFTDegenerateArgs(t *testing.T) {
	x := make([]float64, 100)
	cases := []struct {
		name        string
		x           []float64
		winLen, hop int
	}{
		{"zero winLen", x, 0, 10},
		{"negative winLen", x, -5, 10},
		{"zero hop", x, 32, 0},
		{"negative hop", x, 32, -1},
		{"short signal", x[:10], 32, 8},
		{"empty signal", nil, 32, 8},
	}
	for _, c := range cases {
		if got := STFT(c.x, 1e-9, Hann, c.winLen, c.hop); got != nil {
			t.Fatalf("STFT %s: got %d frames, want nil", c.name, len(got))
		}
		if got, _ := STFTInto(nil, c.x, 1e-9, Hann, c.winLen, c.hop); got != nil {
			t.Fatalf("STFTInto %s: got %d frames, want nil", c.name, len(got))
		}
	}
	if got := STFT(x, 1e-9, Hann, 32, 8); len(got) != 1+(100-32)/8 {
		t.Fatalf("valid STFT has %d frames", len(got))
	}
}

func TestMovingAverageDegenerateWidth(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	for _, width := range []int{1, 0, -3} {
		got := MovingAverage(x, width)
		if len(got) != len(x) {
			t.Fatalf("width %d: length %d", width, len(got))
		}
		for i := range x {
			if got[i] != x[i] {
				t.Fatalf("width %d: sample %d changed", width, i)
			}
		}
		// Must be a copy, not the input slice.
		if &got[0] == &x[0] {
			t.Fatalf("width %d: returned the input slice", width)
		}
	}
	// A real width still averages.
	got := MovingAverage(x, 3)
	if got[2] != 3 {
		t.Fatalf("width 3 center = %g, want 3", got[2])
	}
}

func TestDecimateDegenerateFactor(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	for _, factor := range []int{1, 0, -2} {
		got := Decimate(x, factor)
		if len(got) != len(x) {
			t.Fatalf("factor %d: length %d", factor, len(got))
		}
		for i := range x {
			if got[i] != x[i] {
				t.Fatalf("factor %d: sample %d changed", factor, i)
			}
		}
		if &got[0] == &x[0] {
			t.Fatalf("factor %d: returned the input slice", factor)
		}
	}
	got := Decimate(x, 2)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("factor 2 = %v", got)
	}
}
