package dsp

import "math"

// RMS returns the root-mean-square value of x. It returns 0 for an empty
// slice.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(x)))
}

// PeakAbs returns the largest absolute sample value of x, or 0 for an
// empty slice. The scan keeps the natural index order, so the result is
// bit-identical to the straightforward loop it replaces in callers.
func PeakAbs(x []float64) float64 {
	peak := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	return peak
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// RemoveMean returns x with its mean subtracted.
func RemoveMean(x []float64) []float64 {
	m := Mean(x)
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - m
	}
	return out
}

// SNRVoltage implements Eq. (2) of the paper: the ratio of the RMS voltage
// of the signal record to the RMS voltage of the noise record. The two
// records are measured separately, exactly as in Section V-A: first the
// chip idles (noise only), then it runs the workload (signal plus noise).
func SNRVoltage(signal, noise []float64) float64 {
	n := RMS(RemoveMean(noise))
	if n == 0 {
		return math.Inf(1)
	}
	return RMS(RemoveMean(signal)) / n
}

// SNRdB implements Eq. (3): 20*log10 of the voltage SNR.
func SNRdB(signal, noise []float64) float64 {
	return VoltageRatioDB(SNRVoltage(signal, noise))
}

// VoltageRatioDB converts a voltage ratio to decibels (20 log10 r).
func VoltageRatioDB(r float64) float64 {
	if r <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(r)
}

// PowerRatioDB converts a power ratio to decibels (10 log10 r).
func PowerRatioDB(r float64) float64 {
	if r <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(r)
}
