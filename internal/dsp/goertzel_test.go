package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestGoertzelMatchesSpectrum(t *testing.T) {
	const n = 1024
	const dt = 1e-6
	f := BinFrequency(100, n, dt)
	x := sine(n, dt, f, 2.5)
	got := Goertzel(x, dt, f)
	if math.Abs(got-2.5) > 0.01 {
		t.Fatalf("Goertzel amplitude = %g, want 2.5", got)
	}
	// Off-frequency bins read near zero.
	if off := Goertzel(x, dt, BinFrequency(300, n, dt)); off > 0.05 {
		t.Fatalf("off-bin amplitude = %g", off)
	}
	if Goertzel(nil, dt, f) != 0 {
		t.Fatal("empty input must give 0")
	}
}

func TestGoertzelSeriesTracksOOK(t *testing.T) {
	// Build an on-off-keyed tone: 4 symbols 1,0,1,0 of 512 samples each.
	const dt = 1e-7
	const f = 750e3
	const symbol = 512
	var x []float64
	for s := 0; s < 4; s++ {
		for i := 0; i < symbol; i++ {
			v := 0.0
			if s%2 == 0 {
				v = math.Sin(2 * math.Pi * f * float64(len(x)) * dt)
			}
			x = append(x, v)
		}
	}
	env := GoertzelSeries(x, dt, f, symbol, symbol)
	if len(env) != 4 {
		t.Fatalf("envelope length = %d", len(env))
	}
	if !(env[0] > 5*env[1] && env[2] > 5*env[3]) {
		t.Fatalf("envelope does not track keying: %v", env)
	}
	if GoertzelSeries(x, dt, f, 0, symbol) != nil || GoertzelSeries(x[:10], dt, f, symbol, symbol) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
}

func TestSTFT(t *testing.T) {
	const dt = 1e-6
	// First half 50 kHz, second half 150 kHz.
	var x []float64
	for i := 0; i < 2048; i++ {
		f := 50e3
		if i >= 1024 {
			f = 150e3
		}
		x = append(x, math.Sin(2*math.Pi*f*float64(i)*dt))
	}
	frames := STFT(x, dt, Hann, 512, 512)
	if len(frames) != 4 {
		t.Fatalf("frames = %d", len(frames))
	}
	if f0 := frames[0].TopPeaks(1, 0.1)[0].Frequency; math.Abs(f0-50e3) > 3*frames[0].DF {
		t.Fatalf("frame 0 peak at %g", f0)
	}
	if f3 := frames[3].TopPeaks(1, 0.1)[0].Frequency; math.Abs(f3-150e3) > 3*frames[3].DF {
		t.Fatalf("frame 3 peak at %g", f3)
	}
	if STFT(x, dt, Hann, 0, 512) != nil {
		t.Fatal("degenerate STFT must return nil")
	}
}

func TestCoherentAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 2048
	clean := sine(n, 1e-6, 5e3, 1.0)
	var traces [][]float64
	for k := 0; k < 64; k++ {
		tr := make([]float64, n)
		for i := range tr {
			tr[i] = clean[i] + rng.NormFloat64()
		}
		traces = append(traces, tr)
	}
	avg := CoherentAverage(traces)
	// Residual noise should shrink by ~sqrt(64) = 8.
	residual := make([]float64, n)
	for i := range residual {
		residual[i] = avg[i] - clean[i]
	}
	if r := RMS(residual); r > 0.25 {
		t.Fatalf("averaged residual RMS = %g, want ~0.125", r)
	}
	if CoherentAverage(nil) != nil {
		t.Fatal("empty average must be nil")
	}
	// Ragged lengths truncate to the shortest.
	ragged := CoherentAverage([][]float64{{1, 2, 3}, {3, 4}})
	if len(ragged) != 2 || ragged[0] != 2 || ragged[1] != 3 {
		t.Fatalf("ragged average = %v", ragged)
	}
}
