package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMovingAverageConstant(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5}
	for _, w := range []int{1, 3, 5, 9} {
		got := MovingAverage(x, w)
		for i, v := range got {
			if math.Abs(v-5) > 1e-12 {
				t.Fatalf("width %d: sample %d = %g, want 5", w, i, v)
			}
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 1000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	smoothed := MovingAverage(x, 21)
	if RMS(smoothed) >= RMS(x) {
		t.Fatal("moving average must reduce noise RMS")
	}
}

func TestDecimate(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6}
	got := Decimate(x, 3)
	want := []float64{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	cp := Decimate(x, 1)
	cp[0] = 42
	if x[0] != 0 {
		t.Fatal("Decimate(x, 1) aliased its input")
	}
}

func TestConvolveIdentity(t *testing.T) {
	x := []float64{1, 2, 3}
	got := Convolve(x, []float64{1})
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("identity convolution failed: %v", got)
		}
	}
	if Convolve(nil, x) != nil || Convolve(x, nil) != nil {
		t.Fatal("empty convolution must be nil")
	}
}

func TestConvolveKnown(t *testing.T) {
	got := Convolve([]float64{1, 1}, []float64{1, 1})
	want := []float64{1, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Convolution must be commutative (property test).
func TestConvolveCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 1+rng.Intn(16))
		h := make([]float64, 1+rng.Intn(16))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range h {
			h[i] = rng.NormFloat64()
		}
		a := Convolve(x, h)
		b := Convolve(h, x)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleAndAdd(t *testing.T) {
	x := []float64{1, 2}
	Scale(x, 2)
	if x[0] != 2 || x[1] != 4 {
		t.Fatalf("Scale: %v", x)
	}
	dst := []float64{1, 1, 1}
	Add(dst, []float64{1, 2})
	if dst[0] != 2 || dst[1] != 3 || dst[2] != 1 {
		t.Fatalf("Add: %v", dst)
	}
}
