package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// referenceRealFFT is the pre-plan implementation — zero-pad, widen to
// complex, full-size radix-2 transform — kept as the correctness
// reference for the half-size real path.
func referenceRealFFT(x []float64) []complex128 {
	n := NextPow2(len(x))
	out := make([]complex128, n)
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	FFT(out)
	return out
}

// referenceSpectrum is the pre-plan NewSpectrum implementation: windowed
// copy, full complex FFT, Hypot magnitudes.
func referenceSpectrum(x []float64, w Window) []float64 {
	windowed := w.Apply(x)
	spec := referenceRealFFT(windowed)
	n := len(spec)
	gain := w.Gain(len(x))
	half := n/2 + 1
	amp := make([]float64, half)
	scale := 2 / (float64(len(x)) * gain)
	for k := 0; k < half; k++ {
		a := math.Hypot(real(spec[k]), imag(spec[k])) * scale
		if k == 0 || k == n/2 {
			a /= 2
		}
		amp[k] = a
	}
	return amp
}

// specNorm is the largest magnitude of the reference spectrum, the
// scale the ULP-style differential bounds are relative to.
func specNorm(spec []complex128) float64 {
	m := 0.0
	for _, v := range spec {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}

var planSizes = []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// TestRealFFTMatchesReference is the differential gate for the tentpole:
// across every size and random signals, the planned half-size real path
// agrees with the full complex reference transform to a few ULPs of the
// spectrum norm.
func TestRealFFTMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range planSizes {
		for trial := 0; trial < 4; trial++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			// Exercise the zero-pad path too.
			if trial == 3 && n > 2 {
				x = x[:n-n/4]
			}
			want := referenceRealFFT(x)
			got := PlanFor(n).RealFFTInto(nil, x)
			if len(got) != len(want) {
				t.Fatalf("n=%d: length %d, want %d", n, len(got), len(want))
			}
			tol := 1e-13 * specNorm(want) * float64(1+bitsLen(n))
			for k := range want {
				if d := cmplx.Abs(got[k] - want[k]); d > tol {
					t.Fatalf("n=%d bin %d: |Δ|=%g > %g (got %v want %v)", n, k, d, tol, got[k], want[k])
				}
			}
		}
	}
}

func bitsLen(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// TestSpectrumIntoMatchesReference bounds the planned one-sided
// spectrum against the historical windowed-copy + Hypot implementation
// across sizes and windows.
func TestSpectrumIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range planSizes {
		for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			want := referenceSpectrum(x, w)
			got := PlanFor(n).SpectrumInto(nil, x, w)
			if len(got) != len(want) {
				t.Fatalf("n=%d %v: %d bins, want %d", n, w, len(got), len(want))
			}
			norm := 0.0
			for _, a := range want {
				if a > norm {
					norm = a
				}
			}
			tol := 1e-12 * norm * float64(1+bitsLen(n))
			for k := range want {
				if d := math.Abs(got[k] - want[k]); d > tol {
					t.Fatalf("n=%d %v bin %d: |Δ|=%g > %g", n, w, k, d, tol)
				}
			}
		}
	}
}

// TestRealFFTRoundTrip: IFFT of the planned real spectrum recovers the
// padded signal — the plan keeps the unnormalized-FFT/normalized-IFFT
// contract of the complex path.
func TestRealFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range planSizes {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		spec := PlanFor(n).RealFFTInto(nil, x)
		IFFT(spec)
		for i, v := range x {
			if d := math.Abs(real(spec[i]) - v); d > 1e-10 {
				t.Fatalf("n=%d sample %d: drifted by %g", n, i, d)
			}
			if im := math.Abs(imag(spec[i])); im > 1e-10 {
				t.Fatalf("n=%d sample %d: imaginary residue %g", n, i, im)
			}
		}
	}
}

// TestRealFFTParseval: energy is conserved between the time and
// frequency domains for the planned real transform.
func TestRealFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range planSizes {
		x := make([]float64, n)
		timeE := 0.0
		for i := range x {
			x[i] = rng.NormFloat64()
			timeE += x[i] * x[i]
		}
		spec := PlanFor(n).RealFFTInto(nil, x)
		freqE := 0.0
		for _, v := range spec {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		freqE /= float64(n)
		if d := math.Abs(timeE - freqE); d > 1e-9*(1+timeE) {
			t.Fatalf("n=%d: Parseval broken, time %g vs freq %g", n, timeE, freqE)
		}
	}
}

// TestRealFFTLinearity: the transform of a*x + b*y matches the
// combination of the individual transforms.
func TestRealFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{8, 64, 1024, 4096} {
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		const a, b = 2.5, -1.25
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
			z[i] = a*x[i] + b*y[i]
		}
		p := PlanFor(n)
		fx := p.RealFFTInto(nil, x)
		fy := p.RealFFTInto(nil, y)
		fz := p.RealFFTInto(nil, z)
		for k := range fz {
			want := complex(a, 0)*fx[k] + complex(b, 0)*fy[k]
			if d := cmplx.Abs(fz[k] - want); d > 1e-9*(1+cmplx.Abs(want)) {
				t.Fatalf("n=%d bin %d: linearity broken by %g", n, k, d)
			}
		}
	}
}

// TestRealFFTKnownAnswers: impulse and DC inputs have closed-form
// spectra at every size.
func TestRealFFTKnownAnswers(t *testing.T) {
	for _, n := range planSizes {
		p := PlanFor(n)
		// Impulse at 0: flat spectrum of ones.
		x := make([]float64, n)
		x[0] = 1
		spec := p.RealFFTInto(nil, x)
		for k, v := range spec {
			if cmplx.Abs(v-1) > 1e-12 {
				t.Fatalf("n=%d impulse bin %d = %v, want 1", n, k, v)
			}
		}
		// DC: everything lands in bin 0.
		for i := range x {
			x[i] = 1
		}
		spec = p.RealFFTInto(spec, x)
		for k, v := range spec {
			want := complex(0, 0)
			if k == 0 {
				want = complex(float64(n), 0)
			}
			if cmplx.Abs(v-want) > 1e-9*float64(n) {
				t.Fatalf("n=%d DC bin %d = %v, want %v", n, k, v, want)
			}
		}
	}
}

// TestPlanDirtyBufferReuse: passing a dst full of garbage from a
// previous, larger transform must not leak into the result.
func TestPlanDirtyBufferReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	clean := PlanFor(256).RealFFTInto(nil, x)
	dirty := make([]complex128, 4096)
	for i := range dirty {
		dirty[i] = complex(math.NaN(), math.Inf(1))
	}
	got := PlanFor(256).RealFFTInto(dirty, x)
	if &got[0] != &dirty[0] {
		t.Fatal("RealFFTInto did not reuse the caller's buffer")
	}
	for k := range clean {
		if got[k] != clean[k] {
			t.Fatalf("bin %d: dirty reuse changed result: %v vs %v", k, got[k], clean[k])
		}
	}
	// Same for the amplitude path.
	cleanAmp := PlanFor(256).SpectrumInto(nil, x, Hann)
	dirtyAmp := make([]float64, 2048)
	for i := range dirtyAmp {
		dirtyAmp[i] = math.NaN()
	}
	gotAmp := PlanFor(256).SpectrumInto(dirtyAmp, x, Hann)
	if &gotAmp[0] != &dirtyAmp[0] {
		t.Fatal("SpectrumInto did not reuse the caller's buffer")
	}
	for k := range cleanAmp {
		if gotAmp[k] != cleanAmp[k] {
			t.Fatalf("amp bin %d: dirty reuse changed result", k)
		}
	}
}

// TestSpectrumIntoAliasedDst: dst sharing x's backing array is
// documented as safe — every read of x precedes the first write of dst.
func TestSpectrumIntoAliasedDst(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	orig := make([]float64, 128)
	for i := range orig {
		orig[i] = rng.NormFloat64()
	}
	want := PlanFor(128).SpectrumInto(nil, orig, Hann)
	x := append([]float64(nil), orig...)
	got := PlanFor(128).SpectrumInto(x[:0], x, Hann)
	if &got[0] != &x[0] {
		t.Fatal("aliased dst was not reused")
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("bin %d: aliased dst changed result: %v vs %v", k, got[k], want[k])
		}
	}
}

// TestPlanConcurrentStress hammers one shared Plan from many goroutines
// (the monitor pool and fleet workers share transform sizes) and pins
// the output bit-identical to the serial result at any worker count.
// Under -race this doubles as the plan-cache concurrency gate.
func TestPlanConcurrentStress(t *testing.T) {
	const n = 1024
	rng := rand.New(rand.NewSource(14))
	inputs := make([][]float64, 16)
	for i := range inputs {
		inputs[i] = make([]float64, n)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
	}
	p := PlanFor(n)
	serial := make([][]float64, len(inputs))
	for i, x := range inputs {
		serial[i] = p.SpectrumInto(nil, x, Hann)
	}
	for _, workers := range []int{2, 8, 32} {
		var wg sync.WaitGroup
		errs := make(chan string, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var amp []float64
				var spec []complex128
				for iter := 0; iter < 50; iter++ {
					i := (w + iter) % len(inputs)
					amp = p.SpectrumInto(amp, inputs[i], Hann)
					for k := range serial[i] {
						if amp[k] != serial[i][k] {
							errs <- "spectrum diverged under concurrency"
							return
						}
					}
					spec = p.RealFFTInto(spec, inputs[i])
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatalf("workers=%d: %s", workers, e)
		}
	}
}

func TestWelchAccumulator(t *testing.T) {
	if _, err := NewWelch(0, 1e-9, Hann); err == nil {
		t.Fatal("segLen 0 must error")
	}
	if _, err := NewWelch(64, 0, Hann); err == nil {
		t.Fatal("dt 0 must error")
	}
	const segLen, dt = 128, 1e-9
	wa, err := NewWelch(segLen, dt, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if wa.PSDInto(nil) != nil {
		t.Fatal("empty accumulator must return nil")
	}
	if err := wa.Add(make([]float64, 5)); err == nil {
		t.Fatal("wrong segment length must error")
	}
	// A pure tone's averaged PSD concentrates at the tone bin, and the
	// streaming average equals the arithmetic mean of per-segment PSDs.
	rng := rand.New(rand.NewSource(15))
	p := PlanFor(segLen)
	sum := make([]float64, p.Bins())
	const segs = 10
	freqBin := 16
	for s := 0; s < segs; s++ {
		seg := make([]float64, segLen)
		for i := range seg {
			seg[i] = math.Sin(2*math.Pi*float64(freqBin*i)/segLen) + 0.01*rng.NormFloat64()
		}
		if err := wa.Add(seg); err != nil {
			t.Fatal(err)
		}
		psd := p.PSDInto(nil, seg, dt, Hann)
		for k, v := range psd {
			sum[k] += v
		}
	}
	if wa.Segments() != segs {
		t.Fatalf("segments = %d", wa.Segments())
	}
	got := wa.PSDInto(nil)
	best := 0
	for k, v := range got {
		if v > got[best] {
			best = k
		}
		want := sum[k] / segs
		if d := math.Abs(v - want); d > 1e-12*(1+want) {
			t.Fatalf("bin %d: streaming average %g, direct mean %g", k, v, want)
		}
	}
	if best != freqBin {
		t.Fatalf("tone landed in bin %d, want %d", best, freqBin)
	}
	wa.Reset()
	if wa.Segments() != 0 || wa.PSDInto(nil) != nil {
		t.Fatal("reset did not clear the accumulator")
	}
	if df, want := wa.DF(), 1/(float64(p.Size())*dt); df != want {
		t.Fatalf("DF = %g, want %g", df, want)
	}
}

func TestSTFTIntoMatchesSTFT(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := make([]float64, 1000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	const dt, winLen, hop = 1e-9, 128, 32
	frames := STFT(x, dt, Hann, winLen, hop)
	rows, df := STFTInto(nil, x, dt, Hann, winLen, hop)
	if len(rows) != len(frames) {
		t.Fatalf("%d rows vs %d frames", len(rows), len(frames))
	}
	if df != frames[0].DF {
		t.Fatalf("df %g vs %g", df, frames[0].DF)
	}
	for f := range rows {
		for k := range rows[f] {
			if rows[f][k] != frames[f].Amplitude[k] {
				t.Fatalf("frame %d bin %d differs", f, k)
			}
		}
	}
	// Re-running into the same rows reuses them.
	rows2, _ := STFTInto(rows, x, dt, Hann, winLen, hop)
	if &rows2[0][0] != &rows[0][0] {
		t.Fatal("STFTInto did not reuse row buffers")
	}
	// Degenerate arguments clamp to nil like STFT.
	if r, _ := STFTInto(nil, x, dt, Hann, 0, hop); r != nil {
		t.Fatal("winLen 0 must clamp to nil")
	}
	if r, _ := STFTInto(nil, x, dt, Hann, winLen, 0); r != nil {
		t.Fatal("hop 0 must clamp to nil")
	}
	if r, _ := STFTInto(nil, x[:winLen-1], dt, Hann, winLen, hop); r != nil {
		t.Fatal("short signal must clamp to nil")
	}
}

func TestPSDIntoToneLevel(t *testing.T) {
	// A unit sinusoid at an exact bin has total one-sided power 1/2;
	// integrating the PSD over frequency must recover it for every
	// window.
	const n, dt = 1024, 1e-9
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 100 * float64(i) / n)
	}
	p := PlanFor(n)
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		psd := p.PSDInto(nil, x, dt, w)
		df := 1 / (float64(n) * dt)
		total := 0.0
		for _, v := range psd {
			total += v * df
		}
		if math.Abs(total-0.5) > 0.02 {
			t.Fatalf("%v: integrated tone power %g, want 0.5", w, total)
		}
	}
}

func TestMagnitudesInto(t *testing.T) {
	spec := []complex128{3 + 4i, -5, 0, 1i, 2 + 2i, -1 - 1i, 6, 7i, 0.5}
	got := MagnitudesInto(nil, spec)
	for k, v := range spec {
		want := math.Sqrt(real(v)*real(v) + imag(v)*imag(v))
		if got[k] != want {
			t.Fatalf("bin %d: %g want %g", k, got[k], want)
		}
	}
	buf := make([]float64, 1)
	got2 := MagnitudesInto(buf[:0], spec)
	if len(got2) != len(spec) {
		t.Fatal("short dst not grown")
	}
}

func TestPlanForPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PlanFor(12) must panic")
		}
	}()
	PlanFor(12)
}

func TestPlanSizeOne(t *testing.T) {
	p := PlanFor(1)
	spec := p.RealFFTInto(nil, []float64{2.5})
	if len(spec) != 1 || spec[0] != complex(2.5, 0) {
		t.Fatalf("size-1 transform = %v", spec)
	}
	amp := p.SpectrumInto(nil, []float64{2.5}, Hann)
	if len(amp) != 1 {
		t.Fatalf("size-1 spectrum has %d bins", len(amp))
	}
	if amp2 := p.SpectrumInto(nil, nil, Hann); len(amp2) != 0 {
		t.Fatal("empty input must produce no bins")
	}
}

// FuzzRealFFTInto cross-checks the planned real transform against the
// full complex reference on arbitrary signals, with a dirty reused
// buffer, which must not change the result.
func FuzzRealFFTInto(f *testing.F) {
	f.Add(uint16(3), int64(1))
	f.Add(uint16(1000), int64(2))
	f.Add(uint16(4096), int64(3))
	f.Fuzz(func(t *testing.T, nRaw uint16, seed int64) {
		n := int(nRaw)%4096 + 1
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
		}
		want := referenceRealFFT(x)
		dirty := make([]complex128, NextPow2(n))
		for i := range dirty {
			dirty[i] = complex(math.NaN(), math.NaN())
		}
		got := RealFFTInto(dirty, x)
		tol := 1e-12 * (1 + specNorm(want)) * float64(1+bitsLen(NextPow2(n)))
		for k := range want {
			if d := cmplx.Abs(got[k] - want[k]); d > tol || math.IsNaN(real(got[k])) {
				t.Fatalf("n=%d bin %d: |Δ|=%g > %g", n, k, d, tol)
			}
		}
	})
}

// FuzzSpectrumInto checks dst-aliasing and dirty-buffer reuse against
// the historical spectrum implementation on arbitrary signals/windows.
func FuzzSpectrumInto(f *testing.F) {
	f.Add(uint16(100), uint8(1), int64(4))
	f.Add(uint16(4000), uint8(3), int64(5))
	f.Fuzz(func(t *testing.T, nRaw uint16, wRaw uint8, seed int64) {
		n := int(nRaw)%4096 + 1
		w := Window(wRaw % 4)
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := referenceSpectrum(x, w)
		norm := 0.0
		for _, a := range want {
			if a > norm {
				norm = a
			}
		}
		tol := 1e-11 * (1 + norm) * float64(1+bitsLen(NextPow2(n)))
		p := PlanForLength(n)
		// Aliased destination: dst shares x's backing array.
		got := p.SpectrumInto(x[:0], x, w)
		for k := range want {
			if d := math.Abs(got[k] - want[k]); d > tol {
				t.Fatalf("n=%d w=%v bin %d (aliased): |Δ|=%g > %g", n, w, k, d, tol)
			}
		}
	})
}
