package dsp

import (
	"math"
	"sort"
)

// Spectrum is a one-sided amplitude spectrum of a real signal.
type Spectrum struct {
	// Amplitude holds per-bin amplitudes for bins 0..N/2 of the
	// underlying transform, rescaled by the window's coherent gain so
	// that a full-scale sinusoid reads close to its time-domain
	// amplitude.
	Amplitude []float64
	// DF is the bin spacing in hertz.
	DF float64
	// N is the underlying (zero-padded) transform length.
	N int
}

// NewSpectrum computes a one-sided amplitude spectrum of the real signal x
// sampled every dt seconds, after applying window w and zero-padding to a
// power of two. It runs on the planned engine (plan.go); hot loops that
// want to reuse the amplitude buffer call Plan.SpectrumInto directly.
func NewSpectrum(x []float64, dt float64, w Window) *Spectrum {
	if len(x) == 0 {
		return &Spectrum{Amplitude: []float64{}, DF: 0, N: 0}
	}
	p := PlanForLength(len(x))
	amp := p.SpectrumInto(nil, x, w)
	return &Spectrum{Amplitude: amp, DF: 1 / (float64(p.Size()) * dt), N: p.Size()}
}

// Frequency returns the frequency of bin k in hertz.
func (s *Spectrum) Frequency(k int) float64 { return float64(k) * s.DF }

// Bin returns the bin index closest to frequency f, clamped to the valid
// range.
func (s *Spectrum) Bin(f float64) int {
	if s.DF == 0 {
		return 0
	}
	k := int(math.Round(f / s.DF))
	if k < 0 {
		k = 0
	}
	if k >= len(s.Amplitude) {
		k = len(s.Amplitude) - 1
	}
	return k
}

// AmplitudeAt returns the amplitude at the bin closest to frequency f.
func (s *Spectrum) AmplitudeAt(f float64) float64 {
	if len(s.Amplitude) == 0 {
		return 0
	}
	return s.Amplitude[s.Bin(f)]
}

// BandEnergy integrates squared amplitude over [fLo, fHi] (inclusive bins).
func (s *Spectrum) BandEnergy(fLo, fHi float64) float64 {
	lo, hi := s.Bin(fLo), s.Bin(fHi)
	if lo > hi {
		lo, hi = hi, lo
	}
	e := 0.0
	for k := lo; k <= hi; k++ {
		e += s.Amplitude[k] * s.Amplitude[k]
	}
	return e
}

// Peak is a local maximum of a spectrum.
type Peak struct {
	Bin       int
	Frequency float64
	Amplitude float64
}

// Peaks returns the local maxima with amplitude at least minAmp, sorted by
// descending amplitude. Bin 0 (DC) is never reported as a peak.
func (s *Spectrum) Peaks(minAmp float64) []Peak {
	var peaks []Peak
	for k := 1; k < len(s.Amplitude)-1; k++ {
		a := s.Amplitude[k]
		if a >= minAmp && a > s.Amplitude[k-1] && a >= s.Amplitude[k+1] {
			peaks = append(peaks, Peak{Bin: k, Frequency: s.Frequency(k), Amplitude: a})
		}
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].Amplitude > peaks[j].Amplitude })
	return peaks
}

// TopPeaks returns up to n strongest peaks above minAmp.
func (s *Spectrum) TopPeaks(n int, minAmp float64) []Peak {
	p := s.Peaks(minAmp)
	if len(p) > n {
		p = p[:n]
	}
	return p
}

// Sub returns the per-bin amplitude difference s - ref. The spectra must
// have the same length.
func (s *Spectrum) Sub(ref *Spectrum) []float64 {
	n := len(s.Amplitude)
	if len(ref.Amplitude) < n {
		n = len(ref.Amplitude)
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = s.Amplitude[i] - ref.Amplitude[i]
	}
	return d
}
