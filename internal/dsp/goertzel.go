package dsp

import "math"

// Goertzel computes the magnitude of a single frequency component of x
// (sampled every dt seconds) using the Goertzel algorithm — much cheaper
// than a full FFT when only one bin matters, which is exactly the
// demodulator's case (the 750 kHz AM carrier of Trojan 1). A
// zero-length input is clamped to amplitude 0.
func Goertzel(x []float64, dt, freq float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	// Normalized frequency in cycles per sample.
	k := freq * dt
	w := 2 * math.Pi * k
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0
	}
	// Scale to the one-sided amplitude convention of NewSpectrum.
	return 2 * math.Sqrt(power) / float64(n)
}

// GoertzelSeries slides a Goertzel window of winLen samples across x with
// the given hop and returns the per-window carrier amplitude: the
// envelope of an on-off-keyed tone. Degenerate arguments — winLen <= 0,
// hop <= 0, or a signal shorter than one window — are clamped to a nil
// result rather than panicking or looping forever.
func GoertzelSeries(x []float64, dt, freq float64, winLen, hop int) []float64 {
	if winLen <= 0 || hop <= 0 || len(x) < winLen {
		return nil
	}
	var out []float64
	for start := 0; start+winLen <= len(x); start += hop {
		out = append(out, Goertzel(x[start:start+winLen], dt, freq))
	}
	return out
}

// STFT computes a spectrogram: successive windowed spectra of x with the
// given window length and hop. Each row is the one-sided amplitude
// spectrum of one frame. Degenerate arguments — winLen <= 0, hop <= 0,
// or a signal shorter than one frame — are clamped to a nil result
// rather than panicking or looping forever. Callers that want to reuse
// row buffers across calls use STFTInto instead; this wrapper allocates
// one Spectrum per frame to keep its historical signature.
func STFT(x []float64, dt float64, w Window, winLen, hop int) []*Spectrum {
	if winLen <= 0 || hop <= 0 || len(x) < winLen {
		return nil
	}
	p := PlanForLength(winLen)
	n := p.Size()
	df := 1 / (float64(n) * dt)
	frames := make([]*Spectrum, 0, 1+(len(x)-winLen)/hop)
	for start := 0; start+winLen <= len(x); start += hop {
		amp := p.SpectrumInto(nil, x[start:start+winLen], w)
		frames = append(frames, &Spectrum{Amplitude: amp, DF: df, N: n})
	}
	return frames
}

// CoherentAverage averages multiple aligned traces sample by sample,
// improving SNR by sqrt(len(traces)) for trigger-aligned captures. All
// traces must be at least as long as the shortest one; the result has
// the shortest length.
func CoherentAverage(traces [][]float64) []float64 {
	if len(traces) == 0 {
		return nil
	}
	minLen := len(traces[0])
	for _, t := range traces {
		if len(t) < minLen {
			minLen = len(t)
		}
	}
	out := make([]float64, minLen)
	for _, t := range traces {
		for i := 0; i < minLen; i++ {
			out[i] += t[i]
		}
	}
	inv := 1 / float64(len(traces))
	for i := range out {
		out[i] *= inv
	}
	return out
}
